//! Workspace-root crate: hosts the runnable examples (`examples/`) and the
//! cross-crate integration tests (`tests/`). Re-exports the public API so
//! examples and tests use the same surface a downstream user would.

pub use braidio::prelude;
pub use braidio_circuits as circuits;
pub use braidio_mac as mac;
pub use braidio_net as net;
pub use braidio_phy as phy;
pub use braidio_radio as radio;
pub use braidio_rfsim as rfsim;
pub use braidio_units as units;
