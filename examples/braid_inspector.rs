//! Braid inspector: watch the §4.2 mode sequence being woven.
//!
//! Run with: `cargo run --release --example braid_inspector [tx_wh rx_wh]`
//!
//! The paper's example: "if p1 = 0.5, p2 = 0.25, p3 = 0.25 then a possible
//! sequence of modes could be Active-Active-Passive-Backscatter (repeated)".
//! This example solves Eq. 1 for a device pair, prints the resulting plan,
//! and then prints the literal packet-by-packet braid the scheduler emits.

use braidio::mac::offload::solve_at;
use braidio::mac::scheduler::{BraidedScheduler, Decision};
use braidio::prelude::*;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let (e1, e2) = match args.as_slice() {
        [a, b] => (
            a.parse().expect("tx_wh must be a number"),
            b.parse().expect("rx_wh must be a number"),
        ),
        _ => (6.55f64, 11.1f64), // iPhone 6S -> iPhone 6 Plus
    };

    println!("== Braid inspector: {e1} Wh transmitting to {e2} Wh ==\n");
    let ch = Characterization::braidio();
    let plan = solve_at(
        &ch,
        Meters::new(0.5),
        Joules::from_watt_hours(e1),
        Joules::from_watt_hours(e2),
    )
    .expect("link in range");

    println!("Eq. 1 plan (exact power-proportional: {}):", plan.exact);
    for a in &plan.allocations {
        println!(
            "  {:>12} @{:<4}  fraction {:.4}   T = {}  R = {}",
            a.option.mode.label(),
            a.option.rate.label(),
            a.fraction,
            a.option.tx_cost,
            a.option.rx_cost
        );
    }
    println!(
        "blended T:R = {:.4} (battery ratio {:.4})\n",
        plan.asymmetry(),
        e1 / e2
    );

    let mut sched = BraidedScheduler::new(&plan);
    print!("first 64 packets: ");
    for i in 0..64 {
        if i % 32 == 0 {
            println!();
        }
        match sched.next() {
            Decision::Send(o) => print!("{}", &o.mode.label()[..1]),
            Decision::Replan => print!("?"),
        }
    }
    println!("\n\n(A = active, P = passive, B = backscatter)");
    println!("mode switches in 64 packets: {}", sched.switches());

    // Show how the braid shifts with the battery ratio.
    println!("\nbraid vs battery ratio (TX:RX):");
    println!(
        "{:>10} {:>9} {:>9} {:>12}",
        "ratio", "active", "passive", "backscatter"
    );
    for ratio in [0.01, 0.1, 0.5, 1.0, 2.0, 10.0, 100.0, 1000.0] {
        let p = solve_at(
            &ch,
            Meters::new(0.5),
            Joules::from_watt_hours(ratio),
            Joules::from_watt_hours(1.0),
        )
        .expect("in range");
        println!(
            "{:>10} {:>8.1}% {:>8.1}% {:>11.1}%",
            format!("{ratio}:1"),
            100.0 * p.mode_fraction(Mode::Active),
            100.0 * p.mode_fraction(Mode::Passive),
            100.0 * p.mode_fraction(Mode::Backscatter)
        );
    }
}
