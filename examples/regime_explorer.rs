//! Regime explorer: what the radio can do at each separation.
//!
//! Run with: `cargo run --release --example regime_explorer`
//!
//! Walks a device pair from 0.3 m to 7 m and prints, at each step, the
//! Fig. 8 regime, the per-mode best bitrate, and the achievable
//! transmitter:receiver power-asymmetry span — the information the
//! carrier-offload layer actually plans with. Finishes with the
//! phase-cancellation picture at the null distances (why the board has two
//! receive antennas).

use braidio::mac::offload::options_at;
use braidio::prelude::*;
use braidio::rfsim::geometry::Point;
use braidio::rfsim::phase_cancel::BackscatterScene;

fn main() {
    let ch = Characterization::braidio();

    println!("== Braidio operating envelope vs distance ==\n");
    println!(
        "{:>8} {:>7} {:>9} {:>9} {:>12} {:>24}",
        "distance", "regime", "active", "passive", "backscatter", "asymmetry span (T:R)"
    );
    for d in [
        0.3, 0.6, 0.9, 1.2, 1.5, 1.8, 2.1, 2.4, 2.7, 3.0, 3.6, 4.2, 4.8, 5.1, 5.4, 6.0, 7.0,
    ] {
        let dist = Meters::new(d);
        let regime = Regime::classify(&ch, dist);
        let rate_label = |mode: Mode| ch.max_rate(mode, dist).map(|r| r.label()).unwrap_or("-");
        let opts = options_at(&ch, dist);
        let span = if opts.is_empty() {
            "-".to_string()
        } else {
            let max = opts.iter().map(|o| o.asymmetry()).fold(f64::MIN, f64::max);
            let min = opts.iter().map(|o| o.asymmetry()).fold(f64::MAX, f64::min);
            format!("{:>10} .. {:<10}", ratio_label(min), ratio_label(max))
        };
        println!(
            "{:>7.1}m {:>7} {:>9} {:>9} {:>12} {:>24}",
            d,
            format!("{:?}", regime),
            rate_label(Mode::Active),
            rate_label(Mode::Passive),
            rate_label(Mode::Backscatter),
            span
        );
    }

    println!("\n== Phase cancellation at the envelope detector ==\n");
    let single = BackscatterScene::paper_fig4();
    let diverse = BackscatterScene::paper_fig4().with_diversity();
    println!("tag swept along the Fig. 4c line (y = 0.5 m):");
    println!(
        "{:>8} {:>16} {:>16}",
        "tag x", "1 antenna SNR", "2 antennas SNR"
    );
    let mut worst = (f64::MAX, f64::MAX);
    for i in 0..14 {
        let x = 1.3 + 0.05 * i as f64;
        let p = Point::new(x, 0.5);
        let s1 = single.snr(p, 0).db();
        let s2 = diverse.snr_diversity(p).1.db();
        worst.0 = worst.0.min(s1);
        worst.1 = worst.1.min(s2);
        println!("{:>7.2}m {:>13.1} dB {:>13.1} dB", x, s1, s2);
    }
    println!(
        "\nworst case over the sweep: {:.1} dB alone vs {:.1} dB with λ/8 antenna diversity",
        worst.0, worst.1
    );
}

fn ratio_label(asym: f64) -> String {
    if asym >= 1.0 {
        format!("{:.0}:1", asym)
    } else {
        format!("1:{:.0}", 1.0 / asym)
    }
}
