//! Wake-up radio: the passive receiver as an always-on doorbell.
//!
//! Run with: `cargo run --release --example wakeup_radio`
//!
//! §4 notes that the passive-receiver mode "is not one we sought out to
//! design, but is an interesting option that we enable through our
//! architecture." A Braidio device can leave its ~50 µW envelope-detector
//! chain listening continuously while the active radio sleeps — replacing
//! the classic latency-vs-power trade of duty-cycled listening. This
//! example quantifies the idle budget and then simulates a day of standby
//! with occasional inbound transfers.

use braidio::circuits::harvester::Harvester;
use braidio::mac::wakeup::{DutyCycledListener, PassiveWakeup};
use braidio::prelude::*;
use braidio::rfsim::LinkBudget;

fn main() {
    println!("== The passive chain as a wake-up radio ==\n");
    let passive = PassiveWakeup::braidio();
    println!(
        "always-on passive chain: {} draw, {} wake latency\n",
        passive.chain_power, passive.detect_latency
    );

    println!("-- duty-cycled BLE listening for comparison --");
    println!(
        "{:>12} {:>14} {:>14} {:>14}",
        "check period", "avg power", "mean latency", "vs passive"
    );
    for period_ms in [20.0, 100.0, 500.0, 2000.0, 10_000.0] {
        let lpl = DutyCycledListener::ble(Seconds::from_millis(period_ms));
        let avg = lpl.average_power();
        println!(
            "{:>10.0}ms {:>14} {:>14} {:>12.1}x",
            period_ms,
            format!("{avg}"),
            format!("{}", lpl.mean_latency()),
            avg / passive.chain_power
        );
    }
    let lpl1s = DutyCycledListener::ble(Seconds::new(1.0));
    let eq = passive.equivalent_lpl_period(&lpl1s);
    println!(
        "\nan LPL listener only *matches* the passive chain's power at a {} check period —",
        eq
    );
    println!(
        "at which point its mean wake latency is {} vs the chain's {}.\n",
        (eq / 2.0),
        passive.detect_latency
    );

    // Standby economics over a watch's day.
    println!("-- a smartwatch day: 24 h standby + 30 min of transfers --");
    let watch = devices::APPLE_WATCH;
    let standby = Seconds::from_hours(24.0);
    let passive_idle = passive.chain_power * standby;
    let lpl_idle = lpl1s.average_power() * standby;
    println!(
        "idle energy: passive wake-up {} vs 1 s LPL {} ({:.1}% vs {:.1}% of the {} battery)",
        passive_idle,
        lpl_idle,
        100.0 * passive_idle.joules() / Joules::from_watt_hours(watch.battery_wh).joules(),
        100.0 * lpl_idle.joules() / Joules::from_watt_hours(watch.battery_wh).joules(),
        watch.name
    );

    // And because the wake word arrives through the same front end, the
    // phone can power the whole exchange: tag-mode harvest check.
    println!("\n-- bonus: how far could the tag side run battery-free? --");
    let h = Harvester::wisp();
    let budget = LinkBudget::default();
    for (label, load) in [
        ("backscatter TX (36 µW)", Watts::from_microwatts(36.38)),
        ("passive chain (50 µW)", Watts::from_microwatts(50.0)),
        ("active MCU (6.6 mW)", Watts::from_milliwatts(6.6)),
    ] {
        let range = h.powered_range(&budget, Watts::from_dbm(13.0), load);
        match range {
            Some(r) if r.meters() >= 0.1 => println!("  {label:<24} powered up to {r}"),
            _ => println!("  {label:<24} cannot run on harvested power"),
        }
    }
}
