//! Camera offload: Pivothead camera glasses stream video to a laptop.
//!
//! Run with: `cargo run --release --example camera_offload`
//!
//! The paper's motivating data-rich wearable: "the Pivothead is a device
//! that has an outward-facing camera and streams at 30fps (similar to
//! GoPro and Google Glass), and Braidio improves lifetime by 35x for
//! communication between this device and a laptop." This example
//! reproduces that scenario and then walks the pair apart to show how the
//! benefit degrades through the Fig. 8 regimes.

use braidio::prelude::*;
use braidio::radio::characterization::Characterization;

fn main() {
    let glasses = devices::PIVOTHEAD;
    let laptop = devices::MACBOOK_PRO_13;

    println!(
        "== Camera offload: {} -> {} ==\n",
        glasses.name, laptop.name
    );

    let outcome = Transfer::between(glasses, laptop)
        .at_distance(Meters::new(0.5))
        .run();
    println!(
        "at 0.5 m: Braidio moves {:.0}x more video than Bluetooth",
        outcome.gain_over_bluetooth()
    );
    println!(
        "   (that is {:.1} hours of streaming vs {:.1} hours)\n",
        outcome.braidio.duration.hours(),
        outcome.bluetooth.duration.hours()
    );

    // Walk away from the desk: regime A -> B -> C.
    let ch = Characterization::braidio();
    println!("-- benefit vs distance (uplink: glasses transmit) --");
    println!(
        "{:>9} {:>8} {:>22} {:>8}",
        "distance", "regime", "braid (P/B shares)", "gain"
    );
    for d in [0.3, 0.6, 0.9, 1.2, 1.8, 2.4, 3.0, 4.0, 5.0, 6.0] {
        let dist = Meters::new(d);
        let regime = Regime::classify(&ch, dist);
        let o = Transfer::between(glasses, laptop).at_distance(dist).run();
        let b = &o.braidio;
        println!(
            "{:>8.1}m {:>8} {:>10.2} / {:<9.2} {:>7.1}x",
            d,
            format!("{:?}", regime),
            b.mode_share(Mode::Passive),
            b.mode_share(Mode::Backscatter),
            o.gain_over_bluetooth()
        );
    }

    println!("\n-- and the downlink (laptop pushes edits back) --");
    println!("{:>9} {:>8} {:>8}", "distance", "regime", "gain");
    for d in [0.5, 1.5, 2.5, 3.5, 4.5, 5.5] {
        let dist = Meters::new(d);
        let o = Transfer::between(laptop, glasses).at_distance(dist).run();
        println!(
            "{:>8.1}m {:>8} {:>7.1}x",
            d,
            format!("{:?}", Regime::classify(&ch, dist)),
            o.gain_over_bluetooth()
        );
    }
    println!("\nBeyond the passive range only the active mode closes the link,");
    println!("and Braidio's performance is identical to Bluetooth — by design,");
    println!("the active mode is the safety net (§3.1).");
}
