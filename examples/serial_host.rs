//! Serial host: drive a Braidio module purely over its byte protocol.
//!
//! Run with: `cargo run --release --example serial_host`
//!
//! Table 4's active radio provides its "Bluetooth abstraction over serial
//! interface"; a shipping Braidio module would expose the braided link the
//! same way. This example plays the host MCU: every interaction below is
//! encoded to wire bytes, executed by the module, and parsed back — no Rust
//! API crosses the boundary.

use braidio::driver::{Command, Driver, Event};
use braidio::prelude::*;

fn hex(bytes: &[u8]) -> String {
    bytes
        .iter()
        .map(|b| format!("{b:02x}"))
        .collect::<Vec<_>>()
        .join(" ")
}

fn exchange(driver: &mut Driver, cmd: Command) -> Event {
    let tx = cmd.encode();
    let rx = driver.execute(&tx);
    let event = Event::decode(&rx).expect("well-formed event");
    println!("host -> {:<28} {:?}", hex(&tx), cmd);
    println!("  <- {:<31} {:?}\n", hex(&rx), event);
    event
}

fn main() {
    println!("== Braidio over the wire: Apple Watch module, iPhone peer ==\n");
    let mut module = Driver::new(
        devices::APPLE_WATCH,
        devices::IPHONE_6S,
        LiveConfig::default(),
    );

    // Bring the link up.
    exchange(&mut module, Command::Reset);
    exchange(&mut module, Command::SetDistance(50)); // 0.5 m
    exchange(&mut module, Command::Probe);

    // Move a burst and look at the batteries.
    exchange(&mut module, Command::Send(1000));
    exchange(&mut module, Command::Status);

    // The user walks across the room; the module re-plans on its own.
    println!("-- user walks to 3 m --\n");
    exchange(&mut module, Command::SetDistance(300));
    exchange(&mut module, Command::Probe);
    exchange(&mut module, Command::Send(200));
    exchange(&mut module, Command::Status);

    println!("every byte above is the actual wire traffic: SOF 0x7e, length,");
    println!("opcode + args, CRC-16/CCITT — the same FCS the air frames use.");
}
