//! Wearable sync: bidirectional smartwatch ↔ phone traffic.
//!
//! Run with: `cargo run --release --example wearable_sync`
//!
//! A smartwatch is both a sensor (uplink: health data) and a display
//! (downlink: notifications) — the paper's Scenario 2. Equal data flows in
//! both directions, so the watch gets to use *backscatter* when talking and
//! the *passive receiver* when listening, and never runs a carrier at all.
//! The example also shows how the plan adapts as the phone's battery drains
//! through the day.

use braidio::prelude::*;

fn main() {
    let watch = devices::APPLE_WATCH;
    let phone = devices::IPHONE_6S;

    println!("== Wearable sync: {} <-> {} ==\n", watch.name, phone.name);

    // Bidirectional transfer at arm's length.
    let outcome = Transfer::between(watch, phone)
        .at_distance(Meters::new(0.4))
        .bidirectional()
        .run();

    println!("-- policy comparison (equal traffic both ways) --");
    println!("{:<22} {:>12} {:>14}", "policy", "bits", "lifetime");
    for (name, report) in [
        ("Braidio", &outcome.braidio),
        ("Bluetooth", &outcome.bluetooth),
        ("best single mode", &outcome.best_single),
    ] {
        println!(
            "{:<22} {:>12.3e} {:>14}",
            name, report.bits, report.duration
        );
    }
    println!(
        "\n=> gain over Bluetooth: {:.1}x, over best single mode: {:.2}x\n",
        outcome.gain_over_bluetooth(),
        outcome.gain_over_best_single()
    );

    // How the braid shifts as the phone's battery drains through the day.
    println!("-- plan vs. phone state of charge (watch at 80%) --");
    println!(
        "{:>10} {:>10} {:>10} {:>12} {:>10}",
        "phone SoC", "active%", "passive%", "backscatter%", "gain"
    );
    for soc in [1.0, 0.6, 0.3, 0.1, 0.03, 0.01] {
        let o = Transfer::between(watch, phone)
            .at_distance(Meters::new(0.4))
            .with_charge(0.8, soc)
            .run();
        let b = &o.braidio;
        println!(
            "{:>9.0}% {:>9.1}% {:>9.1}% {:>11.1}% {:>9.2}x",
            soc * 100.0,
            100.0 * b.mode_share(Mode::Active),
            100.0 * b.mode_share(Mode::Passive),
            100.0 * b.mode_share(Mode::Backscatter),
            o.gain_over_bluetooth()
        );
    }

    // A short live session with losses: watch streaming to phone in a noisy
    // environment, 10% injected drops.
    println!("\n-- live session, 10% injected packet drops --");
    let mut link = LiveLink::open(
        watch,
        phone,
        LiveConfig {
            distance: Meters::new(0.4),
            drop_chance: 0.10,
            payload_bytes: 64,
            seed: 42,
            ..LiveConfig::default()
        },
    );
    let stats = link.run_packets(5000);
    println!(
        "delivered {} / lost {} (delivery ratio {:.1}%), re-plans {}",
        stats.delivered,
        stats.lost,
        100.0 * stats.delivery_ratio(),
        stats.replans
    );
    if let Some(plan) = link.plan() {
        println!(
            "current braid: backscatter fraction {:.3}, exact proportionality: {}",
            plan.mode_fraction(Mode::Backscatter),
            plan.exact
        );
    }
}
