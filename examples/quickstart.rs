//! Quickstart: a fitness band streams sensor data to a laptop.
//!
//! Run with: `cargo run --release --example quickstart`
//!
//! Demonstrates the core Braidio idea end to end: the band has a 0.26 Wh
//! battery, the laptop 99.5 Wh. A symmetric Bluetooth link makes the band
//! pay ~86 nJ for every bit it sends; Braidio moves the carrier to the
//! laptop (backscatter mode) and the band pays ~0.04 nJ/bit instead.

use braidio::prelude::*;

fn main() {
    let band = devices::NIKE_FUEL_BAND;
    let laptop = devices::MACBOOK_PRO_15;

    println!("== Braidio quickstart ==\n");
    println!("transmitter: {band}");
    println!("receiver:    {laptop}\n");

    let transfer = Transfer::between(band, laptop).at_distance(Meters::new(0.5));
    let outcome = transfer.run();

    let b = &outcome.braidio;
    println!("-- Braidio (energy-aware carrier offload) --");
    println!("bits moved:   {:.3e}  ({:.1} GB)", b.bits, b.bits / 8e9);
    println!("link lifetime: {}", b.duration);
    println!(
        "mode mix:     active {:.1}%, passive {:.1}%, backscatter {:.1}%",
        100.0 * b.mode_share(Mode::Active),
        100.0 * b.mode_share(Mode::Passive),
        100.0 * b.mode_share(Mode::Backscatter),
    );
    println!("energy spent: band {}, laptop {}\n", b.e1_spent, b.e2_spent);

    let bt = &outcome.bluetooth;
    println!("-- Bluetooth baseline --");
    println!("bits moved:   {:.3e}  ({:.1} GB)", bt.bits, bt.bits / 8e9);
    println!("link lifetime: {}\n", bt.duration);

    println!(
        "=> Braidio moves {:.0}x more data before a battery dies",
        outcome.gain_over_bluetooth()
    );
    println!(
        "=> and {:.2}x more than the best single operating mode",
        outcome.gain_over_best_single()
    );
}
