//! The closed event vocabulary.
//!
//! Everything here is `Copy` and allocation-free: emitting an event when
//! telemetry is enabled costs one thread-local `Vec` push. The payload
//! types ([`ModeTag`], [`RateTag`]) mirror `braidio-radio`'s `Mode` and
//! `Rate` without depending on that crate — the telemetry bus sits *below*
//! `braidio-pool` in the dependency order (the pool merges telemetry
//! batches), and the radio stack sits above the pool.

use braidio_units::{Joules, Seconds};

/// What an event is about: one device, or one traffic pair.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Track {
    /// A device, by fleet index (the pairwise simulators use 0 = side 1,
    /// 1 = side 2).
    Device(u32),
    /// A traffic pair, by pair index (0 for pairwise simulators).
    Pair(u32),
}

impl Track {
    /// The compact track code used in sinks: `d3` / `p0`.
    pub fn code(&self) -> String {
        match self {
            Track::Device(d) => format!("d{d}"),
            Track::Pair(p) => format!("p{p}"),
        }
    }
}

/// Why a session ended.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum DeathReason {
    /// A battery was exhausted.
    BatteryDead,
    /// No mode closes the link (out of range / interference).
    NoViableMode,
    /// The device's dwell time ended: a graceful open-system departure.
    Departed,
    /// The session ran out of cooldown retries and gave up.
    GaveUp,
}

impl DeathReason {
    /// The snake_case code used in sinks.
    pub fn code(&self) -> &'static str {
        match self {
            DeathReason::BatteryDead => "battery_dead",
            DeathReason::NoViableMode => "no_viable_mode",
            DeathReason::Departed => "departed",
            DeathReason::GaveUp => "gave_up",
        }
    }
}

/// A session lifecycle phase, as carried by [`Event::PhaseChange`].
///
/// Mirrors `braidio-net`'s `lifecycle::LinkPhase` without depending on that
/// crate (telemetry sits below the radio stack in the dependency order);
/// the codes are the contract between the two.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum PhaseTag {
    /// Undiscovered: detector-only listening.
    Init,
    /// Admitted, measuring options.
    Probe,
    /// Plan installed, ramping.
    Warm,
    /// Steady-state exchange.
    Live,
    /// Energy-degraded, pinned to the cheapest mode.
    Degrade,
    /// Quiesced, awaiting retry or drop.
    Cooldown,
    /// Terminal.
    Dead,
}

impl PhaseTag {
    /// The snake_case code used in sinks.
    pub fn code(&self) -> &'static str {
        match self {
            PhaseTag::Init => "init",
            PhaseTag::Probe => "probe",
            PhaseTag::Warm => "warm",
            PhaseTag::Live => "live",
            PhaseTag::Degrade => "degrade",
            PhaseTag::Cooldown => "cooldown",
            PhaseTag::Dead => "dead",
        }
    }
}

/// A Braidio operating mode, as carried by events.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum ModeTag {
    /// Both endpoints generate the carrier.
    Active,
    /// Carrier at the data transmitter; passive receiver.
    Passive,
    /// Carrier at the data receiver; backscattering transmitter.
    Backscatter,
}

impl ModeTag {
    /// The display label, identical to `Mode::label()`.
    pub fn label(&self) -> &'static str {
        match self {
            ModeTag::Active => "Active",
            ModeTag::Passive => "Passive",
            ModeTag::Backscatter => "Backscatter",
        }
    }

    /// The snake_case code used in sinks.
    pub fn code(&self) -> &'static str {
        match self {
            ModeTag::Active => "active",
            ModeTag::Passive => "passive",
            ModeTag::Backscatter => "backscatter",
        }
    }
}

/// A link bitrate, as carried by events.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum RateTag {
    /// 10 kbit/s.
    Kbps10,
    /// 100 kbit/s.
    Kbps100,
    /// 1 Mbit/s.
    Mbps1,
}

impl RateTag {
    /// The display label, identical to `Rate::label()`.
    pub fn label(&self) -> &'static str {
        match self {
            RateTag::Kbps10 => "10k",
            RateTag::Kbps100 => "100k",
            RateTag::Mbps1 => "1M",
        }
    }
}

/// One simulation event. All timestamps are *simulated* seconds.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Event {
    /// The braid's primary mode changed (`from` is `None` at bring-up).
    ModeSwitch {
        /// Simulated time.
        at: Seconds,
        /// The pair whose braid switched.
        track: Track,
        /// Previous primary mode, if any.
        from: Option<ModeTag>,
        /// New primary mode.
        to: ModeTag,
    },
    /// A probe round re-solved the offload plan.
    Replan {
        /// Simulated time.
        at: Seconds,
        /// The pair that re-planned.
        track: Track,
        /// Whether a viable plan was installed.
        planned: bool,
        /// Whether the installed plan hits the exact power-proportional
        /// ratio (meaningless when `planned` is false).
        exact: bool,
        /// The plan's primary (largest-fraction) mode, if planned.
        primary: Option<ModeTag>,
    },
    /// A carrier reservation began for a pair's quantum in flight.
    CarrierGrant {
        /// Simulated time.
        at: Seconds,
        /// The pair holding the grant.
        track: Track,
    },
    /// The matching end of a [`Event::CarrierGrant`].
    CarrierRelease {
        /// Simulated time.
        at: Seconds,
        /// The pair releasing the grant.
        track: Track,
    },
    /// A braid quantum slice was delivered.
    QuantumDelivered {
        /// Simulated time (completion).
        at: Seconds,
        /// The pair that moved the bits.
        track: Track,
        /// Mode used.
        mode: ModeTag,
        /// Rate used.
        rate: RateTag,
        /// Link bits delivered.
        bits: f64,
    },
    /// A braid quantum slice was lost (session death or horizon cut it).
    QuantumLost {
        /// Simulated time.
        at: Seconds,
        /// The pair that lost the bits.
        track: Track,
        /// Mode in use.
        mode: ModeTag,
        /// Rate in use.
        rate: RateTag,
        /// Link bits lost.
        bits: f64,
    },
    /// Energy drawn from a device's battery. The fleet engine routes every
    /// draw through one emission point, so folding these events
    /// ([`crate::sink::fold_energy`]) reproduces each battery's drain
    /// exactly — the energy-ledger audit.
    EnergyDebit {
        /// Simulated time.
        at: Seconds,
        /// The device paying.
        track: Track,
        /// Energy drawn.
        joules: Joules,
    },
    /// A session ended.
    SessionDead {
        /// Simulated time.
        at: Seconds,
        /// The pair that died.
        track: Track,
        /// Why.
        reason: DeathReason,
    },
    /// A passive wakeup detector fired (association bring-up).
    WakeupDetect {
        /// Simulated time.
        at: Seconds,
        /// The device that woke.
        track: Track,
    },
    /// A session moved between lifecycle phases. Emitted only by
    /// open-system (churn) scenarios; per track, `from` of each event must
    /// equal the `to` of the previous one, a chain the JSONL validator
    /// checks.
    PhaseChange {
        /// Simulated time.
        at: Seconds,
        /// The pair whose session changed phase.
        track: Track,
        /// Phase left.
        from: PhaseTag,
        /// Phase entered.
        to: PhaseTag,
    },
    /// Discovery completed: a hub beacon reached the tag's wake-up
    /// detector and admitted the session to Probe.
    Admitted {
        /// Simulated time (the admission instant).
        at: Seconds,
        /// The pair admitted.
        track: Track,
        /// Seconds the tag waited in Init, paying detector-only power.
        latency: Seconds,
    },
}

impl Event {
    /// The event's simulated timestamp.
    pub fn at(&self) -> Seconds {
        match *self {
            Event::ModeSwitch { at, .. }
            | Event::Replan { at, .. }
            | Event::CarrierGrant { at, .. }
            | Event::CarrierRelease { at, .. }
            | Event::QuantumDelivered { at, .. }
            | Event::QuantumLost { at, .. }
            | Event::EnergyDebit { at, .. }
            | Event::SessionDead { at, .. }
            | Event::WakeupDetect { at, .. }
            | Event::PhaseChange { at, .. }
            | Event::Admitted { at, .. } => at,
        }
    }

    /// The track the event belongs to.
    pub fn track(&self) -> Track {
        match *self {
            Event::ModeSwitch { track, .. }
            | Event::Replan { track, .. }
            | Event::CarrierGrant { track, .. }
            | Event::CarrierRelease { track, .. }
            | Event::QuantumDelivered { track, .. }
            | Event::QuantumLost { track, .. }
            | Event::EnergyDebit { track, .. }
            | Event::SessionDead { track, .. }
            | Event::WakeupDetect { track, .. }
            | Event::PhaseChange { track, .. }
            | Event::Admitted { track, .. } => track,
        }
    }

    /// The snake_case event name used in sinks (the closed set the JSONL
    /// validator accepts).
    pub fn name(&self) -> &'static str {
        match self {
            Event::ModeSwitch { .. } => "mode_switch",
            Event::Replan { .. } => "replan",
            Event::CarrierGrant { .. } => "carrier_grant",
            Event::CarrierRelease { .. } => "carrier_release",
            Event::QuantumDelivered { .. } => "quantum_delivered",
            Event::QuantumLost { .. } => "quantum_lost",
            Event::EnergyDebit { .. } => "energy_debit",
            Event::SessionDead { .. } => "session_dead",
            Event::WakeupDetect { .. } => "wakeup_detect",
            Event::PhaseChange { .. } => "phase_change",
            Event::Admitted { .. } => "admitted",
        }
    }
}

/// An event stamped with its run and unit ids (see the crate docs for the
/// `(run, unit, track)` identity contract).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Stamped {
    /// Work-item id: run base (set per experiment) plus the local run set
    /// by [`crate::with_run`] around each parallel work item.
    pub run: u32,
    /// Simulation-session counter within the run; each unit's virtual
    /// clock starts at zero.
    pub unit: u32,
    /// The event.
    pub event: Event,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn codes_are_stable() {
        assert_eq!(Track::Device(3).code(), "d3");
        assert_eq!(Track::Pair(0).code(), "p0");
        assert_eq!(ModeTag::Backscatter.code(), "backscatter");
        assert_eq!(ModeTag::Backscatter.label(), "Backscatter");
        assert_eq!(RateTag::Mbps1.label(), "1M");
        assert_eq!(DeathReason::NoViableMode.code(), "no_viable_mode");
        assert_eq!(DeathReason::Departed.code(), "departed");
        assert_eq!(DeathReason::GaveUp.code(), "gave_up");
        assert_eq!(PhaseTag::Cooldown.code(), "cooldown");
    }

    #[test]
    fn accessors_cover_every_variant() {
        let t = Seconds::new(1.5);
        let events = [
            Event::ModeSwitch {
                at: t,
                track: Track::Pair(1),
                from: None,
                to: ModeTag::Active,
            },
            Event::Replan {
                at: t,
                track: Track::Pair(1),
                planned: true,
                exact: false,
                primary: Some(ModeTag::Passive),
            },
            Event::CarrierGrant {
                at: t,
                track: Track::Pair(1),
            },
            Event::CarrierRelease {
                at: t,
                track: Track::Pair(1),
            },
            Event::QuantumDelivered {
                at: t,
                track: Track::Pair(1),
                mode: ModeTag::Backscatter,
                rate: RateTag::Mbps1,
                bits: 512.0,
            },
            Event::QuantumLost {
                at: t,
                track: Track::Pair(1),
                mode: ModeTag::Active,
                rate: RateTag::Kbps10,
                bits: 8.0,
            },
            Event::EnergyDebit {
                at: t,
                track: Track::Device(0),
                joules: Joules::new(1e-6),
            },
            Event::SessionDead {
                at: t,
                track: Track::Pair(1),
                reason: DeathReason::BatteryDead,
            },
            Event::WakeupDetect {
                at: t,
                track: Track::Device(2),
            },
            Event::PhaseChange {
                at: t,
                track: Track::Pair(1),
                from: PhaseTag::Init,
                to: PhaseTag::Probe,
            },
            Event::Admitted {
                at: t,
                track: Track::Pair(1),
                latency: Seconds::new(0.25),
            },
        ];
        let mut names = std::collections::BTreeSet::new();
        for e in events {
            assert_eq!(e.at(), t);
            names.insert(e.name());
        }
        assert_eq!(names.len(), 11, "every variant has a distinct name");
    }
}
