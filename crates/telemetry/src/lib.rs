//! Deterministic telemetry for the Braidio simulation stack.
//!
//! Every layer of the simulator — the DES kernel, the fleet engine's
//! probe → plan → braid protocol, `mac::sim`'s epoch loop, the pairwise
//! `LiveLink` — can narrate what it does through one typed event bus. The
//! design contract, in order of importance:
//!
//! 1. **Zero cost when off.** Emission is gated on a process-wide
//!    `AtomicBool` read with `Relaxed` ordering; with no sink installed the
//!    instrumented hot paths pay one predictable branch.
//! 2. **Simulated time only.** [`Event`]s carry *virtual* seconds, never
//!    wall clock, so a trace is a pure function of the scenario: running
//!    `experiments fleet --trace-events` at `--jobs 1` and `--jobs 4`
//!    produces byte-identical files. Wall clock lives exclusively in
//!    [`span()`]-based profiling records, which are kept in a separate
//!    stream and never mixed into event sinks.
//! 3. **Thread-deterministic merging.** Worker threads buffer into
//!    thread-locals; `braidio-pool` drains each buffer at chunk boundaries
//!    and re-injects the batches in *chunk index order*, so the merged
//!    stream is the one a serial run would have produced.
//! 4. **Closed vocabulary.** The event set is a fixed enum
//!    ([`Event`]), not free-form strings, so sinks, validators and the
//!    energy-ledger audit can be exhaustive.
//!
//! Track identity is the triple `(run, unit, track)`: `run` is set by the
//! experiment driver per work item (see [`with_run`] / [`set_run_base`]),
//! `unit` counts simulation sessions within a run (each session restarts
//! its virtual clock at zero, see [`begin_unit`]), and [`Track`] names a
//! device or pair inside the session. Within one identity, event times are
//! monotone non-decreasing — a property [`sink::validate_jsonl`] checks.
//!
//! Sinks ([`sink`]) render the captured stream as schema-versioned JSONL,
//! as Chrome trace-event JSON loadable in Perfetto (one track per device),
//! and as the legacy tcpdump-style text lines that `braidio::trace` has
//! always printed. [`sink::fold_energy`] folds `EnergyDebit` events into a
//! per-device ledger, which the fleet experiment asserts against each
//! battery's measured drain — observability doubling as a correctness
//! oracle.

#![warn(missing_docs)]

pub mod bus;
pub mod event;
pub mod sink;
pub mod span;
pub mod timeseries;

pub use bus::{
    active, begin_unit, count, count_by, counters_snapshot, drain_thread, emit, enabled,
    events_snapshot, inject, profiling, run_base, set_enabled, set_profiling, set_run_base,
    spans_snapshot, take_events, take_spans, with_run, Batch,
};
pub use event::{DeathReason, Event, ModeTag, PhaseTag, RateTag, Stamped, Track};
pub use span::{span, Span, SpanRecord, MAX_SPAN_DEPTH};
pub use timeseries::{Sample, Series};

/// The shared unit types events are stamped with, re-exported so sinks and
/// tests can construct timestamps without a separate dependency.
pub use braidio_units as units;
