//! Deterministic fleet time series: sim-time-bucketed gauge samples.
//!
//! The event-level JSONL trace (schema 1) answers "what happened to this
//! session"; the time series answers "what did the fleet look like at t".
//! A [`Sample`] is one row of fleet-wide gauges taken at a fixed simulated
//! instant; a [`Series`] is one scenario's rows at a fixed cadence `dt`.
//!
//! Determinism comes for free: the engine's event loop is serial per
//! scenario (only planning-wave internals fan out across threads), so the
//! sampler that produces these rows observes one totally ordered state
//! stream and needs no cross-thread merge rule. Rows are therefore
//! byte-identical at any `--jobs`, and CI `cmp`s them.
//!
//! Two renderers share the row layout: [`render_csv`] (one header, one
//! line per row, `series` name in the first column) and [`render_jsonl`]
//! (schema header `{"schema":1,"stream":"braidio-timeseries",...}` then
//! one object per row). Floats print via `f64`'s shortest-round-trip
//! `Display`, the same byte-stability contract as the event sink.

/// Number of link-phase occupancy columns (mirrors the engine's
/// `LinkPhase` vocabulary; the engine asserts the widths agree).
pub const SAMPLE_PHASES: usize = 7;

/// Column names for the per-phase occupancy counts, in `LinkPhase` index
/// order.
pub const SAMPLE_PHASE_NAMES: [&str; SAMPLE_PHASES] = [
    "init", "probe", "warm", "live", "degrade", "cooldown", "dead",
];

/// Number of event-kind rate columns (mirrors the engine's scheduler
/// `Kind` vocabulary, in rank order).
pub const SAMPLE_KINDS: usize = 7;

/// Column names for the per-bucket event counts, in scheduler rank order.
pub const SAMPLE_KIND_NAMES: [&str; SAMPLE_KINDS] = [
    "associate",
    "status_exchanged",
    "probes_done",
    "replan",
    "quantum_done",
    "departure",
    "cooldown_done",
];

/// One sampled row of fleet gauges at simulated time `t`.
///
/// Instantaneous gauges (occupancy, batteries, caches) describe the state
/// *just before* any event scheduled at exactly `t` runs; windowed gauges
/// (`goodput_bps`, `events`) cover the half-open bucket `(t - dt, t]`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Sample {
    /// Simulated time of the sample, seconds.
    pub t: f64,
    /// Pairs per link phase, `LinkPhase` index order.
    pub phase_counts: [u32; SAMPLE_PHASES],
    /// Pairs currently on air (admitted and not dead or cooling down).
    pub live_pairs: u32,
    /// Minimum battery remaining fraction across non-mains devices.
    pub batt_min: f64,
    /// 10th-percentile battery remaining fraction (nearest rank).
    pub batt_p10: f64,
    /// Median battery remaining fraction (nearest rank).
    pub batt_p50: f64,
    /// 90th-percentile battery remaining fraction (nearest rank).
    pub batt_p90: f64,
    /// Cumulative delivered payload bits across all pairs.
    pub cum_bits: f64,
    /// Goodput over the bucket ending at `t`, bits per simulated second.
    pub goodput_bps: f64,
    /// Interference-cache rows currently marked dirty.
    pub cache_ndirty: u32,
    /// Options-memo hit rate since the run started (0 before any lookup).
    pub memo_hit_rate: f64,
    /// Events handled in the bucket ending at `t`, scheduler rank order.
    pub events: [u32; SAMPLE_KINDS],
}

/// One scenario's sampled rows at cadence `dt`.
#[derive(Debug, Clone, PartialEq)]
pub struct Series {
    /// Scenario label, first column of every CSV row (set by the caller
    /// that knows the grid naming; the engine leaves it empty).
    pub name: String,
    /// Sampling cadence, simulated seconds.
    pub dt: f64,
    /// Rows at t = 0, dt, 2·dt, ... horizon (inclusive of both ends).
    pub samples: Vec<Sample>,
}

/// The CSV header row shared by every series.
pub fn csv_header() -> String {
    let mut h = String::from("series,t");
    for p in SAMPLE_PHASE_NAMES {
        h.push_str(",ph_");
        h.push_str(p);
    }
    h.push_str(",live_pairs,batt_min,batt_p10,batt_p50,batt_p90");
    h.push_str(",cum_bits,goodput_bps,cache_ndirty,memo_hit_rate");
    for k in SAMPLE_KIND_NAMES {
        h.push_str(",ev_");
        h.push_str(k);
    }
    h
}

/// Render series as CSV: one shared header, then every row of every
/// series in order, tagged by series name in the first column.
pub fn render_csv(series: &[Series]) -> String {
    use std::fmt::Write as _;
    let mut out = csv_header();
    out.push('\n');
    for s in series {
        for r in &s.samples {
            let _ = write!(out, "{},{}", s.name, r.t);
            for c in r.phase_counts {
                let _ = write!(out, ",{c}");
            }
            let _ = write!(
                out,
                ",{},{},{},{},{}",
                r.live_pairs, r.batt_min, r.batt_p10, r.batt_p50, r.batt_p90
            );
            let _ = write!(
                out,
                ",{},{},{},{}",
                r.cum_bits, r.goodput_bps, r.cache_ndirty, r.memo_hit_rate
            );
            for c in r.events {
                let _ = write!(out, ",{c}");
            }
            out.push('\n');
        }
    }
    out
}

/// Render series as JSONL: a schema header line, then one object per row.
///
/// Key order is fixed (schema, then row fields in CSV column order) so the
/// output is byte-stable; arrays carry the phase/kind counts in the same
/// index order as the CSV columns.
pub fn render_jsonl(series: &[Series]) -> String {
    use std::fmt::Write as _;
    let mut out = String::from(
        "{\"schema\":1,\"stream\":\"braidio-timeseries\",\"time\":\"simulated-seconds\"}\n",
    );
    for s in series {
        for r in &s.samples {
            let _ = write!(out, "{{\"series\":\"{}\",\"t\":{}", s.name, r.t);
            out.push_str(",\"phases\":[");
            for (i, c) in r.phase_counts.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                let _ = write!(out, "{c}");
            }
            let _ = write!(
                out,
                "],\"live_pairs\":{},\"batt_min\":{},\"batt_p10\":{},\"batt_p50\":{},\"batt_p90\":{}",
                r.live_pairs, r.batt_min, r.batt_p10, r.batt_p50, r.batt_p90
            );
            let _ = write!(
                out,
                ",\"cum_bits\":{},\"goodput_bps\":{},\"cache_ndirty\":{},\"memo_hit_rate\":{}",
                r.cum_bits, r.goodput_bps, r.cache_ndirty, r.memo_hit_rate
            );
            out.push_str(",\"events\":[");
            for (i, c) in r.events.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                let _ = write!(out, "{c}");
            }
            out.push_str("]}\n");
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample(t: f64) -> Sample {
        Sample {
            t,
            phase_counts: [0, 1, 0, 3, 0, 0, 2],
            live_pairs: 4,
            batt_min: 0.25,
            batt_p10: 0.5,
            batt_p50: 0.75,
            batt_p90: 0.9,
            cum_bits: 1024.0,
            goodput_bps: 2048.0,
            cache_ndirty: 6,
            memo_hit_rate: 0.875,
            events: [1, 0, 0, 2, 7, 0, 0],
        }
    }

    fn series() -> Series {
        Series {
            name: "churn0.tdma".into(),
            dt: 0.5,
            samples: vec![sample(0.0), sample(0.5)],
        }
    }

    #[test]
    fn csv_header_matches_row_width() {
        let csv = render_csv(&[series()]);
        let mut lines = csv.lines();
        let header = lines.next().unwrap();
        let row = lines.next().unwrap();
        assert_eq!(
            header.split(',').count(),
            row.split(',').count(),
            "header {header} vs row {row}"
        );
        assert!(header.starts_with("series,t,ph_init,"));
        assert!(header.ends_with(",ev_departure,ev_cooldown_done"));
    }

    #[test]
    fn csv_rows_carry_series_name_and_values() {
        let csv = render_csv(&[series()]);
        let row = csv.lines().nth(1).unwrap();
        assert!(row.starts_with("churn0.tdma,0,"), "{row}");
        assert!(row.contains(",0.875,"), "{row}");
        let row2 = csv.lines().nth(2).unwrap();
        assert!(row2.starts_with("churn0.tdma,0.5,"), "{row2}");
    }

    #[test]
    fn jsonl_has_schema_header_and_fixed_keys() {
        let jsonl = render_jsonl(&[series()]);
        let mut lines = jsonl.lines();
        assert_eq!(
            lines.next().unwrap(),
            "{\"schema\":1,\"stream\":\"braidio-timeseries\",\"time\":\"simulated-seconds\"}"
        );
        let row = lines.next().unwrap();
        assert!(row.starts_with("{\"series\":\"churn0.tdma\",\"t\":0,\"phases\":[0,1,0,3,0,0,2],"));
        assert!(row.ends_with("\"events\":[1,0,0,2,7,0,0]}"));
    }

    #[test]
    fn empty_series_render_header_only() {
        assert_eq!(render_csv(&[]), csv_header() + "\n");
        assert_eq!(
            render_jsonl(&[]).lines().count(),
            1,
            "only the schema header"
        );
    }
}
