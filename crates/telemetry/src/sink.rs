//! Sinks: render a captured event stream, validate it, and fold it.
//!
//! All renderers are pure functions of the event slice, written by hand
//! (the workspace is dependency-free — no serde). Float formatting uses
//! Rust's `Display` for `f64`, which prints the shortest decimal that
//! round-trips — a deterministic, host-independent encoding, so rendered
//! traces are byte-identical whenever the event streams are.
//!
//! ## JSONL schema (version 1)
//!
//! The first line is a header object:
//!
//! ```json
//! {"schema":1,"stream":"braidio-telemetry","time":"simulated-seconds"}
//! ```
//!
//! Every following line is one event with this fixed key order:
//!
//! ```json
//! {"run":0,"unit":1,"track":"p0","t":1.25,"ev":"replan","planned":true,"exact":true,"primary":"backscatter"}
//! ```
//!
//! * `run`, `unit`, `track` — the identity triple (crate docs); `track`
//!   is `d<N>` for a device, `p<N>` for a pair;
//! * `t` — simulated seconds since the unit's clock zero;
//! * `ev` — one of `mode_switch`, `replan`, `carrier_grant`,
//!   `carrier_release`, `quantum_delivered`, `quantum_lost`,
//!   `energy_debit`, `session_dead`, `wakeup_detect`, `phase_change`,
//!   `admitted`;
//! * variant fields: `from`/`to` (mode codes on `mode_switch`, phase codes
//!   on `phase_change`; a `mode_switch` `from` may be `null`),
//!   `planned`/`exact`/`primary` (`primary` may be `null`), `mode`/`rate`/
//!   `bits`, `joules`, `reason` (`battery_dead` | `no_viable_mode` |
//!   `departed` | `gave_up`), `latency` (seconds, on `admitted`).
//!
//! Within one `(run, unit, track)` identity `t` is monotone non-decreasing
//! and `carrier_grant`/`carrier_release` strictly alternate starting with
//! a grant and ending balanced. Open-system (churn) traces additionally
//! carry `phase_change` chains: per track the chain starts from `init`,
//! each event's `from` equals the previous event's `to`, every hop is a
//! legal `lifecycle::step` transition, and once a track has declared
//! phases, `quantum_delivered` is only legal while it sits in `live` or
//! `degrade`. [`validate_jsonl`] checks all of it.

use crate::event::{DeathReason, Event, Stamped, Track};
use crate::span::SpanRecord;
use std::collections::BTreeMap;
use std::fmt::Write as _;

/// Render `x` as a JSON number (shortest round-trip decimal).
fn num(x: f64) -> String {
    debug_assert!(x.is_finite(), "telemetry numbers must be finite: {x}");
    format!("{x}")
}

/// Render the stream as schema-1 JSONL (see the module docs).
pub fn render_jsonl(events: &[Stamped]) -> String {
    let mut out = String::with_capacity(80 * events.len() + 80);
    out.push_str(
        "{\"schema\":1,\"stream\":\"braidio-telemetry\",\"time\":\"simulated-seconds\"}\n",
    );
    for s in events {
        let e = &s.event;
        let _ = write!(
            out,
            "{{\"run\":{},\"unit\":{},\"track\":\"{}\",\"t\":{},\"ev\":\"{}\"",
            s.run,
            s.unit,
            e.track().code(),
            num(e.at().seconds()),
            e.name()
        );
        match *e {
            Event::ModeSwitch { from, to, .. } => {
                let _ = write!(
                    out,
                    ",\"from\":{},\"to\":\"{}\"",
                    match from {
                        Some(m) => format!("\"{}\"", m.code()),
                        None => "null".to_string(),
                    },
                    to.code()
                );
            }
            Event::Replan {
                planned,
                exact,
                primary,
                ..
            } => {
                let _ = write!(
                    out,
                    ",\"planned\":{planned},\"exact\":{exact},\"primary\":{}",
                    match primary {
                        Some(m) => format!("\"{}\"", m.code()),
                        None => "null".to_string(),
                    }
                );
            }
            Event::CarrierGrant { .. } | Event::CarrierRelease { .. } => {}
            Event::QuantumDelivered {
                mode, rate, bits, ..
            }
            | Event::QuantumLost {
                mode, rate, bits, ..
            } => {
                let _ = write!(
                    out,
                    ",\"mode\":\"{}\",\"rate\":\"{}\",\"bits\":{}",
                    mode.code(),
                    rate.label(),
                    num(bits)
                );
            }
            Event::EnergyDebit { joules, .. } => {
                let _ = write!(out, ",\"joules\":{}", num(joules.joules()));
            }
            Event::SessionDead { reason, .. } => {
                let _ = write!(out, ",\"reason\":\"{}\"", reason.code());
            }
            Event::WakeupDetect { .. } => {}
            Event::PhaseChange { from, to, .. } => {
                let _ = write!(
                    out,
                    ",\"from\":\"{}\",\"to\":\"{}\"",
                    from.code(),
                    to.code()
                );
            }
            Event::Admitted { latency, .. } => {
                let _ = write!(out, ",\"latency\":{}", num(latency.seconds()));
            }
        }
        out.push_str("}\n");
    }
    out
}

/// The Chrome trace-event `tid` for a track within a unit: units are
/// spread one million apart, pairs offset half a million, so a fleet's
/// devices and pairs land on distinct, stably-ordered rows in Perfetto.
fn chrome_tid(unit: u32, track: Track) -> u64 {
    let base = unit as u64 * 1_000_000;
    match track {
        Track::Device(d) => base + d as u64,
        Track::Pair(p) => base + 500_000 + p as u64,
    }
}

/// Render the stream as Chrome trace-event JSON (open in Perfetto or
/// `chrome://tracing`): one process per run, one thread row per
/// `(unit, track)`, carrier grants/releases as B/E duration events and
/// everything else as instants. Timestamps are simulated seconds scaled to
/// the format's microseconds.
pub fn render_chrome(events: &[Stamped]) -> String {
    let mut out = String::with_capacity(160 * events.len() + 64);
    out.push_str("{\"traceEvents\":[\n");
    let mut first = true;
    let mut sep = |out: &mut String| {
        if !first {
            out.push_str(",\n");
        }
        first = false;
    };
    // Metadata rows, in order of first appearance (deterministic).
    let mut seen_runs: Vec<u32> = Vec::new();
    let mut seen_tracks: Vec<(u32, u32, Track)> = Vec::new();
    for s in events {
        if !seen_runs.contains(&s.run) {
            seen_runs.push(s.run);
            sep(&mut out);
            let _ = write!(
                out,
                "{{\"ph\":\"M\",\"pid\":{},\"tid\":0,\"name\":\"process_name\",\"args\":{{\"name\":\"run {}\"}}}}",
                s.run, s.run
            );
        }
        let key = (s.run, s.unit, s.event.track());
        if !seen_tracks.contains(&key) {
            seen_tracks.push(key);
            sep(&mut out);
            let _ = write!(
                out,
                "{{\"ph\":\"M\",\"pid\":{},\"tid\":{},\"name\":\"thread_name\",\"args\":{{\"name\":\"u{} {}\"}}}}",
                s.run,
                chrome_tid(s.unit, s.event.track()),
                s.unit,
                s.event.track().code()
            );
        }
    }
    for s in events {
        let e = &s.event;
        let ts = num(e.at().seconds() * 1e6);
        let tid = chrome_tid(s.unit, e.track());
        sep(&mut out);
        match *e {
            Event::CarrierGrant { .. } => {
                let _ = write!(
                    out,
                    "{{\"ph\":\"B\",\"pid\":{},\"tid\":{tid},\"ts\":{ts},\"name\":\"carrier\",\"cat\":\"carrier\"}}",
                    s.run
                );
            }
            Event::CarrierRelease { .. } => {
                let _ = write!(
                    out,
                    "{{\"ph\":\"E\",\"pid\":{},\"tid\":{tid},\"ts\":{ts},\"name\":\"carrier\",\"cat\":\"carrier\"}}",
                    s.run
                );
            }
            _ => {
                let mut args = String::new();
                match *e {
                    Event::ModeSwitch { from, to, .. } => {
                        let _ = write!(
                            args,
                            "\"from\":\"{}\",\"to\":\"{}\"",
                            from.map(|m| m.code()).unwrap_or("-"),
                            to.code()
                        );
                    }
                    Event::Replan {
                        planned,
                        exact,
                        primary,
                        ..
                    } => {
                        let _ = write!(
                            args,
                            "\"planned\":{planned},\"exact\":{exact},\"primary\":\"{}\"",
                            primary.map(|m| m.code()).unwrap_or("-")
                        );
                    }
                    Event::QuantumDelivered {
                        mode, rate, bits, ..
                    }
                    | Event::QuantumLost {
                        mode, rate, bits, ..
                    } => {
                        let _ = write!(
                            args,
                            "\"mode\":\"{}\",\"rate\":\"{}\",\"bits\":{}",
                            mode.code(),
                            rate.label(),
                            num(bits)
                        );
                    }
                    Event::EnergyDebit { joules, .. } => {
                        let _ = write!(args, "\"joules\":{}", num(joules.joules()));
                    }
                    Event::SessionDead { reason, .. } => {
                        let _ = write!(args, "\"reason\":\"{}\"", reason.code());
                    }
                    Event::PhaseChange { from, to, .. } => {
                        let _ = write!(
                            args,
                            "\"from\":\"{}\",\"to\":\"{}\"",
                            from.code(),
                            to.code()
                        );
                    }
                    Event::Admitted { latency, .. } => {
                        let _ = write!(args, "\"latency\":{}", num(latency.seconds()));
                    }
                    _ => {}
                }
                let _ = write!(
                    out,
                    "{{\"ph\":\"i\",\"pid\":{},\"tid\":{tid},\"ts\":{ts},\"name\":\"{}\",\"s\":\"t\",\"args\":{{{args}}}}}",
                    s.run,
                    e.name()
                );
            }
        }
    }
    out.push_str("\n]}\n");
    out
}

/// Render profiling spans in the collapsed-stacks ("folded") format that
/// flamegraph tooling consumes: one line per distinct stack path,
/// `outer;inner <self-µs>`, paths sorted lexicographically. The value is
/// *self* time — the path's total wall-clock microseconds minus the total
/// of its direct children (clamped at zero, rounded to whole µs) — so box
/// widths in a rendered flamegraph add up instead of double-counting
/// nested spans.
pub fn render_profile_folded(spans: &[SpanRecord]) -> String {
    let mut total: BTreeMap<String, f64> = BTreeMap::new();
    for s in spans {
        *total.entry(s.stack().join(";")).or_insert(0.0) += s.dur_us;
    }
    // A path's direct children are the paths one frame deeper; their
    // totals are time the parent spent inside them, not in itself.
    let mut child_sum: BTreeMap<&str, f64> = BTreeMap::new();
    for (path, &t) in &total {
        if let Some(i) = path.rfind(';') {
            *child_sum.entry(&path[..i]).or_insert(0.0) += t;
        }
    }
    let mut out = String::new();
    for (path, &t) in &total {
        let self_us = (t - child_sum.get(path.as_str()).copied().unwrap_or(0.0)).max(0.0);
        let _ = writeln!(out, "{path} {}", self_us.round() as u64);
    }
    out
}

/// Render profiling spans as Chrome trace-event JSON ("X" complete
/// events, wall-clock microseconds since the process profiling epoch, one
/// thread row per lane).
pub fn render_profile_chrome(spans: &[SpanRecord]) -> String {
    let mut out = String::with_capacity(96 * spans.len() + 64);
    out.push_str("{\"traceEvents\":[\n");
    for (i, s) in spans.iter().enumerate() {
        let comma = if i + 1 < spans.len() { "," } else { "" };
        let _ = writeln!(
            out,
            "{{\"ph\":\"X\",\"pid\":0,\"tid\":{},\"ts\":{},\"dur\":{},\"name\":\"{}\"}}{comma}",
            s.lane,
            num(s.start_us),
            num(s.dur_us),
            s.name
        );
    }
    out.push_str("]}\n");
    out
}

/// Render one event as the legacy tcpdump-style text line (no newline).
///
/// The `DATA`/`PLAN`/`DOWN`/`DEAD` formats are byte-for-byte the ones
/// `braidio::trace::TraceEvent` has always displayed — that Display now
/// delegates here, so pairwise and fleet traces share one vocabulary and
/// one renderer.
pub fn render_text_line(e: &Event) -> String {
    let t = e.at().seconds();
    match *e {
        Event::QuantumDelivered {
            mode, rate, bits, ..
        } => format!(
            "{:>12.6}s  DATA  {:<11} @{:<4} {:>4}B  ok",
            t,
            mode.label(),
            rate.label(),
            (bits / 8.0).round() as u64
        ),
        Event::QuantumLost {
            mode, rate, bits, ..
        } => format!(
            "{:>12.6}s  DATA  {:<11} @{:<4} {:>4}B  LOST",
            t,
            mode.label(),
            rate.label(),
            (bits / 8.0).round() as u64
        ),
        Event::Replan { planned, .. } => format!(
            "{:>12.6}s  PLAN  {}",
            t,
            if planned {
                "installed"
            } else {
                "no viable mode"
            }
        ),
        Event::SessionDead {
            reason: DeathReason::NoViableMode,
            ..
        } => format!("{:>12.6}s  DOWN  link out of range", t),
        Event::SessionDead {
            reason: DeathReason::BatteryDead,
            ..
        } => format!("{:>12.6}s  DEAD  battery exhausted", t),
        Event::SessionDead {
            reason: DeathReason::Departed,
            ..
        } => format!("{:>12.6}s  GONE  departed", t),
        Event::SessionDead {
            reason: DeathReason::GaveUp,
            ..
        } => format!("{:>12.6}s  DEAD  gave up after cooldowns", t),
        Event::ModeSwitch { from, to, .. } => format!(
            "{:>12.6}s  MODE  {} -> {}",
            t,
            from.map(|m| m.label()).unwrap_or("-"),
            to.label()
        ),
        Event::CarrierGrant { .. } => format!("{:>12.6}s  CARR  up", t),
        Event::CarrierRelease { .. } => format!("{:>12.6}s  CARR  down", t),
        Event::EnergyDebit { joules, .. } => {
            format!("{:>12.6}s  DRAW  {:.3e} J", t, joules.joules())
        }
        Event::WakeupDetect { .. } => format!("{:>12.6}s  WAKE  detector fired", t),
        Event::PhaseChange { from, to, .. } => {
            format!("{:>12.6}s  PHSE  {} -> {}", t, from.code(), to.code())
        }
        Event::Admitted { latency, .. } => {
            format!("{:>12.6}s  ADMT  after {:.6}s", t, latency.seconds())
        }
    }
}

/// What [`validate_jsonl`] measured about a valid trace.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceSummary {
    /// Event lines (excluding the header).
    pub events: usize,
    /// Distinct `(run, unit, track)` identities.
    pub tracks: usize,
}

/// Pull the value of `"key":` out of a rendered schema-1 JSONL line.
/// String values come back without their quotes; numbers, booleans and
/// `null` come back as their raw text. Public so the offline analyzer can
/// re-use the exact parser the validator trusts instead of growing a
/// second one.
pub fn parse_field<'a>(line: &'a str, key: &str) -> Option<&'a str> {
    let pat = format!("\"{key}\":");
    let i = line.find(&pat)? + pat.len();
    let rest = &line[i..];
    if let Some(stripped) = rest.strip_prefix('"') {
        let close = stripped.find('"')?;
        Some(&stripped[..close])
    } else {
        let end = rest.find([',', '}'])?;
        Some(&rest[..end])
    }
}

/// The closed set of event names schema 1 admits.
const EVENT_NAMES: [&str; 11] = [
    "mode_switch",
    "replan",
    "carrier_grant",
    "carrier_release",
    "quantum_delivered",
    "quantum_lost",
    "energy_debit",
    "session_dead",
    "wakeup_detect",
    "phase_change",
    "admitted",
];

/// The legal lifecycle hops a `phase_change` line may declare, mirroring
/// `braidio-net`'s `lifecycle::step` table minus its self-loops (the
/// engine emits a `phase_change` only when the phase actually changes).
const PHASE_HOPS: [(&str, &str); 17] = [
    ("init", "probe"),
    ("init", "dead"),
    ("probe", "warm"),
    ("probe", "cooldown"),
    ("probe", "dead"),
    ("warm", "live"),
    ("warm", "degrade"),
    ("warm", "cooldown"),
    ("warm", "dead"),
    ("live", "degrade"),
    ("live", "cooldown"),
    ("live", "dead"),
    ("degrade", "live"),
    ("degrade", "cooldown"),
    ("degrade", "dead"),
    ("cooldown", "probe"),
    ("cooldown", "dead"),
];

/// Per-identity running state the validator maintains.
#[derive(Default)]
struct TrackState {
    last_t: f64,
    carrier_held: bool,
    /// Current lifecycle phase, once the track has declared one. `None`
    /// for closed-scenario tracks, which never emit `phase_change` and
    /// whose deliveries are therefore not phase-gated.
    phase: Option<String>,
}

/// Everything [`validate_jsonl_full`] measured about a trace, valid or
/// not: the summary of what parsed, plus every violation found.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceReport {
    /// What parsed (events with a valid identity and known name count even
    /// when a semantic rule flags them — the analyzer still wants them).
    pub summary: TraceSummary,
    /// Every violation in line order, each message prefixed with its
    /// 1-based line number (`line 7: ...`); end-of-trace checks (unreleased
    /// carrier grants) come last without a line prefix.
    pub violations: Vec<String>,
}

/// Validate a schema-1 JSONL trace, accumulating *every* violation instead
/// of stopping at the first: header present, every line parses with the
/// required identity fields, event names are in the closed set,
/// per-identity time is monotone non-decreasing, carrier grants and
/// releases alternate and balance per identity, `phase_change` chains are
/// consistent (start from `init`, `from` matches the running phase, every
/// hop legal), and phase-declaring tracks only deliver quanta in `live` or
/// `degrade`.
///
/// Recovery after a violation is local so one bad line does not cascade:
/// an unparseable line is skipped; a backwards timestamp leaves the
/// running high-water mark in place; a broken phase hop adopts the
/// declared `to` phase; unbalanced grants keep the state that the majority
/// of the evidence supports.
pub fn validate_jsonl_full(jsonl: &str) -> TraceReport {
    let mut violations: Vec<String> = Vec::new();
    let mut lines = jsonl.lines().enumerate();
    let empty = TraceSummary {
        events: 0,
        tracks: 0,
    };
    let Some((_, header)) = lines.next() else {
        return TraceReport {
            summary: empty,
            violations: vec!["empty trace".into()],
        };
    };
    if !header.contains("\"schema\":1") || !header.contains("\"stream\":\"braidio-telemetry\"") {
        return TraceReport {
            summary: empty,
            violations: vec![format!("bad header: {header}")],
        };
    }
    let mut state: BTreeMap<(u32, u32, String), TrackState> = BTreeMap::new();
    let mut events = 0usize;
    for (i, line) in lines {
        let n = i + 1; // 1-based line number
        if !(line.starts_with('{') && line.ends_with('}')) {
            violations.push(format!("line {n}: not a JSON object: {line}"));
            continue;
        }
        let run: Option<u32> = parse_field(line, "run").and_then(|v| v.parse().ok());
        let Some(run) = run else {
            violations.push(format!("line {n}: missing/bad \"run\""));
            continue;
        };
        let unit: Option<u32> = parse_field(line, "unit").and_then(|v| v.parse().ok());
        let Some(unit) = unit else {
            violations.push(format!("line {n}: missing/bad \"unit\""));
            continue;
        };
        let Some(track) = parse_field(line, "track").filter(|v| {
            (v.starts_with('d') || v.starts_with('p'))
                && v.len() > 1
                && v[1..].chars().all(|c| c.is_ascii_digit())
        }) else {
            violations.push(format!("line {n}: missing/bad \"track\""));
            continue;
        };
        let Some(t) = parse_field(line, "t")
            .and_then(|v| v.parse().ok())
            .filter(|t: &f64| t.is_finite() && *t >= 0.0)
        else {
            violations.push(format!("line {n}: missing/bad \"t\""));
            continue;
        };
        let Some(ev) = parse_field(line, "ev") else {
            violations.push(format!("line {n}: missing \"ev\""));
            continue;
        };
        if !EVENT_NAMES.contains(&ev) {
            violations.push(format!("line {n}: unknown event \"{ev}\""));
            continue;
        }
        let entry = state.entry((run, unit, track.to_string())).or_default();
        if t < entry.last_t {
            violations.push(format!(
                "line {n}: time went backwards on ({run},{unit},{track}): {t} < {}",
                entry.last_t
            ));
            // Keep the high-water mark: later events at legal times pass.
        } else {
            entry.last_t = t;
        }
        match ev {
            "carrier_grant" => {
                if entry.carrier_held {
                    violations.push(format!(
                        "line {n}: carrier_grant while already granted on ({run},{unit},{track})"
                    ));
                }
                entry.carrier_held = true;
            }
            "carrier_release" => {
                if !entry.carrier_held {
                    violations.push(format!(
                        "line {n}: carrier_release without a grant on ({run},{unit},{track})"
                    ));
                }
                entry.carrier_held = false;
            }
            "phase_change" => {
                let from = parse_field(line, "from");
                let to = parse_field(line, "to");
                let (Some(from), Some(to)) = (from, to) else {
                    violations.push(format!(
                        "line {n}: phase_change missing \"{}\"",
                        if from.is_none() { "from" } else { "to" }
                    ));
                    continue;
                };
                let current = entry.phase.as_deref().unwrap_or("init");
                if from != current {
                    violations.push(format!(
                        "line {n}: phase chain broken on ({run},{unit},{track}): \
                         from \"{from}\" but track is in \"{current}\""
                    ));
                }
                if !PHASE_HOPS.contains(&(from, to)) {
                    violations.push(format!(
                        "line {n}: illegal phase transition \"{from}\" -> \"{to}\" \
                         on ({run},{unit},{track})"
                    ));
                }
                // Adopt the declared destination either way so one broken
                // hop does not flag every later hop in the chain.
                entry.phase = Some(to.to_string());
            }
            "quantum_delivered" => {
                if let Some(phase) = entry.phase.as_deref() {
                    if phase != "live" && phase != "degrade" {
                        violations.push(format!(
                            "line {n}: quantum_delivered in phase \"{phase}\" \
                             on ({run},{unit},{track})"
                        ));
                    }
                }
            }
            "admitted" => {
                let ok = parse_field(line, "latency")
                    .and_then(|v| v.parse::<f64>().ok())
                    .is_some_and(|l| l.is_finite() && l >= 0.0);
                if !ok {
                    violations.push(format!("line {n}: missing/bad \"latency\""));
                }
            }
            _ => {}
        }
        events += 1;
    }
    for ((run, unit, track), st) in &state {
        if st.carrier_held {
            violations.push(format!(
                "unreleased carrier_grant on ({run},{unit},{track})"
            ));
        }
    }
    TraceReport {
        summary: TraceSummary {
            events,
            tracks: state.len(),
        },
        violations,
    }
}

/// Validate a schema-1 JSONL trace (see [`validate_jsonl_full`] for the
/// rule set). Returns the summary when clean; otherwise an error joining
/// every violation found, one per line.
pub fn validate_jsonl(jsonl: &str) -> Result<TraceSummary, String> {
    let report = validate_jsonl_full(jsonl);
    if report.violations.is_empty() {
        Ok(report.summary)
    } else {
        Err(report.violations.join("\n"))
    }
}

/// Fold every `EnergyDebit` in stream order into a per-`(run, track)`
/// ledger (joules). Summation follows the stream, which for a serial (or
/// pool-merged) capture is the exact order the engine charged the
/// batteries in — so the ledger reproduces each device's `spent`
/// accumulator bit-for-bit, and the fleet audit can assert equality to
/// 1e-9 without worrying about float reassociation.
pub fn fold_energy(events: &[Stamped]) -> BTreeMap<(u32, Track), f64> {
    let mut ledger = BTreeMap::new();
    for s in events {
        if let Event::EnergyDebit { track, joules, .. } = s.event {
            *ledger.entry((s.run, track)).or_insert(0.0) += joules.joules();
        }
    }
    ledger
}

/// Fold the `energy_debit` lines of a schema-1 JSONL trace into a
/// per-`(run, track)` ledger, returning `(plain, compensated)` joules per
/// identity: `plain` is the naive stream-order sum (the same order the
/// engine's `spent` accumulator used), `compensated` is a Kahan sum over
/// the identical stream. The offline analyzer compares the two — a
/// relative gap beyond ~1e-9 means the plain fold lost precision, i.e. the
/// trace's debits cannot reproduce the engine's ledger bit-for-bit, which
/// it flags as ledger drift. Lines that do not parse are skipped (run the
/// validator for diagnostics).
pub fn fold_energy_jsonl(jsonl: &str) -> BTreeMap<(u32, String), (f64, f64)> {
    // value = (plain sum, kahan sum, kahan compensation)
    let mut ledger: BTreeMap<(u32, String), (f64, f64, f64)> = BTreeMap::new();
    for line in jsonl.lines().skip(1) {
        if parse_field(line, "ev") != Some("energy_debit") {
            continue;
        }
        let run: Option<u32> = parse_field(line, "run").and_then(|v| v.parse().ok());
        let track = parse_field(line, "track");
        let joules: Option<f64> = parse_field(line, "joules").and_then(|v| v.parse().ok());
        let (Some(run), Some(track), Some(j)) = (run, track, joules) else {
            continue;
        };
        let e = ledger
            .entry((run, track.to_string()))
            .or_insert((0.0, 0.0, 0.0));
        e.0 += j;
        let y = j - e.2;
        let t = e.1 + y;
        e.2 = (t - e.1) - y;
        e.1 = t;
    }
    ledger
        .into_iter()
        .map(|(k, (plain, kahan, _))| (k, (plain, kahan)))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::{ModeTag, RateTag};
    use braidio_units::{Joules, Seconds};

    fn sample() -> Vec<Stamped> {
        let p = Track::Pair(0);
        let d = Track::Device(1);
        let s = |event| Stamped {
            run: 3,
            unit: 1,
            event,
        };
        vec![
            s(Event::WakeupDetect {
                at: Seconds::new(0.0),
                track: d,
            }),
            s(Event::Replan {
                at: Seconds::new(0.001),
                track: p,
                planned: true,
                exact: true,
                primary: Some(ModeTag::Backscatter),
            }),
            s(Event::ModeSwitch {
                at: Seconds::new(0.001),
                track: p,
                from: None,
                to: ModeTag::Backscatter,
            }),
            s(Event::CarrierGrant {
                at: Seconds::new(0.001),
                track: p,
            }),
            s(Event::EnergyDebit {
                at: Seconds::new(0.2),
                track: d,
                joules: Joules::new(0.125),
            }),
            s(Event::EnergyDebit {
                at: Seconds::new(0.2),
                track: d,
                joules: Joules::new(0.25),
            }),
            s(Event::QuantumDelivered {
                at: Seconds::new(0.2),
                track: p,
                mode: ModeTag::Backscatter,
                rate: RateTag::Mbps1,
                bits: 512.0,
            }),
            s(Event::CarrierRelease {
                at: Seconds::new(0.2),
                track: p,
            }),
            s(Event::SessionDead {
                at: Seconds::new(0.2),
                track: p,
                reason: DeathReason::BatteryDead,
            }),
        ]
    }

    #[test]
    fn jsonl_round_trips_through_the_validator() {
        let jsonl = render_jsonl(&sample());
        let summary = validate_jsonl(&jsonl).expect("valid");
        assert_eq!(summary.events, 9);
        assert_eq!(summary.tracks, 2);
        assert!(jsonl.contains(
            "\"ev\":\"replan\",\"planned\":true,\"exact\":true,\"primary\":\"backscatter\""
        ));
        assert!(jsonl.contains("\"joules\":0.125"));
    }

    #[test]
    fn validator_rejects_time_reversal() {
        let mut bad = sample();
        bad.push(Stamped {
            run: 3,
            unit: 1,
            event: Event::Replan {
                at: Seconds::new(0.1),
                track: Track::Pair(0),
                planned: false,
                exact: false,
                primary: None,
            },
        });
        let err = validate_jsonl(&render_jsonl(&bad)).unwrap_err();
        assert!(err.contains("backwards"), "{err}");
    }

    #[test]
    fn validator_rejects_unbalanced_grants() {
        let mut bad = sample();
        bad.truncate(5); // drop the release (and what follows)
        let err = validate_jsonl(&render_jsonl(&bad)).unwrap_err();
        assert!(err.contains("unreleased"), "{err}");

        let mut double = sample();
        double.insert(
            4,
            Stamped {
                run: 3,
                unit: 1,
                event: Event::CarrierGrant {
                    at: Seconds::new(0.002),
                    track: Track::Pair(0),
                },
            },
        );
        let err = validate_jsonl(&render_jsonl(&double)).unwrap_err();
        assert!(err.contains("already granted"), "{err}");
    }

    #[test]
    fn validator_rejects_foreign_events() {
        let jsonl = "{\"schema\":1,\"stream\":\"braidio-telemetry\",\"time\":\"simulated-seconds\"}\n{\"run\":0,\"unit\":0,\"track\":\"p0\",\"t\":0,\"ev\":\"surprise\"}\n";
        assert!(validate_jsonl(jsonl).unwrap_err().contains("unknown event"));
    }

    #[test]
    fn validator_tracks_phase_chains() {
        use crate::event::PhaseTag;
        let s = |event| Stamped {
            run: 0,
            unit: 0,
            event,
        };
        let chain = |hops: &[(PhaseTag, PhaseTag)]| -> Vec<Stamped> {
            hops.iter()
                .enumerate()
                .map(|(i, &(from, to))| {
                    s(Event::PhaseChange {
                        at: Seconds::new(i as f64),
                        track: Track::Pair(0),
                        from,
                        to,
                    })
                })
                .collect()
        };
        // A legal full ride through the machine.
        let mut good = vec![s(Event::Admitted {
            at: Seconds::new(0.0),
            track: Track::Pair(0),
            latency: Seconds::new(0.0),
        })];
        good.extend(chain(&[
            (PhaseTag::Init, PhaseTag::Probe),
            (PhaseTag::Probe, PhaseTag::Warm),
            (PhaseTag::Warm, PhaseTag::Live),
            (PhaseTag::Live, PhaseTag::Degrade),
            (PhaseTag::Degrade, PhaseTag::Cooldown),
            (PhaseTag::Cooldown, PhaseTag::Dead),
        ]));
        validate_jsonl(&render_jsonl(&good)).expect("legal chain");

        // A chain that starts anywhere but Init is broken.
        let bad = chain(&[(PhaseTag::Probe, PhaseTag::Warm)]);
        let err = validate_jsonl(&render_jsonl(&bad)).unwrap_err();
        assert!(err.contains("phase chain broken"), "{err}");

        // A hop outside the lifecycle table is illegal even if chained.
        let bad = chain(&[
            (PhaseTag::Init, PhaseTag::Probe),
            (PhaseTag::Probe, PhaseTag::Live),
        ]);
        let err = validate_jsonl(&render_jsonl(&bad)).unwrap_err();
        assert!(err.contains("illegal phase transition"), "{err}");
    }

    #[test]
    fn validator_gates_delivery_on_phase() {
        use crate::event::PhaseTag;
        let s = |event| Stamped {
            run: 0,
            unit: 0,
            event,
        };
        let delivered = s(Event::QuantumDelivered {
            at: Seconds::new(2.0),
            track: Track::Pair(0),
            mode: ModeTag::Backscatter,
            rate: RateTag::Mbps1,
            bits: 64.0,
        });
        // Without any phase declaration (closed scenarios) delivery is
        // ungated — the legacy sample() trace stays valid elsewhere.
        validate_jsonl(&render_jsonl(&[delivered])).expect("ungated");
        // Declared Probe: delivery must be rejected.
        let bad = vec![
            s(Event::PhaseChange {
                at: Seconds::new(0.0),
                track: Track::Pair(0),
                from: PhaseTag::Init,
                to: PhaseTag::Probe,
            }),
            delivered,
        ];
        let err = validate_jsonl(&render_jsonl(&bad)).unwrap_err();
        assert!(err.contains("quantum_delivered in phase"), "{err}");
    }

    #[test]
    fn energy_ledger_folds_in_stream_order() {
        let ledger = fold_energy(&sample());
        assert_eq!(ledger.len(), 1);
        assert_eq!(ledger[&(3, Track::Device(1))], 0.375);
    }

    #[test]
    fn text_renderer_keeps_the_legacy_formats() {
        let line = render_text_line(&Event::QuantumDelivered {
            at: Seconds::new(0.000123),
            track: Track::Pair(0),
            mode: ModeTag::Backscatter,
            rate: RateTag::Mbps1,
            bits: 512.0,
        });
        assert_eq!(line, "    0.000123s  DATA  Backscatter @1M     64B  ok");
        let line = render_text_line(&Event::SessionDead {
            at: Seconds::new(1.0),
            track: Track::Pair(0),
            reason: DeathReason::NoViableMode,
        });
        assert_eq!(line, "    1.000000s  DOWN  link out of range");
    }

    #[test]
    fn chrome_trace_has_tracks_and_carrier_slices() {
        let chrome = render_chrome(&sample());
        assert!(chrome.contains("\"name\":\"process_name\""));
        assert!(chrome.contains("\"name\":\"u1 p0\""));
        assert!(chrome.contains("\"ph\":\"B\""));
        assert!(chrome.contains("\"ph\":\"E\""));
        assert!(chrome.contains("\"ph\":\"i\""));
    }

    #[test]
    fn profile_chrome_renders_complete_events() {
        let spans = [SpanRecord::leaf("net.replan", 2, 10.0, 1.5)];
        let out = render_profile_chrome(&spans);
        assert!(out.contains("\"ph\":\"X\""));
        assert!(out.contains("\"tid\":2"));
        assert!(out.contains("\"dur\":1.5"));
    }

    #[test]
    fn folded_profile_attributes_self_time() {
        // One pool.chunk instance spent 100µs, of which 60µs inside
        // net.replan, of which 25µs inside net.wave; plus a second bare
        // chunk at 40µs. Self times: chunk 100-60+40=80, replan 35, wave 25.
        let nested = SpanRecord::leaf("pool.chunk", 0, 0.0, 100.0);
        let mut replan = SpanRecord::leaf("net.replan", 0, 5.0, 60.0);
        replan.path = ["pool.chunk", "net.replan", "", ""];
        replan.depth = 2;
        let mut wave = SpanRecord::leaf("net.wave", 0, 10.0, 25.0);
        wave.path = ["pool.chunk", "net.replan", "net.wave", ""];
        wave.depth = 3;
        let bare = SpanRecord::leaf("pool.chunk", 1, 200.0, 40.0);
        let out = render_profile_folded(&[wave, replan, nested, bare]);
        assert_eq!(
            out,
            "pool.chunk 80\npool.chunk;net.replan 35\npool.chunk;net.replan;net.wave 25\n"
        );
    }

    #[test]
    fn validator_accumulates_every_violation() {
        let jsonl = "{\"schema\":1,\"stream\":\"braidio-telemetry\",\"time\":\"simulated-seconds\"}\n\
            {\"run\":0,\"unit\":0,\"track\":\"p0\",\"t\":1,\"ev\":\"carrier_grant\"}\n\
            {\"run\":0,\"unit\":0,\"track\":\"p0\",\"t\":0.5,\"ev\":\"replan\",\"planned\":true,\"exact\":true,\"primary\":null}\n\
            {\"run\":0,\"unit\":0,\"track\":\"p0\",\"t\":2,\"ev\":\"surprise\"}\n\
            {\"run\":0,\"unit\":0,\"track\":\"p0\",\"t\":3,\"ev\":\"carrier_grant\"}\n";
        let report = validate_jsonl_full(jsonl);
        // Backwards time + unknown event + double grant + unreleased at end.
        assert_eq!(report.violations.len(), 4, "{:?}", report.violations);
        assert!(
            report.violations[0].contains("line 3: "),
            "{:?}",
            report.violations
        );
        assert!(report.violations[0].contains("backwards"));
        assert!(report.violations[1].contains("line 4: "));
        assert!(report.violations[1].contains("unknown event"));
        assert!(report.violations[2].contains("line 5: "));
        assert!(report.violations[2].contains("already granted"));
        assert!(report.violations[3].contains("unreleased"));
        // The parseable lines still counted.
        assert_eq!(report.summary.events, 3);
        // The Err wrapper joins them all.
        let err = validate_jsonl(jsonl).unwrap_err();
        assert_eq!(err.lines().count(), 4);
    }

    #[test]
    fn jsonl_energy_fold_matches_event_fold() {
        let jsonl = render_jsonl(&sample());
        let ledger = fold_energy_jsonl(&jsonl);
        assert_eq!(ledger.len(), 1);
        let (plain, kahan) = ledger[&(3, "d1".to_string())];
        assert_eq!(plain, 0.375);
        assert_eq!(kahan, 0.375);
    }
}
