//! The event bus: process-wide switches, thread-local buffers, and the
//! batch drain/inject protocol `braidio-pool` uses to merge worker
//! buffers deterministically.
//!
//! Fast path: [`emit`], [`count`] and [`crate::span()`] each start with one
//! `Relaxed` load of a static `AtomicBool`; when the corresponding switch
//! is off they return immediately, so uninstrumented runs pay a single
//! predictable branch per call site (`experiments` output is byte-identical
//! with and without the switches thrown — see `DESIGN.md` §9).
//!
//! Buffering: everything lands in thread-locals. Serial code therefore
//! accumulates its stream in program order on the calling thread. Parallel
//! code goes through `braidio-pool`, whose workers call [`drain_thread`] at
//! every chunk boundary; the pool hands the batches back to the caller in
//! chunk index order, and [`inject`] appends them to the caller's buffers —
//! reproducing the exact stream a serial run would have written.

use crate::event::{Event, Stamped};
use crate::span::SpanRecord;
use std::cell::RefCell;
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicBool, AtomicU32, Ordering};

/// Event capture switch (`--trace-events` / `--trace-chrome`).
static EVENTS_ON: AtomicBool = AtomicBool::new(false);
/// Wall-clock span capture switch (`--profile`).
static PROFILE_ON: AtomicBool = AtomicBool::new(false);
/// Run-id base, set serially by the experiment driver per experiment so
/// run ids never collide across experiments in one invocation.
static RUN_BASE: AtomicU32 = AtomicU32::new(0);

struct Local {
    run: u32,
    unit: u32,
    unit_next: u32,
    events: Vec<Stamped>,
    spans: Vec<SpanRecord>,
    counters: BTreeMap<&'static str, u64>,
}

thread_local! {
    static LOCAL: RefCell<Local> = const {
        RefCell::new(Local {
            run: 0,
            unit: 0,
            unit_next: 0,
            events: Vec::new(),
            spans: Vec::new(),
            counters: BTreeMap::new(),
        })
    };
}

/// Is event capture on?
#[inline]
pub fn enabled() -> bool {
    EVENTS_ON.load(Ordering::Relaxed)
}

/// Turn event capture on or off (process-wide).
pub fn set_enabled(on: bool) {
    EVENTS_ON.store(on, Ordering::SeqCst);
}

/// Is wall-clock profiling on?
#[inline]
pub fn profiling() -> bool {
    PROFILE_ON.load(Ordering::Relaxed)
}

/// Turn wall-clock profiling on or off (process-wide).
pub fn set_profiling(on: bool) {
    PROFILE_ON.store(on, Ordering::SeqCst);
}

/// Is any capture (events, counters, or spans) on? The pool drains worker
/// buffers only when this is true.
#[inline]
pub fn active() -> bool {
    enabled() || profiling()
}

/// Set the run-id base added to every local run id (the experiment driver
/// calls this serially, once per experiment).
pub fn set_run_base(base: u32) {
    RUN_BASE.store(base, Ordering::SeqCst);
}

/// The current run-id base.
pub fn run_base() -> u32 {
    RUN_BASE.load(Ordering::SeqCst)
}

/// Run `f` with this thread's local run id set to `run` (and a fresh unit
/// counter), restoring the previous ids afterwards. Parallel experiments
/// wrap each work item in `with_run(item_index, ..)` so the item's events
/// are stamped with a stable id regardless of which worker ran it.
pub fn with_run<R>(run: u32, f: impl FnOnce() -> R) -> R {
    let prev = LOCAL.with(|l| {
        let mut l = l.borrow_mut();
        let prev = (l.run, l.unit, l.unit_next);
        l.run = run;
        l.unit = 0;
        l.unit_next = 0;
        prev
    });
    struct Restore((u32, u32, u32));
    impl Drop for Restore {
        fn drop(&mut self) {
            let (run, unit, unit_next) = self.0;
            LOCAL.with(|l| {
                let mut l = l.borrow_mut();
                l.run = run;
                l.unit = unit;
                l.unit_next = unit_next;
            });
        }
    }
    let _restore = Restore(prev);
    f()
}

/// Start a new simulation session (unit) on this thread: every simulator
/// whose virtual clock restarts at zero calls this once at entry, so the
/// `(run, unit, track)` identity keeps per-track time monotone even when
/// one run hosts several sessions. No-op while capture is off.
pub fn begin_unit() {
    if !enabled() {
        return;
    }
    LOCAL.with(|l| {
        let mut l = l.borrow_mut();
        l.unit_next += 1;
        l.unit = l.unit_next;
    });
}

/// Emit an event (no-op unless event capture is on).
#[inline]
pub fn emit(event: Event) {
    if !enabled() {
        return;
    }
    emit_slow(event);
}

#[cold]
fn emit_slow(event: Event) {
    let base = run_base();
    LOCAL.with(|l| {
        let mut l = l.borrow_mut();
        let run = base + l.run;
        let unit = l.unit;
        l.events.push(Stamped { run, unit, event });
    });
}

/// Bump a named counter by one (no-op unless capture is active). Names
/// must be `'static` lowercase dotted identifiers — they land in
/// `--bench-json` verbatim.
///
/// Registered vocabulary (add new names here so the bench-json consumers
/// have one place to look):
///
/// * `net.kernel.scheduled` / `net.kernel.delivered` — DES event traffic.
/// * `net.arbitration.deferred` — TDMA window skips.
/// * `net.interference.sum_reuse` / `sum_rebuild` / `edge_recompute` /
///   `cull_drop` — the incremental interference cache's hit/rebuild/edge
///   economics and far-field cull decisions (`braidio-net::cache`).
/// * `net.options.memo_hit` / `memo_miss` — the quantized
///   `options_under` memo.
/// * `net.fspl.hit` / `net.fspl.miss` — the exact free-space-path-loss
///   memo on the interference edge kernel (`braidio-rfsim::pathloss`,
///   counted by `braidio-net::interference`). Totals are tile- and
///   thread-count-dependent (concurrent first lookups may both miss);
///   they are diagnostics, not part of the byte-identity contract.
/// * `mac.offload.memo_hit` / `memo_miss` — the offload-plan memo
///   (interleaving-dependent: counters only, never trace events).
#[inline]
pub fn count(name: &'static str) {
    if !active() {
        return;
    }
    LOCAL.with(|l| {
        *l.borrow_mut().counters.entry(name).or_insert(0) += 1;
    });
}

/// Bump a named counter by `n` in one touch — the batched form of
/// [`count`], for hot loops that already know their tile's tally. Same
/// vocabulary rules; `count_by(name, 1)` ≡ `count(name)`.
#[inline]
pub fn count_by(name: &'static str, n: u64) {
    if n == 0 || !active() {
        return;
    }
    LOCAL.with(|l| {
        *l.borrow_mut().counters.entry(name).or_insert(0) += n;
    });
}

pub(crate) fn push_span(rec: SpanRecord) {
    LOCAL.with(|l| l.borrow_mut().spans.push(rec));
}

/// Everything one thread buffered since its last drain.
#[derive(Debug, Default, Clone, PartialEq)]
pub struct Batch {
    /// Stamped events, in emission order.
    pub events: Vec<Stamped>,
    /// Completed profiling spans, in completion order.
    pub spans: Vec<SpanRecord>,
    /// Counter increments, by name.
    pub counters: Vec<(&'static str, u64)>,
}

impl Batch {
    /// True when the batch carries nothing.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty() && self.spans.is_empty() && self.counters.is_empty()
    }
}

/// Take this thread's buffered events, spans and counters (leaving the
/// run/unit ids untouched). The pool calls this on workers at chunk
/// boundaries.
pub fn drain_thread() -> Batch {
    LOCAL.with(|l| {
        let mut l = l.borrow_mut();
        Batch {
            events: std::mem::take(&mut l.events),
            spans: std::mem::take(&mut l.spans),
            counters: std::mem::take(&mut l.counters).into_iter().collect(),
        }
    })
}

/// Append a drained batch to this thread's buffers. The pool calls this on
/// the *calling* thread, in chunk index order, after the workers join.
pub fn inject(batch: Batch) {
    if batch.is_empty() {
        return;
    }
    LOCAL.with(|l| {
        let mut l = l.borrow_mut();
        l.events.extend(batch.events);
        l.spans.extend(batch.spans);
        for (name, n) in batch.counters {
            *l.counters.entry(name).or_insert(0) += n;
        }
    });
}

/// Take (and clear) this thread's captured events.
pub fn take_events() -> Vec<Stamped> {
    LOCAL.with(|l| std::mem::take(&mut l.borrow_mut().events))
}

/// A copy of this thread's captured events, left in place.
pub fn events_snapshot() -> Vec<Stamped> {
    LOCAL.with(|l| l.borrow().events.clone())
}

/// Take (and clear) this thread's captured profiling spans.
pub fn take_spans() -> Vec<SpanRecord> {
    LOCAL.with(|l| std::mem::take(&mut l.borrow_mut().spans))
}

/// A copy of this thread's captured profiling spans, left in place.
pub fn spans_snapshot() -> Vec<SpanRecord> {
    LOCAL.with(|l| l.borrow().spans.clone())
}

/// This thread's counter totals, sorted by name.
pub fn counters_snapshot() -> Vec<(String, u64)> {
    LOCAL.with(|l| {
        l.borrow()
            .counters
            .iter()
            .map(|(k, v)| (k.to_string(), *v))
            .collect()
    })
}

/// Serializes crate tests that throw the process-wide switches.
#[cfg(test)]
pub(crate) fn test_lock() -> std::sync::MutexGuard<'static, ()> {
    static TEST_LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());
    TEST_LOCK.lock().unwrap_or_else(|e| e.into_inner())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::Track;
    use braidio_units::Seconds;

    fn locked() -> std::sync::MutexGuard<'static, ()> {
        test_lock()
    }

    fn ev(at: f64) -> Event {
        Event::CarrierGrant {
            at: Seconds::new(at),
            track: Track::Pair(0),
        }
    }

    #[test]
    fn emit_is_a_noop_while_disabled() {
        let _g = locked();
        let _ = take_events();
        emit(ev(1.0));
        assert!(take_events().is_empty());
    }

    #[test]
    fn emit_stamps_run_base_plus_local_run_and_unit() {
        let _g = locked();
        let _ = take_events();
        set_enabled(true);
        set_run_base(100);
        with_run(7, || {
            begin_unit();
            emit(ev(0.5));
            begin_unit();
            emit(ev(0.0));
        });
        emit(ev(2.0));
        set_enabled(false);
        set_run_base(0);
        let events = take_events();
        assert_eq!(events.len(), 3);
        assert_eq!((events[0].run, events[0].unit), (107, 1));
        assert_eq!((events[1].run, events[1].unit), (107, 2));
        assert_eq!((events[2].run, events[2].unit), (100, 0));
    }

    #[test]
    fn drain_and_inject_round_trip() {
        let _g = locked();
        let _ = take_events();
        set_enabled(true);
        emit(ev(1.0));
        count("a.b");
        count("a.b");
        let batch = drain_thread();
        assert_eq!(batch.events.len(), 1);
        assert_eq!(batch.counters, vec![("a.b", 2)]);
        assert!(take_events().is_empty(), "drained");
        inject(batch);
        count("a.b");
        set_enabled(false);
        assert_eq!(take_events().len(), 1);
        assert_eq!(counters_snapshot(), vec![("a.b".to_string(), 3)]);
        let _ = drain_thread();
    }

    #[test]
    fn counters_are_off_while_inactive() {
        let _g = locked();
        let _ = drain_thread();
        count("never.recorded");
        assert!(counters_snapshot().is_empty());
    }
}
