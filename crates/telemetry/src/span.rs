//! Wall-clock profiling spans.
//!
//! Spans measure where *host* time goes (re-plan solving, pool chunks) and
//! are the only place wall clock is allowed into telemetry: they live in a
//! stream separate from the simulated-time events, so event traces stay
//! deterministic while profiles do not pretend to be.
//!
//! Usage: `let _span = telemetry::span("net.replan");` — the span records
//! itself when dropped. When profiling is off ([`crate::profiling`]), the
//! guard is inert and the only cost is one relaxed atomic load.
//!
//! Each record carries the *stack path* of span names active on its thread
//! when it closed (itself last), up to [`MAX_SPAN_DEPTH`] deep. The path is
//! what lets the collapsed-stacks renderer
//! ([`crate::sink::render_profile_folded`]) attribute self time: a
//! `pool.chunk` that spends most of its wall clock inside `net.replan`
//! shows up as `pool.chunk;net.replan`, not as opaque `pool.chunk` time.

use crate::bus;
use std::cell::RefCell;
use std::sync::OnceLock;
use std::time::Instant;

/// The process profiling epoch: all span timestamps are microseconds since
/// the first span (or explicit epoch touch) of the process.
static EPOCH: OnceLock<Instant> = OnceLock::new();

/// Deepest span nesting a record can represent. The engine's known chain is
/// `pool.chunk > net.replan > net.wave` (depth 3); one spare level keeps
/// the array fixed-size (records stay `Copy`, recording never allocates)
/// without silently flattening a future hop. Deeper frames are dropped
/// from the *root* end, keeping the leaf-ward names that matter for
/// self-time attribution.
pub const MAX_SPAN_DEPTH: usize = 4;

fn epoch() -> Instant {
    *EPOCH.get_or_init(Instant::now)
}

thread_local! {
    /// Names of the spans currently open on this thread, outermost first.
    static STACK: RefCell<Vec<&'static str>> = const { RefCell::new(Vec::new()) };
}

/// One completed span.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SpanRecord {
    /// Static span name (`net.replan`, `pool.chunk`, ...).
    pub name: &'static str,
    /// Display lane; the pool rewrites this to the chunk index so
    /// concurrent chunks render on separate tracks.
    pub lane: u32,
    /// Start, µs of wall clock since the process profiling epoch.
    pub start_us: f64,
    /// Duration, µs of wall clock.
    pub dur_us: f64,
    /// Enclosing span names on this thread when the span closed, outermost
    /// first, ending with the span itself; `path[..depth]` is meaningful.
    pub path: [&'static str; MAX_SPAN_DEPTH],
    /// How many leading entries of `path` are filled (at least 1: the span
    /// itself).
    pub depth: u8,
}

impl SpanRecord {
    /// A record with no ancestry: `path` is just the name. Convenience for
    /// tests and for call sites that synthesize records outside a guard.
    pub fn leaf(name: &'static str, lane: u32, start_us: f64, dur_us: f64) -> Self {
        let mut path = [""; MAX_SPAN_DEPTH];
        path[0] = name;
        SpanRecord {
            name,
            lane,
            start_us,
            dur_us,
            path,
            depth: 1,
        }
    }

    /// The filled prefix of the stack path, outermost first.
    pub fn stack(&self) -> &[&'static str] {
        &self.path[..self.depth as usize]
    }
}

/// An active span guard; records a [`SpanRecord`] on drop.
#[must_use = "a span measures the scope it is bound to; binding it to _ drops it immediately"]
#[derive(Debug)]
pub struct Span(Option<(&'static str, Instant)>);

/// Open a span named `name` (inert unless profiling is on).
#[inline]
pub fn span(name: &'static str) -> Span {
    if !bus::profiling() {
        return Span(None);
    }
    let e = epoch(); // pin the epoch before taking the start time
    let _ = e;
    STACK.with(|s| s.borrow_mut().push(name));
    Span(Some((name, Instant::now())))
}

impl Drop for Span {
    fn drop(&mut self) {
        let Some((name, start)) = self.0.take() else {
            return;
        };
        let dur_us = start.elapsed().as_secs_f64() * 1e6;
        let start_us = start.duration_since(epoch()).as_secs_f64() * 1e6;
        // Snapshot the stack (self is still on top), then pop. Frames
        // beyond MAX_SPAN_DEPTH drop from the root end: the leaf-ward
        // names carry the attribution.
        let (path, depth) = STACK.with(|s| {
            let mut s = s.borrow_mut();
            let mut path = [""; MAX_SPAN_DEPTH];
            let skip = s.len().saturating_sub(MAX_SPAN_DEPTH);
            let depth = s.len() - skip;
            for (slot, frame) in path.iter_mut().zip(&s[skip..]) {
                *slot = frame;
            }
            s.pop();
            (path, depth as u8)
        });
        bus::push_span(SpanRecord {
            name,
            lane: 0,
            start_us,
            dur_us,
            path,
            depth: depth.max(1),
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn inert_without_profiling() {
        let _g = bus::test_lock();
        // Event capture alone must not record spans.
        let _ = bus::take_spans();
        {
            let _s = span("test.inert");
        }
        assert!(bus::take_spans().is_empty());
    }

    #[test]
    fn records_when_profiling() {
        let _g = bus::test_lock();
        let _ = bus::take_spans();
        bus::set_profiling(true);
        {
            let _s = span("test.scope");
            std::thread::sleep(std::time::Duration::from_millis(1));
        }
        bus::set_profiling(false);
        let spans = bus::take_spans();
        assert_eq!(spans.len(), 1);
        assert_eq!(spans[0].name, "test.scope");
        assert!(spans[0].dur_us >= 500.0, "dur {}", spans[0].dur_us);
        assert!(spans[0].start_us >= 0.0);
        assert_eq!(spans[0].stack(), &["test.scope"]);
    }

    #[test]
    fn nested_spans_carry_their_stack_path() {
        let _g = bus::test_lock();
        let _ = bus::take_spans();
        bus::set_profiling(true);
        {
            let _a = span("test.outer");
            {
                let _b = span("test.mid");
                let _c = span("test.leaf");
            }
            let _d = span("test.sibling");
        }
        bus::set_profiling(false);
        let spans = bus::take_spans();
        // Records land in completion (drop) order: leaf, mid, sibling, outer.
        let stacks: Vec<&[&str]> = spans.iter().map(|s| s.stack()).collect();
        assert_eq!(
            stacks,
            vec![
                &["test.outer", "test.mid", "test.leaf"][..],
                &["test.outer", "test.mid"][..],
                &["test.outer", "test.sibling"][..],
                &["test.outer"][..],
            ]
        );
    }

    #[test]
    fn overdeep_nesting_keeps_the_leafward_frames() {
        let _g = bus::test_lock();
        let _ = bus::take_spans();
        bus::set_profiling(true);
        {
            let _a = span("test.d1");
            let _b = span("test.d2");
            let _c = span("test.d3");
            let _d = span("test.d4");
            let _e = span("test.d5");
        }
        bus::set_profiling(false);
        let spans = bus::take_spans();
        // The depth-5 leaf keeps its 4 leaf-most frames; the root is cut.
        assert_eq!(
            spans[0].stack(),
            &["test.d2", "test.d3", "test.d4", "test.d5"]
        );
        assert_eq!(spans[4].stack(), &["test.d1"]);
    }
}
