//! Wall-clock profiling spans.
//!
//! Spans measure where *host* time goes (re-plan solving, pool chunks) and
//! are the only place wall clock is allowed into telemetry: they live in a
//! stream separate from the simulated-time events, so event traces stay
//! deterministic while profiles do not pretend to be.
//!
//! Usage: `let _span = telemetry::span("net.replan");` — the span records
//! itself when dropped. When profiling is off ([`crate::profiling`]), the
//! guard is inert and the only cost is one relaxed atomic load.

use crate::bus;
use std::sync::OnceLock;
use std::time::Instant;

/// The process profiling epoch: all span timestamps are microseconds since
/// the first span (or explicit epoch touch) of the process.
static EPOCH: OnceLock<Instant> = OnceLock::new();

fn epoch() -> Instant {
    *EPOCH.get_or_init(Instant::now)
}

/// One completed span.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SpanRecord {
    /// Static span name (`net.replan`, `pool.chunk`, ...).
    pub name: &'static str,
    /// Display lane; the pool rewrites this to the chunk index so
    /// concurrent chunks render on separate tracks.
    pub lane: u32,
    /// Start, µs of wall clock since the process profiling epoch.
    pub start_us: f64,
    /// Duration, µs of wall clock.
    pub dur_us: f64,
}

/// An active span guard; records a [`SpanRecord`] on drop.
#[must_use = "a span measures the scope it is bound to; binding it to _ drops it immediately"]
#[derive(Debug)]
pub struct Span(Option<(&'static str, Instant)>);

/// Open a span named `name` (inert unless profiling is on).
#[inline]
pub fn span(name: &'static str) -> Span {
    if !bus::profiling() {
        return Span(None);
    }
    let e = epoch(); // pin the epoch before taking the start time
    let _ = e;
    Span(Some((name, Instant::now())))
}

impl Drop for Span {
    fn drop(&mut self) {
        let Some((name, start)) = self.0.take() else {
            return;
        };
        let dur_us = start.elapsed().as_secs_f64() * 1e6;
        let start_us = start.duration_since(epoch()).as_secs_f64() * 1e6;
        bus::push_span(SpanRecord {
            name,
            lane: 0,
            start_us,
            dur_us,
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn inert_without_profiling() {
        let _g = bus::test_lock();
        // Event capture alone must not record spans.
        let _ = bus::take_spans();
        {
            let _s = span("test.inert");
        }
        assert!(bus::take_spans().is_empty());
    }

    #[test]
    fn records_when_profiling() {
        let _g = bus::test_lock();
        let _ = bus::take_spans();
        bus::set_profiling(true);
        {
            let _s = span("test.scope");
            std::thread::sleep(std::time::Duration::from_millis(1));
        }
        bus::set_profiling(false);
        let spans = bus::take_spans();
        assert_eq!(spans.len(), 1);
        assert_eq!(spans[0].name, "test.scope");
        assert!(spans[0].dur_us >= 500.0, "dur {}", spans[0].dur_us);
        assert!(spans[0].start_us >= 0.0);
    }
}
