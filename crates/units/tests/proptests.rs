//! Property-based tests for the typed-quantity algebra and the numerics
//! toolbox.

use braidio_units::math::{
    bessel_i0, bessel_i0_scaled, erf, erfc, interp1, linspace, marcum_q1, q_function,
};
use braidio_units::{BitsPerSecond, Complex, Decibels, Hertz, Joules, Meters, Seconds, Watts};
use proptest::prelude::*;

proptest! {
    #[test]
    fn watts_dbm_round_trip(dbm in -120.0f64..40.0) {
        let p = Watts::from_dbm(dbm);
        prop_assert!((p.dbm() - dbm).abs() < 1e-9);
        prop_assert!(p.is_physical());
    }

    #[test]
    fn watts_gain_composes(dbm in -60.0f64..20.0, g1 in -40.0f64..40.0, g2 in -40.0f64..40.0) {
        let p = Watts::from_dbm(dbm);
        let a = p.gained(Decibels::new(g1)).gained(Decibels::new(g2));
        let b = p.gained(Decibels::new(g1 + g2));
        prop_assert!((a.dbm() - b.dbm()).abs() < 1e-9);
    }

    #[test]
    fn snr_inverts_gain(sig in -80.0f64..0.0, noise in -120.0f64..-80.0) {
        let s = Watts::from_dbm(sig);
        let n = Watts::from_dbm(noise);
        prop_assert!((s.ratio_db(n).db() - (sig - noise)).abs() < 1e-9);
    }

    #[test]
    fn energy_accounting(wh in 0.01f64..200.0, frac in 0.0f64..1.0) {
        let e = Joules::from_watt_hours(wh);
        let spent = e * frac;
        let left = e - spent;
        prop_assert!((left.joules() + spent.joules() - e.joules()).abs() < 1e-6);
        prop_assert!(left.clamped_non_negative().joules() >= 0.0);
    }

    #[test]
    fn power_time_energy_triangle(mw in 0.001f64..1000.0, s in 0.001f64..10000.0) {
        let p = Watts::from_milliwatts(mw);
        let t = Seconds::new(s);
        let e = p * t;
        prop_assert!(((e / t).watts() - p.watts()).abs() <= 1e-12 * p.watts());
        prop_assert!(((e / p).seconds() - s).abs() <= 1e-9 * s);
    }

    #[test]
    fn rate_bits_time_consistent(kbps in 1.0f64..2000.0, bits in 1.0f64..1e9) {
        let r = BitsPerSecond::new(kbps * 1e3);
        let t = r.time_for_bits(bits);
        prop_assert!((r * t - bits).abs() < 1e-6 * bits);
    }

    #[test]
    fn wavelength_frequency_inverse(mhz in 100.0f64..6000.0) {
        let f = Hertz::from_mhz(mhz);
        let lambda = f.wavelength();
        prop_assert!((lambda.meters() * f.hz() - braidio_units::SPEED_OF_LIGHT).abs() < 1.0);
    }

    #[test]
    fn complex_field_axioms(a in -10.0f64..10.0, b in -10.0f64..10.0,
                            c in -10.0f64..10.0, d in -10.0f64..10.0) {
        let x = Complex::new(a, b);
        let y = Complex::new(c, d);
        // |xy| = |x||y|
        prop_assert!(((x * y).abs() - x.abs() * y.abs()).abs() < 1e-9 * (1.0 + x.abs() * y.abs()));
        // Triangle inequality.
        prop_assert!((x + y).abs() <= x.abs() + y.abs() + 1e-12);
        // Division inverts multiplication (away from zero).
        prop_assume!(y.abs() > 1e-6);
        let z = (x * y) / y;
        prop_assert!((z - x).abs() < 1e-6);
    }

    #[test]
    fn erf_bounds_and_symmetry(x in -5.0f64..5.0) {
        prop_assert!((-1.0..=1.0).contains(&erf(x)));
        prop_assert!((erf(-x) + erf(x)).abs() < 1e-6);
        prop_assert!((erfc(x) - (1.0 - erf(x))).abs() < 1e-9);
    }

    #[test]
    fn q_function_monotone(x in -4.0f64..4.0, dx in 0.01f64..2.0) {
        prop_assert!(q_function(x + dx) <= q_function(x));
        prop_assert!((0.0..=1.0).contains(&q_function(x)));
    }

    #[test]
    fn bessel_scaled_consistent(x in 0.0f64..30.0) {
        let direct = bessel_i0(x) * (-x).exp();
        prop_assert!((bessel_i0_scaled(x) - direct).abs() < 1e-5 * direct.max(1e-12));
        prop_assert!(bessel_i0(x) >= 1.0);
    }

    #[test]
    fn marcum_is_a_probability_and_monotone(a in 0.0f64..8.0, b in 0.0f64..8.0, db in 0.01f64..2.0) {
        let q = marcum_q1(a, b);
        prop_assert!((0.0..=1.0).contains(&q));
        // Monotone decreasing in b, increasing in a — up to the composite
        // Simpson integration's absolute error (~1e-6 in the flat regions).
        prop_assert!(marcum_q1(a, b + db) <= q + 1e-6);
        prop_assert!(marcum_q1(a + db, b) >= q - 1e-6);
    }

    #[test]
    fn interp1_within_hull(x in 0.0f64..10.0) {
        let xs = linspace(0.0, 10.0, 21);
        let ys: Vec<f64> = xs.iter().map(|v| v.sin()).collect();
        let y = interp1(&xs, &ys, x);
        prop_assert!((-1.0 - 1e-9..=1.0 + 1e-9).contains(&y));
        // Exact at the knots.
        let knot = (x.round()).clamp(0.0, 10.0);
        let idx = (knot * 2.0).round() as usize / 2 * 2; // even index knots at integer x
        let _ = idx;
        prop_assert!((interp1(&xs, &ys, 5.0) - 5.0f64.sin()).abs() < 1e-12);
    }

    #[test]
    fn meters_arithmetic(m in 0.0f64..100.0, k in 0.0f64..10.0) {
        let d = Meters::new(m);
        prop_assert!(((d * k).meters() - m * k).abs() < 1e-9);
        prop_assert!(d.is_physical());
    }
}
