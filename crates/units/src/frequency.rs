//! Carrier and baseband frequencies.

use crate::length::Meters;
use crate::SPEED_OF_LIGHT;
use core::fmt;
use core::ops::{Add, Div, Mul, Sub};

/// A frequency, stored in hertz.
///
/// Braidio's passive/backscatter front end operates in the 915 MHz UHF ISM
/// band (the Moo/WISP lineage), while the active radio is a 2.4 GHz BLE-class
/// part; both appear as [`Hertz`] constants here.
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Default)]
pub struct Hertz(f64);

impl Hertz {
    /// The 915 MHz UHF ISM carrier used by the backscatter/passive front end.
    pub const UHF_915M: Hertz = Hertz(915e6);
    /// The 2.4 GHz ISM carrier used by the BLE-class active radio.
    pub const ISM_2G4: Hertz = Hertz(2.4e9);

    /// From hertz.
    #[inline]
    pub const fn new(hz: f64) -> Self {
        Hertz(hz)
    }

    /// From megahertz.
    #[inline]
    pub fn from_mhz(mhz: f64) -> Self {
        Hertz(mhz * 1e6)
    }

    /// From kilohertz.
    #[inline]
    pub fn from_khz(khz: f64) -> Self {
        Hertz(khz * 1e3)
    }

    /// The value in hertz.
    #[inline]
    pub const fn hz(self) -> f64 {
        self.0
    }

    /// The value in megahertz.
    #[inline]
    pub fn mhz(self) -> f64 {
        self.0 / 1e6
    }

    /// Free-space wavelength at this frequency.
    #[inline]
    pub fn wavelength(self) -> Meters {
        Meters::new(SPEED_OF_LIGHT / self.0)
    }

    /// Period of one cycle, seconds.
    #[inline]
    pub fn period_seconds(self) -> f64 {
        1.0 / self.0
    }

    /// True if the value is finite and strictly positive.
    #[inline]
    pub fn is_physical(self) -> bool {
        self.0.is_finite() && self.0 > 0.0
    }
}

impl fmt::Display for Hertz {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0 >= 1e9 {
            write!(f, "{:.3} GHz", self.0 / 1e9)
        } else if self.0 >= 1e6 {
            write!(f, "{:.1} MHz", self.0 / 1e6)
        } else if self.0 >= 1e3 {
            write!(f, "{:.1} kHz", self.0 / 1e3)
        } else {
            write!(f, "{:.1} Hz", self.0)
        }
    }
}

impl Add for Hertz {
    type Output = Hertz;
    #[inline]
    fn add(self, rhs: Hertz) -> Hertz {
        Hertz(self.0 + rhs.0)
    }
}

impl Sub for Hertz {
    type Output = Hertz;
    #[inline]
    fn sub(self, rhs: Hertz) -> Hertz {
        Hertz(self.0 - rhs.0)
    }
}

impl Mul<f64> for Hertz {
    type Output = Hertz;
    #[inline]
    fn mul(self, rhs: f64) -> Hertz {
        Hertz(self.0 * rhs)
    }
}

impl Div<f64> for Hertz {
    type Output = Hertz;
    #[inline]
    fn div(self, rhs: f64) -> Hertz {
        Hertz(self.0 / rhs)
    }
}

impl Div<Hertz> for Hertz {
    type Output = f64;
    #[inline]
    fn div(self, rhs: Hertz) -> f64 {
        self.0 / rhs.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uhf_wavelength() {
        // 915 MHz -> ~32.8 cm wavelength.
        let lambda = Hertz::UHF_915M.wavelength();
        assert!((lambda.meters() - 0.3276).abs() < 1e-3);
    }

    #[test]
    fn conversions() {
        assert_eq!(Hertz::from_mhz(915.0), Hertz::UHF_915M);
        assert_eq!(Hertz::from_khz(1000.0), Hertz::from_mhz(1.0));
    }

    #[test]
    fn period() {
        assert!((Hertz::from_mhz(1.0).period_seconds() - 1e-6).abs() < 1e-18);
    }

    #[test]
    fn display() {
        assert_eq!(format!("{}", Hertz::ISM_2G4), "2.400 GHz");
        assert_eq!(format!("{}", Hertz::UHF_915M), "915.0 MHz");
        assert_eq!(format!("{}", Hertz::from_khz(32.0)), "32.0 kHz");
    }
}
