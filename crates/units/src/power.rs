//! RF and DC power, stored in watts.

use crate::energy::{Joules, JoulesPerBit};
use crate::rate::BitsPerSecond;
use crate::ratio::Decibels;
use crate::time::Seconds;
use core::fmt;
use core::iter::Sum;
use core::ops::{Add, AddAssign, Div, Mul, Neg, Sub, SubAssign};

/// A power quantity, stored internally in watts.
///
/// Construct from whichever unit is natural at the call site:
///
/// ```
/// use braidio_units::Watts;
/// let carrier = Watts::from_dbm(13.0);
/// assert!((carrier.milliwatts() - 19.95).abs() < 0.02);
/// let amp = Watts::from_microwatts(30.0);
/// assert!(amp < carrier);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Default)]
pub struct Watts(f64);

impl Watts {
    /// Zero power.
    pub const ZERO: Watts = Watts(0.0);

    /// Power from watts.
    #[inline]
    pub const fn new(watts: f64) -> Self {
        Watts(watts)
    }

    /// Power from milliwatts.
    #[inline]
    pub fn from_milliwatts(mw: f64) -> Self {
        Watts(mw * 1e-3)
    }

    /// Power from microwatts.
    #[inline]
    pub fn from_microwatts(uw: f64) -> Self {
        Watts(uw * 1e-6)
    }

    /// Power from nanowatts.
    #[inline]
    pub fn from_nanowatts(nw: f64) -> Self {
        Watts(nw * 1e-9)
    }

    /// Power from a dBm value (decibels relative to 1 mW).
    #[inline]
    pub fn from_dbm(dbm: f64) -> Self {
        Watts(1e-3 * 10f64.powf(dbm / 10.0))
    }

    /// The value in watts.
    #[inline]
    pub const fn watts(self) -> f64 {
        self.0
    }

    /// The value in milliwatts.
    #[inline]
    pub fn milliwatts(self) -> f64 {
        self.0 * 1e3
    }

    /// The value in microwatts.
    #[inline]
    pub fn microwatts(self) -> f64 {
        self.0 * 1e6
    }

    /// The value in dBm. Returns `-inf` for zero power.
    #[inline]
    pub fn dbm(self) -> f64 {
        10.0 * (self.0 / 1e-3).log10()
    }

    /// Apply a gain (positive dB) or loss (negative dB).
    #[inline]
    pub fn gained(self, gain: Decibels) -> Self {
        Watts(self.0 * gain.linear())
    }

    /// Apply a gain whose linear ratio has already been computed.
    ///
    /// This is the cached-constant counterpart of [`Watts::gained`]: hot
    /// paths that apply the same dB figure millions of times compute
    /// `gain.linear()` once and reuse the ratio. The multiply is the same
    /// single `f64` operation, so `p.gained_linear(g.linear())` is
    /// bit-for-bit equal to `p.gained(g)`.
    #[inline]
    pub fn gained_linear(self, ratio: f64) -> Self {
        Watts(self.0 * ratio)
    }

    /// The ratio of this power to `other`, as a dB figure.
    ///
    /// This is how SNRs are formed: `signal.ratio_db(noise)`.
    #[inline]
    pub fn ratio_db(self, other: Watts) -> Decibels {
        Decibels::new(10.0 * (self.0 / other.0).log10())
    }

    /// True if the value is finite and non-negative (a physical power).
    #[inline]
    pub fn is_physical(self) -> bool {
        self.0.is_finite() && self.0 >= 0.0
    }

    /// Component-wise maximum.
    #[inline]
    pub fn max(self, other: Watts) -> Watts {
        Watts(self.0.max(other.0))
    }

    /// Component-wise minimum.
    #[inline]
    pub fn min(self, other: Watts) -> Watts {
        Watts(self.0.min(other.0))
    }
}

impl fmt::Display for Watts {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let w = self.0;
        if w == 0.0 {
            write!(f, "0 W")
        } else if w.abs() >= 1.0 {
            write!(f, "{:.3} W", w)
        } else if w.abs() >= 1e-3 {
            write!(f, "{:.3} mW", w * 1e3)
        } else if w.abs() >= 1e-6 {
            write!(f, "{:.3} uW", w * 1e6)
        } else {
            write!(f, "{:.3} nW", w * 1e9)
        }
    }
}

impl Add for Watts {
    type Output = Watts;
    #[inline]
    fn add(self, rhs: Watts) -> Watts {
        Watts(self.0 + rhs.0)
    }
}

impl AddAssign for Watts {
    #[inline]
    fn add_assign(&mut self, rhs: Watts) {
        self.0 += rhs.0;
    }
}

impl Sub for Watts {
    type Output = Watts;
    #[inline]
    fn sub(self, rhs: Watts) -> Watts {
        Watts(self.0 - rhs.0)
    }
}

impl SubAssign for Watts {
    #[inline]
    fn sub_assign(&mut self, rhs: Watts) {
        self.0 -= rhs.0;
    }
}

impl Neg for Watts {
    type Output = Watts;
    #[inline]
    fn neg(self) -> Watts {
        Watts(-self.0)
    }
}

impl Mul<f64> for Watts {
    type Output = Watts;
    #[inline]
    fn mul(self, rhs: f64) -> Watts {
        Watts(self.0 * rhs)
    }
}

impl Mul<Watts> for f64 {
    type Output = Watts;
    #[inline]
    fn mul(self, rhs: Watts) -> Watts {
        Watts(self * rhs.0)
    }
}

impl Div<f64> for Watts {
    type Output = Watts;
    #[inline]
    fn div(self, rhs: f64) -> Watts {
        Watts(self.0 / rhs)
    }
}

impl Div<Watts> for Watts {
    type Output = f64;
    #[inline]
    fn div(self, rhs: Watts) -> f64 {
        self.0 / rhs.0
    }
}

impl Mul<Seconds> for Watts {
    type Output = Joules;
    #[inline]
    fn mul(self, rhs: Seconds) -> Joules {
        Joules::new(self.0 * rhs.seconds())
    }
}

impl Mul<Watts> for Seconds {
    type Output = Joules;
    #[inline]
    fn mul(self, rhs: Watts) -> Joules {
        Joules::new(self.seconds() * rhs.watts())
    }
}

impl Div<BitsPerSecond> for Watts {
    type Output = JoulesPerBit;
    #[inline]
    fn div(self, rhs: BitsPerSecond) -> JoulesPerBit {
        JoulesPerBit::new(self.0 / rhs.bps())
    }
}

impl Sum for Watts {
    fn sum<I: Iterator<Item = Watts>>(iter: I) -> Watts {
        iter.fold(Watts::ZERO, |a, b| a + b)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rate::BitsPerSecond;
    use crate::time::Seconds;

    #[test]
    fn dbm_round_trip() {
        for dbm in [-90.0, -40.0, -3.0, 0.0, 13.0, 30.0] {
            let p = Watts::from_dbm(dbm);
            assert!((p.dbm() - dbm).abs() < 1e-9, "dbm {dbm}");
        }
    }

    #[test]
    fn zero_dbm_is_one_milliwatt() {
        assert!((Watts::from_dbm(0.0).milliwatts() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn unit_constructors_agree() {
        assert_eq!(Watts::from_milliwatts(1500.0), Watts::new(1.5));
        assert!((Watts::from_microwatts(250.0).watts() - 0.25e-3).abs() < 1e-18);
        assert!((Watts::from_nanowatts(1000.0).watts() - 1e-6).abs() < 1e-18);
    }

    #[test]
    fn gain_and_loss() {
        let p = Watts::from_dbm(0.0);
        let up = p.gained(Decibels::new(20.0));
        assert!((up.dbm() - 20.0).abs() < 1e-9);
        let down = p.gained(Decibels::new(-30.0));
        assert!((down.dbm() + 30.0).abs() < 1e-9);
    }

    #[test]
    fn gained_linear_matches_gained_bitwise() {
        for dbm in [-61.7, -13.0, 0.0, 4.2, 17.9] {
            let p = Watts::from_dbm(dbm);
            for db in [-94.3, -30.0, -0.1, 0.0, 2.15, 40.0] {
                let g = Decibels::new(db);
                assert_eq!(
                    p.gained(g).watts().to_bits(),
                    p.gained_linear(g.linear()).watts().to_bits(),
                    "dbm {dbm} db {db}"
                );
            }
        }
    }

    #[test]
    fn snr_formation() {
        let sig = Watts::from_dbm(-40.0);
        let noise = Watts::from_dbm(-70.0);
        assert!((sig.ratio_db(noise).db() - 30.0).abs() < 1e-9);
    }

    #[test]
    fn power_times_time_is_energy() {
        let e = Watts::from_milliwatts(100.0) * Seconds::new(10.0);
        assert!((e.joules() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn power_over_rate_is_energy_per_bit() {
        let epb = Watts::from_milliwatts(125.0) / BitsPerSecond::new(1e6);
        assert!((epb.joules_per_bit() - 125e-9).abs() < 1e-18);
    }

    #[test]
    fn display_scales() {
        assert_eq!(format!("{}", Watts::new(1.5)), "1.500 W");
        assert_eq!(format!("{}", Watts::from_milliwatts(129.0)), "129.000 mW");
        assert_eq!(format!("{}", Watts::from_microwatts(16.54)), "16.540 uW");
        assert_eq!(format!("{}", Watts::from_nanowatts(12.0)), "12.000 nW");
        assert_eq!(format!("{}", Watts::ZERO), "0 W");
    }

    #[test]
    fn sum_of_powers() {
        let total: Watts = [Watts::new(0.5), Watts::new(0.25), Watts::new(0.25)]
            .into_iter()
            .sum();
        assert_eq!(total, Watts::new(1.0));
    }

    #[test]
    fn physicality() {
        assert!(Watts::new(1.0).is_physical());
        assert!(Watts::ZERO.is_physical());
        assert!(!Watts::new(-1.0).is_physical());
        assert!(!Watts::new(f64::NAN).is_physical());
    }
}
