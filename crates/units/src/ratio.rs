//! Dimensionless gains and losses in decibels.

use core::fmt;
use core::iter::Sum;
use core::ops::{Add, AddAssign, Mul, Neg, Sub, SubAssign};

/// A power ratio expressed in decibels.
///
/// Positive values are gains, negative values are losses. Addition of
/// [`Decibels`] corresponds to multiplication of linear ratios, which is the
/// whole point of keeping the two domains in separate types: you cannot
/// accidentally add a linear ratio to a dB figure.
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Default)]
pub struct Decibels(f64);

impl Decibels {
    /// 0 dB — unit gain.
    pub const ZERO: Decibels = Decibels(0.0);

    /// From a dB value.
    #[inline]
    pub const fn new(db: f64) -> Self {
        Decibels(db)
    }

    /// From a linear power ratio.
    #[inline]
    pub fn from_linear(ratio: f64) -> Self {
        Decibels(10.0 * ratio.log10())
    }

    /// The dB value.
    #[inline]
    pub const fn db(self) -> f64 {
        self.0
    }

    /// The linear power ratio.
    #[inline]
    pub fn linear(self) -> f64 {
        10f64.powf(self.0 / 10.0)
    }

    /// The linear *amplitude* (voltage) ratio, `10^(dB/20)`.
    #[inline]
    pub fn amplitude(self) -> f64 {
        10f64.powf(self.0 / 20.0)
    }

    /// Component-wise minimum.
    #[inline]
    pub fn min(self, other: Decibels) -> Decibels {
        Decibels(self.0.min(other.0))
    }

    /// Component-wise maximum.
    #[inline]
    pub fn max(self, other: Decibels) -> Decibels {
        Decibels(self.0.max(other.0))
    }
}

impl fmt::Display for Decibels {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.2} dB", self.0)
    }
}

impl Add for Decibels {
    type Output = Decibels;
    #[inline]
    fn add(self, rhs: Decibels) -> Decibels {
        Decibels(self.0 + rhs.0)
    }
}

impl AddAssign for Decibels {
    #[inline]
    fn add_assign(&mut self, rhs: Decibels) {
        self.0 += rhs.0;
    }
}

impl Sub for Decibels {
    type Output = Decibels;
    #[inline]
    fn sub(self, rhs: Decibels) -> Decibels {
        Decibels(self.0 - rhs.0)
    }
}

impl SubAssign for Decibels {
    #[inline]
    fn sub_assign(&mut self, rhs: Decibels) {
        self.0 -= rhs.0;
    }
}

impl Neg for Decibels {
    type Output = Decibels;
    #[inline]
    fn neg(self) -> Decibels {
        Decibels(-self.0)
    }
}

impl Mul<f64> for Decibels {
    type Output = Decibels;
    #[inline]
    fn mul(self, rhs: f64) -> Decibels {
        Decibels(self.0 * rhs)
    }
}

impl Sum for Decibels {
    fn sum<I: Iterator<Item = Decibels>>(iter: I) -> Decibels {
        iter.fold(Decibels::ZERO, |a, b| a + b)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn linear_round_trip() {
        for db in [-50.0, -3.0103, 0.0, 3.0, 20.0] {
            let g = Decibels::new(db);
            assert!((Decibels::from_linear(g.linear()).db() - db).abs() < 1e-9);
        }
    }

    #[test]
    fn three_db_doubles() {
        assert!((Decibels::new(3.0103).linear() - 2.0).abs() < 1e-4);
    }

    #[test]
    fn amplitude_is_sqrt_of_power() {
        let g = Decibels::new(20.0);
        assert!((g.amplitude() - 10.0).abs() < 1e-12);
        assert!((g.linear() - 100.0).abs() < 1e-9);
    }

    #[test]
    fn cascade_gains_add() {
        let chain = Decibels::new(12.0) + Decibels::new(-2.5) + Decibels::new(0.5);
        assert!((chain.db() - 10.0).abs() < 1e-12);
        let lin = Decibels::new(12.0).linear()
            * Decibels::new(-2.5).linear()
            * Decibels::new(0.5).linear();
        assert!((chain.linear() - lin).abs() < 1e-9);
    }

    #[test]
    fn negation_is_inverse() {
        let g = Decibels::new(7.0);
        assert!(((g + (-g)).linear() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn display() {
        assert_eq!(format!("{}", Decibels::new(-43.53)), "-43.53 dB");
    }
}
