//! Durations and simulation timestamps.

use core::fmt;
use core::iter::Sum;
use core::ops::{Add, AddAssign, Div, Mul, Sub, SubAssign};

/// A duration (or simulator timestamp), stored in seconds.
///
/// The event-driven link simulator in `braidio-mac` uses this as its virtual
/// clock; sub-nanosecond resolution is irrelevant at our bitrates, so `f64`
/// seconds are sufficient and keep the arithmetic simple.
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Default)]
pub struct Seconds(f64);

impl Seconds {
    /// Zero duration.
    pub const ZERO: Seconds = Seconds(0.0);

    /// Duration from seconds.
    #[inline]
    pub const fn new(s: f64) -> Self {
        Seconds(s)
    }

    /// Duration from milliseconds.
    #[inline]
    pub fn from_millis(ms: f64) -> Self {
        Seconds(ms * 1e-3)
    }

    /// Duration from microseconds.
    #[inline]
    pub fn from_micros(us: f64) -> Self {
        Seconds(us * 1e-6)
    }

    /// Duration from hours.
    #[inline]
    pub fn from_hours(h: f64) -> Self {
        Seconds(h * 3600.0)
    }

    /// The value in seconds.
    #[inline]
    pub const fn seconds(self) -> f64 {
        self.0
    }

    /// The value in milliseconds.
    #[inline]
    pub fn millis(self) -> f64 {
        self.0 * 1e3
    }

    /// The value in microseconds.
    #[inline]
    pub fn micros(self) -> f64 {
        self.0 * 1e6
    }

    /// The value in hours.
    #[inline]
    pub fn hours(self) -> f64 {
        self.0 / 3600.0
    }

    /// True if the value is finite and non-negative.
    #[inline]
    pub fn is_physical(self) -> bool {
        self.0.is_finite() && self.0 >= 0.0
    }

    /// Component-wise minimum.
    #[inline]
    pub fn min(self, other: Seconds) -> Seconds {
        Seconds(self.0.min(other.0))
    }

    /// Component-wise maximum.
    #[inline]
    pub fn max(self, other: Seconds) -> Seconds {
        Seconds(self.0.max(other.0))
    }
}

impl fmt::Display for Seconds {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0.abs() >= 3600.0 {
            write!(f, "{:.2} h", self.hours())
        } else if self.0.abs() >= 1.0 {
            write!(f, "{:.3} s", self.0)
        } else if self.0.abs() >= 1e-3 {
            write!(f, "{:.3} ms", self.millis())
        } else {
            write!(f, "{:.3} us", self.micros())
        }
    }
}

impl Add for Seconds {
    type Output = Seconds;
    #[inline]
    fn add(self, rhs: Seconds) -> Seconds {
        Seconds(self.0 + rhs.0)
    }
}

impl AddAssign for Seconds {
    #[inline]
    fn add_assign(&mut self, rhs: Seconds) {
        self.0 += rhs.0;
    }
}

impl Sub for Seconds {
    type Output = Seconds;
    #[inline]
    fn sub(self, rhs: Seconds) -> Seconds {
        Seconds(self.0 - rhs.0)
    }
}

impl SubAssign for Seconds {
    #[inline]
    fn sub_assign(&mut self, rhs: Seconds) {
        self.0 -= rhs.0;
    }
}

impl Mul<f64> for Seconds {
    type Output = Seconds;
    #[inline]
    fn mul(self, rhs: f64) -> Seconds {
        Seconds(self.0 * rhs)
    }
}

impl Mul<Seconds> for f64 {
    type Output = Seconds;
    #[inline]
    fn mul(self, rhs: Seconds) -> Seconds {
        Seconds(self * rhs.0)
    }
}

impl Div<f64> for Seconds {
    type Output = Seconds;
    #[inline]
    fn div(self, rhs: f64) -> Seconds {
        Seconds(self.0 / rhs)
    }
}

impl Div<Seconds> for Seconds {
    type Output = f64;
    #[inline]
    fn div(self, rhs: Seconds) -> f64 {
        self.0 / rhs.0
    }
}

impl Sum for Seconds {
    fn sum<I: Iterator<Item = Seconds>>(iter: I) -> Seconds {
        iter.fold(Seconds::ZERO, |a, b| a + b)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions() {
        assert_eq!(Seconds::from_millis(1500.0), Seconds::new(1.5));
        assert_eq!(Seconds::from_micros(1000.0), Seconds::from_millis(1.0));
        assert_eq!(Seconds::from_hours(2.0), Seconds::new(7200.0));
    }

    #[test]
    fn accessors() {
        let t = Seconds::new(0.25);
        assert!((t.millis() - 250.0).abs() < 1e-12);
        assert!((t.micros() - 250_000.0).abs() < 1e-9);
    }

    #[test]
    fn ordering() {
        assert!(Seconds::from_micros(999.0) < Seconds::from_millis(1.0));
    }

    #[test]
    fn display_scales() {
        assert_eq!(format!("{}", Seconds::from_hours(1.5)), "1.50 h");
        assert_eq!(format!("{}", Seconds::new(2.0)), "2.000 s");
        assert_eq!(format!("{}", Seconds::from_millis(3.0)), "3.000 ms");
        assert_eq!(format!("{}", Seconds::from_micros(4.0)), "4.000 us");
    }
}
