//! Complex phasors for baseband channel modelling.
//!
//! The phase-cancellation analysis in the paper (§3.2, Figs. 4–5) is vector
//! arithmetic on I/Q phasors: the envelope detector sees only the *magnitude*
//! of the sum of the background (self-interference) vector and the
//! backscatter-modulated vector. This module provides the minimal complex
//! type needed for that, avoiding an external numerics dependency.

use core::fmt;
use core::iter::Sum;
use core::ops::{Add, AddAssign, Div, Mul, Neg, Sub, SubAssign};

/// A complex number in rectangular (I/Q) form.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Complex {
    /// In-phase (real) component.
    pub re: f64,
    /// Quadrature (imaginary) component.
    pub im: f64,
}

impl Complex {
    /// The additive identity.
    pub const ZERO: Complex = Complex { re: 0.0, im: 0.0 };
    /// The multiplicative identity.
    pub const ONE: Complex = Complex { re: 1.0, im: 0.0 };
    /// The imaginary unit.
    pub const I: Complex = Complex { re: 0.0, im: 1.0 };

    /// From rectangular components.
    #[inline]
    pub const fn new(re: f64, im: f64) -> Self {
        Complex { re, im }
    }

    /// From polar form: magnitude and phase (radians).
    #[inline]
    pub fn from_polar(mag: f64, phase: f64) -> Self {
        Complex {
            re: mag * phase.cos(),
            im: mag * phase.sin(),
        }
    }

    /// Magnitude (absolute value).
    #[inline]
    pub fn abs(self) -> f64 {
        self.re.hypot(self.im)
    }

    /// Squared magnitude — the instantaneous power of a unit-impedance
    /// phasor, cheaper than [`Complex::abs`] when only relative energy
    /// matters.
    #[inline]
    pub fn norm_sqr(self) -> f64 {
        self.re * self.re + self.im * self.im
    }

    /// Phase angle in radians, in `(-π, π]`.
    #[inline]
    pub fn arg(self) -> f64 {
        self.im.atan2(self.re)
    }

    /// Complex conjugate.
    #[inline]
    pub fn conj(self) -> Complex {
        Complex {
            re: self.re,
            im: -self.im,
        }
    }

    /// Scale by a real factor.
    #[inline]
    pub fn scale(self, k: f64) -> Complex {
        Complex {
            re: self.re * k,
            im: self.im * k,
        }
    }

    /// Rotate by `phase` radians (multiply by `e^{jφ}`).
    #[inline]
    pub fn rotated(self, phase: f64) -> Complex {
        self * Complex::from_polar(1.0, phase)
    }

    /// True if both components are finite.
    #[inline]
    pub fn is_finite(self) -> bool {
        self.re.is_finite() && self.im.is_finite()
    }
}

impl fmt::Display for Complex {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.im >= 0.0 {
            write!(f, "{:.4}+{:.4}j", self.re, self.im)
        } else {
            write!(f, "{:.4}-{:.4}j", self.re, -self.im)
        }
    }
}

impl Add for Complex {
    type Output = Complex;
    #[inline]
    fn add(self, rhs: Complex) -> Complex {
        Complex::new(self.re + rhs.re, self.im + rhs.im)
    }
}

impl AddAssign for Complex {
    #[inline]
    fn add_assign(&mut self, rhs: Complex) {
        self.re += rhs.re;
        self.im += rhs.im;
    }
}

impl Sub for Complex {
    type Output = Complex;
    #[inline]
    fn sub(self, rhs: Complex) -> Complex {
        Complex::new(self.re - rhs.re, self.im - rhs.im)
    }
}

impl SubAssign for Complex {
    #[inline]
    fn sub_assign(&mut self, rhs: Complex) {
        self.re -= rhs.re;
        self.im -= rhs.im;
    }
}

impl Neg for Complex {
    type Output = Complex;
    #[inline]
    fn neg(self) -> Complex {
        Complex::new(-self.re, -self.im)
    }
}

impl Mul for Complex {
    type Output = Complex;
    #[inline]
    fn mul(self, rhs: Complex) -> Complex {
        Complex::new(
            self.re * rhs.re - self.im * rhs.im,
            self.re * rhs.im + self.im * rhs.re,
        )
    }
}

impl Mul<f64> for Complex {
    type Output = Complex;
    #[inline]
    fn mul(self, rhs: f64) -> Complex {
        self.scale(rhs)
    }
}

impl Mul<Complex> for f64 {
    type Output = Complex;
    #[inline]
    fn mul(self, rhs: Complex) -> Complex {
        rhs.scale(self)
    }
}

impl Div for Complex {
    type Output = Complex;
    #[inline]
    fn div(self, rhs: Complex) -> Complex {
        let d = rhs.norm_sqr();
        Complex::new(
            (self.re * rhs.re + self.im * rhs.im) / d,
            (self.im * rhs.re - self.re * rhs.im) / d,
        )
    }
}

impl Div<f64> for Complex {
    type Output = Complex;
    #[inline]
    fn div(self, rhs: f64) -> Complex {
        Complex::new(self.re / rhs, self.im / rhs)
    }
}

impl Sum for Complex {
    fn sum<I: Iterator<Item = Complex>>(iter: I) -> Complex {
        iter.fold(Complex::ZERO, |a, b| a + b)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use core::f64::consts::{FRAC_PI_2, PI};

    #[test]
    fn polar_round_trip() {
        let c = Complex::from_polar(2.0, PI / 3.0);
        assert!((c.abs() - 2.0).abs() < 1e-12);
        assert!((c.arg() - PI / 3.0).abs() < 1e-12);
    }

    #[test]
    fn i_squared_is_minus_one() {
        let m = Complex::I * Complex::I;
        assert!((m.re + 1.0).abs() < 1e-12 && m.im.abs() < 1e-12);
    }

    #[test]
    fn multiplication_adds_phases() {
        let a = Complex::from_polar(1.5, 0.4);
        let b = Complex::from_polar(2.0, 0.7);
        let p = a * b;
        assert!((p.abs() - 3.0).abs() < 1e-12);
        assert!((p.arg() - 1.1).abs() < 1e-12);
    }

    #[test]
    fn division_inverts_multiplication() {
        let a = Complex::new(3.0, -4.0);
        let b = Complex::new(-1.0, 2.0);
        let q = (a * b) / b;
        assert!((q.re - a.re).abs() < 1e-12 && (q.im - a.im).abs() < 1e-12);
    }

    #[test]
    fn conjugate_properties() {
        let a = Complex::new(1.0, 2.0);
        assert!(((a * a.conj()).re - a.norm_sqr()).abs() < 1e-12);
        assert!((a * a.conj()).im.abs() < 1e-12);
    }

    #[test]
    fn rotation_by_quarter_turn() {
        let a = Complex::ONE.rotated(FRAC_PI_2);
        assert!(a.re.abs() < 1e-12 && (a.im - 1.0).abs() < 1e-12);
    }

    #[test]
    fn envelope_difference_model() {
        // The quantity the envelope detector measures, per §3.2:
        // A = | |V_bg + V_tx1| - |V_bg + V_tx0| |. When the backscatter vector
        // is orthogonal to the background, A collapses to ~0 even though the
        // transistor state changes — the phase cancellation null.
        let bg = Complex::from_polar(10.0, 0.0);
        let v = Complex::from_polar(0.5, FRAC_PI_2); // orthogonal
        let a_null = ((bg + v).abs() - (bg - v).abs()).abs();
        let v_aligned = Complex::from_polar(0.5, 0.0);
        let a_full = ((bg + v_aligned).abs() - (bg - v_aligned).abs()).abs();
        assert!(a_null < 0.01 * a_full, "null {a_null}, full {a_full}");
        assert!((a_full - 1.0).abs() < 1e-9);
    }

    #[test]
    fn sum_of_phasors() {
        let s: Complex = [Complex::ONE, Complex::I, -Complex::ONE].into_iter().sum();
        assert!((s - Complex::I).abs() < 1e-12);
    }

    #[test]
    fn display() {
        assert_eq!(format!("{}", Complex::new(1.0, -2.0)), "1.0000-2.0000j");
    }
}
