//! Link bitrates.

use crate::time::Seconds;
use core::fmt;
use core::ops::{Div, Mul};

/// A data rate, stored in bits per second.
///
/// Braidio's characterization uses three canonical rates: 10 kbps, 100 kbps
/// and 1 Mbps ([`BitsPerSecond::KBPS_10`], [`BitsPerSecond::KBPS_100`],
/// [`BitsPerSecond::MBPS_1`]).
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Default)]
pub struct BitsPerSecond(f64);

impl BitsPerSecond {
    /// 10 kbps — the slowest, longest-range Braidio rate.
    pub const KBPS_10: BitsPerSecond = BitsPerSecond(10_000.0);
    /// 100 kbps.
    pub const KBPS_100: BitsPerSecond = BitsPerSecond(100_000.0);
    /// 1 Mbps — the fastest Braidio rate and the nominal BLE rate.
    pub const MBPS_1: BitsPerSecond = BitsPerSecond(1_000_000.0);

    /// Rate from bits per second.
    #[inline]
    pub const fn new(bps: f64) -> Self {
        BitsPerSecond(bps)
    }

    /// The value in bits per second.
    #[inline]
    pub const fn bps(self) -> f64 {
        self.0
    }

    /// The value in kilobits per second.
    #[inline]
    pub fn kbps(self) -> f64 {
        self.0 / 1e3
    }

    /// Duration of one bit at this rate.
    #[inline]
    pub fn bit_time(self) -> Seconds {
        Seconds::new(1.0 / self.0)
    }

    /// Time to move `bits` bits at this rate.
    #[inline]
    pub fn time_for_bits(self, bits: f64) -> Seconds {
        Seconds::new(bits / self.0)
    }

    /// True if the value is finite and strictly positive.
    #[inline]
    pub fn is_physical(self) -> bool {
        self.0.is_finite() && self.0 > 0.0
    }
}

impl fmt::Display for BitsPerSecond {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0 >= 1e6 {
            write!(f, "{:.0} Mbps", self.0 / 1e6)
        } else if self.0 >= 1e3 {
            write!(f, "{:.0} kbps", self.0 / 1e3)
        } else {
            write!(f, "{:.0} bps", self.0)
        }
    }
}

impl Mul<Seconds> for BitsPerSecond {
    /// Bits transferred over a duration.
    type Output = f64;
    #[inline]
    fn mul(self, rhs: Seconds) -> f64 {
        self.0 * rhs.seconds()
    }
}

impl Mul<BitsPerSecond> for Seconds {
    type Output = f64;
    #[inline]
    fn mul(self, rhs: BitsPerSecond) -> f64 {
        self.seconds() * rhs.bps()
    }
}

impl Mul<f64> for BitsPerSecond {
    type Output = BitsPerSecond;
    #[inline]
    fn mul(self, rhs: f64) -> BitsPerSecond {
        BitsPerSecond(self.0 * rhs)
    }
}

impl Div<BitsPerSecond> for BitsPerSecond {
    type Output = f64;
    #[inline]
    fn div(self, rhs: BitsPerSecond) -> f64 {
        self.0 / rhs.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn canonical_rates() {
        assert_eq!(BitsPerSecond::KBPS_10.bps(), 1e4);
        assert_eq!(BitsPerSecond::KBPS_100.bps(), 1e5);
        assert_eq!(BitsPerSecond::MBPS_1.bps(), 1e6);
    }

    #[test]
    fn bit_time() {
        assert!((BitsPerSecond::MBPS_1.bit_time().micros() - 1.0).abs() < 1e-12);
        assert!((BitsPerSecond::KBPS_10.bit_time().micros() - 100.0).abs() < 1e-9);
    }

    #[test]
    fn bits_over_duration() {
        let bits = BitsPerSecond::KBPS_100 * Seconds::new(2.0);
        assert!((bits - 200_000.0).abs() < 1e-9);
    }

    #[test]
    fn time_for_bits() {
        let t = BitsPerSecond::MBPS_1.time_for_bits(1_000_000.0);
        assert!((t.seconds() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn display() {
        assert_eq!(format!("{}", BitsPerSecond::MBPS_1), "1 Mbps");
        assert_eq!(format!("{}", BitsPerSecond::KBPS_100), "100 kbps");
        assert_eq!(format!("{}", BitsPerSecond::new(500.0)), "500 bps");
    }
}
