//! Typed physical quantities for the Braidio reproduction.
//!
//! Every crate in the workspace talks about power, energy, gains, distances,
//! frequencies and bitrates. Mixing up milliwatts and dBm, or joules and
//! watt-hours, is exactly the kind of bug that silently ruins a link-budget
//! calculation, so this crate wraps each quantity in a zero-cost newtype with
//! explicit, unit-named constructors and accessors.
//!
//! Conventions:
//!
//! * All quantities are stored in SI base units (`W`, `J`, `s`, `Hz`, `m`,
//!   `bit/s`) as `f64`.
//! * dB arithmetic is only available through [`Decibels`] so linear and
//!   logarithmic domains cannot be confused.
//! * Arithmetic that changes the dimension is expressed as `Mul`/`Div` impls
//!   that return the correct type (`Watts * Seconds -> Joules`,
//!   `Watts / BitsPerSecond -> JoulesPerBit`, ...).
//!
//! The crate also hosts the small numerics toolbox used across the workspace
//! ([`math`]) and the complex-phasor type used for baseband channel models
//! ([`iq`]).

#![warn(missing_docs)]

pub mod energy;
pub mod frequency;
pub mod iq;
pub mod length;
pub mod math;
pub mod power;
pub mod rate;
pub mod ratio;
pub mod time;

pub use energy::{Joules, JoulesPerBit};
pub use frequency::Hertz;
pub use iq::Complex;
pub use length::Meters;
pub use power::Watts;
pub use rate::BitsPerSecond;
pub use ratio::Decibels;
pub use time::Seconds;

/// Speed of light in vacuum, m/s.
pub const SPEED_OF_LIGHT: f64 = 299_792_458.0;

/// Boltzmann constant, J/K.
pub const BOLTZMANN: f64 = 1.380_649e-23;

/// Standard noise reference temperature, kelvin.
pub const T0_KELVIN: f64 = 290.0;
