//! Numerics toolbox: special functions and grid helpers.
//!
//! Implemented in-repo (rather than pulling a numerics crate) because the
//! workspace only needs a handful of well-known approximations: `erf`/`erfc`
//! for coherent-detection BER, the modified Bessel function `I0` and the
//! Marcum Q-function for noncoherent (envelope-detector) BER, and a few grid
//! generators for parameter sweeps.

/// Complementary error function.
///
/// Rational Chebyshev approximation (Numerical Recipes §6.2), absolute error
/// below 1.2e-7 everywhere, which is far below the Monte-Carlo noise of any
/// BER experiment in this workspace.
pub fn erfc(x: f64) -> f64 {
    let z = x.abs();
    let t = 1.0 / (1.0 + 0.5 * z);
    let ans = t
        * (-z * z - 1.26551223
            + t * (1.00002368
                + t * (0.37409196
                    + t * (0.09678418
                        + t * (-0.18628806
                            + t * (0.27886807
                                + t * (-1.13520398
                                    + t * (1.48851587 + t * (-0.82215223 + t * 0.17087277)))))))))
            .exp();
    if x >= 0.0 {
        ans
    } else {
        2.0 - ans
    }
}

/// Error function, `erf(x) = 1 - erfc(x)`.
#[inline]
pub fn erf(x: f64) -> f64 {
    1.0 - erfc(x)
}

/// The Gaussian tail probability `Q(x) = P[N(0,1) > x]`.
#[inline]
pub fn q_function(x: f64) -> f64 {
    0.5 * erfc(x / core::f64::consts::SQRT_2)
}

/// Modified Bessel function of the first kind, order zero.
///
/// Abramowitz & Stegun 9.8.1/9.8.2 polynomial approximations
/// (|error| < 1.9e-7).
pub fn bessel_i0(x: f64) -> f64 {
    let ax = x.abs();
    if ax < 3.75 {
        let y = (x / 3.75) * (x / 3.75);
        1.0 + y
            * (3.5156229
                + y * (3.0899424
                    + y * (1.2067492 + y * (0.2659732 + y * (0.0360768 + y * 0.0045813)))))
    } else {
        let y = 3.75 / ax;
        (ax.exp() / ax.sqrt())
            * (0.39894228
                + y * (0.01328592
                    + y * (0.00225319
                        + y * (-0.00157565
                            + y * (0.00916281
                                + y * (-0.02057706
                                    + y * (0.02635537 + y * (-0.01647633 + y * 0.00392377))))))))
    }
}

/// `exp(-x) * I0(x)` — numerically stable for large `x` where `I0` alone
/// overflows.
pub fn bessel_i0_scaled(x: f64) -> f64 {
    let ax = x.abs();
    if ax < 3.75 {
        bessel_i0(x) * (-ax).exp()
    } else {
        let y = 3.75 / ax;
        (1.0 / ax.sqrt())
            * (0.39894228
                + y * (0.01328592
                    + y * (0.00225319
                        + y * (-0.00157565
                            + y * (0.00916281
                                + y * (-0.02057706
                                    + y * (0.02635537 + y * (-0.01647633 + y * 0.00392377))))))))
    }
}

/// First-order Marcum Q-function `Q1(a, b)`.
///
/// `Q1(a, b) = ∫_b^∞ x · exp(-(x² + a²)/2) · I0(a·x) dx` — the probability
/// that a Rician envelope with noncentrality `a` exceeds threshold `b`.
///
/// Evaluated by composite Simpson integration of the Rician density with a
/// numerically stable integrand (the `exp` and `I0` growth are combined
/// before exponentiation). Accuracy is better than 1e-9 over the SNR range
/// used in this workspace.
pub fn marcum_q1(a: f64, b: f64) -> f64 {
    assert!(a >= 0.0 && b >= 0.0, "marcum_q1 requires non-negative args");
    if b == 0.0 {
        return 1.0;
    }
    // Integrand: x * exp(-(x-a)^2/2) * [exp(-ax) * I0(ax)] — stable because
    // bessel_i0_scaled(ax) = exp(-ax) I0(ax) stays O(1/sqrt(ax)).
    let f = |x: f64| -> f64 {
        let d = x - a;
        x * (-0.5 * d * d).exp() * bessel_i0_scaled(a * x)
    };
    // The density is concentrated around x ≈ a with Gaussian-ish tails of
    // unit variance; integrate from b to a + 12 sigma (or b + 12 if b > a).
    let upper = (a.max(b)) + 12.0;
    if b >= upper {
        return 0.0;
    }
    let n = 1200usize; // even
    let h = (upper - b) / n as f64;
    let mut acc = f(b) + f(upper);
    for i in 1..n {
        let x = b + h * i as f64;
        acc += f(x) * if i % 2 == 1 { 4.0 } else { 2.0 };
    }
    (acc * h / 3.0).clamp(0.0, 1.0)
}

/// `n` evenly spaced points from `start` to `stop` inclusive.
pub fn linspace(start: f64, stop: f64, n: usize) -> Vec<f64> {
    assert!(n >= 2, "linspace needs at least two points");
    let step = (stop - start) / (n - 1) as f64;
    (0..n).map(|i| start + step * i as f64).collect()
}

/// `n` logarithmically spaced points from `start` to `stop` inclusive
/// (both must be positive).
pub fn logspace(start: f64, stop: f64, n: usize) -> Vec<f64> {
    assert!(
        start > 0.0 && stop > 0.0,
        "logspace needs positive endpoints"
    );
    linspace(start.ln(), stop.ln(), n)
        .into_iter()
        .map(f64::exp)
        .collect()
}

/// Trapezoidal integration of samples `y` over uniform spacing `dx`.
pub fn trapezoid(y: &[f64], dx: f64) -> f64 {
    if y.len() < 2 {
        return 0.0;
    }
    let interior: f64 = y[1..y.len() - 1].iter().sum();
    dx * (0.5 * (y[0] + y[y.len() - 1]) + interior)
}

/// Linear interpolation of `(xs, ys)` at `x`, clamping outside the range.
///
/// `xs` must be strictly increasing.
pub fn interp1(xs: &[f64], ys: &[f64], x: f64) -> f64 {
    assert_eq!(xs.len(), ys.len(), "interp1: mismatched lengths");
    assert!(!xs.is_empty(), "interp1: empty input");
    if x <= xs[0] {
        return ys[0];
    }
    if x >= xs[xs.len() - 1] {
        return ys[ys.len() - 1];
    }
    // Binary search for the bracketing interval.
    let mut lo = 0usize;
    let mut hi = xs.len() - 1;
    while hi - lo > 1 {
        let mid = (lo + hi) / 2;
        if xs[mid] <= x {
            lo = mid;
        } else {
            hi = mid;
        }
    }
    let t = (x - xs[lo]) / (xs[hi] - xs[lo]);
    ys[lo] + t * (ys[hi] - ys[lo])
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn erf_known_values() {
        assert!((erf(0.0)).abs() < 1e-6);
        assert!((erf(1.0) - 0.8427007929).abs() < 1e-6);
        assert!((erfc(1.0) - 0.1572992071).abs() < 1e-6);
        assert!((erf(-1.0) + 0.8427007929).abs() < 1e-6);
        assert!((erfc(3.0) - 2.209049699e-5).abs() < 1e-9);
    }

    #[test]
    fn erfc_symmetry() {
        for x in [0.1, 0.5, 1.0, 2.0] {
            assert!((erfc(-x) + erfc(x) - 2.0).abs() < 1e-9, "x={x}");
        }
    }

    #[test]
    fn q_function_known_values() {
        assert!((q_function(0.0) - 0.5).abs() < 1e-6);
        assert!((q_function(1.0) - 0.158655).abs() < 1e-5);
        assert!((q_function(3.0) - 0.0013499).abs() < 1e-6);
    }

    #[test]
    fn bessel_i0_known_values() {
        assert!((bessel_i0(0.0) - 1.0).abs() < 1e-9);
        assert!((bessel_i0(1.0) - 1.2660658).abs() < 1e-6);
        assert!((bessel_i0(5.0) - 27.239872).abs() < 3e-5 * 27.24);
    }

    #[test]
    fn bessel_scaled_matches_unscaled() {
        for x in [0.5, 2.0, 4.0, 10.0, 50.0] {
            let direct = bessel_i0(x) * f64::exp(-x);
            assert!(
                (bessel_i0_scaled(x) - direct).abs() < 1e-6 * direct.max(1e-12),
                "x={x}"
            );
        }
    }

    #[test]
    fn marcum_boundaries() {
        // Q1(a, 0) = 1 always.
        assert!((marcum_q1(0.0, 0.0) - 1.0).abs() < 1e-12);
        assert!((marcum_q1(3.0, 0.0) - 1.0).abs() < 1e-12);
        // Q1(0, b) = exp(-b^2/2) (Rayleigh tail).
        for b in [0.5f64, 1.0, 2.0, 3.0] {
            let expected = (-0.5 * b * b).exp();
            assert!(
                (marcum_q1(0.0, b) - expected).abs() < 1e-7,
                "b={b}: {} vs {}",
                marcum_q1(0.0, b),
                expected
            );
        }
    }

    #[test]
    fn marcum_known_value() {
        // Cross-checked against MATLAB marcumq(1, 2) = 0.26945...
        let q = marcum_q1(1.0, 2.0);
        assert!((q - 0.269012).abs() < 5e-4, "got {q}");
    }

    #[test]
    fn marcum_monotonic_in_a() {
        let mut prev = 0.0;
        for a in [0.0, 0.5, 1.0, 2.0, 4.0] {
            let q = marcum_q1(a, 2.0);
            assert!(q >= prev, "Q1 should grow with a");
            prev = q;
        }
    }

    #[test]
    fn linspace_endpoints() {
        let v = linspace(0.0, 1.0, 5);
        assert_eq!(v, vec![0.0, 0.25, 0.5, 0.75, 1.0]);
    }

    #[test]
    fn logspace_endpoints() {
        let v = logspace(1.0, 100.0, 3);
        assert!((v[0] - 1.0).abs() < 1e-12);
        assert!((v[1] - 10.0).abs() < 1e-9);
        assert!((v[2] - 100.0).abs() < 1e-9);
    }

    #[test]
    fn trapezoid_integrates_line() {
        // ∫0..1 x dx = 0.5 with exact trapezoid on a linear function.
        let xs = linspace(0.0, 1.0, 101);
        let ys: Vec<f64> = xs.to_vec();
        assert!((trapezoid(&ys, 0.01) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn interp1_behaviour() {
        let xs = [0.0, 1.0, 2.0];
        let ys = [0.0, 10.0, 40.0];
        assert!((interp1(&xs, &ys, 0.5) - 5.0).abs() < 1e-12);
        assert!((interp1(&xs, &ys, 1.5) - 25.0).abs() < 1e-12);
        // Clamping.
        assert_eq!(interp1(&xs, &ys, -1.0), 0.0);
        assert_eq!(interp1(&xs, &ys, 5.0), 40.0);
    }
}
