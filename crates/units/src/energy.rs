//! Energy and per-bit energy quantities.

use crate::power::Watts;
use crate::time::Seconds;
use core::fmt;
use core::iter::Sum;
use core::ops::{Add, AddAssign, Div, Mul, Sub, SubAssign};

/// An energy quantity, stored internally in joules.
///
/// Battery capacities in the paper are quoted in watt-hours (Fig. 1), switch
/// overheads in Wh as well (Table 5); both convert through here.
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Default)]
pub struct Joules(f64);

impl Joules {
    /// Zero energy.
    pub const ZERO: Joules = Joules(0.0);

    /// Energy from joules.
    #[inline]
    pub const fn new(joules: f64) -> Self {
        Joules(joules)
    }

    /// Energy from watt-hours (1 Wh = 3600 J).
    #[inline]
    pub fn from_watt_hours(wh: f64) -> Self {
        Joules(wh * 3600.0)
    }

    /// Energy from milliamp-hours at a given cell voltage.
    #[inline]
    pub fn from_mah(mah: f64, volts: f64) -> Self {
        Joules::from_watt_hours(mah * 1e-3 * volts)
    }

    /// The value in joules.
    #[inline]
    pub const fn joules(self) -> f64 {
        self.0
    }

    /// The value in watt-hours.
    #[inline]
    pub fn watt_hours(self) -> f64 {
        self.0 / 3600.0
    }

    /// True if the value is finite and non-negative.
    #[inline]
    pub fn is_physical(self) -> bool {
        self.0.is_finite() && self.0 >= 0.0
    }

    /// Clamp to zero from below (battery cannot go negative).
    #[inline]
    pub fn clamped_non_negative(self) -> Joules {
        Joules(self.0.max(0.0))
    }

    /// Component-wise minimum.
    #[inline]
    pub fn min(self, other: Joules) -> Joules {
        Joules(self.0.min(other.0))
    }

    /// Component-wise maximum.
    #[inline]
    pub fn max(self, other: Joules) -> Joules {
        Joules(self.0.max(other.0))
    }
}

impl fmt::Display for Joules {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0.abs() >= 3600.0 {
            write!(f, "{:.3} Wh", self.watt_hours())
        } else if self.0.abs() >= 1.0 {
            write!(f, "{:.3} J", self.0)
        } else if self.0.abs() >= 1e-3 {
            write!(f, "{:.3} mJ", self.0 * 1e3)
        } else if self.0.abs() >= 1e-6 {
            write!(f, "{:.3} uJ", self.0 * 1e6)
        } else {
            write!(f, "{:.3} nJ", self.0 * 1e9)
        }
    }
}

impl Add for Joules {
    type Output = Joules;
    #[inline]
    fn add(self, rhs: Joules) -> Joules {
        Joules(self.0 + rhs.0)
    }
}

impl AddAssign for Joules {
    #[inline]
    fn add_assign(&mut self, rhs: Joules) {
        self.0 += rhs.0;
    }
}

impl Sub for Joules {
    type Output = Joules;
    #[inline]
    fn sub(self, rhs: Joules) -> Joules {
        Joules(self.0 - rhs.0)
    }
}

impl SubAssign for Joules {
    #[inline]
    fn sub_assign(&mut self, rhs: Joules) {
        self.0 -= rhs.0;
    }
}

impl Mul<f64> for Joules {
    type Output = Joules;
    #[inline]
    fn mul(self, rhs: f64) -> Joules {
        Joules(self.0 * rhs)
    }
}

impl Mul<Joules> for f64 {
    type Output = Joules;
    #[inline]
    fn mul(self, rhs: Joules) -> Joules {
        Joules(self * rhs.0)
    }
}

impl Div<f64> for Joules {
    type Output = Joules;
    #[inline]
    fn div(self, rhs: f64) -> Joules {
        Joules(self.0 / rhs)
    }
}

impl Div<Joules> for Joules {
    type Output = f64;
    #[inline]
    fn div(self, rhs: Joules) -> f64 {
        self.0 / rhs.0
    }
}

impl Div<Watts> for Joules {
    type Output = Seconds;
    #[inline]
    fn div(self, rhs: Watts) -> Seconds {
        Seconds::new(self.0 / rhs.watts())
    }
}

impl Div<Seconds> for Joules {
    type Output = Watts;
    #[inline]
    fn div(self, rhs: Seconds) -> Watts {
        Watts::new(self.0 / rhs.seconds())
    }
}

impl Div<JoulesPerBit> for Joules {
    /// Bits deliverable from this energy at a given per-bit cost.
    type Output = f64;
    #[inline]
    fn div(self, rhs: JoulesPerBit) -> f64 {
        self.0 / rhs.joules_per_bit()
    }
}

impl Sum for Joules {
    fn sum<I: Iterator<Item = Joules>>(iter: I) -> Joules {
        iter.fold(Joules::ZERO, |a, b| a + b)
    }
}

/// Energy cost of moving one bit, in joules per bit.
///
/// The paper's Figs. 9 and 14 plot the reciprocal (bits per joule) on both
/// axes; [`JoulesPerBit::bits_per_joule`] converts.
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Default)]
pub struct JoulesPerBit(f64);

impl JoulesPerBit {
    /// Zero cost.
    pub const ZERO: JoulesPerBit = JoulesPerBit(0.0);

    /// From joules per bit.
    #[inline]
    pub const fn new(jpb: f64) -> Self {
        JoulesPerBit(jpb)
    }

    /// From nanojoules per bit.
    #[inline]
    pub fn from_nanojoules(njpb: f64) -> Self {
        JoulesPerBit(njpb * 1e-9)
    }

    /// The value in joules per bit.
    #[inline]
    pub const fn joules_per_bit(self) -> f64 {
        self.0
    }

    /// The value in nanojoules per bit.
    #[inline]
    pub fn nanojoules_per_bit(self) -> f64 {
        self.0 * 1e9
    }

    /// The reciprocal efficiency in bits per joule (`inf` for zero cost).
    #[inline]
    pub fn bits_per_joule(self) -> f64 {
        1.0 / self.0
    }

    /// True if the value is finite and non-negative.
    #[inline]
    pub fn is_physical(self) -> bool {
        self.0.is_finite() && self.0 >= 0.0
    }
}

impl fmt::Display for JoulesPerBit {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.4} nJ/bit", self.nanojoules_per_bit())
    }
}

impl Add for JoulesPerBit {
    type Output = JoulesPerBit;
    #[inline]
    fn add(self, rhs: JoulesPerBit) -> JoulesPerBit {
        JoulesPerBit(self.0 + rhs.0)
    }
}

impl Sub for JoulesPerBit {
    type Output = JoulesPerBit;
    #[inline]
    fn sub(self, rhs: JoulesPerBit) -> JoulesPerBit {
        JoulesPerBit(self.0 - rhs.0)
    }
}

impl Mul<f64> for JoulesPerBit {
    type Output = JoulesPerBit;
    #[inline]
    fn mul(self, rhs: f64) -> JoulesPerBit {
        JoulesPerBit(self.0 * rhs)
    }
}

impl Mul<JoulesPerBit> for f64 {
    type Output = JoulesPerBit;
    #[inline]
    fn mul(self, rhs: JoulesPerBit) -> JoulesPerBit {
        JoulesPerBit(self * rhs.0)
    }
}

impl Div<JoulesPerBit> for JoulesPerBit {
    type Output = f64;
    #[inline]
    fn div(self, rhs: JoulesPerBit) -> f64 {
        self.0 / rhs.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn watt_hours_round_trip() {
        let e = Joules::from_watt_hours(99.5);
        assert!((e.watt_hours() - 99.5).abs() < 1e-12);
        assert!((e.joules() - 358_200.0).abs() < 1e-6);
    }

    #[test]
    fn mah_conversion() {
        // iPhone 6S: 1715 mAh at 3.82 V ~= 6.55 Wh.
        let e = Joules::from_mah(1715.0, 3.82);
        assert!((e.watt_hours() - 6.55).abs() < 0.01);
    }

    #[test]
    fn energy_over_power_is_time() {
        let t = Joules::new(100.0) / Watts::new(10.0);
        assert!((t.seconds() - 10.0).abs() < 1e-12);
    }

    #[test]
    fn energy_over_cost_is_bits() {
        let bits = Joules::new(1.0) / JoulesPerBit::from_nanojoules(125.0);
        assert!((bits - 8.0e6).abs() < 1.0);
    }

    #[test]
    fn bits_per_joule_reciprocal() {
        let c = JoulesPerBit::from_nanojoules(100.0);
        assert!((c.bits_per_joule() - 1e7).abs() < 1e-3);
    }

    #[test]
    fn clamping() {
        assert_eq!(
            (Joules::new(1.0) - Joules::new(2.0)).clamped_non_negative(),
            Joules::ZERO
        );
    }

    #[test]
    fn display_scales() {
        assert_eq!(format!("{}", Joules::from_watt_hours(2.0)), "2.000 Wh");
        assert_eq!(format!("{}", Joules::new(1.5)), "1.500 J");
        assert_eq!(format!("{}", Joules::new(2e-3)), "2.000 mJ");
        assert_eq!(format!("{}", Joules::new(3e-6)), "3.000 uJ");
        assert_eq!(format!("{}", Joules::new(4e-9)), "4.000 nJ");
    }
}
