//! Distances, stored in meters.

use core::fmt;
use core::ops::{Add, Div, Mul, Neg, Sub};

/// A distance, stored in meters.
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Default)]
pub struct Meters(f64);

impl Meters {
    /// Zero distance.
    pub const ZERO: Meters = Meters(0.0);

    /// From meters.
    #[inline]
    pub const fn new(m: f64) -> Self {
        Meters(m)
    }

    /// From centimeters.
    #[inline]
    pub fn from_cm(cm: f64) -> Self {
        Meters(cm * 1e-2)
    }

    /// The value in meters.
    #[inline]
    pub const fn meters(self) -> f64 {
        self.0
    }

    /// The value in centimeters.
    #[inline]
    pub fn cm(self) -> f64 {
        self.0 * 1e2
    }

    /// True if the value is finite and non-negative.
    #[inline]
    pub fn is_physical(self) -> bool {
        self.0.is_finite() && self.0 >= 0.0
    }

    /// Component-wise maximum.
    #[inline]
    pub fn max(self, other: Meters) -> Meters {
        Meters(self.0.max(other.0))
    }

    /// Component-wise minimum.
    #[inline]
    pub fn min(self, other: Meters) -> Meters {
        Meters(self.0.min(other.0))
    }
}

impl fmt::Display for Meters {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0.abs() < 1.0 {
            write!(f, "{:.1} cm", self.cm())
        } else {
            write!(f, "{:.2} m", self.0)
        }
    }
}

impl Add for Meters {
    type Output = Meters;
    #[inline]
    fn add(self, rhs: Meters) -> Meters {
        Meters(self.0 + rhs.0)
    }
}

impl Sub for Meters {
    type Output = Meters;
    #[inline]
    fn sub(self, rhs: Meters) -> Meters {
        Meters(self.0 - rhs.0)
    }
}

impl Neg for Meters {
    type Output = Meters;
    #[inline]
    fn neg(self) -> Meters {
        Meters(-self.0)
    }
}

impl Mul<f64> for Meters {
    type Output = Meters;
    #[inline]
    fn mul(self, rhs: f64) -> Meters {
        Meters(self.0 * rhs)
    }
}

impl Mul<Meters> for f64 {
    type Output = Meters;
    #[inline]
    fn mul(self, rhs: Meters) -> Meters {
        Meters(self * rhs.0)
    }
}

impl Div<f64> for Meters {
    type Output = Meters;
    #[inline]
    fn div(self, rhs: f64) -> Meters {
        Meters(self.0 / rhs)
    }
}

impl Div<Meters> for Meters {
    type Output = f64;
    #[inline]
    fn div(self, rhs: Meters) -> f64 {
        self.0 / rhs.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions() {
        assert_eq!(Meters::from_cm(150.0), Meters::new(1.5));
        assert!((Meters::new(0.12).cm() - 12.0).abs() < 1e-12);
    }

    #[test]
    fn arithmetic() {
        let d = Meters::new(2.0) - Meters::new(0.5);
        assert_eq!(d, Meters::new(1.5));
        assert_eq!(d * 2.0, Meters::new(3.0));
        assert!((Meters::new(3.0) / Meters::new(1.5) - 2.0).abs() < 1e-12);
    }

    #[test]
    fn display() {
        assert_eq!(format!("{}", Meters::new(1.8)), "1.80 m");
        assert_eq!(format!("{}", Meters::from_cm(12.0)), "12.0 cm");
    }
}
