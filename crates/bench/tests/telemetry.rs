//! The telemetry contract, end to end: traces are a pure function of the
//! scenario (byte-identical at any thread count), the JSONL stream passes
//! its own validator, and the event stream carries enough information to
//! reconstruct every battery's drain exactly.
//!
//! Telemetry capture is process-global state (one enable flag, one run-id
//! base), so the tests that touch it serialize on a mutex — each test
//! leaves capture off and the buffers drained.

use braidio::pool;
use braidio_bench::fleet;
use braidio_telemetry as telemetry;
use braidio_telemetry::sink;
use std::sync::Mutex;

static FLAGS: Mutex<()> = Mutex::new(());

/// Capture one full fleet-grid run at the given thread count and render it.
fn traced_grid_jsonl(threads: usize) -> String {
    telemetry::take_events(); // drop anything a previous test left behind
    telemetry::set_enabled(true);
    let grid = fleet::scenarios();
    pool::with_threads(threads, || fleet::run_grid(&grid));
    telemetry::set_enabled(false);
    sink::render_jsonl(&telemetry::take_events())
}

#[test]
fn fleet_trace_byte_identical_at_1_and_4_threads() {
    let _guard = FLAGS.lock().unwrap_or_else(|e| e.into_inner());
    telemetry::set_run_base(0);
    let serial = traced_grid_jsonl(1);
    let par = traced_grid_jsonl(4);
    assert!(serial == par, "trace differs between 1 and 4 threads");

    // The stream also satisfies its own schema: monotone per-track time,
    // balanced carrier grants, the closed event vocabulary.
    let summary = sink::validate_jsonl(&serial).expect("valid trace");
    assert!(
        summary.events > 1000,
        "suspiciously small: {}",
        summary.events
    );
    assert!(
        summary.tracks > 10,
        "suspiciously few tracks: {}",
        summary.tracks
    );
}

#[test]
fn fleet_scale_trace_byte_identical_at_1_and_4_threads() {
    // The determinism suite's scale gate, with telemetry capture on: a
    // 32-pair scenario family traced at 1 and 4 threads renders the same
    // JSONL byte-for-byte (events re-injected in chunk index order), and
    // the trace passes its own validator at scale.
    let _guard = FLAGS.lock().unwrap_or_else(|e| e.into_inner());
    telemetry::set_run_base(0);
    let traced = |threads: usize| {
        telemetry::take_events();
        telemetry::set_enabled(true);
        let grid = fleet::scale_scenarios(32);
        pool::with_threads(threads, || fleet::run_grid(&grid));
        telemetry::set_enabled(false);
        sink::render_jsonl(&telemetry::take_events())
    };
    let serial = traced(1);
    let par = traced(4);
    assert!(serial == par, "scale trace differs between 1 and 4 threads");
    let summary = sink::validate_jsonl(&serial).expect("valid trace");
    assert!(
        summary.events > 1000,
        "suspiciously small: {}",
        summary.events
    );
}

#[test]
fn energy_ledger_reconstructs_battery_drain() {
    let _guard = FLAGS.lock().unwrap_or_else(|e| e.into_inner());
    telemetry::set_run_base(0);
    telemetry::take_events();
    telemetry::set_enabled(true);
    let grid = fleet::scenarios();
    let reports = fleet::run_grid(&grid); // also runs the built-in audit
    telemetry::set_enabled(false);
    let folded = sink::fold_energy(&telemetry::take_events());
    let mut checked = 0usize;
    for (i, report) in reports.iter().enumerate() {
        for (d, spent) in report.device_spent.iter().enumerate() {
            let ledger = folded
                .get(&(i as u32, telemetry::Track::Device(d as u32)))
                .copied()
                .unwrap_or(0.0);
            let spent = spent.joules();
            let rel = (ledger - spent).abs() / spent.abs().max(1e-30);
            assert!(rel <= 1e-9, "scenario {i} device {d}: {ledger} vs {spent}");
            checked += 1;
        }
    }
    assert!(checked > 50, "audited only {checked} ledgers");
}

#[test]
fn validator_rejects_malformed_traces() {
    const HDR: &str =
        "{\"schema\":1,\"stream\":\"braidio-telemetry\",\"time\":\"simulated-seconds\"}\n";

    // Missing header.
    assert!(sink::validate_jsonl("").is_err());
    assert!(sink::validate_jsonl(
        "{\"run\":0,\"unit\":1,\"track\":\"d0\",\"t\":0,\"ev\":\"wakeup_detect\"}\n"
    )
    .is_err());

    // Unknown event name.
    let bad_ev =
        format!("{HDR}{{\"run\":0,\"unit\":1,\"track\":\"d0\",\"t\":0,\"ev\":\"frobnicate\"}}\n");
    assert!(sink::validate_jsonl(&bad_ev).is_err());

    // Time running backwards within one (run, unit, track) identity.
    let backwards = format!(
        "{HDR}{{\"run\":0,\"unit\":1,\"track\":\"d0\",\"t\":5,\"ev\":\"wakeup_detect\"}}\n\
         {{\"run\":0,\"unit\":1,\"track\":\"d0\",\"t\":4,\"ev\":\"wakeup_detect\"}}\n"
    );
    assert!(sink::validate_jsonl(&backwards).is_err());

    // A carrier grant that never releases.
    let unbalanced = format!(
        "{HDR}{{\"run\":0,\"unit\":1,\"track\":\"p0\",\"t\":0,\"ev\":\"carrier_grant\"}}\n"
    );
    assert!(sink::validate_jsonl(&unbalanced).is_err());

    // And the shape all of those deviate from is accepted.
    let good = format!(
        "{HDR}{{\"run\":0,\"unit\":1,\"track\":\"p0\",\"t\":0,\"ev\":\"carrier_grant\"}}\n\
         {{\"run\":0,\"unit\":1,\"track\":\"p0\",\"t\":1,\"ev\":\"carrier_release\"}}\n"
    );
    let summary = sink::validate_jsonl(&good).expect("valid");
    assert_eq!(summary.events, 2);
    assert_eq!(summary.tracks, 1);
}

#[test]
fn validator_enforces_lifecycle_rules() {
    const HDR: &str =
        "{\"schema\":1,\"stream\":\"braidio-telemetry\",\"time\":\"simulated-seconds\"}\n";
    let line = |t: u32, ev: &str, extra: &str| {
        format!("{{\"run\":0,\"unit\":1,\"track\":\"p0\",\"t\":{t},\"ev\":\"{ev}\"{extra}}}\n")
    };
    let hop = |t: u32, from: &str, to: &str| {
        line(
            t,
            "phase_change",
            &format!(",\"from\":\"{from}\",\"to\":\"{to}\""),
        )
    };

    // A full open-system session is accepted: admission, the ride up the
    // phase ladder, deliveries while live and degraded, and death.
    let good = format!(
        "{HDR}{}{}{}{}{}{}{}{}",
        line(0, "admitted", ",\"latency\":0.253"),
        hop(0, "init", "probe"),
        hop(1, "probe", "warm"),
        hop(2, "warm", "live"),
        line(3, "quantum_delivered", ""),
        hop(4, "live", "degrade"),
        line(5, "quantum_delivered", ""),
        hop(6, "degrade", "dead"),
    );
    let summary = sink::validate_jsonl(&good).expect("valid lifecycle trace");
    assert_eq!(summary.events, 8);

    // A hop outside the lifecycle table is rejected (init never jumps
    // straight to live).
    let illegal = format!("{HDR}{}", hop(0, "init", "live"));
    assert!(sink::validate_jsonl(&illegal)
        .unwrap_err()
        .contains("illegal phase transition"));

    // A legal hop whose `from` disagrees with the track's running phase is
    // rejected — chains must be monotone per track, starting at init.
    let broken = format!("{HDR}{}", hop(0, "probe", "warm"));
    assert!(sink::validate_jsonl(&broken)
        .unwrap_err()
        .contains("phase chain broken"));

    // Once a track declares phases, deliveries are only legal in live or
    // degrade — a quantum in probe means the engine leaked a stale event.
    let early = format!(
        "{HDR}{}{}",
        hop(0, "init", "probe"),
        line(1, "quantum_delivered", "")
    );
    assert!(sink::validate_jsonl(&early)
        .unwrap_err()
        .contains("quantum_delivered in phase"));

    // Closed-scenario tracks never declare a phase, and their deliveries
    // stay ungated — the legacy trace shape is still accepted verbatim.
    let closed = format!("{HDR}{}", line(0, "quantum_delivered", ""));
    assert!(sink::validate_jsonl(&closed).is_ok());

    // Admission must carry a finite, non-negative latency.
    let negative = format!("{HDR}{}", line(0, "admitted", ",\"latency\":-0.1"));
    assert!(sink::validate_jsonl(&negative)
        .unwrap_err()
        .contains("latency"));
    let missing = format!("{HDR}{}", line(0, "admitted", ""));
    assert!(sink::validate_jsonl(&missing)
        .unwrap_err()
        .contains("latency"));
}

#[test]
fn churn_trace_byte_identical_at_1_and_4_threads() {
    // The open-system gate: a small churn grid traced at 1 and 4 threads
    // renders the same JSONL byte-for-byte, and the trace — which now
    // carries admissions and phase_change chains — passes the validator's
    // lifecycle rules.
    let _guard = FLAGS.lock().unwrap_or_else(|e| e.into_inner());
    telemetry::set_run_base(0);
    let traced = |threads: usize| {
        telemetry::take_events();
        telemetry::set_enabled(true);
        let grid = fleet::churn_scenarios(40);
        pool::with_threads(threads, || fleet::run_grid(&grid));
        telemetry::set_enabled(false);
        sink::render_jsonl(&telemetry::take_events())
    };
    let serial = traced(1);
    let par = traced(4);
    assert!(serial == par, "churn trace differs between 1 and 4 threads");
    let summary = sink::validate_jsonl(&serial).expect("valid churn trace");
    assert!(
        summary.events > 100,
        "suspiciously small: {}",
        summary.events
    );
    assert!(
        serial.contains("\"ev\":\"admitted\"") && serial.contains("\"ev\":\"phase_change\""),
        "churn trace carries no lifecycle events"
    );
}
