//! Offline trace analyzer: golden fixture + the clean-engine-trace
//! property.
//!
//! The golden test pins the full human-readable report for a hand-written
//! schema-1 trace whose every number is computed on paper in the comments,
//! so a formatting or accounting regression shows up as a one-line diff.
//! The property test closes the loop with the engine: any valid
//! open-system trace analyzes with ZERO anomalies, and every session's
//! per-phase dwells sum exactly to its observed lifetime — the invariant
//! the CI gate (`grep '^anomalies: 0'`) relies on.

use braidio_bench::analyze::{analyze, render_json, render_text, AnalyzeOptions};
use braidio_net::{run_fleet, Arbitration, FleetScenario};
use braidio_telemetry as telemetry;
use braidio_units::Seconds;
use proptest::prelude::*;

/// One session (p0) admitted at t=0.5 after 0.5 s of discovery (arrival
/// t=0), probed, warmed, delivered once in `live`, and died of battery at
/// t=6. Two devices spend energy. By hand:
///
/// * dwells — init 0.5 (arrival→first hop), probe 1.0 (0.5→1.5),
///   warm 0.5 (1.5→2), live 4.0 (2→6), dead 0 (dies at trace end);
/// * time-to-first-delivery — 2.5 (delivery t=2.5 − arrival t=0);
/// * energy — d0: 0.25 + 0.125 = 0.375 J, d1: 0.125 J (binary-exact, so
///   the compensated fold agrees and drift is 0);
/// * anomalies — none at the default 30 s threshold; at `--stuck-s 0.75`
///   exactly one: the closed 1 s probe dwell.
const FIXTURE: &str = concat!(
    "{\"schema\":1,\"stream\":\"braidio-telemetry\",\"time\":\"simulated-seconds\"}\n",
    "{\"run\":0,\"unit\":0,\"track\":\"p0\",\"t\":0.5,\"ev\":\"admitted\",\"latency\":0.5}\n",
    "{\"run\":0,\"unit\":0,\"track\":\"p0\",\"t\":0.5,\"ev\":\"phase_change\",\"from\":\"init\",\"to\":\"probe\"}\n",
    "{\"run\":0,\"unit\":0,\"track\":\"p0\",\"t\":1.5,\"ev\":\"phase_change\",\"from\":\"probe\",\"to\":\"warm\"}\n",
    "{\"run\":0,\"unit\":0,\"track\":\"p0\",\"t\":2,\"ev\":\"phase_change\",\"from\":\"warm\",\"to\":\"live\"}\n",
    "{\"run\":0,\"unit\":0,\"track\":\"p0\",\"t\":2,\"ev\":\"carrier_grant\"}\n",
    "{\"run\":0,\"unit\":0,\"track\":\"p0\",\"t\":2.5,\"ev\":\"quantum_delivered\",\"mode\":\"am\",\"rate\":\"active\",\"bits\":1000}\n",
    "{\"run\":0,\"unit\":0,\"track\":\"d0\",\"t\":2.5,\"ev\":\"energy_debit\",\"joules\":0.25}\n",
    "{\"run\":0,\"unit\":0,\"track\":\"d1\",\"t\":2.5,\"ev\":\"energy_debit\",\"joules\":0.125}\n",
    "{\"run\":0,\"unit\":0,\"track\":\"p0\",\"t\":3,\"ev\":\"carrier_release\"}\n",
    "{\"run\":0,\"unit\":0,\"track\":\"p0\",\"t\":6,\"ev\":\"phase_change\",\"from\":\"live\",\"to\":\"dead\"}\n",
    "{\"run\":0,\"unit\":0,\"track\":\"p0\",\"t\":6,\"ev\":\"session_dead\",\"reason\":\"battery\"}\n",
    "{\"run\":0,\"unit\":0,\"track\":\"d0\",\"t\":6,\"ev\":\"energy_debit\",\"joules\":0.125}\n",
);

#[test]
fn golden_fixture_report() {
    let a = analyze(FIXTURE, &AnalyzeOptions::default()).expect("fixture is a valid trace");
    let expected = "\
trace: 12 events, 3 tracks, end t=6
sessions: 1 (admitted 1; deaths: battery 1)
dwell per phase (s), 1 lifecycled sessions:
  init      n=1 p50=0.5 p95=0.5 max=0.5
  probe     n=1 p50=1 p95=1 max=1
  warm      n=1 p50=0.5 p95=0.5 max=0.5
  live      n=1 p50=4 p95=4 max=4
  degrade   n=1 p50=0 p95=0 max=0
  cooldown  n=1 p50=0 p95=0 max=0
  dead      n=1 p50=0 p95=0 max=0
time-to-first-delivery (s): n=1 p50=2.5 p95=2.5 max=2.5
energy waterfall (top 2 of 2 devices, 0.5 J total):
  run 0 d0     0.375 J
  run 0 d1     0.125 J
anomalies: 0
";
    assert_eq!(render_text(&a), expected);

    // The machine report carries the same numbers.
    let json = render_json(&a);
    assert!(json.contains("\"events\":12"), "json: {json}");
    assert!(json.contains("\"anomalies\":[]"), "json: {json}");
    assert!(
        json.contains("{\"run\":0,\"track\":\"d0\",\"joules\":0.375,\"drift\":0}"),
        "json: {json}"
    );
}

#[test]
fn stuck_threshold_flags_the_long_probe() {
    let a = analyze(FIXTURE, &AnalyzeOptions { stuck_s: 0.75 }).expect("fixture is valid");
    assert_eq!(
        a.anomalies,
        vec!["session (0,0,p0) stuck 1s in \"probe\" (threshold 0.75s)".to_string()]
    );
    assert!(render_text(&a)
        .ends_with("anomalies: 1\n  - session (0,0,p0) stuck 1s in \"probe\" (threshold 0.75s)\n"));
}

/// A random small open system, mirroring the churn determinism suite.
fn arb_open_system() -> impl Strategy<Value = FleetScenario> {
    (1usize..=3, 4usize..=24, 0u32..3, any::<u64>()).prop_map(|(hubs, sessions, arb_sel, seed)| {
        let arb = match arb_sel {
            0 => Arbitration::Uncoordinated,
            1 => Arbitration::ChannelPlan { channels: 2 },
            _ => Arbitration::TdmaRoundRobin {
                slot: Seconds::new(0.25),
            },
        };
        FleetScenario::open_system(hubs, sessions, Seconds::new(20.0), seed, arb)
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Analyzing a trace the engine actually produced yields no anomaly
    /// flags, and every lifecycled session's dwells sum to its observed
    /// lifetime (`end − start`) — the accounting never loses time.
    #[test]
    fn engine_traces_analyze_clean(sc in arb_open_system()) {
        telemetry::set_enabled(true);
        let _ = telemetry::take_events();
        let _ = telemetry::with_run(0, || run_fleet(&sc));
        let events = telemetry::take_events();
        telemetry::set_enabled(false);
        let jsonl = telemetry::sink::render_jsonl(&events);

        let a = analyze(&jsonl, &AnalyzeOptions::default())
            .map_err(|e| TestCaseError::fail(format!("analyze failed: {e}")))?;
        prop_assert!(
            a.anomalies.is_empty(),
            "engine trace flagged: {:?}",
            a.anomalies
        );
        prop_assert!(a.events > 0, "trace carried no events");
        let mut lifecycled = 0usize;
        for s in &a.sessions {
            if !s.has_phases {
                continue;
            }
            lifecycled += 1;
            let total: f64 = s.dwell.iter().sum();
            let lifetime = s.end - s.start;
            prop_assert!(
                (total - lifetime).abs() <= 1e-9 * lifetime.max(1.0),
                "session ({},{},{}) dwells sum to {total}, lifetime {lifetime}",
                s.run, s.unit, s.track
            );
        }
        prop_assert!(lifecycled > 0, "no lifecycled sessions to check");
    }
}
