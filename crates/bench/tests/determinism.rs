//! The parallel engine's core guarantee: results are bit-identical at any
//! thread count. Chunking is by index and merge order is fixed, so the
//! thread count only changes wall-clock time, never output.

use braidio::pool;
use braidio_bench::{fig15, fleet, render};
use braidio_net::run_fleet;
use braidio_phy::ber::{ber_coherent, ber_ook_noncoherent_fast};
use braidio_phy::montecarlo::MonteCarloBer;
use braidio_phy::surface::{self, BerModel};
use braidio_radio::characterization::{Characterization, Rate};
use braidio_radio::Mode;
use braidio_units::{BitsPerSecond, Meters};

#[test]
fn fig15_cell_is_pure() {
    // A cell evaluated twice (possibly on different threads, with the memo
    // cache warm the second time) must agree exactly.
    let a = fig15::cell(3, 7);
    let b = fig15::cell(3, 7);
    assert_eq!(a.to_bits(), b.to_bits(), "{a} vs {b}");
}

#[test]
fn low_bitrate_mc_probe_identical_at_1_and_4_threads() {
    // The exact points `experiments mcber` prints: 1 kbps, 20 000 samples
    // per bit, through the fused streaming chain. Error counts are exact
    // integers, so equality here is byte-identity of the probe's output.
    let rate = BitsPerSecond::new(1_000.0);
    for (snr_db, seed) in [(6.0f64, 11u64), (10.0, 12), (14.0, 13)] {
        let mc = MonteCarloBer::at_snr_db(snr_db, rate, 256, seed);
        let serial = pool::with_threads(1, || mc.run());
        let par = pool::with_threads(4, || mc.run());
        assert_eq!(serial.bits, par.bits, "snr {snr_db}");
        assert_eq!(serial.errors, par.errors, "snr {snr_db}");
        assert_eq!(
            serial.ber().to_bits(),
            par.ber().to_bits(),
            "snr {snr_db}: {} vs {}",
            serial.ber(),
            par.ber()
        );
    }
}

#[test]
fn surface_backed_figures_match_direct_evaluation_bitwise() {
    // Every figure-facing BER now flows through the shared response
    // surface. In strict mode the surface is a transparent memo, so its
    // answers must equal the closed forms bit-for-bit — including after
    // the concurrent 4-thread matrix run above has warmed the caches.
    let ch = Characterization::braidio();
    pool::with_threads(4, || render::matrix_values(fig15::cell));
    for i in 0..60 {
        let d = Meters::new(0.25 + i as f64 * 0.15);
        for mode in [Mode::Active, Mode::Passive, Mode::Backscatter] {
            for rate in Rate::ALL {
                if ch.power(mode, rate).is_none() {
                    continue;
                }
                let gamma = ch.snr(mode, rate, d).linear();
                let through_surface = ch.ber(mode, rate, d);
                let direct = match mode {
                    Mode::Active => ber_coherent(gamma),
                    _ => ber_ook_noncoherent_fast(gamma),
                };
                assert_eq!(
                    through_surface.to_bits(),
                    direct.to_bits(),
                    "{mode:?}/{rate:?} at {d:?}: {through_surface} vs {direct}"
                );
            }
        }
    }
    // And the registry has actually been exercised — the memo is warm.
    assert!(surface::shared(BerModel::NoncoherentOok, Rate::Kbps100.bps()).memoized() > 0);
}

#[test]
fn fleet_grid_identical_at_1_and_4_threads() {
    // The fleet experiment shards whole scenarios across the pool; every
    // per-pair and per-device figure must come back bit-identical whether
    // the grid ran serially or four wide.
    let grid = fleet::scenarios();
    let run = |n| pool::with_threads(n, || braidio_pool::par_map(&grid, |(_, sc)| run_fleet(sc)));
    let serial = run(1);
    let par = run(4);
    assert_eq!(serial.len(), par.len());
    for (i, (a, b)) in serial.iter().zip(&par).enumerate() {
        assert_eq!(a.events, b.events, "scenario {i}");
        assert_eq!(
            a.end_time.seconds().to_bits(),
            b.end_time.seconds().to_bits(),
            "scenario {i}"
        );
        for (p, (x, y)) in a.pair_bits.iter().zip(&b.pair_bits).enumerate() {
            assert_eq!(
                x.to_bits(),
                y.to_bits(),
                "scenario {i} pair {p}: {x} vs {y}"
            );
        }
        for (d, (x, y)) in a.device_spent.iter().zip(&b.device_spent).enumerate() {
            assert_eq!(
                x.joules().to_bits(),
                y.joules().to_bits(),
                "scenario {i} device {d}: {x:?} vs {y:?}"
            );
        }
    }
}

#[test]
fn fleet_scale_identical_at_1_and_4_threads() {
    // The large-fleet rung (`experiments fleet --scale`) must hold the
    // same guarantee as the default grid: the cached interference sums,
    // options memo, and far-field cull are all per-engine state, so a
    // 32-pair scenario sharded across the pool comes back bit-identical.
    let grid = fleet::scale_scenarios(32);
    let run = |n| pool::with_threads(n, || braidio_pool::par_map(&grid, |(_, sc)| run_fleet(sc)));
    let serial = run(1);
    let par = run(4);
    assert_eq!(serial.len(), par.len());
    for (i, (a, b)) in serial.iter().zip(&par).enumerate() {
        assert_eq!(a.events, b.events, "scenario {i}");
        for (p, (x, y)) in a.pair_bits.iter().zip(&b.pair_bits).enumerate() {
            assert_eq!(x.to_bits(), y.to_bits(), "scenario {i} pair {p}");
        }
        for (d, (x, y)) in a.device_spent.iter().zip(&b.device_spent).enumerate() {
            assert_eq!(
                x.joules().to_bits(),
                y.joules().to_bits(),
                "scenario {i} device {d}"
            );
        }
    }
}

#[test]
fn device_matrix_identical_at_1_and_4_threads() {
    let serial = pool::with_threads(1, || render::matrix_values(fig15::cell));
    let par = pool::with_threads(4, || render::matrix_values(fig15::cell));
    assert_eq!(serial.len(), par.len());
    for (i, (a, b)) in serial.iter().zip(&par).enumerate() {
        assert_eq!(a.to_bits(), b.to_bits(), "cell {i}: {a} vs {b}");
    }
}
