//! The parallel engine's core guarantee: results are bit-identical at any
//! thread count. Chunking is by index and merge order is fixed, so the
//! thread count only changes wall-clock time, never output.

use braidio::pool;
use braidio_bench::{fig15, render};

#[test]
fn fig15_cell_is_pure() {
    // A cell evaluated twice (possibly on different threads, with the memo
    // cache warm the second time) must agree exactly.
    let a = fig15::cell(3, 7);
    let b = fig15::cell(3, 7);
    assert_eq!(a.to_bits(), b.to_bits(), "{a} vs {b}");
}

#[test]
fn device_matrix_identical_at_1_and_4_threads() {
    let serial = pool::with_threads(1, || render::matrix_values(fig15::cell));
    let par = pool::with_threads(4, || render::matrix_values(fig15::cell));
    assert_eq!(serial.len(), par.len());
    for (i, (a, b)) in serial.iter().zip(&par).enumerate() {
        assert_eq!(a.to_bits(), b.to_bits(), "cell {i}: {a} vs {b}");
    }
}
