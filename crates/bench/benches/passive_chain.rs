//! Microbench: the passive receive chain's sample pipeline (the inner loop
//! of every Monte-Carlo BER experiment).

use braidio_circuits::PassiveReceiverChain;
use braidio_phy::modulation::OokModulator;
use braidio_units::BitsPerSecond;
use criterion::{black_box, criterion_group, criterion_main, Criterion};

fn bench_chain(c: &mut Criterion) {
    let chain = PassiveReceiverChain::braidio();
    let modulator = OokModulator::new(20, 0.05, 0.0);
    let bits: Vec<bool> = (0..512).map(|i| i % 3 == 0).collect();
    let envelope = modulator.modulate(&bits);
    let dt = modulator.sample_interval(BitsPerSecond::KBPS_100);

    c.bench_function("chain_demodulate_512_bits", |b| {
        b.iter(|| chain.demodulate(black_box(&envelope), black_box(dt)))
    });

    c.bench_function("chain_sensitivity_query", |b| {
        b.iter(|| chain.sensitivity_dbm(black_box(braidio_units::Hertz::from_khz(100.0))))
    });

    c.bench_function("chain_quiescent_power", |b| {
        b.iter(|| black_box(&chain).quiescent_power())
    });
}

criterion_group!(benches, bench_chain);
criterion_main!(benches);
