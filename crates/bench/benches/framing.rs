//! Microbench: frame codec, line codes, CRC and bit synchronization — the
//! per-packet work a Braidio MCU performs.

use braidio_phy::coding::LineCode;
use braidio_phy::crc::crc16_ccitt;
use braidio_phy::frame::Frame;
use braidio_phy::sync::BitSync;
use criterion::{black_box, criterion_group, criterion_main, Criterion};

fn bench_framing(c: &mut Criterion) {
    let payload = vec![0xA5u8; 255];
    let frame = Frame::new(payload.clone());
    let bits = frame.encode();

    c.bench_function("frame_encode_255B", |b| {
        b.iter(|| black_box(&frame).encode())
    });
    c.bench_function("frame_decode_255B", |b| {
        b.iter(|| Frame::decode(black_box(&bits), 2).unwrap())
    });
    c.bench_function("crc16_255B", |b| {
        b.iter(|| crc16_ccitt(black_box(&payload)))
    });

    for code in [LineCode::Manchester, LineCode::Fm0] {
        let enc = code.encode(&bits);
        c.bench_function(&format!("{code:?}_encode_frame"), |b| {
            b.iter(|| code.encode(black_box(&bits)))
        });
        c.bench_function(&format!("{code:?}_decode_lossy_frame"), |b| {
            b.iter(|| code.decode_lossy(black_box(&enc)))
        });
    }

    let oversampled: Vec<bool> = bits
        .iter()
        .flat_map(|&b| std::iter::repeat_n(b, 16))
        .collect();
    let sync = BitSync::new(16);
    c.bench_function("bitsync_recover_frame_16x", |b| {
        b.iter(|| sync.recover(black_box(&oversampled)))
    });
}

criterion_group!(benches, bench_framing);
criterion_main!(benches);
