//! Microbench: analytic BER evaluation (Marcum-Q-based noncoherent OOK vs
//! the coherent Q-function form).

use braidio_phy::ber::{ber_coherent, ber_ook_noncoherent};
use criterion::{black_box, criterion_group, criterion_main, Criterion};

fn bench_ber(c: &mut Criterion) {
    c.bench_function("ber_noncoherent_ook_10db", |b| {
        b.iter(|| ber_ook_noncoherent(black_box(10.0)))
    });
    c.bench_function("ber_coherent_10db", |b| {
        b.iter(|| ber_coherent(black_box(10.0)))
    });
    c.bench_function("ber_noncoherent_sweep_20pts", |b| {
        b.iter(|| {
            let mut acc = 0.0;
            for i in 1..=20 {
                acc += ber_ook_noncoherent(black_box(i as f64));
            }
            acc
        })
    });
}

criterion_group!(benches, bench_ber);
criterion_main!(benches);
