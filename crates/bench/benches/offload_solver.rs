//! Microbench: the Eq. 1 carrier-offload solver.
//!
//! The solver runs on every re-plan (per probe round / SNR change), so it
//! must be cheap enough for a microcontroller-class duty cycle.

use braidio_mac::offload::{options_at, solve};
use braidio_radio::characterization::Characterization;
use braidio_units::{Joules, Meters};
use criterion::{black_box, criterion_group, criterion_main, Criterion};

fn bench_solver(c: &mut Criterion) {
    let ch = Characterization::braidio();
    let opts = options_at(&ch, Meters::new(0.3));
    let e1 = Joules::from_watt_hours(6.55);
    let e2 = Joules::from_watt_hours(0.78);

    c.bench_function("offload_solve_3_options", |b| {
        b.iter(|| solve(black_box(&opts), black_box(e1), black_box(e2)))
    });

    let opts_far = options_at(&ch, Meters::new(3.0));
    c.bench_function("offload_solve_2_options", |b| {
        b.iter(|| solve(black_box(&opts_far), black_box(e1), black_box(e2)))
    });

    c.bench_function("options_at_includes_ber", |b| {
        b.iter(|| options_at(black_box(&ch), black_box(Meters::new(1.5))))
    });
}

criterion_group!(benches, bench_solver);
criterion_main!(benches);
