//! Microbench: the Dickson charge-pump transient solver (Fig. 3).

use braidio_circuits::DicksonChargePump;
use braidio_units::Hertz;
use criterion::{black_box, criterion_group, criterion_main, Criterion};

fn bench_pump(c: &mut Criterion) {
    let single = DicksonChargePump::fig3_single_stage();
    c.bench_function("pump_transient_10_cycles_1_stage", |b| {
        b.iter(|| single.transient_sine(black_box(1.0), Hertz::from_mhz(1.0), 10.0))
    });

    let four = DicksonChargePump::multi_stage(4);
    c.bench_function("pump_transient_10_cycles_4_stage", |b| {
        b.iter(|| four.transient_sine(black_box(1.0), Hertz::from_mhz(1.0), 10.0))
    });

    c.bench_function("pump_small_signal_model", |b| {
        b.iter(|| {
            let mut acc = 0.0;
            for i in 0..1000 {
                acc += four.small_signal_output(black_box(i as f64 * 1e-4));
            }
            acc
        })
    });
}

criterion_group!(benches, bench_pump);
criterion_main!(benches);
