//! Macrobench: the parallel simulation engine, serial vs pooled.
//!
//! Covers the two heaviest paths the pool accelerates — the 10×10 device
//! matrix behind Figs. 15–17 and the chunked Monte-Carlo BER runs — plus
//! the memoized offload solver the matrix leans on. Results are
//! bit-identical at every thread count, so the serial and parallel rows
//! measure the same computation.

use braidio::pool;
use braidio_bench::{fig15, render};
use braidio_mac::offload::{options_at, solve, solve_memo};
use braidio_phy::montecarlo::MonteCarloBer;
use braidio_radio::characterization::{Characterization, Rate};
use braidio_radio::Mode;
use braidio_units::{BitsPerSecond, Joules, Meters};
use criterion::{black_box, criterion_group, criterion_main, Criterion};

fn bench_device_matrix(c: &mut Criterion) {
    c.bench_function("device_matrix/fig15/serial", |b| {
        b.iter(|| pool::with_threads(1, || black_box(render::matrix_values(fig15::cell))))
    });
    let n = pool::thread_count().max(2);
    c.bench_function("device_matrix/fig15/pooled", |b| {
        b.iter(|| pool::with_threads(n, || black_box(render::matrix_values(fig15::cell))))
    });
}

fn bench_montecarlo(c: &mut Criterion) {
    // Five chunks' worth of bits at 100 kbps — the calibration workload
    // shape used by `braidio-bench::validation`.
    let mc = MonteCarloBer::at_snr_db(8.0, BitsPerSecond::KBPS_100, 20_000, 17);
    c.bench_function("montecarlo/20k_bits/serial", |b| {
        b.iter(|| pool::with_threads(1, || black_box(mc.run())))
    });
    let n = pool::thread_count().max(2);
    c.bench_function("montecarlo/20k_bits/pooled", |b| {
        b.iter(|| pool::with_threads(n, || black_box(mc.run())))
    });
}

fn bench_memoized_solver(c: &mut Criterion) {
    let ch = Characterization::braidio();
    let opts = options_at(&ch, Meters::new(0.5));
    let e1 = Joules::from_watt_hours(6.55);
    let e2 = Joules::from_watt_hours(11.1);
    c.bench_function("offload/solve/cold", |b| {
        b.iter(|| solve(black_box(&opts), black_box(e1), black_box(e2)))
    });
    c.bench_function("offload/solve/memoized", |b| {
        b.iter(|| solve_memo(black_box(&opts), black_box(e1), black_box(e2)))
    });
}

fn bench_characterization(c: &mut Criterion) {
    // `braidio()` used to rebuild the calibration per call; it is now a
    // clone out of a process-wide cache...
    c.bench_function("characterization/cached_clone", |b| {
        b.iter(|| black_box(Characterization::braidio()))
    });
    // ...and `range()` used to bisect per call; it is now a table lookup.
    let ch = Characterization::braidio();
    c.bench_function("characterization/range_lookup", |b| {
        b.iter(|| black_box(ch.range(Mode::Passive, Rate::Kbps100)))
    });
    // The carrier-variant path still pays the full derived-table rebuild
    // (nine range bisections) — the cost every construction used to carry.
    c.bench_function("characterization/rebuild_with_carrier", |b| {
        b.iter(|| black_box(Characterization::braidio().with_carrier_dbm(13.0)))
    });
}

criterion_group!(
    benches,
    bench_device_matrix,
    bench_montecarlo,
    bench_memoized_solver,
    bench_characterization
);
criterion_main!(benches);
