//! Macrobench: the parallel simulation engine, serial vs pooled.
//!
//! Covers the two heaviest paths the pool accelerates — the 10×10 device
//! matrix behind Figs. 15–17 and the chunked Monte-Carlo BER runs — plus
//! the memoized offload solver the matrix leans on. Results are
//! bit-identical at every thread count, so the serial and parallel rows
//! measure the same computation.

use braidio::pool;
use braidio_bench::{fig15, render};
use braidio_mac::offload::{options_at, solve, solve_memo};
use braidio_phy::montecarlo::MonteCarloBer;
use braidio_radio::characterization::{Characterization, Rate};
use braidio_radio::Mode;
use braidio_units::{BitsPerSecond, Joules, Meters};
use criterion::{black_box, criterion_group, criterion_main, Criterion};

fn bench_device_matrix(c: &mut Criterion) {
    c.bench_function("device_matrix/fig15/serial", |b| {
        b.iter(|| pool::with_threads(1, || black_box(render::matrix_values(fig15::cell))))
    });
    let n = pool::thread_count().max(2);
    c.bench_function("device_matrix/fig15/pooled", |b| {
        b.iter(|| pool::with_threads(n, || black_box(render::matrix_values(fig15::cell))))
    });
}

fn bench_montecarlo(c: &mut Criterion) {
    // Five chunks' worth of bits at 100 kbps — the calibration workload
    // shape used by `braidio-bench::validation`.
    let mc = MonteCarloBer::at_snr_db(8.0, BitsPerSecond::KBPS_100, 20_000, 17);
    c.bench_function("montecarlo/20k_bits/serial", |b| {
        b.iter(|| pool::with_threads(1, || black_box(mc.run())))
    });
    let n = pool::thread_count().max(2);
    c.bench_function("montecarlo/20k_bits/pooled", |b| {
        b.iter(|| pool::with_threads(n, || black_box(mc.run())))
    });
}

fn bench_streaming_chunk(c: &mut Criterion) {
    // One full Monte-Carlo chunk at 1 kbps: CHUNK_BITS bits × 20 000 samples
    // per bit ≈ 82 M samples, exactly the unit of work the engine hands each
    // pool worker. `streaming` is the fused production path; `batch`
    // reconstructs the stage-major pipeline it replaced (identical
    // arithmetic — the proptests assert bit-equality). The chunk size
    // matters: at this footprint the batch arm materializes five
    // full-length stage vectors (~3.3 GB live), which glibc serves via
    // mmap and unmaps on free, so every chunk re-pays the page-fault and
    // zeroing cost — the production pathology fusion removes. At toy sizes
    // the vectors fit in cache and the gap shrinks to the pure-compute
    // ratio (~1.6×); do not shrink `nbits` to make the bench faster.
    use braidio_phy::modulation::OokModulator;
    use braidio_phy::montecarlo::{chunk_seed, CHUNK_BITS};
    use braidio_phy::noise::GaussianEnvelopeNoise;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    let nbits = CHUNK_BITS;
    let mc = MonteCarloBer::at_snr_db(6.0, BitsPerSecond::new(1_000.0), nbits, 11);
    let seed = chunk_seed(11, 0);
    c.bench_function("montecarlo/1kbps_chunk/streaming", |b| {
        b.iter(|| black_box(mc.run_chunk(nbits, seed)))
    });
    c.bench_function("montecarlo/1kbps_chunk/batch", |b| {
        b.iter(|| {
            let mut rng = StdRng::seed_from_u64(seed);
            let training = 16usize;
            let mut bits: Vec<bool> = Vec::with_capacity(training + nbits);
            for i in 0..training {
                bits.push(i % 2 == 0);
            }
            for _ in 0..nbits {
                bits.push(rng.random_bool(0.5));
            }
            let modulator =
                OokModulator::new(mc.samples_per_bit, mc.envelope_high, mc.envelope_low);
            let mut envelope = modulator.modulate(&bits);
            let mut noise = GaussianEnvelopeNoise::new(rng, mc.noise_rms);
            for s in envelope.iter_mut() {
                *s = noise.corrupt(*s);
            }
            // Stage-major demodulation, one full vector per stage — what
            // `demodulate` did before fusion.
            let dt = modulator.sample_interval(mc.rate);
            let chain = &mc.chain;
            let pumped: Vec<f64> = envelope
                .iter()
                .map(|&v| chain.pump.small_signal_output(v * chain.matching_gain))
                .collect();
            let followed = chain.detector.run(&pumped, dt);
            let hp = chain.highpass.run(&followed, dt);
            let amped = chain.amplifier.run(&hp);
            let sliced = chain.comparator.with_threshold(0.0).run(&amped);
            let mut errors = 0usize;
            for (i, &bit) in bits.iter().enumerate().skip(training) {
                if sliced[modulator.decision_index(i)] != bit {
                    errors += 1;
                }
            }
            black_box(errors)
        })
    });
}

fn bench_memoized_solver(c: &mut Criterion) {
    let ch = Characterization::braidio();
    let opts = options_at(&ch, Meters::new(0.5));
    let e1 = Joules::from_watt_hours(6.55);
    let e2 = Joules::from_watt_hours(11.1);
    c.bench_function("offload/solve/cold", |b| {
        b.iter(|| solve(black_box(&opts), black_box(e1), black_box(e2)))
    });
    c.bench_function("offload/solve/memoized", |b| {
        b.iter(|| solve_memo(black_box(&opts), black_box(e1), black_box(e2)))
    });
}

fn bench_telemetry_off_overhead(c: &mut Criterion) {
    // The telemetry contract's first clause: zero cost when off. Both arms
    // run the same fleet scenario with no sink attached; the `off` arm
    // pays one relaxed atomic load per instrumentation site, the
    // `capturing` arm actually buffers events (and is drained between
    // iterations so the buffer does not grow without bound). The two
    // should be within noise of each other apart from the buffering cost
    // itself.
    use braidio_bench::fleet;
    let grid = fleet::scenarios();
    let scenario = &grid[0].1;
    c.bench_function("telemetry/fleet_scenario/off", |b| {
        b.iter(|| black_box(braidio_net::run_fleet(scenario)))
    });
    c.bench_function("telemetry/fleet_scenario/capturing", |b| {
        braidio_telemetry::set_enabled(true);
        b.iter(|| {
            let r = black_box(braidio_net::run_fleet(scenario));
            braidio_telemetry::take_events();
            r
        });
        braidio_telemetry::set_enabled(false);
        braidio_telemetry::take_events();
    });
}

fn bench_characterization(c: &mut Criterion) {
    // `braidio()` used to rebuild the calibration per call; it is now a
    // clone out of a process-wide cache...
    c.bench_function("characterization/cached_clone", |b| {
        b.iter(|| black_box(Characterization::braidio()))
    });
    // ...and `range()` used to bisect per call; it is now a table lookup.
    let ch = Characterization::braidio();
    c.bench_function("characterization/range_lookup", |b| {
        b.iter(|| black_box(ch.range(Mode::Passive, Rate::Kbps100)))
    });
    // The carrier-variant path still pays the full derived-table rebuild
    // (nine range bisections) — the cost every construction used to carry.
    c.bench_function("characterization/rebuild_with_carrier", |b| {
        b.iter(|| black_box(Characterization::braidio().with_carrier_dbm(13.0)))
    });
}

criterion_group!(
    benches,
    bench_device_matrix,
    bench_montecarlo,
    bench_streaming_chunk,
    bench_memoized_solver,
    bench_telemetry_off_overhead,
    bench_characterization
);
criterion_main!(benches);
