//! Macrobench: the large-fleet re-plan wave, brute-force vs cached.
//!
//! One "wave" is what the fleet engine does at every re-plan tick: compute
//! the worst-case foreign-carrier power at all M victims, then derive each
//! pair's mode/rate option set under it. The brute arms reconstruct the
//! original path (a fresh O(M) source scan per victim — O(M²) per wave,
//! plus a full `options_under` evaluation per pair); the cached arms run
//! the production path (`PairGainCache` steady-state sums, `OptionsMemo`
//! hits). Both compute bit-identical answers — the determinism suite and
//! the debug-build shadow check enforce that — so the arms measure the
//! same computation. The EXPERIMENTS.md large-fleet table quotes the
//! 64-pair wave numbers from here.

use braidio_net::cache::PairGainCache;
use braidio_net::interference::{
    carrier_contribution, interference_at, options_under, CarrierSource, OptionsMemo,
};
use braidio_net::{run_fleet, Arbitration, FleetScenario};
use braidio_units::{Meters, Seconds, Watts};
use criterion::{black_box, criterion_group, criterion_main, Criterion};

const PAIRS: usize = 64;

fn scale_scenario(arb: Arbitration) -> FleetScenario {
    FleetScenario::grid_pairs(PAIRS, Meters::new(0.5), Meters::new(3.0), 1.0, 1.0, arb)
        .with_horizon(Seconds::new(30.0))
}

/// The original interference path: every victim rebuilds its full source
/// list and re-evaluates every edge — exactly what `interference_for` did
/// before the cache.
fn wave_brute(sc: &FleetScenario) -> f64 {
    let mut acc = 0.0;
    for p in 0..sc.pairs.len() {
        let victim = sc.devices[sc.pairs[p].rx].pos;
        let sources: Vec<CarrierSource> = sc
            .pairs
            .iter()
            .enumerate()
            .filter(|&(q, _)| q != p)
            .map(|(q, qp)| {
                let a = sc.devices[qp.tx].pos;
                let b = sc.devices[qp.rx].pos;
                let pos = if a.distance(victim) <= b.distance(victim) {
                    a
                } else {
                    b
                };
                CarrierSource {
                    pos,
                    rf: sc.ch.carrier_rf,
                    relation: sc.arbitration.relation(p, q),
                }
            })
            .collect();
        acc += interference_at(&sc.ch, victim, &sources).watts();
    }
    acc
}

/// The production interference path: cached per-edge contributions, sums
/// replayed only when dirty.
fn wave_cached(cache: &mut PairGainCache, sc: &FleetScenario) -> f64 {
    let mut acc = 0.0;
    for p in 0..sc.pairs.len() {
        let victim = sc.devices[sc.pairs[p].rx].pos;
        let w = cache.interference(
            p,
            |q| {
                let qp = &sc.pairs[q];
                (sc.devices[qp.tx].pos, sc.devices[qp.rx].pos)
            },
            |q| {
                let qp = &sc.pairs[q];
                let a = sc.devices[qp.tx].pos;
                let b = sc.devices[qp.rx].pos;
                let pos = if a.distance(victim) <= b.distance(victim) {
                    a
                } else {
                    b
                };
                carrier_contribution(
                    &sc.ch,
                    victim,
                    &CarrierSource {
                        pos,
                        rf: sc.ch.carrier_rf,
                        relation: sc.arbitration.relation(p, q),
                    },
                )
            },
        );
        acc += w.watts();
    }
    acc
}

fn bench_interference_wave(c: &mut Criterion) {
    let sc = scale_scenario(Arbitration::Uncoordinated);
    c.bench_function("fleet_replan/interference_wave/brute/64", |b| {
        b.iter(|| black_box(wave_brute(&sc)))
    });
    // Steady state: every sum is clean, a wave is M flag checks + loads.
    let mut cache = PairGainCache::new(PAIRS);
    wave_cached(&mut cache, &sc);
    c.bench_function("fleet_replan/interference_wave/cached_steady/64", |b| {
        b.iter(|| black_box(wave_cached(&mut cache, &sc)))
    });
    // After a mobility event: one pair's row/column recomputes, every
    // other edge replays from cache in pair-index order.
    c.bench_function("fleet_replan/interference_wave/cached_after_move/64", |b| {
        b.iter(|| {
            cache.invalidate_pair(0);
            black_box(wave_cached(&mut cache, &sc))
        })
    });
}

fn bench_options(c: &mut Criterion) {
    let sc = scale_scenario(Arbitration::Uncoordinated);
    let d = Meters::new(0.5);
    let interference = Watts::new(1e-9);
    c.bench_function("fleet_replan/options/cold", |b| {
        b.iter(|| black_box(options_under(&sc.ch, d, interference)))
    });
    let mut memo = OptionsMemo::new();
    memo.get(&sc.ch, d, interference, None);
    c.bench_function("fleet_replan/options/memoized", |b| {
        b.iter(|| black_box(memo.get(&sc.ch, d, interference, None)))
    });
}

fn bench_full_scenario(c: &mut Criterion) {
    // The end-to-end rung the CI smoke runs: 64 pairs, full horizon, one
    // arbitration policy per arm (TDMA exercises the finish-time window
    // arithmetic, uncoordinated the dense interference sums).
    let unco = scale_scenario(Arbitration::Uncoordinated);
    c.bench_function("fleet_replan/full_scenario/uncoordinated/64", |b| {
        b.iter(|| black_box(run_fleet(&unco)))
    });
    let tdma = scale_scenario(Arbitration::TdmaRoundRobin {
        slot: Seconds::new(0.25),
    });
    c.bench_function("fleet_replan/full_scenario/tdma/64", |b| {
        b.iter(|| black_box(run_fleet(&tdma)))
    });
}

criterion_group!(
    benches,
    bench_interference_wave,
    bench_options,
    bench_full_scenario
);
criterion_main!(benches);
