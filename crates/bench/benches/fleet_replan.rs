//! Macrobench: the large-fleet re-plan wave, brute-force vs cached.
//!
//! One "wave" is what the fleet engine does at every re-plan tick: compute
//! the worst-case foreign-carrier power at all M victims, then derive each
//! pair's mode/rate option set under it. The brute arms reconstruct the
//! original path (a fresh O(M) source scan per victim — O(M²) per wave,
//! plus a full `options_under` evaluation per pair); the cached arms run
//! the production path (`PairGainCache` steady-state sums, `OptionsMemo`
//! hits); the batched arms run the SoA wave path (`rebuild_all` bulk
//! sweeps, `options_under_batch`, key-sorted `prefetch`). All compute
//! bit-identical answers — the determinism suite and
//! the debug-build shadow check enforce that — so the arms measure the
//! same computation. The EXPERIMENTS.md large-fleet table quotes the
//! 64-pair wave numbers from here.

use braidio_mac::coexistence::ChannelRelation;
use braidio_net::cache::PairGainCache;
use braidio_net::interference::{
    carrier_contribution, interference_at, options_under, options_under_batch, CarrierSource,
    EdgeKernel, OptionsKey, OptionsMemo, EDGE_TILE,
};
use braidio_net::{run_fleet, Arbitration, FleetScenario};
use braidio_radio::Mode;
use braidio_units::{Meters, Seconds, Watts};
use criterion::{black_box, criterion_group, criterion_main, Criterion};

const PAIRS: usize = 64;

/// The rung the thread-sweep arm runs: big enough that one bulk rebuild is
/// tens of milliseconds of O(M²) edge work, so the fan-out's scheduling
/// (not dispatch overhead) is what the arm measures.
const SWEEP_PAIRS: usize = 512;

fn grid(m: usize, arb: Arbitration) -> FleetScenario {
    FleetScenario::grid_pairs(m, Meters::new(0.5), Meters::new(3.0), 1.0, 1.0, arb)
        .with_horizon(Seconds::new(30.0))
}

fn scale_scenario(arb: Arbitration) -> FleetScenario {
    grid(PAIRS, arb)
}

/// The original interference path: every victim rebuilds its full source
/// list and re-evaluates every edge — exactly what `interference_for` did
/// before the cache.
fn wave_brute(sc: &FleetScenario) -> f64 {
    let mut acc = 0.0;
    for p in 0..sc.pairs.len() {
        let victim = sc.devices[sc.pairs[p].rx].pos;
        let sources: Vec<CarrierSource> = sc
            .pairs
            .iter()
            .enumerate()
            .filter(|&(q, _)| q != p)
            .map(|(q, qp)| {
                let a = sc.devices[qp.tx].pos;
                let b = sc.devices[qp.rx].pos;
                let pos = if a.distance(victim) <= b.distance(victim) {
                    a
                } else {
                    b
                };
                CarrierSource {
                    pos,
                    rf: sc.ch.carrier_rf,
                    relation: sc.arbitration.relation(p, q),
                }
            })
            .collect();
        acc += interference_at(&sc.ch, victim, &sources).watts();
    }
    acc
}

/// The production interference path: cached per-edge contributions, sums
/// replayed only when dirty.
fn wave_cached(cache: &mut PairGainCache, sc: &FleetScenario) -> f64 {
    let mut acc = 0.0;
    for p in 0..sc.pairs.len() {
        let victim = sc.devices[sc.pairs[p].rx].pos;
        let w = cache.interference(
            p,
            |q| {
                let qp = &sc.pairs[q];
                (sc.devices[qp.tx].pos, sc.devices[qp.rx].pos)
            },
            |q| {
                let qp = &sc.pairs[q];
                let a = sc.devices[qp.tx].pos;
                let b = sc.devices[qp.rx].pos;
                let pos = if a.distance(victim) <= b.distance(victim) {
                    a
                } else {
                    b
                };
                carrier_contribution(
                    &sc.ch,
                    victim,
                    &CarrierSource {
                        pos,
                        rf: sc.ch.carrier_rf,
                        relation: sc.arbitration.relation(p, q),
                    },
                )
            },
        );
        acc += w.watts();
    }
    acc
}

fn bench_interference_wave(c: &mut Criterion) {
    let sc = scale_scenario(Arbitration::Uncoordinated);
    c.bench_function("fleet_replan/interference_wave/brute/64", |b| {
        b.iter(|| black_box(wave_brute(&sc)))
    });
    // Steady state: every sum is clean, a wave is M flag checks + loads.
    let mut cache = PairGainCache::new(PAIRS);
    wave_cached(&mut cache, &sc);
    c.bench_function("fleet_replan/interference_wave/cached_steady/64", |b| {
        b.iter(|| black_box(wave_cached(&mut cache, &sc)))
    });
    // After a mobility event: every sum is dirty; each victim recomputes
    // its live edges in pair-index order (the cache is matrix-free, so a
    // dirty sum is a recompute, not a replay).
    c.bench_function("fleet_replan/interference_wave/cached_after_move/64", |b| {
        b.iter(|| {
            cache.invalidate_pair(0);
            black_box(wave_cached(&mut cache, &sc))
        })
    });
    // The batched planning-wave path: one `rebuild_all` sweep recomputes
    // every dirty sum in pair-index order, then the wave is all clean hits.
    let mut bulk = PairGainCache::new(PAIRS);
    c.bench_function("fleet_replan/interference_wave/bulk_rebuild/64", |b| {
        b.iter(|| {
            bulk.invalidate_pair(0);
            bulk.rebuild_all(
                |_| true,
                |q| {
                    let qp = &sc.pairs[q];
                    (sc.devices[qp.tx].pos, sc.devices[qp.rx].pos)
                },
                |v, q| {
                    let victim = sc.devices[sc.pairs[v].rx].pos;
                    let qp = &sc.pairs[q];
                    let a = sc.devices[qp.tx].pos;
                    let b = sc.devices[qp.rx].pos;
                    let pos = if a.distance(victim) <= b.distance(victim) {
                        a
                    } else {
                        b
                    };
                    carrier_contribution(
                        &sc.ch,
                        victim,
                        &CarrierSource {
                            pos,
                            rf: sc.ch.carrier_rf,
                            relation: sc.arbitration.relation(v, q),
                        },
                    )
                },
            );
            black_box(wave_cached(&mut bulk, &sc))
        })
    });
}

fn bench_edge_kernel(c: &mut Criterion) {
    // The per-edge transcendental story (DESIGN.md §15): one EDGE_TILE-wide
    // sweep of grid edges through the direct dB path (one log10 + four powf
    // per edge) vs the memoized kernel (exact FSPL table lookup + four
    // cached-constant multiplies). `direct` is the pre-memo cost; `memo_cold`
    // builds a fresh kernel every iteration, so every lookup misses and runs
    // the canonical evaluation plus the table insert; `memo_warm` is the
    // steady state every rebuild wave after the first sees — all hits. The
    // EXPERIMENTS.md edges/s column divides EDGE_TILE by these arm times.
    // All arms compute bit-identical powers (kernel equality tests and the
    // edge-kernel proptests pin this).
    let sc = scale_scenario(Arbitration::Uncoordinated);
    let victim = sc.devices[sc.pairs[0].rx].pos;
    let mut a = [sc.devices[0].pos; EDGE_TILE];
    let mut b = [sc.devices[0].pos; EDGE_TILE];
    let mut rel = [ChannelRelation::CoChannel; EDGE_TILE];
    for (i, slot) in a.iter_mut().enumerate() {
        let qp = &sc.pairs[i % sc.pairs.len()];
        *slot = sc.devices[qp.tx].pos;
        b[i] = sc.devices[qp.rx].pos;
        rel[i] = sc.arbitration.relation(0, i % sc.pairs.len());
    }
    let mut out = [braidio_units::Watts::ZERO; EDGE_TILE];
    c.bench_function("fleet_replan/edge_kernel/direct/64", |bch| {
        bch.iter(|| {
            let mut acc = 0.0;
            for i in 0..EDGE_TILE {
                let pos = if a[i].distance(victim) <= b[i].distance(victim) {
                    a[i]
                } else {
                    b[i]
                };
                acc += carrier_contribution(
                    &sc.ch,
                    victim,
                    &CarrierSource {
                        pos,
                        rf: sc.ch.carrier_rf,
                        relation: rel[i],
                    },
                )
                .watts();
            }
            black_box(acc)
        })
    });
    c.bench_function("fleet_replan/edge_kernel/memo_cold/64", |bch| {
        bch.iter(|| {
            let kernel = EdgeKernel::new(&sc.ch);
            kernel.carrier_tile(victim, &a, &b, &rel, &mut out);
            black_box(out[EDGE_TILE - 1])
        })
    });
    let warm = EdgeKernel::new(&sc.ch);
    warm.carrier_tile(victim, &a, &b, &rel, &mut out);
    c.bench_function("fleet_replan/edge_kernel/memo_warm/64", |bch| {
        bch.iter(|| {
            warm.carrier_tile(victim, black_box(&a), &b, &rel, &mut out);
            black_box(out[EDGE_TILE - 1])
        })
    });
}

fn bench_options(c: &mut Criterion) {
    let sc = scale_scenario(Arbitration::Uncoordinated);
    let d = Meters::new(0.5);
    let interference = Watts::new(1e-9);
    c.bench_function("fleet_replan/options/cold", |b| {
        b.iter(|| black_box(options_under(&sc.ch, d, interference)))
    });
    let mut memo = OptionsMemo::new();
    memo.get(&sc.ch, d, interference, None);
    c.bench_function("fleet_replan/options/memoized", |b| {
        b.iter(|| black_box(memo.get(&sc.ch, d, interference, None)))
    });
    // The batched wave path: one quantized key per pair (a spread of
    // distances / interference levels / pins, as a heterogeneous fleet
    // produces), deduped, resolved in key order through the batched BER
    // surface.
    let items: Vec<(Meters, Watts, Option<Mode>)> = (0..PAIRS)
        .map(|i| {
            (
                Meters::new(0.4 + 0.05 * (i % 8) as f64),
                Watts::new(1e-10 * (1.0 + (i / 8) as f64)),
                if i % 16 == 0 {
                    Some(Mode::Active)
                } else {
                    None
                },
            )
        })
        .collect();
    c.bench_function("fleet_replan/options/batch_cold/64", |b| {
        b.iter(|| black_box(options_under_batch(&sc.ch, &items)))
    });
    let mut keys: Vec<OptionsKey> = items
        .iter()
        .filter_map(|&(d, i, pin)| OptionsMemo::key_for(d, i, pin))
        .collect();
    keys.sort_unstable();
    keys.dedup();
    let mut warm = OptionsMemo::new();
    warm.prefetch(&sc.ch, &keys);
    c.bench_function("fleet_replan/options/prefetch_warm/64", |b| {
        b.iter(|| warm.prefetch(&sc.ch, black_box(&keys)))
    });
}

fn bench_thread_sweep(c: &mut Criterion) {
    // The intra-wave fan-out (DESIGN.md §12) at each worker count the CI
    // smoke exercises: a fully-dirty `rebuild_all` sweep — the stage that
    // dominates a cold planning wave — at 1/2/4/8 threads. Every arm
    // computes identical bits (the fan-out is pure scheduling); the arm
    // spread is the wall-clock story. On a single-core host the arms time
    // alike; the multi-core runner is where the spread appears.
    let sc = grid(SWEEP_PAIRS, Arbitration::Uncoordinated);
    let mut cache = PairGainCache::new(SWEEP_PAIRS);
    for threads in [1usize, 2, 4, 8] {
        let name = format!("fleet_replan/interference_wave/bulk_rebuild/j{threads}/{SWEEP_PAIRS}");
        c.bench_function(&name, |b| {
            braidio_pool::with_threads(threads, || {
                b.iter(|| {
                    cache.invalidate_pair(0);
                    cache.rebuild_all(
                        |_| true,
                        |q| {
                            let qp = &sc.pairs[q];
                            (sc.devices[qp.tx].pos, sc.devices[qp.rx].pos)
                        },
                        |v, q| {
                            let victim = sc.devices[sc.pairs[v].rx].pos;
                            let qp = &sc.pairs[q];
                            let a = sc.devices[qp.tx].pos;
                            let b = sc.devices[qp.rx].pos;
                            let pos = if a.distance(victim) <= b.distance(victim) {
                                a
                            } else {
                                b
                            };
                            carrier_contribution(
                                &sc.ch,
                                victim,
                                &CarrierSource {
                                    pos,
                                    rf: sc.ch.carrier_rf,
                                    relation: sc.arbitration.relation(v, q),
                                },
                            )
                        },
                    );
                    black_box(cache.cached_sum(0))
                })
            })
        });
    }
}

fn bench_full_scenario(c: &mut Criterion) {
    // The end-to-end rung the CI smoke runs: 64 pairs, full horizon, one
    // arbitration policy per arm (TDMA exercises the finish-time window
    // arithmetic, uncoordinated the dense interference sums).
    let unco = scale_scenario(Arbitration::Uncoordinated);
    c.bench_function("fleet_replan/full_scenario/uncoordinated/64", |b| {
        b.iter(|| black_box(run_fleet(&unco)))
    });
    let tdma = scale_scenario(Arbitration::TdmaRoundRobin {
        slot: Seconds::new(0.25),
    });
    c.bench_function("fleet_replan/full_scenario/tdma/64", |b| {
        b.iter(|| black_box(run_fleet(&tdma)))
    });
}

criterion_group!(
    benches,
    bench_interference_wave,
    bench_edge_kernel,
    bench_options,
    bench_thread_sweep,
    bench_full_scenario
);
criterion_main!(benches);
