//! Microbench: one Fig. 15 matrix cell (a full battery-lifetime link
//! simulation, Braidio + Bluetooth baseline).

use braidio_mac::sim::{simulate_transfer, Policy, Traffic, TransferSetup};
use criterion::{black_box, criterion_group, criterion_main, Criterion};

fn bench_sim(c: &mut Criterion) {
    c.bench_function("sim_braidio_asymmetric_pair", |b| {
        b.iter(|| simulate_transfer(black_box(&TransferSetup::new(0.26, 99.5, Policy::Braidio))))
    });
    c.bench_function("sim_braidio_symmetric_pair", |b| {
        b.iter(|| simulate_transfer(black_box(&TransferSetup::new(6.55, 6.55, Policy::Braidio))))
    });
    c.bench_function("sim_bluetooth_baseline", |b| {
        b.iter(|| {
            simulate_transfer(black_box(&TransferSetup::new(
                0.26,
                99.5,
                Policy::Bluetooth,
            )))
        })
    });
    c.bench_function("sim_bidirectional", |b| {
        b.iter(|| {
            simulate_transfer(black_box(
                &TransferSetup::new(0.78, 6.55, Policy::Braidio)
                    .with_traffic(Traffic::Bidirectional),
            ))
        })
    });
}

criterion_group!(benches, bench_sim);
criterion_main!(benches);
