//! Figure 6: effect of antenna diversity on SNR — the λ/8-spaced second
//! antenna lifts the phase-cancellation nulls.

use crate::render::banner;
use braidio_rfsim::geometry::Point;
use braidio_rfsim::phase_cancel::BackscatterScene;

/// Regenerate Figure 6.
pub fn run() {
    banner(
        "Figure 6",
        "Received SNR 0.5–2 m, with and without antenna diversity",
    );
    let single = BackscatterScene::paper_fig4();
    let diverse = BackscatterScene::paper_fig4().with_diversity();
    println!(
        "{:>8} {:>14} {:>14}",
        "d (m)", "no diversity", "with diversity"
    );
    let mut worst_single = f64::MAX;
    let mut worst_diverse = f64::MAX;
    // Tag walks away from the antenna midpoint along the y = 0.5 line.
    for i in 0..=60 {
        let d = 0.5 + 1.5 * i as f64 / 60.0;
        let p = Point::new(1.0 + d, 0.5);
        let s1 = single.snr(p, 0).db();
        let s2 = diverse.snr_diversity(p).1.db();
        worst_single = worst_single.min(s1);
        worst_diverse = worst_diverse.min(s2);
        if i % 4 == 0 {
            println!("{:>8.2} {:>11.1} dB {:>11.1} dB", d, s1, s2);
        }
    }
    println!(
        "\nworst-case SNR: {worst_single:.1} dB alone vs {worst_diverse:.1} dB with diversity"
    );
    println!("(paper: nulls drop to ~0 dB without diversity, stay above ~5 dB with it)");
}

#[cfg(test)]
mod tests {
    use super::*;
    use braidio_phy::ber::ber_ook_noncoherent_fast;
    use braidio_phy::surface::{shared, BerModel};
    use braidio_units::BitsPerSecond;

    #[test]
    fn runs() {
        super::run();
    }

    // Figure 6 itself prints SNR only, so routing its output through the
    // BER surface would change nothing; instead the operational meaning of
    // the figure — diversity lifting nulls — is checked here through the
    // shared surface, using the figure's own numbers: the 0.5 m null goes
    // from ~-0.5 dB to ~+15 dB, the deepest free-space null is lifted by
    // >30 dB, and selection diversity can never do worse than antenna 0.
    #[test]
    fn diversity_lifts_nulls_through_the_shared_surface() {
        let single = BackscatterScene::paper_fig4();
        let diverse = BackscatterScene::paper_fig4().with_diversity();
        let surface = shared(BerModel::NoncoherentOok, BitsPerSecond::KBPS_100);
        let mut worst_single_ber = 0.0f64;
        let mut deepest = (0.0f64, 0.0f64); // (single γ, diverse γ) at the deepest null
        for i in 0..=60 {
            let d = 0.5 + 1.5 * i as f64 / 60.0;
            let p = Point::new(1.0 + d, 0.5);
            let g1 = single.snr(p, 0).linear();
            let g2 = diverse.snr_diversity(p).1.linear();
            // Strict shared surface answers bitwise like the closed form.
            assert_eq!(
                surface.ber(g1).to_bits(),
                ber_ook_noncoherent_fast(g1).to_bits()
            );
            // Selection diversity includes antenna 0, so it never hurts.
            assert!(
                surface.ber(g2) <= surface.ber(g1),
                "diversity worsened BER at d = {d}"
            );
            worst_single_ber = worst_single_ber.max(surface.ber(g1));
            if i == 0 || g1 < deepest.0 {
                deepest = (g1, g2);
            }
        }
        // Without diversity the walk crosses unusable nulls...
        assert!(
            worst_single_ber > 0.2,
            "expected a deep null, worst BER {worst_single_ber:.3}"
        );
        // ...the 0.5 m null (the figure's headline point) becomes a clean
        // link with the second antenna...
        let p0 = Point::new(1.5, 0.5);
        let ber_alone = surface.ber(single.snr(p0, 0).linear());
        let ber_div = surface.ber(diverse.snr_diversity(p0).1.linear());
        assert!(ber_alone > 0.2, "0.5 m null BER alone {ber_alone:.3}");
        assert!(
            ber_div < 1e-3,
            "0.5 m null BER with diversity {ber_div:.2e}"
        );
        // ...and the deepest null is lifted by more than 30 dB.
        let lift_db = 10.0 * (deepest.1 / deepest.0).log10();
        assert!(lift_db > 30.0, "deepest-null lift {lift_db:.1} dB");
    }
}
