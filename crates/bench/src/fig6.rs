//! Figure 6: effect of antenna diversity on SNR — the λ/8-spaced second
//! antenna lifts the phase-cancellation nulls.

use crate::render::banner;
use braidio_rfsim::geometry::Point;
use braidio_rfsim::phase_cancel::BackscatterScene;

/// Regenerate Figure 6.
pub fn run() {
    banner(
        "Figure 6",
        "Received SNR 0.5–2 m, with and without antenna diversity",
    );
    let single = BackscatterScene::paper_fig4();
    let diverse = BackscatterScene::paper_fig4().with_diversity();
    println!(
        "{:>8} {:>14} {:>14}",
        "d (m)", "no diversity", "with diversity"
    );
    let mut worst_single = f64::MAX;
    let mut worst_diverse = f64::MAX;
    // Tag walks away from the antenna midpoint along the y = 0.5 line.
    for i in 0..=60 {
        let d = 0.5 + 1.5 * i as f64 / 60.0;
        let p = Point::new(1.0 + d, 0.5);
        let s1 = single.snr(p, 0).db();
        let s2 = diverse.snr_diversity(p).1.db();
        worst_single = worst_single.min(s1);
        worst_diverse = worst_diverse.min(s2);
        if i % 4 == 0 {
            println!("{:>8.2} {:>11.1} dB {:>11.1} dB", d, s1, s2);
        }
    }
    println!(
        "\nworst-case SNR: {worst_single:.1} dB alone vs {worst_diverse:.1} dB with diversity"
    );
    println!("(paper: nulls drop to ~0 dB without diversity, stay above ~5 dB with it)");
}

#[cfg(test)]
mod tests {
    #[test]
    fn runs() {
        super::run();
    }
}
