//! Model validation: cross-checks that are not figures in the paper but
//! guard the reproduction's internal consistency.
//!
//! 1. Monte-Carlo BER through the real circuit chain vs the closed-form
//!    noncoherent model.
//! 2. Transient charge-pump simulation vs the small-signal/ideal laws.
//! 3. The analytic lifetime simulator vs the packet-stepped live link.

use crate::render::banner;
use braidio_circuits::DicksonChargePump;
use braidio_phy::ber::ber_ook_noncoherent;
use braidio_phy::montecarlo::MonteCarloBer;
use braidio_phy::surface::{BerSurface, SurfaceConfig};
use braidio_units::{BitsPerSecond, Hertz};
use std::sync::OnceLock;

/// The Monte-Carlo-backed response surface behind Validation A: linear SNR
/// → BER measured through the real circuit chain, with the simulated bit
/// count scaled from the analytic prediction (≈50 expected errors) and
/// floored at half an error. Strict and memoized, so each SNR point runs
/// its (expensive) simulation once per process no matter how many callers
/// ask.
fn mc_surface() -> &'static BerSurface {
    static SURFACE: OnceLock<BerSurface> = OnceLock::new();
    SURFACE.get_or_init(|| {
        BerSurface::new(
            Box::new(|gamma| {
                let analytic = ber_ook_noncoherent(gamma);
                let bits = ((50.0 / analytic) as usize).clamp(2_000, 60_000);
                let mc = MonteCarloBer::at_snr(gamma, BitsPerSecond::KBPS_100, bits, 7).run();
                mc.ber().max(0.5 / bits as f64)
            }),
            SurfaceConfig::strict(),
        )
    })
}

/// Run all validation passes.
pub fn run() {
    banner(
        "Validation A",
        "Monte-Carlo BER through the circuit chain vs the closed-form model",
    );
    println!(
        "{:>9} {:>14} {:>14} {:>8}",
        "SNR (dB)", "analytic", "monte-carlo", "ratio"
    );
    for snr_db in [4.0, 6.0, 8.0, 10.0, 12.0] {
        let gamma = 10f64.powf(snr_db / 10.0);
        let analytic = ber_ook_noncoherent(gamma);
        let measured = mc_surface().ber(gamma);
        println!(
            "{:>9.1} {:>14.3e} {:>14.3e} {:>8.2}",
            snr_db,
            analytic,
            measured,
            measured / analytic
        );
    }
    println!("\nratios near 1 at low/moderate SNR confirm the chain implements near-optimal");
    println!("noncoherent detection; the growing gap at high SNR is the classic implementation");
    println!("loss of a fixed (non-adaptive) slicer plus detector ISI — an error floor the");
    println!("ideal closed form does not have.");

    banner("Validation B", "Charge-pump transient vs closed-form laws");
    for (stages, v_amp) in [(1usize, 1.0f64), (1, 0.5), (2, 1.0), (3, 0.8)] {
        let pump = DicksonChargePump::multi_stage(stages);
        let settled = pump
            .transient_sine(v_amp, Hertz::from_mhz(1.0), 80.0)
            .settled_output(0.1);
        let ideal = pump.ideal_output(v_amp);
        println!(
            "{} stage(s) @ {:.1} V: transient {:.3} V vs ideal 2N(Va-Vf) = {:.3} V ({:+.1}%)",
            stages,
            v_amp,
            settled,
            ideal,
            100.0 * (settled / ideal - 1.0)
        );
    }

    banner(
        "Validation C",
        "Analytic lifetime simulator vs packet-stepped live link (tiny batteries)",
    );
    use braidio::live::{LiveConfig, LiveLink, PacketOutcome};
    use braidio::Transfer;
    let tiny = braidio_radio::devices::Device {
        name: "tiny (0.25 mWh)",
        battery_wh: 0.00025,
    };
    let small = braidio_radio::devices::Device {
        name: "small (2.5 mWh)",
        battery_wh: 0.0025,
    };
    let mut link = LiveLink::open(
        tiny,
        small,
        LiveConfig {
            payload_bytes: 255,
            replan_every: 2000,
            ..LiveConfig::default()
        },
    );
    loop {
        match link.step() {
            PacketOutcome::BatteryDead | PacketOutcome::LinkDown => break,
            _ => {}
        }
    }
    let live_payload = link.stats().delivered as f64 * 255.0 * 8.0;
    let analytic = Transfer::between(tiny, small).run().braidio.bits;
    println!(
        "live payload bits {:.4e} vs analytic link bits {:.4e} (ratio {:.3})",
        live_payload,
        analytic,
        live_payload / analytic
    );
    println!("the gap is framing overhead (preamble/sync/CRC ≈ 4%) plus probe airtime.");
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn runs() {
        super::run();
    }

    #[test]
    fn mc_surface_memoizes_and_matches_direct_simulation() {
        // The surface must return exactly what the underlying simulation
        // returns (strict mode) and must not re-run it on repeat queries.
        let gamma = 10f64.powf(0.4);
        let direct = {
            let analytic = ber_ook_noncoherent(gamma);
            let bits = ((50.0 / analytic) as usize).clamp(2_000, 60_000);
            let mc = MonteCarloBer::at_snr(gamma, BitsPerSecond::KBPS_100, bits, 7).run();
            mc.ber().max(0.5 / bits as f64)
        };
        let first = mc_surface().ber(gamma);
        assert_eq!(first.to_bits(), direct.to_bits());
        let memoized_before = mc_surface().memoized();
        let again = mc_surface().ber(gamma);
        assert_eq!(again.to_bits(), direct.to_bits());
        assert_eq!(mc_surface().memoized(), memoized_before);
    }
}
