//! Figure 3(b): transient simulation of the single-stage RF charge pump —
//! a 1 V sine in, ~2 V DC out.

use crate::render::banner;
use braidio_circuits::DicksonChargePump;
use braidio_units::Hertz;

/// Regenerate Figure 3(b).
pub fn run() {
    banner(
        "Figure 3b",
        "Charge-pump transient: input A, between-diodes B, output C",
    );
    let pump = DicksonChargePump::fig3_single_stage();
    // The paper's trace spans 10 µs with a ~1 MHz drive.
    let f = Hertz::from_mhz(1.0);
    let cycles = 10.0;
    let run = pump.transient_sine(1.0, f, cycles);

    println!(
        "{:>8} {:>10} {:>10} {:>10}",
        "t (us)", "A: input", "B: mid", "C: output"
    );
    let rows = 25usize;
    let step = run.len() / rows;
    for i in 0..rows {
        let idx = i * step;
        println!(
            "{:>8.2} {:>10.3} {:>10.3} {:>10.3}",
            run.dt.micros() * idx as f64,
            run.input[idx],
            run.internal[idx],
            run.output[idx]
        );
    }
    // Extend to steady state for the headline number.
    let settled = pump.transient_sine(1.0, f, 60.0).settled_output(0.1);
    println!("\nsettled DC output: {settled:.3} V  (paper/TINA: ~2 V from a 1 V sine)");
    println!(
        "ideal 2N(Va - Vf) prediction: {:.3} V",
        pump.ideal_output(1.0)
    );
}

#[cfg(test)]
mod tests {
    #[test]
    fn runs() {
        super::run();
    }
}
