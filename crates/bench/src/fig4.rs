//! Figure 4(b)/(c): the phase-cancellation problem — backscatter signal
//! strength over a 2 m × 2 m grid, and the SNR cut along y = 0.5 m.

use crate::render::{banner, heatmap};
use braidio_rfsim::geometry::{Grid, Point};
use braidio_rfsim::phase_cancel::BackscatterScene;
use braidio_units::Meters;

/// Regenerate Figure 4(b) and 4(c).
pub fn run() {
    banner(
        "Figure 4b",
        "Backscatter signal strength over the tag plane (TX at (0.95, 0.5), RX at (1.05, 0.5))",
    );
    let scene = BackscatterScene::paper_fig4();
    let grid = Grid::square(Meters::new(2.0), 61);
    let map = scene.signal_map(&grid);
    // The paper's color scale runs -80..-20 dB.
    heatmap(&map, grid.nx, -80.0, -20.0);
    println!("scale: ' ' = -80 dB ... '@' = -20 dB; dark fringes near the devices are phase-cancellation nulls");

    banner("Figure 4c", "Received SNR along the line y = 0.5 m");
    println!("{:>8} {:>10}", "x (m)", "SNR (dB)");
    let mut nulls = 0;
    let mut prev2 = f64::MAX;
    let mut prev = f64::MAX;
    for i in 0..=80 {
        let x = 0.025 * i as f64;
        let snr = scene.snr(Point::new(x, 0.5), 0).db();
        if i % 4 == 0 {
            println!("{:>8.2} {:>10.1}", x, snr);
        }
        // Count local minima at least 15 dB below their neighbourhood.
        if prev < prev2 - 10.0 && prev < snr - 10.0 {
            nulls += 1;
        }
        prev2 = prev;
        prev = snr;
    }
    println!("\ndeep nulls detected along the cut: {nulls} (paper: \"null points with very low SNR quite close to the devices\")");
}

#[cfg(test)]
mod tests {
    #[test]
    fn runs() {
        super::run();
    }
}
