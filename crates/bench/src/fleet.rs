//! Fleet experiment: multi-device network simulation under the three
//! carrier-arbitration policies.
//!
//! Scales the §7 coexistence question from one interferer to a room:
//! M independent pairs (and a star of harvesting tags around a hub) run
//! the full §4.2 offload protocol in `braidio-net`'s deterministic
//! event-driven engine. Scenarios are independent, so they shard across
//! the work pool — one scenario per work item, merged in index order —
//! and the output is byte-identical at any `--jobs` count.

use crate::metrics;
use crate::render::banner;
use braidio_mac::coexistence::Coexistence;
use braidio_net::{run_fleet, Arbitration, FleetReport, FleetScenario};
use braidio_radio::characterization::Characterization;
use braidio_radio::Mode;
use braidio_units::{Meters, Seconds};
use std::sync::atomic::{AtomicUsize, Ordering};

const SLOT: Seconds = Seconds::new(0.25);
const PAIR_SEP: Meters = Meters::new(0.5);
const SPACING: Meters = Meters::new(3.0);
const ROOM_HORIZON: Seconds = Seconds::new(30.0);
const STAR_HORIZON: Seconds = Seconds::new(120.0);
const TAG_WH: f64 = 0.001;

/// The pair-count rungs of the large-fleet scale family
/// (`experiments fleet --scale N`).
pub const SCALE_LADDER: [usize; 4] = [32, 64, 128, 256];

/// Requested `--scale` rung; 0 means the default grid.
static SCALE: AtomicUsize = AtomicUsize::new(0);

/// Select the large-fleet scale family for subsequent [`run`] calls
/// (`experiments fleet --scale N`). `0` restores the default grid.
pub fn set_scale(pairs: usize) {
    SCALE.store(pairs, Ordering::Relaxed);
}

fn policies() -> [Arbitration; 3] {
    [
        Arbitration::Uncoordinated,
        Arbitration::ChannelPlan { channels: 2 },
        Arbitration::TdmaRoundRobin { slot: SLOT },
    ]
}

/// The scenario grid, in output order. Public so the determinism suite can
/// re-run the exact grid at different thread counts.
pub fn scenarios() -> Vec<(&'static str, FleetScenario)> {
    let mut out = Vec::new();
    // Room: M independent 0.5 m pairs, 3 m apart, equal 1 Wh batteries.
    for m in [2usize, 4, 8] {
        for arb in policies() {
            out.push((
                "room",
                FleetScenario::independent_pairs(m, PAIR_SEP, SPACING, 1.0, 1.0, arb)
                    .with_horizon(ROOM_HORIZON),
            ));
        }
    }
    // Bound check: 2 pairs without control-plane costs, comparable to the
    // analytical coexistence numbers (which ignore control traffic too).
    out.push((
        "bound",
        FleetScenario::independent_pairs(
            2,
            PAIR_SEP,
            SPACING,
            1.0,
            1.0,
            Arbitration::TdmaRoundRobin { slot: SLOT },
        )
        .with_horizon(ROOM_HORIZON)
        .without_control_overhead(),
    ));
    // Star: K coin-cell tags streaming to one mains-class hub.
    for arb in [
        Arbitration::TdmaRoundRobin { slot: SLOT },
        Arbitration::Uncoordinated,
    ] {
        out.push((
            "star",
            FleetScenario::star(8, PAIR_SEP, 99.5, TAG_WH, arb).with_horizon(STAR_HORIZON),
        ));
    }
    out
}

/// The `--scale` grid at `m` pairs: a √m × √m room grid under each
/// arbitration policy, far-field cull enabled (bitwise-neutral in-room —
/// validated by the cull equality tests). Public so the determinism suite
/// can re-run the exact grid at different thread counts.
pub fn scale_scenarios(m: usize) -> Vec<(&'static str, FleetScenario)> {
    policies()
        .into_iter()
        .map(|arb| {
            (
                "scale",
                FleetScenario::grid_pairs(m, PAIR_SEP, SPACING, 1.0, 1.0, arb)
                    .with_horizon(ROOM_HORIZON)
                    .with_far_field_cull(),
            )
        })
        .collect()
}

/// Mean fraction of the tags' batteries spent (devices 1.. are the tags).
fn tag_spend(r: &FleetReport, sc: &FleetScenario) -> f64 {
    let tags = sc.devices.len() - 1;
    (1..sc.devices.len())
        .map(|d| r.device_spent[d].joules() / sc.devices[d].battery.joules())
        .sum::<f64>()
        / tags as f64
}

/// Tag sessions that died before the horizon.
fn dead_sessions(r: &FleetReport) -> usize {
    r.pair_dead_at.iter().filter(|d| d.is_some()).count()
}

fn detector_share(r: &FleetReport) -> f64 {
    r.mode_share(Mode::Passive) + r.mode_share(Mode::Backscatter)
}

fn mean_carrier_duty(r: &FleetReport) -> f64 {
    let n = r.device_carrier_time.len();
    (0..n).map(|d| r.carrier_duty(d)).sum::<f64>() / n as f64
}

/// Fleet-wide energy cost of a delivered bit, nJ/bit.
fn nj_per_bit(r: &FleetReport) -> f64 {
    let spent: f64 = r.device_spent.iter().map(|j| j.joules()).sum();
    1e9 * spent / r.total_bits().max(f64::MIN_POSITIVE)
}

/// Run every scenario of `grid` through the work pool, stamping each grid
/// index as its telemetry run id, and — when event capture is on — audit
/// the telemetry energy ledger against each report's measured battery
/// drain. Public so the determinism suite runs the exact production path.
pub fn run_grid(grid: &[(&'static str, FleetScenario)]) -> Vec<FleetReport> {
    let base = braidio_telemetry::run_base();
    let reports = braidio_pool::par_map_indexed(grid.len(), |i| {
        braidio_telemetry::with_run(i as u32, || run_fleet(&grid[i].1))
    });
    if braidio_telemetry::enabled() {
        audit_energy_ledger(base, &reports);
    }
    reports
}

/// The energy-ledger audit: folding every `EnergyDebit` the engine emitted
/// must reproduce each device's measured drain — the trace is complete, or
/// this panics. Reported on stderr so experiment stdout stays byte-
/// identical with telemetry on and off.
fn audit_energy_ledger(base: u32, reports: &[FleetReport]) {
    use braidio_telemetry::Track;
    let events = braidio_telemetry::events_snapshot();
    let ledger = braidio_telemetry::sink::fold_energy(&events);
    let mut audited = 0usize;
    for (i, r) in reports.iter().enumerate() {
        let run = base + i as u32;
        for (d, spent) in r.device_spent.iter().enumerate() {
            let folded = ledger
                .get(&(run, Track::Device(d as u32)))
                .copied()
                .unwrap_or(0.0);
            let err = (folded - spent.joules()).abs() / spent.joules().abs().max(1e-30);
            assert!(
                err <= 1e-9,
                "energy ledger mismatch: run {run} device {d}: folded {folded} J \
                 vs drained {} J (rel err {err:e})",
                spent.joules()
            );
            audited += 1;
        }
    }
    eprintln!(
        "fleet energy-ledger audit: {audited} device ledgers reconciled across {} runs",
        reports.len()
    );
}

/// Run the large-fleet scale rung: `m` pairs on a room grid under all
/// three arbitration policies. Stdout carries only simulated quantities
/// (byte-identical at any `--jobs` count); wall-clock re-plan latency goes
/// to the metric registry (`--bench-json`) and stderr.
pub fn run_scale(m: usize) {
    banner(
        "Fleet scale",
        "Large-fleet arbitration: hundreds of pairs on a room grid",
    );
    let grid = scale_scenarios(m);
    // Profile regardless of `--profile`, so `--bench-json` always carries
    // the re-plan latency distribution and interference-update counters.
    let prev_profiling = braidio_telemetry::profiling();
    braidio_telemetry::set_profiling(true);
    let spans_before = braidio_telemetry::spans_snapshot().len();
    let reports = run_grid(&grid);
    let spans = braidio_telemetry::spans_snapshot();
    braidio_telemetry::set_profiling(prev_profiling);
    let mut replans: Vec<f64> = spans[spans_before..]
        .iter()
        .filter(|s| s.name == "net.replan")
        .map(|s| s.dur_us)
        .collect();
    for us in &replans {
        metrics::observe("fleet.scale.replan_latency_s", us * 1e-6);
    }
    // Wall-clock distribution: stderr only, so stdout stays byte-stable.
    replans.sort_by(|a, b| a.partial_cmp(b).expect("span durations are finite"));
    if !replans.is_empty() {
        let q = |p: f64| replans[((p * replans.len() as f64).ceil() as usize).max(1) - 1];
        eprintln!(
            "fleet scale: {} re-plans profiled, p50 {:.1} us, p95 {:.1} us, max {:.1} us",
            replans.len(),
            q(0.50),
            q(0.95),
            q(1.00),
        );
    }

    println!(
        "scale: {m} pairs on a room grid ({} m links, {} m pitch, 1 Wh each, {:.0} s horizon;",
        PAIR_SEP.meters(),
        SPACING.meters(),
        ROOM_HORIZON.seconds()
    );
    println!("       far-field cull on; goodput in bit/s):");
    println!(
        "{:>14} {:>15} {:>9} {:>12} {:>13} {:>9}",
        "policy", "goodput/pair", "fairness", "bs+passive", "carrier duty", "nJ/bit"
    );
    for (arb, r) in policies().iter().zip(&reports) {
        println!(
            "{:>14} {:>15.0} {:>9.3} {:>11.0}% {:>12.0}% {:>9.1}",
            arb.label(),
            r.goodput_per_pair(),
            r.fairness(),
            100.0 * detector_share(r),
            100.0 * mean_carrier_duty(r),
            nj_per_bit(r),
        );
        metrics::record(
            &format!(
                "fleet.scale.m{m}.{}.goodput_bps",
                arb.label().replace('-', "_")
            ),
            r.goodput_per_pair(),
        );
        metrics::record(
            &format!(
                "fleet.scale.m{m}.{}.fairness",
                arb.label().replace('-', "_")
            ),
            r.fairness(),
        );
    }
    println!("\n=> the arbitration story survives the scale-up: an uncoordinated room of");
    println!("   {m} carriers still erases the detector modes, while round-robin TDMA");
    println!("   trades per-pair airtime for interference-free slots.");
}

/// Run the fleet experiment.
pub fn run() {
    let scale = SCALE.load(Ordering::Relaxed);
    if scale != 0 {
        return run_scale(scale);
    }
    banner(
        "Fleet",
        "Multi-device network simulation: carrier arbitration at room scale",
    );
    let grid = scenarios();
    // Profile the grid run regardless of `--profile`, so `--bench-json`
    // always carries the re-plan latency distribution.
    let prev_profiling = braidio_telemetry::profiling();
    braidio_telemetry::set_profiling(true);
    let spans_before = braidio_telemetry::spans_snapshot().len();
    let reports = run_grid(&grid);
    let spans = braidio_telemetry::spans_snapshot();
    braidio_telemetry::set_profiling(prev_profiling);
    for s in &spans[spans_before..] {
        if s.name == "net.replan" {
            metrics::observe("fleet.replan_latency_s", s.dur_us * 1e-6);
        }
    }
    for (r, (_, sc)) in reports.iter().zip(&grid) {
        for p in 0..sc.pairs.len() {
            metrics::observe("fleet.pair_goodput_bps", r.pair_goodput(p));
        }
    }

    println!(
        "independent pairs ({} m links, {} m apart, 1 Wh each, {:.0} s horizon; goodput in bit/s):",
        PAIR_SEP.meters(),
        SPACING.meters(),
        ROOM_HORIZON.seconds()
    );
    println!(
        "{:>6} {:>14} {:>15} {:>9} {:>12} {:>13} {:>9}",
        "pairs", "policy", "goodput/pair", "fairness", "bs+passive", "carrier duty", "nJ/bit"
    );
    let mut idx = 0;
    for m in [2usize, 4, 8] {
        for arb in policies() {
            let r = &reports[idx];
            idx += 1;
            println!(
                "{:>6} {:>14} {:>15.0} {:>9.3} {:>11.0}% {:>12.0}% {:>9.1}",
                m,
                arb.label(),
                r.goodput_per_pair(),
                r.fairness(),
                100.0 * detector_share(r),
                100.0 * mean_carrier_duty(r),
                nj_per_bit(r),
            );
            metrics::record(
                &format!(
                    "fleet.room.m{m}.{}.goodput_bps",
                    arb.label().replace('-', "_")
                ),
                r.goodput_per_pair(),
            );
        }
    }

    // Analytical cross-check: TDMA against the coexistence bound.
    let bound_report = &reports[idx];
    idx += 1;
    let ch = Characterization::braidio();
    let full_rate = ch
        .max_rate(Mode::Backscatter, PAIR_SEP)
        .expect("backscatter works at 0.5 m")
        .bps()
        .bps();
    let bound = full_rate * Arbitration::TdmaRoundRobin { slot: SLOT }.airtime_share(2);
    let tdma_goodput = bound_report.pair_goodput(0);
    println!("\ncoordination recovers the braid (2 pairs, control overhead off):");
    println!(
        "  TDMA per-pair goodput {:>9.0} b/s vs analytical 50% bound {:>9.0} b/s ({:.1}% of bound;",
        tdma_goodput,
        bound,
        100.0 * tdma_goodput / bound
    );
    println!("   residual = final quantum truncated at the horizon + first-slot phasing)");
    let co = Coexistence::braidio_neighbor(SPACING);
    let bs_crossover = co.tdma_crossover_distance(Mode::Backscatter, PAIR_SEP);
    let pv_crossover = co.tdma_crossover_distance(Mode::Passive, PAIR_SEP);
    println!(
        "  analytical TDMA crossover (suffering beats slots beyond d*): backscatter {}, passive {}",
        bs_crossover
            .map(|d| format!("{:.0} m", d.meters()))
            .unwrap_or_else(|| "never".into()),
        pv_crossover
            .map(|d| format!("{:.0} m", d.meters()))
            .unwrap_or_else(|| "never".into()),
    );
    metrics::record("fleet.bound.tdma_goodput_bps", tdma_goodput);
    metrics::record("fleet.bound.analytical_bps", bound);

    // Star summary: the asymmetric-energy story. Under TDMA the mains-class
    // hub carries the carrier burden and the coin-cell tags coast; an
    // uncoordinated star forces every tag onto its own active radio, which
    // drains the coin cells until the sessions burn out.
    println!(
        "\nstar: 8 tags -> hub (0.5 m ring, hub 99.5 Wh, tags {:.0} mWh, {:.0} s horizon; goodput in bit/s):",
        TAG_WH * 1e3,
        STAR_HORIZON.seconds()
    );
    println!(
        "{:>14} {:>15} {:>12} {:>10} {:>11} {:>14}",
        "policy", "goodput/tag", "bs+passive", "hub duty", "tag spend", "dead sessions"
    );
    for arb in [
        Arbitration::TdmaRoundRobin { slot: SLOT },
        Arbitration::Uncoordinated,
    ] {
        let (_, sc) = &grid[idx];
        let r = &reports[idx];
        idx += 1;
        println!(
            "{:>14} {:>15.0} {:>11.0}% {:>9.0}% {:>10.1}% {:>11}/8",
            arb.label(),
            r.goodput_per_pair(),
            100.0 * detector_share(r),
            100.0 * r.carrier_duty(0),
            100.0 * tag_spend(r, sc),
            dead_sessions(r),
        );
        metrics::record(
            &format!("fleet.star.{}.goodput_bps", arb.label().replace('-', "_")),
            r.goodput_per_pair(),
        );
        metrics::record(
            &format!("fleet.star.{}.tag_spend", arb.label().replace('-', "_")),
            tag_spend(r, sc),
        );
        metrics::record(
            &format!("fleet.star.{}.dead_sessions", arb.label().replace('-', "_")),
            dead_sessions(r) as f64,
        );
    }

    println!("\n=> an uncoordinated in-band carrier erases backscatter at *any* separation");
    println!("   (two-way d^4 link, no protection distance) and a static channel plan");
    println!("   cannot help a channel-blind envelope detector; round-robin TDMA trades");
    println!("   airtime for interference-free slots and recovers the full braid — and");
    println!("   with it the asymmetric-energy braid: the hub pays for the carrier while");
    println!("   coin-cell tags coast, instead of burning out on their active radios.");
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uncoordinated_kills_backscatter_tdma_recovers_the_bound() {
        let grid = scenarios();
        let reports = braidio_pool::par_map(&grid, |(_, sc)| run_fleet(sc));
        // Room rows: policies cycle [uncoordinated, channel-plan, tdma].
        for (i, m) in [2usize, 4, 8].iter().enumerate() {
            let unc = &reports[3 * i];
            let plan = &reports[3 * i + 1];
            let tdma = &reports[3 * i + 2];
            assert_eq!(
                unc.mode_share(Mode::Backscatter),
                0.0,
                "m={m} uncoordinated"
            );
            assert_eq!(
                plan.mode_share(Mode::Backscatter),
                0.0,
                "m={m} channel plan"
            );
            assert!(detector_share(tdma) > 0.5, "m={m} tdma braids");
        }
        // The bound scenario recovers the analytical 50% share within the
        // documented quantization residual (final quantum + slot phasing).
        let bound_report = &reports[9];
        let ch = Characterization::braidio();
        let bound = 0.5
            * ch.max_rate(Mode::Backscatter, PAIR_SEP)
                .unwrap()
                .bps()
                .bps();
        let goodput = bound_report.pair_goodput(0);
        assert!(
            goodput >= 0.98 * bound,
            "tdma goodput {goodput} vs bound {bound}"
        );
    }

    #[test]
    fn star_tags_coast_under_tdma_but_burn_out_uncoordinated() {
        let grid = scenarios();
        assert_eq!(grid[10].0, "star");
        let tdma = run_fleet(&grid[10].1);
        let unc = run_fleet(&grid[11].1);
        // Under TDMA the hub carries the carrier burden and tags coast on
        // their reflective modes: sessions outlive the horizon and the coin
        // cells barely move.
        assert_eq!(dead_sessions(&tdma), 0, "tdma sessions must survive");
        assert!(
            tdma.carrier_duty(0) > 0.5,
            "hub duty {}",
            tdma.carrier_duty(0)
        );
        assert!(
            tag_spend(&tdma, &grid[10].1) < 0.1,
            "tdma tag spend {}",
            tag_spend(&tdma, &grid[10].1)
        );
        // Uncoordinated, every session sees the hub's other sessions at the
        // near-field floor: no detector modes, tags forced onto their active
        // radios — which drains the coin cells until the sessions die.
        assert_eq!(detector_share(&unc), 0.0);
        assert!(
            tag_spend(&unc, &grid[11].1) > 0.5,
            "uncoordinated tag spend {}",
            tag_spend(&unc, &grid[11].1)
        );
        assert!(
            dead_sessions(&unc) > 0,
            "active-only sessions must burn out"
        );
    }

    #[test]
    fn runs() {
        super::run();
    }
}
