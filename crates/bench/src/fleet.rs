//! Fleet experiment: multi-device network simulation under the three
//! carrier-arbitration policies.
//!
//! Scales the §7 coexistence question from one interferer to a room:
//! M independent pairs (and a star of harvesting tags around a hub) run
//! the full §4.2 offload protocol in `braidio-net`'s deterministic
//! event-driven engine. Scenarios are independent, so they shard across
//! the work pool — one scenario per work item, merged in index order —
//! and the output is byte-identical at any `--jobs` count.

use crate::metrics;
use crate::render::banner;
use braidio_mac::coexistence::Coexistence;
use braidio_net::{run_fleet, run_fleet_sampled, Arbitration, FleetReport, FleetScenario};
use braidio_radio::characterization::Characterization;
use braidio_radio::Mode;
use braidio_telemetry::Series;
use braidio_units::{Meters, Seconds};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

const SLOT: Seconds = Seconds::new(0.25);
const PAIR_SEP: Meters = Meters::new(0.5);
const SPACING: Meters = Meters::new(3.0);
const ROOM_HORIZON: Seconds = Seconds::new(30.0);
const STAR_HORIZON: Seconds = Seconds::new(120.0);
const TAG_WH: f64 = 0.001;

/// The pair-count rungs of the large-fleet scale family recorded in the
/// perf trajectory (`experiments fleet --scale N --bench-json …`). Any
/// positive `N` runs; these five are the ones tracked across PRs. The
/// 10⁵ rung exists because the memoized edge kernel made it reachable:
/// a single full planning wave there is 10¹⁰ candidate edges, which only
/// fits a CI budget once the per-edge cost is a table hit, not a `powf`.
pub const SCALE_LADDER: [usize; 5] = [256, 1024, 4096, 10000, 100000];

/// Default pair count for the city-block stress scenario
/// (`experiments fleet --city-block`).
pub const CITY_DEFAULT_PAIRS: usize = 10_000;

/// Default device count (hubs plus expected sessions) for the open-system
/// churn rung (`experiments fleet --churn`).
pub const CHURN_DEFAULT_DEVICES: usize = 1000;

/// Mains-class beacon hubs in the churn rung's grid.
const CHURN_HUBS: usize = 16;

/// Horizon of the churn rung: ten mean dwells (`open_system` sets
/// `mean_dwell = horizon / 6`), so the system reaches steady state and the
/// trailing `horizon / 3` report window sees a settled mix of arrivals,
/// roams, departures and deaths.
const CHURN_HORIZON: Seconds = Seconds::new(60.0);

/// Seed of the tracked churn rung's arrival stream. Fixed, so the rung is
/// one reproducible scenario rather than a fresh draw per run.
const CHURN_SEED: u64 = 7;

/// Requested `--scale` rung; 0 means the default grid.
static SCALE: AtomicUsize = AtomicUsize::new(0);

/// `--city-block`: run the mixed mesh/star city topology instead of the
/// uniform room grid.
static CITY: std::sync::atomic::AtomicBool = std::sync::atomic::AtomicBool::new(false);

/// `--churn`: run the open-system churn rung instead of the closed grids.
static CHURN: std::sync::atomic::AtomicBool = std::sync::atomic::AtomicBool::new(false);

/// `--timeseries`: sample fleet gauges from inside each scenario's serial
/// event loop (`telemetry::timeseries`) and collect the series for the
/// driver to render.
static TIMESERIES: std::sync::atomic::AtomicBool = std::sync::atomic::AtomicBool::new(false);

/// Series collected by [`run_grid`] when `--timeseries` is on, in grid
/// index order (the pool returns work-item results in index order, so no
/// sorting is needed for determinism).
static SERIES: Mutex<Vec<Series>> = Mutex::new(Vec::new());

/// Rows per series: every scenario samples at `horizon / SERIES_ROWS`, so
/// curves from different rungs align on relative time and a 10⁴-pair rung
/// costs the same 121 rows as a room.
pub const SERIES_ROWS: usize = 120;

/// Select the large-fleet scale family for subsequent [`run`] calls
/// (`experiments fleet --scale N`). `0` restores the default grid.
pub fn set_scale(pairs: usize) {
    SCALE.store(pairs, Ordering::Relaxed);
}

/// Select the city-block stress topology for subsequent [`run`] calls
/// (`experiments fleet --city-block [--scale N]`).
pub fn set_city(on: bool) {
    CITY.store(on, Ordering::Relaxed);
}

/// Select the open-system churn rung for subsequent [`run`] calls
/// (`experiments fleet --churn [--scale N]`).
pub fn set_churn(on: bool) {
    CHURN.store(on, Ordering::Relaxed);
}

/// Enable time-series sampling for subsequent [`run`] calls
/// (`experiments fleet --timeseries <path>`). Sampling reads engine state
/// from inside the serial event loop only — reports and stdout are
/// bit-identical with it on or off.
pub fn set_timeseries(on: bool) {
    TIMESERIES.store(on, Ordering::Relaxed);
}

/// Drain the series collected since the last call (grid index order,
/// named `<tag><index>.<policy>`). The driver renders them to CSV/JSONL
/// and summarizes them in `--bench-json`.
pub fn take_series() -> Vec<Series> {
    std::mem::take(&mut SERIES.lock().unwrap_or_else(|e| e.into_inner()))
}

fn policies() -> [Arbitration; 3] {
    [
        Arbitration::Uncoordinated,
        Arbitration::ChannelPlan { channels: 2 },
        Arbitration::TdmaRoundRobin { slot: SLOT },
    ]
}

/// The scenario grid, in output order. Public so the determinism suite can
/// re-run the exact grid at different thread counts.
pub fn scenarios() -> Vec<(&'static str, FleetScenario)> {
    let mut out = Vec::new();
    // Room: M independent 0.5 m pairs, 3 m apart, equal 1 Wh batteries.
    for m in [2usize, 4, 8] {
        for arb in policies() {
            out.push((
                "room",
                FleetScenario::independent_pairs(m, PAIR_SEP, SPACING, 1.0, 1.0, arb)
                    .with_horizon(ROOM_HORIZON),
            ));
        }
    }
    // Bound check: 2 pairs without control-plane costs, comparable to the
    // analytical coexistence numbers (which ignore control traffic too).
    out.push((
        "bound",
        FleetScenario::independent_pairs(
            2,
            PAIR_SEP,
            SPACING,
            1.0,
            1.0,
            Arbitration::TdmaRoundRobin { slot: SLOT },
        )
        .with_horizon(ROOM_HORIZON)
        .without_control_overhead(),
    ));
    // Star: K coin-cell tags streaming to one mains-class hub.
    for arb in [
        Arbitration::TdmaRoundRobin { slot: SLOT },
        Arbitration::Uncoordinated,
    ] {
        out.push((
            "star",
            FleetScenario::star(8, PAIR_SEP, 99.5, TAG_WH, arb).with_horizon(STAR_HORIZON),
        ));
    }
    out
}

/// The `--scale` grid at `m` pairs: a √m × √m room grid under each
/// arbitration policy, far-field cull enabled (bitwise-neutral in-room —
/// validated by the cull equality tests). Public so the determinism suite
/// can re-run the exact grid at different thread counts.
pub fn scale_scenarios(m: usize) -> Vec<(&'static str, FleetScenario)> {
    policies()
        .into_iter()
        .map(|arb| {
            (
                "scale",
                FleetScenario::grid_pairs(m, PAIR_SEP, SPACING, 1.0, 1.0, arb)
                    .with_horizon(ROOM_HORIZON)
                    .with_far_field_cull(),
            )
        })
        .collect()
}

/// Horizon of the city-block stress rung: long enough that every pair in a
/// 10⁴-pair fleet associates (1 ms stagger ⇒ 10 s of bring-up) and the
/// earliest pairs re-plan once, short enough that the rung stays a
/// seconds-scale benchmark.
const CITY_HORIZON: Seconds = Seconds::new(12.0);

/// The city-block stress grid at `m` pairs: the mixed mesh/star street
/// topology ([`FleetScenario::city_block`]) under the two poles of the
/// arbitration story — uncoordinated (every pair plans against the full
/// interference field) and round-robin TDMA (interference-free slots, but
/// a 10⁴-deep rotation starves most pairs inside the horizon). Far-field
/// cull on, as in the scale family. Public so the determinism suite can
/// re-run the exact grid at different thread counts.
pub fn city_scenarios(m: usize) -> Vec<(&'static str, FleetScenario)> {
    [
        Arbitration::Uncoordinated,
        Arbitration::TdmaRoundRobin { slot: SLOT },
    ]
    .into_iter()
    .map(|arb| {
        (
            "city",
            FleetScenario::city_block(m, arb)
                .with_horizon(CITY_HORIZON)
                .with_far_field_cull(),
        )
    })
    .collect()
}

/// The open-system churn grid at roughly `devices` devices: a fixed hub
/// grid beaconing for `devices - hubs` expected tag sessions, under the
/// two poles of the arbitration story. The arrival stream is drawn once
/// at construction from a fixed seed (the arrival-stream determinism
/// rule, DESIGN.md §13), so both policies replay the *same* population.
/// Public so the determinism suite can re-run the exact grid at
/// different thread counts.
pub fn churn_scenarios(devices: usize) -> Vec<(&'static str, FleetScenario)> {
    let hubs = CHURN_HUBS.min(devices.saturating_sub(1)).max(1);
    let sessions = devices.saturating_sub(hubs).max(1);
    [
        Arbitration::TdmaRoundRobin { slot: SLOT },
        Arbitration::Uncoordinated,
    ]
    .into_iter()
    .map(|arb| {
        (
            "churn",
            FleetScenario::open_system(hubs, sessions, CHURN_HORIZON, CHURN_SEED, arb),
        )
    })
    .collect()
}

/// Mean fraction of the tags' batteries spent (devices 1.. are the tags).
fn tag_spend(r: &FleetReport, sc: &FleetScenario) -> f64 {
    let tags = sc.devices.len() - 1;
    (1..sc.devices.len())
        .map(|d| r.device_spent[d].joules() / sc.devices[d].battery.joules())
        .sum::<f64>()
        / tags as f64
}

/// Tag sessions that died before the horizon.
fn dead_sessions(r: &FleetReport) -> usize {
    r.pair_dead_at.iter().filter(|d| d.is_some()).count()
}

fn detector_share(r: &FleetReport) -> f64 {
    r.mode_share(Mode::Passive) + r.mode_share(Mode::Backscatter)
}

fn mean_carrier_duty(r: &FleetReport) -> f64 {
    let n = r.device_carrier_time.len();
    (0..n).map(|d| r.carrier_duty(d)).sum::<f64>() / n as f64
}

/// Fleet-wide energy cost of a delivered bit, nJ/bit.
fn nj_per_bit(r: &FleetReport) -> f64 {
    let spent: f64 = r.device_spent.iter().map(|j| j.joules()).sum();
    1e9 * spent / r.total_bits().max(f64::MIN_POSITIVE)
}

/// Run every scenario of `grid` through the work pool, stamping each grid
/// index as its telemetry run id, and — when event capture is on — audit
/// the telemetry energy ledger against each report's measured battery
/// drain. Public so the determinism suite runs the exact production path.
pub fn run_grid(grid: &[(&'static str, FleetScenario)]) -> Vec<FleetReport> {
    let base = braidio_telemetry::run_base();
    // Scenario granularity: one scenario per work item. A scale-rung grid
    // holds a handful of wildly uneven scenarios (TDMA short-circuits the
    // interference sweep entirely), so the default oversubscription
    // chunking would weld cheap and expensive scenarios into one unit.
    let sampled = TIMESERIES.load(Ordering::Relaxed);
    let results = braidio_pool::par_map_indexed_with_chunk(grid.len(), 1, |i| {
        braidio_telemetry::with_run(i as u32, || {
            if sampled {
                let sc = &grid[i].1;
                let dt = Seconds::new(sc.horizon.seconds() / SERIES_ROWS as f64);
                let (report, mut series) = run_fleet_sampled(sc, dt);
                series.name = format!(
                    "{}{}.{}",
                    grid[i].0,
                    i,
                    sc.arbitration.label().replace('-', "_")
                );
                (report, Some(series))
            } else {
                (run_fleet(&grid[i].1), None)
            }
        })
    });
    let mut reports = Vec::with_capacity(results.len());
    for (report, series) in results {
        if let Some(series) = series {
            SERIES
                .lock()
                .unwrap_or_else(|e| e.into_inner())
                .push(series);
        }
        reports.push(report);
    }
    if braidio_telemetry::enabled() {
        audit_energy_ledger(base, &reports);
    }
    reports
}

/// The energy-ledger audit: folding every `EnergyDebit` the engine emitted
/// must reproduce each device's measured drain — the trace is complete, or
/// this panics. Reported on stderr so experiment stdout stays byte-
/// identical with telemetry on and off.
fn audit_energy_ledger(base: u32, reports: &[FleetReport]) {
    use braidio_telemetry::Track;
    let events = braidio_telemetry::events_snapshot();
    let ledger = braidio_telemetry::sink::fold_energy(&events);
    let mut audited = 0usize;
    for (i, r) in reports.iter().enumerate() {
        let run = base + i as u32;
        for (d, spent) in r.device_spent.iter().enumerate() {
            let folded = ledger
                .get(&(run, Track::Device(d as u32)))
                .copied()
                .unwrap_or(0.0);
            let err = (folded - spent.joules()).abs() / spent.joules().abs().max(1e-30);
            assert!(
                err <= 1e-9,
                "energy ledger mismatch: run {run} device {d}: folded {folded} J \
                 vs drained {} J (rel err {err:e})",
                spent.joules()
            );
            audited += 1;
        }
    }
    eprintln!(
        "fleet energy-ledger audit: {audited} device ledgers reconciled across {} runs",
        reports.len()
    );
}

/// Wall-clock distribution of the named spans in `spans`: each duration is
/// observed into the `metric` histogram (surfaced by `--bench-json`), and a
/// p50/p95/max summary goes to stderr — stderr only, so stdout stays
/// byte-stable at any thread count and on any machine.
fn report_span_latency(
    spans: &[braidio_telemetry::SpanRecord],
    name: &str,
    metric: &str,
    what: &str,
) {
    let mut durs: Vec<f64> = spans
        .iter()
        .filter(|s| s.name == name)
        .map(|s| s.dur_us)
        .collect();
    for us in &durs {
        metrics::observe(metric, us * 1e-6);
    }
    durs.sort_by(|a, b| a.partial_cmp(b).expect("span durations are finite"));
    if !durs.is_empty() {
        let q = |p: f64| durs[((p * durs.len() as f64).ceil() as usize).max(1) - 1];
        eprintln!(
            "fleet scale: {} {what} profiled, p50 {:.1} us, p95 {:.1} us, max {:.1} us",
            durs.len(),
            q(0.50),
            q(0.95),
            q(1.00),
        );
    }
}

/// Parse the `VmHWM` (peak resident set) line out of a `/proc/self/status`
/// blob, in bytes. `None` when the line is missing or malformed.
#[cfg(any(target_os = "linux", test))]
fn parse_vm_hwm(status: &str) -> Option<f64> {
    let kb: f64 = status
        .lines()
        .find(|l| l.starts_with("VmHWM:"))?
        .split_whitespace()
        .nth(1)?
        .parse()
        .ok()?;
    Some(kb * 1024.0)
}

/// Linux peak resident set size (`VmHWM` of `/proc/self/status`), bytes.
/// Off Linux there is no procfs to sample, so the probe reports `None` and
/// [`report_peak_rss`] simply omits the metric — the reports and stdout are
/// identical either way, the memory trajectory just goes unrecorded.
#[cfg(target_os = "linux")]
fn peak_rss_bytes() -> Option<f64> {
    parse_vm_hwm(&std::fs::read_to_string("/proc/self/status").ok()?)
}

#[cfg(not(target_os = "linux"))]
fn peak_rss_bytes() -> Option<f64> {
    None
}

/// Record the process peak RSS under `metric` and note it on stderr (the
/// large-rung memory trajectory — the figure the matrix-free interference
/// cache is accountable to).
fn report_peak_rss(metric: &str) {
    if let Some(bytes) = peak_rss_bytes() {
        metrics::record(metric, bytes);
        eprintln!("fleet scale: peak RSS {:.1} MiB", bytes / (1024.0 * 1024.0));
    }
}

/// Current value of a cumulative telemetry counter (0 when never counted).
fn counter_value(name: &str) -> u64 {
    braidio_telemetry::counters_snapshot()
        .iter()
        .find(|(n, _)| n == name)
        .map(|(_, v)| *v)
        .unwrap_or(0)
}

/// Record the rung's steady-state edge throughput under
/// `{prefix}.edges_per_s`: interference edges recomputed (the
/// `net.interference.edge_recompute` counter delta across the run)
/// divided by the wall-clock spent inside `net.wave` spans. This is the
/// figure the memoized FSPL kernel is accountable to — recomputed edges
/// are exact simulated quantities, the wave wall-clock is host noise, so
/// the ratio goes to stderr and the metric registry, never stdout.
fn report_edge_throughput(
    prefix: &str,
    edges_before: u64,
    spans: &[braidio_telemetry::SpanRecord],
) {
    let edges = counter_value("net.interference.edge_recompute").saturating_sub(edges_before);
    let wave_s: f64 = spans
        .iter()
        .filter(|s| s.name == "net.wave")
        .map(|s| s.dur_us * 1e-6)
        .sum();
    if edges == 0 || wave_s <= 0.0 {
        return;
    }
    let eps = edges as f64 / wave_s;
    metrics::record(&format!("{prefix}.edges_per_s"), eps);
    eprintln!(
        "fleet scale: {edges} interference edges in {wave_s:.3} s of planning waves \
         ({:.1} M edges/s)",
        eps / 1e6
    );
}

/// Record the parallel execution configuration under `prefix`: the
/// effective worker-thread count and the chunk size the planning wave's
/// victim fan-out uses at this rung's pair count. Pure wall-clock
/// attribution metadata — the simulated outputs are identical at any
/// thread count, but a perf trajectory is meaningless without the core
/// count it ran on.
fn report_parallel_config(prefix: &str, pairs: usize) {
    let threads = braidio_pool::thread_count();
    let chunk = braidio_pool::default_chunk(pairs);
    metrics::record(&format!("{prefix}.threads"), threads as f64);
    metrics::record(&format!("{prefix}.wave_chunk_pairs"), chunk as f64);
    eprintln!(
        "fleet scale: {threads} worker thread{} ({}), wave fan-out chunk {chunk} pairs",
        if threads == 1 { "" } else { "s" },
        braidio_pool::thread_source().label(),
    );
}

/// Run the large-fleet scale rung: `m` pairs on a room grid under all
/// three arbitration policies. Stdout carries only simulated quantities
/// (byte-identical at any `--jobs` count); wall-clock planning-wave and
/// re-plan latency, peak RSS, and the effective grid shape go to the
/// metric registry (`--bench-json`) and stderr.
pub fn run_scale(m: usize) {
    banner(
        "Fleet scale",
        "Large-fleet arbitration: hundreds of pairs on a room grid",
    );
    // Rounding rule for non-perfect-square rungs: the grid is ⌈√m⌉ columns
    // wide and fills row-major, so the last row may be partial. Stderr, so
    // stdout stays byte-stable across rungs with the same report values.
    let side = (m as f64).sqrt().ceil() as usize;
    eprintln!(
        "fleet scale: {m} pairs -> {side}x{} grid ({} in the last row; \
         ceil(sqrt) columns, row-major fill)",
        m.div_ceil(side),
        m - (m.div_ceil(side) - 1) * side,
    );
    let grid = scale_scenarios(m);
    // Profile regardless of `--profile`, so `--bench-json` always carries
    // the planning-latency distributions and interference-update counters.
    let prev_profiling = braidio_telemetry::profiling();
    braidio_telemetry::set_profiling(true);
    let spans_before = braidio_telemetry::spans_snapshot().len();
    let edges_before = counter_value("net.interference.edge_recompute");
    let reports = run_grid(&grid);
    let spans = braidio_telemetry::spans_snapshot();
    braidio_telemetry::set_profiling(prev_profiling);
    report_span_latency(
        &spans[spans_before..],
        "net.replan",
        "fleet.scale.replan_latency_s",
        "re-plans",
    );
    report_span_latency(
        &spans[spans_before..],
        "net.wave",
        "fleet.scale.wave_latency_s",
        "planning waves",
    );
    report_edge_throughput("fleet.scale", edges_before, &spans[spans_before..]);
    report_peak_rss("fleet.scale.peak_rss_bytes");
    report_parallel_config("fleet.scale", m);

    println!(
        "scale: {m} pairs on a room grid ({} m links, {} m pitch, 1 Wh each, {:.0} s horizon;",
        PAIR_SEP.meters(),
        SPACING.meters(),
        ROOM_HORIZON.seconds()
    );
    println!("       far-field cull on; goodput in bit/s):");
    println!(
        "{:>14} {:>15} {:>9} {:>12} {:>13} {:>9}",
        "policy", "goodput/pair", "fairness", "bs+passive", "carrier duty", "nJ/bit"
    );
    for (arb, r) in policies().iter().zip(&reports) {
        println!(
            "{:>14} {:>15.0} {:>9.3} {:>11.0}% {:>12.0}% {:>9.1}",
            arb.label(),
            r.goodput_per_pair(),
            r.fairness(),
            100.0 * detector_share(r),
            100.0 * mean_carrier_duty(r),
            nj_per_bit(r),
        );
        metrics::record(
            &format!(
                "fleet.scale.m{m}.{}.goodput_bps",
                arb.label().replace('-', "_")
            ),
            r.goodput_per_pair(),
        );
        metrics::record(
            &format!(
                "fleet.scale.m{m}.{}.fairness",
                arb.label().replace('-', "_")
            ),
            r.fairness(),
        );
    }
    println!("\n=> the arbitration story survives the scale-up: an uncoordinated room of");
    println!("   {m} carriers still erases the detector modes, while round-robin TDMA");
    println!("   trades per-pair airtime for interference-free slots.");
}

/// Run the city-block stress rung: `m` pairs tiled as alternating mesh and
/// star blocks, uncoordinated vs TDMA. Same stdout/stderr split as
/// [`run_scale`]: simulated quantities on stdout (byte-identical at any
/// `--jobs` count), wall-clock latency, peak RSS and shape notes on stderr
/// and in the metric registry.
pub fn run_city(m: usize) {
    banner(
        "Fleet city-block",
        "City-scale stress: mixed mesh and star blocks in one interference field",
    );
    let nblocks = m.div_ceil(FleetScenario::CITY_BLOCK_PAIRS);
    let side = (nblocks as f64).sqrt().ceil() as usize;
    eprintln!(
        "fleet city: {m} pairs -> {nblocks} blocks of {} on a {side}x{} street grid \
         (ceil(sqrt) columns, row-major fill)",
        FleetScenario::CITY_BLOCK_PAIRS,
        nblocks.div_ceil(side),
    );
    let grid = city_scenarios(m);
    let prev_profiling = braidio_telemetry::profiling();
    braidio_telemetry::set_profiling(true);
    let spans_before = braidio_telemetry::spans_snapshot().len();
    let edges_before = counter_value("net.interference.edge_recompute");
    let reports = run_grid(&grid);
    let spans = braidio_telemetry::spans_snapshot();
    braidio_telemetry::set_profiling(prev_profiling);
    report_span_latency(
        &spans[spans_before..],
        "net.wave",
        "fleet.city.wave_latency_s",
        "planning waves",
    );
    report_edge_throughput("fleet.city", edges_before, &spans[spans_before..]);
    report_peak_rss("fleet.city.peak_rss_bytes");
    report_parallel_config("fleet.city", m);

    println!("city: {m} pairs in alternating mesh/star blocks (12 m street pitch, 0.5 m links,",);
    println!(
        "      star hubs 99.5 Wh, everyone else 1 Wh, {:.0} s horizon; goodput in bit/s):",
        CITY_HORIZON.seconds()
    );
    println!(
        "{:>14} {:>15} {:>9} {:>12} {:>13} {:>9}",
        "policy", "goodput/pair", "fairness", "bs+passive", "carrier duty", "nJ/bit"
    );
    for ((_, sc), r) in grid.iter().zip(&reports) {
        let arb = sc.arbitration;
        println!(
            "{:>14} {:>15.0} {:>9.3} {:>11.0}% {:>12.0}% {:>9.1}",
            arb.label(),
            r.goodput_per_pair(),
            r.fairness(),
            100.0 * detector_share(r),
            100.0 * mean_carrier_duty(r),
            nj_per_bit(r),
        );
        metrics::record(
            &format!(
                "fleet.city.m{m}.{}.goodput_bps",
                arb.label().replace('-', "_")
            ),
            r.goodput_per_pair(),
        );
        metrics::record(
            &format!("fleet.city.m{m}.{}.fairness", arb.label().replace('-', "_")),
            r.fairness(),
        );
    }
    println!("\n=> one interference field, both deployment shapes: uncoordinated city");
    println!("   blocks keep only the active mode alive, while a {m}-deep TDMA");
    println!("   rotation leaves most pairs waiting for their first slot — street-scale");
    println!("   fleets need arbitration with spatial reuse, not a global token.");
}

/// Run the open-system churn rung: a beacon-hub grid admitting, serving
/// and shedding roughly `devices` devices' worth of tag sessions, TDMA vs
/// uncoordinated. Stdout carries only simulated steady-state quantities
/// (byte-identical at any `--jobs` count); admission-latency histograms,
/// per-phase occupancy and session counters go to the metric registry
/// (`--bench-json` schema 5), wall-clock notes to stderr.
pub fn run_churn(devices: usize) {
    use braidio_net::LinkPhase;
    banner(
        "Fleet churn",
        "Open system: discovery, session lifecycle, and churn at fleet scale",
    );
    let grid = churn_scenarios(devices);
    let hubs = CHURN_HUBS.min(devices.saturating_sub(1)).max(1);
    let sessions = devices.saturating_sub(hubs).max(1);
    eprintln!(
        "fleet churn: {} expected sessions over {hubs} hubs -> {} devices, {} pair rows",
        sessions,
        grid[0].1.devices.len(),
        grid[0].1.pairs.len(),
    );
    let prev_profiling = braidio_telemetry::profiling();
    braidio_telemetry::set_profiling(true);
    let spans_before = braidio_telemetry::spans_snapshot().len();
    let edges_before = counter_value("net.interference.edge_recompute");
    let reports = run_grid(&grid);
    let spans = braidio_telemetry::spans_snapshot();
    braidio_telemetry::set_profiling(prev_profiling);
    report_span_latency(
        &spans[spans_before..],
        "net.wave",
        "fleet.churn.wave_latency_s",
        "planning waves",
    );
    report_edge_throughput("fleet.churn", edges_before, &spans[spans_before..]);
    report_peak_rss("fleet.churn.peak_rss_bytes");
    report_parallel_config("fleet.churn", grid[0].1.pairs.len());

    let window = grid[0]
        .1
        .churn
        .as_ref()
        .expect("churn_scenarios builds open systems")
        .window;
    println!(
        "churn: {} session arrivals expected over {hubs} beacon hubs (8 m grid, {:.0} s",
        sessions,
        CHURN_HORIZON.seconds()
    );
    println!(
        "       horizon; steady state = trailing {:.0} s window; goodput in bit/s):",
        window.seconds()
    );
    println!(
        "{:>14} {:>9} {:>6} {:>9} {:>5} {:>11} {:>6} {:>6} {:>11} {:>7}",
        "policy",
        "admitted",
        "roams",
        "departed",
        "died",
        "adm-lat ms",
        "live%",
        "cool%",
        "w-goodput",
        "w-fair"
    );
    for ((_, sc), r) in grid.iter().zip(&reports) {
        let arb = sc.arbitration;
        let c = r.churn.as_ref().expect("open runs carry churn metrics");
        let half_life = c.session_half_life.map(|s| s.seconds());
        println!(
            "{:>14} {:>9} {:>6} {:>9} {:>5} {:>11.1} {:>5.0}% {:>5.1}% {:>11.0} {:>7.3}",
            arb.label(),
            c.admitted,
            c.roams,
            c.departed,
            c.died,
            1e3 * c.mean_admission_latency(),
            100.0 * c.phase_share(LinkPhase::Live),
            100.0 * c.phase_share(LinkPhase::Cooldown),
            c.window_goodput(),
            c.window_fairness(),
        );
        let key = arb.label().replace('-', "_");
        for lat in &c.admission_latency {
            metrics::observe(
                &format!("fleet.churn.{key}.admission_latency_s"),
                lat.seconds(),
            );
        }
        metrics::record(
            &format!("fleet.churn.{key}.sessions_admitted"),
            c.admitted as f64,
        );
        metrics::record(
            &format!("fleet.churn.{key}.sessions_departed"),
            c.departed as f64,
        );
        metrics::record(&format!("fleet.churn.{key}.sessions_died"), c.died as f64);
        metrics::record(&format!("fleet.churn.{key}.roams"), c.roams as f64);
        for phase in LinkPhase::ALL {
            metrics::record(
                &format!("fleet.churn.{key}.occupancy_s.{}", phase.as_str()),
                c.phase_time[phase.index()],
            );
        }
        if let Some(hl) = half_life {
            metrics::record(&format!("fleet.churn.{key}.session_half_life_s"), hl);
        }
        metrics::record(
            &format!("fleet.churn.{key}.window_goodput_bps"),
            c.window_goodput(),
        );
        metrics::record(
            &format!("fleet.churn.{key}.window_fairness"),
            c.window_fairness(),
        );
    }
    println!("\n=> churn separates discovery from delivery: both policies admit the same");
    println!("   seeded session stream within a beacon interval, but a fleet-deep global");
    println!("   TDMA token rotates slower than the sessions dwell — nobody reaches Live");
    println!("   — while the uncoordinated room braids active-only: real goodput with");
    println!("   collapsed fairness, and the frail tags walk the energy ladder (degrade,");
    println!("   cooldown, death) instead of departing cleanly.");
}

/// Run the fleet experiment.
pub fn run() {
    let scale = SCALE.load(Ordering::Relaxed);
    if CHURN.load(Ordering::Relaxed) {
        return run_churn(if scale != 0 {
            scale
        } else {
            CHURN_DEFAULT_DEVICES
        });
    }
    if CITY.load(Ordering::Relaxed) {
        return run_city(if scale != 0 {
            scale
        } else {
            CITY_DEFAULT_PAIRS
        });
    }
    if scale != 0 {
        return run_scale(scale);
    }
    banner(
        "Fleet",
        "Multi-device network simulation: carrier arbitration at room scale",
    );
    let grid = scenarios();
    // Profile the grid run regardless of `--profile`, so `--bench-json`
    // always carries the re-plan latency distribution.
    let prev_profiling = braidio_telemetry::profiling();
    braidio_telemetry::set_profiling(true);
    let spans_before = braidio_telemetry::spans_snapshot().len();
    let reports = run_grid(&grid);
    let spans = braidio_telemetry::spans_snapshot();
    braidio_telemetry::set_profiling(prev_profiling);
    for s in &spans[spans_before..] {
        if s.name == "net.replan" {
            metrics::observe("fleet.replan_latency_s", s.dur_us * 1e-6);
        }
    }
    for (r, (_, sc)) in reports.iter().zip(&grid) {
        for p in 0..sc.pairs.len() {
            metrics::observe("fleet.pair_goodput_bps", r.pair_goodput(p));
        }
    }

    println!(
        "independent pairs ({} m links, {} m apart, 1 Wh each, {:.0} s horizon; goodput in bit/s):",
        PAIR_SEP.meters(),
        SPACING.meters(),
        ROOM_HORIZON.seconds()
    );
    println!(
        "{:>6} {:>14} {:>15} {:>9} {:>12} {:>13} {:>9}",
        "pairs", "policy", "goodput/pair", "fairness", "bs+passive", "carrier duty", "nJ/bit"
    );
    let mut idx = 0;
    for m in [2usize, 4, 8] {
        for arb in policies() {
            let r = &reports[idx];
            idx += 1;
            println!(
                "{:>6} {:>14} {:>15.0} {:>9.3} {:>11.0}% {:>12.0}% {:>9.1}",
                m,
                arb.label(),
                r.goodput_per_pair(),
                r.fairness(),
                100.0 * detector_share(r),
                100.0 * mean_carrier_duty(r),
                nj_per_bit(r),
            );
            metrics::record(
                &format!(
                    "fleet.room.m{m}.{}.goodput_bps",
                    arb.label().replace('-', "_")
                ),
                r.goodput_per_pair(),
            );
        }
    }

    // Analytical cross-check: TDMA against the coexistence bound.
    let bound_report = &reports[idx];
    idx += 1;
    let ch = Characterization::braidio();
    let full_rate = ch
        .max_rate(Mode::Backscatter, PAIR_SEP)
        .expect("backscatter works at 0.5 m")
        .bps()
        .bps();
    let bound = full_rate * Arbitration::TdmaRoundRobin { slot: SLOT }.airtime_share(2);
    let tdma_goodput = bound_report.pair_goodput(0);
    println!("\ncoordination recovers the braid (2 pairs, control overhead off):");
    println!(
        "  TDMA per-pair goodput {:>9.0} b/s vs analytical 50% bound {:>9.0} b/s ({:.1}% of bound;",
        tdma_goodput,
        bound,
        100.0 * tdma_goodput / bound
    );
    println!("   residual = final quantum truncated at the horizon + first-slot phasing)");
    let co = Coexistence::braidio_neighbor(SPACING);
    let bs_crossover = co.tdma_crossover_distance(Mode::Backscatter, PAIR_SEP);
    let pv_crossover = co.tdma_crossover_distance(Mode::Passive, PAIR_SEP);
    println!(
        "  analytical TDMA crossover (suffering beats slots beyond d*): backscatter {}, passive {}",
        bs_crossover
            .map(|d| format!("{:.0} m", d.meters()))
            .unwrap_or_else(|| "never".into()),
        pv_crossover
            .map(|d| format!("{:.0} m", d.meters()))
            .unwrap_or_else(|| "never".into()),
    );
    metrics::record("fleet.bound.tdma_goodput_bps", tdma_goodput);
    metrics::record("fleet.bound.analytical_bps", bound);

    // Star summary: the asymmetric-energy story. Under TDMA the mains-class
    // hub carries the carrier burden and the coin-cell tags coast; an
    // uncoordinated star forces every tag onto its own active radio, which
    // drains the coin cells until the sessions burn out.
    println!(
        "\nstar: 8 tags -> hub (0.5 m ring, hub 99.5 Wh, tags {:.0} mWh, {:.0} s horizon; goodput in bit/s):",
        TAG_WH * 1e3,
        STAR_HORIZON.seconds()
    );
    println!(
        "{:>14} {:>15} {:>12} {:>10} {:>11} {:>14}",
        "policy", "goodput/tag", "bs+passive", "hub duty", "tag spend", "dead sessions"
    );
    for arb in [
        Arbitration::TdmaRoundRobin { slot: SLOT },
        Arbitration::Uncoordinated,
    ] {
        let (_, sc) = &grid[idx];
        let r = &reports[idx];
        idx += 1;
        println!(
            "{:>14} {:>15.0} {:>11.0}% {:>9.0}% {:>10.1}% {:>11}/8",
            arb.label(),
            r.goodput_per_pair(),
            100.0 * detector_share(r),
            100.0 * r.carrier_duty(0),
            100.0 * tag_spend(r, sc),
            dead_sessions(r),
        );
        metrics::record(
            &format!("fleet.star.{}.goodput_bps", arb.label().replace('-', "_")),
            r.goodput_per_pair(),
        );
        metrics::record(
            &format!("fleet.star.{}.tag_spend", arb.label().replace('-', "_")),
            tag_spend(r, sc),
        );
        metrics::record(
            &format!("fleet.star.{}.dead_sessions", arb.label().replace('-', "_")),
            dead_sessions(r) as f64,
        );
    }

    println!("\n=> an uncoordinated in-band carrier erases backscatter at *any* separation");
    println!("   (two-way d^4 link, no protection distance) and a static channel plan");
    println!("   cannot help a channel-blind envelope detector; round-robin TDMA trades");
    println!("   airtime for interference-free slots and recovers the full braid — and");
    println!("   with it the asymmetric-energy braid: the hub pays for the carrier while");
    println!("   coin-cell tags coast, instead of burning out on their active radios.");
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uncoordinated_kills_backscatter_tdma_recovers_the_bound() {
        let grid = scenarios();
        let reports = braidio_pool::par_map(&grid, |(_, sc)| run_fleet(sc));
        // Room rows: policies cycle [uncoordinated, channel-plan, tdma].
        for (i, m) in [2usize, 4, 8].iter().enumerate() {
            let unc = &reports[3 * i];
            let plan = &reports[3 * i + 1];
            let tdma = &reports[3 * i + 2];
            assert_eq!(
                unc.mode_share(Mode::Backscatter),
                0.0,
                "m={m} uncoordinated"
            );
            assert_eq!(
                plan.mode_share(Mode::Backscatter),
                0.0,
                "m={m} channel plan"
            );
            assert!(detector_share(tdma) > 0.5, "m={m} tdma braids");
        }
        // The bound scenario recovers the analytical 50% share within the
        // documented quantization residual (final quantum + slot phasing).
        let bound_report = &reports[9];
        let ch = Characterization::braidio();
        let bound = 0.5
            * ch.max_rate(Mode::Backscatter, PAIR_SEP)
                .unwrap()
                .bps()
                .bps();
        let goodput = bound_report.pair_goodput(0);
        assert!(
            goodput >= 0.98 * bound,
            "tdma goodput {goodput} vs bound {bound}"
        );
    }

    #[test]
    fn star_tags_coast_under_tdma_but_burn_out_uncoordinated() {
        let grid = scenarios();
        assert_eq!(grid[10].0, "star");
        let tdma = run_fleet(&grid[10].1);
        let unc = run_fleet(&grid[11].1);
        // Under TDMA the hub carries the carrier burden and tags coast on
        // their reflective modes: sessions outlive the horizon and the coin
        // cells barely move.
        assert_eq!(dead_sessions(&tdma), 0, "tdma sessions must survive");
        assert!(
            tdma.carrier_duty(0) > 0.5,
            "hub duty {}",
            tdma.carrier_duty(0)
        );
        assert!(
            tag_spend(&tdma, &grid[10].1) < 0.1,
            "tdma tag spend {}",
            tag_spend(&tdma, &grid[10].1)
        );
        // Uncoordinated, every session sees the hub's other sessions at the
        // near-field floor: no detector modes, tags forced onto their active
        // radios — which drains the coin cells until the sessions die.
        assert_eq!(detector_share(&unc), 0.0);
        assert!(
            tag_spend(&unc, &grid[11].1) > 0.5,
            "uncoordinated tag spend {}",
            tag_spend(&unc, &grid[11].1)
        );
        assert!(
            dead_sessions(&unc) > 0,
            "active-only sessions must burn out"
        );
    }

    #[test]
    fn parse_vm_hwm_reads_the_peak_line() {
        let status = "Name:\texperiments\nUmask:\t0022\nVmPeak:\t   20000 kB\n\
                      VmHWM:\t   13532 kB\nVmRSS:\t   13532 kB\nThreads:\t9\n";
        assert_eq!(parse_vm_hwm(status), Some(13532.0 * 1024.0));
    }

    #[test]
    fn parse_vm_hwm_degrades_to_none() {
        // No VmHWM line at all (the non-Linux shape), a bare key with no
        // value, and a non-numeric value: all omit the metric rather than
        // panicking or recording garbage.
        assert_eq!(parse_vm_hwm(""), None);
        assert_eq!(parse_vm_hwm("Name:\texperiments\nVmRSS:\t 12 kB\n"), None);
        assert_eq!(parse_vm_hwm("VmHWM:\n"), None);
        assert_eq!(parse_vm_hwm("VmHWM:\tlots kB\n"), None);
    }

    #[test]
    fn runs() {
        super::run();
    }
}
