//! Figure 15: performance gain of Braidio over Bluetooth for every device
//! pair (unidirectional traffic, < 1 m, full batteries).

use crate::render::{banner, matrix_values, print_matrix};
use braidio_mac::sim::{simulate_transfer, Policy, TransferSetup};
use braidio_radio::devices::CATALOG;

/// Compute one cell: device `tx` transmits to device `rx` until a battery
/// dies; the cell is Braidio bits over Bluetooth bits.
pub fn cell(tx: usize, rx: usize) -> f64 {
    let (e1, e2) = (CATALOG[tx].battery_wh, CATALOG[rx].battery_wh);
    let braidio = simulate_transfer(&TransferSetup::new(e1, e2, Policy::Braidio));
    let bt = simulate_transfer(&TransferSetup::new(e1, e2, Policy::Bluetooth));
    braidio.bits / bt.bits
}

/// Regenerate Figure 15.
pub fn run() {
    banner(
        "Figure 15",
        "Braidio / Bluetooth total-bits gain, device on column transmits to device on row",
    );
    // Reuse the computed cells for the call-outs instead of re-simulating
    // them: faster, and it keeps the trace free of duplicate sessions under
    // the sweep's (run, unit) identities.
    let values = matrix_values(cell);
    print_matrix(&values);
    let n = CATALOG.len();
    println!(
        "\ndiagonal (equal batteries) = {:.2}x (paper: 1.43x)",
        values[0]
    );
    println!(
        "extreme corners: FuelBand->MBP15 {:.0}x, MBP15->FuelBand {:.0}x (paper: 299x / 397x)",
        values[9 * n], // cell(0, 9)
        values[9]      // cell(9, 0)
    );
}

#[cfg(test)]
mod tests {
    #[test]
    fn diagonal_is_1_43() {
        let g = super::cell(3, 3);
        assert!((g - 1.43).abs() < 0.02, "diagonal {g}");
    }

    #[test]
    fn corners_are_hundreds() {
        assert!(super::cell(0, 9) > 100.0);
        assert!(super::cell(9, 0) > 100.0);
    }
}
