//! Figure 1: battery capacity of mobile devices (log scale).

use crate::render::banner;
use braidio_radio::devices::CATALOG;

/// Regenerate Figure 1.
pub fn run() {
    banner(
        "Figure 1",
        "Battery capacity for mobile devices (Wh, log scale)",
    );
    let max = CATALOG.last().expect("catalog").battery_wh;
    for d in CATALOG.iter() {
        // Log-scale bar from 0.1 Wh to the max.
        let t = ((d.battery_wh / 0.1).ln() / (max / 0.1).ln()).clamp(0.0, 1.0);
        let bar = "#".repeat((t * 48.0).round() as usize);
        println!("{:>16} {:>8.2} Wh |{bar}", d.name, d.battery_wh);
    }
    let ratio = max / CATALOG[0].battery_wh;
    println!(
        "\nlaptop : fitness-band capacity ratio = {ratio:.0}x (paper: ~three orders of magnitude)"
    );
}

#[cfg(test)]
mod tests {
    #[test]
    fn runs() {
        super::run();
    }
}
