//! Figure 18: performance gain over Bluetooth as the device pair separates
//! — three pairs, both directions, 0.3–6 m.

use crate::render::banner;
use braidio_mac::sim::{simulate_transfer, Policy, TransferSetup};
use braidio_radio::devices::{self, Device};
use braidio_units::Meters;

fn gain(tx: Device, rx: Device, d: f64) -> f64 {
    let braidio = simulate_transfer(
        &TransferSetup::new(tx.battery_wh, rx.battery_wh, Policy::Braidio)
            .at_distance(Meters::new(d)),
    );
    let bt = simulate_transfer(
        &TransferSetup::new(tx.battery_wh, rx.battery_wh, Policy::Bluetooth)
            .at_distance(Meters::new(d)),
    );
    if bt.bits == 0.0 {
        return 1.0;
    }
    braidio.bits / bt.bits
}

/// Regenerate Figure 18.
pub fn run() {
    banner(
        "Figure 18",
        "Braidio / Bluetooth gain vs distance for three device pairs (both directions)",
    );
    let pairs = [
        (devices::IPHONE_6S, devices::APPLE_WATCH),
        (devices::SURFACE_BOOK, devices::NEXUS_6P),
        (devices::IPHONE_6S, devices::NIKE_FUEL_BAND),
    ];
    print!("{:>7}", "d (m)");
    for (a, b) in pairs {
        print!(" {:>11}", shorten(a.name, b.name));
        print!(" {:>11}", shorten(b.name, a.name));
    }
    println!();
    // Each distance row (6 simulated transfers) is independent: evaluate
    // them on the work pool and print in index order.
    let rows = braidio_pool::par_map_indexed(20, |i| {
        braidio_telemetry::with_run(i as u32, || {
            let d = 0.3 + (6.0 - 0.3) * i as f64 / 19.0;
            let mut row = format!("{:>7.2}", d);
            for (a, b) in pairs {
                row.push_str(&format!(" {:>10.1}x", gain(a, b, d)));
                row.push_str(&format!(" {:>10.1}x", gain(b, a, d)));
            }
            row
        })
    });
    for row in rows {
        println!("{row}");
    }
    println!("\ncolumns alternate direction: big->small uses the passive receiver (survives to");
    println!("the ~5 m passive range); small->big needs backscatter (collapses past ~2.4 m).");
    println!("Beyond ~5.1 m only the active mode works and every gain settles at 1.0x.");
}

fn shorten(tx: &str, rx: &str) -> String {
    let initials = |s: &str| s.split_whitespace().map(|w| &w[..1]).collect::<String>();
    format!("{}→{}", initials(tx), initials(rx))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gain_decays_with_distance_small_to_big() {
        let near = gain(devices::APPLE_WATCH, devices::IPHONE_6S, 0.5);
        let mid = gain(devices::APPLE_WATCH, devices::IPHONE_6S, 2.0);
        let far = gain(devices::APPLE_WATCH, devices::IPHONE_6S, 3.0);
        assert!(near > mid, "near {near} mid {mid}");
        assert!(mid > far * 0.999, "mid {mid} far {far}");
        assert!((far - 1.0).abs() < 0.1, "far {far}");
    }

    #[test]
    fn big_to_small_survives_past_backscatter_range() {
        let g = gain(devices::IPHONE_6S, devices::APPLE_WATCH, 3.5);
        assert!(g > 5.0, "gain {g}");
    }

    #[test]
    fn everything_converges_beyond_passive_range() {
        for (a, b) in [
            (devices::IPHONE_6S, devices::APPLE_WATCH),
            (devices::SURFACE_BOOK, devices::NEXUS_6P),
        ] {
            let g = gain(a, b, 5.8);
            assert!((g - 1.0).abs() < 0.05, "{} -> {}: {g}", a.name, b.name);
        }
    }
}
