//! Table 2: power consumption and cost of commercial RFID readers.

use crate::render::banner;
use braidio_radio::reader::table2;

/// Regenerate Table 2.
pub fn run() {
    banner(
        "Table 2",
        "Power consumption and cost of commercial readers",
    );
    println!(
        "{:>10} {:>18} {:>14} {:>8}",
        "model", "total power", "est. RX power", "cost"
    );
    for chip in table2() {
        println!(
            "{:>10} {:>9.2}W@{:>2.0}dBm {:>13.2}W {:>7.0}$",
            chip.name,
            chip.total_power.watts(),
            chip.at_dbm,
            chip.rx_power.watts(),
            chip.cost_usd
        );
    }
    println!("\n=> watt-class power budgets; Braidio's backscatter receiver runs at 129 mW");
}

#[cfg(test)]
mod tests {
    #[test]
    fn runs() {
        super::run();
    }
}
