//! Experiment runner: regenerates every table and figure of the paper's
//! evaluation.
//!
//! ```text
//! experiments all                    # everything, in paper order
//! experiments list                   # show available experiment ids
//! experiments fig15 fig16            # a subset
//! experiments all --jobs 4 --timing  # 4 worker threads, per-experiment timing
//! experiments all --bench-json t.json# machine-readable timing report
//! experiments fleet --scale 64       # large-fleet rung: 64 pairs x 3 policies
//! experiments fleet --city-block     # 10k-pair mixed mesh/star stress rung
//! experiments fleet --churn          # 1000-device open system with churn
//! experiments fleet --trace-events fleet.jsonl   # simulated-time event trace
//! experiments fleet --trace-chrome fleet.trace   # Perfetto-loadable trace
//! experiments fleet --profile prof.trace         # wall-clock span profile
//! experiments fleet --profile-folded prof.folded # collapsed-stacks profile
//! experiments fleet --churn --timeseries ts.csv  # sim-time gauge series
//! experiments analyze fleet.jsonl                # offline trace analysis
//! ```
//!
//! The full argument list is validated before anything runs: a typo in the
//! last name no longer wastes the minutes the first names took.
//!
//! Tracing never changes stdout: event capture is buffered in memory and
//! rendered to the requested files after all experiments finish, and the
//! trace carries simulated time only — so the files are byte-identical at
//! any `--jobs` count.

use braidio_bench::{ALL, HIDDEN};
use braidio_telemetry as telemetry;
use std::time::Instant;

struct Cli {
    /// Experiments to run, in request order (expanded from `all`).
    runs: Vec<(&'static str, fn())>,
    /// Print a wall-clock timing report per experiment.
    timing: bool,
    /// Write a machine-readable timing report to this path.
    bench_json: Option<String>,
    /// Write the simulated-time event trace as schema-versioned JSONL.
    trace_events: Option<String>,
    /// Write the simulated-time event trace as Chrome trace-event JSON.
    trace_chrome: Option<String>,
    /// Write the wall-clock span profile as Chrome trace-event JSON.
    profile: Option<String>,
    /// Write the wall-clock span profile as collapsed stacks (flamegraph).
    profile_folded: Option<String>,
    /// Write the fleet gauge time series as CSV here (JSONL twin at
    /// `<path>.jsonl`).
    timeseries: Option<String>,
    /// Worker-thread override (`--jobs N`), if given.
    jobs: Option<usize>,
    /// Large-fleet pair count for the `fleet` experiment (`--scale N`).
    scale: Option<usize>,
    /// Run `fleet` as the city-block stress topology (`--city-block`).
    city_block: bool,
    /// Run `fleet` as the open-system churn rung (`--churn`).
    churn: bool,
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    // `analyze` is a subcommand, not an experiment: it reads a trace file
    // instead of running simulations, so it gets its own argument grammar.
    if args.first().map(String::as_str) == Some("analyze") {
        match run_analyze(&args[1..]) {
            Ok(()) => return,
            Err(msg) => {
                eprintln!("{msg}");
                std::process::exit(1);
            }
        }
    }
    let cli = match parse(args) {
        Ok(Some(cli)) => cli,
        Ok(None) => return,
        Err(msg) => {
            eprintln!("{msg}");
            eprintln!();
            usage();
            std::process::exit(2);
        }
    };

    if let Some(n) = cli.jobs {
        braidio::pool::set_threads(n);
    }
    if let Some(n) = cli.scale {
        braidio_bench::fleet::set_scale(n);
    }
    braidio_bench::fleet::set_city(cli.city_block);
    braidio_bench::fleet::set_churn(cli.churn);
    if cli.trace_events.is_some() || cli.trace_chrome.is_some() {
        telemetry::set_enabled(true);
    }
    if cli.profile.is_some() || cli.profile_folded.is_some() {
        telemetry::set_profiling(true);
    }
    braidio_bench::fleet::set_timeseries(cli.timeseries.is_some());

    let mut timings: Vec<(&str, f64)> = Vec::new();
    for (j, (name, run)) in cli.runs.iter().enumerate() {
        // Each experiment gets a disjoint run-id block, so a combined trace
        // (`all --trace-events ...`) keeps the experiments apart even when
        // two of them use the same per-work-item run offsets.
        telemetry::set_run_base((j as u32) << 16);
        let t0 = Instant::now();
        run();
        timings.push((name, t0.elapsed().as_secs_f64()));
    }

    if cli.trace_events.is_some() || cli.trace_chrome.is_some() {
        let events = telemetry::take_events();
        if let Some(path) = &cli.trace_events {
            let jsonl = telemetry::sink::render_jsonl(&events);
            // The validator is cheap relative to the simulation; refuse to
            // write a trace that violates the schema contract.
            if let Err(e) = telemetry::sink::validate_jsonl(&jsonl) {
                eprintln!("internal error: trace failed validation: {e}");
                std::process::exit(1);
            }
            write_or_die(path, &jsonl);
        }
        if let Some(path) = &cli.trace_chrome {
            write_or_die(path, &telemetry::sink::render_chrome(&events));
        }
    }
    if cli.profile.is_some() || cli.profile_folded.is_some() {
        let spans = telemetry::take_spans();
        if let Some(path) = &cli.profile {
            write_or_die(path, &telemetry::sink::render_profile_chrome(&spans));
        }
        if let Some(path) = &cli.profile_folded {
            write_or_die(path, &telemetry::sink::render_profile_folded(&spans));
        }
    }
    // The time series is collected inside the engine's serial event loop, so
    // like the event trace it carries simulated time only and both renderings
    // are byte-identical at any `--jobs` count.
    let series = if cli.timeseries.is_some() {
        braidio_bench::fleet::take_series()
    } else {
        Vec::new()
    };
    if let Some(path) = &cli.timeseries {
        write_or_die(path, &telemetry::timeseries::render_csv(&series));
        write_or_die(
            &format!("{path}.jsonl"),
            &telemetry::timeseries::render_jsonl(&series),
        );
    }

    // The timing report goes to stderr so the experiment output itself is
    // byte-identical with and without `--timing`.
    if cli.timing {
        let total: f64 = timings.iter().map(|(_, s)| s).sum();
        eprintln!();
        eprintln!(
            "timing ({} thread{}):",
            braidio::pool::thread_count(),
            if braidio::pool::thread_count() == 1 {
                ""
            } else {
                "s"
            }
        );
        for (name, s) in &timings {
            eprintln!("  {name:<12} {s:>8.3} s");
        }
        eprintln!("  {:<12} {total:>8.3} s", "total");
    }

    if let Some(path) = &cli.bench_json {
        write_or_die(path, &bench_json(&timings, &series));
    }
}

/// `experiments analyze <trace.jsonl> [--json PATH] [--stuck-s N]`: offline
/// analysis of a `--trace-events` capture. The human-readable report goes to
/// stdout; `--json` writes the machine report next to it. Exits 0 whenever
/// the trace parses — anomalies are findings, not failures — so CI gates on
/// the stable `anomalies: N` stdout line instead of the exit code.
fn run_analyze(args: &[String]) -> Result<(), String> {
    let mut trace: Option<&str> = None;
    let mut json: Option<String> = None;
    let mut opts = braidio_bench::analyze::AnalyzeOptions::default();
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--json" => {
                let v = it
                    .next()
                    .filter(|v| !v.starts_with('-'))
                    .ok_or_else(|| format!("{arg} needs an output path"))?;
                json = Some(v.clone());
            }
            "--stuck-s" => {
                let v = it
                    .next()
                    .filter(|v| !v.starts_with('-'))
                    .ok_or_else(|| format!("{arg} needs a threshold in seconds"))?;
                let s: f64 = v
                    .parse()
                    .map_err(|_| format!("{arg} {v}: not a number of seconds"))?;
                if !(s.is_finite() && s > 0.0) {
                    return Err(format!("{arg} {v}: need a positive finite threshold"));
                }
                opts.stuck_s = s;
            }
            name if name.starts_with('-') => return Err(format!("unknown analyze flag '{name}'")),
            name => {
                if trace.is_some() {
                    return Err("analyze takes exactly one trace file".into());
                }
                trace = Some(name);
            }
        }
    }
    let path = trace.ok_or("analyze needs a trace file: experiments analyze <trace.jsonl>")?;
    let jsonl = std::fs::read_to_string(path).map_err(|e| format!("failed to read {path}: {e}"))?;
    let analysis =
        braidio_bench::analyze::analyze(&jsonl, &opts).map_err(|e| format!("{path}: {e}"))?;
    print!("{}", braidio_bench::analyze::render_text(&analysis));
    if let Some(out) = &json {
        write_or_die(out, &braidio_bench::analyze::render_json(&analysis));
    }
    Ok(())
}

fn write_or_die(path: &str, contents: &str) {
    if let Err(e) = std::fs::write(path, contents) {
        eprintln!("failed to write {path}: {e}");
        std::process::exit(1);
    }
}

/// Render the timing report as JSON (schema 7, stable):
///
/// ```json
/// {
///   "schema": 7,
///   "git_sha": "<HEAD sha or \"unknown\">",
///   "threads": 4,
///   "threads_source": "jobs-flag",
///   "experiments": [{"name": "fig1", "seconds": 0.012}, ...],
///   "metrics": [{"name": "fleet.bound.tdma_goodput_bps", "value": 5e5}, ...],
///   "histograms": [{"name": "fleet.pair_goodput_bps", "count": 12,
///                   "p50": 4.1e5, "p95": 9.7e5, "max": 1.1e6,
///                   "mean": 5.0e5}, ...],
///   "counters": [{"name": "net.kernel.delivered", "value": 8123}, ...],
///   "timeseries": [{"name": "churn1k.tdma", "rows": 121, "dt_s": 1.5,
///                   "peak_goodput_bps": 8.1e5, "final_live_pairs": 42,
///                   "final_cum_bits": 9.3e8}, ...],
///   "total_seconds": 1.234
/// }
/// ```
///
/// Schema 2 added the `metrics` array: headline simulation results the
/// experiments recorded through `braidio_bench::metrics` while running, so
/// regression tooling can track outcomes without scraping stdout. Schema 3
/// adds `histograms` (distribution metrics — count, p50, p95, max, mean
/// over fixed log-spaced bins) and `counters` (telemetry event counters;
/// populated only when tracing or profiling is on, since the counters are
/// gated behind the same fast path as event capture). Schema 4 adds
/// `threads_source` — where the worker-thread count came from
/// (`"jobs-flag"`, `"env"`, or `"auto"`), so a perf dashboard can tell a
/// pinned `--jobs 8` run from whatever the runner's core count happened
/// to be. Schema 5 marks the open-system churn additions: `fleet --churn`
/// populates per-policy admission-latency histograms
/// (`fleet.churn.*.admission_latency_s`), per-phase occupancy scalars
/// (`fleet.churn.*.occupancy_s.<phase>`) and session counters
/// (`fleet.churn.*.sessions_{admitted,departed,died}`, `.roams`) through
/// the existing `metrics`/`histograms` arrays — the report shape and every
/// pre-existing fleet metric are unchanged. Schema 6 adds `timeseries`:
/// one summary per fleet gauge series captured with `--timeseries`
/// (scenario name, row count, sampling interval, peak windowed goodput,
/// and the final live-pair/cumulative-bit gauges). The array is empty
/// when `--timeseries` was not given, so pre-existing consumers see the
/// same report plus one constant key. Schema 7 marks the memoized edge
/// kernel: the fleet rungs record steady-state edge throughput
/// (`fleet.{scale,city,churn}.edges_per_s` — recomputed interference
/// edges per second of planning-wave wall-clock) through `metrics`, and
/// the `counters` array now carries the exact-FSPL-memo hit/miss totals
/// (`net.fspl.hit` / `net.fspl.miss`; tile- and thread-count-dependent
/// diagnostics, not simulated quantities). Report shape and every
/// pre-existing key are unchanged.
///
/// Written by hand (no serde in the workspace); experiment, metric and
/// series names are lowercase identifiers, so no JSON string escaping is
/// needed.
fn bench_json(timings: &[(&str, f64)], series: &[telemetry::timeseries::Series]) -> String {
    let total: f64 = timings.iter().map(|(_, s)| s).sum();
    let mut out = String::from("{\n");
    out.push_str("  \"schema\": 7,\n");
    out.push_str(&format!("  \"git_sha\": \"{}\",\n", git_sha()));
    out.push_str(&format!(
        "  \"threads\": {},\n",
        braidio::pool::thread_count()
    ));
    out.push_str(&format!(
        "  \"threads_source\": \"{}\",\n",
        braidio::pool::thread_source().label()
    ));
    out.push_str("  \"experiments\": [\n");
    for (i, (name, s)) in timings.iter().enumerate() {
        let comma = if i + 1 < timings.len() { "," } else { "" };
        out.push_str(&format!(
            "    {{\"name\": \"{name}\", \"seconds\": {s:.6}}}{comma}\n"
        ));
    }
    out.push_str("  ],\n");
    let metrics = braidio_bench::metrics::snapshot();
    out.push_str("  \"metrics\": [\n");
    for (i, (name, value)) in metrics.iter().enumerate() {
        let comma = if i + 1 < metrics.len() { "," } else { "" };
        out.push_str(&format!(
            "    {{\"name\": \"{name}\", \"value\": {value:.6}}}{comma}\n"
        ));
    }
    out.push_str("  ],\n");
    let hists = braidio_bench::metrics::histograms();
    out.push_str("  \"histograms\": [\n");
    for (i, (name, h)) in hists.iter().enumerate() {
        let comma = if i + 1 < hists.len() { "," } else { "" };
        out.push_str(&format!(
            "    {{\"name\": \"{name}\", \"count\": {}, \"p50\": {:.6}, \"p95\": {:.6}, \"max\": {:.6}, \"mean\": {:.6}}}{comma}\n",
            h.count(),
            h.quantile(0.5),
            h.quantile(0.95),
            h.max(),
            h.mean(),
        ));
    }
    out.push_str("  ],\n");
    let counters = telemetry::counters_snapshot();
    out.push_str("  \"counters\": [\n");
    for (i, (name, value)) in counters.iter().enumerate() {
        let comma = if i + 1 < counters.len() { "," } else { "" };
        out.push_str(&format!(
            "    {{\"name\": \"{name}\", \"value\": {value}}}{comma}\n"
        ));
    }
    out.push_str("  ],\n");
    out.push_str("  \"timeseries\": [\n");
    for (i, s) in series.iter().enumerate() {
        let comma = if i + 1 < series.len() { "," } else { "" };
        let peak = s
            .samples
            .iter()
            .map(|r| r.goodput_bps)
            .fold(0.0_f64, f64::max);
        let last = s.samples.last();
        out.push_str(&format!(
            "    {{\"name\": \"{}\", \"rows\": {}, \"dt_s\": {}, \"peak_goodput_bps\": {peak}, \"final_live_pairs\": {}, \"final_cum_bits\": {}}}{comma}\n",
            s.name,
            s.samples.len(),
            s.dt,
            last.map_or(0, |r| r.live_pairs),
            last.map_or(0.0, |r| r.cum_bits),
        ));
    }
    out.push_str("  ],\n");
    out.push_str(&format!("  \"total_seconds\": {total:.6}\n"));
    out.push_str("}\n");
    out
}

/// The current git HEAD commit, or `"unknown"` outside a work tree.
fn git_sha() -> String {
    std::process::Command::new("git")
        .args(["rev-parse", "HEAD"])
        .output()
        .ok()
        .filter(|o| o.status.success())
        .and_then(|o| String::from_utf8(o.stdout).ok())
        .map(|s| s.trim().to_string())
        .filter(|s| !s.is_empty())
        .unwrap_or_else(|| "unknown".to_string())
}

/// Resolve an experiment id: the public list first, then the hidden ones
/// (runnable by name, excluded from `all`).
fn lookup(name: &str) -> Option<(&'static str, fn())> {
    ALL.iter()
        .chain(HIDDEN.iter())
        .find(|(id, _)| *id == name)
        .copied()
}

/// Parse and validate the full argument list up front. `Ok(None)` means a
/// query flag (`list`, `--help`) already handled everything.
fn parse(args: Vec<String>) -> Result<Option<Cli>, String> {
    if args.is_empty() {
        usage();
        return Ok(None);
    }
    let mut names: Vec<&str> = Vec::new();
    let mut all = false;
    let mut list = false;
    let mut help = false;
    let mut timing = false;
    let mut bench_json: Option<String> = None;
    let mut trace_events: Option<String> = None;
    let mut trace_chrome: Option<String> = None;
    let mut profile: Option<String> = None;
    let mut profile_folded: Option<String> = None;
    let mut timeseries: Option<String> = None;
    let mut jobs: Option<usize> = None;
    let mut scale: Option<usize> = None;
    let mut city_block = false;
    let mut churn = false;

    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--help" | "-h" => help = true,
            "list" => list = true,
            "all" => all = true,
            "--timing" => timing = true,
            "--bench-json" | "--trace-events" | "--trace-chrome" | "--profile"
            | "--profile-folded" | "--timeseries" => {
                let v = it
                    .next()
                    .filter(|v| !v.starts_with('-'))
                    .ok_or_else(|| format!("{arg} needs an output path"))?;
                let slot = match arg.as_str() {
                    "--bench-json" => &mut bench_json,
                    "--trace-events" => &mut trace_events,
                    "--trace-chrome" => &mut trace_chrome,
                    "--profile-folded" => &mut profile_folded,
                    "--timeseries" => &mut timeseries,
                    _ => &mut profile,
                };
                *slot = Some(v.clone());
            }
            "--jobs" | "-j" => {
                let v = it
                    .next()
                    .filter(|v| !v.starts_with('-'))
                    .ok_or_else(|| format!("{arg} needs a thread count"))?;
                let n: usize = v
                    .parse()
                    .map_err(|_| format!("{arg} {v}: not a thread count"))?;
                if n == 0 {
                    return Err(format!("{arg} 0: need at least one thread"));
                }
                jobs = Some(n);
            }
            "--scale" => {
                let v = it
                    .next()
                    .filter(|v| !v.starts_with('-'))
                    .ok_or_else(|| format!("{arg} needs a pair count"))?;
                let n: usize = v
                    .parse()
                    .map_err(|_| format!("{arg} {v}: not a pair count"))?;
                if n == 0 {
                    return Err(format!("{arg} 0: need at least one pair"));
                }
                scale = Some(n);
            }
            "--city-block" => city_block = true,
            "--churn" => churn = true,
            name if name.starts_with('-') => return Err(format!("unknown flag '{name}'")),
            name => match lookup(name) {
                Some((id, _)) => names.push(id),
                None => return Err(format!("unknown experiment '{name}' — try 'list'")),
            },
        }
    }

    if help {
        usage();
        return Ok(None);
    }
    if list {
        if all || !names.is_empty() {
            return Err("'list' does not combine with experiment names".into());
        }
        for (name, _) in ALL {
            println!("{name}");
        }
        return Ok(None);
    }
    if all && !names.is_empty() {
        return Err("'all' already selects every experiment — drop the extra names".into());
    }
    let runs: Vec<(&'static str, fn())> = if all {
        ALL.to_vec()
    } else if names.is_empty() {
        return Err("nothing to run: give experiment names, 'all', or 'list'".into());
    } else {
        names
            .iter()
            .map(|n| lookup(n).expect("validated"))
            .collect()
    };
    if (scale.is_some() || city_block || churn) && !runs.iter().any(|(id, _)| *id == "fleet") {
        return Err(
            "--scale/--city-block/--churn only affect the 'fleet' experiment — add it to the selection"
                .into(),
        );
    }
    if city_block && churn {
        return Err("--city-block and --churn are different fleet topologies — pick one".into());
    }
    if timeseries.is_some() && !runs.iter().any(|(id, _)| *id == "fleet") {
        return Err("--timeseries samples the 'fleet' experiment — add it to the selection".into());
    }
    Ok(Some(Cli {
        runs,
        timing,
        bench_json,
        trace_events,
        trace_chrome,
        profile,
        profile_folded,
        timeseries,
        jobs,
        scale,
        city_block,
        churn,
    }))
}

fn usage() {
    eprintln!("usage: experiments <selection> [--jobs N] [--scale N] [--timing]");
    eprintln!("                   [--bench-json PATH] [--trace-events PATH]");
    eprintln!("                   [--trace-chrome PATH] [--profile PATH]");
    eprintln!("                   [--profile-folded PATH] [--timeseries PATH]");
    eprintln!("       experiments analyze <trace.jsonl> [--json PATH] [--stuck-s N]");
    eprintln!();
    eprintln!("selection (validated before anything runs):");
    eprintln!("  all            every experiment, in paper order");
    eprintln!("  list           print the available experiment ids and exit");
    eprintln!("  <id> [<id>..]  a subset, run in the order given");
    eprintln!("                 (fig1 fig3 fig4 fig6 fig9 fig12..fig18,");
    eprintln!("                  table1 table2 table3 table5, ablation,");
    eprintln!("                  coexistence, lifetime, fleet, ...)");
    eprintln!();
    eprintln!("flags:");
    eprintln!("  --jobs N, -j N worker threads for the simulation pool");
    eprintln!("                 (default: BRAIDIO_THREADS or the CPU count;");
    eprintln!("                  results are identical at any thread count)");
    eprintln!("  --scale N      run 'fleet' as the large-fleet scale family:");
    eprintln!("                 N pairs on a room grid under every arbitration");
    eprintln!("                  policy (256/1024/4096/10000/100000 are the benched");
    eprintln!("                  rungs; any N >= 1 works — the grid is ceil(sqrt N)");
    eprintln!("                  columns wide, filled row-major, so a non-square N");
    eprintln!("                  leaves the last row partial; the effective shape");
    eprintln!("                  is printed on stderr; results are identical at");
    eprintln!("                  any thread count)");
    eprintln!("  --city-block   run 'fleet' as the city-block stress topology:");
    eprintln!("                 alternating mesh and star blocks on a street grid");
    eprintln!("                  (default 10000 pairs; combine with --scale N for");
    eprintln!("                  other sizes)");
    eprintln!("  --churn        run 'fleet' as the open-system churn rung: beacon");
    eprintln!("                 hubs admitting a seeded stream of tag sessions that");
    eprintln!("                  arrive, roam, depart and die (default ~1000 devices;");
    eprintln!("                  combine with --scale N for other device counts;");
    eprintln!("                  results are identical at any thread count)");
    eprintln!("  --timing       per-experiment wall-clock report on stderr");
    eprintln!("  --bench-json PATH");
    eprintln!("                 write the timing report as JSON (schema 7:");
    eprintln!("                  git sha, thread count and where it came from");
    eprintln!("                  (jobs-flag/env/auto), per-experiment seconds,");
    eprintln!("                  recorded headline metrics — including the fleet");
    eprintln!("                  edges_per_s throughput — histogram metrics —");
    eprintln!("                  including the --churn admission-latency, phase-");
    eprintln!("                  occupancy and session counters — telemetry");
    eprintln!("                  counters (with the net.fspl.hit/miss memo");
    eprintln!("                  diagnostics), and per-series --timeseries");
    eprintln!("                  summaries)");
    eprintln!("  --trace-events PATH");
    eprintln!("                 capture the simulated-time event trace and write");
    eprintln!("                  it as schema-versioned JSONL (byte-identical at");
    eprintln!("                  any --jobs count; 'fleet' is the richest source)");
    eprintln!("  --trace-chrome PATH");
    eprintln!("                 same trace as Chrome trace-event JSON — load it");
    eprintln!("                  in Perfetto (ui.perfetto.dev) or chrome://tracing");
    eprintln!("  --profile PATH wall-clock span profile (worker-pool chunks,");
    eprintln!("                  re-planning) as Chrome trace-event JSON");
    eprintln!("  --profile-folded PATH");
    eprintln!("                 same span profile as collapsed stacks");
    eprintln!("                  ('a;b;c <self-us>' per line — pipe into any");
    eprintln!("                  flamegraph renderer)");
    eprintln!("  --timeseries PATH");
    eprintln!("                 sample fleet gauges (phase occupancy, battery");
    eprintln!("                  quantiles, goodput, cache/memo health) on a");
    eprintln!("                  fixed simulated-time grid inside the engine's");
    eprintln!("                  serial event loop; writes CSV at PATH and JSONL");
    eprintln!("                  at PATH.jsonl, byte-identical at any --jobs");
    eprintln!("                  (requires 'fleet' in the selection)");
    eprintln!();
    eprintln!("subcommands:");
    eprintln!("  analyze <trace.jsonl> [--json PATH] [--stuck-s N]");
    eprintln!("                 offline analysis of a --trace-events capture:");
    eprintln!("                  per-phase dwell histograms, time-to-first-");
    eprintln!("                  delivery, per-device energy waterfalls, and");
    eprintln!("                  anomaly flags (stuck sessions beyond N seconds,");
    eprintln!("                  default 30; grant/release imbalance; energy-");
    eprintln!("                  ledger drift). --json adds a machine report.");
    eprintln!();
    eprintln!("Regenerates the tables and figures of the Braidio paper (SIGCOMM'16)");
    eprintln!("from the simulation models in this workspace. See EXPERIMENTS.md for");
    eprintln!("the paper-vs-measured record.");
}
