//! Experiment runner: regenerates every table and figure of the paper's
//! evaluation.
//!
//! ```text
//! experiments all                    # everything, in paper order
//! experiments list                   # show available experiment ids
//! experiments fig15 fig16            # a subset
//! experiments all --jobs 4 --timing  # 4 worker threads, per-experiment timing
//! experiments all --bench-json t.json# machine-readable timing report
//! ```
//!
//! The full argument list is validated before anything runs: a typo in the
//! last name no longer wastes the minutes the first names took.

use braidio_bench::{ALL, HIDDEN};
use std::time::Instant;

struct Cli {
    /// Experiments to run, in request order (expanded from `all`).
    runs: Vec<(&'static str, fn())>,
    /// Print a wall-clock timing report per experiment.
    timing: bool,
    /// Write a machine-readable timing report to this path.
    bench_json: Option<String>,
    /// Worker-thread override (`--jobs N`), if given.
    jobs: Option<usize>,
}

fn main() {
    let cli = match parse(std::env::args().skip(1).collect()) {
        Ok(Some(cli)) => cli,
        Ok(None) => return,
        Err(msg) => {
            eprintln!("{msg}");
            eprintln!();
            usage();
            std::process::exit(2);
        }
    };

    if let Some(n) = cli.jobs {
        braidio::pool::set_threads(n);
    }

    let mut timings: Vec<(&str, f64)> = Vec::new();
    for (name, run) in &cli.runs {
        let t0 = Instant::now();
        run();
        timings.push((name, t0.elapsed().as_secs_f64()));
    }

    // The timing report goes to stderr so the experiment output itself is
    // byte-identical with and without `--timing`.
    if cli.timing {
        let total: f64 = timings.iter().map(|(_, s)| s).sum();
        eprintln!();
        eprintln!(
            "timing ({} thread{}):",
            braidio::pool::thread_count(),
            if braidio::pool::thread_count() == 1 {
                ""
            } else {
                "s"
            }
        );
        for (name, s) in &timings {
            eprintln!("  {name:<12} {s:>8.3} s");
        }
        eprintln!("  {:<12} {total:>8.3} s", "total");
    }

    if let Some(path) = &cli.bench_json {
        if let Err(e) = std::fs::write(path, bench_json(&timings)) {
            eprintln!("failed to write {path}: {e}");
            std::process::exit(1);
        }
    }
}

/// Render the timing report as JSON (schema 2, stable):
///
/// ```json
/// {
///   "schema": 2,
///   "git_sha": "<HEAD sha or \"unknown\">",
///   "threads": 4,
///   "experiments": [{"name": "fig1", "seconds": 0.012}, ...],
///   "metrics": [{"name": "fleet.bound.tdma_goodput_bps", "value": 5e5}, ...],
///   "total_seconds": 1.234
/// }
/// ```
///
/// Schema 2 adds the `metrics` array: headline simulation results the
/// experiments recorded through `braidio_bench::metrics` while running, so
/// regression tooling can track outcomes without scraping stdout.
///
/// Written by hand (no serde in the workspace); experiment and metric
/// names are lowercase identifiers, so no JSON string escaping is needed.
fn bench_json(timings: &[(&str, f64)]) -> String {
    let total: f64 = timings.iter().map(|(_, s)| s).sum();
    let mut out = String::from("{\n");
    out.push_str("  \"schema\": 2,\n");
    out.push_str(&format!("  \"git_sha\": \"{}\",\n", git_sha()));
    out.push_str(&format!(
        "  \"threads\": {},\n",
        braidio::pool::thread_count()
    ));
    out.push_str("  \"experiments\": [\n");
    for (i, (name, s)) in timings.iter().enumerate() {
        let comma = if i + 1 < timings.len() { "," } else { "" };
        out.push_str(&format!(
            "    {{\"name\": \"{name}\", \"seconds\": {s:.6}}}{comma}\n"
        ));
    }
    out.push_str("  ],\n");
    let metrics = braidio_bench::metrics::snapshot();
    out.push_str("  \"metrics\": [\n");
    for (i, (name, value)) in metrics.iter().enumerate() {
        let comma = if i + 1 < metrics.len() { "," } else { "" };
        out.push_str(&format!(
            "    {{\"name\": \"{name}\", \"value\": {value:.6}}}{comma}\n"
        ));
    }
    out.push_str("  ],\n");
    out.push_str(&format!("  \"total_seconds\": {total:.6}\n"));
    out.push_str("}\n");
    out
}

/// The current git HEAD commit, or `"unknown"` outside a work tree.
fn git_sha() -> String {
    std::process::Command::new("git")
        .args(["rev-parse", "HEAD"])
        .output()
        .ok()
        .filter(|o| o.status.success())
        .and_then(|o| String::from_utf8(o.stdout).ok())
        .map(|s| s.trim().to_string())
        .filter(|s| !s.is_empty())
        .unwrap_or_else(|| "unknown".to_string())
}

/// Resolve an experiment id: the public list first, then the hidden ones
/// (runnable by name, excluded from `all`).
fn lookup(name: &str) -> Option<(&'static str, fn())> {
    ALL.iter()
        .chain(HIDDEN.iter())
        .find(|(id, _)| *id == name)
        .copied()
}

/// Parse and validate the full argument list up front. `Ok(None)` means a
/// query flag (`list`, `--help`) already handled everything.
fn parse(args: Vec<String>) -> Result<Option<Cli>, String> {
    if args.is_empty() {
        usage();
        return Ok(None);
    }
    let mut names: Vec<&str> = Vec::new();
    let mut all = false;
    let mut list = false;
    let mut help = false;
    let mut timing = false;
    let mut bench_json: Option<String> = None;
    let mut jobs: Option<usize> = None;

    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--help" | "-h" => help = true,
            "list" => list = true,
            "all" => all = true,
            "--timing" => timing = true,
            "--bench-json" => {
                let v = it
                    .next()
                    .filter(|v| !v.starts_with('-'))
                    .ok_or_else(|| format!("{arg} needs an output path"))?;
                bench_json = Some(v.clone());
            }
            "--jobs" | "-j" => {
                let v = it
                    .next()
                    .filter(|v| !v.starts_with('-'))
                    .ok_or_else(|| format!("{arg} needs a thread count"))?;
                let n: usize = v
                    .parse()
                    .map_err(|_| format!("{arg} {v}: not a thread count"))?;
                if n == 0 {
                    return Err(format!("{arg} 0: need at least one thread"));
                }
                jobs = Some(n);
            }
            name if name.starts_with('-') => return Err(format!("unknown flag '{name}'")),
            name => match lookup(name) {
                Some((id, _)) => names.push(id),
                None => return Err(format!("unknown experiment '{name}' — try 'list'")),
            },
        }
    }

    if help {
        usage();
        return Ok(None);
    }
    if list {
        if all || !names.is_empty() {
            return Err("'list' does not combine with experiment names".into());
        }
        for (name, _) in ALL {
            println!("{name}");
        }
        return Ok(None);
    }
    if all && !names.is_empty() {
        return Err("'all' already selects every experiment — drop the extra names".into());
    }
    let runs: Vec<(&'static str, fn())> = if all {
        ALL.to_vec()
    } else if names.is_empty() {
        return Err("nothing to run: give experiment names, 'all', or 'list'".into());
    } else {
        names
            .iter()
            .map(|n| lookup(n).expect("validated"))
            .collect()
    };
    Ok(Some(Cli {
        runs,
        timing,
        bench_json,
        jobs,
    }))
}

fn usage() {
    eprintln!("usage: experiments <selection> [--jobs N] [--timing] [--bench-json PATH]");
    eprintln!();
    eprintln!("selection (validated before anything runs):");
    eprintln!("  all            every experiment, in paper order");
    eprintln!("  list           print the available experiment ids and exit");
    eprintln!("  <id> [<id>..]  a subset, run in the order given");
    eprintln!("                 (fig1 fig3 fig4 fig6 fig9 fig12..fig18,");
    eprintln!("                  table1 table2 table3 table5, ablation,");
    eprintln!("                  coexistence, lifetime, fleet, ...)");
    eprintln!();
    eprintln!("flags:");
    eprintln!("  --jobs N, -j N worker threads for the simulation pool");
    eprintln!("                 (default: BRAIDIO_THREADS or the CPU count;");
    eprintln!("                  results are identical at any thread count)");
    eprintln!("  --timing       per-experiment wall-clock report on stderr");
    eprintln!("  --bench-json PATH");
    eprintln!("                 write the timing report as JSON (schema 2:");
    eprintln!("                  git sha, thread count, per-experiment seconds,");
    eprintln!("                  recorded headline metrics)");
    eprintln!();
    eprintln!("Regenerates the tables and figures of the Braidio paper (SIGCOMM'16)");
    eprintln!("from the simulation models in this workspace. See EXPERIMENTS.md for");
    eprintln!("the paper-vs-measured record.");
}
