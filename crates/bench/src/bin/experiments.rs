//! Experiment runner: regenerates every table and figure of the paper's
//! evaluation.
//!
//! ```text
//! experiments all          # everything, in paper order
//! experiments list         # show available experiment ids
//! experiments fig15 fig16  # a subset
//! ```

use braidio_bench::ALL;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.is_empty() || args.iter().any(|a| a == "--help" || a == "-h") {
        usage();
        return;
    }
    if args.iter().any(|a| a == "list") {
        for (name, _) in ALL {
            println!("{name}");
        }
        return;
    }
    if args.iter().any(|a| a == "all") {
        for (_, run) in ALL {
            run();
        }
        return;
    }
    for arg in &args {
        match ALL.iter().find(|(name, _)| name == arg) {
            Some((_, run)) => run(),
            None => {
                eprintln!("unknown experiment '{arg}' — try 'list'");
                std::process::exit(2);
            }
        }
    }
}

fn usage() {
    eprintln!(
        "usage: experiments <all | list | fig1 fig3 fig4 fig6 fig9 fig12..fig18 | table1 table2 table3 table5 | ablation>"
    );
    eprintln!();
    eprintln!("Regenerates the tables and figures of the Braidio paper (SIGCOMM'16)");
    eprintln!("from the simulation models in this workspace. See EXPERIMENTS.md for");
    eprintln!("the paper-vs-measured record.");
}
