//! Figure 14: energy efficiency and dynamic range at different distances —
//! how the feasible triangle deforms and collapses as the pair separates.

use crate::render::banner;
use braidio_mac::offload::options_at;
use braidio_mac::Regime;
use braidio_radio::characterization::Characterization;
use braidio_radio::Mode;
use braidio_units::Meters;

fn ratio_label(asym: f64) -> String {
    if asym >= 1.0 {
        format!("{:.0}:1", asym)
    } else {
        format!("1:{:.0}", 1.0 / asym)
    }
}

/// Regenerate Figure 14.
pub fn run() {
    banner(
        "Figure 14",
        "Efficiency corners and achievable asymmetry vs distance",
    );
    let ch = Characterization::braidio();
    println!(
        "{:>8} {:>7} {:>28} {:>28} {:>15}",
        "d (m)", "regime", "passive corner (rate, T:R)", "backscatter corner", "active corner"
    );
    for d in [0.3, 0.6, 0.9, 1.2, 1.8, 2.4, 2.7, 3.9, 4.2, 4.8, 5.1, 6.0] {
        let dist = Meters::new(d);
        let opts = options_at(&ch, dist);
        let corner = |mode: Mode| {
            opts.iter()
                .find(|o| o.mode == mode)
                .map(|o| format!("{:>5} {:>12}", o.rate.label(), ratio_label(o.asymmetry())))
                .unwrap_or_else(|| "unavailable".to_string())
        };
        println!(
            "{:>8.1} {:>7} {:>28} {:>28} {:>15}",
            d,
            format!("{:?}", Regime::classify(&ch, dist)),
            corner(Mode::Passive),
            corner(Mode::Backscatter),
            corner(Mode::Active)
        );
    }
    println!("\npaper corner labels: B 1:2546, C 1:4000, D 1:5600 (passive at 1M/100k/10k);");
    println!("E 3546:1, F 5571:1, G 7800:1 (backscatter); A 0.9524:1 (active)");
    println!("note: the paper labels efficiency ratios; TX:RX *power* ratios are their inverses,");
    println!("printed here per currently-available rate at each distance.");
}

#[cfg(test)]
mod tests {
    #[test]
    fn runs() {
        super::run();
    }
}
