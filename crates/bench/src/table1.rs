//! Table 1: transmitter/receiver power ratio of Bluetooth and BLE chips.

use crate::render::banner;
use braidio_radio::bluetooth::BluetoothChip;

/// Regenerate Table 1.
pub fn run() {
    banner("Table 1", "TX/RX power ratio of Bluetooth and BLE chips");
    println!(
        "{:>8} {:>14} {:>14} {:>14}",
        "chip", "transmit", "receive", "TX/RX ratio"
    );
    for chip in BluetoothChip::table1() {
        let (lo, hi) = chip.ratio_range();
        println!(
            "{:>8} {:>5.0}~{:<4.0}mW {:>5.0}~{:<4.0}mW {:>8.2}~{:<.2}",
            chip.name,
            chip.tx.0.milliwatts(),
            chip.tx.1.milliwatts(),
            chip.rx.0.milliwatts(),
            chip.rx.1.milliwatts(),
            lo,
            hi
        );
    }
    println!("\n=> a dynamic range of ~2x, against three orders of magnitude of battery asymmetry");
}

#[cfg(test)]
mod tests {
    #[test]
    fn runs() {
        super::run();
    }
}
