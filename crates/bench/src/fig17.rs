//! Figure 17: performance gain of Braidio over Bluetooth for
//! *bidirectional* traffic (equal data both ways).

use crate::render::{banner, matrix_values, print_matrix};
use braidio_mac::sim::{simulate_transfer, Policy, Traffic, TransferSetup};
use braidio_radio::devices::CATALOG;

/// One cell of the Fig. 17 matrix.
pub fn cell(tx: usize, rx: usize) -> f64 {
    let (e1, e2) = (CATALOG[tx].battery_wh, CATALOG[rx].battery_wh);
    let braidio = simulate_transfer(
        &TransferSetup::new(e1, e2, Policy::Braidio).with_traffic(Traffic::Bidirectional),
    );
    let bt = simulate_transfer(
        &TransferSetup::new(e1, e2, Policy::Bluetooth).with_traffic(Traffic::Bidirectional),
    );
    braidio.bits / bt.bits
}

/// Regenerate Figure 17.
pub fn run() {
    banner(
        "Figure 17",
        "Braidio / Bluetooth gain for bidirectional transfers",
    );
    let values = matrix_values(cell);
    print_matrix(&values);
    // The unidirectional comparison point is a fresh session on this
    // thread; give it a run id past the 10×10 sweep's 0..99 so its trace
    // identity cannot collide with a sweep item's.
    let uni = braidio_telemetry::with_run(CATALOG.len() as u32 * CATALOG.len() as u32, || {
        crate::fig15::cell(0, 9)
    });
    let bi = values[9 * CATALOG.len()]; // cell(0, 9)
    println!(
        "\nFuelBand<->MBP15: bidirectional {bi:.0}x vs unidirectional {uni:.0}x — the constrained"
    );
    println!("device backscatters when talking and listens passively when receiving, so the");
    println!("asymmetric pairs do slightly better than Fig. 15 (paper: same observation).");
}

#[cfg(test)]
mod tests {
    #[test]
    fn diagonal_similar_to_fig15() {
        let bi = super::cell(2, 2);
        assert!((bi - 1.43).abs() < 0.05, "bidirectional diagonal {bi}");
    }

    #[test]
    fn asymmetric_pair_at_least_unidirectional() {
        let bi = super::cell(0, 9);
        let uni = crate::fig15::cell(0, 9);
        assert!(bi > 0.95 * uni, "bi {bi} vs uni {uni}");
    }
}
