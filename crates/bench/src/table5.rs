//! Table 5: switching overhead in different modes.

use crate::render::banner;
use braidio_radio::switching::SwitchingOverhead;
use braidio_radio::{Mode, Role};
use braidio_units::{BitsPerSecond, Watts};

/// Regenerate Table 5.
pub fn run() {
    banner(
        "Table 5",
        "Switching overhead in different modes (energy per switch)",
    );
    let s = SwitchingOverhead::table5();
    println!("{:>12} {:>14} {:>14}", "mode", "TX (Wh)", "RX (Wh)");
    for mode in Mode::ALL {
        println!(
            "{:>12} {:>14.2e} {:>14.2e}",
            mode.label(),
            s.cost(mode, Role::Transmitter).watt_hours(),
            s.cost(mode, Role::Receiver).watt_hours()
        );
    }
    // The paper's negligibility claim, quantified at the worst case.
    let airtime = BitsPerSecond::KBPS_10.time_for_bits(2048.0);
    let packet = (Watts::from_microwatts(16.54) + Watts::from_milliwatts(129.0)) * airtime;
    let frac = s.both_sides(Mode::Backscatter).joules() / packet.joules();
    println!(
        "\nworst case (backscatter @10 kbps): switch = {:.1}% of one 256-B packet's link energy",
        100.0 * frac
    );
    println!("=> switching overhead is negligible in all modes");
}

#[cfg(test)]
mod tests {
    #[test]
    fn runs() {
        super::run();
    }
}
