//! Figure 9: the efficiency triangle — TX vs RX bits-per-joule of the
//! three modes, the feasible region, and the optimal point P for a 100:1
//! battery pair.

use crate::render::banner;
use braidio_mac::offload::{options_at, solve};
use braidio_radio::characterization::Characterization;
use braidio_radio::Mode;
use braidio_units::{Joules, Meters};

fn ratio_label(asym: f64) -> String {
    if asym >= 1.0 {
        format!("{:.4}:1", asym)
    } else {
        format!("1:{:.0}", 1.0 / asym)
    }
}

/// Regenerate Figure 9.
pub fn run() {
    banner(
        "Figure 9",
        "Dynamic range of power assignment (TX vs RX bits per joule)",
    );
    let ch = Characterization::braidio();
    let opts = options_at(&ch, Meters::new(0.3));

    println!(
        "{:>14} {:>16} {:>16} {:>14}",
        "corner", "TX bits/J", "RX bits/J", "T:R ratio"
    );
    for o in &opts {
        let label = match o.mode {
            Mode::Active => "A: Active",
            Mode::Passive => "B: Passive",
            Mode::Backscatter => "C: Backscatter",
        };
        println!(
            "{:>14} {:>16.3e} {:>16.3e} {:>14}",
            label,
            o.tx_cost.bits_per_joule(),
            o.rx_cost.bits_per_joule(),
            ratio_label(o.asymmetry())
        );
    }

    // The paper's worked point: a 100:1 battery pair lands on line BC.
    let plan = solve(
        &opts,
        Joules::from_watt_hours(100.0),
        Joules::from_watt_hours(1.0),
    )
    .expect("feasible");
    println!("\npoint P (battery ratio 100:1, on line BC):");
    println!(
        "  TX efficiency {:.3e} bits/J, RX efficiency {:.3e} bits/J",
        plan.tx_cost.bits_per_joule(),
        plan.rx_cost.bits_per_joule()
    );
    println!(
        "  braid: passive {:.4}, backscatter {:.4}, active {:.4}",
        plan.mode_fraction(Mode::Passive),
        plan.mode_fraction(Mode::Backscatter),
        plan.mode_fraction(Mode::Active)
    );
    println!(
        "  blended T:R power ratio = {} (target 100:1)",
        ratio_label(plan.asymmetry())
    );

    let max = opts.iter().map(|o| o.asymmetry()).fold(f64::MIN, f64::max);
    let min = opts.iter().map(|o| o.asymmetry()).fold(f64::MAX, f64::min);
    println!(
        "\nachievable span: {} .. {}  (paper: 1:2546 .. 3546:1 — seven orders of magnitude)",
        ratio_label(min),
        ratio_label(max)
    );
}

#[cfg(test)]
mod tests {
    #[test]
    fn runs() {
        super::run();
    }
}
