//! Shared terminal rendering: device-matrix tables and ASCII heat maps.

use braidio_radio::devices::{Device, CATALOG};

/// Print a banner for an experiment.
pub fn banner(id: &str, caption: &str) {
    println!("\n================================================================");
    println!("{id}: {caption}");
    println!("================================================================");
}

/// Format a gain value the way the paper's matrices do (3 significant
/// figures, no exponent).
pub fn gain_cell(g: f64) -> String {
    if g >= 100.0 {
        format!("{:>6.0}", g)
    } else if g >= 10.0 {
        format!("{:>6.1}", g)
    } else {
        format!("{:>6.2}", g)
    }
}

/// Print a 10×10 device matrix: `cell(tx_index, rx_index)` with the device
/// on the horizontal axis transmitting to the device on the vertical axis
/// (the paper's Figs. 15–17 layout).
pub fn device_matrix(cell: impl Fn(usize, usize) -> f64) {
    let short = |d: &Device| {
        d.name
            .split_whitespace()
            .map(|w| &w[..1])
            .collect::<String>()
    };
    print!("{:>16} ", "TX→ / RX↓");
    for tx in CATALOG.iter() {
        print!("{:>6} ", short(tx));
    }
    println!();
    for (iy, rx) in CATALOG.iter().enumerate() {
        print!("{:>16} ", rx.name.chars().take(16).collect::<String>());
        for (ix, _) in CATALOG.iter().enumerate() {
            print!("{} ", gain_cell(cell(ix, iy)));
        }
        println!();
    }
    println!("(columns: {} ... {})", CATALOG[0].name, CATALOG[9].name);
}

/// Render a row-major scalar field as an ASCII heat map (darker character =
/// weaker value), `nx` columns per row.
pub fn heatmap(values: &[f64], nx: usize, lo: f64, hi: f64) {
    const RAMP: &[u8] = b" .:-=+*#%@";
    for row in values.chunks(nx).rev() {
        let line: String = row
            .iter()
            .map(|&v| {
                let t = ((v - lo) / (hi - lo)).clamp(0.0, 1.0);
                RAMP[(t * (RAMP.len() - 1) as f64).round() as usize] as char
            })
            .collect();
        println!("|{line}|");
    }
}

/// A simple fixed-width series printout: distance-indexed values.
pub fn series(header: &str, xs: &[f64], ys: &[f64], fmt: impl Fn(f64) -> String) {
    println!("{header}");
    for (x, y) in xs.iter().zip(ys) {
        println!("  {:>7.2}  {}", x, fmt(*y));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gain_cell_widths() {
        assert_eq!(gain_cell(1.43), "  1.43");
        assert_eq!(gain_cell(35.6), "  35.6");
        assert_eq!(gain_cell(397.0), "   397");
    }

    #[test]
    fn heatmap_does_not_panic() {
        heatmap(&[0.0, 0.5, 1.0, 0.25], 2, 0.0, 1.0);
    }
}
