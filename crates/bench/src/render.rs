//! Shared terminal rendering: device-matrix tables and ASCII heat maps.

use braidio_pool as pool;
use braidio_radio::devices::{Device, CATALOG};

/// Print a banner for an experiment.
pub fn banner(id: &str, caption: &str) {
    println!("\n================================================================");
    println!("{id}: {caption}");
    println!("================================================================");
}

/// Format a gain value the way the paper's matrices do (3 significant
/// figures, no exponent).
pub fn gain_cell(g: f64) -> String {
    if g >= 100.0 {
        format!("{:>6.0}", g)
    } else if g >= 10.0 {
        format!("{:>6.1}", g)
    } else {
        format!("{:>6.2}", g)
    }
}

/// Evaluate all 100 cells of a 10×10 device matrix concurrently, returned
/// row-major (`values[iy * 10 + ix] == cell(ix, iy)`).
///
/// Cells are distributed over the work pool by index, so the result is
/// identical at any thread count (see `braidio_pool`).
pub fn matrix_values(cell: impl Fn(usize, usize) -> f64 + Sync) -> Vec<f64> {
    let n = CATALOG.len();
    pool::par_map_indexed(n * n, |i| {
        braidio_telemetry::with_run(i as u32, || cell(i % n, i / n))
    })
}

/// Print a row-major 10×10 device matrix as produced by [`matrix_values`]:
/// the device on the horizontal axis transmits to the device on the
/// vertical axis (the paper's Figs. 15–17 layout).
pub fn print_matrix(values: &[f64]) {
    let n = CATALOG.len();
    assert_eq!(values.len(), n * n, "expected a full {n}×{n} matrix");
    let short = |d: &Device| {
        d.name
            .split_whitespace()
            .map(|w| &w[..1])
            .collect::<String>()
    };
    print!("{:>16} ", "TX→ / RX↓");
    for tx in CATALOG.iter() {
        print!("{:>6} ", short(tx));
    }
    println!();
    for (iy, rx) in CATALOG.iter().enumerate() {
        print!("{:>16} ", rx.name.chars().take(16).collect::<String>());
        for ix in 0..n {
            print!("{} ", gain_cell(values[iy * n + ix]));
        }
        println!();
    }
    println!("(columns: {} ... {})", CATALOG[0].name, CATALOG[9].name);
}

/// Compute (in parallel) and print a 10×10 device matrix: `cell(tx_index,
/// rx_index)` with the device on the horizontal axis transmitting to the
/// device on the vertical axis.
pub fn device_matrix(cell: impl Fn(usize, usize) -> f64 + Sync) {
    print_matrix(&matrix_values(cell));
}

/// Render a row-major scalar field as an ASCII heat map (darker character =
/// weaker value), `nx` columns per row.
pub fn heatmap(values: &[f64], nx: usize, lo: f64, hi: f64) {
    const RAMP: &[u8] = b" .:-=+*#%@";
    for row in values.chunks(nx).rev() {
        let line: String = row
            .iter()
            .map(|&v| {
                let t = ((v - lo) / (hi - lo)).clamp(0.0, 1.0);
                RAMP[(t * (RAMP.len() - 1) as f64).round() as usize] as char
            })
            .collect();
        println!("|{line}|");
    }
}

/// A simple fixed-width series printout: distance-indexed values.
pub fn series(header: &str, xs: &[f64], ys: &[f64], fmt: impl Fn(f64) -> String) {
    println!("{header}");
    for (x, y) in xs.iter().zip(ys) {
        println!("  {:>7.2}  {}", x, fmt(*y));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gain_cell_widths() {
        assert_eq!(gain_cell(1.43), "  1.43");
        assert_eq!(gain_cell(35.6), "  35.6");
        assert_eq!(gain_cell(397.0), "   397");
    }

    #[test]
    fn heatmap_does_not_panic() {
        heatmap(&[0.0, 0.5, 1.0, 0.25], 2, 0.0, 1.0);
    }
}
