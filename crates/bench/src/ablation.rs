//! Ablation studies: quantify the design choices DESIGN.md calls out.
//!
//! * braid quantum — how many packets to dwell per mode before switching
//!   (Table 5 amortization vs plan-tracking granularity);
//! * carrier back-off — what a quieter carrier buys in power and costs in
//!   range (the §3.1 "reduced sensitivity" trade, made quantitative);
//! * antenna diversity order — 1 vs 2 vs 3 receive antennas against the
//!   phase-cancellation nulls;
//! * charge-pump stages — the §3.2 boost-vs-output-impedance tension.

use crate::render::banner;
use braidio_circuits::carrier::CarrierEmitter;
use braidio_circuits::chain::PassiveReceiverChain;
use braidio_circuits::charge_pump::DicksonChargePump;
use braidio_mac::sim::{simulate_transfer, Policy, TransferSetup};
use braidio_radio::characterization::{Characterization, Rate};
use braidio_radio::Mode;
use braidio_rfsim::geometry::Point;
use braidio_rfsim::phase_cancel::BackscatterScene;
use braidio_units::Hertz;

/// Braid-quantum sweep: switching-overhead loss vs dwell length.
pub fn braid_quantum() {
    banner(
        "Ablation: braid quantum",
        "Throughput loss vs packets-per-dwell (equal batteries, 0.5 m)",
    );
    // The ideal (overhead-free) bits for this pair.
    let ideal = {
        let mut s = TransferSetup::new(1.0, 1.0, Policy::Braidio);
        s.braid_quantum_packets = 1e12; // effectively no switching
        simulate_transfer(&s).bits
    };
    println!("{:>10} {:>14} {:>12}", "quantum", "bits", "loss");
    for quantum in [1.0, 3.0, 10.0, 30.0, 100.0, 300.0, 1000.0, 10_000.0] {
        let mut s = TransferSetup::new(1.0, 1.0, Policy::Braidio);
        s.braid_quantum_packets = quantum;
        let bits = simulate_transfer(&s).bits;
        println!(
            "{:>10.0} {:>14.4e} {:>11.2}%",
            quantum,
            bits,
            100.0 * (1.0 - bits / ideal)
        );
    }
    println!("\nper-packet braiding pays ~27% to Table 5 switch energy; the default dwell of");
    println!("100 packets keeps the loss under 1% while still tracking the plan fractions.");
}

/// Carrier back-off sweep: range vs carrier power per mode.
pub fn carrier_backoff() {
    banner(
        "Ablation: carrier back-off",
        "Operational range and carrier draw vs programmed RF output (100 kbps)",
    );
    let ch = Characterization::braidio();
    let emitter = CarrierEmitter::si4432();
    let gamma = ch.gamma_star();
    println!(
        "{:>8} {:>12} {:>14} {:>17}",
        "RF dBm", "DC draw", "passive range", "backscatter range"
    );
    for dbm in [1.0, 4.0, 7.0, 10.0, 13.0, 16.0] {
        let rf = braidio_units::Watts::from_dbm(dbm);
        let draw = emitter.draw_at(rf);
        let range = |mode: Mode| {
            let sens = ch.detector_noise(mode, Rate::Kbps100).expect("calibrated") * gamma;
            ch.budget
                .range_for_sensitivity(mode.link_kind(), rf, sens)
                .map(|m| format!("{:.2} m", m.meters()))
                .unwrap_or_else(|| "-".into())
        };
        println!(
            "{:>8.0} {:>12} {:>14} {:>17}",
            dbm,
            format!("{draw}"),
            range(Mode::Passive),
            range(Mode::Backscatter)
        );
    }
    println!("\none-way links lose range as 10^(Δ/20), backscatter as 10^(Δ/40): backing the");
    println!("carrier off 6 dB saves ~75 mW but cuts the backscatter regime from 1.8 m to 1.3 m.");
}

/// Diversity-order sweep: worst-case SNR over the null band.
pub fn diversity_order() {
    banner(
        "Ablation: antenna diversity order",
        "Worst-case SNR across the 1.3–2.0 m null band vs number of RX antennas",
    );
    let base = BackscatterScene::paper_fig4();
    let two = BackscatterScene::paper_fig4().with_diversity();
    let three = {
        let mut s = BackscatterScene::paper_fig4().with_diversity();
        // Third antenna: λ/8 further along the same perpendicular axis.
        let spacing = s.frequency.wavelength() / 8.0;
        let first = s.rx_antennas[1];
        s.rx_antennas
            .push(Point::new(first.x, first.y + spacing.meters()));
        s
    };
    println!(
        "{:>10} {:>16} {:>14}",
        "antennas", "worst SNR (dB)", "mean SNR (dB)"
    );
    for (n, scene) in [(1usize, &base), (2, &two), (3, &three)] {
        let mut worst = f64::MAX;
        let mut sum = 0.0;
        let mut count = 0;
        for i in 0..600 {
            let x = 1.3 + 0.7 * i as f64 / 599.0;
            let snr = scene.snr_diversity(Point::new(x, 0.5)).1.db();
            worst = worst.min(snr);
            sum += snr;
            count += 1;
        }
        println!("{:>10} {:>16.1} {:>14.1}", n, worst, sum / count as f64);
    }
    println!("\nthe second antenna buys the big jump (~50 dB at the worst null, since the");
    println!("nulls decorrelate at λ/8); a third lifts the rare residual null but adds only");
    println!("~2 dB of mean SNR — weak return on the board space a 47 mm PCB does not have,");
    println!("matching Braidio's choice of exactly two (Table 4).");
}

/// Charge-pump stage sweep: sensitivity vs boost/impedance trade.
pub fn pump_stages() {
    banner(
        "Ablation: charge-pump stages",
        "Chain sensitivity vs number of Dickson stages (boost fights output impedance)",
    );
    println!(
        "{:>8} {:>14} {:>16} {:>16}",
        "stages", "impedance", "sens @100k", "sens @1M"
    );
    for n in [1usize, 2, 3, 4, 6, 8] {
        let mut chain = PassiveReceiverChain::braidio();
        chain.pump = DicksonChargePump::multi_stage(n);
        // §3.2: output impedance grows with stages (junction-resistance
        // dominated at weak signals) — model it proportional to N.
        chain.source_impedance = 50e3 * n as f64;
        let s100k = chain.sensitivity_dbm(Hertz::from_khz(100.0));
        let s1m = chain.sensitivity_dbm(Hertz::from_mhz(1.0));
        println!(
            "{:>8} {:>11.0} kΩ {:>13.1} dBm {:>13.1} dBm",
            n,
            chain.source_impedance / 1e3,
            s100k,
            s1m
        );
    }
    println!("\nmore stages keep helping at 100 kbps, but at 1 Mbps the rising source impedance");
    println!("against the amplifier's 1.8 pF input eats the boost — the \"circuit has to be");
    println!("tuned carefully\" sentence of §3.2, quantified. Braidio uses 2 stages.");
}

/// SAW-filter ablation: how out-of-band interference degrades the
/// detector-based modes with and without the front-end filter.
pub fn saw_filter() {
    banner(
        "Ablation: SAW front-end filter",
        "Backscatter range under a -20 dBm cellular interferer, with/without the SF2049E",
    );
    use braidio_rfsim::interference::{Interferer, SawFilter};
    let ch = Characterization::braidio();
    let gamma = ch.gamma_star();
    let saw = SawFilter::sf2049e();
    println!(
        "{:>22} {:>16} {:>18}",
        "interferer @ antenna", "without SAW", "with SAW"
    );
    for dbm in [-40.0, -30.0, -20.0, -10.0] {
        let jam = Interferer::cellular(braidio_units::Watts::from_dbm(dbm));
        let range_with_noise = |extra: braidio_units::Watts| {
            // The interferer raises the detector's effective floor; the
            // backscatter link closes where rx >= gamma * (floor + extra).
            let floor = ch
                .detector_noise(Mode::Backscatter, Rate::Kbps100)
                .expect("calibrated");
            let sens = (floor + extra) * gamma;
            ch.budget
                .range_for_sensitivity(Mode::Backscatter.link_kind(), ch.carrier_rf, sens)
                .map(|m| format!("{:.2} m", m.meters()))
                .unwrap_or_else(|| "link dead".into())
        };
        println!(
            "{:>18} dBm {:>16} {:>18}",
            dbm,
            range_with_noise(jam.power),
            range_with_noise(saw.residual(jam))
        );
    }
    println!("\nthe passive SAW buys 50 dB of cellular rejection for zero power — without it");
    println!("a phone transmitting nearby collapses the backscatter regime entirely (§3.2).");
}

/// Run all ablations.
pub fn run() {
    braid_quantum();
    carrier_backoff();
    diversity_order();
    pump_stages();
    saw_filter();
}

#[cfg(test)]
mod tests {
    #[test]
    fn ablations_run() {
        super::run();
    }
}
