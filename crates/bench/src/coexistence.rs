//! Coexistence study: a second Braidio pair's carrier as the interferer.
//!
//! Quantifies Table 3's admitted weakness ("may be interfered by in-band
//! signal") for the worst realistic in-band source — another Braidio.

use crate::render::banner;
use braidio_mac::coexistence::{ChannelRelation, Coexistence};
use braidio_radio::characterization::Rate;
use braidio_radio::Mode;
use braidio_units::Meters;

/// Run the coexistence study.
pub fn run() {
    banner(
        "Coexistence",
        "Victim pair at 1 m; a second Braidio carrier at varying distance (adjacent channel)",
    );
    println!(
        "{:>14} {:>20} {:>16} {:>16}",
        "neighbour at", "backscatter penalty", "passive penalty", "victim modes"
    );
    for d in [1.0, 3.0, 10.0, 30.0, 100.0] {
        let c = Coexistence::braidio_neighbor(Meters::new(d));
        let pair = Meters::new(1.0);
        let bs = c.snr_penalty(Mode::Backscatter, Rate::Kbps100, pair);
        let pv = c.snr_penalty(Mode::Passive, Rate::Kbps100, pair);
        let modes = format!(
            "bs:{} pass:{}",
            c.victim_max_rate(Mode::Backscatter, pair)
                .map(|r| r.label())
                .unwrap_or("-"),
            c.victim_max_rate(Mode::Passive, pair)
                .map(|r| r.label())
                .unwrap_or("-"),
        );
        println!(
            "{:>12.0} m {:>20} {:>16} {:>16}",
            d,
            format!("{bs}"),
            format!("{pv}"),
            modes
        );
    }

    println!(
        "\nchannel relation matters (neighbour fixed at 5 m, backscatter @100k, pair at 1 m):"
    );
    for rel in [
        ChannelRelation::CoChannel,
        ChannelRelation::AdjacentChannel,
        ChannelRelation::OutOfBand,
    ] {
        let mut c = Coexistence::braidio_neighbor(Meters::new(5.0));
        c.relation = rel;
        println!(
            "  {:<16} penalty {}",
            format!("{rel:?}"),
            c.snr_penalty(Mode::Backscatter, Rate::Kbps100, Meters::new(1.0))
        );
    }

    println!("\nsuffer vs TDMA (victim throughput, bits/s):");
    println!(
        "{:>14} {:>16} {:>12} {:>12}",
        "neighbour at", "mode", "suffer", "TDMA 50%"
    );
    for (d, mode) in [
        (2.0, Mode::Backscatter),
        (2.0, Mode::Passive),
        (80.0, Mode::Passive),
    ] {
        let c = Coexistence::braidio_neighbor(Meters::new(d));
        let (suffer, tdma) = c.suffer_vs_tdma(mode, Meters::new(0.5));
        println!(
            "{:>12.0} m {:>16} {:>12.0} {:>12.0}",
            d,
            mode.label(),
            suffer,
            tdma
        );
    }

    println!("\n=> distance cannot save backscatter from an uncoordinated in-band carrier:");
    println!("   a one-way CW always dwarfs a two-way reflection. Multi-pair deployments");
    println!("   must coordinate — the pressure that produced Gen2's dense-reader mode.");
}

#[cfg(test)]
mod tests {
    #[test]
    fn runs() {
        super::run();
    }
}
