//! Figure 16: gain of Braidio over the *best* of its three modes used in
//! isolation — the value of switching.

use crate::render::{banner, matrix_values, print_matrix};
use braidio_mac::sim::{simulate_transfer, Policy, TransferSetup};
use braidio_radio::devices::CATALOG;

/// One cell of the Fig. 16 matrix.
pub fn cell(tx: usize, rx: usize) -> f64 {
    let (e1, e2) = (CATALOG[tx].battery_wh, CATALOG[rx].battery_wh);
    let braidio = simulate_transfer(&TransferSetup::new(e1, e2, Policy::Braidio));
    let best = simulate_transfer(&TransferSetup::new(e1, e2, Policy::BestSingleMode));
    braidio.bits / best.bits
}

/// Regenerate Figure 16.
pub fn run() {
    banner(
        "Figure 16",
        "Braidio / best-single-mode gain (the benefit of braiding itself)",
    );
    // Compute the matrix once and reuse it for the off-diagonal summary.
    let values = matrix_values(cell);
    print_matrix(&values);
    println!("\nhighly asymmetric pairs converge to 1.0x (a single mode dominates);");
    println!(
        "near-symmetric pairs gain most from switching: max off-diagonal here = {:.2}x (paper: up to 1.78x)",
        max_off_diagonal(&values)
    );
}

fn max_off_diagonal(values: &[f64]) -> f64 {
    let n = CATALOG.len();
    let mut max = 0.0f64;
    for rx in 0..n {
        for tx in 0..n {
            if tx != rx {
                max = max.max(values[rx * n + tx]);
            }
        }
    }
    max
}

#[cfg(test)]
mod tests {
    #[test]
    fn never_below_one() {
        for (tx, rx) in [(0, 0), (0, 9), (4, 5), (9, 0)] {
            let g = super::cell(tx, rx);
            assert!(g >= 0.999, "cell ({tx},{rx}) = {g}");
        }
    }

    #[test]
    fn switching_helps_near_symmetric_pairs() {
        // iPhone 6S -> iPhone 6 Plus.
        let g = super::cell(4, 5);
        assert!(g > 1.3, "gain {g}");
    }
}
