//! Experiment regenerators: one module per table/figure of the paper's
//! evaluation, plus shared formatting helpers.
//!
//! Run them through the `experiments` binary:
//!
//! ```text
//! cargo run --release -p braidio-bench --bin experiments -- all
//! cargo run --release -p braidio-bench --bin experiments -- fig15
//! ```
//!
//! Each module exposes a `run()` that computes the experiment's data
//! through the library (never from hard-coded results) and prints it in the
//! same rows/series the paper reports. EXPERIMENTS.md records the
//! paper-vs-measured comparison for every entry.

#![warn(missing_docs)]

pub mod ablation;
pub mod analyze;
pub mod coexistence;
pub mod dynamic;
pub mod fig1;
pub mod fig12;
pub mod fig13;
pub mod fig14;
pub mod fig15;
pub mod fig16;
pub mod fig17;
pub mod fig18;
pub mod fig3;
pub mod fig4;
pub mod fig6;
pub mod fig9;
pub mod fleet;
pub mod lifetime;
pub mod mcber;
pub mod metrics;
pub mod render;
pub mod table1;
pub mod table2;
pub mod table3;
pub mod table5;
pub mod validation;

/// All experiment names, in paper order.
pub const ALL: &[(&str, fn())] = &[
    ("fig1", fig1::run),
    ("table1", table1::run),
    ("table2", table2::run),
    ("table3", table3::run),
    ("fig3", fig3::run),
    ("fig4", fig4::run),
    ("fig6", fig6::run),
    ("fig9", fig9::run),
    ("table5", table5::run),
    ("fig12", fig12::run),
    ("fig13", fig13::run),
    ("fig14", fig14::run),
    ("fig15", fig15::run),
    ("fig16", fig16::run),
    ("fig17", fig17::run),
    ("fig18", fig18::run),
    ("ablation", ablation::run),
    ("validation", validation::run),
    ("dynamic", dynamic::run),
    ("coexistence", coexistence::run),
    ("lifetime", lifetime::run),
    ("fleet", fleet::run),
];

/// Hidden experiments: runnable by name but excluded from `all`, so the
/// default output stays byte-stable while CI and developers can still
/// reach them (e.g. the `mcber` low-bitrate regression probe).
pub const HIDDEN: &[(&str, fn())] = &[("mcber", mcber::run)];
