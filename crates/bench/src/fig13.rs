//! Figure 13: BER over distance for the backscatter and passive-receiver
//! modes at 10 kbps / 100 kbps / 1 Mbps.

use crate::render::banner;
use braidio_radio::characterization::{Characterization, Rate};
use braidio_radio::Mode;
use braidio_units::Meters;

/// Regenerate Figure 13.
pub fn run() {
    banner(
        "Figure 13",
        "BER vs distance for backscatter and passive modes at three bitrates",
    );
    let ch = Characterization::braidio();
    let configs = [
        (Mode::Backscatter, Rate::Mbps1),
        (Mode::Backscatter, Rate::Kbps100),
        (Mode::Backscatter, Rate::Kbps10),
        (Mode::Passive, Rate::Mbps1),
        (Mode::Passive, Rate::Kbps100),
        (Mode::Passive, Rate::Kbps10),
    ];

    print!("{:>7}", "d (m)");
    for (m, r) in configs {
        print!(
            " {:>13}",
            format!("{}@{}", &m.label()[..4.min(m.label().len())], r.label())
        );
    }
    println!();
    for i in 0..=24 {
        let d = Meters::new(0.25 * i as f64);
        print!("{:>7.2}", d.meters());
        for (m, r) in configs {
            print!(" {:>13.3e}", ch.ber(m, r, d));
        }
        println!();
    }

    println!("\noperational ranges (BER < 1e-2):");
    for (m, r) in configs {
        let range = ch.range(m, r).expect("in range somewhere");
        println!(
            "  {:>12}@{:<4}  {:.2} m",
            m.label(),
            r.label(),
            range.meters()
        );
    }
    println!("(paper anchors: backscatter 0.9/1.8/2.4 m; passive 3.9/4.2/5.1 m; active > 6 m)");
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn runs() {
        super::run();
    }

    #[test]
    fn curve_family_is_ordered_like_the_paper() {
        // At any distance, within a mode, slower rates have lower BER; and
        // passive beats backscatter at every rate past the near field.
        let ch = Characterization::braidio();
        for d in [1.0, 2.0, 3.0] {
            let dist = Meters::new(d);
            for mode in [Mode::Backscatter, Mode::Passive] {
                let b1m = ch.ber(mode, Rate::Mbps1, dist);
                let b100k = ch.ber(mode, Rate::Kbps100, dist);
                let b10k = ch.ber(mode, Rate::Kbps10, dist);
                assert!(b1m >= b100k && b100k >= b10k, "{mode:?} at {d} m");
            }
            assert!(
                ch.ber(Mode::Passive, Rate::Kbps100, dist)
                    <= ch.ber(Mode::Backscatter, Rate::Kbps100, dist)
            );
        }
    }
}
