//! Day-in-the-life lifetimes: realistic duty-cycled workloads instead of
//! the saturated transfers of Figs. 15–18.
//!
//! A wearable syncs a few megabytes a day and idles the rest; idle
//! listening then competes with per-bit cost. Braidio wins twice — carrier
//! offload on the transfer, the passive wake-up receiver while idle.

use crate::render::banner;
use braidio_mac::duty::DailyWorkload;
use braidio_mac::offload::solve_at;
use braidio_radio::characterization::Characterization;
use braidio_radio::devices::{self, Device};
use braidio_units::{Joules, Meters};

fn braidio_days(wearable: Device, hub: Device, bits_per_day: f64) -> f64 {
    let plan = solve_at(
        &Characterization::braidio(),
        Meters::new(0.5),
        Joules::from_watt_hours(wearable.battery_wh),
        Joules::from_watt_hours(hub.battery_wh),
    )
    .expect("in range");
    DailyWorkload::braidio(&plan, bits_per_day)
        .lifetime_days(Joules::from_watt_hours(wearable.battery_wh))
}

fn bluetooth_days(wearable: Device, bits_per_day: f64) -> f64 {
    DailyWorkload::bluetooth(bits_per_day)
        .lifetime_days(Joules::from_watt_hours(wearable.battery_wh))
}

/// Run the lifetime study.
pub fn run() {
    banner(
        "Lifetime",
        "Radio-subsystem lifetime under daily sync workloads (wearable -> phone, 0.5 m)",
    );
    println!(
        "{:>16} {:>12} {:>14} {:>14} {:>8}",
        "wearable", "MB/day", "Bluetooth", "Braidio", "gain"
    );
    for wearable in [
        devices::NIKE_FUEL_BAND,
        devices::PEBBLE_WATCH,
        devices::APPLE_WATCH,
        devices::PIVOTHEAD,
    ] {
        for mb in [1.0, 20.0, 400.0] {
            let bits = mb * 8e6;
            let bt = bluetooth_days(wearable, bits);
            let br = braidio_days(wearable, devices::IPHONE_6S, bits);
            println!(
                "{:>16} {:>12.0} {:>11.1} d {:>11.1} d {:>7.1}x",
                wearable.name,
                mb,
                bt,
                br,
                br / bt
            );
        }
    }
    println!("\n(radio subsystem only, as in §6.3: \"the results only consider the");
    println!("communication subsystem\". Light workloads are idle-dominated — the wake-up");
    println!("receiver's 50 µW vs LPL's ~380 µW; heavy workloads are transfer-dominated —");
    println!("carrier offload's ~0.2 nJ/bit vs Bluetooth's ~87 nJ/bit at the wearable.)");
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn runs() {
        super::run();
    }

    #[test]
    fn braidio_always_outlives_bluetooth_here() {
        for mb in [1.0, 20.0, 400.0] {
            let bits = mb * 8e6;
            let bt = bluetooth_days(devices::APPLE_WATCH, bits);
            let br = braidio_days(devices::APPLE_WATCH, devices::IPHONE_6S, bits);
            assert!(br > bt, "{mb} MB/day: {br} vs {bt}");
        }
    }

    #[test]
    fn heavier_workloads_shorten_life() {
        let light = braidio_days(devices::APPLE_WATCH, devices::IPHONE_6S, 8e6);
        let heavy = braidio_days(devices::APPLE_WATCH, devices::IPHONE_6S, 8e8);
        assert!(light > heavy);
    }
}
