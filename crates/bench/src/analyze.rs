//! Offline trace analyzer: reconstruct per-session causal timelines from
//! a schema-1 telemetry JSONL trace (`experiments analyze <trace.jsonl>`).
//!
//! The event trace answers "what happened"; this module answers "was it
//! healthy, and where did the time and energy go" without re-running the
//! simulation. It reuses the sink's parser and validator
//! ([`sink::parse_field`], [`sink::validate_jsonl_full`])
//! so the analyzer and the CI gate can never disagree about what a line
//! means, then folds the stream into:
//!
//! * **per-phase dwell histograms** — for every session with a lifecycle
//!   chain, how long it sat in each phase (the final open interval runs
//!   to the unit's trace end, so a session's dwells always sum to its
//!   observed lifetime);
//! * **time-to-first-delivery** — first `quantum_delivered` minus the
//!   session's arrival (`admitted.t − latency` when admitted, else its
//!   first event);
//! * **per-device energy waterfalls** — `energy_debit` folded per device
//!   ([`sink::fold_energy_jsonl`]), largest spenders first;
//! * **anomaly flags** — every validator violation, sessions stuck longer
//!   than a threshold in a *transitional* phase (init/probe/cooldown;
//!   `live`, `degrade`, `dead` and `warm` are legitimate steady states),
//!   carrier grant/release imbalances, and ledger drift (plain vs
//!   compensated energy fold disagreeing beyond 1e-9 relative).
//!
//! Everything is a pure function of the trace bytes, so the report is as
//! deterministic as the trace — byte-identical across `--jobs` for engine
//! traces.

use crate::metrics::Histogram;
use braidio_telemetry::sink;
use braidio_telemetry::timeseries::{SAMPLE_PHASES, SAMPLE_PHASE_NAMES};
use std::collections::BTreeMap;
use std::fmt::Write as _;

/// Relative disagreement between the plain and compensated energy folds
/// beyond which a device's ledger is flagged as drifted.
pub const LEDGER_DRIFT_REL: f64 = 1e-9;

/// Phases a session may only pass *through*: sitting in one longer than
/// the stuck threshold is flagged. `live`/`degrade` are productive steady
/// states, `dead` is terminal, and `warm` can legitimately last a whole
/// horizon (warm-up quanta move real bits, and under a fleet-deep TDMA
/// token sessions provably age out in Warm — see EXPERIMENTS.md's churn
/// rung), so only the genuinely bounded phases are checked: `init`
/// (pre-admission), `probe` (a few probe quanta) and `cooldown` (a fixed
/// back-off timer).
const TRANSITIONAL: [&str; 3] = ["init", "probe", "cooldown"];

/// Analyzer knobs.
#[derive(Debug, Clone, Copy)]
pub struct AnalyzeOptions {
    /// A *closed* interval in a transitional phase longer than this many
    /// simulated seconds flags the session as stuck (the final open
    /// interval is exempt — truncation at the horizon is not stuckness).
    pub stuck_s: f64,
}

impl Default for AnalyzeOptions {
    fn default() -> Self {
        AnalyzeOptions { stuck_s: 30.0 }
    }
}

/// One reconstructed session (a `p<N>` track).
#[derive(Debug, Clone)]
pub struct SessionSummary {
    /// Identity triple of the session's pair track.
    pub run: u32,
    /// Unit within the run.
    pub unit: u32,
    /// Track code (`p<N>`).
    pub track: String,
    /// Session start: `admitted.t − latency` when admitted, else the
    /// session's first event.
    pub start: f64,
    /// End of the session's unit (max event time in the unit) — the final
    /// open phase interval extends here.
    pub end: f64,
    /// Seconds spent per phase, [`SAMPLE_PHASE_NAMES`] order; all zeros
    /// for sessions without a lifecycle chain (closed scenarios).
    pub dwell: [f64; SAMPLE_PHASES],
    /// Whether the session declared lifecycle phases.
    pub has_phases: bool,
    /// First `quantum_delivered` minus `start`, if it ever delivered.
    pub ttfd: Option<f64>,
    /// `session_dead` reason code, if the session ended.
    pub death: Option<String>,
}

/// The full analysis of one trace.
#[derive(Debug, Clone)]
pub struct Analysis {
    /// Event lines parsed (the validator's count).
    pub events: usize,
    /// Distinct identities seen.
    pub tracks: usize,
    /// Latest event time in the trace.
    pub trace_end: f64,
    /// Reconstructed sessions in identity order.
    pub sessions: Vec<SessionSummary>,
    /// Sessions that were admitted.
    pub admitted: usize,
    /// `session_dead` counts by reason code, sorted by code.
    pub deaths: BTreeMap<String, usize>,
    /// Dwell histograms per phase, [`SAMPLE_PHASE_NAMES`] order.
    pub dwell: [Histogram; SAMPLE_PHASES],
    /// Time-to-first-delivery histogram across sessions.
    pub ttfd: Histogram,
    /// Per-device energy: `(run, track, plain joules, |plain − kahan|
    /// relative drift)`, identity order.
    pub energy: Vec<(u32, String, f64, f64)>,
    /// Every anomaly flag, validator violations first.
    pub anomalies: Vec<String>,
}

/// Running per-session state while scanning the stream.
#[derive(Default)]
struct SessionState {
    first_t: Option<f64>,
    admitted_at: Option<f64>,
    latency: Option<f64>,
    phase: Option<String>,
    phase_since: Option<f64>,
    dwell: [f64; SAMPLE_PHASES],
    first_delivery: Option<f64>,
    death: Option<String>,
    grants: u64,
    releases: u64,
}

fn phase_index(code: &str) -> Option<usize> {
    SAMPLE_PHASE_NAMES.iter().position(|&p| p == code)
}

/// Analyze a schema-1 JSONL trace. `Err` only when the trace is not
/// analyzable at all (empty or wrong stream header); line-level violations
/// become anomaly flags instead, so a damaged trace still yields a report.
pub fn analyze(jsonl: &str, opts: &AnalyzeOptions) -> Result<Analysis, String> {
    let report = sink::validate_jsonl_full(jsonl);
    if report.summary.events == 0 && !report.violations.is_empty() {
        // Nothing parsed: empty trace or a foreign/bad header.
        if report.violations[0] == "empty trace" || report.violations[0].starts_with("bad header") {
            return Err(report.violations[0].clone());
        }
    }
    let mut anomalies = report.violations.clone();

    // Pass 1: per-unit trace end (the close-out instant for open phase
    // intervals) and the global end.
    let mut unit_end: BTreeMap<(u32, u32), f64> = BTreeMap::new();
    let mut trace_end = 0.0f64;
    let parsed_line = |line: &str| -> Option<(u32, u32, String, f64, String)> {
        let run: u32 = sink::parse_field(line, "run")?.parse().ok()?;
        let unit: u32 = sink::parse_field(line, "unit")?.parse().ok()?;
        let track = sink::parse_field(line, "track")?.to_string();
        let t: f64 = sink::parse_field(line, "t")?.parse().ok()?;
        let ev = sink::parse_field(line, "ev")?.to_string();
        Some((run, unit, track, t, ev))
    };
    for line in jsonl.lines().skip(1) {
        if let Some((run, unit, _, t, _)) = parsed_line(line) {
            let e = unit_end.entry((run, unit)).or_insert(0.0);
            *e = e.max(t);
            trace_end = trace_end.max(t);
        }
    }

    // Pass 2: fold per-session state in stream order.
    let mut state: BTreeMap<(u32, u32, String), SessionState> = BTreeMap::new();
    for line in jsonl.lines().skip(1) {
        let Some((run, unit, track, t, ev)) = parsed_line(line) else {
            continue; // already flagged by the validator
        };
        if !track.starts_with('p') {
            continue;
        }
        let s = state.entry((run, unit, track)).or_default();
        s.first_t.get_or_insert(t);
        match ev.as_str() {
            // A roaming session may be re-admitted at another hub; its
            // arrival is the *first* admission minus its latency.
            "admitted" if s.admitted_at.is_none() => {
                s.admitted_at = Some(t);
                s.latency = sink::parse_field(line, "latency").and_then(|v| v.parse().ok());
            }
            "phase_change" => {
                let (from, to) = (
                    sink::parse_field(line, "from")
                        .unwrap_or("init")
                        .to_string(),
                    sink::parse_field(line, "to").unwrap_or("init").to_string(),
                );
                // Close the interval being left. A chain's first change
                // anchors at the session start (set below once known), so
                // phase_since falls back to this event's own time there.
                let since = s.phase_since.unwrap_or(t);
                if let Some(i) = phase_index(&from) {
                    s.dwell[i] += t - since;
                }
                s.phase = Some(to);
                s.phase_since = Some(t);
            }
            "quantum_delivered" => {
                s.first_delivery.get_or_insert(t);
            }
            "session_dead" => {
                s.death = sink::parse_field(line, "reason").map(str::to_string);
            }
            "carrier_grant" => s.grants += 1,
            "carrier_release" => s.releases += 1,
            _ => {}
        }
    }

    // Assemble sessions, histograms and anomaly flags.
    let mut sessions = Vec::with_capacity(state.len());
    let mut dwell: [Histogram; SAMPLE_PHASES] = Default::default();
    let mut ttfd = Histogram::new();
    let mut admitted = 0usize;
    let mut deaths: BTreeMap<String, usize> = BTreeMap::new();
    for ((run, unit, track), mut s) in state {
        let end = unit_end.get(&(run, unit)).copied().unwrap_or(0.0);
        // Arrival can never postdate the first observed event, so clamp:
        // this keeps each session's dwells summing exactly to `end − start`
        // even on damaged traces.
        let first_t = s.first_t.unwrap_or(0.0);
        let start = match (s.admitted_at, s.latency) {
            (Some(at), Some(lat)) => (at - lat).min(first_t),
            _ => first_t,
        };
        if s.admitted_at.is_some() {
            admitted += 1;
        }
        if let Some(reason) = &s.death {
            *deaths.entry(reason.clone()).or_insert(0) += 1;
        }
        let has_phases = s.phase.is_some();
        if has_phases {
            // Close the final open interval at the unit's end.
            if let (Some(phase), Some(since)) = (s.phase.as_deref(), s.phase_since) {
                if let Some(i) = phase_index(phase) {
                    s.dwell[i] += (end - since).max(0.0);
                }
            }
            // Re-anchor the chain's start: the fold credited nothing
            // before the first phase_change, but the track sat in init
            // from `start` until then.
            let covered: f64 = s.dwell.iter().sum();
            let total = (end - start).max(0.0);
            if total > covered {
                s.dwell[0] += total - covered;
            }
            for (h, &d) in dwell.iter_mut().zip(&s.dwell) {
                h.observe(d.max(0.0));
            }
            // Stuck check on closed transitional intervals: a session's
            // *total* time in a transitional phase bounds every closed
            // interval, so flag on the total minus any final open tail
            // (exempt by construction: the tail was added above only to
            // the phase the session ended in).
            for (i, name) in SAMPLE_PHASE_NAMES.iter().enumerate() {
                if !TRANSITIONAL.contains(name) {
                    continue;
                }
                let mut closed = s.dwell[i];
                if s.phase.as_deref() == Some(name) {
                    // Ends in this phase: its final open interval is the
                    // tail back to phase_since — exempt.
                    closed -= (end - s.phase_since.unwrap_or(end)).max(0.0);
                }
                if closed > opts.stuck_s {
                    anomalies.push(format!(
                        "session ({run},{unit},{track}) stuck {closed}s in \"{name}\" \
                         (threshold {}s)",
                        opts.stuck_s
                    ));
                }
            }
        }
        if s.grants != s.releases {
            anomalies.push(format!(
                "grant/release imbalance on ({run},{unit},{track}): \
                 {} grants vs {} releases",
                s.grants, s.releases
            ));
        }
        let ttfd_s = s.first_delivery.map(|d| (d - start).max(0.0));
        if let Some(v) = ttfd_s {
            ttfd.observe(v);
        }
        sessions.push(SessionSummary {
            run,
            unit,
            track,
            start,
            end,
            dwell: s.dwell,
            has_phases,
            ttfd: ttfd_s,
            death: s.death,
        });
    }

    // Energy waterfall + ledger drift.
    let mut energy = Vec::new();
    for ((run, track), (plain, kahan)) in sink::fold_energy_jsonl(jsonl) {
        let scale = plain.abs().max(kahan.abs());
        let drift = if scale > 0.0 {
            (plain - kahan).abs() / scale
        } else {
            0.0
        };
        if drift > LEDGER_DRIFT_REL {
            anomalies.push(format!(
                "ledger drift on ({run},{track}): plain {plain} vs compensated {kahan} \
                 (relative {drift:e})"
            ));
        }
        energy.push((run, track, plain, drift));
    }

    Ok(Analysis {
        events: report.summary.events,
        tracks: report.summary.tracks,
        trace_end,
        sessions,
        admitted,
        deaths,
        dwell,
        ttfd,
        energy,
        anomalies,
    })
}

fn hist_line(h: &Histogram) -> String {
    if h.count() == 0 {
        "n=0".to_string()
    } else {
        format!(
            "n={} p50={} p95={} max={}",
            h.count(),
            h.quantile(0.5),
            h.quantile(0.95),
            h.max()
        )
    }
}

/// Render the human-readable report. The final line is always
/// `anomalies: <N>` followed by one indented line per flag — stable
/// anchors for CI (`grep '^anomalies: 0'`) and the golden test.
pub fn render_text(a: &Analysis) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "trace: {} events, {} tracks, end t={}",
        a.events, a.tracks, a.trace_end
    );
    let mut death_parts: Vec<String> = a
        .deaths
        .iter()
        .map(|(reason, n)| format!("{reason} {n}"))
        .collect();
    if death_parts.is_empty() {
        death_parts.push("none".to_string());
    }
    let _ = writeln!(
        out,
        "sessions: {} (admitted {}; deaths: {})",
        a.sessions.len(),
        a.admitted,
        death_parts.join(", ")
    );
    let lifecycled = a.sessions.iter().filter(|s| s.has_phases).count();
    if lifecycled > 0 {
        let _ = writeln!(
            out,
            "dwell per phase (s), {lifecycled} lifecycled sessions:"
        );
        for (name, h) in SAMPLE_PHASE_NAMES.iter().zip(&a.dwell) {
            let _ = writeln!(out, "  {name:<9} {}", hist_line(h));
        }
    }
    let _ = writeln!(out, "time-to-first-delivery (s): {}", hist_line(&a.ttfd));
    if !a.energy.is_empty() {
        let mut by_spend: Vec<&(u32, String, f64, f64)> = a.energy.iter().collect();
        by_spend.sort_by(|x, y| {
            y.2.total_cmp(&x.2)
                .then_with(|| (x.0, &x.1).cmp(&(y.0, &y.1)))
        });
        let top = by_spend.len().min(10);
        let total: f64 = a.energy.iter().map(|e| e.2).sum();
        let _ = writeln!(
            out,
            "energy waterfall (top {top} of {} devices, {total} J total):",
            a.energy.len()
        );
        for (run, track, joules, _) in by_spend.into_iter().take(top) {
            let _ = writeln!(out, "  run {run} {track:<6} {joules} J");
        }
    }
    let _ = writeln!(out, "anomalies: {}", a.anomalies.len());
    for flag in &a.anomalies {
        let _ = writeln!(out, "  - {flag}");
    }
    out
}

/// Render the machine-readable report as a single JSON object (hand-built,
/// same shortest-round-trip float encoding as every sink).
pub fn render_json(a: &Analysis) -> String {
    let mut out = String::from("{\"schema\":1,\"stream\":\"braidio-analysis\"");
    let _ = write!(
        out,
        ",\"events\":{},\"tracks\":{},\"trace_end\":{},\"sessions\":{},\"admitted\":{}",
        a.events,
        a.tracks,
        a.trace_end,
        a.sessions.len(),
        a.admitted
    );
    out.push_str(",\"deaths\":{");
    for (i, (reason, n)) in a.deaths.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(out, "\"{reason}\":{n}");
    }
    out.push_str("},\"dwell\":[");
    for (i, (name, h)) in SAMPLE_PHASE_NAMES.iter().zip(&a.dwell).enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(
            out,
            "{{\"phase\":\"{name}\",\"count\":{},\"p50\":{},\"p95\":{},\"max\":{}}}",
            h.count(),
            h.quantile(0.5),
            h.quantile(0.95),
            h.max()
        );
    }
    let _ = write!(
        out,
        "],\"ttfd\":{{\"count\":{},\"p50\":{},\"p95\":{},\"max\":{}}}",
        a.ttfd.count(),
        a.ttfd.quantile(0.5),
        a.ttfd.quantile(0.95),
        a.ttfd.max()
    );
    out.push_str(",\"energy\":[");
    for (i, (run, track, joules, drift)) in a.energy.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(
            out,
            "{{\"run\":{run},\"track\":\"{track}\",\"joules\":{joules},\"drift\":{drift}}}"
        );
    }
    out.push_str("],\"anomalies\":[");
    for (i, flag) in a.anomalies.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        // Flags are composed from identifiers and numbers; quotes never
        // appear except around event/phase names, which must be escaped.
        let _ = write!(
            out,
            "\"{}\"",
            flag.replace('\\', "\\\\").replace('"', "\\\"")
        );
    }
    out.push_str("]}\n");
    out
}
