//! Figure 12: BER vs distance at 100 kbps — Braidio's backscatter reader
//! against the commercial AS3993.

use crate::render::banner;
use braidio_radio::characterization::{Characterization, Rate};
use braidio_radio::reader::CommercialReader;
use braidio_radio::Mode;
use braidio_units::{Meters, Watts};

/// Regenerate Figure 12.
pub fn run() {
    banner(
        "Figure 12",
        "Bit error rate vs distance at 100 kbps: Braidio vs commercial reader",
    );
    let ch = Characterization::braidio();
    let reader = CommercialReader::as3993();

    println!("{:>8} {:>14} {:>14}", "d (m)", "Braidio", "AS3993");
    for i in 0..=20 {
        let d = Meters::new(0.2 * i as f64);
        let b = ch.ber(Mode::Backscatter, Rate::Kbps100, d);
        let c = reader.ber(d);
        println!("{:>8.1} {:>14.3e} {:>14.3e}", d.meters(), b, c);
    }

    let braidio_range = ch.range(Mode::Backscatter, Rate::Kbps100).expect("range");
    let reader_range = reader.range();
    println!(
        "\noperational range (BER < 1e-2): Braidio {:.2} m, AS3993 {:.2} m ({:.0}% shorter)",
        braidio_range.meters(),
        reader_range.meters(),
        100.0 * (1.0 - braidio_range.meters() / reader_range.meters())
    );
    let braidio_power = Watts::from_milliwatts(129.0);
    println!(
        "power while reading: Braidio {}, AS3993 {} => {:.1}x more efficient",
        braidio_power,
        reader.total_power,
        reader.total_power / braidio_power
    );
    println!("(paper: ~40% lower range, ~5x better power)");
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn runs() {
        super::run();
    }

    #[test]
    fn headline_numbers_match_the_paper() {
        let ch = Characterization::braidio();
        let braidio_range = ch.range(Mode::Backscatter, Rate::Kbps100).unwrap();
        let reader = CommercialReader::as3993();
        assert!((braidio_range.meters() - 1.8).abs() < 0.02);
        assert!((reader.range().meters() - 3.0).abs() < 0.02);
        let power_ratio = reader.total_power / Watts::from_milliwatts(129.0);
        assert!((power_ratio - 4.96).abs() < 0.05);
    }

    #[test]
    fn reader_beats_braidio_at_every_distance() {
        // The commercial reader pays its 5x power for strictly better
        // sensitivity: its BER is below Braidio's everywhere (Fig. 12's
        // curves never cross).
        let ch = Characterization::braidio();
        let reader = CommercialReader::as3993();
        for i in 1..=16 {
            let d = Meters::new(0.25 * i as f64);
            assert!(
                reader.ber(d) <= ch.ber(Mode::Backscatter, Rate::Kbps100, d) + 1e-12,
                "crossed at {d}"
            );
        }
    }
}
