//! Headline-metric registry for machine-readable runs.
//!
//! Experiments `record` named scalar results and `observe` samples into
//! histogram metrics while they run; the `experiments` binary folds the
//! registry into its `--bench-json` report (schema 4), so CI and
//! regression tooling can track simulation outcomes — and their
//! *distributions* — without scraping stdout.
//!
//! Names are lowercase dotted identifiers (`fleet.tdma.m2.goodput_bps`), so
//! the JSON renderer needs no string escaping. Recording the same name
//! twice keeps the latest value; entries keep first-recorded order, so the
//! report is deterministic for a fixed experiment selection.
//!
//! The registry is handle-based: [`Registry::new`] gives an isolated
//! instance, so tests can exercise recording without racing each other
//! over process state. The free functions ([`record`], [`observe`],
//! [`snapshot`], ...) forward to one process-global [`Registry`] used by
//! the experiment binary.

use std::sync::Mutex;

/// A histogram over fixed, log-spaced bins.
///
/// The bin edges are a pure function of nothing — `BINS_PER_DECADE` bins
/// per decade covering `1e-15 ..= 1e15`, plus an underflow bin for zero
/// and sub-range samples — so histograms merged from different runs, or
/// compared across thread counts, always align. Count, sum, min and max
/// are exact; quantiles interpolate geometrically within the containing
/// bin (see [`Histogram::quantile`] for the error bound) and clamp to the
/// exact `[min, max]` envelope (so `p50` of a single sample is that
/// sample).
#[derive(Debug, Clone)]
pub struct Histogram {
    bins: Vec<u64>,
    count: u64,
    sum: f64,
    min: f64,
    max: f64,
}

/// Log-spaced resolution: 4 bins per decade ≈ 78% ratio between edges.
const BINS_PER_DECADE: f64 = 4.0;
/// Smallest finite edge; anything below lands in the underflow bin 0.
const EDGE_LO_EXP: f64 = -15.0;
/// Largest covered exponent.
const EDGE_HI_EXP: f64 = 15.0;
/// Underflow bin + 4 bins/decade over 30 decades.
const NBINS: usize = 1 + ((EDGE_HI_EXP - EDGE_LO_EXP) * BINS_PER_DECADE) as usize;

impl Histogram {
    /// An empty histogram.
    pub fn new() -> Self {
        Histogram {
            bins: vec![0; NBINS],
            count: 0,
            sum: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    fn bin_for(v: f64) -> usize {
        if v < 10f64.powf(EDGE_LO_EXP) {
            return 0; // underflow (including exact zero)
        }
        let b = ((v.log10() - EDGE_LO_EXP) * BINS_PER_DECADE).floor() as isize + 1;
        (b.max(1) as usize).min(NBINS - 1)
    }

    /// Add a sample. Samples must be finite and non-negative (durations,
    /// rates, counts — the things experiments measure).
    pub fn observe(&mut self, v: f64) {
        assert!(
            v.is_finite() && v >= 0.0,
            "histogram samples are finite and non-negative, got {v}"
        );
        self.bins[Self::bin_for(v)] += 1;
        self.count += 1;
        self.sum += v;
        self.min = self.min.min(v);
        self.max = self.max.max(v);
    }

    /// Number of samples.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Exact sum of samples.
    pub fn sum(&self) -> f64 {
        self.sum
    }

    /// Exact minimum (0 for an empty histogram).
    pub fn min(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.min
        }
    }

    /// Exact maximum (0 for an empty histogram).
    pub fn max(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.max
        }
    }

    /// Mean of samples (0 for an empty histogram).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum / self.count as f64
        }
    }

    /// The `q`-quantile (`0 <= q <= 1`), interpolated geometrically within
    /// the containing bin and clamped to the exact sample envelope.
    ///
    /// The nearest-rank sample sits somewhere inside its bin; resolving
    /// every rank to the same fixed point (the old behavior: the bin's
    /// geometric midpoint) biased answers toward bin boundaries — a
    /// 2-sample histogram's p50 could land a full bin-width from either
    /// sample. Instead, rank `r` of the `n_b` samples in its bin resolves
    /// to the bin position `(r - ½) / n_b`, i.e. samples are assumed
    /// evenly spread in log space across the bin, and the answer is
    /// `10^(lo + frac/BINS_PER_DECADE)`.
    ///
    /// Error bound: the answer and the true sample share a bin, so with
    /// `BINS_PER_DECADE = 4` the relative error is at most the bin edge
    /// ratio `10^(1/4) ≈ 1.78×` — and the clamp to `[min, max]` makes
    /// single-sample histograms (and the extreme quantiles of any
    /// histogram) exact.
    pub fn quantile(&self, q: f64) -> f64 {
        assert!((0.0..=1.0).contains(&q), "quantile in [0,1], got {q}");
        if self.count == 0 {
            return 0.0;
        }
        let rank = ((q * self.count as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (i, &n) in self.bins.iter().enumerate() {
            if n == 0 {
                continue;
            }
            if seen + n >= rank {
                if i == 0 {
                    // Underflow bin: no finite edges to interpolate, and
                    // every member is below 1e-15 — answer the exact min.
                    return self.min;
                }
                // Rank's position within the bin's members, interpolated
                // geometrically across the bin's quarter-decade span.
                let lo_exp = EDGE_LO_EXP + (i as f64 - 1.0) / BINS_PER_DECADE;
                let frac = (rank - seen) as f64 - 0.5;
                let v = 10f64.powf(lo_exp + (frac / n as f64) / BINS_PER_DECADE);
                return v.clamp(self.min, self.max);
            }
            seen += n;
        }
        self.max
    }
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram::new()
    }
}

#[derive(Debug, Default)]
struct Inner {
    scalars: Vec<(String, f64)>,
    histograms: Vec<(String, Histogram)>,
}

/// A metric registry: named scalars plus named histograms.
#[derive(Debug)]
pub struct Registry {
    inner: Mutex<Inner>,
}

fn check_name(name: &str) {
    assert!(
        name.chars()
            .all(|c| c.is_ascii_lowercase() || c.is_ascii_digit() || c == '.' || c == '_'),
        "metric names are lowercase dotted identifiers, got {name:?}"
    );
}

impl Registry {
    /// An empty registry.
    pub const fn new() -> Self {
        Registry {
            inner: Mutex::new(Inner {
                scalars: Vec::new(),
                histograms: Vec::new(),
            }),
        }
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, Inner> {
        self.inner.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Record (or overwrite) a headline scalar metric.
    pub fn record(&self, name: &str, value: f64) {
        check_name(name);
        let mut reg = self.lock();
        match reg.scalars.iter_mut().find(|(n, _)| n == name) {
            Some(slot) => slot.1 = value,
            None => reg.scalars.push((name.to_string(), value)),
        }
    }

    /// Add a sample to the named histogram metric (created on first use).
    pub fn observe(&self, name: &str, value: f64) {
        check_name(name);
        let mut reg = self.lock();
        match reg.histograms.iter_mut().find(|(n, _)| n == name) {
            Some((_, h)) => h.observe(value),
            None => {
                let mut h = Histogram::new();
                h.observe(value);
                reg.histograms.push((name.to_string(), h));
            }
        }
    }

    /// All recorded scalars, in first-recorded order.
    pub fn snapshot(&self) -> Vec<(String, f64)> {
        self.lock().scalars.clone()
    }

    /// All recorded histograms, in first-recorded order.
    pub fn histograms(&self) -> Vec<(String, Histogram)> {
        self.lock().histograms.clone()
    }

    /// Clear everything.
    pub fn reset(&self) {
        let mut reg = self.lock();
        reg.scalars.clear();
        reg.histograms.clear();
    }
}

impl Default for Registry {
    fn default() -> Self {
        Registry::new()
    }
}

/// The process-global registry the experiment binary reports from.
static GLOBAL: Registry = Registry::new();

/// Record (or overwrite) a headline metric in the global registry.
pub fn record(name: &str, value: f64) {
    GLOBAL.record(name, value)
}

/// Add a sample to a histogram metric in the global registry.
pub fn observe(name: &str, value: f64) {
    GLOBAL.observe(name, value)
}

/// All globally recorded scalars, in first-recorded order.
pub fn snapshot() -> Vec<(String, f64)> {
    GLOBAL.snapshot()
}

/// All globally recorded histograms, in first-recorded order.
pub fn histograms() -> Vec<(String, Histogram)> {
    GLOBAL.histograms()
}

/// Clear the global registry (tests).
pub fn reset() {
    GLOBAL.reset()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_keeps_order_and_overwrites() {
        // A local registry: no races with other tests over global state.
        let reg = Registry::new();
        reg.record("a.first", 1.0);
        reg.record("b.second", 2.0);
        reg.record("a.first", 3.0);
        let snap = reg.snapshot();
        assert_eq!(snap.len(), 2);
        assert_eq!(snap[0], ("a.first".to_string(), 3.0));
        assert_eq!(snap[1], ("b.second".to_string(), 2.0));
        reg.reset();
        assert!(reg.snapshot().is_empty());
    }

    #[test]
    #[should_panic(expected = "lowercase dotted")]
    fn rejects_names_that_would_need_escaping() {
        let reg = Registry::new();
        reg.record("bad name \"quoted\"", 1.0);
    }

    #[test]
    fn histogram_exact_envelope_and_quantiles() {
        let mut h = Histogram::new();
        for v in [1.0, 2.0, 3.0, 4.0, 100.0] {
            h.observe(v);
        }
        assert_eq!(h.count(), 5);
        assert_eq!(h.min(), 1.0);
        assert_eq!(h.max(), 100.0);
        assert!((h.mean() - 22.0).abs() < 1e-12);
        // p50 lands in the bin holding 2.0 and 3.0; the geometric midpoint
        // of a quarter-decade bin is within a factor ~1.33 of any member.
        let p50 = h.quantile(0.5);
        assert!((1.0..=4.0).contains(&p50), "p50 {p50}");
        // p100 is the exact max by clamping.
        assert_eq!(h.quantile(1.0), 100.0);
        // A single-sample histogram answers the sample exactly.
        let mut one = Histogram::new();
        one.observe(0.0375);
        assert_eq!(one.quantile(0.5), 0.0375);
        assert_eq!(one.quantile(0.95), 0.0375);
    }

    #[test]
    fn quantiles_interpolate_within_the_bin() {
        // Hand-computed: [1, 2, 3, 4, 100] land in quarter-decade bins
        //   1.0          -> bin with lo = 10^0.00
        //   2.0, 3.0     -> bin with lo = 10^0.25
        //   4.0          -> bin with lo = 10^0.50
        //   100.0        -> bin with lo = 10^2.00
        let mut h = Histogram::new();
        for v in [1.0, 2.0, 3.0, 4.0, 100.0] {
            h.observe(v);
        }
        // p50 = rank 3 = 2nd of 2 members in the 10^0.25 bin, position
        // (2 - 0.5)/2 of the span: 10^(0.25 + 0.75/4) = 10^0.4375.
        assert!((h.quantile(0.5) - 10f64.powf(0.4375)).abs() < 1e-12);
        // p20 = rank 1, sole member of the 10^0.00 bin, position 0.5:
        // 10^(0 + 0.5/4) = 10^0.125 ≈ 1.334 — within the 1.78× bin bound
        // of the true sample 1.0, and notably not the old fixed midpoint
        // of every answer falling in this bin.
        assert!((h.quantile(0.2) - 10f64.powf(0.125)).abs() < 1e-12);
        // p40 = rank 2 = 1st of 2 in the 10^0.25 bin: 10^(0.25 + 0.25/4).
        assert!((h.quantile(0.4) - 10f64.powf(0.3125)).abs() < 1e-12);
        // Two samples in one bin interpolate toward its edges rather than
        // both collapsing onto the midpoint: the bias the fix removes.
        let mut two = Histogram::new();
        two.observe(2.0);
        two.observe(3.0);
        let (p25, p75) = (two.quantile(0.25), two.quantile(0.75));
        assert!(p25 < p75, "p25 {p25} vs p75 {p75}");
        assert!((p25 - 10f64.powf(0.25 + 0.125 / 2.0)).abs() < 1e-12);
        assert!((p75 - 10f64.powf(0.25 + 0.375 / 2.0)).abs() < 1e-12);
        // Both answers stay within the documented 10^(1/4) ≈ 1.78× bound
        // of *some* sample in their bin.
        for (ans, sample) in [(p25, 2.0), (p75, 3.0)] {
            let ratio = if ans > sample {
                ans / sample
            } else {
                sample / ans
            };
            assert!(ratio <= 10f64.powf(0.25) + 1e-12, "{ans} vs {sample}");
        }
    }

    #[test]
    fn histogram_handles_zero_and_extremes() {
        let mut h = Histogram::new();
        h.observe(0.0);
        h.observe(1e-20);
        h.observe(1e20);
        assert_eq!(h.count(), 3);
        assert_eq!(h.min(), 0.0);
        assert_eq!(h.max(), 1e20);
        // Underflow bin answers the exact min.
        assert_eq!(h.quantile(0.3), 0.0);
    }

    #[test]
    #[should_panic(expected = "finite and non-negative")]
    fn histogram_rejects_negative_samples() {
        Histogram::new().observe(-1.0);
    }

    #[test]
    fn registry_histograms_accumulate_by_name() {
        let reg = Registry::new();
        reg.observe("lat.s", 0.1);
        reg.observe("lat.s", 0.2);
        reg.observe("other.s", 5.0);
        let hists = reg.histograms();
        assert_eq!(hists.len(), 2);
        assert_eq!(hists[0].0, "lat.s");
        assert_eq!(hists[0].1.count(), 2);
        assert_eq!(hists[1].1.count(), 1);
    }

    #[test]
    fn bins_are_deterministic_across_insertion_orders() {
        let mut a = Histogram::new();
        let mut b = Histogram::new();
        let vs = [0.003, 7.2, 1e-9, 42.0, 0.5];
        for v in vs {
            a.observe(v);
        }
        for v in vs.iter().rev() {
            b.observe(*v);
        }
        assert_eq!(a.bins, b.bins);
        assert_eq!(a.quantile(0.5).to_bits(), b.quantile(0.5).to_bits());
    }
}
