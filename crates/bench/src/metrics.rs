//! Headline-metric registry for machine-readable runs.
//!
//! Experiments `record` a handful of named scalar results while they run;
//! the `experiments` binary folds the registry into its `--bench-json`
//! report (schema 2), so CI and regression tooling can track simulation
//! outcomes — not just wall-clock — without scraping stdout.
//!
//! Names are lowercase dotted identifiers (`fleet.tdma.m2.goodput_bps`), so
//! the JSON renderer needs no string escaping. Recording the same name
//! twice keeps the latest value; entries keep first-recorded order, so the
//! report is deterministic for a fixed experiment selection.

use std::sync::Mutex;

static REGISTRY: Mutex<Vec<(String, f64)>> = Mutex::new(Vec::new());

/// Record (or overwrite) a headline metric.
pub fn record(name: &str, value: f64) {
    assert!(
        name.chars()
            .all(|c| c.is_ascii_lowercase() || c.is_ascii_digit() || c == '.' || c == '_'),
        "metric names are lowercase dotted identifiers, got {name:?}"
    );
    let mut reg = REGISTRY.lock().unwrap_or_else(|e| e.into_inner());
    match reg.iter_mut().find(|(n, _)| n == name) {
        Some(slot) => slot.1 = value,
        None => reg.push((name.to_string(), value)),
    }
}

/// All recorded metrics, in first-recorded order.
pub fn snapshot() -> Vec<(String, f64)> {
    REGISTRY.lock().unwrap_or_else(|e| e.into_inner()).clone()
}

/// Clear the registry (tests).
pub fn reset() {
    REGISTRY.lock().unwrap_or_else(|e| e.into_inner()).clear();
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_keeps_order_and_overwrites() {
        reset();
        record("a.first", 1.0);
        record("b.second", 2.0);
        record("a.first", 3.0);
        let snap = snapshot();
        assert_eq!(snap.len(), 2);
        assert_eq!(snap[0], ("a.first".to_string(), 3.0));
        assert_eq!(snap[1], ("b.second".to_string(), 2.0));
        reset();
        assert!(snapshot().is_empty());
    }

    #[test]
    #[should_panic(expected = "lowercase dotted")]
    fn rejects_names_that_would_need_escaping() {
        record("bad name \"quoted\"", 1.0);
    }
}
