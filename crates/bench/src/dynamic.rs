//! Dynamic scenario: the pair moves while transferring.
//!
//! Not a paper figure — the paper's matrices assume a fixed separation —
//! but §4.2's re-planning machinery exists precisely for mobility, so this
//! experiment quantifies it: a wearable streams to a phone while the wearer
//! wanders around a room (bounded random walk, 0.3–4 m), crossing the
//! regime A/B boundary repeatedly.

use crate::render::banner;
use braidio_mac::mobility::{MobilityTrace, RandomWalk, Static};
use braidio_mac::sim::{simulate_mobile_transfer, simulate_transfer, Policy, TransferSetup};
use braidio_radio::Mode;
use braidio_units::{Meters, Seconds};

/// Run the dynamic scenario.
pub fn run() {
    banner(
        "Dynamic scenario",
        "Random walk 0.3–4 m while a 3 mWh wearable streams to a 30 mWh phone share",
    );
    // Battery slices sized so the transfer spans minutes of walking.
    let setup = TransferSetup::new(0.003, 0.03, Policy::Braidio);

    println!(
        "{:>16} {:>14} {:>10} {:>28}",
        "trace", "bits", "lifetime", "mode mix (A/P/B %)"
    );
    let print_row = |label: &str, trace: &mut dyn MobilityTrace| {
        let r = simulate_mobile_transfer(&setup, trace, Seconds::new(1.0));
        println!(
            "{:>16} {:>14.3e} {:>10} {:>10.1} {:>7.1} {:>7.1}",
            label,
            r.bits,
            format!("{}", r.duration),
            100.0 * r.mode_share(Mode::Active),
            100.0 * r.mode_share(Mode::Passive),
            100.0 * r.mode_share(Mode::Backscatter),
        );
    };
    print_row("static 0.5 m", &mut Static(Meters::new(0.5)));
    print_row("static 3.0 m", &mut Static(Meters::new(3.0)));
    for seed in [1u64, 2, 3] {
        print_row(&format!("walk (seed {seed})"), &mut RandomWalk::room(seed));
    }

    // Baseline: Bluetooth doesn't care about the walk (active mode covers
    // the whole room), so its bits equal the static case.
    let bt = simulate_transfer(&TransferSetup::new(0.003, 0.03, Policy::Bluetooth));
    println!(
        "{:>16} {:>14.3e} {:>10}",
        "bluetooth (any)",
        bt.bits,
        format!("{}", bt.duration)
    );
    println!("\nthe walking pair lands between the static extremes: every re-plan at a regime");
    println!("crossing re-braids the link, keeping the gain over Bluetooth even in motion.");
}

#[cfg(test)]
mod tests {
    #[test]
    fn runs() {
        super::run();
    }
}
