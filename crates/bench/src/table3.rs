//! Table 3 (comparison of commercial reader and Braidio) and the §5
//! hardware lineage.

use crate::render::banner;
use braidio_radio::versions::{lineage, table3};

/// Regenerate Table 3 and the §5 version history.
pub fn run() {
    banner(
        "Table 3",
        "Commercial reader vs Braidio, technique by technique",
    );
    for row in table3() {
        println!("\n[{}]", row.problem);
        println!("  commercial: {}", row.commercial);
        println!("  braidio:    {}", row.braidio);
    }

    banner(
        "§5 lineage",
        "Three hardware iterations of the reader-side design",
    );
    println!("{:>4} {:>12}  approach / verdict", "ver", "reader power");
    for v in lineage() {
        println!(
            "{:>4} {:>12}  {}",
            v.version,
            format!("{}", v.reader_power),
            v.approach
        );
        println!("{:>4} {:>12}  -> {}", "", "", v.verdict);
    }
}

#[cfg(test)]
mod tests {
    #[test]
    fn runs() {
        super::run();
    }
}
