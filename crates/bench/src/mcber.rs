//! Hidden low-bitrate Monte-Carlo probe (`experiments mcber`).
//!
//! Not a figure of the paper and excluded from `all` (so the default
//! output stays stable); runnable by name. CI uses it to extend the
//! byte-identity check to a low-bitrate Monte-Carlo path: at 1 kbps every
//! bit spans 20 000 samples, the regime where the fused streaming pipeline
//! replaced multi-gigabyte stage vectors, so any drift in the per-sample
//! arithmetic or the RNG draw order shows up here as a changed error
//! count.

use crate::render::banner;
use braidio_phy::montecarlo::MonteCarloBer;
use braidio_units::BitsPerSecond;

/// Run the probe: a few fixed (SNR, seed) points at 1 kbps, exact counts.
pub fn run() {
    banner(
        "MC probe",
        "1 kbps Monte-Carlo BER through the streaming chain (regression anchor)",
    );
    let rate = BitsPerSecond::new(1_000.0);
    println!(
        "{:>9} {:>6} {:>6} {:>7} {:>12}",
        "SNR (dB)", "bits", "seed", "errors", "ber"
    );
    for (snr_db, seed) in [(6.0f64, 11u64), (10.0, 12), (14.0, 13)] {
        let bits = 256usize;
        let est = MonteCarloBer::at_snr_db(snr_db, rate, bits, seed).run();
        println!(
            "{:>9.1} {:>6} {:>6} {:>7} {:>12.4e}",
            snr_db,
            est.bits,
            seed,
            est.errors,
            est.ber()
        );
    }
    println!("\n1 kbps sits below the chain's 1 kHz self-interference corner, so the");
    println!("absolute BER is pessimal by design — the probe's value is determinism:");
    println!("counts are exact integers, and any change in the demodulation arithmetic,");
    println!("chunking or RNG draw order changes this output byte-for-byte.");
}

#[cfg(test)]
mod tests {
    #[test]
    fn runs() {
        super::run();
    }
}
