//! Phase cancellation at the noncoherent (envelope-detector) receiver, and
//! the 2-antenna diversity countermeasure — the §3.2 analysis behind
//! Figs. 4, 5 and 6.
//!
//! The envelope detector measures only the *magnitude* of the superposition
//! of the strong, static self-interference ("background") phasor `V_bg` and
//! the tag's backscattered phasor `V_tag`. When the tag toggles its RF
//! transistor between reflection coefficients `Γ0` and `Γ1`, the receiver
//! sees
//!
//! ```text
//! A = | |V_bg + V_tag(Γ1)| - |V_bg + V_tag(Γ0)| |
//! ```
//!
//! For `|V_bg| ≫ |V_tag|` this reduces to `A ≈ 2·cos(θ)·|V_tag|` where `θ`
//! is the angle between the backscatter difference vector and the background
//! vector — so when the two are orthogonal (`θ → π/2`) the envelope does not
//! change at all and the bit is undetectable, no matter how strong the tag
//! signal is. A second receive antenna a fraction of a wavelength away sees
//! a different `θ` and rescues the null.

use crate::channel::Environment;
use crate::geometry::{Grid, Point};
use braidio_units::{Complex, Decibels, Hertz, Watts};

/// The two reflection states of the tag's RF transistor.
///
/// `|gamma_on - gamma_off|` is the modulation depth; Moo/WISP-class tags
/// switch between a near-matched and a near-shorted antenna, giving a
/// difference close to 1.
#[derive(Debug, Clone, Copy)]
pub struct TagStates {
    /// Reflection coefficient with the transistor off (antenna ~matched).
    pub gamma_off: Complex,
    /// Reflection coefficient with the transistor on (antenna ~shorted).
    pub gamma_on: Complex,
}

impl Default for TagStates {
    fn default() -> Self {
        TagStates {
            gamma_off: Complex::new(0.05, 0.0),
            gamma_on: Complex::new(-0.95, 0.0),
        }
    }
}

impl TagStates {
    /// Modulation depth `|Γ_on - Γ_off|`.
    pub fn depth(&self) -> f64 {
        (self.gamma_on - self.gamma_off).abs()
    }
}

/// A monostatic backscatter scene: a carrier-emitting TX antenna, one or two
/// receive antennas (diversity), a movable tag, and a static multipath
/// environment.
#[derive(Debug, Clone)]
pub struct BackscatterScene {
    /// Carrier-emitter antenna position.
    pub carrier_tx: Point,
    /// Receive antenna positions (1 = no diversity, 2 = Braidio's diversity).
    pub rx_antennas: Vec<Point>,
    /// Tag reflection states.
    pub tag: TagStates,
    /// Static reflectors in the room.
    pub environment: Environment,
    /// Carrier frequency.
    pub frequency: Hertz,
    /// Carrier transmit power.
    pub tx_power: Watts,
    /// Noise-equivalent power of the envelope-detector receive chain, used
    /// to turn envelope amplitudes into the SNR figures of Figs. 4c and 6.
    pub noise_equivalent: Watts,
}

impl BackscatterScene {
    /// The paper's Fig. 4 setup: TX antenna at (0.95 m, 0.5 m), RX antenna
    /// at (1.05 m, 0.5 m), 915 MHz, 13 dBm carrier, free space.
    pub fn paper_fig4() -> Self {
        BackscatterScene {
            carrier_tx: Point::new(0.95, 0.5),
            rx_antennas: vec![Point::new(1.05, 0.5)],
            tag: TagStates::default(),
            environment: Environment::free_space(),
            frequency: Hertz::UHF_915M,
            tx_power: Watts::from_dbm(13.0),
            // Detector noise-equivalent power, set so the mid-room SNR
            // levels match the paper's Fig. 6 (≈30 dB at 0.5 m from the
            // pair, single digits by 2 m, nulls rescued above ~5 dB by the
            // second antenna inside the backscatter regime).
            noise_equivalent: Watts::from_dbm(-70.0),
        }
    }

    /// The same scene with a second receive antenna λ/8 from the first
    /// (the spacing of Braidio's two ANT1204 chip antennas, Table 4).
    pub fn with_diversity(mut self) -> Self {
        assert!(!self.rx_antennas.is_empty(), "scene has no receive antenna");
        let first = self.rx_antennas[0];
        let spacing = self.frequency.wavelength() / 8.0;
        // Offset perpendicular to the TX→RX axis so the second antenna sees
        // a genuinely different backscatter path geometry.
        let dir = self
            .carrier_tx
            .direction_to(first)
            .map(|d| Point::new(-d.y, d.x))
            .unwrap_or(Point::new(0.0, 1.0));
        self.rx_antennas.push(first.offset_along(dir, spacing));
        self
    }

    /// Carrier phasor amplitude (`√P`, unit-impedance convention).
    fn carrier_amplitude(&self) -> f64 {
        self.tx_power.watts().sqrt()
    }

    /// The background (self-interference) phasor at receive antenna `rx`:
    /// direct TX→RX coupling plus every static reflection, *excluding* the
    /// tag.
    pub fn background(&self, rx_idx: usize) -> Complex {
        let rx = self.rx_antennas[rx_idx];
        self.environment
            .gain(self.carrier_tx, rx, self.frequency)
            .apply(Complex::new(self.carrier_amplitude(), 0.0))
    }

    /// The tag's backscattered phasor at receive antenna `rx` for a given
    /// reflection coefficient.
    pub fn tag_phasor(&self, tag_at: Point, rx_idx: usize, gamma: Complex) -> Complex {
        let rx = self.rx_antennas[rx_idx];
        let forward = self
            .environment
            .gain(self.carrier_tx, tag_at, self.frequency);
        let back = self.environment.gain(tag_at, rx, self.frequency);
        forward
            .cascade(back)
            .apply(gamma * self.carrier_amplitude())
    }

    /// The envelope difference `A` the noncoherent detector sees at antenna
    /// `rx_idx` when the tag at `tag_at` toggles states.
    pub fn envelope_delta(&self, tag_at: Point, rx_idx: usize) -> f64 {
        let bg = self.background(rx_idx);
        let v_on = self.tag_phasor(tag_at, rx_idx, self.tag.gamma_on);
        let v_off = self.tag_phasor(tag_at, rx_idx, self.tag.gamma_off);
        ((bg + v_on).abs() - (bg + v_off).abs()).abs()
    }

    /// The angle θ between the backscatter difference vector and the
    /// background vector at antenna `rx_idx` (Fig. 5's θ), radians in
    /// `[0, π/2]`.
    pub fn cancellation_angle(&self, tag_at: Point, rx_idx: usize) -> f64 {
        let bg = self.background(rx_idx);
        let diff = self.tag_phasor(tag_at, rx_idx, self.tag.gamma_on)
            - self.tag_phasor(tag_at, rx_idx, self.tag.gamma_off);
        let mut dphi = (diff.arg() - bg.arg()).abs() % core::f64::consts::PI;
        if dphi > core::f64::consts::FRAC_PI_2 {
            dphi = core::f64::consts::PI - dphi;
        }
        dphi
    }

    /// Received backscatter signal power at antenna `rx_idx` (envelope
    /// difference squared, unit-impedance convention).
    pub fn signal_power(&self, tag_at: Point, rx_idx: usize) -> Watts {
        let a = self.envelope_delta(tag_at, rx_idx);
        Watts::new(a * a)
    }

    /// SNR at a single antenna, dB.
    pub fn snr(&self, tag_at: Point, rx_idx: usize) -> Decibels {
        self.signal_power(tag_at, rx_idx)
            .ratio_db(self.noise_equivalent)
    }

    /// SNR with antenna selection diversity: the best antenna's SNR, plus
    /// the index of the antenna selected.
    pub fn snr_diversity(&self, tag_at: Point) -> (usize, Decibels) {
        let mut best = (0usize, Decibels::new(f64::NEG_INFINITY));
        for idx in 0..self.rx_antennas.len() {
            let s = self.snr(tag_at, idx);
            if s > best.1 {
                best = (idx, s);
            }
        }
        best
    }

    /// Sweep the tag over a grid and return the received signal strength in
    /// dB (relative to 1 W) at the *first* antenna for each grid point, in
    /// row-major order — the Fig. 4b heat map.
    pub fn signal_map(&self, grid: &Grid) -> Vec<f64> {
        grid.points()
            .map(|(_, _, p)| 10.0 * self.signal_power(p, 0).watts().log10())
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use braidio_units::Meters;

    fn scene() -> BackscatterScene {
        BackscatterScene::paper_fig4()
    }

    #[test]
    fn tag_depth_default_near_unity() {
        assert!((TagStates::default().depth() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn envelope_decays_with_distance() {
        let s = scene();
        let near = s.envelope_delta(Point::new(1.0, 0.8), 0);
        let far = s.envelope_delta(Point::new(1.0, 1.9), 0);
        assert!(near > far, "near {near} far {far}");
    }

    #[test]
    fn nulls_exist_along_the_line() {
        // Sweeping the tag along Y = 0.5 (the Fig. 4c cut) must show deep
        // minima: points where the SNR drops far below its neighbourhood.
        let s = scene();
        let mut snrs = Vec::new();
        for i in 0..600 {
            let x = 1.3 + 0.7 * (i as f64 / 599.0); // 1.3 .. 2.0 m
            snrs.push(s.snr(Point::new(x, 0.5), 0).db());
        }
        let max = snrs.iter().cloned().fold(f64::MIN, f64::max);
        let min = snrs.iter().cloned().fold(f64::MAX, f64::min);
        assert!(max - min > 20.0, "expected deep nulls, span {}", max - min);
    }

    #[test]
    fn diversity_lifts_the_nulls() {
        let single = scene();
        let diverse = scene().with_diversity();
        assert_eq!(diverse.rx_antennas.len(), 2);
        // Worst-case SNR along the sweep must improve materially with the
        // second antenna (Fig. 6's claim: nulls from ~0 dB up to > 5 dB).
        let mut worst_single = f64::MAX;
        let mut worst_diverse = f64::MAX;
        for i in 0..800 {
            let x = 1.3 + 0.7 * (i as f64 / 799.0);
            let p = Point::new(x, 0.5);
            worst_single = worst_single.min(single.snr(p, 0).db());
            worst_diverse = worst_diverse.min(diverse.snr_diversity(p).1.db());
        }
        assert!(
            worst_diverse > worst_single + 3.0,
            "single {worst_single:.1} dB, diverse {worst_diverse:.1} dB"
        );
    }

    #[test]
    fn angle_is_orthogonal_at_null() {
        // At the deepest null along the sweep, θ must approach π/2.
        let s = scene();
        let mut deepest = (f64::MAX, 0.0);
        for i in 0..2000 {
            let x = 1.3 + 0.7 * (i as f64 / 1999.0);
            let p = Point::new(x, 0.5);
            let snr = s.snr(p, 0).db();
            if snr < deepest.0 {
                deepest = (snr, s.cancellation_angle(p, 0));
            }
        }
        assert!(
            deepest.1 > 1.45,
            "angle at null {:.3} rad should be near π/2",
            deepest.1
        );
    }

    #[test]
    fn signal_map_matches_point_queries() {
        let s = scene();
        let grid = Grid::square(Meters::new(2.0), 11);
        let map = s.signal_map(&grid);
        assert_eq!(map.len(), 121);
        let (ix, iy) = (7, 3);
        let expected = 10.0 * s.signal_power(grid.point(ix, iy), 0).watts().log10();
        assert_eq!(map[iy * grid.nx + ix], expected);
    }

    #[test]
    fn background_dominates_tag_signal() {
        // Self-interference is orders of magnitude above the backscatter
        // signal — the reason readers need cancellation at all.
        let s = scene();
        let bg = s.background(0).abs();
        let tag = s.tag_phasor(Point::new(1.0, 1.0), 0, s.tag.gamma_on).abs();
        assert!(bg > 20.0 * tag, "bg {bg}, tag {tag}");
    }
}
