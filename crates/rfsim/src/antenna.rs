//! Antenna models.
//!
//! Braidio's form-factor constraint (§5) forced 12 mm chip antennas instead
//! of the 15 cm dipoles used on Moo/WISP — a real sensitivity cost that the
//! paper compensates with the instrumentation amplifier. This module models
//! the gain, efficiency and pattern differences, plus the two-element
//! diversity pair used against phase cancellation.

use crate::geometry::Point;
use braidio_units::{Decibels, Hertz, Meters};

/// Antenna families used across the paper's hardware lineage.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AntennaKind {
    /// ANT1204-class 12 mm chip antenna (Braidio board, Table 4).
    Chip,
    /// Half-wave dipole (Moo / WISP tags).
    Dipole,
    /// Patch antenna (commercial reader boards).
    Patch,
}

/// An antenna with a simple gain/pattern model.
#[derive(Debug, Clone, Copy)]
pub struct Antenna {
    /// Family.
    pub kind: AntennaKind,
    /// Boresight realized gain (includes efficiency).
    pub peak_gain: Decibels,
    /// Front-to-side pattern roll-off applied at 90° off boresight; the
    /// pattern interpolates as `cos^k` between.
    pub side_rolloff: Decibels,
    /// Physical length along its axis.
    pub length: Meters,
}

impl Antenna {
    /// The ANT1204LL05R chip antenna: 12 mm, ~-2 dBi realized, nearly
    /// omnidirectional.
    pub fn chip() -> Self {
        Antenna {
            kind: AntennaKind::Chip,
            peak_gain: Decibels::new(-2.0),
            side_rolloff: Decibels::new(1.0),
            length: Meters::from_cm(1.2),
        }
    }

    /// A half-wave dipole at frequency `f`: 2.15 dBi, figure-eight pattern.
    pub fn dipole(f: Hertz) -> Self {
        Antenna {
            kind: AntennaKind::Dipole,
            peak_gain: Decibels::new(2.15),
            side_rolloff: Decibels::new(30.0),
            length: f.wavelength() / 2.0,
        }
    }

    /// A reader-grade patch: 6 dBi, strong directivity.
    pub fn patch() -> Self {
        Antenna {
            kind: AntennaKind::Patch,
            peak_gain: Decibels::new(6.0),
            side_rolloff: Decibels::new(15.0),
            length: Meters::from_cm(10.0),
        }
    }

    /// Realized gain at an angle `theta` radians off boresight
    /// (`cos²`-shaped interpolation toward the side roll-off).
    pub fn gain_at(&self, theta: f64) -> Decibels {
        let t = theta.abs().min(core::f64::consts::FRAC_PI_2);
        let shape = t.sin().powi(2); // 0 at boresight, 1 at 90°
        self.peak_gain - self.side_rolloff * shape
    }

    /// Does this antenna fit a wearable-class device (≤ 2 cm)?
    pub fn fits_wearable(&self) -> bool {
        self.length <= Meters::from_cm(2.0)
    }
}

/// A two-element selection-diversity pair.
#[derive(Debug, Clone, Copy)]
pub struct DiversityPair {
    /// Element model (both elements identical).
    pub element: Antenna,
    /// Element separation.
    pub spacing: Meters,
}

impl DiversityPair {
    /// Braidio's pair: chip antennas λ/8 apart (Table 4).
    pub fn braidio(f: Hertz) -> Self {
        DiversityPair {
            element: Antenna::chip(),
            spacing: f.wavelength() / 8.0,
        }
    }

    /// The element positions given the first element's location and a unit
    /// direction for the array axis.
    pub fn element_positions(&self, first: Point, axis: Point) -> [Point; 2] {
        [first, first.offset_along(axis, self.spacing)]
    }

    /// Phase difference (radians) between the two elements for a plane wave
    /// arriving at angle `phi` from the array axis.
    pub fn arrival_phase_delta(&self, phi: f64, f: Hertz) -> f64 {
        let lambda = f.wavelength().meters();
        2.0 * core::f64::consts::PI * self.spacing.meters() * phi.cos() / lambda
    }

    /// Worst-case correlation proxy: a pair is useful against fading when
    /// the endfire phase delta exceeds ~π/4 (the λ/8 design point).
    pub fn decorrelates(&self, f: Hertz) -> bool {
        self.arrival_phase_delta(0.0, f) >= core::f64::consts::FRAC_PI_4 - 1e-9
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const F: Hertz = Hertz::UHF_915M;

    #[test]
    fn chip_fits_wearable_dipole_does_not() {
        assert!(Antenna::chip().fits_wearable());
        assert!(!Antenna::dipole(F).fits_wearable());
        // The §5 point: Moo/WISP dipoles measure >15 cm.
        assert!(Antenna::dipole(F).length > Meters::from_cm(15.0));
    }

    #[test]
    fn gain_ordering() {
        let chip = Antenna::chip();
        let dipole = Antenna::dipole(F);
        let patch = Antenna::patch();
        assert!(chip.peak_gain < dipole.peak_gain);
        assert!(dipole.peak_gain < patch.peak_gain);
        // The chip antenna costs ~4 dB of link vs the dipole — the
        // sensitivity gap the amplifier has to make up.
        assert!(((dipole.peak_gain - chip.peak_gain).db() - 4.15).abs() < 0.01);
    }

    #[test]
    fn pattern_monotone_off_boresight() {
        let a = Antenna::patch();
        let mut prev = f64::MAX;
        for i in 0..=10 {
            let theta = core::f64::consts::FRAC_PI_2 * i as f64 / 10.0;
            let g = a.gain_at(theta).db();
            assert!(g <= prev + 1e-12);
            prev = g;
        }
        assert!((a.gain_at(0.0).db() - 6.0).abs() < 1e-12);
        assert!((a.gain_at(core::f64::consts::FRAC_PI_2).db() - -9.0).abs() < 1e-12);
    }

    #[test]
    fn chip_is_nearly_omni() {
        let a = Antenna::chip();
        let spread = a.gain_at(0.0).db() - a.gain_at(core::f64::consts::FRAC_PI_2).db();
        assert!(spread <= 1.0 + 1e-12);
    }

    #[test]
    fn braidio_pair_spacing() {
        let pair = DiversityPair::braidio(F);
        assert!((pair.spacing.meters() - F.wavelength().meters() / 8.0).abs() < 1e-12);
        // λ/8 endfire: phase delta = 2π/8 = π/4 — just decorrelated.
        assert!(pair.decorrelates(F));
    }

    #[test]
    fn element_positions_along_axis() {
        let pair = DiversityPair::braidio(F);
        let [a, b] = pair.element_positions(Point::new(1.0, 0.5), Point::new(0.0, 1.0));
        assert_eq!(a, Point::new(1.0, 0.5));
        assert!((b.y - (0.5 + pair.spacing.meters())).abs() < 1e-12);
    }

    #[test]
    fn broadside_arrival_no_phase_delta() {
        let pair = DiversityPair::braidio(F);
        let d = pair.arrival_phase_delta(core::f64::consts::FRAC_PI_2, F);
        assert!(d.abs() < 1e-12);
    }
}
