//! Link-budget calculator for the three Braidio link kinds.
//!
//! This glues the propagation pieces together: given a link kind, a transmit
//! power and a separation, it produces the received signal power and, with a
//! noise model, the SNR. The asymmetric regime structure of Fig. 8 falls out
//! of the d² (one-way) vs d⁴ (two-way) slopes computed here.

use crate::pathloss::{backscatter_gain, free_space_gain, BackscatterLoss};
use braidio_units::{Decibels, Hertz, Meters, Watts};

/// Which of the three §4 operating modes carries the data, viewed from the
/// propagation side.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum LinkKind {
    /// Both ends run active radios; one-way propagation into a coherent
    /// receiver.
    Active,
    /// Transmitter runs its carrier; receiver is a passive envelope
    /// detector. One-way propagation into a noncoherent receiver.
    PassiveRx,
    /// Receiver runs the carrier; transmitter backscatters it. Two-way
    /// propagation into a noncoherent receiver behind self-interference.
    Backscatter,
}

impl LinkKind {
    /// All three kinds, in the paper's A/B/C order.
    pub const ALL: [LinkKind; 3] = [LinkKind::Active, LinkKind::PassiveRx, LinkKind::Backscatter];

    /// Short label used in experiment output.
    pub fn label(self) -> &'static str {
        match self {
            LinkKind::Active => "active",
            LinkKind::PassiveRx => "passive",
            LinkKind::Backscatter => "backscatter",
        }
    }

    /// Does the *data transmitter* generate the carrier in this mode?
    pub fn transmitter_has_carrier(self) -> bool {
        matches!(self, LinkKind::Active | LinkKind::PassiveRx)
    }

    /// Does the *data receiver* generate the carrier in this mode?
    pub fn receiver_has_carrier(self) -> bool {
        matches!(self, LinkKind::Active | LinkKind::Backscatter)
    }
}

/// The static RF parameters of a device pair's link.
#[derive(Debug, Clone, Copy)]
pub struct LinkBudget {
    /// Carrier frequency of the passive/backscatter front end.
    pub frequency: Hertz,
    /// Gain of the transmitting device's antenna.
    pub tx_antenna_gain: Decibels,
    /// Gain of the receiving device's antenna.
    pub rx_antenna_gain: Decibels,
    /// Extra front-end loss on detector-based receivers (SAW insertion
    /// loss + matching losses).
    pub detector_frontend_loss: Decibels,
    /// Backscatter-specific losses.
    pub backscatter: BackscatterLoss,
}

impl Default for LinkBudget {
    fn default() -> Self {
        LinkBudget {
            frequency: Hertz::UHF_915M,
            // ANT1204-class 12 mm chip antennas: ~-2 dBi realized gain.
            tx_antenna_gain: Decibels::new(-2.0),
            rx_antenna_gain: Decibels::new(-2.0),
            detector_frontend_loss: Decibels::new(2.0),
            backscatter: BackscatterLoss::default(),
        }
    }
}

impl LinkBudget {
    /// End-to-end channel gain (dB, negative) for the given kind at
    /// separation `d`.
    pub fn channel_gain(&self, kind: LinkKind, d: Meters) -> Decibels {
        match kind {
            LinkKind::Active => {
                free_space_gain(d, self.frequency) + self.tx_antenna_gain + self.rx_antenna_gain
            }
            LinkKind::PassiveRx => {
                free_space_gain(d, self.frequency) + self.tx_antenna_gain + self.rx_antenna_gain
                    - self.detector_frontend_loss
            }
            LinkKind::Backscatter => {
                // Monostatic: carrier out over d, reflection back over d.
                backscatter_gain(d, d, self.frequency, self.backscatter)
                    + self.tx_antenna_gain * 2.0 // tag antenna, both legs
                    + self.rx_antenna_gain
                    - self.detector_frontend_loss
            }
        }
    }

    /// Received signal power for a transmit (or carrier) power `tx_power`.
    ///
    /// For [`LinkKind::Backscatter`], `tx_power` is the *receiver-side*
    /// carrier power, since that is the signal source.
    pub fn received_power(&self, kind: LinkKind, tx_power: Watts, d: Meters) -> Watts {
        tx_power.gained(self.channel_gain(kind, d))
    }

    /// SNR against a given noise power.
    pub fn snr(&self, kind: LinkKind, tx_power: Watts, d: Meters, noise: Watts) -> Decibels {
        self.received_power(kind, tx_power, d).ratio_db(noise)
    }

    /// The distance at which the received power falls to `sensitivity`,
    /// found by bisection over `[0.05 m, 100 m]`. Returns `None` if even the
    /// near-field floor cannot reach the sensitivity.
    pub fn range_for_sensitivity(
        &self,
        kind: LinkKind,
        tx_power: Watts,
        sensitivity: Watts,
    ) -> Option<Meters> {
        let rx_at = |d: f64| self.received_power(kind, tx_power, Meters::new(d)).watts();
        let target = sensitivity.watts();
        let (mut lo, mut hi) = (0.05, 100.0);
        if rx_at(lo) < target {
            return None;
        }
        if rx_at(hi) >= target {
            return Some(Meters::new(hi));
        }
        for _ in 0..200 {
            let mid = 0.5 * (lo + hi);
            if rx_at(mid) >= target {
                lo = mid;
            } else {
                hi = mid;
            }
        }
        Some(Meters::new(0.5 * (lo + hi)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn budget() -> LinkBudget {
        LinkBudget::default()
    }

    #[test]
    fn kind_carrier_placement_matches_fig2() {
        assert!(LinkKind::Active.transmitter_has_carrier());
        assert!(LinkKind::Active.receiver_has_carrier());
        assert!(LinkKind::PassiveRx.transmitter_has_carrier());
        assert!(!LinkKind::PassiveRx.receiver_has_carrier());
        assert!(!LinkKind::Backscatter.transmitter_has_carrier());
        assert!(LinkKind::Backscatter.receiver_has_carrier());
    }

    #[test]
    fn active_beats_passive_beats_backscatter() {
        let b = budget();
        let d = Meters::new(1.0);
        let a = b.channel_gain(LinkKind::Active, d);
        let p = b.channel_gain(LinkKind::PassiveRx, d);
        let bs = b.channel_gain(LinkKind::Backscatter, d);
        assert!(a > p, "active {a} vs passive {p}");
        assert!(p > bs, "passive {p} vs backscatter {bs}");
    }

    #[test]
    fn backscatter_slope_is_double() {
        let b = budget();
        let g1 = b.channel_gain(LinkKind::Backscatter, Meters::new(1.0));
        let g2 = b.channel_gain(LinkKind::Backscatter, Meters::new(2.0));
        assert!(((g1 - g2).db() - 12.04).abs() < 0.01);
        let p1 = b.channel_gain(LinkKind::PassiveRx, Meters::new(1.0));
        let p2 = b.channel_gain(LinkKind::PassiveRx, Meters::new(2.0));
        assert!(((p1 - p2).db() - 6.02).abs() < 0.01);
    }

    #[test]
    fn received_power_composes_gain() {
        let b = budget();
        let tx = Watts::from_dbm(13.0);
        let d = Meters::new(2.0);
        let rx = b.received_power(LinkKind::PassiveRx, tx, d);
        let expected_dbm = 13.0 + b.channel_gain(LinkKind::PassiveRx, d).db();
        assert!((rx.dbm() - expected_dbm).abs() < 1e-9);
    }

    #[test]
    fn snr_is_rx_over_noise() {
        let b = budget();
        let snr = b.snr(
            LinkKind::Active,
            Watts::from_dbm(0.0),
            Meters::new(1.0),
            Watts::from_dbm(-100.0),
        );
        let rx = b.received_power(LinkKind::Active, Watts::from_dbm(0.0), Meters::new(1.0));
        assert!((snr.db() - (rx.dbm() + 100.0)).abs() < 1e-9);
    }

    #[test]
    fn range_bisection_consistent() {
        let b = budget();
        let tx = Watts::from_dbm(13.0);
        let sens = Watts::from_dbm(-45.0);
        let r = b
            .range_for_sensitivity(LinkKind::PassiveRx, tx, sens)
            .expect("reachable");
        // At the returned range the received power matches the sensitivity.
        let rx = b.received_power(LinkKind::PassiveRx, tx, r);
        assert!(
            (rx.dbm() - sens.dbm()).abs() < 0.01,
            "rx {} at {}",
            rx.dbm(),
            r
        );
    }

    #[test]
    fn range_none_when_unreachable() {
        let b = budget();
        // Sensitivity far above what even 5 cm separation delivers.
        let r = b.range_for_sensitivity(
            LinkKind::Backscatter,
            Watts::from_microwatts(1.0),
            Watts::from_dbm(10.0),
        );
        assert!(r.is_none());
    }

    #[test]
    fn backscatter_range_shorter_than_passive() {
        let b = budget();
        let tx = Watts::from_dbm(13.0);
        let sens = Watts::from_dbm(-55.0);
        let r_bs = b
            .range_for_sensitivity(LinkKind::Backscatter, tx, sens)
            .unwrap();
        let r_p = b
            .range_for_sensitivity(LinkKind::PassiveRx, tx, sens)
            .unwrap();
        assert!(r_bs < r_p, "backscatter {r_bs} vs passive {r_p}");
    }
}
