//! Path-loss models.
//!
//! Braidio's three link modes see two different budgets:
//!
//! * **Active** and **passive-receiver** links are one-way: free-space
//!   (Friis) loss, `∝ d²`.
//! * **Backscatter** links are two-way: the carrier travels to the tag, is
//!   reflected with a modulation loss, and travels back — `∝ d⁴` plus the
//!   backscatter conversion loss. This is why the backscatter regime
//!   collapses at 2.4 m while the passive receiver works to ~5 m (Fig. 13),
//!   and the regime structure of Fig. 8 follows directly from it.

use braidio_units::{Decibels, Hertz, Meters};
use core::f64::consts::PI;

/// Minimum modelled separation. Friis is a far-field model; below roughly a
/// wavelength it diverges, so the calculators clamp distance to this floor
/// (the paper's closest measurement point is 0.3 m).
pub const NEAR_FIELD_FLOOR: Meters = Meters::new(0.05);

/// One-way free-space (Friis) path loss at distance `d` and frequency `f`,
/// returned as a (negative) gain in dB.
///
/// `FSPL = (4πd/λ)²`; we return `-10·log10(FSPL)` so it composes with other
/// [`Decibels`] gains by addition.
pub fn free_space_gain(d: Meters, f: Hertz) -> Decibels {
    let d = d.max(NEAR_FIELD_FLOOR);
    let lambda = f.wavelength().meters();
    let ratio = 4.0 * PI * d.meters() / lambda;
    Decibels::new(-20.0 * ratio.log10())
}

/// Conventional positive-valued free-space path loss in dB
/// (`free_space_loss = -free_space_gain`).
pub fn free_space_loss(d: Meters, f: Hertz) -> Decibels {
    -free_space_gain(d, f)
}

/// Parameters of a backscatter (two-way) budget.
#[derive(Debug, Clone, Copy)]
pub struct BackscatterLoss {
    /// Loss of the tag's modulated reflection relative to an ideal
    /// re-radiator: impedance-mismatch modulation depth, transistor on-state
    /// loss, polarization. Around 5–8 dB for Moo/WISP-class tags.
    pub modulation_loss: Decibels,
}

impl Default for BackscatterLoss {
    fn default() -> Self {
        BackscatterLoss {
            // Calibrated with the rest of the backscatter budget so the
            // BER=1e-2 crossing at 100 kbps lands at the paper's 1.8 m.
            modulation_loss: Decibels::new(6.0),
        }
    }
}

/// Two-way backscatter channel gain: reader → tag → reader(-side receive
/// antenna), both legs Friis, plus the tag's modulation loss.
///
/// `d_forward` is carrier-emitter → tag, `d_back` is tag → receive antenna;
/// for the usual monostatic approximation pass the same distance twice.
pub fn backscatter_gain(
    d_forward: Meters,
    d_back: Meters,
    f: Hertz,
    loss: BackscatterLoss,
) -> Decibels {
    free_space_gain(d_forward, f) + free_space_gain(d_back, f) - loss.modulation_loss
}

/// Two-ray (ground-reflection) channel gain: the line-of-sight path plus a
/// single floor bounce with reflection coefficient `ground_reflect`
/// (−1 ≤ Γ < 0 for typical grazing incidence).
///
/// At bench distances this produces the familiar ripple around Friis; far
/// beyond the breakpoint `d_b ≈ 4·h_tx·h_rx/λ` it converges to the d⁴
/// regime. The paper's experiments sit on a table (~1 m heights) in a
/// 6 m × 6 m room, so the ripple — not the asymptotic slope — is the
/// relevant effect, and it is one source of the non-monotonic BER wiggles
/// visible in Fig. 13's measured curves.
pub fn two_ray_gain(
    d: Meters,
    h_tx: Meters,
    h_rx: Meters,
    f: Hertz,
    ground_reflect: f64,
) -> Decibels {
    assert!(
        (-1.0..=0.0).contains(&ground_reflect),
        "grazing ground reflection must be in [-1, 0]"
    );
    let d = d.max(NEAR_FIELD_FLOOR).meters();
    let lambda = f.wavelength().meters();
    let (ht, hr) = (h_tx.meters(), h_rx.meters());
    // Exact path lengths.
    let d_los = (d * d + (ht - hr) * (ht - hr)).sqrt();
    let d_ref = (d * d + (ht + hr) * (ht + hr)).sqrt();
    let k = 2.0 * core::f64::consts::PI / lambda;
    // Complex sum of the two rays, each with 1/d amplitude.
    let re = (k * d_los).cos() / d_los + ground_reflect * (k * d_ref).cos() / d_ref;
    let im = -(k * d_los).sin() / d_los - ground_reflect * (k * d_ref).sin() / d_ref;
    let amp = (re * re + im * im).sqrt() * lambda / (4.0 * core::f64::consts::PI);
    Decibels::new(20.0 * amp.log10())
}

/// The two-ray breakpoint distance `4·h_tx·h_rx/λ` past which the model
/// leaves the rippling region and rolls off as d⁴.
pub fn two_ray_breakpoint(h_tx: Meters, h_rx: Meters, f: Hertz) -> Meters {
    Meters::new(4.0 * h_tx.meters() * h_rx.meters() / f.wavelength().meters())
}

/// Log-distance path-loss gain with exponent `n` referenced to 1 m
/// free-space loss. `n = 2.0` reproduces Friis; indoor NLOS settings use
/// `n ≈ 2.5–3.5`. Used by the fading module for shadowed variants.
pub fn log_distance_gain(d: Meters, f: Hertz, n: f64) -> Decibels {
    let d = d.max(NEAR_FIELD_FLOOR);
    let ref_gain = free_space_gain(Meters::new(1.0), f);
    ref_gain - Decibels::new(10.0 * n * d.meters().log10())
}

#[cfg(test)]
mod tests {
    use super::*;

    const F: Hertz = Hertz::UHF_915M;

    #[test]
    fn friis_at_known_distance() {
        // At 915 MHz, 1 m: 20·log10(4π/0.3276) = 31.7 dB loss.
        let loss = free_space_loss(Meters::new(1.0), F);
        assert!((loss.db() - 31.67).abs() < 0.05, "got {loss}");
    }

    #[test]
    fn doubling_distance_costs_6db() {
        let l1 = free_space_loss(Meters::new(1.0), F);
        let l2 = free_space_loss(Meters::new(2.0), F);
        assert!(((l2 - l1).db() - 6.0206).abs() < 1e-3);
    }

    #[test]
    fn gain_is_negative_loss() {
        let d = Meters::new(3.0);
        assert_eq!(free_space_gain(d, F), -free_space_loss(d, F));
    }

    #[test]
    fn backscatter_is_twice_friis_plus_modulation() {
        let d = Meters::new(1.0);
        let g = backscatter_gain(d, d, F, BackscatterLoss::default());
        let expected = free_space_gain(d, F) * 2.0 - Decibels::new(6.0);
        assert!((g.db() - expected.db()).abs() < 1e-9);
    }

    #[test]
    fn backscatter_slope_is_12db_per_doubling() {
        let b = BackscatterLoss::default();
        let g1 = backscatter_gain(Meters::new(1.0), Meters::new(1.0), F, b);
        let g2 = backscatter_gain(Meters::new(2.0), Meters::new(2.0), F, b);
        assert!(((g1 - g2).db() - 12.04).abs() < 0.01);
    }

    #[test]
    fn near_field_clamp() {
        // Below the floor the gain stops growing.
        let g_floor = free_space_gain(NEAR_FIELD_FLOOR, F);
        let g_below = free_space_gain(Meters::new(0.001), F);
        assert_eq!(g_floor.db(), g_below.db());
    }

    #[test]
    fn two_ray_ripples_around_friis_close_in() {
        // Before the breakpoint the two-ray gain oscillates around Friis:
        // it must cross it (both above and below) over a bench-scale sweep.
        let (ht, hr) = (Meters::new(1.0), Meters::new(1.0));
        let mut above = false;
        let mut below = false;
        for i in 1..200 {
            let d = Meters::new(0.3 + 0.02 * i as f64);
            let tr = two_ray_gain(d, ht, hr, F, -1.0);
            let fs = free_space_gain(d, F);
            if tr > fs {
                above = true;
            }
            if tr < fs {
                below = true;
            }
        }
        assert!(above && below, "two-ray should ripple around Friis");
    }

    #[test]
    fn two_ray_asymptote_is_d4() {
        // Far beyond the breakpoint the slope approaches 12 dB/octave.
        let (ht, hr) = (Meters::new(1.0), Meters::new(1.0));
        let bp = two_ray_breakpoint(ht, hr, F);
        let d1 = Meters::new(bp.meters() * 20.0);
        let d2 = Meters::new(bp.meters() * 40.0);
        let drop = (two_ray_gain(d1, ht, hr, F, -1.0) - two_ray_gain(d2, ht, hr, F, -1.0)).db();
        assert!((drop - 12.0).abs() < 1.0, "drop {drop} dB per octave");
    }

    #[test]
    fn two_ray_breakpoint_formula() {
        let bp = two_ray_breakpoint(Meters::new(1.0), Meters::new(1.0), F);
        assert!((bp.meters() - 4.0 / F.wavelength().meters()).abs() < 1e-9);
        assert!(
            bp.meters() > 6.0,
            "bench experiments sit inside the ripple zone"
        );
    }

    #[test]
    #[should_panic(expected = "ground reflection")]
    fn two_ray_rejects_bad_coefficient() {
        let _ = two_ray_gain(Meters::new(1.0), Meters::new(1.0), Meters::new(1.0), F, 0.5);
    }

    #[test]
    fn log_distance_matches_friis_for_n2() {
        for d in [0.5, 1.0, 2.0, 4.0] {
            let a = log_distance_gain(Meters::new(d), F, 2.0);
            let b = free_space_gain(Meters::new(d), F);
            assert!((a.db() - b.db()).abs() < 1e-9, "d={d}");
        }
    }

    #[test]
    fn log_distance_steeper_for_larger_n() {
        let d = Meters::new(4.0);
        let n2 = log_distance_gain(d, F, 2.0);
        let n3 = log_distance_gain(d, F, 3.0);
        assert!(n3 < n2);
    }
}
