//! Path-loss models.
//!
//! Braidio's three link modes see two different budgets:
//!
//! * **Active** and **passive-receiver** links are one-way: free-space
//!   (Friis) loss, `∝ d²`.
//! * **Backscatter** links are two-way: the carrier travels to the tag, is
//!   reflected with a modulation loss, and travels back — `∝ d⁴` plus the
//!   backscatter conversion loss. This is why the backscatter regime
//!   collapses at 2.4 m while the passive receiver works to ~5 m (Fig. 13),
//!   and the regime structure of Fig. 8 follows directly from it.

use braidio_units::{Decibels, Hertz, Meters};
use core::f64::consts::PI;
use core::sync::atomic::{AtomicU64, Ordering};
use std::sync::RwLock;

/// Minimum modelled separation. Friis is a far-field model; below roughly a
/// wavelength it diverges, so the calculators clamp distance to this floor
/// (the paper's closest measurement point is 0.3 m).
pub const NEAR_FIELD_FLOOR: Meters = Meters::new(0.05);

/// One-way free-space (Friis) path loss at distance `d` and frequency `f`,
/// returned as a (negative) gain in dB.
///
/// `FSPL = (4πd/λ)²`; we return `-10·log10(FSPL)` so it composes with other
/// [`Decibels`] gains by addition.
pub fn free_space_gain(d: Meters, f: Hertz) -> Decibels {
    let d = d.max(NEAR_FIELD_FLOOR);
    let lambda = f.wavelength().meters();
    let ratio = 4.0 * PI * d.meters() / lambda;
    Decibels::new(-20.0 * ratio.log10())
}

/// Conventional positive-valued free-space path loss in dB
/// (`free_space_loss = -free_space_gain`).
pub fn free_space_loss(d: Meters, f: Hertz) -> Decibels {
    -free_space_gain(d, f)
}

/// Sentinel for an empty slot in [`FsplMemo`]'s open-addressed table.
/// `u64::MAX` is the bit pattern of a *negative* NaN, which no physical
/// distance (`Point::distance` is a non-negative `hypot`) can produce; the
/// lookup falls back to direct evaluation if it ever sees it.
const FSPL_EMPTY_KEY: u64 = u64::MAX;

/// Initial table capacity (slots). Power of two; grows by doubling at 50 %
/// load. A √N×√N grid has O(N) distinct pair distances, so the steady-state
/// table is tens of thousands of entries at the 10⁵-pair rung.
const FSPL_INITIAL_CAP: usize = 1024;

/// Open-addressed `u64 → f64` table with fibonacci hashing and linear
/// probing. Hand-rolled because the memo sits on the interference hot path
/// (~10¹⁰ lookups per large planning wave): a general-purpose `HashMap`
/// with a DoS-resistant hasher costs more per hit than the `log10`+`powf`
/// it saves at small scales.
struct FsplTable {
    keys: Vec<u64>,
    vals: Vec<f64>,
    len: usize,
}

impl FsplTable {
    fn with_capacity(cap: usize) -> Self {
        debug_assert!(cap.is_power_of_two());
        FsplTable {
            keys: vec![FSPL_EMPTY_KEY; cap],
            vals: vec![0.0; cap],
            len: 0,
        }
    }

    /// Slot of `key`, or of the empty slot where it would be inserted.
    #[inline]
    fn slot(&self, key: u64) -> usize {
        let mask = self.keys.len() - 1;
        let mut i = (key.wrapping_mul(0x9E37_79B9_7F4A_7C15) >> 32) as usize & mask;
        loop {
            let k = self.keys[i];
            if k == key || k == FSPL_EMPTY_KEY {
                return i;
            }
            i = (i + 1) & mask;
        }
    }

    #[inline]
    fn get(&self, key: u64) -> Option<f64> {
        let i = self.slot(key);
        if self.keys[i] == key {
            Some(self.vals[i])
        } else {
            None
        }
    }

    fn insert(&mut self, key: u64, val: f64) {
        if (self.len + 1) * 2 > self.keys.len() {
            let mut bigger = FsplTable::with_capacity(self.keys.len() * 2);
            for (k, v) in self.keys.iter().zip(&self.vals) {
                if *k != FSPL_EMPTY_KEY {
                    bigger.insert(*k, *v);
                }
            }
            *self = bigger;
        }
        let i = self.slot(key);
        if self.keys[i] != key {
            self.keys[i] = key;
            self.vals[i] = val;
            self.len += 1;
        }
    }
}

/// An exact free-space-path-loss memo: `distance.to_bits() → linear gain`.
///
/// The interference edge kernel evaluates [`free_space_gain`] followed by
/// `Decibels::linear` — one `log10` and one `powf` — per edge, but a
/// √N×√N grid only realizes O(N) distinct distances, so at 10⁴–10⁵ pairs
/// upwards of 99.99 % of those transcendental evaluations are repeats.
/// This memo collapses them: a **miss** runs the canonical
/// `free_space_gain(d, f).linear()` evaluation and stores the result; a
/// **hit** returns the stored `f64`, bit-identical to what the canonical
/// evaluation would produce for the same input bits. Keys are the *raw*
/// distance bits (the canonical evaluation applies the near-field floor
/// itself), so the memo is a pure function of its key and never needs
/// invalidation — mobility, death and relation changes are all just new or
/// repeated keys.
///
/// Thread-safe: lookups take a read lock, misses a write lock. Concurrent
/// duplicate misses insert identical bits, so races are benign and results
/// stay independent of thread count. Hit/miss counters (relaxed atomics)
/// feed the `net.fspl.{hit,miss}` telemetry and the bench report.
pub struct FsplMemo {
    f: Hertz,
    table: RwLock<FsplTable>,
    hits: AtomicU64,
    misses: AtomicU64,
}

impl FsplMemo {
    /// An empty memo for carriers at frequency `f`.
    pub fn new(f: Hertz) -> Self {
        FsplMemo {
            f,
            table: RwLock::new(FsplTable::with_capacity(FSPL_INITIAL_CAP)),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
        }
    }

    /// The carrier frequency the memo was built for.
    pub fn frequency(&self) -> Hertz {
        self.f
    }

    /// `free_space_gain(d, f).linear()`, memoized exactly.
    #[inline]
    pub fn linear(&self, d: Meters) -> f64 {
        self.lookup(d).0
    }

    /// [`FsplMemo::linear`] plus whether the lookup was a hit — callers
    /// that keep their own hit/miss telemetry use this form.
    #[inline]
    pub fn lookup(&self, d: Meters) -> (f64, bool) {
        let key = d.meters().to_bits();
        if key != FSPL_EMPTY_KEY {
            if let Some(v) = self.table.read().expect("fspl memo poisoned").get(key) {
                self.hits.fetch_add(1, Ordering::Relaxed);
                return (v, true);
            }
        }
        self.misses.fetch_add(1, Ordering::Relaxed);
        let v = free_space_gain(d, self.f).linear();
        if key != FSPL_EMPTY_KEY {
            self.table
                .write()
                .expect("fspl memo poisoned")
                .insert(key, v);
        }
        (v, false)
    }

    /// Memoized lookup for a whole tile of distances: `out[i]` receives the
    /// linear gain for `ds[i]`. Returns `(hits, misses)` for this call.
    ///
    /// Identical results to calling [`FsplMemo::linear`] per element; the
    /// point is one read-lock acquisition per tile instead of one per edge,
    /// which is where the tiled sweep actually earns its keep.
    pub fn linear_batch(&self, ds: &[Meters], out: &mut [f64]) -> (u64, u64) {
        assert_eq!(ds.len(), out.len());
        let mut miss_at = [0usize; 64];
        let mut nmiss = 0usize;
        let mut extra_misses: Vec<usize> = Vec::new();
        {
            let table = self.table.read().expect("fspl memo poisoned");
            for (i, d) in ds.iter().enumerate() {
                let key = d.meters().to_bits();
                match if key == FSPL_EMPTY_KEY {
                    None
                } else {
                    table.get(key)
                } {
                    Some(v) => out[i] = v,
                    None => {
                        if nmiss < miss_at.len() {
                            miss_at[nmiss] = i;
                        } else {
                            extra_misses.push(i);
                        }
                        nmiss += 1;
                    }
                }
            }
        }
        let hits = (ds.len() - nmiss) as u64;
        self.hits.fetch_add(hits, Ordering::Relaxed);
        if nmiss > 0 {
            self.misses.fetch_add(nmiss as u64, Ordering::Relaxed);
            let mut table = self.table.write().expect("fspl memo poisoned");
            let fixed = nmiss.min(miss_at.len());
            for &i in miss_at[..fixed].iter().chain(extra_misses.iter()) {
                let v = free_space_gain(ds[i], self.f).linear();
                out[i] = v;
                let key = ds[i].meters().to_bits();
                if key != FSPL_EMPTY_KEY {
                    table.insert(key, v);
                }
            }
        }
        (hits, nmiss as u64)
    }

    /// Total lookup hits since construction.
    pub fn hits(&self) -> u64 {
        self.hits.load(Ordering::Relaxed)
    }

    /// Total lookup misses (canonical evaluations) since construction.
    pub fn misses(&self) -> u64 {
        self.misses.load(Ordering::Relaxed)
    }

    /// Number of distinct distances resident in the table.
    pub fn len(&self) -> usize {
        self.table.read().expect("fspl memo poisoned").len
    }

    /// True if no distance has been memoized yet.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl core::fmt::Debug for FsplMemo {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.debug_struct("FsplMemo")
            .field("f", &self.f)
            .field("len", &self.len())
            .field("hits", &self.hits())
            .field("misses", &self.misses())
            .finish()
    }
}

/// Parameters of a backscatter (two-way) budget.
#[derive(Debug, Clone, Copy)]
pub struct BackscatterLoss {
    /// Loss of the tag's modulated reflection relative to an ideal
    /// re-radiator: impedance-mismatch modulation depth, transistor on-state
    /// loss, polarization. Around 5–8 dB for Moo/WISP-class tags.
    pub modulation_loss: Decibels,
}

impl Default for BackscatterLoss {
    fn default() -> Self {
        BackscatterLoss {
            // Calibrated with the rest of the backscatter budget so the
            // BER=1e-2 crossing at 100 kbps lands at the paper's 1.8 m.
            modulation_loss: Decibels::new(6.0),
        }
    }
}

/// Two-way backscatter channel gain: reader → tag → reader(-side receive
/// antenna), both legs Friis, plus the tag's modulation loss.
///
/// `d_forward` is carrier-emitter → tag, `d_back` is tag → receive antenna;
/// for the usual monostatic approximation pass the same distance twice.
pub fn backscatter_gain(
    d_forward: Meters,
    d_back: Meters,
    f: Hertz,
    loss: BackscatterLoss,
) -> Decibels {
    free_space_gain(d_forward, f) + free_space_gain(d_back, f) - loss.modulation_loss
}

/// Two-ray (ground-reflection) channel gain: the line-of-sight path plus a
/// single floor bounce with reflection coefficient `ground_reflect`
/// (−1 ≤ Γ < 0 for typical grazing incidence).
///
/// At bench distances this produces the familiar ripple around Friis; far
/// beyond the breakpoint `d_b ≈ 4·h_tx·h_rx/λ` it converges to the d⁴
/// regime. The paper's experiments sit on a table (~1 m heights) in a
/// 6 m × 6 m room, so the ripple — not the asymptotic slope — is the
/// relevant effect, and it is one source of the non-monotonic BER wiggles
/// visible in Fig. 13's measured curves.
pub fn two_ray_gain(
    d: Meters,
    h_tx: Meters,
    h_rx: Meters,
    f: Hertz,
    ground_reflect: f64,
) -> Decibels {
    assert!(
        (-1.0..=0.0).contains(&ground_reflect),
        "grazing ground reflection must be in [-1, 0]"
    );
    let d = d.max(NEAR_FIELD_FLOOR).meters();
    let lambda = f.wavelength().meters();
    let (ht, hr) = (h_tx.meters(), h_rx.meters());
    // Exact path lengths.
    let d_los = (d * d + (ht - hr) * (ht - hr)).sqrt();
    let d_ref = (d * d + (ht + hr) * (ht + hr)).sqrt();
    let k = 2.0 * core::f64::consts::PI / lambda;
    // Complex sum of the two rays, each with 1/d amplitude.
    let re = (k * d_los).cos() / d_los + ground_reflect * (k * d_ref).cos() / d_ref;
    let im = -(k * d_los).sin() / d_los - ground_reflect * (k * d_ref).sin() / d_ref;
    let amp = (re * re + im * im).sqrt() * lambda / (4.0 * core::f64::consts::PI);
    Decibels::new(20.0 * amp.log10())
}

/// The two-ray breakpoint distance `4·h_tx·h_rx/λ` past which the model
/// leaves the rippling region and rolls off as d⁴.
pub fn two_ray_breakpoint(h_tx: Meters, h_rx: Meters, f: Hertz) -> Meters {
    Meters::new(4.0 * h_tx.meters() * h_rx.meters() / f.wavelength().meters())
}

/// Log-distance path-loss gain with exponent `n` referenced to 1 m
/// free-space loss. `n = 2.0` reproduces Friis; indoor NLOS settings use
/// `n ≈ 2.5–3.5`. Used by the fading module for shadowed variants.
pub fn log_distance_gain(d: Meters, f: Hertz, n: f64) -> Decibels {
    let d = d.max(NEAR_FIELD_FLOOR);
    let ref_gain = free_space_gain(Meters::new(1.0), f);
    ref_gain - Decibels::new(10.0 * n * d.meters().log10())
}

#[cfg(test)]
mod tests {
    use super::*;

    const F: Hertz = Hertz::UHF_915M;

    #[test]
    fn friis_at_known_distance() {
        // At 915 MHz, 1 m: 20·log10(4π/0.3276) = 31.7 dB loss.
        let loss = free_space_loss(Meters::new(1.0), F);
        assert!((loss.db() - 31.67).abs() < 0.05, "got {loss}");
    }

    #[test]
    fn doubling_distance_costs_6db() {
        let l1 = free_space_loss(Meters::new(1.0), F);
        let l2 = free_space_loss(Meters::new(2.0), F);
        assert!(((l2 - l1).db() - 6.0206).abs() < 1e-3);
    }

    #[test]
    fn gain_is_negative_loss() {
        let d = Meters::new(3.0);
        assert_eq!(free_space_gain(d, F), -free_space_loss(d, F));
    }

    #[test]
    fn backscatter_is_twice_friis_plus_modulation() {
        let d = Meters::new(1.0);
        let g = backscatter_gain(d, d, F, BackscatterLoss::default());
        let expected = free_space_gain(d, F) * 2.0 - Decibels::new(6.0);
        assert!((g.db() - expected.db()).abs() < 1e-9);
    }

    #[test]
    fn backscatter_slope_is_12db_per_doubling() {
        let b = BackscatterLoss::default();
        let g1 = backscatter_gain(Meters::new(1.0), Meters::new(1.0), F, b);
        let g2 = backscatter_gain(Meters::new(2.0), Meters::new(2.0), F, b);
        assert!(((g1 - g2).db() - 12.04).abs() < 0.01);
    }

    #[test]
    fn near_field_clamp() {
        // Below the floor the gain stops growing.
        let g_floor = free_space_gain(NEAR_FIELD_FLOOR, F);
        let g_below = free_space_gain(Meters::new(0.001), F);
        assert_eq!(g_floor.db(), g_below.db());
    }

    #[test]
    fn two_ray_ripples_around_friis_close_in() {
        // Before the breakpoint the two-ray gain oscillates around Friis:
        // it must cross it (both above and below) over a bench-scale sweep.
        let (ht, hr) = (Meters::new(1.0), Meters::new(1.0));
        let mut above = false;
        let mut below = false;
        for i in 1..200 {
            let d = Meters::new(0.3 + 0.02 * i as f64);
            let tr = two_ray_gain(d, ht, hr, F, -1.0);
            let fs = free_space_gain(d, F);
            if tr > fs {
                above = true;
            }
            if tr < fs {
                below = true;
            }
        }
        assert!(above && below, "two-ray should ripple around Friis");
    }

    #[test]
    fn two_ray_asymptote_is_d4() {
        // Far beyond the breakpoint the slope approaches 12 dB/octave.
        let (ht, hr) = (Meters::new(1.0), Meters::new(1.0));
        let bp = two_ray_breakpoint(ht, hr, F);
        let d1 = Meters::new(bp.meters() * 20.0);
        let d2 = Meters::new(bp.meters() * 40.0);
        let drop = (two_ray_gain(d1, ht, hr, F, -1.0) - two_ray_gain(d2, ht, hr, F, -1.0)).db();
        assert!((drop - 12.0).abs() < 1.0, "drop {drop} dB per octave");
    }

    #[test]
    fn two_ray_breakpoint_formula() {
        let bp = two_ray_breakpoint(Meters::new(1.0), Meters::new(1.0), F);
        assert!((bp.meters() - 4.0 / F.wavelength().meters()).abs() < 1e-9);
        assert!(
            bp.meters() > 6.0,
            "bench experiments sit inside the ripple zone"
        );
    }

    #[test]
    #[should_panic(expected = "ground reflection")]
    fn two_ray_rejects_bad_coefficient() {
        let _ = two_ray_gain(Meters::new(1.0), Meters::new(1.0), Meters::new(1.0), F, 0.5);
    }

    #[test]
    fn log_distance_matches_friis_for_n2() {
        for d in [0.5, 1.0, 2.0, 4.0] {
            let a = log_distance_gain(Meters::new(d), F, 2.0);
            let b = free_space_gain(Meters::new(d), F);
            assert!((a.db() - b.db()).abs() < 1e-9, "d={d}");
        }
    }

    #[test]
    fn log_distance_steeper_for_larger_n() {
        let d = Meters::new(4.0);
        let n2 = log_distance_gain(d, F, 2.0);
        let n3 = log_distance_gain(d, F, 3.0);
        assert!(n3 < n2);
    }

    #[test]
    fn fspl_memo_is_bitwise_exact() {
        let memo = FsplMemo::new(F);
        // Sweep including the degenerate cases: zero, below the near-field
        // floor, exactly on it, and repeats of every value (hit path).
        let ds = [0.0, 0.001, 0.05, 0.3, 1.0, 2.5, 3.0, 17.25, 424.2];
        for _ in 0..3 {
            for &d in &ds {
                let got = memo.linear(Meters::new(d));
                let want = free_space_gain(Meters::new(d), F).linear();
                assert_eq!(got.to_bits(), want.to_bits(), "d={d}");
            }
        }
        assert_eq!(memo.misses(), ds.len() as u64);
        assert_eq!(memo.hits(), 2 * ds.len() as u64);
        assert_eq!(memo.len(), ds.len());
    }

    #[test]
    fn fspl_memo_batch_matches_scalar_bitwise() {
        let scalar = FsplMemo::new(F);
        let batch = FsplMemo::new(F);
        // Two rounds over a tile with in-tile duplicates: round one is all
        // misses, round two all hits.
        let ds: Vec<Meters> = (0..100)
            .map(|i| Meters::new(0.25 * (i % 37) as f64))
            .collect();
        for _ in 0..2 {
            let mut out = vec![0.0; ds.len()];
            let (h, m) = batch.linear_batch(&ds, &mut out);
            assert_eq!(h + m, ds.len() as u64);
            for (d, got) in ds.iter().zip(&out) {
                assert_eq!(got.to_bits(), scalar.linear(*d).to_bits(), "{d:?}");
            }
        }
        assert_eq!(batch.hits() + batch.misses(), 2 * ds.len() as u64);
        // 37 distinct distances, the rest hits.
        assert_eq!(batch.len(), 37);
        assert_eq!(batch.misses(), 100); // round one: in-tile duplicates all miss
    }

    #[test]
    fn fspl_memo_survives_table_growth() {
        let memo = FsplMemo::new(F);
        // More distinct keys than the initial capacity can hold at 50 %
        // load: forces several rehashes, and every value must survive them.
        let n = 4096;
        for i in 0..n {
            let _ = memo.linear(Meters::new(0.01 * i as f64));
        }
        assert_eq!(memo.len(), n);
        for i in 0..n {
            let d = Meters::new(0.01 * i as f64);
            assert_eq!(
                memo.linear(d).to_bits(),
                free_space_gain(d, F).linear().to_bits()
            );
        }
        assert_eq!(memo.misses(), n as u64);
        assert_eq!(memo.hits(), n as u64);
    }
}
