//! RF propagation substrate for the Braidio reproduction.
//!
//! The paper characterizes its hardware over the air; we replace the
//! over-the-air part with first-principles models:
//!
//! * [`geometry`] — 2-D positions for antennas/devices (the paper's
//!   experiments live in a 6 m × 6 m room).
//! * [`pathloss`] — Friis free-space loss and the two-way backscatter budget.
//! * [`channel`] — complex-baseband channel gains (amplitude *and* phase),
//!   the ingredient the envelope detector's phase-cancellation problem is
//!   made of.
//! * [`phase_cancel`] — the §3.2 analysis: background + backscatter phasors,
//!   nulls, and 2-antenna diversity (Figs. 4–6).
//! * [`fading`] — Rayleigh/Rician block fading with a coherence time, and
//!   log-normal shadowing, all deterministically seeded.
//! * [`noise`] — thermal floor, noise figures, detector noise-equivalent
//!   power.
//! * [`interference`] — out-of-band interferers and the SAW front-end filter
//!   that suppresses them.
//! * [`linkbudget`] — the calculator gluing it together: received power and
//!   SNR for active, passive-receiver and backscatter links.
//! * [`fault`] — smoltcp-style fault injection knobs (drop/corrupt chance)
//!   used by the MAC-layer link simulator.

#![warn(missing_docs)]

pub mod antenna;
pub mod channel;
pub mod fading;
pub mod fault;
pub mod geometry;
pub mod interference;
pub mod linkbudget;
pub mod noise;
pub mod pathloss;
pub mod phase_cancel;

pub use channel::ChannelGain;
pub use geometry::Point;
pub use linkbudget::{LinkBudget, LinkKind};
