//! Out-of-band interference and the SAW front-end filter.
//!
//! A bare envelope detector "just looks at the energy in a wide bandwidth"
//! (§3.2) — a nearby cellphone or WiFi router will happily toggle the
//! comparator. Braidio fixes this with a passive SAW filter (SF2049E-class,
//! Table 4: 50 dB suppression at the 800 MHz cellular band, >30 dB at
//! 2.4 GHz). This module models interferers and the filter's piecewise
//! response so the PHY can compute residual in-band interference.

use braidio_units::{Decibels, Hertz, Watts};

/// A continuous-wave interference source as seen at the receive antenna
/// (i.e. already including its own path loss).
#[derive(Debug, Clone, Copy)]
pub struct Interferer {
    /// Center frequency of the interferer.
    pub frequency: Hertz,
    /// Power at the victim antenna.
    pub power: Watts,
}

impl Interferer {
    /// An 800 MHz-band cellular uplink interferer.
    pub fn cellular(power: Watts) -> Self {
        Interferer {
            frequency: Hertz::from_mhz(850.0),
            power,
        }
    }

    /// A 2.4 GHz WiFi interferer.
    pub fn wifi(power: Watts) -> Self {
        Interferer {
            frequency: Hertz::ISM_2G4,
            power,
        }
    }

    /// An in-band (915 MHz ISM) interferer — the case the SAW filter cannot
    /// help with ("may be interfered by in-band signal", Table 3).
    pub fn in_band(power: Watts) -> Self {
        Interferer {
            frequency: Hertz::UHF_915M,
            power,
        }
    }
}

/// A passive SAW band-pass filter with a piecewise-constant rejection mask.
#[derive(Debug, Clone, Copy)]
pub struct SawFilter {
    /// Passband center.
    pub center: Hertz,
    /// Passband full width.
    pub bandwidth: Hertz,
    /// Loss inside the passband (SAW filters have ~2 dB insertion loss).
    pub insertion_loss: Decibels,
    /// Rejection in the near stopband (adjacent bands, e.g. 800 MHz
    /// cellular next to the 915 MHz ISM band).
    pub near_rejection: Decibels,
    /// Rejection in the far stopband (e.g. 2.4 GHz).
    pub far_rejection: Decibels,
}

impl SawFilter {
    /// The SF2049E-class filter used on Braidio's front end (Table 4):
    /// 915 MHz ISM passband, 50 dB suppression at 800 MHz, >30 dB at
    /// 2.4 GHz.
    pub fn sf2049e() -> Self {
        SawFilter {
            center: Hertz::UHF_915M,
            bandwidth: Hertz::from_mhz(26.0),
            insertion_loss: Decibels::new(2.0),
            near_rejection: Decibels::new(50.0),
            far_rejection: Decibels::new(30.0),
        }
    }

    /// The filter's gain (≤ 0 dB) at frequency `f`.
    pub fn gain_at(&self, f: Hertz) -> Decibels {
        let offset = (f.hz() - self.center.hz()).abs();
        if offset <= self.bandwidth.hz() / 2.0 {
            -self.insertion_loss
        } else if offset <= self.center.hz() * 0.5 {
            // Near stopband: within ±50 % of center (covers 800 MHz cellular).
            -self.near_rejection
        } else {
            // Far stopband (2.4 GHz WiFi and beyond). Real SAW far-band
            // rejection is usually *better* than the close-in spec, but we
            // use the conservative datasheet number.
            -self.far_rejection
        }
    }

    /// Residual power of one interferer after the filter.
    pub fn residual(&self, i: Interferer) -> Watts {
        i.power.gained(self.gain_at(i.frequency))
    }

    /// Total residual interference power from a set of interferers
    /// (noncoherent power sum).
    pub fn total_residual(&self, interferers: &[Interferer]) -> Watts {
        interferers.iter().map(|&i| self.residual(i)).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn passband_only_insertion_loss() {
        let f = SawFilter::sf2049e();
        assert_eq!(f.gain_at(Hertz::UHF_915M).db(), -2.0);
        assert_eq!(f.gain_at(Hertz::from_mhz(910.0)).db(), -2.0);
    }

    #[test]
    fn cellular_band_heavily_rejected() {
        let f = SawFilter::sf2049e();
        assert_eq!(f.gain_at(Hertz::from_mhz(850.0)).db(), -50.0);
        assert_eq!(f.gain_at(Hertz::from_mhz(800.0)).db(), -50.0);
    }

    #[test]
    fn wifi_band_rejected() {
        let f = SawFilter::sf2049e();
        assert_eq!(f.gain_at(Hertz::ISM_2G4).db(), -30.0);
    }

    #[test]
    fn residual_power_math() {
        let f = SawFilter::sf2049e();
        let cell = Interferer::cellular(Watts::from_dbm(-20.0));
        assert!((f.residual(cell).dbm() + 70.0).abs() < 1e-9);
    }

    #[test]
    fn in_band_interference_passes_through() {
        let f = SawFilter::sf2049e();
        let jammer = Interferer::in_band(Watts::from_dbm(-30.0));
        // Only the insertion loss applies: the known weakness of the design.
        assert!((f.residual(jammer).dbm() + 32.0).abs() < 1e-9);
    }

    #[test]
    fn total_residual_sums_powers() {
        let f = SawFilter::sf2049e();
        let list = [
            Interferer::cellular(Watts::from_dbm(-20.0)),
            Interferer::wifi(Watts::from_dbm(-20.0)),
        ];
        let total = f.total_residual(&list);
        let expected = f.residual(list[0]) + f.residual(list[1]);
        assert!((total.watts() - expected.watts()).abs() < 1e-18);
    }
}
