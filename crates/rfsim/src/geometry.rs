//! Planar geometry for antenna and device placement.
//!
//! The paper's measurements happen on a bench in a 6 m × 6 m room; a 2-D
//! plane is all the geometry the models need. Positions are in meters.

use braidio_units::Meters;
use core::fmt;
use core::ops::{Add, Mul, Sub};

/// A point (or displacement) in the 2-D experiment plane, meters.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Point {
    /// X coordinate, meters.
    pub x: f64,
    /// Y coordinate, meters.
    pub y: f64,
}

impl Point {
    /// The origin.
    pub const ORIGIN: Point = Point { x: 0.0, y: 0.0 };

    /// A point from coordinates in meters.
    #[inline]
    pub const fn new(x: f64, y: f64) -> Self {
        Point { x, y }
    }

    /// Euclidean distance to another point.
    #[inline]
    pub fn distance(self, other: Point) -> Meters {
        Meters::new((self.x - other.x).hypot(self.y - other.y))
    }

    /// Euclidean norm of this point treated as a vector.
    #[inline]
    pub fn norm(self) -> f64 {
        self.x.hypot(self.y)
    }

    /// The midpoint between two points.
    #[inline]
    pub fn midpoint(self, other: Point) -> Point {
        Point::new(0.5 * (self.x + other.x), 0.5 * (self.y + other.y))
    }

    /// Unit vector from `self` toward `other`. Returns `None` when the
    /// points coincide.
    pub fn direction_to(self, other: Point) -> Option<Point> {
        let d = other - self;
        let n = d.norm();
        if n == 0.0 {
            None
        } else {
            Some(Point::new(d.x / n, d.y / n))
        }
    }

    /// A point displaced by `offset` meters along `direction` (assumed to be
    /// a unit vector).
    #[inline]
    pub fn offset_along(self, direction: Point, offset: Meters) -> Point {
        self + direction * offset.meters()
    }

    /// True if both coordinates are finite.
    #[inline]
    pub fn is_finite(self) -> bool {
        self.x.is_finite() && self.y.is_finite()
    }
}

impl fmt::Display for Point {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "({:.3}, {:.3}) m", self.x, self.y)
    }
}

impl Add for Point {
    type Output = Point;
    #[inline]
    fn add(self, rhs: Point) -> Point {
        Point::new(self.x + rhs.x, self.y + rhs.y)
    }
}

impl Sub for Point {
    type Output = Point;
    #[inline]
    fn sub(self, rhs: Point) -> Point {
        Point::new(self.x - rhs.x, self.y - rhs.y)
    }
}

impl Mul<f64> for Point {
    type Output = Point;
    #[inline]
    fn mul(self, rhs: f64) -> Point {
        Point::new(self.x * rhs, self.y * rhs)
    }
}

/// `n` points evenly spaced on a circle of radius `r` around `center`,
/// starting on the +x axis and proceeding counter-clockwise. Deterministic:
/// the layout is a pure function of the arguments (fleet star topologies).
pub fn ring(center: Point, r: Meters, n: usize) -> Vec<Point> {
    (0..n)
        .map(|i| {
            let theta = 2.0 * core::f64::consts::PI * i as f64 / n.max(1) as f64;
            Point::new(
                center.x + r.meters() * theta.cos(),
                center.y + r.meters() * theta.sin(),
            )
        })
        .collect()
}

/// `n` points on the x axis starting at `origin`, spaced `spacing` apart
/// (fleet rooms: one device pair per line position).
pub fn line(origin: Point, spacing: Meters, n: usize) -> Vec<Point> {
    (0..n)
        .map(|i| Point::new(origin.x + i as f64 * spacing.meters(), origin.y))
        .collect()
}

/// A rectangular sweep grid over the experiment plane (used for the Fig. 4b
/// heat map).
#[derive(Debug, Clone)]
pub struct Grid {
    /// Lower-left corner.
    pub min: Point,
    /// Upper-right corner.
    pub max: Point,
    /// Number of sample columns (x direction).
    pub nx: usize,
    /// Number of sample rows (y direction).
    pub ny: usize,
}

impl Grid {
    /// A square grid spanning `[0, side] × [0, side]` with `n × n` samples.
    pub fn square(side: Meters, n: usize) -> Self {
        Grid {
            min: Point::ORIGIN,
            max: Point::new(side.meters(), side.meters()),
            nx: n,
            ny: n,
        }
    }

    /// The sample point at column `ix`, row `iy`.
    pub fn point(&self, ix: usize, iy: usize) -> Point {
        assert!(ix < self.nx && iy < self.ny, "grid index out of range");
        let fx = if self.nx > 1 {
            ix as f64 / (self.nx - 1) as f64
        } else {
            0.0
        };
        let fy = if self.ny > 1 {
            iy as f64 / (self.ny - 1) as f64
        } else {
            0.0
        };
        Point::new(
            self.min.x + fx * (self.max.x - self.min.x),
            self.min.y + fy * (self.max.y - self.min.y),
        )
    }

    /// Iterate all sample points in row-major order with their indices.
    pub fn points(&self) -> impl Iterator<Item = (usize, usize, Point)> + '_ {
        (0..self.ny).flat_map(move |iy| (0..self.nx).map(move |ix| (ix, iy, self.point(ix, iy))))
    }

    /// Total number of samples.
    pub fn len(&self) -> usize {
        self.nx * self.ny
    }

    /// True if the grid has no samples.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn distance_is_euclidean() {
        let a = Point::new(0.0, 0.0);
        let b = Point::new(3.0, 4.0);
        assert!((a.distance(b).meters() - 5.0).abs() < 1e-12);
        assert_eq!(a.distance(b), b.distance(a));
    }

    #[test]
    fn midpoint_and_direction() {
        let a = Point::new(0.0, 0.0);
        let b = Point::new(2.0, 0.0);
        assert_eq!(a.midpoint(b), Point::new(1.0, 0.0));
        let d = a.direction_to(b).unwrap();
        assert!((d.x - 1.0).abs() < 1e-12 && d.y.abs() < 1e-12);
        assert!(a.direction_to(a).is_none());
    }

    #[test]
    fn offset_along_direction() {
        let a = Point::new(1.0, 1.0);
        let dir = Point::new(0.0, 1.0);
        let moved = a.offset_along(dir, Meters::from_cm(50.0));
        assert!((moved.y - 1.5).abs() < 1e-12);
    }

    #[test]
    fn grid_corners_and_count() {
        let g = Grid::square(Meters::new(2.0), 5);
        assert_eq!(g.len(), 25);
        assert_eq!(g.point(0, 0), Point::ORIGIN);
        assert_eq!(g.point(4, 4), Point::new(2.0, 2.0));
        assert_eq!(g.point(2, 0), Point::new(1.0, 0.0));
        assert_eq!(g.points().count(), 25);
    }

    #[test]
    #[should_panic(expected = "grid index out of range")]
    fn grid_bounds_checked() {
        let g = Grid::square(Meters::new(1.0), 2);
        let _ = g.point(2, 0);
    }

    #[test]
    fn ring_points_sit_on_the_circle() {
        let c = Point::new(1.0, -2.0);
        let pts = ring(c, Meters::new(3.0), 7);
        assert_eq!(pts.len(), 7);
        for p in &pts {
            assert!((c.distance(*p).meters() - 3.0).abs() < 1e-12);
        }
        // First point on the +x axis.
        assert!((pts[0].x - 4.0).abs() < 1e-12 && (pts[0].y + 2.0).abs() < 1e-12);
    }

    #[test]
    fn line_points_are_evenly_spaced() {
        let pts = line(Point::ORIGIN, Meters::new(2.0), 4);
        assert_eq!(pts.len(), 4);
        for (i, p) in pts.iter().enumerate() {
            assert!((p.x - 2.0 * i as f64).abs() < 1e-12);
            assert_eq!(p.y, 0.0);
        }
    }
}
