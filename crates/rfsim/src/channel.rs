//! Complex-baseband channel gains.
//!
//! Amplitude-only budgets are enough for SNR, but the envelope detector's
//! phase-cancellation problem (§3.2) depends on the *phase* relationship
//! between the self-interference (background) path and the backscatter path.
//! [`ChannelGain`] carries both: a complex gain `h` such that a transmitted
//! phasor `x` arrives as `h·x`.

use crate::geometry::Point;
use crate::pathloss::NEAR_FIELD_FLOOR;
use braidio_units::{Complex, Decibels, Hertz, Meters};
use core::f64::consts::PI;

/// A complex channel gain (amplitude ratio and phase rotation).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ChannelGain(pub Complex);

impl ChannelGain {
    /// The identity channel (no loss, no rotation).
    pub const UNITY: ChannelGain = ChannelGain(Complex::ONE);

    /// The free-space line-of-sight gain between two points:
    /// amplitude `λ/(4πd)`, phase `-2πd/λ`.
    pub fn line_of_sight(a: Point, b: Point, f: Hertz) -> Self {
        let d = a.distance(b).max(NEAR_FIELD_FLOOR);
        let lambda = f.wavelength().meters();
        let amp = lambda / (4.0 * PI * d.meters());
        let phase = -2.0 * PI * d.meters() / lambda;
        ChannelGain(Complex::from_polar(amp, phase))
    }

    /// A single-bounce reflected path `a → reflector → b` with a reflection
    /// coefficient `reflect` (complex, |reflect| ≤ 1 for passive surfaces).
    pub fn reflected(a: Point, reflector: Point, b: Point, f: Hertz, reflect: Complex) -> Self {
        let d = (a.distance(reflector) + reflector.distance(b)).max(NEAR_FIELD_FLOOR);
        let lambda = f.wavelength().meters();
        let amp = lambda / (4.0 * PI * d.meters());
        let phase = -2.0 * PI * d.meters() / lambda;
        ChannelGain(Complex::from_polar(amp, phase) * reflect)
    }

    /// Power gain of the channel in dB (negative for losses).
    pub fn power_db(self) -> Decibels {
        Decibels::new(10.0 * self.0.norm_sqr().log10())
    }

    /// Amplitude of the channel gain.
    pub fn amplitude(self) -> f64 {
        self.0.abs()
    }

    /// Phase rotation introduced by the channel, radians.
    pub fn phase(self) -> f64 {
        self.0.arg()
    }

    /// Cascade two channels (multiply gains) — e.g. the two legs of a
    /// backscatter path.
    pub fn cascade(self, other: ChannelGain) -> ChannelGain {
        ChannelGain(self.0 * other.0)
    }

    /// Apply an extra scalar gain/loss in dB (antenna gain, modulation loss).
    pub fn gained(self, g: Decibels) -> ChannelGain {
        ChannelGain(self.0 * g.amplitude())
    }

    /// Superpose with another path (multipath sum).
    pub fn plus(self, other: ChannelGain) -> ChannelGain {
        ChannelGain(self.0 + other.0)
    }

    /// The phasor an input `x` becomes after this channel.
    pub fn apply(self, x: Complex) -> Complex {
        self.0 * x
    }
}

/// A static multipath environment: a line-of-sight path plus any number of
/// single-bounce reflectors, each with its own reflection coefficient.
///
/// This is the "room" of the paper's measurements. The default environment
/// is empty (free space — the authors "clear the area to minimize the effect
/// of environmental reflections"); tests and the fading module add
/// reflectors to create controlled multipath.
#[derive(Debug, Clone, Default)]
pub struct Environment {
    reflectors: Vec<(Point, Complex)>,
}

impl Environment {
    /// Free space: no reflectors.
    pub fn free_space() -> Self {
        Environment::default()
    }

    /// Add a reflector at `at` with complex reflection coefficient `coeff`.
    pub fn with_reflector(mut self, at: Point, coeff: Complex) -> Self {
        assert!(
            coeff.abs() <= 1.0 + 1e-9,
            "passive reflector cannot amplify (|coeff| = {})",
            coeff.abs()
        );
        self.reflectors.push((at, coeff));
        self
    }

    /// Number of reflectors in the scene.
    pub fn reflector_count(&self) -> usize {
        self.reflectors.len()
    }

    /// The total complex gain from `a` to `b`: LOS plus every single-bounce
    /// path.
    pub fn gain(&self, a: Point, b: Point, f: Hertz) -> ChannelGain {
        let mut total = ChannelGain::line_of_sight(a, b, f);
        for &(r, coeff) in &self.reflectors {
            total = total.plus(ChannelGain::reflected(a, r, b, f, coeff));
        }
        total
    }
}

/// Convenience: distance corresponding to a channel between two points.
pub fn separation(a: Point, b: Point) -> Meters {
    a.distance(b)
}

#[cfg(test)]
mod tests {
    use super::*;
    use core::f64::consts::PI;

    const F: Hertz = Hertz::UHF_915M;

    #[test]
    fn los_amplitude_matches_friis() {
        let g = ChannelGain::line_of_sight(Point::ORIGIN, Point::new(2.0, 0.0), F);
        let friis = crate::pathloss::free_space_gain(Meters::new(2.0), F);
        assert!((g.power_db().db() - friis.db()).abs() < 1e-9);
    }

    #[test]
    fn los_phase_wraps_with_distance() {
        let lambda = F.wavelength().meters();
        // One wavelength farther -> same phase (mod 2π).
        let g1 = ChannelGain::line_of_sight(Point::ORIGIN, Point::new(1.0, 0.0), F);
        let g2 = ChannelGain::line_of_sight(Point::ORIGIN, Point::new(1.0 + lambda, 0.0), F);
        let dphi = (g1.phase() - g2.phase()).rem_euclid(2.0 * PI);
        assert!(dphi < 1e-6 || (2.0 * PI - dphi) < 1e-6, "dphi={dphi}");
        // Half a wavelength farther -> opposite phase.
        let g3 = ChannelGain::line_of_sight(Point::ORIGIN, Point::new(1.0 + lambda / 2.0, 0.0), F);
        let dphi3 = (g1.phase() - g3.phase()).rem_euclid(2.0 * PI);
        assert!((dphi3 - PI).abs() < 1e-6, "dphi3={dphi3}");
    }

    #[test]
    fn cascade_multiplies_power() {
        let a = ChannelGain::line_of_sight(Point::ORIGIN, Point::new(1.0, 0.0), F);
        let two_way = a.cascade(a);
        assert!((two_way.power_db().db() - 2.0 * a.power_db().db()).abs() < 1e-9);
    }

    #[test]
    fn gained_shifts_power() {
        let a = ChannelGain::line_of_sight(Point::ORIGIN, Point::new(1.0, 0.0), F);
        let b = a.gained(Decibels::new(-6.0));
        assert!(((a.power_db() - b.power_db()).db() - 6.0).abs() < 1e-9);
    }

    #[test]
    fn multipath_can_null() {
        // A reflector placed to arrive exactly out of phase with comparable
        // amplitude produces destructive interference: total power well below
        // the LOS-only power.
        let a = Point::ORIGIN;
        let b = Point::new(1.0, 0.0);
        let los = ChannelGain::line_of_sight(a, b, F);
        // Find a reflector position by scanning y offsets for the deepest null.
        let mut best = f64::INFINITY;
        for i in 0..400 {
            let y = 0.05 + 0.0025 * i as f64;
            let env = Environment::free_space()
                .with_reflector(Point::new(0.5, y), Complex::new(-0.9, 0.0));
            let p = env.gain(a, b, F).amplitude();
            best = best.min(p / los.amplitude());
        }
        assert!(best < 0.6, "expected a partial null, best ratio {best}");
    }

    #[test]
    #[should_panic(expected = "passive reflector")]
    fn active_reflector_rejected() {
        let _ =
            Environment::free_space().with_reflector(Point::new(1.0, 1.0), Complex::new(2.0, 0.0));
    }

    #[test]
    fn environment_free_space_is_pure_los() {
        let env = Environment::free_space();
        let a = Point::ORIGIN;
        let b = Point::new(3.0, 4.0);
        let g = env.gain(a, b, F);
        let los = ChannelGain::line_of_sight(a, b, F);
        assert!((g.amplitude() - los.amplitude()).abs() < 1e-15);
    }
}
