//! Noise models: thermal floor, receiver noise figure, and the
//! noise-equivalent power of envelope-detector receive chains.

use braidio_units::{Decibels, Hertz, Watts, BOLTZMANN, T0_KELVIN};

/// Thermal noise power `kT₀B` in a bandwidth `b`.
///
/// At 290 K this is the textbook −174 dBm/Hz floor.
pub fn thermal_noise(b: Hertz) -> Watts {
    Watts::new(BOLTZMANN * T0_KELVIN * b.hz())
}

/// A coherent receiver's noise model: thermal floor raised by a noise
/// figure.
#[derive(Debug, Clone, Copy)]
pub struct CoherentReceiverNoise {
    /// Receiver noise figure.
    pub noise_figure: Decibels,
    /// Receiver noise bandwidth (typically ≈ bitrate for matched filtering).
    pub bandwidth: Hertz,
}

impl CoherentReceiverNoise {
    /// Total input-referred noise power.
    pub fn power(&self) -> Watts {
        thermal_noise(self.bandwidth).gained(self.noise_figure)
    }
}

/// An envelope-detector chain's noise model.
///
/// A passive charge-pump front end has no LNA, so its effective noise floor
/// is *not* thermal — it is set by the comparator's minimum resolvable input
/// (several mV per the NCS2200/TS881 datasheets, §3.2) referred back through
/// the instrumentation-amplifier gain and the pump's voltage boost, plus a
/// bandwidth-dependent term because wider basebands integrate more detector
/// noise. We model it as a noise-equivalent power:
///
/// ```text
/// NEP(B) = floor · (B / B_ref)^alpha
/// ```
///
/// with `alpha = 1` (white detector noise) and `floor` calibrated per
/// receive chain so the BER = 1e-2 distances land at the paper's measured
/// ranges (see `braidio-radio::characterization`).
#[derive(Debug, Clone, Copy)]
pub struct DetectorNoise {
    /// Noise-equivalent power at the reference bandwidth.
    pub floor: Watts,
    /// Reference bandwidth for `floor`.
    pub reference_bandwidth: Hertz,
    /// Bandwidth scaling exponent (1 = white noise).
    pub alpha: f64,
}

impl DetectorNoise {
    /// A detector-noise model with white scaling (`alpha = 1`).
    pub fn white(floor: Watts, reference_bandwidth: Hertz) -> Self {
        DetectorNoise {
            floor,
            reference_bandwidth,
            alpha: 1.0,
        }
    }

    /// Noise-equivalent power in bandwidth `b`.
    pub fn power(&self, b: Hertz) -> Watts {
        let scale = (b / self.reference_bandwidth).powf(self.alpha);
        self.floor * scale
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn thermal_floor_minus_174_dbm_per_hz() {
        let n = thermal_noise(Hertz::new(1.0));
        assert!((n.dbm() + 174.0).abs() < 0.1, "got {} dBm", n.dbm());
    }

    #[test]
    fn thermal_scales_linearly_with_bandwidth() {
        let n1 = thermal_noise(Hertz::from_khz(100.0));
        let n2 = thermal_noise(Hertz::from_khz(200.0));
        assert!((n2 / n1 - 2.0).abs() < 1e-12);
    }

    #[test]
    fn coherent_noise_includes_figure() {
        let rx = CoherentReceiverNoise {
            noise_figure: Decibels::new(10.0),
            bandwidth: Hertz::from_mhz(1.0),
        };
        // -174 + 60 (1 MHz) + 10 = -104 dBm.
        assert!((rx.power().dbm() + 104.0).abs() < 0.1);
    }

    #[test]
    fn detector_noise_scales_with_bandwidth() {
        let d = DetectorNoise::white(Watts::from_dbm(-60.0), Hertz::from_mhz(1.0));
        let at_100k = d.power(Hertz::from_khz(100.0));
        assert!((at_100k.dbm() + 70.0).abs() < 0.1, "got {}", at_100k.dbm());
        let at_1m = d.power(Hertz::from_mhz(1.0));
        assert!((at_1m.dbm() + 60.0).abs() < 1e-9);
    }

    #[test]
    fn detector_alpha_shapes_scaling() {
        let d = DetectorNoise {
            floor: Watts::from_dbm(-60.0),
            reference_bandwidth: Hertz::from_mhz(1.0),
            alpha: 0.5,
        };
        // 10x narrower bandwidth -> only 5 dB quieter at alpha = 0.5.
        let at_100k = d.power(Hertz::from_khz(100.0));
        assert!((at_100k.dbm() + 65.0).abs() < 0.1, "got {}", at_100k.dbm());
    }
}
