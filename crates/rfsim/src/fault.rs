//! Fault injection for link-level experiments.
//!
//! Mirrors smoltcp's example fault-injection options: a drop chance and a
//! corrupt chance applied per packet, driven by a seeded RNG so experiment
//! runs are reproducible. The MAC-layer simulator consults this on every
//! packet in addition to the BER-derived loss probability.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// What the injector decided about one packet.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Verdict {
    /// Deliver unchanged.
    Deliver,
    /// Drop silently.
    Drop,
    /// Deliver with a corrupted payload (fails CRC at the receiver).
    Corrupt,
}

/// Per-packet fault injector.
#[derive(Debug, Clone)]
pub struct FaultInjector {
    drop_chance: f64,
    corrupt_chance: f64,
    rng: StdRng,
    stats: FaultStats,
}

/// Counters of injector decisions.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FaultStats {
    /// Packets delivered unchanged.
    pub delivered: u64,
    /// Packets dropped.
    pub dropped: u64,
    /// Packets corrupted.
    pub corrupted: u64,
}

impl FaultStats {
    /// Total packets processed.
    pub fn total(&self) -> u64 {
        self.delivered + self.dropped + self.corrupted
    }
}

impl FaultInjector {
    /// Create an injector. Chances are probabilities in `[0, 1]` and their
    /// sum must not exceed 1.
    pub fn new(drop_chance: f64, corrupt_chance: f64, seed: u64) -> Self {
        assert!(
            (0.0..=1.0).contains(&drop_chance) && (0.0..=1.0).contains(&corrupt_chance),
            "chances must be probabilities"
        );
        assert!(
            drop_chance + corrupt_chance <= 1.0,
            "drop + corrupt cannot exceed 1"
        );
        FaultInjector {
            drop_chance,
            corrupt_chance,
            rng: StdRng::seed_from_u64(seed),
            stats: FaultStats::default(),
        }
    }

    /// An injector that never interferes.
    pub fn transparent() -> Self {
        FaultInjector::new(0.0, 0.0, 0)
    }

    /// Decide the fate of the next packet.
    pub fn judge(&mut self) -> Verdict {
        let x: f64 = self.rng.random_range(0.0..1.0);
        let verdict = if x < self.drop_chance {
            Verdict::Drop
        } else if x < self.drop_chance + self.corrupt_chance {
            Verdict::Corrupt
        } else {
            Verdict::Deliver
        };
        match verdict {
            Verdict::Deliver => self.stats.delivered += 1,
            Verdict::Drop => self.stats.dropped += 1,
            Verdict::Corrupt => self.stats.corrupted += 1,
        }
        verdict
    }

    /// Decision counters so far.
    pub fn stats(&self) -> FaultStats {
        self.stats
    }

    /// The configured drop chance.
    pub fn drop_chance(&self) -> f64 {
        self.drop_chance
    }

    /// The configured corrupt chance.
    pub fn corrupt_chance(&self) -> f64 {
        self.corrupt_chance
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn transparent_always_delivers() {
        let mut f = FaultInjector::transparent();
        for _ in 0..1000 {
            assert_eq!(f.judge(), Verdict::Deliver);
        }
        assert_eq!(f.stats().delivered, 1000);
        assert_eq!(f.stats().dropped, 0);
    }

    #[test]
    fn rates_approximate_configuration() {
        let mut f = FaultInjector::new(0.15, 0.10, 99);
        for _ in 0..200_000 {
            f.judge();
        }
        let s = f.stats();
        let drop_rate = s.dropped as f64 / s.total() as f64;
        let corrupt_rate = s.corrupted as f64 / s.total() as f64;
        assert!((drop_rate - 0.15).abs() < 0.01, "drop {drop_rate}");
        assert!((corrupt_rate - 0.10).abs() < 0.01, "corrupt {corrupt_rate}");
    }

    #[test]
    fn deterministic_given_seed() {
        let mut a = FaultInjector::new(0.3, 0.2, 7);
        let mut b = FaultInjector::new(0.3, 0.2, 7);
        for _ in 0..500 {
            assert_eq!(a.judge(), b.judge());
        }
    }

    #[test]
    #[should_panic(expected = "cannot exceed 1")]
    fn overlapping_chances_rejected() {
        let _ = FaultInjector::new(0.7, 0.6, 1);
    }

    #[test]
    fn stats_total_consistent() {
        let mut f = FaultInjector::new(0.5, 0.25, 3);
        for _ in 0..1234 {
            f.judge();
        }
        assert_eq!(f.stats().total(), 1234);
    }
}
