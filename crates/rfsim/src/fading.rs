//! Small-scale fading and shadowing.
//!
//! §3.1 of the paper leans on the fact that the self-interference channel's
//! coherence time is "typically in the order of milliseconds", so that
//! whatever leaks through the envelope detector can be removed by a high-pass
//! filter. This module provides the block-fading processes used to exercise
//! that claim and to stress the MAC layer's fallback logic:
//!
//! * Rayleigh / Rician small-scale fading with a configurable coherence time
//!   (new complex gain drawn every coherence interval).
//! * Log-normal shadowing for slow, large-scale variation.
//!
//! Everything is driven by an explicit seeded RNG for reproducibility.

use braidio_units::{Complex, Decibels, Seconds};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Draw a standard complex Gaussian (unit total variance) sample.
fn complex_gaussian(rng: &mut StdRng) -> Complex {
    // Box-Muller: two uniforms -> two independent N(0, 1/2) components.
    let u1: f64 = rng.random_range(f64::MIN_POSITIVE..1.0);
    let u2: f64 = rng.random_range(0.0..1.0);
    let r = (-u1.ln()).sqrt(); // magnitude for variance 1/2 per component
    let theta = 2.0 * core::f64::consts::PI * u2;
    Complex::from_polar(r, theta)
}

/// A Rician block-fading process.
///
/// `k_factor` is the ratio of line-of-sight to scattered power;
/// `k = 0` degenerates to Rayleigh, large `k` to a nearly static channel.
/// The complex gain is normalized to unit mean power.
#[derive(Debug, Clone)]
pub struct RicianFading {
    k_factor: f64,
    coherence: Seconds,
    rng: StdRng,
    current: Complex,
    block_start: Seconds,
}

impl RicianFading {
    /// Create a process with the given K-factor and coherence time.
    pub fn new(k_factor: f64, coherence: Seconds, seed: u64) -> Self {
        assert!(k_factor >= 0.0, "K-factor must be non-negative");
        assert!(coherence.seconds() > 0.0, "coherence time must be positive");
        let mut rng = StdRng::seed_from_u64(seed);
        let current = Self::draw(k_factor, &mut rng);
        RicianFading {
            k_factor,
            coherence,
            rng,
            current,
            block_start: Seconds::ZERO,
        }
    }

    /// A Rayleigh process (K = 0).
    pub fn rayleigh(coherence: Seconds, seed: u64) -> Self {
        Self::new(0.0, coherence, seed)
    }

    fn draw(k: f64, rng: &mut StdRng) -> Complex {
        let scatter = complex_gaussian(rng);
        // LOS component fixed at phase 0; normalize total power to 1.
        let los = Complex::new(k.sqrt(), 0.0);
        (los + scatter) / (1.0 + k).sqrt()
    }

    /// The complex fading gain at virtual time `t`. Within a coherence block
    /// the gain is constant; crossing a block boundary draws a fresh gain.
    pub fn gain_at(&mut self, t: Seconds) -> Complex {
        assert!(t >= self.block_start, "fading clock must move forward");
        while t - self.block_start >= self.coherence {
            self.block_start += self.coherence;
            self.current = Self::draw(self.k_factor, &mut self.rng);
        }
        self.current
    }

    /// The coherence time of the process.
    pub fn coherence(&self) -> Seconds {
        self.coherence
    }

    /// The K-factor of the process.
    pub fn k_factor(&self) -> f64 {
        self.k_factor
    }
}

/// Log-normal shadowing: a dB-domain zero-mean Gaussian re-drawn per call.
///
/// Used for placement-to-placement variation of links rather than time
/// variation (shadowing decorrelates over meters of movement).
#[derive(Debug, Clone)]
pub struct Shadowing {
    sigma_db: f64,
    rng: StdRng,
}

impl Shadowing {
    /// Shadowing with standard deviation `sigma_db` (dB).
    pub fn new(sigma_db: f64, seed: u64) -> Self {
        assert!(sigma_db >= 0.0, "sigma must be non-negative");
        Shadowing {
            sigma_db,
            rng: StdRng::seed_from_u64(seed),
        }
    }

    /// Draw a shadowing gain.
    pub fn sample(&mut self) -> Decibels {
        // Box-Muller for a standard normal.
        let u1: f64 = self.rng.random_range(f64::MIN_POSITIVE..1.0);
        let u2: f64 = self.rng.random_range(0.0..1.0);
        let z = (-2.0 * u1.ln()).sqrt() * (2.0 * core::f64::consts::PI * u2).cos();
        Decibels::new(self.sigma_db * z)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rayleigh_unit_mean_power() {
        let mut f = RicianFading::rayleigh(Seconds::from_millis(1.0), 7);
        let n = 20_000;
        let mut acc = 0.0;
        for i in 0..n {
            let t = Seconds::from_millis(i as f64);
            acc += f.gain_at(t).norm_sqr();
        }
        let mean = acc / n as f64;
        assert!((mean - 1.0).abs() < 0.05, "mean power {mean}");
    }

    #[test]
    fn rician_large_k_is_nearly_static() {
        let mut f = RicianFading::new(100.0, Seconds::from_millis(1.0), 3);
        let mut min = f64::MAX;
        let mut max = f64::MIN;
        for i in 0..1000 {
            let g = f.gain_at(Seconds::from_millis(i as f64)).abs();
            min = min.min(g);
            max = max.max(g);
        }
        assert!(max - min < 0.5, "spread {}", max - min);
        assert!((min + max) / 2.0 > 0.7);
    }

    #[test]
    fn constant_within_coherence_block() {
        let mut f = RicianFading::rayleigh(Seconds::from_millis(10.0), 11);
        let g0 = f.gain_at(Seconds::from_millis(0.1));
        let g1 = f.gain_at(Seconds::from_millis(9.9));
        assert_eq!(g0, g1);
        let g2 = f.gain_at(Seconds::from_millis(10.1));
        assert_ne!(g0, g2);
    }

    #[test]
    fn deterministic_given_seed() {
        let mut a = RicianFading::rayleigh(Seconds::from_millis(1.0), 42);
        let mut b = RicianFading::rayleigh(Seconds::from_millis(1.0), 42);
        for i in 0..100 {
            let t = Seconds::from_millis(i as f64 * 1.7);
            assert_eq!(a.gain_at(t), b.gain_at(t));
        }
    }

    #[test]
    #[should_panic(expected = "forward")]
    fn clock_cannot_rewind() {
        let mut f = RicianFading::rayleigh(Seconds::from_millis(1.0), 1);
        let _ = f.gain_at(Seconds::new(1.0));
        let _ = f.gain_at(Seconds::new(0.5));
    }

    #[test]
    fn shadowing_statistics() {
        let mut s = Shadowing::new(4.0, 9);
        let n = 20_000;
        let samples: Vec<f64> = (0..n).map(|_| s.sample().db()).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / n as f64;
        assert!(mean.abs() < 0.15, "mean {mean}");
        assert!((var.sqrt() - 4.0).abs() < 0.15, "sigma {}", var.sqrt());
    }

    #[test]
    fn zero_sigma_shadowing_is_identity() {
        let mut s = Shadowing::new(0.0, 5);
        for _ in 0..10 {
            assert_eq!(s.sample().db(), 0.0);
        }
    }
}
