//! Property-based tests for the propagation substrate.

use braidio_rfsim::channel::{ChannelGain, Environment};
use braidio_rfsim::geometry::Point;
use braidio_rfsim::linkbudget::{LinkBudget, LinkKind};
use braidio_rfsim::pathloss::{backscatter_gain, free_space_gain, BackscatterLoss};
use braidio_rfsim::phase_cancel::BackscatterScene;
use braidio_units::{Hertz, Meters, Watts};
use proptest::prelude::*;

const F: Hertz = Hertz::UHF_915M;

proptest! {
    #[test]
    fn friis_monotone_decreasing(d in 0.1f64..50.0, delta in 0.01f64..10.0) {
        let g1 = free_space_gain(Meters::new(d), F);
        let g2 = free_space_gain(Meters::new(d + delta), F);
        prop_assert!(g2 <= g1);
    }

    #[test]
    fn backscatter_always_weaker_than_one_way(d in 0.1f64..20.0) {
        let one_way = free_space_gain(Meters::new(d), F);
        let two_way = backscatter_gain(Meters::new(d), Meters::new(d), F, BackscatterLoss::default());
        prop_assert!(two_way < one_way);
    }

    #[test]
    fn backscatter_splits_symmetrically(d1 in 0.2f64..10.0, d2 in 0.2f64..10.0) {
        let loss = BackscatterLoss::default();
        let a = backscatter_gain(Meters::new(d1), Meters::new(d2), F, loss);
        let b = backscatter_gain(Meters::new(d2), Meters::new(d1), F, loss);
        prop_assert!((a.db() - b.db()).abs() < 1e-9);
    }

    #[test]
    fn los_channel_power_matches_friis(x in 0.2f64..10.0, y in -5.0f64..5.0) {
        let b = Point::new(x, y);
        let g = ChannelGain::line_of_sight(Point::ORIGIN, b, F);
        let d = Point::ORIGIN.distance(b);
        prop_assert!((g.power_db().db() - free_space_gain(d, F).db()).abs() < 1e-9);
    }

    #[test]
    fn multipath_bounded_by_sum_of_paths(rx in 0.5f64..3.0, ry in 0.5f64..3.0) {
        let a = Point::ORIGIN;
        let b = Point::new(2.0, 0.0);
        let refl = Point::new(rx, ry);
        let coeff = braidio_units::Complex::new(-0.8, 0.1);
        let env = Environment::free_space().with_reflector(refl, coeff);
        let total = env.gain(a, b, F).amplitude();
        let los = ChannelGain::line_of_sight(a, b, F).amplitude();
        let bounce = ChannelGain::reflected(a, refl, b, F, coeff).amplitude();
        prop_assert!(total <= los + bounce + 1e-12);
        prop_assert!(total >= (los - bounce).abs() - 1e-12);
    }

    #[test]
    fn link_budget_ordering_everywhere(d in 0.1f64..10.0, dbm in 0.0f64..20.0) {
        let budget = LinkBudget::default();
        let p = Watts::from_dbm(dbm);
        let dist = Meters::new(d);
        let active = budget.received_power(LinkKind::Active, p, dist);
        let passive = budget.received_power(LinkKind::PassiveRx, p, dist);
        let bs = budget.received_power(LinkKind::Backscatter, p, dist);
        prop_assert!(active >= passive);
        prop_assert!(passive > bs);
    }

    #[test]
    fn range_bisection_is_an_inverse(sens_dbm in -70.0f64..-35.0) {
        let budget = LinkBudget::default();
        let p = Watts::from_dbm(13.0);
        let sens = Watts::from_dbm(sens_dbm);
        if let Some(r) = budget.range_for_sensitivity(LinkKind::PassiveRx, p, sens) {
            if r.meters() < 99.0 {
                let rx = budget.received_power(LinkKind::PassiveRx, p, r);
                prop_assert!((rx.dbm() - sens_dbm).abs() < 0.05, "rx {} at {}", rx.dbm(), r);
            }
        }
    }

    #[test]
    fn envelope_delta_bounded_by_twice_tag_amplitude(x in 0.2f64..1.9, y in 0.2f64..1.9) {
        // |(|bg+v1| - |bg+v0|)| <= |v1 - v0| for any phasors.
        let scene = BackscatterScene::paper_fig4();
        let tag = Point::new(x, y);
        let delta = scene.envelope_delta(tag, 0);
        let v1 = scene.tag_phasor(tag, 0, scene.tag.gamma_on);
        let v0 = scene.tag_phasor(tag, 0, scene.tag.gamma_off);
        prop_assert!(delta <= (v1 - v0).abs() + 1e-15);
    }

    #[test]
    fn diversity_never_hurts(x in 0.2f64..1.9, y in 0.2f64..1.9) {
        let single = BackscatterScene::paper_fig4();
        let diverse = BackscatterScene::paper_fig4().with_diversity();
        let p = Point::new(x, y);
        let s1 = single.snr(p, 0);
        let s2 = diverse.snr_diversity(p).1;
        prop_assert!(s2 >= s1 - braidio_units::Decibels::new(1e-9));
    }
}
