//! Vendored stand-in for the subset of the `rand` 0.9 API used by this
//! workspace.
//!
//! The build environment has no access to crates.io, and the workspace's
//! ethos (DESIGN.md §5, after smoltcp) is dependency-free anyway, so this
//! crate reimplements exactly what the simulation needs and nothing more:
//!
//! * [`rngs::StdRng`] — a seedable, deterministic generator
//!   (xoshiro256++, seeded through SplitMix64);
//! * [`SeedableRng::seed_from_u64`] — the only construction path used;
//! * [`Rng::random_range`] over `f64` ranges and [`Rng::random_bool`].
//!
//! Determinism contract: for a given seed the stream is fixed by this
//! crate alone — it does not track upstream `rand`'s stream (StdRng there
//! is ChaCha12). Every consumer in the workspace treats seeds as opaque
//! reproducibility handles, never as cross-library fixtures, so only
//! stability within this repository matters.

#![warn(missing_docs)]

use std::ops::{Range, RangeInclusive};

/// A source of random 64-bit words.
pub trait RngCore {
    /// The next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;
}

/// Construction of a generator from seed material.
pub trait SeedableRng: Sized {
    /// Build a generator whose stream is a pure function of `state`.
    fn seed_from_u64(state: u64) -> Self;
}

/// User-facing sampling methods, available on every [`RngCore`].
pub trait Rng: RngCore {
    /// A uniform sample from `range`.
    fn random_range<T, R: SampleRange<T>>(&mut self, range: R) -> T {
        range.sample_from(self)
    }

    /// `true` with probability `p` (clamped to `[0, 1]`).
    fn random_bool(&mut self, p: f64) -> bool {
        unit_f64(self.next_u64()) < p
    }
}

impl<T: RngCore + ?Sized> Rng for T {}

/// A range that knows how to draw a uniform sample from itself.
pub trait SampleRange<T> {
    /// Draw one sample.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

/// Map 64 random bits to a uniform `f64` in `[0, 1)`.
fn unit_f64(bits: u64) -> f64 {
    // 53 high bits -> [0, 1) on the standard dyadic grid.
    (bits >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

impl SampleRange<f64> for Range<f64> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "empty range");
        let u = unit_f64(rng.next_u64());
        let x = self.start + u * (self.end - self.start);
        // Rounding can land exactly on `end` for tiny ranges; fold it back.
        if x >= self.end {
            self.start
        } else {
            x
        }
    }
}

impl SampleRange<f64> for RangeInclusive<f64> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "empty range");
        // 53-bit grid including both endpoints.
        let u = (rng.next_u64() >> 11) as f64 * (1.0 / ((1u64 << 53) - 1) as f64);
        lo + u * (hi - lo)
    }
}

macro_rules! int_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                // Modulo bias is < 2^-64 per draw: irrelevant for tests.
                let r = (rng.next_u64() as u128) % span;
                (self.start as i128 + r as i128) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let r = (rng.next_u64() as u128) % span;
                (lo as i128 + r as i128) as $t
            }
        }
    )*};
}

int_sample_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard deterministic generator: xoshiro256++.
    ///
    /// Small, fast, passes BigCrush, and trivially seedable — everything a
    /// simulation RNG needs. Not cryptographic (nothing here needs that).
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(state: u64) -> Self {
            let mut sm = state;
            StdRng {
                s: [
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                ],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.random_range(0.0..1.0), b.random_range(0.0..1.0));
        }
        let mut c = StdRng::seed_from_u64(8);
        assert_ne!(
            a.random_range(0.0..1.0f64).to_bits(),
            c.random_range(0.0..1.0f64).to_bits()
        );
    }

    #[test]
    fn ranges_are_respected() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let x = rng.random_range(f64::MIN_POSITIVE..1.0);
            assert!((f64::MIN_POSITIVE..1.0).contains(&x));
            let y = rng.random_range(-2.0..=2.0);
            assert!((-2.0..=2.0).contains(&y));
            let n = rng.random_range(3usize..17);
            assert!((3..17).contains(&n));
            let b = rng.random_range(1u8..=255);
            assert!(b >= 1);
        }
    }

    #[test]
    fn random_bool_tracks_probability() {
        let mut rng = StdRng::seed_from_u64(2);
        let hits = (0..20_000).filter(|_| rng.random_bool(0.25)).count();
        let p = hits as f64 / 20_000.0;
        assert!((p - 0.25).abs() < 0.02, "p {p}");
        assert!(!rng.random_bool(0.0));
        assert!(rng.random_bool(1.0));
    }

    #[test]
    fn mean_is_near_half() {
        let mut rng = StdRng::seed_from_u64(3);
        let sum: f64 = (0..50_000).map(|_| rng.random_range(0.0..1.0)).sum();
        let mean = sum / 50_000.0;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
    }
}
