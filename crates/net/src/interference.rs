//! Foreign-carrier interference in a fleet, generalizing `mac::coexistence`
//! from one interferer to many.
//!
//! Every concurrently-transmitting foreign pair parks a CW carrier in the
//! victim's band. Each arriving carrier is attenuated by free-space path
//! loss, the victim's antenna and detector front end, and the
//! [`ChannelRelation`] coupling factor (co-channel carriers are mostly
//! removed as quasi-DC; adjacent-channel beats land squarely in the
//! baseband — the Table 3 soft spot). The couplings sum noncoherently into
//! one equivalent noise power at the detector.
//!
//! Interference only degrades the *detector-based* modes (passive receiver
//! and backscatter). The active radio is a channel-filtered coherent
//! receiver, so a foreign carrier on another channel is rejected by its
//! IF filtering — the same simplification `mac::coexistence` makes.

use braidio_mac::coexistence::ChannelRelation;
use braidio_mac::offload::LinkOption;
use braidio_phy::ber::ber_ook_noncoherent_fast;
use braidio_radio::characterization::{Characterization, Rate, OPERATIONAL_BER};
use braidio_radio::Mode;
use braidio_rfsim::geometry::Point;
use braidio_rfsim::pathloss::free_space_gain;
use braidio_units::{Meters, Watts};

/// One foreign CW carrier, positioned in the room.
#[derive(Debug, Clone, Copy)]
pub struct CarrierSource {
    /// Where the carrier radiates from.
    pub pos: Point,
    /// Its RF output power.
    pub rf: Watts,
    /// Channel relationship to the victim's receiver.
    pub relation: ChannelRelation,
}

/// Total foreign-carrier power acting as noise at a victim detector at
/// `victim`, given the victim pair's characterization (noncoherent power
/// sum over sources).
pub fn interference_at(ch: &Characterization, victim: Point, sources: &[CarrierSource]) -> Watts {
    sources
        .iter()
        .map(|s| {
            s.rf.gained(free_space_gain(s.pos.distance(victim), ch.budget.frequency))
                .gained(ch.budget.rx_antenna_gain)
                .gained(-ch.budget.detector_frontend_loss)
                .gained(s.relation.noise_coupling())
        })
        .sum()
}

/// Victim SNR (linear) for a detector-based mode with `interference` folded
/// into the noise floor.
fn victim_gamma(
    ch: &Characterization,
    mode: Mode,
    rate: Rate,
    d: Meters,
    interference: Watts,
) -> f64 {
    let rx = ch.received_power(mode, d);
    let noise = ch.detector_noise(mode, rate).expect("detector-based mode") + interference;
    rx / noise
}

/// Is `mode`/`rate` operational at pair separation `d` under the given
/// interference power? Reduces exactly to [`Characterization::available`]
/// when the interference is zero.
pub fn available_under(
    ch: &Characterization,
    mode: Mode,
    rate: Rate,
    d: Meters,
    interference: Watts,
) -> bool {
    if ch.power(mode, rate).is_none() {
        return false;
    }
    match mode {
        // Channel-filtered coherent receiver: unaffected by a foreign CW.
        Mode::Active => ch.available(mode, rate, d),
        Mode::Passive | Mode::Backscatter => {
            if interference.watts() <= 0.0 {
                return ch.available(mode, rate, d);
            }
            ber_ook_noncoherent_fast(victim_gamma(ch, mode, rate, d, interference))
                <= OPERATIONAL_BER
        }
    }
}

/// The fastest operational rate of a mode under interference, if any.
pub fn max_rate_under(
    ch: &Characterization,
    mode: Mode,
    d: Meters,
    interference: Watts,
) -> Option<Rate> {
    Rate::ALL
        .into_iter()
        .rev()
        .find(|&r| available_under(ch, mode, r, d, interference))
}

/// The operating options a pair can plan over at separation `d` with a
/// total foreign-carrier power `interference` at its detector — the
/// interference-aware counterpart of [`braidio_mac::offload::options_at`],
/// to which it reduces exactly when `interference` is zero.
pub fn options_under(ch: &Characterization, d: Meters, interference: Watts) -> Vec<LinkOption> {
    let mut opts = Vec::new();
    for mode in Mode::ALL {
        if let Some(rate) = max_rate_under(ch, mode, d, interference) {
            let (tx_cost, rx_cost) = ch
                .energy_per_bit(mode, rate)
                .expect("rate came from the table");
            opts.push(LinkOption {
                mode,
                rate,
                tx_cost,
                rx_cost,
            });
        }
    }
    opts
}

#[cfg(test)]
mod tests {
    use super::*;
    use braidio_mac::coexistence::Coexistence;
    use braidio_mac::offload::options_at;

    fn ch() -> Characterization {
        Characterization::braidio()
    }

    #[test]
    fn zero_interference_reduces_to_options_at() {
        let ch = ch();
        for d in [0.3, 0.5, 1.0, 2.0, 3.0, 4.8] {
            let base = options_at(&ch, Meters::new(d));
            let under = options_under(&ch, Meters::new(d), Watts::ZERO);
            assert_eq!(base.len(), under.len(), "at {d} m");
            for (a, b) in base.iter().zip(&under) {
                assert_eq!(a, b, "at {d} m");
            }
        }
    }

    #[test]
    fn single_source_matches_coexistence_model() {
        // One foreign carrier must reproduce `mac::coexistence` exactly:
        // same arriving power, same victim availability.
        let ch = ch();
        for d_int in [1.0, 5.0, 20.0, 80.0] {
            let co = Coexistence::braidio_neighbor(Meters::new(d_int));
            let src = CarrierSource {
                pos: Point::new(d_int, 0.0),
                rf: co.interferer_rf,
                relation: co.relation,
            };
            let i = interference_at(&ch, Point::ORIGIN, &[src]);
            let expect = co.interference_at_detector();
            assert!(
                (i.watts() / expect.watts() - 1.0).abs() < 1e-12,
                "at {d_int} m: {i} vs {expect}"
            );
            for mode in [Mode::Passive, Mode::Backscatter] {
                assert_eq!(
                    max_rate_under(&ch, mode, Meters::new(1.0), i),
                    co.victim_max_rate(mode, Meters::new(1.0)),
                    "{mode} with neighbour at {d_int} m"
                );
            }
        }
    }

    #[test]
    fn sources_sum_noncoherently() {
        let ch = ch();
        let one = CarrierSource {
            pos: Point::new(5.0, 0.0),
            rf: Watts::from_dbm(13.0),
            relation: ChannelRelation::AdjacentChannel,
        };
        let two = CarrierSource {
            pos: Point::new(0.0, 5.0),
            rf: Watts::from_dbm(13.0),
            relation: ChannelRelation::AdjacentChannel,
        };
        let i1 = interference_at(&ch, Point::ORIGIN, &[one]);
        let i12 = interference_at(&ch, Point::ORIGIN, &[one, two]);
        assert!((i12.watts() / i1.watts() - 2.0).abs() < 1e-9);
    }

    #[test]
    fn active_mode_is_interference_immune() {
        let ch = ch();
        let jam = Watts::from_dbm(0.0); // enormous at the detector scale
        assert!(available_under(
            &ch,
            Mode::Active,
            Rate::Mbps1,
            Meters::new(1.0),
            jam
        ));
        assert!(!available_under(
            &ch,
            Mode::Backscatter,
            Rate::Kbps10,
            Meters::new(0.3),
            jam
        ));
    }

    #[test]
    fn interference_strips_backscatter_before_passive() {
        // A 10 m adjacent-channel neighbour: backscatter (two-way signal)
        // dies first, passive (one-way) survives longer.
        let ch = ch();
        let src = CarrierSource {
            pos: Point::new(10.0, 0.0),
            rf: Watts::from_dbm(13.0),
            relation: ChannelRelation::AdjacentChannel,
        };
        let i = interference_at(&ch, Point::ORIGIN, &[src]);
        let opts = options_under(&ch, Meters::new(1.0), i);
        let modes: Vec<Mode> = opts.iter().map(|o| o.mode).collect();
        assert!(!modes.contains(&Mode::Backscatter), "{modes:?}");
        assert!(modes.contains(&Mode::Active));
    }
}
