//! Foreign-carrier interference in a fleet, generalizing `mac::coexistence`
//! from one interferer to many.
//!
//! Every concurrently-transmitting foreign pair parks a CW carrier in the
//! victim's band. Each arriving carrier is attenuated by free-space path
//! loss, the victim's antenna and detector front end, and the
//! [`ChannelRelation`] coupling factor (co-channel carriers are mostly
//! removed as quasi-DC; adjacent-channel beats land squarely in the
//! baseband — the Table 3 soft spot). The couplings sum noncoherently into
//! one equivalent noise power at the detector.
//!
//! Interference only degrades the *detector-based* modes (passive receiver
//! and backscatter). The active radio is a channel-filtered coherent
//! receiver, so a foreign carrier on another channel is rejected by its
//! IF filtering — the same simplification `mac::coexistence` makes.

use braidio_mac::coexistence::ChannelRelation;
use braidio_mac::offload::{LinkOption, OptionSet};
use braidio_phy::ber::ber_ook_noncoherent_fast;
use braidio_phy::surface::{shared_batch, BerModel};
use braidio_radio::characterization::{Characterization, Rate, OPERATIONAL_BER};
use braidio_radio::Mode;
use braidio_rfsim::geometry::Point;
use braidio_rfsim::pathloss::{free_space_gain, FsplMemo};
use braidio_units::{BitsPerSecond, Meters, Watts};

/// One foreign CW carrier, positioned in the room.
#[derive(Debug, Clone, Copy)]
pub struct CarrierSource {
    /// Where the carrier radiates from.
    pub pos: Point,
    /// Its RF output power.
    pub rf: Watts,
    /// Channel relationship to the victim's receiver.
    pub relation: ChannelRelation,
}

/// Power one foreign carrier lands at a victim detector at `victim`: RF
/// output through free-space path loss, the victim's antenna and detector
/// front end, and the channel-relation coupling. A pure function of the
/// source geometry/relation, which is what makes per-edge contributions
/// cacheable ([`crate::cache::PairGainCache`]) without changing a bit.
#[inline]
pub fn carrier_contribution(ch: &Characterization, victim: Point, s: &CarrierSource) -> Watts {
    s.rf.gained(free_space_gain(s.pos.distance(victim), ch.budget.frequency))
        .gained(ch.budget.rx_antenna_gain)
        .gained(-ch.budget.detector_frontend_loss)
        .gained(s.relation.noise_coupling())
}

/// Total foreign-carrier power acting as noise at a victim detector at
/// `victim`, given the victim pair's characterization (noncoherent power
/// sum over sources, in slice order).
pub fn interference_at(ch: &Characterization, victim: Point, sources: &[CarrierSource]) -> Watts {
    sources
        .iter()
        .map(|s| carrier_contribution(ch, victim, s))
        .sum()
}

/// Tile width for the batched edge sweep: endpoints are gathered into
/// flat stack arrays of this many lanes before the kernel runs, and the
/// FSPL memo is consulted once per tile instead of once per edge.
pub const EDGE_TILE: usize = 64;

/// The transcendental-starved interference edge kernel: everything
/// constant in [`carrier_contribution`] hoisted out, everything
/// distance-dependent memoized — **the one arithmetic definition** of a
/// fleet interference edge, shared by the bulk wave sweep, the lazy
/// dirty-sum path and the debug shadow check.
///
/// `carrier_contribution` pays one `log10` (FSPL) and four `powf`
/// (`Decibels::linear`) per edge. Per characterization, three of those
/// four dB figures — rx antenna gain, detector front-end loss, and the
/// [`ChannelRelation`] coupling — are constants, and the FSPL term takes
/// only O(N) distinct distances on a √N×√N grid. The kernel computes each
/// constant's linear ratio **once**, by running the identical
/// `Decibels::linear` conversion the direct path runs, and routes FSPL
/// through an exact [`FsplMemo`], keeping the original four sequential
/// multiplies in the original order — so every contribution it returns is
/// bit-for-bit the [`carrier_contribution`] answer (the `net::baseline`
/// oracle keeps the direct path precisely so the equality stays checked).
#[derive(Debug)]
pub struct EdgeKernel {
    /// Foreign CW carrier power (every fleet interferer radiates
    /// `Characterization::carrier_rf`).
    rf: Watts,
    /// `ch.budget.rx_antenna_gain.linear()`, cached bits.
    rx_antenna_lin: f64,
    /// `(-ch.budget.detector_frontend_loss).linear()`, cached bits.
    frontend_inv_lin: f64,
    /// `relation.noise_coupling().linear()` per relation, indexed by
    /// [`ChannelRelation::index`].
    coupling_lin: [f64; 3],
    /// Exact FSPL memo at the characterization's carrier frequency.
    fspl: FsplMemo,
}

impl EdgeKernel {
    /// Build the kernel for one characterization, paying the four
    /// `Decibels::linear` conversions once.
    pub fn new(ch: &Characterization) -> Self {
        EdgeKernel {
            rf: ch.carrier_rf,
            rx_antenna_lin: ch.budget.rx_antenna_gain.linear(),
            frontend_inv_lin: (-ch.budget.detector_frontend_loss).linear(),
            coupling_lin: ChannelRelation::ALL.map(|r| r.noise_coupling_linear()),
            fspl: FsplMemo::new(ch.budget.frequency),
        }
    }

    /// FSPL memo hits since construction (drives `net.fspl.hit`).
    pub fn fspl_hits(&self) -> u64 {
        self.fspl.hits()
    }

    /// FSPL memo misses (canonical evaluations) since construction.
    pub fn fspl_misses(&self) -> u64 {
        self.fspl.misses()
    }

    /// One carrier's contribution at a known source–victim distance:
    /// `rf · fspl(d) · rx_antenna · frontend⁻¹ · coupling`, the exact
    /// four-multiply chain of [`carrier_contribution`] with the constant
    /// factors served from the cache and FSPL from the memo.
    #[inline]
    pub fn contribution_at_distance(&self, d: Meters, relation: ChannelRelation) -> Watts {
        let (lin, hit) = self.fspl.lookup(d);
        braidio_telemetry::count(if hit { "net.fspl.hit" } else { "net.fspl.miss" });
        self.rf
            .gained_linear(lin)
            .gained_linear(self.rx_antenna_lin)
            .gained_linear(self.frontend_inv_lin)
            .gained_linear(self.coupling_lin[relation.index()])
    }

    /// A fleet pair's edge: the interfering pair's carrier radiates from
    /// whichever of its endpoints `a`/`b` is nearer the victim (worst
    /// case; ties keep `a`, matching the original `<=` selection), and the
    /// selected distance is reused for the FSPL lookup — the same bits the
    /// direct path gets from recomputing it, minus one `hypot`.
    #[inline]
    pub fn carrier_from_pair(
        &self,
        victim: Point,
        a: Point,
        b: Point,
        relation: ChannelRelation,
    ) -> Watts {
        let da = a.distance(victim);
        let db = b.distance(victim);
        let d = if da <= db { da } else { db };
        self.contribution_at_distance(d, relation)
    }

    /// A tile of edges against one victim: `out[i]` receives the
    /// contribution of the pair with endpoints `(a[i], b[i])` and channel
    /// relation `rel[i]`. At most [`EDGE_TILE`] lanes.
    ///
    /// Three flat passes — nearer-endpoint distances, one batched FSPL
    /// lookup (a single memo-lock acquisition for the tile), then the
    /// constant multiply chain — each lane bit-identical to
    /// [`EdgeKernel::carrier_from_pair`]. The caller still owns the
    /// noncoherent accumulation and must sum `out` serially in pair-index
    /// order.
    pub fn carrier_tile(
        &self,
        victim: Point,
        a: &[Point],
        b: &[Point],
        rel: &[ChannelRelation],
        out: &mut [Watts],
    ) {
        let n = out.len();
        assert!(n <= EDGE_TILE, "tile of {n} exceeds EDGE_TILE");
        assert!(a.len() == n && b.len() == n && rel.len() == n);
        let mut ds = [Meters::new(0.0); EDGE_TILE];
        for i in 0..n {
            let da = a[i].distance(victim);
            let db = b[i].distance(victim);
            ds[i] = if da <= db { da } else { db };
        }
        let mut lin = [0.0f64; EDGE_TILE];
        let (hits, misses) = self.fspl.linear_batch(&ds[..n], &mut lin[..n]);
        braidio_telemetry::count_by("net.fspl.hit", hits);
        braidio_telemetry::count_by("net.fspl.miss", misses);
        for i in 0..n {
            out[i] = self
                .rf
                .gained_linear(lin[i])
                .gained_linear(self.rx_antenna_lin)
                .gained_linear(self.frontend_inv_lin)
                .gained_linear(self.coupling_lin[rel[i].index()]);
        }
    }
}

/// Victim SNR (linear) for a detector-based mode with `interference` folded
/// into the noise floor.
fn victim_gamma(
    ch: &Characterization,
    mode: Mode,
    rate: Rate,
    d: Meters,
    interference: Watts,
) -> f64 {
    let rx = ch.received_power(mode, d);
    let noise = ch.detector_noise(mode, rate).expect("detector-based mode") + interference;
    rx / noise
}

/// Is `mode`/`rate` operational at pair separation `d` under the given
/// interference power? Reduces exactly to [`Characterization::available`]
/// when the interference is zero.
pub fn available_under(
    ch: &Characterization,
    mode: Mode,
    rate: Rate,
    d: Meters,
    interference: Watts,
) -> bool {
    if ch.power(mode, rate).is_none() {
        return false;
    }
    match mode {
        // Channel-filtered coherent receiver: unaffected by a foreign CW.
        Mode::Active => ch.available(mode, rate, d),
        Mode::Passive | Mode::Backscatter => {
            if interference.watts() <= 0.0 {
                return ch.available(mode, rate, d);
            }
            ber_ook_noncoherent_fast(victim_gamma(ch, mode, rate, d, interference))
                <= OPERATIONAL_BER
        }
    }
}

/// The fastest operational rate of a mode under interference, if any.
pub fn max_rate_under(
    ch: &Characterization,
    mode: Mode,
    d: Meters,
    interference: Watts,
) -> Option<Rate> {
    Rate::ALL
        .into_iter()
        .rev()
        .find(|&r| available_under(ch, mode, r, d, interference))
}

/// The operating options a pair can plan over at separation `d` with a
/// total foreign-carrier power `interference` at its detector — the
/// interference-aware counterpart of [`braidio_mac::offload::options_at`],
/// to which it reduces exactly when `interference` is zero.
pub fn options_under(ch: &Characterization, d: Meters, interference: Watts) -> Vec<LinkOption> {
    options_under_pinned(ch, d, interference, None).to_vec()
}

/// [`options_under`] restricted to a pinned mode: when a scenario pins a
/// pair (e.g. the star tags), the non-pinned modes never enter a plan, so
/// evaluating their BER curves per planning wave is pure waste — the pin is
/// applied *before* the rate search, not `retain`ed after it. Returns an
/// inline [`OptionSet`] so callers (and the memo in [`OptionsMemo`]) stay
/// heap-free.
pub fn options_under_pinned(
    ch: &Characterization,
    d: Meters,
    interference: Watts,
    pin: Option<Mode>,
) -> OptionSet {
    let mut opts = OptionSet::EMPTY;
    for mode in Mode::ALL {
        if pin.is_some_and(|p| p != mode) {
            continue;
        }
        if let Some(rate) = max_rate_under(ch, mode, d, interference) {
            let (tx_cost, rx_cost) = ch
                .energy_per_bit(mode, rate)
                .expect("rate came from the table");
            opts.push(LinkOption {
                mode,
                rate,
                tx_cost,
                rx_cost,
            });
        }
    }
    opts
}

/// Log-domain quantum for the memo key's `(distance, interference)` axes:
/// steps of 2⁻³² in ln(x), ~2.3e-10 relative — the same grid
/// `solve_memo` uses for the battery ratio, and as far below any physical
/// tolerance. The canonical evaluation runs *on* the quantized values, so a
/// hit and a miss return bit-identical sets.
const LN_QUANT: f64 = (1u64 << 32) as f64;

/// Bound on the options memo; reaching it clears the map (option sets are
/// pure functions of their key, so eviction never changes results — which
/// is also why raising the cap for 10⁴-pair fleets is output-neutral).
const OPTIONS_MEMO_CAP: usize = 65536;

/// A quantized `(distance, interference, pin)` memo key: `(qd, qi, qpin)`
/// with both axes on the `LN_QUANT` log grid, `qi == i64::MIN` the
/// exact-zero interference sentinel, and `qpin` the pinned mode's
/// discriminant plus one (0 = unpinned). The engine's planning-wave sweep
/// collects these per pair, deduplicates, and hands them to
/// [`OptionsMemo::prefetch`].
pub type OptionsKey = (i64, i64, u8);

/// Quantize-and-memoize [`options_under_pinned`] on
/// `(distance, interference, pin)` — the `solve_memo` trick applied one
/// stage earlier in the planning pipeline. The option *costs* depend only
/// on `(mode, rate)`, so quantizing the inputs can only move a mode/rate
/// availability decision, and only when the exact input sits within
/// ~2.3e-10 of a BER threshold; the byte-identity CI gates would catch such
/// a flip. Zero interference is kept as an exact sentinel (never
/// quantized) because `available_under` short-circuits on it.
#[derive(Debug, Default)]
pub struct OptionsMemo {
    cache: std::collections::HashMap<(i64, i64, u8), OptionSet>,
    /// Lookups that were served from the cache (single-key and batch).
    hits: u64,
    /// Total lookups (single-key and batch), hit or miss.
    lookups: u64,
}

impl OptionsMemo {
    /// An empty memo.
    pub fn new() -> Self {
        Self::default()
    }

    /// Fraction of lookups served from the cache so far, `0.0` before the
    /// first lookup. Per-instance (unlike the global telemetry counters),
    /// so the time-series sampler can gauge one scenario's memo without
    /// cross-scenario bleed.
    pub fn hit_rate(&self) -> f64 {
        if self.lookups == 0 {
            0.0
        } else {
            self.hits as f64 / self.lookups as f64
        }
    }

    /// The memo key for `(distance, interference, pin)`, or `None` when the
    /// inputs do not quantize (degenerate geometry such as coincident
    /// endpoints) — those queries fall through to the exact computation and
    /// are skipped by the wave prefetch.
    pub fn key_for(d: Meters, interference: Watts, pin: Option<Mode>) -> Option<OptionsKey> {
        let ld = d.meters().ln();
        let zero_i = interference.watts() <= 0.0;
        let li = if zero_i {
            0.0
        } else {
            interference.watts().ln()
        };
        if !ld.is_finite() || !li.is_finite() {
            return None;
        }
        let qd = (ld * LN_QUANT).round() as i64;
        let qi = if zero_i {
            i64::MIN // exact-zero sentinel, distinct from every ln() grid point
        } else {
            (li * LN_QUANT).round() as i64
        };
        let qpin = pin.map(|m| m as u8 + 1).unwrap_or(0);
        Some((qd, qi, qpin))
    }

    /// The canonical (quantized) inputs a key stands for — exactly the
    /// values the memoized evaluation runs on, so resolving a key through
    /// [`options_under_batch`] and through a [`get`](Self::get) miss cannot
    /// differ by a bit.
    fn decode_key(key: OptionsKey) -> (Meters, Watts, Option<Mode>) {
        let (qd, qi, qpin) = key;
        let d = Meters::new((qd as f64 / LN_QUANT).exp());
        let i = if qi == i64::MIN {
            Watts::ZERO
        } else {
            Watts::new((qi as f64 / LN_QUANT).exp())
        };
        let pin = if qpin == 0 {
            None
        } else {
            Some(Mode::ALL[(qpin - 1) as usize])
        };
        (d, i, pin)
    }

    /// Memoized [`options_under_pinned`].
    pub fn get(
        &mut self,
        ch: &Characterization,
        d: Meters,
        interference: Watts,
        pin: Option<Mode>,
    ) -> OptionSet {
        let Some(key) = Self::key_for(d, interference, pin) else {
            // Degenerate geometry (coincident endpoints): fall through to
            // the exact computation rather than inventing a grid for it.
            return options_under_pinned(ch, d, interference, pin);
        };
        self.lookups += 1;
        if let Some(set) = self.cache.get(&key) {
            self.hits += 1;
            braidio_telemetry::count("net.options.memo_hit");
            return *set;
        }
        // Canonical evaluation on the quantized inputs: the cached value is
        // a pure function of the key, independent of the call that missed.
        let (dq, iq, pin) = Self::decode_key(key);
        let set = options_under_pinned(ch, dq, iq, pin);
        if self.cache.len() >= OPTIONS_MEMO_CAP {
            self.cache.clear();
        }
        self.cache.insert(key, set);
        braidio_telemetry::count("net.options.memo_miss");
        set
    }

    /// Resolve a planning wave's worth of keys in one sweep. Keys already
    /// memoized count as batch hits; the misses are resolved **in the order
    /// given** through [`options_under_batch`] (one shared-surface lock
    /// acquisition for the whole miss set) and inserted under the same
    /// cap-clear policy as [`get`](Self::get). Callers pass the wave's keys
    /// sorted and deduplicated, so the memo's evolution — and therefore
    /// every value it ever returns — is a pure function of the key set, not
    /// of which pair happened to plan first.
    ///
    /// Parallelism: the miss set's per-key evaluation fans out inside
    /// [`options_under_batch`] (its γ-collection pass is chunked over the
    /// pool; the shared BER surface is filled canonically, in key order, by
    /// the serial pass that follows), while the hit scan and the insertions
    /// here stay serial — so the memo's contents are byte-identical at any
    /// thread count.
    pub fn prefetch(&mut self, ch: &Characterization, keys: &[OptionsKey]) {
        let mut misses: Vec<OptionsKey> = Vec::new();
        self.lookups += keys.len() as u64;
        for key in keys {
            if self.cache.contains_key(key) {
                self.hits += 1;
                braidio_telemetry::count("net.options.batch_hit");
            } else {
                misses.push(*key);
            }
        }
        if misses.is_empty() {
            return;
        }
        let items: Vec<(Meters, Watts, Option<Mode>)> =
            misses.iter().map(|&k| Self::decode_key(k)).collect();
        let sets = options_under_batch(ch, &items);
        for (key, set) in misses.into_iter().zip(sets) {
            braidio_telemetry::count("net.options.batch_miss");
            if self.cache.len() >= OPTIONS_MEMO_CAP {
                self.cache.clear();
            }
            self.cache.insert(key, set);
        }
    }
}

/// Batched [`options_under_pinned`]: one `OptionSet` per input triple,
/// bit-identical to the scalar calls, with every detector-mode BER query in
/// the batch resolved through the shared strict [`BerSurface`] tables —
/// grouped per rate so the whole batch costs one registry pass
/// ([`shared_batch`]) plus one memo-lock acquisition per (mode, rate)
/// group instead of one per query.
///
/// Bitwise argument: the strict shared surface's evaluator for
/// [`BerModel::NoncoherentOok`] *is* [`ber_ook_noncoherent_fast`], and
/// strict surfaces memoize by the γ bit pattern, so a surface-routed
/// availability decision equals the scalar path's direct call exactly. The
/// batch evaluates every rate of an interfered detector mode where the
/// scalar `max_rate_under` short-circuits at the first available one — the
/// extra evaluations are pure and discarded, and the chosen (mode, rate)
/// set is identical.
///
/// [`BerSurface`]: braidio_phy::surface::BerSurface
pub fn options_under_batch(
    ch: &Characterization,
    items: &[(Meters, Watts, Option<Mode>)],
) -> Vec<OptionSet> {
    const NRATES: usize = Rate::ALL.len();
    let rates: [BitsPerSecond; NRATES] =
        [Rate::ALL[0].bps(), Rate::ALL[1].bps(), Rate::ALL[2].bps()];
    let surfaces = shared_batch(BerModel::NoncoherentOok, &rates);

    // Pass 1: settle every availability decision that needs no BER solve
    // (Active, zero interference, uncharacterized (mode, rate) cells) and
    // queue the detector-mode γ queries per rate. The pass is pure per item
    // (table lookups and closed-form γ arithmetic, no shared state), so it
    // fans out over item chunks on the work pool; chunks merge in index
    // order, which makes the concatenated per-rate γ streams — and hence
    // every downstream surface call — exactly the ones the serial loop
    // builds.
    let nmodes = Mode::ALL.len();
    let slot = |item: usize, mode: Mode, ri: usize| (item * nmodes + mode as usize) * NRATES + ri;
    let chunk = braidio_pool::default_chunk(items.len());
    let nchunks = items.len().div_ceil(chunk);
    type Pass1 = (Vec<bool>, [Vec<f64>; 3], [Vec<usize>; 3]);
    let parts: Vec<Pass1> = braidio_pool::par_map_indexed_with_chunk(nchunks, 1, |c| {
        let lo = c * chunk;
        let hi = (lo + chunk).min(items.len());
        let mut avail = vec![false; (hi - lo) * nmodes * NRATES];
        let mut gammas: [Vec<f64>; NRATES] = [Vec::new(), Vec::new(), Vec::new()];
        let mut slots: [Vec<usize>; NRATES] = [Vec::new(), Vec::new(), Vec::new()];
        for (it, &(d, interference, pin)) in items[lo..hi].iter().enumerate() {
            for mode in Mode::ALL {
                if pin.is_some_and(|p| p != mode) {
                    continue;
                }
                for (ri, rate) in Rate::ALL.into_iter().enumerate() {
                    if ch.power(mode, rate).is_none() {
                        continue;
                    }
                    match mode {
                        Mode::Active => avail[slot(it, mode, ri)] = ch.available(mode, rate, d),
                        Mode::Passive | Mode::Backscatter => {
                            if interference.watts() <= 0.0 {
                                avail[slot(it, mode, ri)] = ch.available(mode, rate, d);
                            } else {
                                gammas[ri].push(victim_gamma(ch, mode, rate, d, interference));
                                // Global decision-table slot for the scatter
                                // after the merge.
                                slots[ri].push(slot(lo + it, mode, ri));
                            }
                        }
                    }
                }
            }
        }
        (avail, gammas, slots)
    });
    let mut avail = Vec::with_capacity(items.len() * nmodes * NRATES);
    let mut gammas: [Vec<f64>; NRATES] = [Vec::new(), Vec::new(), Vec::new()];
    let mut slots: [Vec<usize>; NRATES] = [Vec::new(), Vec::new(), Vec::new()];
    for (part_avail, part_gammas, part_slots) in parts {
        avail.extend(part_avail);
        for (ri, (g, s)) in part_gammas.into_iter().zip(part_slots).enumerate() {
            gammas[ri].extend(g);
            slots[ri].extend(s);
        }
    }

    // Pass 2: one batched surface call per rate group answers every queued
    // γ, then the BER threshold scatters back into the decision table. This
    // pass stays on the calling thread: it is the only stage that mutates
    // shared state (the process-wide surface memos), and running it serially
    // over the in-order γ streams keeps that state's evolution canonical —
    // the pool workers upstream never touch a surface.
    let mut bers: Vec<f64> = Vec::new();
    for (ri, surface) in surfaces.iter().enumerate() {
        if gammas[ri].is_empty() {
            continue;
        }
        bers.clear();
        bers.resize(gammas[ri].len(), 0.0);
        surface.ber_batch(&gammas[ri], &mut bers);
        for (&s, &ber) in slots[ri].iter().zip(&bers) {
            avail[s] = ber <= OPERATIONAL_BER;
        }
    }

    // Pass 3: assemble each item's options in `Mode::ALL` order, taking
    // the fastest available rate per mode — the scalar search's answer.
    items
        .iter()
        .enumerate()
        .map(|(it, &(_, _, pin))| {
            let mut opts = OptionSet::EMPTY;
            for mode in Mode::ALL {
                if pin.is_some_and(|p| p != mode) {
                    continue;
                }
                let best = (0..NRATES).rev().find(|&ri| avail[slot(it, mode, ri)]);
                if let Some(ri) = best {
                    let rate = Rate::ALL[ri];
                    let (tx_cost, rx_cost) = ch
                        .energy_per_bit(mode, rate)
                        .expect("rate came from the table");
                    opts.push(LinkOption {
                        mode,
                        rate,
                        tx_cost,
                        rx_cost,
                    });
                }
            }
            opts
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use braidio_mac::coexistence::Coexistence;
    use braidio_mac::offload::options_at;

    fn ch() -> Characterization {
        Characterization::braidio()
    }

    #[test]
    fn zero_interference_reduces_to_options_at() {
        let ch = ch();
        for d in [0.3, 0.5, 1.0, 2.0, 3.0, 4.8] {
            let base = options_at(&ch, Meters::new(d));
            let under = options_under(&ch, Meters::new(d), Watts::ZERO);
            assert_eq!(base.len(), under.len(), "at {d} m");
            for (a, b) in base.iter().zip(&under) {
                assert_eq!(a, b, "at {d} m");
            }
        }
    }

    #[test]
    fn single_source_matches_coexistence_model() {
        // One foreign carrier must reproduce `mac::coexistence` exactly:
        // same arriving power, same victim availability.
        let ch = ch();
        for d_int in [1.0, 5.0, 20.0, 80.0] {
            let co = Coexistence::braidio_neighbor(Meters::new(d_int));
            let src = CarrierSource {
                pos: Point::new(d_int, 0.0),
                rf: co.interferer_rf,
                relation: co.relation,
            };
            let i = interference_at(&ch, Point::ORIGIN, &[src]);
            let expect = co.interference_at_detector();
            assert!(
                (i.watts() / expect.watts() - 1.0).abs() < 1e-12,
                "at {d_int} m: {i} vs {expect}"
            );
            for mode in [Mode::Passive, Mode::Backscatter] {
                assert_eq!(
                    max_rate_under(&ch, mode, Meters::new(1.0), i),
                    co.victim_max_rate(mode, Meters::new(1.0)),
                    "{mode} with neighbour at {d_int} m"
                );
            }
        }
    }

    #[test]
    fn sources_sum_noncoherently() {
        let ch = ch();
        let one = CarrierSource {
            pos: Point::new(5.0, 0.0),
            rf: Watts::from_dbm(13.0),
            relation: ChannelRelation::AdjacentChannel,
        };
        let two = CarrierSource {
            pos: Point::new(0.0, 5.0),
            rf: Watts::from_dbm(13.0),
            relation: ChannelRelation::AdjacentChannel,
        };
        let i1 = interference_at(&ch, Point::ORIGIN, &[one]);
        let i12 = interference_at(&ch, Point::ORIGIN, &[one, two]);
        assert!((i12.watts() / i1.watts() - 2.0).abs() < 1e-9);
    }

    #[test]
    fn active_mode_is_interference_immune() {
        let ch = ch();
        let jam = Watts::from_dbm(0.0); // enormous at the detector scale
        assert!(available_under(
            &ch,
            Mode::Active,
            Rate::Mbps1,
            Meters::new(1.0),
            jam
        ));
        assert!(!available_under(
            &ch,
            Mode::Backscatter,
            Rate::Kbps10,
            Meters::new(0.3),
            jam
        ));
    }

    #[test]
    fn batched_options_match_scalar_bitwise() {
        // Every (distance, interference, pin) triple resolved through the
        // batched path must equal the scalar `options_under_pinned` answer
        // exactly — same modes, same rates, same costs.
        let ch = ch();
        let mut items: Vec<(Meters, Watts, Option<Mode>)> = Vec::new();
        for d in [0.3, 0.5, 1.0, 2.0, 3.3, 4.8] {
            for i_dbm in [f64::NEG_INFINITY, -120.0, -90.0, -70.0, -50.0, -30.0] {
                let i = if i_dbm.is_finite() {
                    Watts::from_dbm(i_dbm)
                } else {
                    Watts::ZERO
                };
                for pin in [None, Some(Mode::Active), Some(Mode::Backscatter)] {
                    items.push((Meters::new(d), i, pin));
                }
            }
        }
        let batched = options_under_batch(&ch, &items);
        assert_eq!(batched.len(), items.len());
        for (set, &(d, i, pin)) in batched.iter().zip(&items) {
            let scalar = options_under_pinned(&ch, d, i, pin);
            assert_eq!(
                &**set, &*scalar,
                "batch diverged at d={d}, i={i}, pin={pin:?}"
            );
        }
    }

    #[test]
    fn prefetch_is_invisible_to_get() {
        // A memo warmed by the wave prefetch must answer `get` with exactly
        // the sets a cold memo computes — prefilling is output-neutral.
        let ch = ch();
        let queries: Vec<(Meters, Watts, Option<Mode>)> = vec![
            (Meters::new(0.5), Watts::ZERO, None),
            (Meters::new(1.5), Watts::from_dbm(-80.0), None),
            (
                Meters::new(2.5),
                Watts::from_dbm(-60.0),
                Some(Mode::Backscatter),
            ),
            (Meters::new(4.0), Watts::from_dbm(-95.0), Some(Mode::Active)),
        ];
        let mut keys: Vec<OptionsKey> = queries
            .iter()
            .map(|&(d, i, pin)| OptionsMemo::key_for(d, i, pin).expect("finite inputs"))
            .collect();
        keys.sort_unstable();
        keys.dedup();
        let mut warmed = OptionsMemo::new();
        warmed.prefetch(&ch, &keys);
        let mut cold = OptionsMemo::new();
        for &(d, i, pin) in &queries {
            let a = warmed.get(&ch, d, i, pin);
            let b = cold.get(&ch, d, i, pin);
            assert_eq!(&*a, &*b, "prefetch changed the answer at d={d}, i={i}");
        }
    }

    #[test]
    fn edge_kernel_matches_carrier_contribution_bitwise() {
        // The memoized kernel must reproduce the direct transcendental
        // path bit-for-bit: first visit (miss) and revisit (hit) alike,
        // including the degenerate zero-distance edge.
        let ch = ch();
        let kernel = EdgeKernel::new(&ch);
        let victim = Point::new(1.5, -2.0);
        let pts = [
            Point::new(0.0, 0.0),
            Point::new(1.5, -2.0), // coincident with the victim
            Point::new(3.0, 4.0),
            Point::new(-7.25, 0.125),
            Point::new(100.0, 100.0),
        ];
        for _round in 0..2 {
            for &a in &pts {
                for &b in &pts {
                    for rel in ChannelRelation::ALL {
                        let src = if a.distance(victim) <= b.distance(victim) {
                            a
                        } else {
                            b
                        };
                        let direct = carrier_contribution(
                            &ch,
                            victim,
                            &CarrierSource {
                                pos: src,
                                rf: ch.carrier_rf,
                                relation: rel,
                            },
                        );
                        let got = kernel.carrier_from_pair(victim, a, b, rel);
                        assert_eq!(
                            got.watts().to_bits(),
                            direct.watts().to_bits(),
                            "a={a:?} b={b:?} {rel:?}"
                        );
                    }
                }
            }
        }
        assert!(kernel.fspl_hits() > 0);
    }

    #[test]
    fn edge_tile_matches_scalar_bitwise() {
        let ch = ch();
        let kernel = EdgeKernel::new(&ch);
        let victim = Point::new(0.5, 0.5);
        for n in [0, 1, 7, EDGE_TILE] {
            let a: Vec<Point> = (0..n).map(|i| Point::new(i as f64 * 0.7, 1.0)).collect();
            let b: Vec<Point> = (0..n)
                .map(|i| Point::new(1.0, (n - i) as f64 * 0.3))
                .collect();
            let rel: Vec<ChannelRelation> = (0..n).map(|i| ChannelRelation::ALL[i % 3]).collect();
            let mut out = vec![Watts::ZERO; n];
            kernel.carrier_tile(victim, &a, &b, &rel, &mut out);
            for i in 0..n {
                let scalar = kernel.carrier_from_pair(victim, a[i], b[i], rel[i]);
                assert_eq!(
                    out[i].watts().to_bits(),
                    scalar.watts().to_bits(),
                    "lane {i} of {n}"
                );
            }
        }
    }

    #[test]
    fn interference_strips_backscatter_before_passive() {
        // A 10 m adjacent-channel neighbour: backscatter (two-way signal)
        // dies first, passive (one-way) survives longer.
        let ch = ch();
        let src = CarrierSource {
            pos: Point::new(10.0, 0.0),
            rf: Watts::from_dbm(13.0),
            relation: ChannelRelation::AdjacentChannel,
        };
        let i = interference_at(&ch, Point::ORIGIN, &[src]);
        let opts = options_under(&ch, Meters::new(1.0), i);
        let modes: Vec<Mode> = opts.iter().map(|o| o.mode).collect();
        assert!(!modes.contains(&Mode::Backscatter), "{modes:?}");
        assert!(modes.contains(&Mode::Active));
    }
}
