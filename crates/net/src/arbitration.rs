//! Carrier arbitration: who may park a carrier in the band, when.
//!
//! The coexistence analysis (`mac::coexistence`) ends on a sharp note:
//! distance cannot save the backscatter regime from an uncoordinated
//! in-band carrier, so multi-pair deployments must coordinate — the same
//! pressure that produced EPC Gen2's dense-reader mode. This module is the
//! coordination knob of the fleet simulator:
//!
//! * [`Arbitration::Uncoordinated`] — every pair transmits whenever it
//!   likes on its own (independently chosen) channel. Foreign carriers
//!   land adjacent-channel, the worst realistic coupling for an envelope
//!   detector (the carrier beat falls inside the baseband).
//! * [`Arbitration::TdmaRoundRobin`] — time slots rotate round-robin over
//!   the pairs; only the slot owner's carrier is up. Airtime divides by
//!   the fleet size, but every slot is interference-free.
//! * [`Arbitration::ChannelPlan`] — pairs are statically assigned one of
//!   `channels` ISM channels (`pair % channels`). Same-channel neighbours
//!   couple co-channel (−10 dB: the quasi-static superposition is mostly
//!   removed by the high-pass); different-channel neighbours still couple
//!   adjacent-channel at full power, because an envelope detector has no
//!   channel selectivity — frequency planning alone cannot rescue a
//!   channel-blind receiver, which the fleet experiment demonstrates.

use braidio_mac::coexistence::ChannelRelation;
use braidio_units::Seconds;

/// A carrier-arbitration policy for a fleet of pairs.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Arbitration {
    /// No coordination: all carriers up at once, adjacent-channel coupling.
    Uncoordinated,
    /// Round-robin TDMA over the pairs with the given slot length.
    TdmaRoundRobin {
        /// Slot duration.
        slot: Seconds,
    },
    /// Static frequency plan over `channels` ISM channels.
    ChannelPlan {
        /// Number of channels in the plan (≥ 1).
        channels: usize,
    },
}

impl Arbitration {
    /// Short label for experiment output.
    pub fn label(self) -> &'static str {
        match self {
            Arbitration::Uncoordinated => "uncoordinated",
            Arbitration::TdmaRoundRobin { .. } => "tdma",
            Arbitration::ChannelPlan { .. } => "channel-plan",
        }
    }

    /// How the carrier of pair `other` lands in the receiver of pair
    /// `victim`. Only meaningful for policies where both may be up at once.
    pub fn relation(self, victim: usize, other: usize) -> ChannelRelation {
        match self {
            Arbitration::Uncoordinated => ChannelRelation::AdjacentChannel,
            // TDMA pairs never overlap in time; the relation is moot but
            // co-channel is the honest answer (one shared channel).
            Arbitration::TdmaRoundRobin { .. } => ChannelRelation::CoChannel,
            Arbitration::ChannelPlan { channels } => {
                let c = channels.max(1);
                if victim % c == other % c {
                    ChannelRelation::CoChannel
                } else {
                    ChannelRelation::AdjacentChannel
                }
            }
        }
    }

    /// May pair `pair` (of `n_pairs`) transmit at time `t`?
    pub fn may_transmit(self, pair: usize, n_pairs: usize, t: Seconds) -> bool {
        match self {
            Arbitration::Uncoordinated | Arbitration::ChannelPlan { .. } => true,
            Arbitration::TdmaRoundRobin { slot } => {
                if n_pairs <= 1 {
                    return true;
                }
                let idx = (t.seconds() / slot.seconds()).floor() as u64;
                idx % n_pairs as u64 == pair as u64
            }
        }
    }

    /// Do the carriers of two distinct pairs ever overlap in time?
    pub fn carriers_overlap(self) -> bool {
        !matches!(self, Arbitration::TdmaRoundRobin { .. })
    }

    /// The earliest time ≥ `t` at which `pair` may transmit.
    pub fn next_transmit_at(self, pair: usize, n_pairs: usize, t: Seconds) -> Seconds {
        match self {
            Arbitration::Uncoordinated | Arbitration::ChannelPlan { .. } => t,
            Arbitration::TdmaRoundRobin { slot } => {
                if n_pairs <= 1 || self.may_transmit(pair, n_pairs, t) {
                    return t;
                }
                // The pair is outside its slot and must wait for its turn.
                braidio_telemetry::count("net.arbitration.deferred");
                let s = slot.seconds();
                let idx = (t.seconds() / s).floor() as u64;
                let n = n_pairs as u64;
                // Slots cycle with period n; the pair owns slots ≡ pair (mod n).
                let cur = idx % n;
                let ahead = (pair as u64 + n - cur) % n;
                debug_assert!(ahead > 0, "caller handled the own-slot case");
                let k = idx + ahead;
                // `k * s` can round a hair below the true boundary when `s`
                // is not dyadic (e.g. 0.1 s slots), which would land the
                // result in the previous slot; nudge up until it floors to
                // `k` so the postcondition `may_transmit` holds.
                let mut at = k as f64 * s;
                while ((at / s).floor() as u64) < k {
                    at = f64::from_bits(at.to_bits() + 1);
                }
                Seconds::new(at)
            }
        }
    }

    /// The end of the transmit window containing `t` (which must be a
    /// permitted time), or `None` when the window is unbounded.
    pub fn window_end(self, pair: usize, n_pairs: usize, t: Seconds) -> Option<Seconds> {
        match self {
            Arbitration::Uncoordinated | Arbitration::ChannelPlan { .. } => None,
            Arbitration::TdmaRoundRobin { slot } => {
                if n_pairs <= 1 {
                    return None;
                }
                debug_assert!(self.may_transmit(pair, n_pairs, t));
                let s = slot.seconds();
                let idx = (t.seconds() / s).floor() as u64;
                Some(Seconds::new((idx + 1) as f64 * s))
            }
        }
    }

    /// The long-run fraction of airtime a pair owns.
    pub fn airtime_share(self, n_pairs: usize) -> f64 {
        match self {
            Arbitration::Uncoordinated | Arbitration::ChannelPlan { .. } => 1.0,
            Arbitration::TdmaRoundRobin { .. } => 1.0 / n_pairs.max(1) as f64,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uncoordinated_is_always_on_adjacent() {
        let a = Arbitration::Uncoordinated;
        assert!(a.may_transmit(3, 8, Seconds::new(12.34)));
        assert_eq!(a.relation(0, 1), ChannelRelation::AdjacentChannel);
        assert!(a.carriers_overlap());
        assert_eq!(a.airtime_share(8), 1.0);
    }

    #[test]
    fn tdma_slots_rotate_round_robin() {
        let a = Arbitration::TdmaRoundRobin {
            slot: Seconds::new(0.5),
        };
        // 3 pairs: slot k belongs to pair k mod 3.
        for k in 0..9u32 {
            let t = Seconds::new(k as f64 * 0.5 + 0.1);
            for p in 0..3 {
                assert_eq!(
                    a.may_transmit(p, 3, t),
                    (k as usize % 3) == p,
                    "slot {k} pair {p}"
                );
            }
        }
        assert!(!a.carriers_overlap());
        assert!((a.airtime_share(4) - 0.25).abs() < 1e-12);
    }

    #[test]
    fn tdma_next_transmit_lands_in_own_slot() {
        let a = Arbitration::TdmaRoundRobin {
            slot: Seconds::new(1.0),
        };
        // At t = 0.2 (pair 0's slot), pair 2 waits until t = 2.
        let t = a.next_transmit_at(2, 4, Seconds::new(0.2));
        assert_eq!(t, Seconds::new(2.0));
        assert!(a.may_transmit(2, 4, t));
        // Already in its own slot: no wait.
        let t2 = a.next_transmit_at(0, 4, Seconds::new(0.2));
        assert_eq!(t2, Seconds::new(0.2));
        // Window end closes at the slot boundary.
        assert_eq!(a.window_end(0, 4, t2), Some(Seconds::new(1.0)));
    }

    #[test]
    fn single_pair_tdma_degenerates_to_always_on() {
        let a = Arbitration::TdmaRoundRobin {
            slot: Seconds::new(1.0),
        };
        assert!(a.may_transmit(0, 1, Seconds::new(7.7)));
        assert_eq!(a.window_end(0, 1, Seconds::new(7.7)), None);
        assert_eq!(a.airtime_share(1), 1.0);
    }

    #[test]
    fn channel_plan_couples_by_assignment() {
        let a = Arbitration::ChannelPlan { channels: 2 };
        // Pairs 0 and 2 share channel 0: co-channel.
        assert_eq!(a.relation(0, 2), ChannelRelation::CoChannel);
        // Pairs 0 and 1 sit on different channels: adjacent-channel.
        assert_eq!(a.relation(0, 1), ChannelRelation::AdjacentChannel);
        assert!(a.may_transmit(1, 4, Seconds::ZERO));
    }
}
