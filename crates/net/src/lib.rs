//! # braidio-net — deterministic multi-device network simulation
//!
//! The pairwise engine (`braidio-mac::sim`) answers "how many bits can
//! *these two* devices move?". This crate scales the question to a room:
//! N devices with heterogeneous batteries and positions, M traffic pairs,
//! foreign-carrier interference between them, and a pluggable carrier
//! arbitration policy — driven by a deterministic discrete-event kernel
//! whose delivery order is a pure function of the scenario, so every run
//! is bit-identical regardless of host, thread count, or insertion order.
//!
//! * [`kernel`] — the DES event queue with total-order tie-breaking.
//! * [`interference`] — many-source foreign-carrier coupling, generalizing
//!   `mac::coexistence` from one interferer to a fleet.
//! * [`cache`] — incrementally maintained pairwise interference sums (the
//!   large-fleet fast path; bit-identical to the brute-force rescan).
//! * [`arbitration`] — who may put a carrier up, when (uncoordinated,
//!   round-robin TDMA, static channel plans).
//! * [`scenario`] — device placement, batteries, traffic pairs, and the
//!   open-system churn roster ([`FleetScenario::open_system`]).
//! * [`lifecycle`] — the per-link session phase machine
//!   (Init → Probe → Warm → Live ⇄ Degrade → Cooldown → Probe | Dead).
//! * [`discovery`] — beacon/passive-listen admission priced by
//!   `mac::wakeup`'s detector economics.
//! * [`engine`] — the event-driven fleet simulator ([`run_fleet`]).
//! * [`metrics`] — goodput, per-device lifetime, carrier duty, Jain
//!   fairness ([`FleetReport`]), steady-state churn metrics
//!   ([`metrics::ChurnReport`]).
//!
//! ```
//! use braidio_net::{run_fleet, Arbitration, FleetScenario};
//! use braidio_units::{Meters, Seconds};
//!
//! // Two pairs sharing a room without coordination: the foreign carriers
//! // strip the detector-based modes (backscatter, passive) at any
//! // separation, exactly as the §7 coexistence analysis predicts.
//! let sc = FleetScenario::independent_pairs(
//!     2,
//!     Meters::new(0.5),
//!     Meters::new(10.0),
//!     1.0,
//!     1.0,
//!     Arbitration::Uncoordinated,
//! )
//! .with_horizon(Seconds::new(10.0));
//! let report = run_fleet(&sc);
//! assert!(report.total_bits() > 0.0);
//! assert_eq!(report.mode_share(braidio_radio::Mode::Backscatter), 0.0);
//! ```

pub mod arbitration;
#[doc(hidden)]
pub mod baseline;
pub mod cache;
pub mod discovery;
pub mod engine;
pub mod interference;
pub mod kernel;
pub mod lifecycle;
pub mod metrics;
pub mod scenario;

pub use arbitration::Arbitration;
pub use discovery::DiscoveryConfig;
pub use engine::{run_fleet, run_fleet_sampled};
pub use kernel::{DeviceId, EventQueue};
pub use lifecycle::{LifecyclePolicy, LinkPhase, PhaseEvent};
pub use metrics::{jain_fairness, ChurnReport, FleetReport};
pub use scenario::{ChurnConfig, DeviceSpec, FleetScenario, PairSpec};
