//! The event-driven fleet engine.
//!
//! Each traffic pair runs the §4.2 control protocol as a legal
//! [`OffloadFsm`] event sequence — associate, exchange status, probe, braid,
//! periodically re-plan — driven entirely by kernel events. Data moves in
//! *braid quanta* ([`FleetScenario::quantum_packets`] packets): the energy
//! and airtime of a quantum are computed when it is scheduled (plan costs
//! plus the same amortized Table 5 switching charge as `mac::sim`), and
//! committed when its completion event is delivered. Events past the
//! scenario horizon are never delivered, so a truncated run is exactly the
//! prefix of the infinite one.
//!
//! Planning is interference-aware and *worst-case*: a pair plans against
//! the full CW carrier power (`Characterization::carrier_rf`) of every
//! other live pair, radiated from whichever of that pair's two devices sits
//! closer to the victim receiver. This over-approximates pairs that end up
//! braiding carrier-free allocations, but it keeps planning independent of
//! the other pairs' current plans — which makes the simulation's outcome a
//! pure function of the event order, and the event order a pure function of
//! the scenario. Pairs that share a device (a star hub serving several
//! tags) see each other at the near-field floor, modelling the fact that a
//! single radio cannot host two uncoordinated sessions at once.
//!
//! # Structure-of-arrays layout
//!
//! Device and pair state live in flat parallel arrays indexed by device /
//! pair id (`Devices`, `Pairs`) rather than per-entity structs. At 10⁴
//! pairs the hot loops — the interference sweep, quantum commits, report
//! assembly — walk one field of every entity, and a columnar layout turns
//! each of those walks into a dense sequential scan instead of a strided
//! pointer chase. The arithmetic is unchanged; only addresses moved.
//!
//! # Batched planning waves
//!
//! A planning wave (the burst of `install_plan` calls after bring-up, a
//! death, or a mobility refresh) is executed as a batched sweep
//! (`Fleet::wave_sweep`): first the [`PairGainCache`] bulk-rebuilds every
//! stale interference sum over the flat arrays in pair-index order, then
//! the wave's quantized [`OptionsMemo`] keys are collected, sorted and
//! deduplicated, and the misses are resolved in key order through the
//! batched BER surface (`phy::surface::BerSurface::ber_batch`) — one lock
//! acquisition per (mode, rate) group for the whole wave. This is
//! output-neutral by construction: memo values are canonical functions of
//! their quantized keys, bulk-rebuilt sums run the identical per-victim
//! accumulation loop the lazy path runs, and any state change after the
//! sweep re-dirties the caches so the per-pair path recomputes exactly what
//! the pre-refactor engine would have.
//!
//! The wave's heavy stages — the per-victim interference sums and the
//! per-pair key collection — fan out over the `braidio-pool` workers with
//! index-chunked scheduling and in-order merges, so a single large scenario
//! uses every core while staying byte-identical at any `--jobs` count
//! (DESIGN.md §12). Plan *installation* stays inside the event loop: each
//! `solve_memo` call reads the pair's live battery levels at its own event
//! time, so hoisting it into the wave would change semantics, not just
//! scheduling.
//!
//! # Open systems: discovery, lifecycle, churn
//!
//! When the scenario carries a [`crate::scenario::ChurnConfig`], pairs are
//! *sessions*: each row enters at its `arrival`, waits in
//! [`LinkPhase::Init`] on detector-only power until its hub's next beacon
//! admits it ([`crate::discovery`]), rides the
//! `Probe → Warm → Live ⇄ Degrade → Cooldown` machine
//! ([`crate::lifecycle`]), and leaves at its `departure` (or dies). The
//! interference live set follows [`LinkPhase::on_air`] — Init/Cooldown
//! sessions are radio-silent and contribute nothing — via the two-way
//! [`PairGainCache::set_live`] flip, so a cooldown row is *recycled*, not
//! retired. Closed scenarios (`churn: None`) take the legacy fast path:
//! the phase columns stay untouched, no phase telemetry is emitted, and
//! the event sequence is byte-identical to the pre-lifecycle engine.
//!
//! Determinism: one pending event per (pair, kind) keeps kernel keys
//! unique; the pair index is the kernel's entity id; all floating-point
//! reductions iterate in pair/device index order. Open-system randomness
//! lives entirely in the scenario roster (drawn at construction), never in
//! the engine. A quantum aborted by a cooldown leaves its completion event
//! ghosting in the queue; a per-pair generation stamp makes the revived
//! session ignore it.

use crate::arbitration::Arbitration;
use crate::cache::{far_field_cutoff, PairGainCache};
use crate::interference::{EdgeKernel, OptionsKey, OptionsMemo, EDGE_TILE};
use crate::kernel::EventQueue;
use crate::lifecycle::{self, LinkPhase, PhaseEvent, PHASE_COUNT};
use crate::metrics::{ChurnReport, FleetReport};
use crate::scenario::FleetScenario;
use braidio_mac::coexistence::ChannelRelation;
use braidio_mac::fsm::{Event as FsmEvent, OffloadFsm, State as FsmState};
use braidio_mac::mobility::MobilityTrace;
use braidio_mac::offload::{solve_memo, OffloadPlan};
use braidio_mac::probe::LinkProber;
use braidio_mac::sim::switches_per_packet;
use braidio_pool as pool;
use braidio_radio::characterization::Rate;
use braidio_radio::{Battery, Mode, Role};
use braidio_rfsim::geometry::Point;
use braidio_telemetry as telemetry;
use braidio_units::{Joules, Meters, Seconds, Watts};
use telemetry::timeseries::{Sample, Series};

/// Battery-status exchange size, bits each way over the active link (§4.2
/// step 1: "exchange battery status").
const STATUS_BITS: f64 = 256.0;

/// Fixed association stagger between pairs: pair `i` comes up at
/// `i · ASSOC_STAGGER`. Keeps bring-up event keys distinct and models
/// non-simultaneous discovery.
const ASSOC_STAGGER: Seconds = Seconds::new(1e-3);

/// The network events, in protocol order. The discriminant is the kernel's
/// same-instant `seq` class: when a re-plan and a quantum completion land
/// on the same instant, the completion (later rank) commits after the
/// re-plan reshaped the next quantum — a fixed, documented choice.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Kind {
    Associate,
    StatusExchanged,
    ProbesDone,
    Replan,
    QuantumDone,
    /// Open systems only: the session's dwell ended (graceful teardown).
    /// Ranked after `QuantumDone` so a quantum completing at the departure
    /// instant still commits.
    Departure,
    /// Open systems only: the cooldown timer fired — retry or give up.
    CooldownDone,
}

/// Number of [`Kind`] variants — the width of the sampler's per-bucket
/// event-rate row.
const KIND_COUNT: usize = 7;

impl Kind {
    fn rank(self) -> u64 {
        match self {
            Kind::Associate => 0,
            Kind::StatusExchanged => 1,
            Kind::ProbesDone => 2,
            Kind::Replan => 3,
            Kind::QuantumDone => 4,
            Kind::Departure => 5,
            Kind::CooldownDone => 6,
        }
    }
}

#[derive(Debug, Clone, Copy)]
struct Ev {
    pair: usize,
    kind: Kind,
    /// Quantum generation stamp (`QuantumDone` only, 0 elsewhere): a
    /// completion whose stamp trails the pair's current generation belongs
    /// to a quantum a cooldown aborted, and is ignored.
    gen: u32,
}

/// One scheduled slice of a quantum:
/// (mode, rate, bits, tx-radiates, rx-radiates, airtime).
type Slice = (Mode, Rate, f64, bool, bool, Seconds);

const FILL_SLICE: Slice = (
    Mode::Active,
    Rate::Kbps10,
    0.0,
    false,
    false,
    Seconds::new(0.0),
);

/// A quantum in flight: its energy and accounting are committed when the
/// completion event is delivered (never, if the horizon or a re-plan death
/// cuts the session first). Slices are inline (a plan braids at most two
/// options) so scheduling a quantum never touches the heap.
#[derive(Debug, Clone)]
struct PendingQuantum {
    bits: f64,
    e_tx: Joules,
    e_rx: Joules,
    slices: [Slice; 2],
    nslices: u8,
    /// This quantum exhausts a battery.
    last: bool,
}

impl PendingQuantum {
    fn slices(&self) -> &[Slice] {
        &self.slices[..self.nslices as usize]
    }
}

/// Per-device runtime state, one flat array per field, indexed by device
/// id. Each array is touched by a different part of the engine (positions
/// by the interference sweep, batteries by affordability checks, the
/// accounting columns by commits and the final report), so splitting them
/// keeps every hot walk dense.
#[derive(Debug)]
struct Devices {
    pos: Vec<Point>,
    battery: Vec<Battery>,
    spent: Vec<Joules>,
    dead_at: Vec<Option<Seconds>>,
    carrier_time: Vec<Seconds>,
}

/// Per-pair runtime state in flat parallel arrays indexed by pair id. The
/// scenario-derived columns (`tx`, `rx`, `pin`, `mobile`) are copied in at
/// construction so the planning-wave sweep never strides through
/// `FleetScenario::pairs` structs.
#[derive(Debug)]
struct Pairs {
    tx: Vec<usize>,
    rx: Vec<usize>,
    pin: Vec<Option<Mode>>,
    mobile: Vec<bool>,
    fsm: Vec<OffloadFsm>,
    plan: Vec<Option<OffloadPlan>>,
    pending: Vec<Option<PendingQuantum>>,
    bits: Vec<f64>,
    /// Delivered bits per mode, indexed by `Mode as usize` (the
    /// discriminants follow `Mode::ALL` order).
    mode_bits: Vec<[f64; 3]>,
    dead_at: Vec<Option<Seconds>>,
    /// Unit vector tx→rx for mobility displacement.
    dir: Vec<Point>,
    /// Primary (largest-fraction) mode of the last installed plan, for
    /// telemetry `ModeSwitch` edges.
    last_mode: Vec<Option<Mode>>,
    /// Lifecycle phase (open systems only; closed scenarios never read or
    /// write the churn columns below).
    phase: Vec<LinkPhase>,
    /// When the current phase was entered (arrival time until then), the
    /// anchor for phase-occupancy accounting.
    phase_since: Vec<Seconds>,
    /// Quanta delivered while in `Warm` (promotion to `Live` at the
    /// policy's `warmup_quanta`).
    warm_got: Vec<u32>,
    /// Cooldown entries so far (a session past `max_cooldowns` gives up).
    cooldowns: Vec<u32>,
    /// Current quantum generation; bumped when a cooldown aborts a quantum
    /// so the aborted completion event is recognizably stale.
    quantum_gen: Vec<u32>,
    /// A `Replan` event is pending in the queue (guards against scheduling
    /// a duplicate when a cooldown retry re-enters the plan loop while the
    /// pre-cooldown replan is still queued).
    replan_queued: Vec<bool>,
    /// When the session was admitted by its hub's beacon, if it was.
    admitted_at: Vec<Option<Seconds>>,
    /// This row is the second leg of a roaming session (same tag device as
    /// an earlier row); its admission counts as a completed roam handoff.
    roam_leg2: Vec<bool>,
}

impl Pairs {
    fn len(&self) -> usize {
        self.tx.len()
    }
}

/// Run a fleet scenario to its horizon (or until every session dies).
pub fn run_fleet(scenario: &FleetScenario) -> FleetReport {
    scenario.validate();
    let mut sim = Fleet::new(scenario);
    sim.run()
}

/// Run a fleet scenario while sampling fleet gauges every `dt` simulated
/// seconds (see [`telemetry::timeseries`]). The report is bit-identical to
/// what [`run_fleet`] produces for the same scenario — the sampler only
/// *reads* engine state from inside the serial event loop, so it perturbs
/// nothing and inherits the loop's total order: the returned [`Series`] is
/// byte-identical at any worker-thread count.
///
/// Rows land at `t = 0, dt, 2·dt, …` through the horizon inclusive; each
/// row's instantaneous gauges describe the state *before* any event
/// scheduled at exactly that instant runs, and its windowed gauges cover
/// the bucket ending there. The series' `name` is left empty for the
/// caller to label.
pub fn run_fleet_sampled(scenario: &FleetScenario, dt: Seconds) -> (FleetReport, Series) {
    assert!(
        dt.seconds() > 0.0 && dt.seconds().is_finite(),
        "sampling cadence must be positive and finite"
    );
    scenario.validate();
    let mut sim = Fleet::new(scenario);
    let (report, series) = sim.run_sampled(Some(Sampler::new(dt.seconds(), scenario.horizon)));
    (report, series.expect("a sampler was installed"))
}

// The sampler mirrors the engine's phase and event vocabularies into the
// telemetry row layout by index; hold the widths together at compile time.
const _: () = assert!(PHASE_COUNT == telemetry::timeseries::SAMPLE_PHASES);
const _: () = assert!(KIND_COUNT == telemetry::timeseries::SAMPLE_KINDS);

/// In-run time-series sampler: accumulates one [`Sample`] row per `dt` of
/// simulated time from inside the engine's serial event loop.
struct Sampler {
    dt: f64,
    /// Index of the last bucket (`kmax·dt` is the final row, at or just
    /// under the horizon; a small fudge admits cadences like `horizon/120`
    /// whose product rounds a hair above it).
    kmax: u64,
    /// Next bucket to emit.
    next_k: u64,
    /// Cumulative delivered bits at the previous row (goodput window).
    last_cum_bits: f64,
    /// Events handled since the previous row, by scheduler rank.
    kind_counts: [u32; KIND_COUNT],
    samples: Vec<Sample>,
    /// Scratch for battery-fraction quantiles, reused across rows.
    scratch: Vec<f64>,
}

impl Sampler {
    fn new(dt: f64, horizon: Seconds) -> Self {
        let kmax = (horizon.seconds() / dt + 1e-9).floor() as u64;
        Sampler {
            dt,
            kmax,
            next_k: 0,
            last_cum_bits: 0.0,
            kind_counts: [0; KIND_COUNT],
            samples: Vec::with_capacity(kmax as usize + 1),
            scratch: Vec::new(),
        }
    }

    fn saw(&mut self, kind: Kind) {
        self.kind_counts[kind.rank() as usize] += 1;
    }

    fn into_series(self) -> Series {
        Series {
            name: String::new(),
            dt: self.dt,
            samples: self.samples,
        }
    }
}

struct Fleet<'a> {
    sc: &'a FleetScenario,
    q: EventQueue<Ev>,
    devices: Devices,
    pairs: Pairs,
    replans: u64,
    /// Cached pairwise interference (invalidated on death / mobility).
    gains: PairGainCache,
    /// Quantize-and-memoized `options_under` (per-engine, so a run stays a
    /// pure function of its scenario).
    options: OptionsMemo,
    /// The options memo has never been prefetched (first wave pending).
    wave_cold: bool,
    /// Scratch for the wave sweep's key collection; capacity is retained
    /// across waves so steady-state sweeps stay allocation-free.
    wave_keys: Vec<OptionsKey>,
    /// The transcendental-starved interference edge kernel: cached
    /// dB→linear constants plus the exact FSPL memo, shared by the bulk
    /// wave sweep, the lazy dirty-sum path and the debug shadow check —
    /// the single arithmetic definition of a fleet edge.
    edges: EdgeKernel,
    /// Scratch for the wave sweep's endpoint gather (`pos[tx[q]]`,
    /// `pos[rx[q]]` flattened per wave); capacity retained across waves.
    wave_a: Vec<Point>,
    wave_b: Vec<Point>,
    /// Open-system accumulators (untouched when `sc.churn` is `None`).
    /// Session-seconds per phase, indexed by [`LinkPhase::index`].
    phase_time: [f64; PHASE_COUNT],
    /// Sessions that departed gracefully.
    departed: usize,
    /// Sessions that died (battery, gave up, or a shared device's death).
    died: usize,
    /// Bits each pair moved inside the trailing steady-state window.
    window_bits: Vec<f64>,
}

impl<'a> Fleet<'a> {
    fn new(sc: &'a FleetScenario) -> Self {
        let n_dev = sc.devices.len();
        let mut devices = Devices {
            pos: Vec::with_capacity(n_dev),
            battery: Vec::with_capacity(n_dev),
            spent: vec![Joules::ZERO; n_dev],
            dead_at: vec![None; n_dev],
            carrier_time: vec![Seconds::ZERO; n_dev],
        };
        for d in &sc.devices {
            devices.pos.push(d.pos);
            devices.battery.push(Battery::new(d.battery));
        }
        let n = sc.pairs.len();
        let mut pairs = Pairs {
            tx: Vec::with_capacity(n),
            rx: Vec::with_capacity(n),
            pin: Vec::with_capacity(n),
            mobile: Vec::with_capacity(n),
            fsm: Vec::with_capacity(n),
            plan: vec![None; n],
            pending: vec![None; n],
            bits: vec![0.0; n],
            mode_bits: vec![[0.0; 3]; n],
            dead_at: vec![None; n],
            dir: Vec::with_capacity(n),
            last_mode: vec![None; n],
            phase: vec![LinkPhase::Init; n],
            phase_since: Vec::with_capacity(n),
            warm_got: vec![0; n],
            cooldowns: vec![0; n],
            quantum_gen: vec![0; n],
            replan_queued: vec![false; n],
            admitted_at: vec![None; n],
            roam_leg2: Vec::with_capacity(n),
        };
        let mut tag_seen = vec![false; n_dev];
        for p in &sc.pairs {
            pairs.tx.push(p.tx);
            pairs.rx.push(p.rx);
            pairs.pin.push(p.pinned_mode);
            pairs.mobile.push(p.walk.is_some());
            pairs.fsm.push(OffloadFsm::new());
            pairs.dir.push(
                sc.devices[p.tx]
                    .pos
                    .direction_to(sc.devices[p.rx].pos)
                    .unwrap_or(Point::new(1.0, 0.0)),
            );
            // Phase accounting starts at the session's arrival (t = 0 for
            // closed pairs, which never use the column).
            pairs.phase_since.push(p.arrival.unwrap_or(Seconds::ZERO));
            pairs.roam_leg2.push(tag_seen[p.tx]);
            tag_seen[p.tx] = true;
        }
        let mut gains = if sc.far_field_cull {
            PairGainCache::with_cull(n, far_field_cutoff(&sc.ch))
        } else {
            PairGainCache::new(n)
        };
        if sc.churn.is_some() {
            // Open-system sessions start radio-silent in Init: nobody is
            // on air until a beacon admits them.
            for p in 0..n {
                gains.set_live(p, false);
            }
        }
        Fleet {
            sc,
            // The bring-up schedules up to two events per pair before the
            // first one drains (churn: Associate + Departure), so size the
            // heap once instead of regrowing it mid-run.
            q: EventQueue::with_capacity(2 * n),
            devices,
            pairs,
            replans: 0,
            gains,
            options: OptionsMemo::new(),
            wave_cold: true,
            wave_keys: Vec::new(),
            edges: EdgeKernel::new(&sc.ch),
            wave_a: Vec::new(),
            wave_b: Vec::new(),
            phase_time: [0.0; PHASE_COUNT],
            departed: 0,
            died: 0,
            window_bits: if sc.churn.is_some() {
                vec![0.0; n]
            } else {
                Vec::new()
            },
        }
    }

    fn run(&mut self) -> FleetReport {
        self.run_sampled(None).0
    }

    /// The event loop, optionally observed by a time-series [`Sampler`].
    /// The sampler is a read-only witness: it never touches the queue or
    /// any engine state, so the report is bit-identical with or without
    /// it, and — because this loop is serial even under a thread pool —
    /// its rows are byte-identical at any `--jobs`.
    fn run_sampled(&mut self, mut sampler: Option<Sampler>) -> (FleetReport, Option<Series>) {
        telemetry::begin_unit();
        if let Some(cfg) = self.sc.churn {
            // Open system: each session is admitted at the first beacon of
            // its hub after its arrival (the admission instant is a pure
            // function of the roster, so it is computed here rather than
            // simulating beacons), and departs when its dwell ends. Both
            // instants past the horizon simply never deliver.
            for i in 0..self.pairs.len() {
                let spec = &self.sc.pairs[i];
                let arrival = spec.arrival.expect("churn pairs carry arrivals");
                let admit = cfg.discovery.admission_at(spec.rx as u32, arrival);
                self.q.schedule(
                    admit,
                    Kind::Associate.rank(),
                    i as u32,
                    Ev {
                        pair: i,
                        kind: Kind::Associate,
                        gen: 0,
                    },
                );
                self.q.schedule(
                    spec.departure.expect("churn pairs carry departures"),
                    Kind::Departure.rank(),
                    i as u32,
                    Ev {
                        pair: i,
                        kind: Kind::Departure,
                        gen: 0,
                    },
                );
            }
        } else {
            for i in 0..self.pairs.len() {
                self.q.schedule(
                    Seconds::new(i as f64 * ASSOC_STAGGER.seconds()),
                    Kind::Associate.rank(),
                    i as u32,
                    Ev {
                        pair: i,
                        kind: Kind::Associate,
                        gen: 0,
                    },
                );
            }
        }
        let mut last = Seconds::ZERO;
        let mut truncated = false;
        while let Some(ev) = self.q.pop() {
            if ev.time > self.sc.horizon {
                truncated = true;
                break;
            }
            // Emit any bucket at or before this instant first, so each
            // row sees the state *before* events scheduled exactly on the
            // bucket boundary run.
            if let Some(s) = sampler.as_mut() {
                self.sample_until(s, ev.time.seconds());
            }
            last = ev.time;
            self.handle(ev.event, ev.time);
            if let Some(s) = sampler.as_mut() {
                s.saw(ev.event.kind);
            }
        }
        // Pad the series through the horizon: after the last event the
        // fleet state is frozen, and trailing rows record that plateau.
        if let Some(s) = sampler.as_mut() {
            while s.next_k <= s.kmax {
                self.sample_bucket(s);
            }
        }
        let end_time = if truncated { self.sc.horizon } else { last };
        // Quanta still in flight at the horizon never commit: surface them
        // as lost and close their carrier grants so every grant in the
        // trace has a matching release.
        for p in 0..self.pairs.len() {
            self.abort_pending(p, end_time);
        }
        let churn = self.churn_report(end_time);
        let report = FleetReport {
            horizon: self.sc.horizon,
            end_time,
            events: self.q.delivered(),
            replans: self.replans,
            pair_bits: self.pairs.bits.clone(),
            pair_mode_bits: self
                .pairs
                .mode_bits
                .iter()
                .map(|mb| {
                    [
                        (Mode::Active, mb[Mode::Active as usize]),
                        (Mode::Passive, mb[Mode::Passive as usize]),
                        (Mode::Backscatter, mb[Mode::Backscatter as usize]),
                    ]
                })
                .collect(),
            pair_dead_at: self.pairs.dead_at.clone(),
            device_spent: self.devices.spent.clone(),
            device_dead_at: self.devices.dead_at.clone(),
            device_carrier_time: self.devices.carrier_time.clone(),
            churn,
        };
        (report, sampler.map(Sampler::into_series))
    }

    /// Emit every bucket due at or before simulated time `t`.
    fn sample_until(&self, s: &mut Sampler, t: f64) {
        while s.next_k <= s.kmax && s.next_k as f64 * s.dt <= t {
            self.sample_bucket(s);
        }
    }

    /// Emit the row for bucket `next_k` from the current engine state.
    fn sample_bucket(&self, s: &mut Sampler) {
        let t = s.next_k as f64 * s.dt;
        // Occupancy: open systems report true lifecycle phases; closed
        // scenarios have no lifecycle, so pairs map to Live until they die
        // (their whole life is the steady state the phase models as Live).
        let churn = self.sc.churn.is_some();
        let mut phase_counts = [0u32; PHASE_COUNT];
        let mut live_pairs = 0u32;
        for p in 0..self.pairs.len() {
            if churn {
                let ph = self.pairs.phase[p];
                phase_counts[ph.index()] += 1;
                if ph.on_air() {
                    live_pairs += 1;
                }
            } else if self.pairs.fsm[p].is_dead() {
                phase_counts[LinkPhase::Dead.index()] += 1;
            } else {
                phase_counts[LinkPhase::Live.index()] += 1;
                live_pairs += 1;
            }
        }
        // Battery remaining fractions across devices with real batteries.
        s.scratch.clear();
        for (d, b) in self.devices.battery.iter().enumerate() {
            let cap = self.sc.devices[d].battery.joules();
            if cap > 0.0 {
                s.scratch.push(b.remaining().joules() / cap);
            }
        }
        s.scratch.sort_by(f64::total_cmp);
        // Nearest-rank quantile over the sorted fractions (0 if no device
        // carries a finite battery — degenerate but representable).
        let rank = |q: f64| -> f64 {
            if s.scratch.is_empty() {
                0.0
            } else {
                s.scratch[((q * s.scratch.len() as f64).ceil() as usize).max(1) - 1]
            }
        };
        let (batt_min, batt_p10, batt_p50, batt_p90) = (
            s.scratch.first().copied().unwrap_or(0.0),
            rank(0.10),
            rank(0.50),
            rank(0.90),
        );
        let cum_bits: f64 = self.pairs.bits.iter().sum();
        let goodput_bps = (cum_bits - s.last_cum_bits) / s.dt;
        s.last_cum_bits = cum_bits;
        let events = std::mem::take(&mut s.kind_counts);
        s.samples.push(Sample {
            t,
            phase_counts,
            live_pairs,
            batt_min,
            batt_p10,
            batt_p50,
            batt_p90,
            cum_bits,
            goodput_bps,
            cache_ndirty: self.gains.ndirty() as u32,
            memo_hit_rate: self.options.hit_rate(),
            events,
        });
        s.next_k += 1;
    }

    /// Assemble the steady-state churn metrics, `None` for closed runs.
    /// Phase occupancy is closed out here: every session contributes its
    /// current phase from `phase_since` to the end of the run.
    fn churn_report(&mut self, end_time: Seconds) -> Option<ChurnReport> {
        let cfg = self.sc.churn?;
        let n = self.pairs.len();
        for p in 0..n {
            let tail = end_time.seconds() - self.pairs.phase_since[p].seconds();
            if tail > 0.0 {
                self.phase_time[self.pairs.phase[p].index()] += tail;
            }
        }
        let mut admitted = 0;
        let mut roams = 0;
        let mut admission_latency = Vec::new();
        let mut durations: Vec<f64> = Vec::new();
        for p in 0..n {
            let Some(at) = self.pairs.admitted_at[p] else {
                continue;
            };
            admitted += 1;
            if self.pairs.roam_leg2[p] {
                roams += 1;
            }
            let arrival = self.sc.pairs[p]
                .arrival
                .expect("churn pairs carry arrivals");
            admission_latency.push(Seconds::new(at.seconds() - arrival.seconds()));
            if let Some(dead) = self.pairs.dead_at[p] {
                durations.push(dead.seconds() - at.seconds());
            }
        }
        durations.sort_by(f64::total_cmp);
        let session_half_life = match durations.len() {
            0 => None,
            len if len % 2 == 1 => Some(Seconds::new(durations[len / 2])),
            len => Some(Seconds::new(
                (durations[len / 2 - 1] + durations[len / 2]) / 2.0,
            )),
        };
        Some(ChurnReport {
            window: cfg.window,
            sessions: n,
            admitted,
            departed: self.departed,
            died: self.died,
            roams,
            admission_latency,
            phase_time: self.phase_time,
            session_half_life,
            window_bits: std::mem::take(&mut self.window_bits),
        })
    }

    fn handle(&mut self, ev: Ev, now: Seconds) {
        let (p, kind) = (ev.pair, ev.kind);
        if self.pairs.fsm[p].is_dead() {
            return; // stale event for a torn-down session
        }
        // A shared device may have died serving another pair since this
        // event was scheduled.
        let (tx, rx) = (self.pairs.tx[p], self.pairs.rx[p]);
        if kind != Kind::QuantumDone
            && (self.devices.battery[tx].is_dead() || self.devices.battery[rx].is_dead())
        {
            self.kill(p, now, telemetry::DeathReason::BatteryDead);
            return;
        }
        match kind {
            Kind::Associate => self.on_associate(p, now),
            Kind::StatusExchanged => self.on_status_exchanged(p, now),
            Kind::ProbesDone => self.on_probes_done(p, now),
            Kind::Replan => self.on_replan(p, now),
            Kind::QuantumDone => self.on_quantum_done(p, ev.gen, now),
            Kind::Departure => self.on_departure(p, now),
            Kind::CooldownDone => self.on_cooldown_done(p, now),
        }
    }

    /// Map an engine phase to its telemetry tag (`braidio-telemetry` sits
    /// below this crate, so the mirror enum converts here).
    fn phase_tag(phase: LinkPhase) -> telemetry::PhaseTag {
        match phase {
            LinkPhase::Init => telemetry::PhaseTag::Init,
            LinkPhase::Probe => telemetry::PhaseTag::Probe,
            LinkPhase::Warm => telemetry::PhaseTag::Warm,
            LinkPhase::Live => telemetry::PhaseTag::Live,
            LinkPhase::Degrade => telemetry::PhaseTag::Degrade,
            LinkPhase::Cooldown => telemetry::PhaseTag::Cooldown,
            LinkPhase::Dead => telemetry::PhaseTag::Dead,
        }
    }

    /// Feed one lifecycle event (open systems only). A real transition
    /// closes out the occupancy of the phase being left and emits the
    /// `phase_change` record; self-loops are free. Illegal combinations
    /// are engine bugs, so this unwraps the table.
    fn phase_step(&mut self, p: usize, ev: PhaseEvent, now: Seconds) {
        let from = self.pairs.phase[p];
        let to = lifecycle::step(from, ev).expect("engine feeds only legal lifecycle events");
        if to == from {
            return;
        }
        let held = now.seconds() - self.pairs.phase_since[p].seconds();
        if held > 0.0 {
            self.phase_time[from.index()] += held;
        }
        self.pairs.phase_since[p] = now;
        self.pairs.phase[p] = to;
        telemetry::emit(telemetry::Event::PhaseChange {
            at: now,
            track: telemetry::Track::Pair(p as u32),
            from: Self::phase_tag(from),
            to: Self::phase_tag(to),
        });
    }

    /// The smaller endpoint's remaining battery fraction — the signal the
    /// degrade/critical thresholds watch.
    fn min_battery_frac(&self, p: usize) -> f64 {
        let (tx, rx) = (self.pairs.tx[p], self.pairs.rx[p]);
        let frac = |d: usize| {
            let cap = self.sc.devices[d].battery.joules();
            if cap <= 0.0 {
                return 0.0;
            }
            self.devices.battery[d].remaining().joules() / cap
        };
        frac(tx).min(frac(rx))
    }

    fn on_associate(&mut self, p: usize, now: Seconds) {
        if let Some(cfg) = self.sc.churn {
            // This event *is* the admitting beacon: the tag has idled in
            // Init on detector-only power since its arrival, and the hub
            // pays for the one beacon frame that admitted it.
            let arrival = self.sc.pairs[p]
                .arrival
                .expect("churn pairs carry arrivals");
            let (tag, hub) = (self.pairs.tx[p], self.pairs.rx[p]);
            self.charge(tag, cfg.discovery.idle_energy(arrival, now), now);
            let pp = self
                .sc
                .ch
                .power(Mode::Active, Rate::Mbps1)
                .expect("active 1 Mbps is always characterized");
            let beacon = pp.tx * pp.rate.bps().time_for_bits(cfg.discovery.beacon_bits);
            self.charge(hub, beacon, now);
            if self.devices.battery[tag].is_dead() || self.devices.battery[hub].is_dead() {
                self.kill(p, now, telemetry::DeathReason::BatteryDead);
                return;
            }
            self.pairs.admitted_at[p] = Some(now);
            telemetry::emit(telemetry::Event::Admitted {
                at: now,
                track: telemetry::Track::Pair(p as u32),
                latency: Seconds::new(now.seconds() - arrival.seconds()),
            });
            self.phase_step(p, PhaseEvent::Admitted, now);
            self.gains.set_live(p, true);
        }
        // Association begins when a passive wakeup detector catches a
        // beacon (§4.2 step 0). Closed scenarios: the receiver detects the
        // transmitter. Open systems: the *tag* (transmitter) detects its
        // hub's beacon, per the discovery model.
        let detector = if self.sc.churn.is_some() {
            self.pairs.tx[p]
        } else {
            self.pairs.rx[p]
        };
        telemetry::emit(telemetry::Event::WakeupDetect {
            at: now,
            track: telemetry::Track::Device(detector as u32),
        });
        self.pairs.fsm[p]
            .on(FsmEvent::Associated)
            .expect("Init accepts Associated");
        let mut dt = Seconds::ZERO;
        if self.sc.control_overhead {
            // Status rides the active link at its top rate: each side sends
            // its own 256-bit status and receives the peer's.
            let pp = self
                .sc
                .ch
                .power(Mode::Active, Rate::Mbps1)
                .expect("active 1 Mbps is always characterized");
            let t = pp.rate.bps().time_for_bits(STATUS_BITS);
            let e = pp.tx * t + pp.rx * t;
            let (tx, rx) = (self.pairs.tx[p], self.pairs.rx[p]);
            self.charge(tx, e, now);
            self.charge(rx, e, now);
            dt = pp.rate.bps().time_for_bits(2.0 * STATUS_BITS);
            if self.devices.battery[tx].is_dead() || self.devices.battery[rx].is_dead() {
                self.kill(p, now, telemetry::DeathReason::BatteryDead);
                return;
            }
        }
        self.schedule(now + dt, p, Kind::StatusExchanged);
    }

    fn on_status_exchanged(&mut self, p: usize, now: Seconds) {
        self.pairs.fsm[p]
            .on(FsmEvent::StatusExchanged)
            .expect("ExchangingStatus accepts StatusExchanged");
        // `None` means probing drained a battery; the pair is already killed.
        if let Some(airtime) = self.charge_probe_round(p, now) {
            self.schedule(now + airtime, p, Kind::ProbesDone);
        }
    }

    fn on_probes_done(&mut self, p: usize, now: Seconds) {
        if !self.install_plan(p, now) {
            return;
        }
        self.schedule_quantum(p, now);
        if !self.pairs.fsm[p].is_dead() && !self.pairs.replan_queued[p] {
            self.pairs.replan_queued[p] = true;
            self.schedule(now + self.sc.replan_interval, p, Kind::Replan);
        }
    }

    fn on_replan(&mut self, p: usize, now: Seconds) {
        self.pairs.replan_queued[p] = false;
        // A replan scheduled before a cooldown can fire during the
        // cooldown (the session is quiesced) or during the post-retry
        // bring-up (the probe round under way supersedes it). Both are
        // open-system-only states; closed pairs braid from first plan to
        // death, so this never fires for them.
        if self.sc.churn.is_some()
            && (self.pairs.phase[p] == LinkPhase::Cooldown
                || self.pairs.fsm[p].state() != FsmState::Braiding)
        {
            return;
        }
        let _span = telemetry::span("net.replan");
        self.replans += 1;
        self.pairs.fsm[p]
            .on(FsmEvent::RecomputeDue)
            .expect("Braiding accepts RecomputeDue");
        // Re-plan probes are charged but modelled as instantaneous: the
        // braid's quantum in flight keeps the link busy while the control
        // exchange piggybacks (the bring-up probe round does take airtime).
        if self.charge_probe_round(p, now).is_none() {
            return;
        }
        if !self.install_plan(p, now) {
            // No viable mode any more: the in-flight quantum dies with the
            // session (its completion event will find a dead FSM — or, in
            // an open system, a bumped quantum generation).
            self.abort_pending(p, now);
            return;
        }
        self.pairs.replan_queued[p] = true;
        self.schedule(now + self.sc.replan_interval, p, Kind::Replan);
    }

    fn on_quantum_done(&mut self, p: usize, gen: u32, now: Seconds) {
        if gen != self.pairs.quantum_gen[p] {
            return; // completion of a quantum a cooldown aborted
        }
        let Some(pending) = self.pairs.pending[p].take() else {
            debug_assert!(
                self.sc.churn.is_some(),
                "a closed-scenario quantum was in flight"
            );
            return;
        };
        self.pairs.fsm[p]
            .on(FsmEvent::PacketDelivered)
            .expect("Braiding accepts PacketDelivered");
        let (tx, rx) = (self.pairs.tx[p], self.pairs.rx[p]);
        self.charge(tx, pending.e_tx, now);
        self.charge(rx, pending.e_rx, now);
        self.pairs.bits[p] += pending.bits;
        // Warm-up quanta below the policy quota move bits and energy like
        // any other (the ledger stays exact) but suppress their delivery
        // telemetry; the quantum that *reaches* the quota promotes the
        // session first, so its record — and every later one — lands in
        // Live, which is what the validator's phase gate demands.
        let mut announce = true;
        if let Some(cfg) = self.sc.churn {
            if now.seconds() >= self.sc.horizon.seconds() - cfg.window.seconds() {
                self.window_bits[p] += pending.bits;
            }
            if self.pairs.phase[p] == LinkPhase::Warm {
                self.pairs.warm_got[p] += 1;
                if self.pairs.warm_got[p] >= cfg.lifecycle.warmup_quanta {
                    self.phase_step(p, PhaseEvent::WarmedUp, now);
                } else {
                    announce = false;
                }
            }
        }
        for (mode, rate, bits, on_tx, on_rx, airtime) in pending.slices() {
            // Exactly the one matching mode column accumulates, so this is
            // the same arithmetic as the per-pair `[(Mode, f64); 3]` scan.
            self.pairs.mode_bits[p][*mode as usize] += bits;
            if *on_tx {
                self.devices.carrier_time[tx] += *airtime;
            }
            if *on_rx {
                self.devices.carrier_time[rx] += *airtime;
            }
            if announce {
                telemetry::emit(telemetry::Event::QuantumDelivered {
                    at: now,
                    track: telemetry::Track::Pair(p as u32),
                    mode: (*mode).into(),
                    rate: (*rate).into(),
                    bits: *bits,
                });
            }
        }
        telemetry::emit(telemetry::Event::CarrierRelease {
            at: now,
            track: telemetry::Track::Pair(p as u32),
        });
        if pending.last || self.devices.battery[tx].is_dead() || self.devices.battery[rx].is_dead()
        {
            self.kill(p, now, telemetry::DeathReason::BatteryDead);
            return;
        }
        if let Some(cfg) = self.sc.churn {
            let frac = self.min_battery_frac(p);
            if frac < cfg.lifecycle.critical_frac {
                // Too weak to keep a link up at all: quiesce and retry (or
                // give up) after the cooldown.
                self.enter_cooldown(p, PhaseEvent::EnergyCritical, now);
                return;
            }
            match self.pairs.phase[p] {
                LinkPhase::Warm | LinkPhase::Live if frac < cfg.lifecycle.degrade_frac => {
                    // BLISP's fall-back-toward-passive rule: a weakening
                    // endpoint pins the braid to the cheapest tag-side
                    // mode at the next replan.
                    self.phase_step(p, PhaseEvent::EnergyLow, now);
                    self.pairs.pin[p] = Some(Mode::Backscatter);
                }
                LinkPhase::Degrade if frac >= cfg.lifecycle.degrade_frac => {
                    self.phase_step(p, PhaseEvent::Recovered, now);
                    self.pairs.pin[p] = self.sc.pairs[p].pinned_mode;
                }
                _ => {}
            }
        }
        self.schedule_quantum(p, now);
    }

    /// Open systems: the session's dwell ended while it was still alive —
    /// graceful teardown from whatever phase it reached (possibly still
    /// Init, if the dwell was shorter than the beacon wait).
    fn on_departure(&mut self, p: usize, now: Seconds) {
        debug_assert!(
            self.sc.churn.is_some(),
            "departures only exist in churn mode"
        );
        self.kill(p, now, telemetry::DeathReason::Departed);
    }

    /// Open systems: quiesce a link that lost viability. Enters Cooldown,
    /// drops the pair out of the interference live set, aborts the quantum
    /// in flight (bumping the generation so its completion event is
    /// recognizably stale), and starts the retry timer.
    fn enter_cooldown(&mut self, p: usize, ev: PhaseEvent, now: Seconds) {
        let cfg = self.sc.churn.expect("cooldowns only exist in churn mode");
        self.phase_step(p, ev, now);
        debug_assert_eq!(self.pairs.phase[p], LinkPhase::Cooldown);
        self.pairs.cooldowns[p] += 1;
        self.gains.set_live(p, false);
        self.abort_pending(p, now);
        self.schedule(now + cfg.lifecycle.cooldown, p, Kind::CooldownDone);
    }

    /// Open systems: the cooldown timer fired. The tag has idled on
    /// detector-only power for the whole window; it now either re-probes
    /// (fresh warm-up, fresh plan) or — past the policy's retry budget —
    /// gives up for good.
    fn on_cooldown_done(&mut self, p: usize, now: Seconds) {
        let cfg = self.sc.churn.expect("cooldowns only exist in churn mode");
        debug_assert_eq!(self.pairs.phase[p], LinkPhase::Cooldown);
        let tag = self.pairs.tx[p];
        self.charge(
            tag,
            cfg.discovery.quiesced_energy(cfg.lifecycle.cooldown),
            now,
        );
        if self.devices.battery[tag].is_dead() {
            self.kill(p, now, telemetry::DeathReason::BatteryDead);
            return;
        }
        if self.pairs.cooldowns[p] > cfg.lifecycle.max_cooldowns {
            self.kill(p, now, telemetry::DeathReason::GaveUp);
            return;
        }
        self.phase_step(p, PhaseEvent::CooldownRetry, now);
        self.gains.set_live(p, true);
        // A Degrade-era backscatter pin does not survive the quiesce: the
        // retry re-plans from the scenario's own pin.
        self.pairs.pin[p] = self.sc.pairs[p].pinned_mode;
        // The offload FSM needs to be back in Probing: it still sits there
        // if the cooldown came from an empty probe round, but a cooldown
        // entered on critical energy left it Braiding.
        if self.pairs.fsm[p].state() == FsmState::Braiding {
            self.pairs.fsm[p]
                .on(FsmEvent::RecomputeDue)
                .expect("Braiding accepts RecomputeDue");
        }
        debug_assert_eq!(self.pairs.fsm[p].state(), FsmState::Probing);
        if let Some(airtime) = self.charge_probe_round(p, now) {
            self.schedule(now + airtime, p, Kind::ProbesDone);
        }
    }

    /// Charge one probe round (all modes, both sides) if control overhead
    /// is on. Returns the probe airtime, or `None` when it killed the pair.
    fn charge_probe_round(&mut self, p: usize, now: Seconds) -> Option<Seconds> {
        if !self.sc.control_overhead {
            return Some(Seconds::ZERO);
        }
        let d = self.pair_distance(p, now);
        let report = LinkProber::ideal().probe(&self.sc.ch, d);
        let (tx, rx) = (self.pairs.tx[p], self.pairs.rx[p]);
        self.charge(tx, report.energy_initiator, now);
        self.charge(rx, report.energy_responder, now);
        if self.devices.battery[tx].is_dead() || self.devices.battery[rx].is_dead() {
            self.kill(p, now, telemetry::DeathReason::BatteryDead);
            return None;
        }
        Some(report.airtime)
    }

    /// The batched planning-wave sweep. Runs (cheaply) at the head of every
    /// `install_plan`; does real work only when interference sums are stale
    /// or the options memo has never been prefetched.
    ///
    /// Three stages, all over the flat arrays in pair-index order:
    /// 1. bulk-rebuild every stale interference sum for static live
    ///    victims ([`PairGainCache::rebuild_all`] — the identical
    ///    per-victim loop the lazy path runs, so not a bit moves);
    /// 2. collect the wave's quantized `OptionsMemo` keys (static live
    ///    pairs only — mobile pairs refresh their geometry at event time
    ///    and take the per-pair path), then sort + dedup;
    /// 3. resolve the missing keys in key order through the batched BER
    ///    surface ([`OptionsMemo::prefetch`]).
    ///
    /// Output-neutrality: memo values are canonical functions of their
    /// quantized keys, so prefilling the memo cannot change what `get`
    /// returns; and any death or move after the sweep re-dirties the gain
    /// cache, forcing the per-pair path to recompute exactly what the
    /// pre-refactor engine would have. The `soa-vs-baseline` gate holds
    /// the engine to that byte-for-byte.
    fn wave_sweep(&mut self) {
        let overlap = self.sc.arbitration.carriers_overlap();
        let needs_gains = overlap && self.gains.any_dirty();
        if !needs_gains && !self.wave_cold {
            return;
        }
        let _span = telemetry::span("net.wave");
        let sc = self.sc;
        let pos = &self.devices.pos;
        let Pairs {
            tx,
            rx,
            pin,
            fsm,
            mobile,
            phase,
            ..
        } = &self.pairs;
        // Which pairs are on the air: open systems follow the lifecycle
        // phase (Init/Cooldown rows are radio-silent), closed scenarios the
        // binary FSM liveness — the exact predicate the gain cache's live
        // set mirrors.
        let churn = sc.churn.is_some();
        let on_air = |q: usize| {
            if churn {
                phase[q].on_air()
            } else {
                !fsm[q].is_dead()
            }
        };
        if needs_gains {
            // Gather the wave's frozen endpoint geometry into flat arrays
            // once (pos[tx[q]] / pos[rx[q]] indexed by pair id), so the
            // per-tile hot loop is a contiguous gather instead of a
            // double-indirection per edge.
            self.wave_a.clear();
            self.wave_b.clear();
            self.wave_a.extend(tx.iter().map(|&d| pos[d]));
            self.wave_b.extend(rx.iter().map(|&d| pos[d]));
            let (pa, pb) = (&self.wave_a, &self.wave_b);
            let edges = &self.edges;
            self.gains.rebuild_all_tiled(
                |v| !mobile[v] && on_air(v),
                |q| (pa[q], pb[q]),
                |v, qs: &[u32], out: &mut [Watts]| {
                    let vp = pb[v];
                    let mut a = [Point::new(0.0, 0.0); EDGE_TILE];
                    let mut b = [Point::new(0.0, 0.0); EDGE_TILE];
                    let mut rel = [ChannelRelation::CoChannel; EDGE_TILE];
                    let k = qs.len();
                    for (i, &q) in qs.iter().enumerate() {
                        a[i] = pa[q as usize];
                        b[i] = pb[q as usize];
                        rel[i] = sc.arbitration.relation(v, q as usize);
                    }
                    edges.carrier_tile(vp, &a[..k], &b[..k], &rel[..k], out);
                },
            );
        }
        self.wave_keys.clear();
        // Per-pair key collection fans out over the pool: each pair's key is
        // a pure function of the frozen wave state (positions, clean sums,
        // pins), and the chunks reassemble in pair index order — the exact
        // key sequence the serial loop pushed.
        let gains = &self.gains;
        let n = tx.len();
        let keys = pool::par_map_indexed_with_chunk(
            n,
            pool::default_chunk(n),
            |p| -> Option<OptionsKey> {
                if !on_air(p) || mobile[p] {
                    return None;
                }
                let interference = if overlap {
                    // Re-dirtied mid-sweep: the per-pair path covers it.
                    gains.cached_sum(p)?
                } else {
                    Watts::ZERO
                };
                let d = pos[tx[p]].distance(pos[rx[p]]);
                OptionsMemo::key_for(d, interference, pin[p])
            },
        );
        self.wave_keys.extend(keys.into_iter().flatten());
        self.wave_keys.sort_unstable();
        self.wave_keys.dedup();
        self.options.prefetch(&self.sc.ch, &self.wave_keys);
        self.wave_cold = false;
    }

    /// Probe outcome → plan installation. Returns `false` when the pair
    /// died (no viable mode).
    fn install_plan(&mut self, p: usize, now: Seconds) -> bool {
        self.wave_sweep();
        let d = self.pair_distance(p, now);
        let interference = self.interference_for(p);
        // The pin goes *into* the option search (non-pinned modes are never
        // evaluated), and the result is memoized on the quantized
        // (distance, interference, pin) key.
        let pin = self.pairs.pin[p];
        let opts = self.options.get(&self.sc.ch, d, interference, pin);
        if opts.is_empty() {
            if telemetry::enabled() {
                telemetry::emit(telemetry::Event::Replan {
                    at: now,
                    track: telemetry::Track::Pair(p as u32),
                    planned: false,
                    exact: false,
                    primary: None,
                });
            }
            if self.sc.churn.is_some() {
                // An open-system link that lost viability quiesces instead
                // of dying: the offload FSM stays in Probing and the
                // lifecycle machine decides later whether to retry.
                self.enter_cooldown(p, PhaseEvent::ProbesEmpty, now);
                return false;
            }
            self.pairs.fsm[p]
                .on(FsmEvent::ProbesEmpty)
                .expect("Probing accepts ProbesEmpty");
            self.pairs.dead_at[p] = Some(now);
            self.gains.mark_dead(p);
            telemetry::emit(telemetry::Event::SessionDead {
                at: now,
                track: telemetry::Track::Pair(p as u32),
                reason: telemetry::DeathReason::NoViableMode,
            });
            return false;
        }
        let (tx, rx) = (self.pairs.tx[p], self.pairs.rx[p]);
        let plan = solve_memo(
            &opts,
            self.devices.battery[tx].remaining(),
            self.devices.battery[rx].remaining(),
        )
        .expect("non-empty options always yield a plan");
        self.pairs.fsm[p]
            .on(FsmEvent::ProbesOk)
            .expect("Probing accepts ProbesOk");
        if self.sc.churn.is_some() {
            // Probe → Warm starts a fresh warm-up; in Warm/Live/Degrade a
            // successful replan is a self-loop.
            let fresh = self.pairs.phase[p] == LinkPhase::Probe;
            self.phase_step(p, PhaseEvent::ProbesOk, now);
            if fresh {
                self.pairs.warm_got[p] = 0;
            }
        }
        if telemetry::enabled() {
            // Primary = the allocation carrying the largest bit fraction
            // (an exact 50/50 tie resolves to the later allocation — any
            // fixed rule works, it just has to be deterministic).
            let primary = plan
                .allocations
                .iter()
                .max_by(|a, b| a.fraction.partial_cmp(&b.fraction).expect("finite"))
                .map(|a| a.option.mode);
            let track = telemetry::Track::Pair(p as u32);
            telemetry::emit(telemetry::Event::Replan {
                at: now,
                track,
                planned: true,
                exact: plan.exact,
                primary: primary.map(Into::into),
            });
            if let Some(primary) = primary {
                if self.pairs.last_mode[p] != Some(primary) {
                    telemetry::emit(telemetry::Event::ModeSwitch {
                        at: now,
                        track,
                        from: self.pairs.last_mode[p].map(Into::into),
                        to: primary.into(),
                    });
                    self.pairs.last_mode[p] = Some(primary);
                }
            }
        }
        self.pairs.plan[p] = Some(plan);
        true
    }

    /// Schedule the next braid quantum under the installed plan. Kills the
    /// pair instead when not even one bit is affordable.
    fn schedule_quantum(&mut self, p: usize, now: Seconds) {
        let plan = self.pairs.plan[p].expect("braiding under a plan");
        let (tx, rx) = (self.pairs.tx[p], self.pairs.rx[p]);

        // Per-bit costs with the same amortized Table 5 switching charge as
        // `mac::sim::simulate_braidio`.
        let spp = switches_per_packet(&plan);
        let switch_bits = self.sc.packet_bits * self.sc.quantum_packets;
        let (mut sw_tx, mut sw_rx) = (0.0, 0.0);
        if plan.allocations.len() == 2 {
            for a in &plan.allocations {
                sw_tx += self
                    .sc
                    .switching
                    .cost(a.option.mode, Role::Transmitter)
                    .joules()
                    / 2.0;
                sw_rx += self
                    .sc
                    .switching
                    .cost(a.option.mode, Role::Receiver)
                    .joules()
                    / 2.0;
            }
        }
        let c_tx = plan.tx_cost.joules_per_bit() + spp * sw_tx / switch_bits;
        let c_rx = plan.rx_cost.joules_per_bit() + spp * sw_rx / switch_bits;

        let affordable = (self.devices.battery[tx].remaining().joules() / c_tx)
            .min(self.devices.battery[rx].remaining().joules() / c_rx);
        let quantum_bits = switch_bits;
        let bits = quantum_bits.min(affordable);
        if !bits.is_finite() || bits < 1.0 {
            self.kill(p, now, telemetry::DeathReason::BatteryDead);
            return;
        }
        let last = affordable <= quantum_bits;

        let mut airtime = Seconds::ZERO;
        let mut slices = [FILL_SLICE; 2];
        let mut nslices = 0u8;
        for a in &plan.allocations {
            let slice_bits = bits * a.fraction;
            let dt = a.option.rate.bps().time_for_bits(slice_bits);
            let (on_tx, on_rx) = a.option.mode.carrier_at();
            slices[nslices as usize] = (a.option.mode, a.option.rate, slice_bits, on_tx, on_rx, dt);
            nslices += 1;
            airtime += dt;
        }
        let finish = self.finish_time(p, now, airtime);
        self.pairs.pending[p] = Some(PendingQuantum {
            bits,
            e_tx: Joules::new(bits * c_tx),
            e_rx: Joules::new(bits * c_rx),
            slices,
            nslices,
            last,
        });
        self.q.schedule(
            finish,
            Kind::QuantumDone.rank(),
            p as u32,
            Ev {
                pair: p,
                kind: Kind::QuantumDone,
                gen: self.pairs.quantum_gen[p],
            },
        );
        telemetry::emit(telemetry::Event::CarrierGrant {
            at: now,
            track: telemetry::Track::Pair(p as u32),
        });
    }

    /// When a quantum started at `start` with `airtime` on-air seconds
    /// finishes, given the pair's transmit windows. O(1): whole TDMA cycles
    /// are skipped arithmetically.
    fn finish_time(&self, p: usize, start: Seconds, airtime: Seconds) -> Seconds {
        let arb = self.sc.arbitration;
        let n = self.pairs.len();
        let mut t = arb.next_transmit_at(p, n, start);
        let mut left = airtime.seconds();
        let Some(we) = arb.window_end(p, n, t) else {
            return Seconds::new(t.seconds() + left);
        };
        // Finish inside the current (possibly partial) window?
        let usable = we.seconds() - t.seconds();
        if left <= usable {
            return Seconds::new(t.seconds() + left);
        }
        left -= usable;
        t = arb.next_transmit_at(p, n, we);
        // From here every window is a full slot; skip whole ones at once.
        let Arbitration::TdmaRoundRobin { slot } = arb else {
            unreachable!("only TDMA has bounded windows");
        };
        let s = slot.seconds();
        let period = s * n as f64;
        let full = (left / s).floor();
        if full >= 1.0 {
            t = Seconds::new(t.seconds() + full * period);
            left -= full * s;
        }
        if left >= s {
            // Floating-point edge: `left` landed exactly on a slot boundary.
            t = Seconds::new(t.seconds() + period);
            left -= s;
        }
        Seconds::new(t.seconds() + left)
    }

    /// Worst-case foreign-carrier power at pair `p`'s receiver, served from
    /// the incremental cache: after the wave sweep this is a clean O(1)
    /// lookup; a still-dirty sum (mobile pair, mid-wave invalidation)
    /// recomputes the live edges in pair-index order, bit-identical to the
    /// brute-force rescan (the debug-build shadow check below enforces
    /// exactly that).
    fn interference_for(&mut self, p: usize) -> Watts {
        if !self.sc.arbitration.carriers_overlap() {
            return Watts::ZERO;
        }
        let sc = self.sc;
        let pos = &self.devices.pos;
        let (ptx, prx) = (&self.pairs.tx, &self.pairs.rx);
        let victim = pos[prx[p]];
        let edges = &self.edges;
        let w = self.gains.interference(
            p,
            |q| (pos[ptx[q]], pos[prx[q]]),
            |q| {
                edges.carrier_from_pair(
                    victim,
                    pos[ptx[q]],
                    pos[prx[q]],
                    sc.arbitration.relation(p, q),
                )
            },
        );
        #[cfg(debug_assertions)]
        self.shadow_check(p, w);
        w
    }

    /// Debug-build oracle: recompute pair `p`'s interference the original
    /// brute-force way (full rescan, no cull, pair-index order) and check
    /// the cached answer against it — bit-equal without the cull, within
    /// `pairs × cull_epsilon` with it. Also asserts the cache's liveness
    /// view matches the FSMs. The rescan runs through the same
    /// [`EdgeKernel::carrier_from_pair`] the cache paths use — one
    /// arithmetic definition of an edge — so what this checks is liveness,
    /// ordering and cache bookkeeping; the kernel's own equality to the
    /// direct `carrier_contribution` path is pinned by the `net::baseline`
    /// oracle and the interference proptests.
    #[cfg(debug_assertions)]
    fn shadow_check(&self, p: usize, got: Watts) {
        let churn = self.sc.churn.is_some();
        let on_air = |q: usize| {
            if churn {
                self.pairs.phase[q].on_air()
            } else {
                !self.pairs.fsm[q].is_dead()
            }
        };
        let victim = self.devices.pos[self.pairs.rx[p]];
        let mut brute = Watts::new(0.0);
        for qi in 0..self.pairs.len() {
            debug_assert_eq!(
                self.gains.is_live(qi),
                on_air(qi),
                "cache liveness diverged for pair {qi}"
            );
            if qi == p || !on_air(qi) {
                continue;
            }
            brute += self.edges.carrier_from_pair(
                victim,
                self.devices.pos[self.pairs.tx[qi]],
                self.devices.pos[self.pairs.rx[qi]],
                self.sc.arbitration.relation(p, qi),
            );
        }
        if self.sc.far_field_cull {
            let slack = self.pairs.len() as f64 * crate::cache::cull_epsilon(&self.sc.ch).watts();
            debug_assert!(
                got.watts() <= brute.watts() * (1.0 + 1e-12) + 1e-300
                    && brute.watts() <= got.watts() * (1.0 + 1e-12) + slack,
                "culled sum {got} strayed from brute force {brute} (pair {p})"
            );
        } else {
            debug_assert_eq!(
                got.watts().to_bits(),
                brute.watts().to_bits(),
                "cached sum {got} != brute force {brute} (pair {p})"
            );
        }
    }

    /// The pair's current separation; a mobile receiver is displaced along
    /// the pair's axis (positions refresh lazily, at probe/re-plan times).
    fn pair_distance(&mut self, p: usize, now: Seconds) -> Meters {
        let (tx, rx) = (self.pairs.tx[p], self.pairs.rx[p]);
        match self.sc.pairs[p].walk {
            None => self.devices.pos[tx].distance(self.devices.pos[rx]),
            Some(walk) => {
                let mut w = walk;
                let d = w.distance_at(now);
                let dir = self.pairs.dir[p];
                self.devices.pos[rx] = self.devices.pos[tx].offset_along(dir, d);
                // The pair moved: its cached interference edges (as victim
                // and as source) are stale for everyone.
                self.gains.invalidate_pair(p);
                d
            }
        }
    }

    fn charge(&mut self, dev: usize, e: Joules, now: Seconds) {
        telemetry::emit(telemetry::Event::EnergyDebit {
            at: now,
            track: telemetry::Track::Device(dev as u32),
            joules: e,
        });
        self.devices.spent[dev] += e;
        self.devices.battery[dev].draw(e);
        if self.devices.battery[dev].is_dead() && self.devices.dead_at[dev].is_none() {
            self.devices.dead_at[dev] = Some(now);
        }
    }

    /// Terminal teardown. `reason` distinguishes a battery death from an
    /// open system's graceful departure or a cooldown give-up; closed
    /// callers always pass `BatteryDead` (bit-identical to the
    /// pre-lifecycle engine, whose only kill reason that was).
    fn kill(&mut self, p: usize, now: Seconds, reason: telemetry::DeathReason) {
        if self.sc.churn.is_some() {
            self.gains.set_live(p, false);
        } else {
            self.gains.mark_dead(p);
        }
        if !self.pairs.fsm[p].is_dead() {
            self.pairs.fsm[p]
                .on(FsmEvent::BatteryDead)
                .expect("live states accept BatteryDead");
            if self.sc.churn.is_some() {
                let ev = match reason {
                    telemetry::DeathReason::Departed => PhaseEvent::Departed,
                    telemetry::DeathReason::GaveUp => PhaseEvent::CooldownDrop,
                    _ => PhaseEvent::BatteryDead,
                };
                self.phase_step(p, ev, now);
                if matches!(reason, telemetry::DeathReason::Departed) {
                    self.departed += 1;
                } else {
                    self.died += 1;
                }
            }
            telemetry::emit(telemetry::Event::SessionDead {
                at: now,
                track: telemetry::Track::Pair(p as u32),
                reason,
            });
        }
        if self.pairs.dead_at[p].is_none() {
            self.pairs.dead_at[p] = Some(now);
        }
        self.abort_pending(p, now);
    }

    /// Drop the pair's quantum in flight, if any, surfacing it as lost
    /// telemetry and closing the matching carrier grant.
    fn abort_pending(&mut self, p: usize, at: Seconds) {
        let Some(pending) = self.pairs.pending[p].take() else {
            return;
        };
        // The aborted quantum's completion event stays in the queue; the
        // generation bump makes a revived session ignore it.
        self.pairs.quantum_gen[p] = self.pairs.quantum_gen[p].wrapping_add(1);
        if telemetry::enabled() {
            let track = telemetry::Track::Pair(p as u32);
            for (mode, rate, bits, ..) in pending.slices() {
                telemetry::emit(telemetry::Event::QuantumLost {
                    at,
                    track,
                    mode: (*mode).into(),
                    rate: (*rate).into(),
                    bits: *bits,
                });
            }
            telemetry::emit(telemetry::Event::CarrierRelease { at, track });
        }
    }

    fn schedule(&mut self, t: Seconds, p: usize, kind: Kind) {
        debug_assert!(
            kind != Kind::QuantumDone,
            "quantum completions carry a generation"
        );
        self.q.schedule(
            t,
            kind.rank(),
            p as u32,
            Ev {
                pair: p,
                kind,
                gen: 0,
            },
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario::{DeviceSpec, FleetScenario, PairSpec};

    fn small_pair(arb: Arbitration) -> FleetScenario {
        FleetScenario::independent_pairs(1, Meters::new(0.5), Meters::new(5.0), 0.003, 0.03, arb)
    }

    #[test]
    fn single_pair_moves_bits_and_dies_proportionally() {
        let sc = small_pair(Arbitration::Uncoordinated).with_horizon(Seconds::new(1e9));
        let r = run_fleet(&sc);
        assert!(r.pair_bits[0] > 0.0);
        // Both batteries end near empty: power-proportional braiding.
        assert!(r.pair_dead_at[0].is_some());
        let spent0 = r.device_spent[0].joules();
        let cap0 = sc.devices[0].battery.joules();
        assert!(spent0 / cap0 > 0.99, "tx drained {}", spent0 / cap0);
    }

    #[test]
    fn run_is_bit_deterministic() {
        let sc = FleetScenario::independent_pairs(
            4,
            Meters::new(0.5),
            Meters::new(4.0),
            0.003,
            0.03,
            Arbitration::TdmaRoundRobin {
                slot: Seconds::new(0.25),
            },
        )
        .with_horizon(Seconds::new(120.0));
        let a = run_fleet(&sc);
        let b = run_fleet(&sc);
        assert_eq!(a.events, b.events);
        for (x, y) in a.pair_bits.iter().zip(&b.pair_bits) {
            assert_eq!(x.to_bits(), y.to_bits());
        }
        for (x, y) in a.device_spent.iter().zip(&b.device_spent) {
            assert_eq!(x.joules().to_bits(), y.joules().to_bits());
        }
    }

    #[test]
    fn uncoordinated_neighbours_lose_backscatter_at_any_separation() {
        // Two pairs, carriers always up: the foreign carrier strips
        // backscatter at *every* spacing (the two-way d⁴ link has no
        // protection distance, §7 / Table 3), while passive — one-way —
        // only dies inside its finite protection distance.
        for spacing in [2.0, 10.0, 50.0] {
            let sc = FleetScenario::independent_pairs(
                2,
                Meters::new(0.5),
                Meters::new(spacing),
                1.0,
                1.0,
                Arbitration::Uncoordinated,
            )
            .with_horizon(Seconds::new(30.0));
            let r = run_fleet(&sc);
            assert!(r.total_bits() > 0.0, "active mode still works");
            assert_eq!(r.mode_share(Mode::Backscatter), 0.0, "spacing {spacing}");
            if spacing <= 2.0 {
                assert_eq!(r.mode_share(Mode::Passive), 0.0, "spacing {spacing}");
            }
        }
    }

    #[test]
    fn tdma_restores_the_braid_and_shares_airtime_fairly() {
        let sc = FleetScenario::independent_pairs(
            2,
            Meters::new(0.5),
            Meters::new(2.0),
            1.0,
            1.0,
            Arbitration::TdmaRoundRobin {
                slot: Seconds::new(0.25),
            },
        )
        .with_horizon(Seconds::new(60.0));
        let r = run_fleet(&sc);
        // Interference-free slots bring the cheap modes back.
        assert!(r.mode_share(Mode::Backscatter) + r.mode_share(Mode::Passive) > 0.5);
        assert!(r.fairness() > 0.99, "fairness {}", r.fairness());
        // Each pair gets about half the airtime's worth of goodput.
        let per_pair = r.pair_goodput(0);
        assert!(
            per_pair > 0.4 * 1e6 && per_pair < 0.55 * 1e6,
            "goodput {per_pair}"
        );
    }

    #[test]
    fn star_hub_carries_the_carrier_burden() {
        let sc = FleetScenario::star(
            4,
            Meters::new(0.5),
            99.5,
            0.003,
            Arbitration::TdmaRoundRobin {
                slot: Seconds::new(0.25),
            },
        )
        .with_horizon(Seconds::new(120.0));
        let r = run_fleet(&sc);
        assert!(r.total_bits() > 0.0);
        // Tags stream to the hub; with a huge hub battery the braid leans
        // on backscatter, so the hub's carrier runs while tags stay quiet.
        assert!(r.carrier_duty(0) > 0.0);
        for tag in 1..=4 {
            assert!(
                r.carrier_duty(tag) <= r.carrier_duty(0) + 1e-12,
                "tag {tag} duty {} vs hub {}",
                r.carrier_duty(tag),
                r.carrier_duty(0)
            );
        }
    }

    #[test]
    fn shared_device_pairs_cannot_run_uncoordinated() {
        // An uncoordinated star: every tag sees the hub's other sessions at
        // the near-field floor, so the detector modes vanish entirely.
        let sc = FleetScenario::star(3, Meters::new(0.5), 99.5, 0.003, Arbitration::Uncoordinated)
            .with_horizon(Seconds::new(30.0));
        let r = run_fleet(&sc);
        assert_eq!(r.mode_share(Mode::Backscatter), 0.0);
        assert_eq!(r.mode_share(Mode::Passive), 0.0);
    }

    #[test]
    fn horizon_truncates_cleanly() {
        let sc = small_pair(Arbitration::Uncoordinated).with_horizon(Seconds::new(1.0));
        let r = run_fleet(&sc);
        assert_eq!(r.end_time, Seconds::new(1.0));
        let long =
            run_fleet(&small_pair(Arbitration::Uncoordinated).with_horizon(Seconds::new(2.0)));
        // The 1 s run is a prefix of the 2 s run.
        assert!(r.pair_bits[0] <= long.pair_bits[0]);
        assert!(r.events <= long.events);
    }

    #[test]
    fn mobile_pair_loses_backscatter_as_it_walks_out() {
        use braidio_mac::mobility::LinearWalk;
        let mut sc = small_pair(Arbitration::Uncoordinated).with_horizon(Seconds::new(1e9));
        sc.pairs[0].walk = Some(LinearWalk {
            start: Meters::new(0.5),
            end: Meters::new(3.0),
            duration: Seconds::new(60.0),
        });
        sc.replan_interval = Seconds::new(1.0);
        let r = run_fleet(&sc);
        let st = run_fleet(&small_pair(Arbitration::Uncoordinated).with_horizon(Seconds::new(1e9)));
        assert!(r.total_bits() > 0.0);
        assert!(
            r.total_bits() < st.total_bits(),
            "walking out must cost bits: {} vs {}",
            r.total_bits(),
            st.total_bits()
        );
    }

    /// One hub, one tag session with the given battery and dwell — the
    /// smallest open system, built by hand so each lifecycle path is
    /// reachable deterministically.
    fn tiny_open(tag_wh: f64, arrival: f64, departure: f64, horizon: f64) -> FleetScenario {
        use crate::scenario::ChurnConfig;
        let hub = DeviceSpec {
            pos: Point::ORIGIN,
            battery: Joules::from_watt_hours(99.5),
        };
        let tag = DeviceSpec {
            pos: Point::new(0.5, 0.0),
            battery: Joules::from_watt_hours(tag_wh),
        };
        let mut sc = FleetScenario::new(
            vec![hub, tag],
            vec![PairSpec::braided(1, 0)],
            Arbitration::TdmaRoundRobin {
                slot: Seconds::new(0.25),
            },
        )
        .with_horizon(Seconds::new(horizon));
        sc.pairs[0].arrival = Some(Seconds::new(arrival));
        sc.pairs[0].departure = Some(Seconds::new(departure));
        sc.replan_interval = Seconds::new(1.0);
        sc.churn = Some(ChurnConfig {
            seed: 0,
            lifecycle: crate::lifecycle::LifecyclePolicy::default(),
            discovery: crate::discovery::DiscoveryConfig::default(),
            window: Seconds::new(horizon / 3.0),
            arrival_rate: 1.0 / horizon,
            mean_dwell: Seconds::new(departure - arrival),
        });
        sc.validate();
        sc
    }

    #[test]
    fn closed_runs_carry_no_churn_report() {
        let r = run_fleet(&small_pair(Arbitration::Uncoordinated).with_horizon(Seconds::new(5.0)));
        assert!(r.churn.is_none());
    }

    #[test]
    fn open_session_is_admitted_lives_and_departs() {
        let sc = tiny_open(1.0, 1.0, 25.0, 30.0);
        let r = run_fleet(&sc);
        let c = r.churn.expect("open runs carry churn metrics");
        assert_eq!((c.sessions, c.admitted, c.departed, c.died), (1, 1, 1, 0));
        assert_eq!(c.roams, 0);
        // Admission waits for the next beacon: latency in (0, interval] +
        // the detector chain's latency.
        let lat = c.admission_latency[0].seconds();
        let d = sc.churn.unwrap().discovery;
        assert!(
            lat > 0.0 && lat <= d.beacon_interval.seconds() + d.detector.detect_latency.seconds()
        );
        // The session spent most of its dwell Live, never cooled down, and
        // its half-life is the admission→departure span.
        assert!(
            c.phase_share(crate::lifecycle::LinkPhase::Live) > 0.5,
            "live share {}",
            c.phase_share(crate::lifecycle::LinkPhase::Live)
        );
        assert_eq!(
            c.phase_time[crate::lifecycle::LinkPhase::Cooldown.index()],
            0.0
        );
        let hl = c.session_half_life.expect("the session ended").seconds();
        assert!((hl - (25.0 - 1.0 - lat)).abs() < 1e-9, "half-life {hl}");
        // Bits moved, and the trailing window saw some of them.
        assert!(r.pair_bits[0] > 0.0);
        assert!(c.window_bits[0] > 0.0 && c.window_bits[0] <= r.pair_bits[0]);
        assert!(c.window_goodput() > 0.0);
    }

    #[test]
    fn frail_tag_degrades_cools_down_and_dies() {
        // A coin-cell tag: braiding drains it through the degrade and
        // critical thresholds long before its (generous) dwell ends.
        let sc = tiny_open(3e-6, 0.5, 500.0, 600.0);
        let r = run_fleet(&sc);
        let c = r.churn.as_ref().expect("open runs carry churn metrics");
        assert_eq!(
            (c.admitted, c.departed, c.died),
            (1, 0, 1),
            "tag spent {} J of {} J",
            r.device_spent[1].joules(),
            sc.devices[1].battery.joules()
        );
        assert!(r.pair_dead_at[0].is_some());
        // The energy ladder was walked: some time Degraded, some quiesced.
        assert!(c.phase_time[crate::lifecycle::LinkPhase::Degrade.index()] > 0.0);
        assert!(c.phase_time[crate::lifecycle::LinkPhase::Cooldown.index()] > 0.0);
        assert!(r.pair_bits[0] > 0.0);
    }

    #[test]
    fn open_system_run_is_bit_deterministic() {
        let sc = FleetScenario::open_system(
            4,
            30,
            Seconds::new(40.0),
            11,
            Arbitration::TdmaRoundRobin {
                slot: Seconds::new(0.25),
            },
        );
        let a = run_fleet(&sc);
        let b = run_fleet(&sc);
        assert_eq!(a.events, b.events);
        for (x, y) in a.pair_bits.iter().zip(&b.pair_bits) {
            assert_eq!(x.to_bits(), y.to_bits());
        }
        for (x, y) in a.device_spent.iter().zip(&b.device_spent) {
            assert_eq!(x.joules().to_bits(), y.joules().to_bits());
        }
        let (ca, cb) = (a.churn.unwrap(), b.churn.unwrap());
        assert_eq!(
            (ca.admitted, ca.departed, ca.died, ca.roams),
            (cb.admitted, cb.departed, cb.died, cb.roams)
        );
        for (x, y) in ca.phase_time.iter().zip(&cb.phase_time) {
            assert_eq!(x.to_bits(), y.to_bits());
        }
        for (x, y) in ca.window_bits.iter().zip(&cb.window_bits) {
            assert_eq!(x.to_bits(), y.to_bits());
        }
        // The open system actually churned: somebody was admitted, and the
        // run saw some mix of departures and deaths.
        assert!(ca.admitted > 0);
        assert!(ca.departed + ca.died > 0);
    }

    #[test]
    fn dead_device_kills_every_pair_that_uses_it() {
        // Two tags share a tiny hub; when the hub battery dies both pairs
        // must end.
        let hub = DeviceSpec {
            pos: Point::ORIGIN,
            battery: Joules::from_watt_hours(1e-5),
        };
        let t1 = DeviceSpec {
            pos: Point::new(0.5, 0.0),
            battery: Joules::from_watt_hours(1.0),
        };
        let t2 = DeviceSpec {
            pos: Point::new(-0.5, 0.0),
            battery: Joules::from_watt_hours(1.0),
        };
        let sc = FleetScenario::new(
            vec![hub, t1, t2],
            vec![PairSpec::braided(1, 0), PairSpec::braided(2, 0)],
            Arbitration::TdmaRoundRobin {
                slot: Seconds::new(0.1),
            },
        )
        .with_horizon(Seconds::new(1e9));
        let r = run_fleet(&sc);
        assert!(r.device_dead_at[0].is_some(), "hub must die");
        assert!(r.pair_dead_at.iter().all(|d| d.is_some()));
    }
}
