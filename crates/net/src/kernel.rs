//! The deterministic discrete-event simulation kernel.
//!
//! A binary-heap event queue whose delivery order is a *total* order over
//! the key `(time, seq, device)`:
//!
//! * `time` — virtual time of the event (finite, non-decreasing);
//! * `seq` — a caller-assigned sequence class that ranks same-instant
//!   events (the network engine uses the event kind's protocol rank, so a
//!   replan always lands before the quantum it reshapes);
//! * `device` — the owning device, breaking ties between peers that act at
//!   the same instant in the same phase.
//!
//! Because every key component is semantic — none is an insertion counter —
//! the delivery order of a set of uniquely-keyed events is invariant under
//! the order they were scheduled in, under thread count, and under host.
//! (An internal monotonic counter exists only as a last-resort tie-break
//! so that duplicate keys still pop in a reproducible order; engines that
//! want full insertion-order invariance must keep keys unique, which the
//! fleet engine does by construction: one pending event per (pair, kind).)
//!
//! `f64` times are compared with `total_cmp`, so the order is total even in
//! the presence of `-0.0`; non-finite times are rejected at scheduling.

use braidio_units::Seconds;
use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// Index of a device in the fleet (also used for event tie-breaking).
pub type DeviceId = u32;

/// One scheduled event.
#[derive(Debug, Clone, Copy)]
pub struct Scheduled<E> {
    /// Virtual delivery time.
    pub time: Seconds,
    /// Same-instant ordering class (lower delivers first).
    pub seq: u64,
    /// The device this event belongs to (final semantic tie-break).
    pub device: DeviceId,
    /// The payload.
    pub event: E,
    /// Insertion counter: last-resort tie-break for *duplicate* keys only.
    stamp: u64,
}

impl<E> Scheduled<E> {
    /// The total-order key `(time, seq, device, stamp)`.
    fn key(&self) -> (u64, u64, DeviceId, u64) {
        // Non-negative finite f64s order identically to their IEEE bits.
        (
            self.time.seconds().to_bits(),
            self.seq,
            self.device,
            self.stamp,
        )
    }
}

impl<E> PartialEq for Scheduled<E> {
    fn eq(&self, other: &Self) -> bool {
        self.key() == other.key()
    }
}
impl<E> Eq for Scheduled<E> {}

impl<E> PartialOrd for Scheduled<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl<E> Ord for Scheduled<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reversed: `BinaryHeap` is a max-heap, we want the earliest event.
        other.key().cmp(&self.key())
    }
}

/// The event queue: a priority queue in virtual time.
#[derive(Debug)]
pub struct EventQueue<E> {
    heap: BinaryHeap<Scheduled<E>>,
    now: Seconds,
    stamp: u64,
    delivered: u64,
}

impl<E> EventQueue<E> {
    /// An empty queue at `t = 0`.
    pub fn new() -> Self {
        Self::with_capacity(0)
    }

    /// An empty queue at `t = 0` with heap space for `cap` pending events.
    ///
    /// Sizing from the scenario (the fleet bring-up schedules up to two
    /// events per pair before any drain) avoids repeated heap regrowth
    /// mid-run; capacity is an allocation hint only and changes no
    /// delivery order or timing semantics.
    pub fn with_capacity(cap: usize) -> Self {
        EventQueue {
            heap: BinaryHeap::with_capacity(cap),
            now: Seconds::ZERO,
            stamp: 0,
            delivered: 0,
        }
    }

    /// Current virtual time (the time of the last delivered event).
    pub fn now(&self) -> Seconds {
        self.now
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// True when nothing is pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Total events delivered so far.
    pub fn delivered(&self) -> u64 {
        self.delivered
    }

    /// Schedule `event` at `time` with ordering class `seq` for `device`.
    ///
    /// Panics if `time` is non-finite, negative, or in the past — a DES
    /// must never travel backwards.
    pub fn schedule(&mut self, time: Seconds, seq: u64, device: DeviceId, event: E) {
        assert!(
            time.seconds().is_finite() && time.seconds() >= 0.0,
            "event time must be finite and non-negative, got {time}"
        );
        assert!(
            time >= self.now,
            "cannot schedule into the past: {time} < now {}",
            self.now
        );
        let stamp = self.stamp;
        self.stamp += 1;
        braidio_telemetry::count("net.kernel.scheduled");
        self.heap.push(Scheduled {
            time,
            seq,
            device,
            event,
            stamp,
        });
    }

    /// Deliver the next event (earliest key), advancing virtual time.
    pub fn pop(&mut self) -> Option<Scheduled<E>> {
        let ev = self.heap.pop()?;
        debug_assert!(ev.time >= self.now);
        self.now = ev.time;
        self.delivered += 1;
        braidio_telemetry::count("net.kernel.delivered");
        Some(ev)
    }

    /// The delivery time of the next pending event, if any.
    pub fn peek_time(&self) -> Option<Seconds> {
        self.heap.peek().map(|e| e.time)
    }
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        EventQueue::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn drain(q: &mut EventQueue<u32>) -> Vec<(f64, u64, DeviceId, u32)> {
        let mut out = Vec::new();
        while let Some(e) = q.pop() {
            out.push((e.time.seconds(), e.seq, e.device, e.event));
        }
        out
    }

    #[test]
    fn delivers_in_time_order() {
        let mut q = EventQueue::new();
        q.schedule(Seconds::new(3.0), 0, 0, 30);
        q.schedule(Seconds::new(1.0), 0, 0, 10);
        q.schedule(Seconds::new(2.0), 0, 0, 20);
        let events: Vec<u32> = drain(&mut q).into_iter().map(|e| e.3).collect();
        assert_eq!(events, vec![10, 20, 30]);
    }

    #[test]
    fn same_time_orders_by_seq_then_device() {
        let mut q = EventQueue::new();
        let t = Seconds::new(1.0);
        q.schedule(t, 2, 0, 0);
        q.schedule(t, 1, 5, 1);
        q.schedule(t, 1, 2, 2);
        q.schedule(t, 0, 9, 3);
        let events: Vec<u32> = drain(&mut q).into_iter().map(|e| e.3).collect();
        assert_eq!(events, vec![3, 2, 1, 0]);
    }

    #[test]
    fn order_invariant_under_insertion_order() {
        // The kernel's core contract: with unique keys, the pop sequence
        // does not depend on the push sequence.
        let keys: Vec<(f64, u64, DeviceId)> = vec![
            (0.5, 1, 0),
            (0.5, 0, 3),
            (0.5, 0, 1),
            (1.0, 4, 2),
            (0.25, 7, 9),
            (1.0, 4, 1),
            (2.0, 0, 0),
        ];
        let run = |order: &[usize]| {
            let mut q = EventQueue::new();
            for &i in order {
                let (t, s, d) = keys[i];
                q.schedule(Seconds::new(t), s, d, i as u32);
            }
            drain(&mut q)
        };
        let forward: Vec<usize> = (0..keys.len()).collect();
        let reverse: Vec<usize> = (0..keys.len()).rev().collect();
        let interleaved = vec![3, 0, 6, 1, 4, 2, 5];
        let a = run(&forward);
        let b = run(&reverse);
        let c = run(&interleaved);
        assert_eq!(a, b);
        assert_eq!(a, c);
    }

    #[test]
    fn time_advances_with_delivery() {
        let mut q = EventQueue::new();
        q.schedule(Seconds::new(2.0), 0, 0, ());
        q.schedule(Seconds::new(1.0), 0, 0, ());
        assert_eq!(q.now(), Seconds::ZERO);
        q.pop();
        assert_eq!(q.now(), Seconds::new(1.0));
        q.pop();
        assert_eq!(q.now(), Seconds::new(2.0));
        assert_eq!(q.delivered(), 2);
    }

    #[test]
    #[should_panic(expected = "cannot schedule into the past")]
    fn rejects_scheduling_into_the_past() {
        let mut q = EventQueue::new();
        q.schedule(Seconds::new(5.0), 0, 0, ());
        q.pop();
        q.schedule(Seconds::new(1.0), 0, 0, ());
    }

    #[test]
    #[should_panic(expected = "finite")]
    fn rejects_non_finite_time() {
        let mut q = EventQueue::new();
        q.schedule(Seconds::new(f64::NAN), 0, 0, ());
    }

    #[test]
    fn with_capacity_reserves_without_changing_semantics() {
        let mut q = EventQueue::with_capacity(16);
        assert!(q.is_empty());
        for i in 0..10u32 {
            q.schedule(Seconds::new(1.0 + i as f64), 0, 0, i);
        }
        let events: Vec<u32> = drain(&mut q).into_iter().map(|e| e.3).collect();
        assert_eq!(events, (0..10).collect::<Vec<u32>>());
    }

    #[test]
    #[should_panic(expected = "cannot schedule into the past")]
    fn with_capacity_still_rejects_the_past() {
        let mut q = EventQueue::with_capacity(8);
        q.schedule(Seconds::new(5.0), 0, 0, ());
        q.pop();
        q.schedule(Seconds::new(1.0), 0, 0, ());
    }

    #[test]
    #[should_panic(expected = "finite")]
    fn with_capacity_still_rejects_non_finite_time() {
        let mut q = EventQueue::with_capacity(8);
        q.schedule(Seconds::new(f64::INFINITY), 0, 0, ());
    }

    #[test]
    fn duplicate_keys_pop_in_insertion_order() {
        let mut q = EventQueue::new();
        let t = Seconds::new(1.0);
        for i in 0..5u32 {
            q.schedule(t, 0, 0, i);
        }
        let events: Vec<u32> = drain(&mut q).into_iter().map(|e| e.3).collect();
        assert_eq!(events, vec![0, 1, 2, 3, 4]);
    }
}
