//! The frozen pre-SoA fleet engine, kept verbatim as a bitwise oracle.
//!
//! This module is the array-of-structs engine (and its dense
//! per-edge-matrix interference cache) exactly as it shipped before the
//! structure-of-arrays refactor in [`crate::engine`]. It exists for one
//! purpose: the `soa-vs-baseline` equivalence gate runs the same scenarios
//! through both engines and asserts every simulated quantity — reports,
//! JSONL traces, per-device energy ledgers — is byte-identical. It is not
//! part of the public API and makes no attempt to scale; do not add
//! features here.

#![doc(hidden)]

use crate::arbitration::Arbitration;
use crate::cache::far_field_cutoff;
use crate::interference::{carrier_contribution, CarrierSource, OptionsMemo};
use crate::kernel::EventQueue;
use crate::metrics::FleetReport;
use crate::scenario::FleetScenario;
use braidio_mac::fsm::{Event as FsmEvent, OffloadFsm};
use braidio_mac::mobility::MobilityTrace;
use braidio_mac::offload::{solve_memo, OffloadPlan};
use braidio_mac::probe::LinkProber;
use braidio_mac::sim::switches_per_packet;
use braidio_radio::characterization::Rate;
use braidio_radio::{Battery, Mode, Role};
use braidio_rfsim::geometry::Point;
use braidio_telemetry as telemetry;
use braidio_units::{Joules, Meters, Seconds, Watts};
use std::collections::HashMap;

const STATUS_BITS: f64 = 256.0;

const ASSOC_STAGGER: Seconds = Seconds::new(1e-3);

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Kind {
    Associate,
    StatusExchanged,
    ProbesDone,
    Replan,
    QuantumDone,
}

impl Kind {
    fn rank(self) -> u64 {
        match self {
            Kind::Associate => 0,
            Kind::StatusExchanged => 1,
            Kind::ProbesDone => 2,
            Kind::Replan => 3,
            Kind::QuantumDone => 4,
        }
    }
}

#[derive(Debug, Clone, Copy)]
struct Ev {
    pair: usize,
    kind: Kind,
}

type Slice = (Mode, Rate, f64, bool, bool, Seconds);

const FILL_SLICE: Slice = (
    Mode::Active,
    Rate::Kbps10,
    0.0,
    false,
    false,
    Seconds::new(0.0),
);

#[derive(Debug, Clone)]
struct PendingQuantum {
    bits: f64,
    e_tx: Joules,
    e_rx: Joules,
    slices: [Slice; 2],
    nslices: u8,
    last: bool,
}

impl PendingQuantum {
    fn slices(&self) -> &[Slice] {
        &self.slices[..self.nslices as usize]
    }
}

#[derive(Debug)]
struct DeviceRt {
    pos: Point,
    battery: Battery,
    spent: Joules,
    dead_at: Option<Seconds>,
    carrier_time: Seconds,
}

#[derive(Debug)]
struct PairRt {
    fsm: OffloadFsm,
    plan: Option<OffloadPlan>,
    pending: Option<PendingQuantum>,
    bits: f64,
    mode_bits: [(Mode, f64); 3],
    dead_at: Option<Seconds>,
    dir: Point,
    last_mode: Option<Mode>,
}

/// The dense per-edge interference cache the SoA refactor replaced:
/// `contrib[victim * n + source]` holds each source's detector-referred
/// power (NaN = stale), and a dirty sum replays the cached contributions
/// in pair-index order. O(n²) memory — the reason it was retired.
#[derive(Debug)]
struct ScalarGainCache {
    n: usize,
    contrib: Vec<f64>,
    sum: Vec<f64>,
    sum_dirty: Vec<bool>,
    live: Vec<bool>,
    cull: Option<ScalarCull>,
}

#[derive(Debug)]
struct ScalarCull {
    cutoff: f64,
    near: Vec<Vec<u32>>,
    stale: bool,
}

impl ScalarGainCache {
    fn new(n: usize) -> Self {
        ScalarGainCache {
            n,
            contrib: vec![f64::NAN; n * n],
            sum: vec![0.0; n],
            sum_dirty: vec![true; n],
            live: vec![true; n],
            cull: None,
        }
    }

    fn with_cull(n: usize, cutoff: Meters) -> Self {
        let mut c = Self::new(n);
        c.cull = Some(ScalarCull {
            cutoff: cutoff.meters(),
            near: vec![Vec::new(); n],
            stale: true,
        });
        c
    }

    fn is_live(&self, q: usize) -> bool {
        self.live[q]
    }

    fn mark_dead(&mut self, q: usize) {
        if !self.live[q] {
            return;
        }
        self.live[q] = false;
        for d in self.sum_dirty.iter_mut() {
            *d = true;
        }
    }

    fn invalidate_pair(&mut self, p: usize) {
        let n = self.n;
        for q in 0..n {
            self.contrib[p * n + q] = f64::NAN;
            self.contrib[q * n + p] = f64::NAN;
        }
        for d in self.sum_dirty.iter_mut() {
            *d = true;
        }
        if let Some(cull) = &mut self.cull {
            cull.stale = true;
        }
    }

    fn interference<P, E>(&mut self, victim: usize, endpoints: P, mut edge: E) -> Watts
    where
        P: Fn(usize) -> (Point, Point),
        E: FnMut(usize) -> Watts,
    {
        let Self {
            n,
            contrib,
            sum,
            sum_dirty,
            live,
            cull,
        } = self;
        let n = *n;
        if let Some(cull) = cull.as_mut() {
            if cull.stale {
                rebuild_candidates(cull, n, &endpoints);
            }
        }
        if !sum_dirty[victim] {
            return Watts::new(sum[victim]);
        }
        let mut acc = Watts::new(0.0);
        let mut add = |q: usize| {
            if q == victim || !live[q] {
                return;
            }
            let slot = &mut contrib[victim * n + q];
            if slot.is_nan() {
                *slot = edge(q).watts();
            }
            acc += Watts::new(*slot);
        };
        match cull {
            Some(c) => {
                for &q in &c.near[victim] {
                    add(q as usize);
                }
            }
            None => {
                for q in 0..n {
                    add(q);
                }
            }
        }
        sum[victim] = acc.watts();
        sum_dirty[victim] = false;
        acc
    }
}

fn rebuild_candidates<P>(cull: &mut ScalarCull, n: usize, endpoints: &P)
where
    P: Fn(usize) -> (Point, Point),
{
    let c = cull.cutoff;
    let cell = |p: Point| ((p.x / c).floor() as i64, (p.y / c).floor() as i64);
    let mut grid: HashMap<(i64, i64), Vec<u32>> = HashMap::new();
    for q in 0..n {
        let (a, b) = endpoints(q);
        grid.entry(cell(a)).or_default().push(q as u32);
        let cb = cell(b);
        if cb != cell(a) {
            grid.entry(cb).or_default().push(q as u32);
        }
    }
    for v in 0..n {
        let victim = endpoints(v).1;
        let (cx, cy) = cell(victim);
        let near = &mut cull.near[v];
        near.clear();
        for dx in -1..=1 {
            for dy in -1..=1 {
                if let Some(bucket) = grid.get(&(cx + dx, cy + dy)) {
                    near.extend_from_slice(bucket);
                }
            }
        }
        near.sort_unstable();
        near.dedup();
        near.retain(|&q| {
            if q as usize == v {
                return false;
            }
            let (a, b) = endpoints(q as usize);
            a.distance(victim).min(b.distance(victim)) <= Meters::new(c)
        });
    }
    cull.stale = false;
}

/// Run a fleet scenario through the pre-refactor engine (the bitwise
/// oracle of the `soa-vs-baseline` gate).
pub fn run_fleet_baseline(scenario: &FleetScenario) -> FleetReport {
    scenario.validate();
    assert!(
        scenario.churn.is_none(),
        "the frozen baseline engine predates the lifecycle subsystem; \
         open-system scenarios have no oracle here"
    );
    let mut sim = Fleet::new(scenario);
    sim.run()
}

struct Fleet<'a> {
    sc: &'a FleetScenario,
    q: EventQueue<Ev>,
    devices: Vec<DeviceRt>,
    pairs: Vec<PairRt>,
    replans: u64,
    gains: ScalarGainCache,
    options: OptionsMemo,
}

impl<'a> Fleet<'a> {
    fn new(sc: &'a FleetScenario) -> Self {
        let devices = sc
            .devices
            .iter()
            .map(|d| DeviceRt {
                pos: d.pos,
                battery: Battery::new(d.battery),
                spent: Joules::ZERO,
                dead_at: None,
                carrier_time: Seconds::ZERO,
            })
            .collect();
        let pairs = sc
            .pairs
            .iter()
            .map(|p| PairRt {
                fsm: OffloadFsm::new(),
                plan: None,
                pending: None,
                bits: 0.0,
                mode_bits: [
                    (Mode::Active, 0.0),
                    (Mode::Passive, 0.0),
                    (Mode::Backscatter, 0.0),
                ],
                dead_at: None,
                dir: sc.devices[p.tx]
                    .pos
                    .direction_to(sc.devices[p.rx].pos)
                    .unwrap_or(Point::new(1.0, 0.0)),
                last_mode: None,
            })
            .collect();
        let gains = if sc.far_field_cull {
            ScalarGainCache::with_cull(sc.pairs.len(), far_field_cutoff(&sc.ch))
        } else {
            ScalarGainCache::new(sc.pairs.len())
        };
        Fleet {
            sc,
            q: EventQueue::new(),
            devices,
            pairs,
            replans: 0,
            gains,
            options: OptionsMemo::new(),
        }
    }

    fn run(&mut self) -> FleetReport {
        telemetry::begin_unit();
        for i in 0..self.pairs.len() {
            self.q.schedule(
                Seconds::new(i as f64 * ASSOC_STAGGER.seconds()),
                Kind::Associate.rank(),
                i as u32,
                Ev {
                    pair: i,
                    kind: Kind::Associate,
                },
            );
        }
        let mut last = Seconds::ZERO;
        let mut truncated = false;
        while let Some(ev) = self.q.pop() {
            if ev.time > self.sc.horizon {
                truncated = true;
                break;
            }
            last = ev.time;
            self.handle(ev.event.pair, ev.event.kind, ev.time);
        }
        let end_time = if truncated { self.sc.horizon } else { last };
        for p in 0..self.pairs.len() {
            self.abort_pending(p, end_time);
        }
        FleetReport {
            horizon: self.sc.horizon,
            end_time,
            events: self.q.delivered(),
            replans: self.replans,
            pair_bits: self.pairs.iter().map(|p| p.bits).collect(),
            pair_mode_bits: self.pairs.iter().map(|p| p.mode_bits).collect(),
            pair_dead_at: self.pairs.iter().map(|p| p.dead_at).collect(),
            device_spent: self.devices.iter().map(|d| d.spent).collect(),
            device_dead_at: self.devices.iter().map(|d| d.dead_at).collect(),
            device_carrier_time: self.devices.iter().map(|d| d.carrier_time).collect(),
            churn: None,
        }
    }

    fn handle(&mut self, p: usize, kind: Kind, now: Seconds) {
        if self.pairs[p].fsm.is_dead() {
            return;
        }
        let (tx, rx) = (self.sc.pairs[p].tx, self.sc.pairs[p].rx);
        if kind != Kind::QuantumDone
            && (self.devices[tx].battery.is_dead() || self.devices[rx].battery.is_dead())
        {
            self.kill(p, now);
            return;
        }
        match kind {
            Kind::Associate => self.on_associate(p, now),
            Kind::StatusExchanged => self.on_status_exchanged(p, now),
            Kind::ProbesDone => self.on_probes_done(p, now),
            Kind::Replan => self.on_replan(p, now),
            Kind::QuantumDone => self.on_quantum_done(p, now),
        }
    }

    fn on_associate(&mut self, p: usize, now: Seconds) {
        telemetry::emit(telemetry::Event::WakeupDetect {
            at: now,
            track: telemetry::Track::Device(self.sc.pairs[p].rx as u32),
        });
        self.pairs[p]
            .fsm
            .on(FsmEvent::Associated)
            .expect("Init accepts Associated");
        let mut dt = Seconds::ZERO;
        if self.sc.control_overhead {
            let pp = self
                .sc
                .ch
                .power(Mode::Active, Rate::Mbps1)
                .expect("active 1 Mbps is always characterized");
            let t = pp.rate.bps().time_for_bits(STATUS_BITS);
            let e = pp.tx * t + pp.rx * t;
            let (tx, rx) = (self.sc.pairs[p].tx, self.sc.pairs[p].rx);
            self.charge(tx, e, now);
            self.charge(rx, e, now);
            dt = pp.rate.bps().time_for_bits(2.0 * STATUS_BITS);
            if self.devices[tx].battery.is_dead() || self.devices[rx].battery.is_dead() {
                self.kill(p, now);
                return;
            }
        }
        self.schedule(now + dt, p, Kind::StatusExchanged);
    }

    fn on_status_exchanged(&mut self, p: usize, now: Seconds) {
        self.pairs[p]
            .fsm
            .on(FsmEvent::StatusExchanged)
            .expect("ExchangingStatus accepts StatusExchanged");
        if let Some(airtime) = self.charge_probe_round(p, now) {
            self.schedule(now + airtime, p, Kind::ProbesDone);
        }
    }

    fn on_probes_done(&mut self, p: usize, now: Seconds) {
        if !self.install_plan(p, now) {
            return;
        }
        self.schedule_quantum(p, now);
        if !self.pairs[p].fsm.is_dead() {
            self.schedule(now + self.sc.replan_interval, p, Kind::Replan);
        }
    }

    fn on_replan(&mut self, p: usize, now: Seconds) {
        let _span = telemetry::span("net.replan");
        self.replans += 1;
        self.pairs[p]
            .fsm
            .on(FsmEvent::RecomputeDue)
            .expect("Braiding accepts RecomputeDue");
        if self.charge_probe_round(p, now).is_none() {
            return;
        }
        if !self.install_plan(p, now) {
            self.abort_pending(p, now);
            return;
        }
        self.schedule(now + self.sc.replan_interval, p, Kind::Replan);
    }

    fn on_quantum_done(&mut self, p: usize, now: Seconds) {
        self.pairs[p]
            .fsm
            .on(FsmEvent::PacketDelivered)
            .expect("Braiding accepts PacketDelivered");
        let pending = self.pairs[p]
            .pending
            .take()
            .expect("a quantum was in flight");
        let (tx, rx) = (self.sc.pairs[p].tx, self.sc.pairs[p].rx);
        self.charge(tx, pending.e_tx, now);
        self.charge(rx, pending.e_rx, now);
        self.pairs[p].bits += pending.bits;
        for (mode, rate, bits, on_tx, on_rx, airtime) in pending.slices() {
            for (m, b) in self.pairs[p].mode_bits.iter_mut() {
                if m == mode {
                    *b += bits;
                }
            }
            if *on_tx {
                self.devices[tx].carrier_time += *airtime;
            }
            if *on_rx {
                self.devices[rx].carrier_time += *airtime;
            }
            telemetry::emit(telemetry::Event::QuantumDelivered {
                at: now,
                track: telemetry::Track::Pair(p as u32),
                mode: (*mode).into(),
                rate: (*rate).into(),
                bits: *bits,
            });
        }
        telemetry::emit(telemetry::Event::CarrierRelease {
            at: now,
            track: telemetry::Track::Pair(p as u32),
        });
        if pending.last || self.devices[tx].battery.is_dead() || self.devices[rx].battery.is_dead()
        {
            self.kill(p, now);
            return;
        }
        self.schedule_quantum(p, now);
    }

    fn charge_probe_round(&mut self, p: usize, now: Seconds) -> Option<Seconds> {
        if !self.sc.control_overhead {
            return Some(Seconds::ZERO);
        }
        let d = self.pair_distance(p, now);
        let report = LinkProber::ideal().probe(&self.sc.ch, d);
        let (tx, rx) = (self.sc.pairs[p].tx, self.sc.pairs[p].rx);
        self.charge(tx, report.energy_initiator, now);
        self.charge(rx, report.energy_responder, now);
        if self.devices[tx].battery.is_dead() || self.devices[rx].battery.is_dead() {
            self.kill(p, now);
            return None;
        }
        Some(report.airtime)
    }

    fn install_plan(&mut self, p: usize, now: Seconds) -> bool {
        let d = self.pair_distance(p, now);
        let interference = self.interference_for(p);
        let pin = self.sc.pairs[p].pinned_mode;
        let opts = self.options.get(&self.sc.ch, d, interference, pin);
        if opts.is_empty() {
            self.pairs[p]
                .fsm
                .on(FsmEvent::ProbesEmpty)
                .expect("Probing accepts ProbesEmpty");
            self.pairs[p].dead_at = Some(now);
            self.gains.mark_dead(p);
            if telemetry::enabled() {
                let track = telemetry::Track::Pair(p as u32);
                telemetry::emit(telemetry::Event::Replan {
                    at: now,
                    track,
                    planned: false,
                    exact: false,
                    primary: None,
                });
                telemetry::emit(telemetry::Event::SessionDead {
                    at: now,
                    track,
                    reason: telemetry::DeathReason::NoViableMode,
                });
            }
            return false;
        }
        let (tx, rx) = (self.sc.pairs[p].tx, self.sc.pairs[p].rx);
        let plan = solve_memo(
            &opts,
            self.devices[tx].battery.remaining(),
            self.devices[rx].battery.remaining(),
        )
        .expect("non-empty options always yield a plan");
        self.pairs[p]
            .fsm
            .on(FsmEvent::ProbesOk)
            .expect("Probing accepts ProbesOk");
        if telemetry::enabled() {
            let primary = plan
                .allocations
                .iter()
                .max_by(|a, b| a.fraction.partial_cmp(&b.fraction).expect("finite"))
                .map(|a| a.option.mode);
            let track = telemetry::Track::Pair(p as u32);
            telemetry::emit(telemetry::Event::Replan {
                at: now,
                track,
                planned: true,
                exact: plan.exact,
                primary: primary.map(Into::into),
            });
            if let Some(primary) = primary {
                if self.pairs[p].last_mode != Some(primary) {
                    telemetry::emit(telemetry::Event::ModeSwitch {
                        at: now,
                        track,
                        from: self.pairs[p].last_mode.map(Into::into),
                        to: primary.into(),
                    });
                    self.pairs[p].last_mode = Some(primary);
                }
            }
        }
        self.pairs[p].plan = Some(plan);
        true
    }

    fn schedule_quantum(&mut self, p: usize, now: Seconds) {
        let plan = self.pairs[p].plan.expect("braiding under a plan");
        let (tx, rx) = (self.sc.pairs[p].tx, self.sc.pairs[p].rx);

        let spp = switches_per_packet(&plan);
        let switch_bits = self.sc.packet_bits * self.sc.quantum_packets;
        let (mut sw_tx, mut sw_rx) = (0.0, 0.0);
        if plan.allocations.len() == 2 {
            for a in &plan.allocations {
                sw_tx += self
                    .sc
                    .switching
                    .cost(a.option.mode, Role::Transmitter)
                    .joules()
                    / 2.0;
                sw_rx += self
                    .sc
                    .switching
                    .cost(a.option.mode, Role::Receiver)
                    .joules()
                    / 2.0;
            }
        }
        let c_tx = plan.tx_cost.joules_per_bit() + spp * sw_tx / switch_bits;
        let c_rx = plan.rx_cost.joules_per_bit() + spp * sw_rx / switch_bits;

        let affordable = (self.devices[tx].battery.remaining().joules() / c_tx)
            .min(self.devices[rx].battery.remaining().joules() / c_rx);
        let quantum_bits = switch_bits;
        let bits = quantum_bits.min(affordable);
        if !bits.is_finite() || bits < 1.0 {
            self.kill(p, now);
            return;
        }
        let last = affordable <= quantum_bits;

        let mut airtime = Seconds::ZERO;
        let mut slices = [FILL_SLICE; 2];
        let mut nslices = 0u8;
        for a in &plan.allocations {
            let slice_bits = bits * a.fraction;
            let dt = a.option.rate.bps().time_for_bits(slice_bits);
            let (on_tx, on_rx) = a.option.mode.carrier_at();
            slices[nslices as usize] = (a.option.mode, a.option.rate, slice_bits, on_tx, on_rx, dt);
            nslices += 1;
            airtime += dt;
        }
        let finish = self.finish_time(p, now, airtime);
        self.pairs[p].pending = Some(PendingQuantum {
            bits,
            e_tx: Joules::new(bits * c_tx),
            e_rx: Joules::new(bits * c_rx),
            slices,
            nslices,
            last,
        });
        self.schedule(finish, p, Kind::QuantumDone);
        telemetry::emit(telemetry::Event::CarrierGrant {
            at: now,
            track: telemetry::Track::Pair(p as u32),
        });
    }

    fn finish_time(&self, p: usize, start: Seconds, airtime: Seconds) -> Seconds {
        let arb = self.sc.arbitration;
        let n = self.pairs.len();
        let mut t = arb.next_transmit_at(p, n, start);
        let mut left = airtime.seconds();
        let Some(we) = arb.window_end(p, n, t) else {
            return Seconds::new(t.seconds() + left);
        };
        let usable = we.seconds() - t.seconds();
        if left <= usable {
            return Seconds::new(t.seconds() + left);
        }
        left -= usable;
        t = arb.next_transmit_at(p, n, we);
        let Arbitration::TdmaRoundRobin { slot } = arb else {
            unreachable!("only TDMA has bounded windows");
        };
        let s = slot.seconds();
        let period = s * n as f64;
        let full = (left / s).floor();
        if full >= 1.0 {
            t = Seconds::new(t.seconds() + full * period);
            left -= full * s;
        }
        if left >= s {
            t = Seconds::new(t.seconds() + period);
            left -= s;
        }
        Seconds::new(t.seconds() + left)
    }

    fn interference_for(&mut self, p: usize) -> Watts {
        if !self.sc.arbitration.carriers_overlap() {
            return Watts::ZERO;
        }
        let sc = self.sc;
        let devices = &self.devices;
        let victim = devices[sc.pairs[p].rx].pos;
        self.gains.interference(
            p,
            |q| {
                let qp = &sc.pairs[q];
                (devices[qp.tx].pos, devices[qp.rx].pos)
            },
            |q| {
                let qp = &sc.pairs[q];
                let a = devices[qp.tx].pos;
                let b = devices[qp.rx].pos;
                let pos = if a.distance(victim) <= b.distance(victim) {
                    a
                } else {
                    b
                };
                carrier_contribution(
                    &sc.ch,
                    victim,
                    &CarrierSource {
                        pos,
                        rf: sc.ch.carrier_rf,
                        relation: sc.arbitration.relation(p, q),
                    },
                )
            },
        )
    }

    fn pair_distance(&mut self, p: usize, now: Seconds) -> Meters {
        let (tx, rx) = (self.sc.pairs[p].tx, self.sc.pairs[p].rx);
        match self.sc.pairs[p].walk {
            None => self.devices[tx].pos.distance(self.devices[rx].pos),
            Some(walk) => {
                let mut w = walk;
                let d = w.distance_at(now);
                let dir = self.pairs[p].dir;
                self.devices[rx].pos = self.devices[tx].pos.offset_along(dir, d);
                self.gains.invalidate_pair(p);
                d
            }
        }
    }

    fn charge(&mut self, dev: usize, e: Joules, now: Seconds) {
        telemetry::emit(telemetry::Event::EnergyDebit {
            at: now,
            track: telemetry::Track::Device(dev as u32),
            joules: e,
        });
        let d = &mut self.devices[dev];
        d.spent += e;
        d.battery.draw(e);
        if d.battery.is_dead() && d.dead_at.is_none() {
            d.dead_at = Some(now);
        }
    }

    fn kill(&mut self, p: usize, now: Seconds) {
        self.gains.mark_dead(p);
        if !self.pairs[p].fsm.is_dead() {
            self.pairs[p]
                .fsm
                .on(FsmEvent::BatteryDead)
                .expect("live states accept BatteryDead");
            telemetry::emit(telemetry::Event::SessionDead {
                at: now,
                track: telemetry::Track::Pair(p as u32),
                reason: telemetry::DeathReason::BatteryDead,
            });
        }
        if self.pairs[p].dead_at.is_none() {
            self.pairs[p].dead_at = Some(now);
        }
        self.abort_pending(p, now);
    }

    fn abort_pending(&mut self, p: usize, at: Seconds) {
        let Some(pending) = self.pairs[p].pending.take() else {
            return;
        };
        if telemetry::enabled() {
            let track = telemetry::Track::Pair(p as u32);
            for (mode, rate, bits, ..) in pending.slices() {
                telemetry::emit(telemetry::Event::QuantumLost {
                    at,
                    track,
                    mode: (*mode).into(),
                    rate: (*rate).into(),
                    bits: *bits,
                });
            }
            telemetry::emit(telemetry::Event::CarrierRelease { at, track });
        }
    }

    fn schedule(&mut self, t: Seconds, p: usize, kind: Kind) {
        self.q
            .schedule(t, kind.rank(), p as u32, Ev { pair: p, kind });
    }

    // The baseline engine keeps `is_live` reachable so debug builds of the
    // equivalence gate can cross-check cache liveness if they want to.
    #[allow(dead_code)]
    fn cache_live(&self, q: usize) -> bool {
        self.gains.is_live(q)
    }
}
