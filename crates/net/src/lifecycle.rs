//! Per-link session lifecycle: the phase machine behind dynamic fleets.
//!
//! Closed scenarios (grid, star, city block) hand the engine a pair list
//! that exists a priori and runs to completion; the only session state the
//! SoA engine tracked was the binary live/dead bit implied by
//! [`braidio_mac::fsm::OffloadFsm`]. An *open* system — devices arriving,
//! roaming, browning out, and leaving mid-run — needs a richer notion of
//! "how alive is this link", which this module provides as an explicit
//! phase machine (after the `LinkPhase` exemplar in `strata`, SNIPPETS.md):
//!
//! ```text
//! Init → Probe → Warm → Live ⇄ Degrade → Cooldown → Probe | Dead
//!          └───────┴───────┴────────┴──────↑
//! ```
//!
//! * **Init** — the device exists but has not been discovered: it pays
//!   wake-up detector power only ([`crate::discovery`]).
//! * **Probe** — a hub beacon admitted the link; it is measuring channel
//!   options but has not committed a plan.
//! * **Warm** — a plan is installed; the link is ramping (the first
//!   [`LifecyclePolicy::warmup_quanta`] quanta are its warm-up).
//! * **Live** — steady state: full-rate quantum exchange.
//! * **Degrade** — an endpoint's battery fell below
//!   [`LifecyclePolicy::degrade_frac`]; the link stays up but the planner
//!   pins the cheapest tag-side mode (backscatter), per BLISP's
//!   fall-back-toward-passive rule (PAPERS.md).
//! * **Cooldown** — the link lost viability (no feasible mode, or battery
//!   below [`LifecyclePolicy::critical_frac`]): traffic stops, the tag
//!   drops back to detector-only power, and after
//!   [`LifecyclePolicy::cooldown`] seconds it either re-probes or — past
//!   [`LifecyclePolicy::max_cooldowns`] attempts — goes Dead.
//! * **Dead** — terminal: battery exhausted, departed, or given up.
//!
//! The machine itself is a pure transition table ([`step`]) so the full
//! legal/illegal surface is unit-testable without an engine; the engine
//! owns *when* events fire. Closed scenarios never construct the churn
//! phases: they take the Init → Probe → Warm → Live fast path at
//! association time and emit no phase telemetry, which is what keeps their
//! output byte-identical to the pre-lifecycle engine.

use braidio_units::Seconds;

/// Lifecycle phase of a fleet link.
///
/// Ordering of the variants is meaningful only through [`LinkPhase::index`],
/// which phase-occupancy accounting uses as an array index.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum LinkPhase {
    /// Undiscovered: the tag listens through the wake-up detector only.
    #[default]
    Init,
    /// Admitted by a hub beacon; measuring options, no plan yet.
    Probe,
    /// Plan installed; ramping through the warm-up quanta.
    Warm,
    /// Steady-state quantum exchange.
    Live,
    /// Energy-degraded: up, but pinned to the cheapest tag-side mode.
    Degrade,
    /// Quiesced: no traffic, detector-only power, awaiting retry or drop.
    Cooldown,
    /// Terminal: departed, battery-dead, or out of cooldown retries.
    Dead,
}

/// Number of distinct phases (the size of an occupancy array).
pub const PHASE_COUNT: usize = 7;

impl LinkPhase {
    /// Every phase, in [`LinkPhase::index`] order.
    pub const ALL: [LinkPhase; PHASE_COUNT] = [
        LinkPhase::Init,
        LinkPhase::Probe,
        LinkPhase::Warm,
        LinkPhase::Live,
        LinkPhase::Degrade,
        LinkPhase::Cooldown,
        LinkPhase::Dead,
    ];

    /// Stable lowercase code, used in telemetry and reports.
    pub fn as_str(&self) -> &'static str {
        match self {
            LinkPhase::Init => "init",
            LinkPhase::Probe => "probe",
            LinkPhase::Warm => "warm",
            LinkPhase::Live => "live",
            LinkPhase::Degrade => "degrade",
            LinkPhase::Cooldown => "cooldown",
            LinkPhase::Dead => "dead",
        }
    }

    /// Dense index into a phase-occupancy array (matches [`LinkPhase::ALL`]).
    pub fn index(&self) -> usize {
        match self {
            LinkPhase::Init => 0,
            LinkPhase::Probe => 1,
            LinkPhase::Warm => 2,
            LinkPhase::Live => 3,
            LinkPhase::Degrade => 4,
            LinkPhase::Cooldown => 5,
            LinkPhase::Dead => 6,
        }
    }

    /// True once no further transition is legal.
    pub fn is_terminal(&self) -> bool {
        matches!(self, LinkPhase::Dead)
    }

    /// True while the link exchanges quanta (the telemetry validator
    /// rejects `quantum_delivered` outside these phases).
    pub fn carries_traffic(&self) -> bool {
        matches!(self, LinkPhase::Warm | LinkPhase::Live | LinkPhase::Degrade)
    }

    /// True while the link occupies radio spectrum: it probes, plans, and
    /// contributes interference. Init/Cooldown links are radio-silent
    /// (detector-only) and Dead links are gone, so none of them belong in
    /// the [`crate::cache::PairGainCache`] live set.
    pub fn on_air(&self) -> bool {
        matches!(
            self,
            LinkPhase::Probe | LinkPhase::Warm | LinkPhase::Live | LinkPhase::Degrade
        )
    }
}

/// An observation that may move a link between phases.
///
/// The engine translates raw protocol events (plan installs, quantum
/// completions, battery samples, beacons) into these; the table in [`step`]
/// says which are legal where.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PhaseEvent {
    /// A hub beacon reached the tag's wake-up detector: discovery done.
    Admitted,
    /// A replan wave found at least one feasible mode.
    ProbesOk,
    /// A replan wave found no feasible mode at all.
    ProbesEmpty,
    /// The warm-up quantum quota has been delivered.
    WarmedUp,
    /// An endpoint battery dropped below the degrade threshold.
    EnergyLow,
    /// A degraded endpoint recovered above the degrade threshold.
    Recovered,
    /// An endpoint battery dropped below the critical threshold.
    EnergyCritical,
    /// The cooldown timer fired with retries left: go probe again.
    CooldownRetry,
    /// The cooldown timer fired with no retries left: give up.
    CooldownDrop,
    /// The device's dwell time ended: graceful teardown.
    Departed,
    /// An endpoint battery hit zero outright.
    BatteryDead,
}

/// A `(phase, event)` combination outside the legal table.
///
/// Illegal transitions are engine bugs, not simulation outcomes, so the
/// engine unwraps [`step`] — the `Err` form exists so tests can pin the
/// rejection surface exhaustively.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct IllegalTransition {
    /// The phase the link was in.
    pub from: LinkPhase,
    /// The event that is not legal there.
    pub event: PhaseEvent,
}

impl std::fmt::Display for IllegalTransition {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "illegal lifecycle transition: {:?} in phase {}",
            self.event,
            self.from.as_str()
        )
    }
}

impl std::error::Error for IllegalTransition {}

/// The transition table: the next phase for `event` observed in `from`.
///
/// Self-loops are legal where the engine may re-observe a condition without
/// meaning a change (a replan succeeding while already Warm/Live/Degrade,
/// energy still low while already Degrade); everything else not listed is
/// an [`IllegalTransition`]. `Dead` is terminal: every event is illegal
/// there, including a second `BatteryDead`.
pub fn step(from: LinkPhase, event: PhaseEvent) -> Result<LinkPhase, IllegalTransition> {
    use LinkPhase as P;
    use PhaseEvent as E;
    let to = match (from, event) {
        // Discovery: the only way out of Init (besides dying unseen).
        (P::Init, E::Admitted) => P::Probe,

        // Probing: a plan promotes, an empty option set quiesces.
        (P::Probe, E::ProbesOk) => P::Warm,
        (P::Probe, E::ProbesEmpty) => P::Cooldown,
        (P::Probe, E::EnergyCritical) => P::Cooldown,

        // Warm-up: quota reached promotes; replans may re-succeed in place.
        (P::Warm, E::WarmedUp) => P::Live,
        (P::Warm, E::ProbesOk) => P::Warm,
        (P::Warm, E::ProbesEmpty) => P::Cooldown,
        (P::Warm, E::EnergyLow) => P::Degrade,
        (P::Warm, E::EnergyCritical) => P::Cooldown,

        // Steady state.
        (P::Live, E::ProbesOk) => P::Live,
        (P::Live, E::ProbesEmpty) => P::Cooldown,
        (P::Live, E::EnergyLow) => P::Degrade,
        (P::Live, E::EnergyCritical) => P::Cooldown,

        // Degraded: may recover, re-plan in place, or collapse further.
        (P::Degrade, E::Recovered) => P::Live,
        (P::Degrade, E::ProbesOk) => P::Degrade,
        (P::Degrade, E::EnergyLow) => P::Degrade,
        (P::Degrade, E::ProbesEmpty) => P::Cooldown,
        (P::Degrade, E::EnergyCritical) => P::Cooldown,

        // Cooldown resolves one of two ways when its timer fires.
        (P::Cooldown, E::CooldownRetry) => P::Probe,
        (P::Cooldown, E::CooldownDrop) => P::Dead,

        // Departure and battery death end any non-terminal phase.
        (p, E::Departed) if !p.is_terminal() => P::Dead,
        (p, E::BatteryDead) if !p.is_terminal() => P::Dead,

        (from, event) => return Err(IllegalTransition { from, event }),
    };
    Ok(to)
}

/// Thresholds and timers that drive lifecycle events.
///
/// The policy is scenario data (carried by
/// [`crate::scenario::ChurnConfig`]), not engine state, so two runs of the
/// same scenario see the same machine regardless of `--jobs`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LifecyclePolicy {
    /// Quanta that must be delivered in Warm before promotion to Live.
    pub warmup_quanta: u32,
    /// Battery fraction (of the smaller endpoint) below which the link
    /// degrades to the cheapest tag-side mode.
    pub degrade_frac: f64,
    /// Battery fraction below which the link quiesces into Cooldown.
    pub critical_frac: f64,
    /// How long a link sits in Cooldown before retrying or dropping.
    pub cooldown: Seconds,
    /// Cooldown entries after which the link goes Dead instead of
    /// re-probing.
    pub max_cooldowns: u32,
}

impl Default for LifecyclePolicy {
    fn default() -> Self {
        LifecyclePolicy {
            warmup_quanta: 2,
            degrade_frac: 0.25,
            critical_frac: 0.05,
            cooldown: Seconds::new(2.0),
            max_cooldowns: 2,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use LinkPhase as P;
    use PhaseEvent as E;

    const EVENTS: [PhaseEvent; 11] = [
        E::Admitted,
        E::ProbesOk,
        E::ProbesEmpty,
        E::WarmedUp,
        E::EnergyLow,
        E::Recovered,
        E::EnergyCritical,
        E::CooldownRetry,
        E::CooldownDrop,
        E::Departed,
        E::BatteryDead,
    ];

    /// The full expected table: every legal `(from, event) -> to` triple.
    /// [`exhaustive_table`] checks both directions: listed combinations
    /// step to exactly this phase, unlisted combinations are rejected.
    const LEGAL: [(LinkPhase, PhaseEvent, LinkPhase); 23] = [
        (P::Init, E::Admitted, P::Probe),
        (P::Init, E::Departed, P::Dead),
        (P::Init, E::BatteryDead, P::Dead),
        (P::Probe, E::ProbesOk, P::Warm),
        (P::Probe, E::ProbesEmpty, P::Cooldown),
        (P::Probe, E::EnergyCritical, P::Cooldown),
        (P::Probe, E::Departed, P::Dead),
        (P::Probe, E::BatteryDead, P::Dead),
        (P::Warm, E::WarmedUp, P::Live),
        (P::Warm, E::ProbesOk, P::Warm),
        (P::Warm, E::ProbesEmpty, P::Cooldown),
        (P::Warm, E::EnergyLow, P::Degrade),
        (P::Warm, E::EnergyCritical, P::Cooldown),
        (P::Warm, E::Departed, P::Dead),
        (P::Warm, E::BatteryDead, P::Dead),
        (P::Live, E::ProbesOk, P::Live),
        (P::Live, E::ProbesEmpty, P::Cooldown),
        (P::Live, E::EnergyLow, P::Degrade),
        (P::Live, E::EnergyCritical, P::Cooldown),
        (P::Live, E::Departed, P::Dead),
        (P::Live, E::BatteryDead, P::Dead),
        (P::Degrade, E::Recovered, P::Live),
        (P::Degrade, E::ProbesOk, P::Degrade),
    ];

    /// The remainder of the legal table (split to keep each literal array
    /// readable; both halves are fed to the same exhaustive check).
    const LEGAL_TAIL: [(LinkPhase, PhaseEvent, LinkPhase); 7] = [
        (P::Degrade, E::EnergyLow, P::Degrade),
        (P::Degrade, E::ProbesEmpty, P::Cooldown),
        (P::Degrade, E::EnergyCritical, P::Cooldown),
        (P::Degrade, E::Departed, P::Dead),
        (P::Degrade, E::BatteryDead, P::Dead),
        (P::Cooldown, E::CooldownRetry, P::Probe),
        (P::Cooldown, E::CooldownDrop, P::Dead),
    ];

    /// Cooldown also ends on departure or outright battery death.
    const LEGAL_COOLDOWN_EXITS: [(LinkPhase, PhaseEvent, LinkPhase); 2] = [
        (P::Cooldown, E::Departed, P::Dead),
        (P::Cooldown, E::BatteryDead, P::Dead),
    ];

    #[test]
    fn exhaustive_table() {
        let legal: Vec<_> = LEGAL
            .iter()
            .chain(&LEGAL_TAIL)
            .chain(&LEGAL_COOLDOWN_EXITS)
            .copied()
            .collect();
        for from in LinkPhase::ALL {
            for event in EVENTS {
                let expect = legal
                    .iter()
                    .find(|(f, e, _)| *f == from && *e == event)
                    .map(|&(_, _, to)| to);
                match (step(from, event), expect) {
                    (Ok(got), Some(want)) => {
                        assert_eq!(got, want, "{from:?} + {event:?}")
                    }
                    (Err(ill), None) => {
                        assert_eq!(ill, IllegalTransition { from, event });
                    }
                    (Ok(got), None) => {
                        panic!("{from:?} + {event:?} should be illegal, stepped to {got:?}")
                    }
                    (Err(_), Some(want)) => {
                        panic!("{from:?} + {event:?} should step to {want:?}, was rejected")
                    }
                }
            }
        }
    }

    #[test]
    fn dead_is_terminal() {
        for event in EVENTS {
            assert!(step(P::Dead, event).is_err(), "Dead must absorb nothing");
        }
    }

    #[test]
    fn happy_path_reaches_live() {
        let mut phase = LinkPhase::default();
        for event in [E::Admitted, E::ProbesOk, E::WarmedUp] {
            phase = step(phase, event).unwrap();
        }
        assert_eq!(phase, P::Live);
        assert!(phase.carries_traffic() && phase.on_air());
    }

    #[test]
    fn degrade_is_reversible_cooldown_is_a_fork() {
        let degraded = step(P::Live, E::EnergyLow).unwrap();
        assert_eq!(step(degraded, E::Recovered).unwrap(), P::Live);
        let cooled = step(degraded, E::EnergyCritical).unwrap();
        assert_eq!(step(cooled, E::CooldownRetry).unwrap(), P::Probe);
        assert_eq!(step(cooled, E::CooldownDrop).unwrap(), P::Dead);
    }

    #[test]
    fn phase_predicates_and_codes() {
        assert_eq!(PHASE_COUNT, LinkPhase::ALL.len());
        let mut seen = [false; PHASE_COUNT];
        for (i, p) in LinkPhase::ALL.iter().enumerate() {
            assert_eq!(p.index(), i, "ALL order must match index()");
            assert!(!seen[p.index()]);
            seen[p.index()] = true;
            assert!(!p.as_str().is_empty());
        }
        assert!(!P::Init.on_air() && !P::Cooldown.on_air() && !P::Dead.on_air());
        assert!(!P::Probe.carries_traffic() && !P::Cooldown.carries_traffic());
        assert!(P::Dead.is_terminal() && !P::Cooldown.is_terminal());
        let err = step(P::Dead, E::Admitted).unwrap_err();
        assert!(err.to_string().contains("dead"));
    }
}
