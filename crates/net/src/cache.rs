//! Incrementally maintained pairwise interference for large fleets.
//!
//! The fleet engine plans against the worst-case foreign-carrier power at
//! every victim receiver. Computed naively that is O(pairs²) transcendental
//! work per planning wave — the recompute that capped `experiments fleet`
//! at 8 pairs. This module keeps one *sum* per victim (flat arrays indexed
//! by pair id, structure-of-arrays style) and exploits two facts:
//!
//! 1. **Per-edge contributions are pure geometry.** The power pair `q`
//!    lands at victim `p`'s detector depends only on `q`'s endpoint
//!    positions, `p`'s receiver position and the (static) channel relation
//!    — so recomputing an edge always reproduces the same bits, and no
//!    per-edge state needs to be stored. (An earlier revision cached an
//!    O(pairs²) contribution matrix; at 10⁴ pairs that is ~800 MB of NaN
//!    bookkeeping whose page-fault traffic dwarfed the transcendental work
//!    it saved. The matrix-free layout is bit-identical because replaying
//!    a cached pure value and recomputing it are the same bits.)
//! 2. **Sums change rarely.** A victim's total only moves on pair death,
//!    an arbitration relation change, or a mobile pair's position refresh.
//!    Between those events the cached sum is returned untouched.
//!
//! **Bitwise contract.** A dirty sum is *recomputed over live sources in
//! pair-index order* — never maintained by running add/subtract — so it is
//! bit-identical to the brute-force rescan it replaces (floating-point
//! addition is neither associative nor reversible, but performing the same
//! adds in the same order is exact). The engine shadow-checks this in
//! debug builds.
//!
//! **Bulk rebuild.** [`PairGainCache::rebuild_all`] refreshes every dirty
//! sum in one pass over the flat arrays in pair-index order — the fleet
//! engine's planning-wave sweep calls it once per wave so the per-pair
//! lookups that follow are all O(1) clean hits. Because each victim's sum
//! is computed by the identical per-victim loop the lazy path runs, the
//! bulk path cannot move a bit. The bulk pass fans the selected victims
//! out over the `braidio-pool` workers (each sum is an independent pure
//! function of the wave's frozen geometry, merged back in victim index
//! order), so a planning wave scales across cores without changing a bit
//! — see DESIGN.md §12.
//!
//! **Tiled sweep.** Every path funnels into one accumulation loop
//! (the private `rebuild_one_tiled`) that gathers a victim's accepted
//! sources into [`EDGE_TILE`]-wide index tiles and hands each tile to the
//! edge kernel in one call ([`PairGainCache::rebuild_all_tiled`] passes
//! the engine's batched `EdgeKernel::carrier_tile`; the scalar
//! `rebuild_all`/`interference` entry points adapt per-edge closures onto
//! the same loop). Tiling changes *batching only*: edges are still
//! evaluated and accumulated serially in pair-index order, so the sums are
//! bit-identical to the scalar walk — what it buys is one FSPL-memo lock
//! acquisition per tile instead of per edge, and flat arrays the kernel's
//! distance pass can vectorize over.
//!
//! **Far-field cull.** Optionally, a spatial grid drops sources whose
//! contribution is provably below [`CULL_EPS_REL`] of the smallest detector
//! noise floor ([`cull_epsilon`]): free-space decay gives a closed-form
//! conservative cutoff distance ([`far_field_cutoff`]). The epsilon is
//! chosen so a *full fleet* of culled sources stays ~1e-9 of the noise
//! floor — far below every decision threshold in the model. Honest physics
//! note: with Braidio's link budget the conservative cutoff is on the order
//! of hundreds of kilometres (free-space d² decay versus nanowatt detector
//! noise floors), so in-room scenarios cull nothing and culled-vs-not runs
//! are byte-identical; the machinery matters for geographically dispersed
//! scenarios and is validated against brute force at any cutoff.

use crate::interference::EDGE_TILE;
use braidio_mac::coexistence::ChannelRelation;
use braidio_radio::characterization::{Characterization, Rate};
use braidio_radio::Mode;
use braidio_rfsim::geometry::Point;
use braidio_rfsim::pathloss::free_space_gain;
use braidio_telemetry as telemetry;
use braidio_units::{Meters, Watts};
use std::collections::HashMap;

/// Relative cull epsilon: a source may be dropped only when its worst-case
/// contribution is below this fraction of the smallest detector noise
/// floor. Conservative by construction — even `pairs` simultaneous culled
/// sources perturb the noise floor by less than `pairs × CULL_EPS_REL`.
pub const CULL_EPS_REL: f64 = 1e-9;

/// The absolute power floor of the cull: [`CULL_EPS_REL`] times the
/// smallest detector noise floor across all detector modes and rates.
pub fn cull_epsilon(ch: &Characterization) -> Watts {
    let mut noise_min = f64::INFINITY;
    for mode in [Mode::Passive, Mode::Backscatter] {
        for rate in Rate::ALL {
            if let Some(n) = ch.detector_noise(mode, rate) {
                noise_min = noise_min.min(n.watts());
            }
        }
    }
    Watts::new(CULL_EPS_REL * noise_min)
}

/// The conservative far-field cutoff: the distance beyond which a foreign
/// carrier's contribution is provably below [`cull_epsilon`] under the
/// worst case of every model knob (full carrier power, the strongest
/// channel-relation coupling, free-space-only decay). Sources farther than
/// this can never matter to any victim decision.
pub fn far_field_cutoff(ch: &Characterization) -> Meters {
    let eps = cull_epsilon(ch).watts();
    // Worst-case received fraction at distance d:
    //   carrier_rf · (λ/4πd)² · rx_antenna · frontend · max coupling.
    // `free_space_gain(1 m)` is (λ/4π)² in linear terms, so the cutoff is
    // the d where the product crosses eps.
    let coupling = ChannelRelation::CoChannel
        .noise_coupling()
        .linear()
        .max(ChannelRelation::AdjacentChannel.noise_coupling().linear());
    let fixed = ch.carrier_rf.watts()
        * ch.budget.rx_antenna_gain.linear()
        * (-ch.budget.detector_frontend_loss).linear()
        * coupling
        * free_space_gain(Meters::new(1.0), ch.budget.frequency).linear();
    Meters::new((fixed / eps).sqrt())
}

/// Far-field cull state: a cutoff plus per-victim candidate lists built
/// from a uniform spatial grid over pair endpoints. Lists are rebuilt
/// lazily after any position invalidation and always kept sorted, so the
/// culled sum still runs in pair-index order.
#[derive(Debug)]
struct Cull {
    cutoff: f64,
    near: Vec<Vec<u32>>,
    /// Degenerate common case: the bounding box of every endpoint fits
    /// inside one cutoff, so every source is a candidate for every victim.
    /// The lists are not materialized (at 10⁴ pairs they would be ~400 MB
    /// of `0..n` enumerations) and the sum walks `0..n` directly — the
    /// identical pair-index order a full sorted list would produce.
    all: bool,
    stale: bool,
}

/// The cached per-victim interference sums of one fleet.
///
/// Flat arrays indexed by pair id: `sum[victim]` holds the victim's total
/// worst-case foreign-carrier power, with a dirty flag per victim and a
/// fleet-wide `any_dirty` hint for the wave sweep. Callers supply the edge
/// physics as a closure — the cache is pure bookkeeping and owns no
/// positions, which keeps invalidation rules explicit:
///
/// * [`mark_dead`](Self::mark_dead) — a pair's session died: it leaves
///   every victim's sum (dead pairs never come back).
/// * [`set_live`](Self::set_live) — open-system row activation/retirement:
///   an admitted session joins the sums, a quiesced (Cooldown) one leaves
///   them, and either flip may later be reversed. Unlike `mark_dead` this
///   is two-way; like it, any flip dirties every sum.
/// * [`invalidate_pair`](Self::invalidate_pair) — a pair's geometry or
///   channel relation changed: every sum that might include it is dirty.
///
/// The cull's candidate lists are pure geometry — liveness is filtered at
/// sum time — so neither death nor a liveness flip stales them.
#[derive(Debug)]
pub struct PairGainCache {
    n: usize,
    sum: Vec<f64>,
    sum_dirty: Vec<bool>,
    live: Vec<bool>,
    /// How many entries of `sum_dirty` are set — the O(1) `any_dirty` hint.
    ndirty: usize,
    cull: Option<Cull>,
}

impl PairGainCache {
    /// A cache for `n` pairs, everything stale, everyone live, no cull.
    pub fn new(n: usize) -> Self {
        PairGainCache {
            n,
            sum: vec![0.0; n],
            sum_dirty: vec![true; n],
            live: vec![true; n],
            ndirty: n,
            cull: None,
        }
    }

    /// A cache with the far-field cull enabled at the given cutoff.
    pub fn with_cull(n: usize, cutoff: Meters) -> Self {
        let mut c = Self::new(n);
        c.cull = Some(Cull {
            cutoff: cutoff.meters(),
            near: vec![Vec::new(); n],
            all: false,
            stale: true,
        });
        c
    }

    /// Is pair `q` still contributing to sums?
    pub fn is_live(&self, q: usize) -> bool {
        self.live[q]
    }

    /// Does any victim's sum need a rebuild? The engine's wave sweep polls
    /// this to decide whether a bulk [`rebuild_all`](Self::rebuild_all)
    /// pass has anything to do.
    pub fn any_dirty(&self) -> bool {
        self.ndirty > 0
    }

    /// How many victims' sums currently need a rebuild. A fleet-wide gauge
    /// for the time-series sampler: high `ndirty` means mobility or churn
    /// has been invalidating faster than waves rebuild.
    pub fn ndirty(&self) -> usize {
        self.ndirty
    }

    /// Pair `q`'s session died: drop it from every victim's sum.
    pub fn mark_dead(&mut self, q: usize) {
        if !self.live[q] {
            return;
        }
        self.live[q] = false;
        for d in self.sum_dirty.iter_mut() {
            *d = true;
        }
        self.ndirty = self.n;
    }

    /// Open-system row activation/retirement: make pair `q` contribute to
    /// (or leave) every victim's sum. A no-op when the liveness bit already
    /// matches — so closed scenarios, which never flip, pay nothing.
    pub fn set_live(&mut self, q: usize, live: bool) {
        if self.live[q] == live {
            return;
        }
        self.live[q] = live;
        for d in self.sum_dirty.iter_mut() {
            *d = true;
        }
        self.ndirty = self.n;
    }

    /// Pair `p` moved (or its channel relation changed): every sum that
    /// might include it is dirty, and the cull candidate lists are stale.
    pub fn invalidate_pair(&mut self, _p: usize) {
        for d in self.sum_dirty.iter_mut() {
            *d = true;
        }
        self.ndirty = self.n;
        if let Some(cull) = &mut self.cull {
            cull.stale = true;
        }
    }

    /// The victim's sum, only if it is clean. The wave sweep reads freshly
    /// bulk-rebuilt sums through this without touching the dirty flags; a
    /// `None` (victim skipped or re-dirtied mid-sweep) means the value must
    /// come from the lazy [`interference`](Self::interference) path.
    pub fn cached_sum(&self, victim: usize) -> Option<Watts> {
        (!self.sum_dirty[victim]).then(|| Watts::new(self.sum[victim]))
    }

    /// The victim's current candidate source list under the cull, if one is
    /// active, built, and actually filtering (for tests and diagnostics).
    /// `None` also covers the degenerate everyone-in-range case, where no
    /// lists are materialized and the sum walks `0..n` directly.
    pub fn cull_candidates(&self, victim: usize) -> Option<&[u32]> {
        self.cull
            .as_ref()
            .filter(|c| !c.stale && !c.all)
            .map(|c| c.near[victim].as_slice())
    }

    /// The worst-case foreign-carrier power at `victim`'s receiver.
    ///
    /// `endpoints(q)` returns pair `q`'s current `(tx, rx)` positions (used
    /// only to rebuild cull candidate lists); `edge(q)` computes source
    /// `q`'s contribution at this victim. On a clean sum neither closure is
    /// called. A dirty sum recomputes the live sources' contributions in
    /// pair-index order — bit-identical to the brute-force rescan.
    pub fn interference<P, E>(&mut self, victim: usize, endpoints: P, mut edge: E) -> Watts
    where
        P: Fn(usize) -> (Point, Point),
        E: FnMut(usize) -> Watts,
    {
        if let Some(cull) = self.cull.as_mut() {
            if cull.stale {
                rebuild_candidates(cull, self.n, &endpoints);
            }
        }
        if !self.sum_dirty[victim] {
            telemetry::count("net.interference.sum_reuse");
            return Watts::new(self.sum[victim]);
        }
        telemetry::count("net.interference.sum_rebuild");
        let acc = Self::rebuild_one(victim, self.n, &self.live, &self.cull, &mut edge);
        self.sum[victim] = acc.watts();
        self.sum_dirty[victim] = false;
        self.ndirty -= 1;
        acc
    }

    /// Refresh every dirty sum the filter selects, in pair-index order, in
    /// one pass over the flat arrays. `keep(v)` gates which victims are
    /// worth rebuilding (the engine skips dead and mobile pairs — mobility
    /// refreshes positions lazily at event time, so those sums fall back to
    /// the per-victim lazy path); `edge(v, q)` computes source `q`'s
    /// contribution at victim `v`. Each victim's sum is produced by the
    /// same per-victim loop the lazy path runs, so the bulk path is
    /// bit-identical to demand-driven rebuilds.
    ///
    /// The victim fan-out runs on the work pool: each selected victim's sum
    /// is an independent pure function of the (frozen-for-the-wave)
    /// geometry, computed by the shared per-victim loop and written back in
    /// victim index order — so the result is identical at any thread count,
    /// and `edge` must be `Fn + Sync` (pure geometry, which every caller
    /// passes anyway).
    pub fn rebuild_all<K, P, E>(&mut self, keep: K, endpoints: P, edge: E)
    where
        K: Fn(usize) -> bool,
        P: Fn(usize) -> (Point, Point),
        E: Fn(usize, usize) -> Watts + Sync,
    {
        // Scalar adapter over the tiled sweep: fill each tile lane with the
        // per-edge closure, in lane order — the identical edge evaluation
        // and accumulation sequence, so existing callers move no bits.
        self.rebuild_all_tiled(keep, endpoints, |v, qs: &[u32], out: &mut [Watts]| {
            for (o, &q) in out.iter_mut().zip(qs) {
                *o = edge(v, q as usize);
            }
        });
    }

    /// The tiled form of [`rebuild_all`](Self::rebuild_all): the engine's
    /// wave sweep passes a tile kernel `edge_tile(v, qs, out)` that fills
    /// `out[i]` with source `qs[i]`'s contribution at victim `v` (at most
    /// [`EDGE_TILE`] lanes per call, `qs` ascending in pair-index order).
    /// The cache gathers each victim's accepted sources into index tiles,
    /// invokes the kernel per tile, and accumulates the returned
    /// contributions serially in lane order — so the noncoherent sum is
    /// performed in exactly the per-edge pair-index order of the scalar
    /// path, whatever the kernel vectorizes internally.
    ///
    /// The victim fan-out runs on the work pool: each selected victim's sum
    /// is an independent pure function of the (frozen-for-the-wave)
    /// geometry, computed by the shared per-victim loop and written back in
    /// victim index order — so the result is identical at any thread count,
    /// and `edge_tile` must be `Fn + Sync` (pure geometry, which every
    /// caller passes anyway).
    pub fn rebuild_all_tiled<K, P, E>(&mut self, keep: K, endpoints: P, edge_tile: E)
    where
        K: Fn(usize) -> bool,
        P: Fn(usize) -> (Point, Point),
        E: Fn(usize, &[u32], &mut [Watts]) + Sync,
    {
        if self.ndirty == 0 {
            return;
        }
        if let Some(cull) = self.cull.as_mut() {
            if cull.stale {
                rebuild_candidates(cull, self.n, &endpoints);
            }
        }
        // Victim selection stays serial and in pair-index order; only the
        // per-victim sums fan out.
        let victims: Vec<usize> = (0..self.n)
            .filter(|&v| self.sum_dirty[v] && keep(v))
            .collect();
        let (n, live, cull) = (self.n, &self.live, &self.cull);
        let sums = braidio_pool::par_map_indexed_with_chunk(
            victims.len(),
            braidio_pool::default_chunk(victims.len()),
            |i| {
                let v = victims[i];
                telemetry::count("net.interference.sum_rebuild");
                Self::rebuild_one_tiled(v, n, live, cull, &mut |qs, out| edge_tile(v, qs, out))
                    .watts()
            },
        );
        for (&v, s) in victims.iter().zip(sums) {
            self.sum[v] = s;
            self.sum_dirty[v] = false;
            self.ndirty -= 1;
        }
    }

    /// Scalar per-edge entry to the shared loop, used by the lazy
    /// [`interference`](Self::interference) path: each tile lane is filled
    /// by one `edge(q)` call in lane order, so the edge evaluation sequence
    /// is exactly the pre-tiling one.
    fn rebuild_one(
        victim: usize,
        n: usize,
        live: &[bool],
        cull: &Option<Cull>,
        mut edge: impl FnMut(usize) -> Watts,
    ) -> Watts {
        Self::rebuild_one_tiled(victim, n, live, cull, &mut |qs, out| {
            for (o, &q) in out.iter_mut().zip(qs) {
                *o = edge(q as usize);
            }
        })
    }

    /// One victim's sum: live sources in pair-index order (the cull's
    /// candidate lists are sorted, so the culled walk keeps that order),
    /// gathered into [`EDGE_TILE`]-wide index tiles for the edge kernel and
    /// accumulated serially in lane order. This is the single accumulation
    /// loop the lazy, bulk-scalar and bulk-tiled paths all share — the
    /// bitwise contract lives here.
    fn rebuild_one_tiled(
        victim: usize,
        n: usize,
        live: &[bool],
        cull: &Option<Cull>,
        edge_tile: &mut impl FnMut(&[u32], &mut [Watts]),
    ) -> Watts {
        fn flush<F: FnMut(&[u32], &mut [Watts])>(
            qs: &[u32],
            ws: &mut [Watts],
            edge_tile: &mut F,
            acc: &mut Watts,
        ) {
            telemetry::count_by("net.interference.edge_recompute", qs.len() as u64);
            edge_tile(qs, ws);
            // The noncoherent sum stays serial, in pair-index order.
            for w in ws.iter() {
                *acc += *w;
            }
        }
        fn sweep<I, F>(candidates: I, victim: usize, live: &[bool], edge_tile: &mut F) -> Watts
        where
            I: Iterator<Item = u32>,
            F: FnMut(&[u32], &mut [Watts]),
        {
            let mut acc = Watts::new(0.0);
            let mut qs = [0u32; EDGE_TILE];
            let mut ws = [Watts::ZERO; EDGE_TILE];
            let mut fill = 0usize;
            for q in candidates {
                if q as usize == victim || !live[q as usize] {
                    continue;
                }
                qs[fill] = q;
                fill += 1;
                if fill == EDGE_TILE {
                    flush(&qs, &mut ws, edge_tile, &mut acc);
                    fill = 0;
                }
            }
            if fill > 0 {
                flush(&qs[..fill], &mut ws[..fill], edge_tile, &mut acc);
            }
            acc
        }
        match cull {
            Some(c) if !c.all => sweep(c.near[victim].iter().copied(), victim, live, edge_tile),
            // No cull, or a cull whose cutoff covers the whole scene: the
            // full pair-index walk (identical order either way).
            _ => sweep(0..n as u32, victim, live, edge_tile),
        }
    }
}

/// Rebuild every victim's sorted candidate list: bucket both endpoints of
/// each pair into cutoff-sized grid cells, then for each victim collect the
/// pairs in the 3×3 neighbourhood of its receiver cell and keep those whose
/// *nearest* endpoint is within the cutoff (exactly the endpoint the engine
/// radiates the worst-case carrier from).
fn rebuild_candidates<P>(cull: &mut Cull, n: usize, endpoints: &P)
where
    P: Fn(usize) -> (Point, Point),
{
    let c = cull.cutoff;
    // Degenerate case first: if the whole scene's bounding-box diagonal is
    // within the cutoff, no source can ever be culled for any victim. Every
    // in-room and street-scale scenario lands here (the conservative cutoff
    // is on the order of hundreds of kilometres), so don't materialize 10⁴
    // copies of `0..n` — mark the cull transparent and let the sum walk the
    // flat arrays directly.
    let (mut lo_x, mut lo_y) = (f64::INFINITY, f64::INFINITY);
    let (mut hi_x, mut hi_y) = (f64::NEG_INFINITY, f64::NEG_INFINITY);
    for q in 0..n {
        let (a, b) = endpoints(q);
        for p in [a, b] {
            lo_x = lo_x.min(p.x);
            lo_y = lo_y.min(p.y);
            hi_x = hi_x.max(p.x);
            hi_y = hi_y.max(p.y);
        }
    }
    let diag2 = (hi_x - lo_x).powi(2) + (hi_y - lo_y).powi(2);
    if n > 0 && diag2 <= c * c {
        cull.all = true;
        for near in &mut cull.near {
            near.clear();
        }
        cull.stale = false;
        return;
    }
    cull.all = false;
    let cell = |p: Point| ((p.x / c).floor() as i64, (p.y / c).floor() as i64);
    let mut grid: HashMap<(i64, i64), Vec<u32>> = HashMap::new();
    for q in 0..n {
        let (a, b) = endpoints(q);
        grid.entry(cell(a)).or_default().push(q as u32);
        let cb = cell(b);
        if cb != cell(a) {
            grid.entry(cb).or_default().push(q as u32);
        }
    }
    for v in 0..n {
        let victim = endpoints(v).1;
        let (cx, cy) = cell(victim);
        let near = &mut cull.near[v];
        near.clear();
        for dx in -1..=1 {
            for dy in -1..=1 {
                if let Some(bucket) = grid.get(&(cx + dx, cy + dy)) {
                    near.extend_from_slice(bucket);
                }
            }
        }
        near.sort_unstable();
        near.dedup();
        near.retain(|&q| {
            if q as usize == v {
                return false;
            }
            let (a, b) = endpoints(q as usize);
            let keep = a.distance(victim).min(b.distance(victim)) <= Meters::new(c);
            if !keep {
                telemetry::count("net.interference.cull_drop");
            }
            keep
        });
    }
    cull.stale = false;
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ch() -> Characterization {
        Characterization::braidio()
    }

    /// A line of pair midpoints with the given spacing; pair endpoints sit
    /// 0.5 m apart across the line.
    fn layout(n: usize, spacing: f64) -> Vec<(Point, Point)> {
        (0..n)
            .map(|i| {
                let x = i as f64 * spacing;
                (Point::new(x, 0.0), Point::new(x, 0.5))
            })
            .collect()
    }

    fn edge_fn(eps: &[(Point, Point)], victim: usize) -> impl Fn(usize) -> Watts + '_ {
        // A distinctive, distance-decaying fake physics: enough to detect
        // any ordering or caching slip bit-for-bit.
        let vp = eps[victim].1;
        move |q: usize| {
            let (a, b) = eps[q];
            let d = a.distance(vp).min(b.distance(vp)).meters();
            Watts::new(1e-9 / (1.0 + d * d))
        }
    }

    fn brute(eps: &[(Point, Point)], live: &[bool], victim: usize) -> Watts {
        let edge = edge_fn(eps, victim);
        let mut acc = Watts::new(0.0);
        for (q, &alive) in live.iter().enumerate() {
            if q == victim || !alive {
                continue;
            }
            acc += edge(q);
        }
        acc
    }

    #[test]
    fn cached_sum_matches_brute_force_bitwise() {
        let eps = layout(7, 3.0);
        let mut cache = PairGainCache::new(7);
        let live = vec![true; 7];
        for v in 0..7 {
            let got = cache.interference(v, |q| eps[q], edge_fn(&eps, v));
            assert_eq!(
                got.watts().to_bits(),
                brute(&eps, &live, v).watts().to_bits()
            );
            // Second call reuses the clean sum.
            let again = cache.interference(v, |q| eps[q], |_| panic!("sum was clean"));
            assert_eq!(again.watts().to_bits(), got.watts().to_bits());
        }
    }

    #[test]
    fn death_and_invalidation_track_brute_force() {
        let mut eps = layout(6, 2.0);
        let mut live = vec![true; 6];
        let mut cache = PairGainCache::new(6);
        // Warm.
        for v in 0..6 {
            cache.interference(v, |q| eps[q], edge_fn(&eps, v));
        }
        assert!(!cache.any_dirty(), "warm cache should be clean");
        // Kill pair 2.
        live[2] = false;
        cache.mark_dead(2);
        assert!(cache.any_dirty());
        for v in 0..6 {
            let got = cache.interference(v, |q| eps[q], edge_fn(&eps, v));
            assert_eq!(
                got.watts().to_bits(),
                brute(&eps, &live, v).watts().to_bits()
            );
        }
        // Move pair 4.
        eps[4] = (Point::new(1.7, 0.3), Point::new(1.7, 0.9));
        cache.invalidate_pair(4);
        for v in 0..6 {
            let got = cache.interference(v, |q| eps[q], edge_fn(&eps, v));
            assert_eq!(
                got.watts().to_bits(),
                brute(&eps, &live, v).watts().to_bits()
            );
        }
    }

    #[test]
    fn set_live_is_a_reversible_mark_dead() {
        let eps = layout(5, 2.0);
        let mut live = vec![true; 5];
        let mut cache = PairGainCache::new(5);
        // Rows 1 and 3 start retired (open-system pairs before admission).
        for q in [1, 3] {
            live[q] = false;
            cache.set_live(q, false);
        }
        for v in 0..5 {
            let got = cache.interference(v, |q| eps[q], edge_fn(&eps, v));
            assert_eq!(
                got.watts().to_bits(),
                brute(&eps, &live, v).watts().to_bits()
            );
        }
        // Admission re-activates row 3; sums must match brute force again.
        live[3] = true;
        cache.set_live(3, true);
        assert!(cache.any_dirty());
        for v in 0..5 {
            let got = cache.interference(v, |q| eps[q], edge_fn(&eps, v));
            assert_eq!(
                got.watts().to_bits(),
                brute(&eps, &live, v).watts().to_bits()
            );
        }
        // Matching flip is a no-op: nothing re-dirtied.
        cache.set_live(3, true);
        assert!(!cache.any_dirty());
    }

    #[test]
    fn bulk_rebuild_matches_lazy_path_bitwise() {
        // Two identical caches; one warmed by the bulk wave sweep, one by
        // per-victim lazy calls. Every sum must agree bit-for-bit, and the
        // bulk-warmed cache must serve clean O(1) hits afterwards.
        let eps = layout(11, 2.5);
        let mut bulk = PairGainCache::new(11);
        let mut lazy = PairGainCache::new(11);
        bulk.rebuild_all(|_| true, |q| eps[q], |v, q| edge_fn(&eps, v)(q));
        assert!(!bulk.any_dirty());
        for v in 0..11 {
            let a = bulk.interference(v, |q| eps[q], |_| panic!("bulk sum was clean"));
            let b = lazy.interference(v, |q| eps[q], edge_fn(&eps, v));
            assert_eq!(a.watts().to_bits(), b.watts().to_bits(), "victim {v}");
        }
        // A filtered bulk pass leaves the skipped victim dirty (and says so).
        bulk.mark_dead(3);
        lazy.mark_dead(3);
        bulk.rebuild_all(|v| v != 7, |q| eps[q], |v, q| edge_fn(&eps, v)(q));
        assert!(bulk.any_dirty(), "skipped victim must keep the hint set");
        let a = bulk.interference(7, |q| eps[q], edge_fn(&eps, 7));
        let b = lazy.interference(7, |q| eps[q], edge_fn(&eps, 7));
        assert_eq!(a.watts().to_bits(), b.watts().to_bits());
    }

    #[test]
    fn tiled_rebuild_matches_scalar_bitwise() {
        // A tile kernel that fills lanes with the scalar physics must land
        // on exactly the scalar sums, across tile-boundary sizes (n-1
        // sources: one short tile, exactly EDGE_TILE, full + remainder).
        for n in [5, EDGE_TILE + 1, 2 * EDGE_TILE + 7] {
            let eps = layout(n, 1.5);
            let mut tiled = PairGainCache::new(n);
            let mut scalar = PairGainCache::new(n);
            tiled.rebuild_all_tiled(
                |_| true,
                |q| eps[q],
                |v, qs: &[u32], out: &mut [Watts]| {
                    assert!(qs.len() <= EDGE_TILE && qs.len() == out.len());
                    let edge = edge_fn(&eps, v);
                    for (o, &q) in out.iter_mut().zip(qs) {
                        *o = edge(q as usize);
                    }
                },
            );
            scalar.rebuild_all(|_| true, |q| eps[q], |v, q| edge_fn(&eps, v)(q));
            for v in 0..n {
                let a = tiled.cached_sum(v).expect("tiled sweep cleaned all");
                let b = scalar.cached_sum(v).expect("scalar sweep cleaned all");
                assert_eq!(a.watts().to_bits(), b.watts().to_bits(), "victim {v}/{n}");
            }
        }
    }

    #[test]
    fn cull_matches_filtered_brute_force_bitwise() {
        // A synthetic cutoff small enough to actually drop sources: the
        // culled sum must equal the brute sum over the kept set, bitwise.
        let eps = layout(9, 4.0);
        let cutoff = Meters::new(9.0); // keeps ±2 neighbours on the line
        let mut cache = PairGainCache::with_cull(9, cutoff);
        for v in 0..9 {
            let got = cache.interference(v, |q| eps[q], edge_fn(&eps, v));
            let edge = edge_fn(&eps, v);
            let vp = eps[v].1;
            let mut expect = Watts::new(0.0);
            for (q, &(a, b)) in eps.iter().enumerate() {
                if q == v || a.distance(vp).min(b.distance(vp)) > cutoff {
                    continue;
                }
                expect += edge(q);
            }
            assert_eq!(got.watts().to_bits(), expect.watts().to_bits());
            let kept = cache.cull_candidates(v).expect("cull built").len();
            assert!(kept < 8, "victim {v} kept {kept}, cull was vacuous");
        }
    }

    #[test]
    fn conservative_cutoff_is_far_field_only() {
        // The honest-physics check: with Braidio's link budget the
        // conservative cutoff is way beyond any room (d² decay versus a
        // nanowatt-scale detector noise floor), so in-room scenarios must
        // not cull anything.
        let cutoff = far_field_cutoff(&ch());
        assert!(
            cutoff.meters() > 1_000.0,
            "cutoff {cutoff} culls in plausible deployments — revisit CULL_EPS_REL"
        );
        // And it is finite and usable as a grid cell size.
        assert!(cutoff.meters().is_finite());
    }

    #[test]
    fn cutoff_contribution_is_below_epsilon() {
        // A worst-case source exactly at the cutoff contributes ≤ epsilon.
        let ch = ch();
        let d = far_field_cutoff(&ch);
        let w = ch
            .carrier_rf
            .gained(free_space_gain(d, ch.budget.frequency))
            .gained(ch.budget.rx_antenna_gain)
            .gained(-ch.budget.detector_frontend_loss)
            .gained(ChannelRelation::AdjacentChannel.noise_coupling());
        assert!(w.watts() <= cull_epsilon(&ch).watts() * (1.0 + 1e-9));
    }
}
