//! Fleet-level results: per-pair goodput, per-device lifetime and carrier
//! duty, the Jain fairness index over the fleet, and — for open-system
//! runs — steady-state churn metrics ([`ChurnReport`]).

use crate::lifecycle::{LinkPhase, PHASE_COUNT};
use braidio_radio::Mode;
use braidio_units::{Joules, Seconds};

/// Jain's fairness index over a set of allocations:
/// `(Σxᵢ)² / (n · Σxᵢ²)`, in `(0, 1]`. An all-equal fleet scores 1; a
/// fleet where one pair hogs everything scores `1/n`. All-zero (nothing
/// moved at all) is defined as perfectly fair.
pub fn jain_fairness(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        return 1.0;
    }
    let sum: f64 = xs.iter().sum();
    let sq: f64 = xs.iter().map(|x| x * x).sum();
    if sq == 0.0 {
        return 1.0;
    }
    sum * sum / (xs.len() as f64 * sq)
}

/// The outcome of one fleet simulation.
#[derive(Debug, Clone)]
pub struct FleetReport {
    /// The configured time horizon.
    pub horizon: Seconds,
    /// Simulated time: the horizon if the run was truncated by it, else the
    /// time of the last delivered event.
    pub end_time: Seconds,
    /// Events delivered by the kernel.
    pub events: u64,
    /// Re-plan rounds executed across all pairs.
    pub replans: u64,
    /// Link bits moved per pair.
    pub pair_bits: Vec<f64>,
    /// Bits per mode, per pair.
    pub pair_mode_bits: Vec<[(Mode, f64); 3]>,
    /// Virtual time at which each pair's session died (battery exhausted or
    /// no viable mode), if it did.
    pub pair_dead_at: Vec<Option<Seconds>>,
    /// Energy drawn from each device.
    pub device_spent: Vec<Joules>,
    /// Virtual time at which each device's battery died, if it did.
    pub device_dead_at: Vec<Option<Seconds>>,
    /// Time each device spent with its carrier (or active radio) radiating
    /// during data transfer.
    pub device_carrier_time: Vec<Seconds>,
    /// Steady-state churn metrics; present iff the scenario was an open
    /// system ([`crate::FleetScenario::open_system`]).
    pub churn: Option<ChurnReport>,
}

/// Steady-state metrics of one open-system run. A closed run-to-completion
/// total makes no sense for a system with churn: sessions overlap the
/// horizon on both ends, so the interesting quantities are rates and
/// occupancies, measured either over the whole run (admissions, deaths) or
/// over the trailing [`crate::ChurnConfig::window`] (goodput, fairness),
/// by which time the arrival and departure flows have equilibrated.
#[derive(Debug, Clone)]
pub struct ChurnReport {
    /// The sliding steady-state window (the run's last `window` seconds).
    pub window: Seconds,
    /// Session rows in the roster (roam legs count separately).
    pub sessions: usize,
    /// Sessions admitted by a hub beacon before the horizon.
    pub admitted: usize,
    /// Sessions that departed gracefully (dwell ended while alive).
    pub departed: usize,
    /// Sessions that died (battery, no viable mode, or gave up).
    pub died: usize,
    /// Roam handoffs completed: second legs of a roaming session that
    /// were admitted.
    pub roams: usize,
    /// Per-admitted-session admission latency (arrival → beacon + detector
    /// chain), in pair-index order — the raw series behind the histogram.
    pub admission_latency: Vec<Seconds>,
    /// Total session-seconds spent in each phase, indexed by
    /// [`LinkPhase::index`], accumulated over every session from its
    /// arrival (or t = 0) to the end of the run.
    pub phase_time: [f64; PHASE_COUNT],
    /// Median lifetime of sessions that ended before the horizon
    /// (admission → death/departure), if any ended.
    pub session_half_life: Option<Seconds>,
    /// Link bits each pair moved inside the steady-state window.
    pub window_bits: Vec<f64>,
}

impl ChurnReport {
    /// Mean admission latency, seconds.
    pub fn mean_admission_latency(&self) -> f64 {
        if self.admission_latency.is_empty() {
            return 0.0;
        }
        let sum: f64 = self.admission_latency.iter().map(|s| s.seconds()).sum();
        sum / self.admission_latency.len() as f64
    }

    /// Fraction of accumulated session-time spent in `phase`.
    pub fn phase_share(&self, phase: LinkPhase) -> f64 {
        let total: f64 = self.phase_time.iter().sum();
        if total <= 0.0 {
            return 0.0;
        }
        self.phase_time[phase.index()] / total
    }

    /// Fleet goodput over the steady-state window, bit/s.
    pub fn window_goodput(&self) -> f64 {
        if self.window.seconds() <= 0.0 {
            return 0.0;
        }
        self.window_bits.iter().sum::<f64>() / self.window.seconds()
    }

    /// Jain fairness over the window, counting only sessions that moved
    /// bits inside it (idle rows — not yet arrived, already gone — would
    /// otherwise drown the index in zeros).
    pub fn window_fairness(&self) -> f64 {
        let active: Vec<f64> = self
            .window_bits
            .iter()
            .copied()
            .filter(|&b| b > 0.0)
            .collect();
        jain_fairness(&active)
    }
}

impl FleetReport {
    /// Total link bits moved by the whole fleet.
    pub fn total_bits(&self) -> f64 {
        self.pair_bits.iter().sum()
    }

    /// Goodput of one pair over the simulated interval, bit/s.
    pub fn pair_goodput(&self, pair: usize) -> f64 {
        if self.end_time.seconds() <= 0.0 {
            return 0.0;
        }
        self.pair_bits[pair] / self.end_time.seconds()
    }

    /// Mean goodput per pair, bit/s.
    pub fn goodput_per_pair(&self) -> f64 {
        if self.pair_bits.is_empty() {
            return 0.0;
        }
        self.total_bits()
            / self.end_time.seconds().max(f64::MIN_POSITIVE)
            / self.pair_bits.len() as f64
    }

    /// Jain fairness over the pairs' delivered bits.
    pub fn fairness(&self) -> f64 {
        jain_fairness(&self.pair_bits)
    }

    /// The fleet-wide fraction of bits carried by `mode`.
    pub fn mode_share(&self, mode: Mode) -> f64 {
        let total = self.total_bits();
        if total == 0.0 {
            return 0.0;
        }
        let m: f64 = self
            .pair_mode_bits
            .iter()
            .flat_map(|mb| mb.iter())
            .filter(|(m, _)| *m == mode)
            .map(|(_, b)| b)
            .sum();
        m / total
    }

    /// How long a device lived: its battery-death time, or the simulated
    /// interval if it survived.
    pub fn device_lifetime(&self, device: usize) -> Seconds {
        self.device_dead_at[device].unwrap_or(self.end_time)
    }

    /// Fraction of the simulated interval a device spent radiating.
    pub fn carrier_duty(&self, device: usize) -> f64 {
        if self.end_time.seconds() <= 0.0 {
            return 0.0;
        }
        (self.device_carrier_time[device] / self.end_time).clamp(0.0, 1.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn jain_bounds() {
        assert_eq!(jain_fairness(&[]), 1.0);
        assert_eq!(jain_fairness(&[0.0, 0.0]), 1.0);
        assert!((jain_fairness(&[5.0, 5.0, 5.0]) - 1.0).abs() < 1e-12);
        // One hog among n: 1/n.
        assert!((jain_fairness(&[1.0, 0.0, 0.0, 0.0]) - 0.25).abs() < 1e-12);
        // Monotone between the extremes.
        let a = jain_fairness(&[3.0, 1.0]);
        let b = jain_fairness(&[2.0, 2.0]);
        assert!(a < b);
    }

    #[test]
    fn churn_report_derived_metrics() {
        let mut phase_time = [0.0; PHASE_COUNT];
        phase_time[LinkPhase::Live.index()] = 30.0;
        phase_time[LinkPhase::Init.index()] = 10.0;
        let r = ChurnReport {
            window: Seconds::new(10.0),
            sessions: 3,
            admitted: 2,
            departed: 1,
            died: 1,
            roams: 0,
            admission_latency: vec![Seconds::new(0.2), Seconds::new(0.4)],
            phase_time,
            session_half_life: Some(Seconds::new(12.0)),
            window_bits: vec![500.0, 0.0, 1500.0],
        };
        assert!((r.mean_admission_latency() - 0.3).abs() < 1e-12);
        assert!((r.phase_share(LinkPhase::Live) - 0.75).abs() < 1e-12);
        assert_eq!(r.phase_share(LinkPhase::Dead), 0.0);
        assert!((r.window_goodput() - 200.0).abs() < 1e-12);
        // Fairness ignores the idle row: two active sessions at 500/1500.
        assert!((r.window_fairness() - jain_fairness(&[500.0, 1500.0])).abs() < 1e-12);
    }
}
