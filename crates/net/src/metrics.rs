//! Fleet-level results: per-pair goodput, per-device lifetime and carrier
//! duty, and the Jain fairness index over the fleet.

use braidio_radio::Mode;
use braidio_units::{Joules, Seconds};

/// Jain's fairness index over a set of allocations:
/// `(Σxᵢ)² / (n · Σxᵢ²)`, in `(0, 1]`. An all-equal fleet scores 1; a
/// fleet where one pair hogs everything scores `1/n`. All-zero (nothing
/// moved at all) is defined as perfectly fair.
pub fn jain_fairness(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        return 1.0;
    }
    let sum: f64 = xs.iter().sum();
    let sq: f64 = xs.iter().map(|x| x * x).sum();
    if sq == 0.0 {
        return 1.0;
    }
    sum * sum / (xs.len() as f64 * sq)
}

/// The outcome of one fleet simulation.
#[derive(Debug, Clone)]
pub struct FleetReport {
    /// The configured time horizon.
    pub horizon: Seconds,
    /// Simulated time: the horizon if the run was truncated by it, else the
    /// time of the last delivered event.
    pub end_time: Seconds,
    /// Events delivered by the kernel.
    pub events: u64,
    /// Re-plan rounds executed across all pairs.
    pub replans: u64,
    /// Link bits moved per pair.
    pub pair_bits: Vec<f64>,
    /// Bits per mode, per pair.
    pub pair_mode_bits: Vec<[(Mode, f64); 3]>,
    /// Virtual time at which each pair's session died (battery exhausted or
    /// no viable mode), if it did.
    pub pair_dead_at: Vec<Option<Seconds>>,
    /// Energy drawn from each device.
    pub device_spent: Vec<Joules>,
    /// Virtual time at which each device's battery died, if it did.
    pub device_dead_at: Vec<Option<Seconds>>,
    /// Time each device spent with its carrier (or active radio) radiating
    /// during data transfer.
    pub device_carrier_time: Vec<Seconds>,
}

impl FleetReport {
    /// Total link bits moved by the whole fleet.
    pub fn total_bits(&self) -> f64 {
        self.pair_bits.iter().sum()
    }

    /// Goodput of one pair over the simulated interval, bit/s.
    pub fn pair_goodput(&self, pair: usize) -> f64 {
        if self.end_time.seconds() <= 0.0 {
            return 0.0;
        }
        self.pair_bits[pair] / self.end_time.seconds()
    }

    /// Mean goodput per pair, bit/s.
    pub fn goodput_per_pair(&self) -> f64 {
        if self.pair_bits.is_empty() {
            return 0.0;
        }
        self.total_bits()
            / self.end_time.seconds().max(f64::MIN_POSITIVE)
            / self.pair_bits.len() as f64
    }

    /// Jain fairness over the pairs' delivered bits.
    pub fn fairness(&self) -> f64 {
        jain_fairness(&self.pair_bits)
    }

    /// The fleet-wide fraction of bits carried by `mode`.
    pub fn mode_share(&self, mode: Mode) -> f64 {
        let total = self.total_bits();
        if total == 0.0 {
            return 0.0;
        }
        let m: f64 = self
            .pair_mode_bits
            .iter()
            .flat_map(|mb| mb.iter())
            .filter(|(m, _)| *m == mode)
            .map(|(_, b)| b)
            .sum();
        m / total
    }

    /// How long a device lived: its battery-death time, or the simulated
    /// interval if it survived.
    pub fn device_lifetime(&self, device: usize) -> Seconds {
        self.device_dead_at[device].unwrap_or(self.end_time)
    }

    /// Fraction of the simulated interval a device spent radiating.
    pub fn carrier_duty(&self, device: usize) -> f64 {
        if self.end_time.seconds() <= 0.0 {
            return 0.0;
        }
        (self.device_carrier_time[device] / self.end_time).clamp(0.0, 1.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn jain_bounds() {
        assert_eq!(jain_fairness(&[]), 1.0);
        assert_eq!(jain_fairness(&[0.0, 0.0]), 1.0);
        assert!((jain_fairness(&[5.0, 5.0, 5.0]) - 1.0).abs() < 1e-12);
        // One hog among n: 1/n.
        assert!((jain_fairness(&[1.0, 0.0, 0.0, 0.0]) - 0.25).abs() < 1e-12);
        // Monotone between the extremes.
        let a = jain_fairness(&[3.0, 1.0]);
        let b = jain_fairness(&[2.0, 2.0]);
        assert!(a < b);
    }
}
