//! Beacon/passive-listen discovery: how an undiscovered tag joins a hub.
//!
//! Braidio's asymmetric-energy story (§ 5.3 of the paper, `mac::wakeup`)
//! prices exactly this phase: an idle tag keeps only the passive wake-up
//! detector powered (~50 µW front-end chain) while the mains-class hub
//! periodically beacons. A tag that walks into the room therefore pays
//! *detector-only* power from its arrival until the first hub beacon it
//! can hear, plus the detector chain's latency — and nothing else. The
//! admission instant and the idle energy are pure functions of the
//! arrival time and the hub's beacon schedule, so an open-system run can
//! compute both at event-schedule time without ever simulating the
//! beacons individually.
//!
//! Hubs deliberately do **not** share a beacon phase: each hub's schedule
//! is offset by a deterministic fraction of the interval (derived from the
//! hub's device index via the golden ratio, the classic low-discrepancy
//! choice), so two tags arriving at different hubs in the same instant are
//! admitted at distinct times and the DES kernel never has to tie-break
//! two admissions on the same `(time, seq)` key.
//!
//! The hub's own cost is one beacon transmission per admission (the
//! beacons it emits into an empty room are part of its mains-powered
//! background and are not debited — see DESIGN.md §13).

use braidio_mac::wakeup::PassiveWakeup;
use braidio_units::{Joules, Seconds, Watts};

/// One hub's beacon schedule and the tag-side detector that hears it.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DiscoveryConfig {
    /// Interval between beacons of one hub.
    pub beacon_interval: Seconds,
    /// Bits in one beacon frame (charged to the hub per admission, at the
    /// active radio's energy-per-bit).
    pub beacon_bits: f64,
    /// The always-on detector the idle tag listens through.
    pub detector: PassiveWakeup,
}

impl Default for DiscoveryConfig {
    fn default() -> Self {
        DiscoveryConfig {
            beacon_interval: Seconds::new(0.5),
            beacon_bits: 256.0,
            detector: PassiveWakeup::braidio(),
        }
    }
}

impl DiscoveryConfig {
    /// The fixed phase offset of `hub`'s beacon schedule within one
    /// interval: `frac(hub · φ)` of the interval, where φ is the golden
    /// ratio conjugate. Deterministic, dense, and collision-free enough
    /// that same-instant arrivals at different hubs admit at different
    /// times.
    pub fn hub_offset(&self, hub: u32) -> Seconds {
        const PHI: f64 = 0.618_033_988_749_894_9;
        let frac = (hub as f64 * PHI).fract();
        Seconds::new(self.beacon_interval.seconds() * frac)
    }

    /// When a tag arriving at `arrival` is admitted by `hub`: the first
    /// beacon at or after its arrival, plus the detector chain's latency.
    pub fn admission_at(&self, hub: u32, arrival: Seconds) -> Seconds {
        let iv = self.beacon_interval.seconds();
        let off = self.hub_offset(hub).seconds();
        let t = arrival.seconds();
        // First k with off + k·iv >= t.
        let k = ((t - off) / iv).ceil().max(0.0);
        Seconds::new(off + k * iv + self.detector.detect_latency.seconds())
    }

    /// Energy the tag's detector chain drains while waiting in Init from
    /// `arrival` to `admitted` (detector-only power, per `mac::wakeup`).
    pub fn idle_energy(&self, arrival: Seconds, admitted: Seconds) -> Joules {
        let wait = (admitted.seconds() - arrival.seconds()).max(0.0);
        Joules::new(self.detector.chain_power.watts() * wait)
    }

    /// Same drain, for an arbitrary quiescent window (used for Cooldown,
    /// where the tag drops back to detector-only listening).
    pub fn quiesced_energy(&self, window: Seconds) -> Joules {
        Joules::new(self.detector.chain_power.watts() * window.seconds().max(0.0))
    }

    /// The detector chain's power draw (what an Init/Cooldown tag pays).
    pub fn idle_power(&self) -> Watts {
        self.detector.chain_power
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn admission_is_the_next_beacon_plus_detect_latency() {
        let d = DiscoveryConfig::default();
        let lat = d.detector.detect_latency.seconds();
        // Hub 0 beacons at 0.0, 0.5, 1.0, …
        assert_eq!(d.hub_offset(0).seconds(), 0.0);
        let adm = d.admission_at(0, Seconds::new(0.2));
        assert!((adm.seconds() - (0.5 + lat)).abs() < 1e-12, "{adm:?}");
        // Arriving exactly on a beacon catches it.
        let adm = d.admission_at(0, Seconds::new(1.0));
        assert!((adm.seconds() - (1.0 + lat)).abs() < 1e-12);
        // Admission never precedes arrival.
        for hub in 0..23u32 {
            for i in 0..40 {
                let t = Seconds::new(i as f64 * 0.137);
                assert!(d.admission_at(hub, t).seconds() >= t.seconds());
            }
        }
    }

    #[test]
    fn hub_offsets_are_distinct_within_the_interval() {
        let d = DiscoveryConfig::default();
        let iv = d.beacon_interval.seconds();
        let mut offs: Vec<f64> = (0..64).map(|h| d.hub_offset(h).seconds()).collect();
        for &o in &offs {
            assert!((0.0..iv).contains(&o));
        }
        offs.sort_by(f64::total_cmp);
        offs.dedup();
        assert_eq!(offs.len(), 64, "golden-ratio offsets must not collide");
    }

    #[test]
    fn idle_energy_is_detector_power_times_wait() {
        let d = DiscoveryConfig::default();
        let j = d.idle_energy(Seconds::new(1.0), Seconds::new(3.0));
        let want = d.detector.chain_power.watts() * 2.0;
        assert!((j.joules() - want).abs() < 1e-15);
        // Degenerate window clamps to zero.
        assert_eq!(
            d.idle_energy(Seconds::new(3.0), Seconds::new(1.0)).joules(),
            0.0
        );
        assert_eq!(
            d.quiesced_energy(Seconds::new(2.0)).joules(),
            d.idle_energy(Seconds::new(0.0), Seconds::new(2.0)).joules()
        );
    }
}
