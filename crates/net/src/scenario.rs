//! Fleet scenarios: device placement, batteries, traffic pairs, and the
//! knobs of a multi-device run.
//!
//! Two canonical topologies cover the paper's deployment stories:
//!
//! * [`FleetScenario::independent_pairs`] — M unrelated pairs sharing a
//!   room (the §7 coexistence question at fleet scale): each pair sits on
//!   its own line position, transmitter and receiver `pair_sep` apart.
//! * [`FleetScenario::star`] — a hub (reader/phone) with K harvesting tags
//!   on a ring around it: the sensor-deployment shape where one
//!   well-provisioned device carries the carrier burden for a fleet of
//!   coin-cell tags.
//!
//! [`FleetScenario::open_system`] leaves the closed world: a hub grid plus
//! a Poisson stream of tags that arrive, dwell, roam, and leave mid-run.
//! The whole roster — every arrival instant, position, battery, dwell and
//! roam decision — is materialized **here, at construction time**, from
//! one seeded [`rand`] stream. The engine never draws randomness: it
//! replays the roster through the DES kernel, which is what keeps an
//! open-system run byte-identical at any `--jobs` (DESIGN.md §13).

use crate::arbitration::Arbitration;
use crate::discovery::DiscoveryConfig;
use crate::lifecycle::LifecyclePolicy;
use braidio_mac::mobility::LinearWalk;
use braidio_radio::characterization::Characterization;
use braidio_radio::switching::SwitchingOverhead;
use braidio_radio::Mode;
use braidio_rfsim::geometry::{line, ring, Point};
use braidio_units::{Joules, Meters, Seconds};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// One device: a position and a battery.
#[derive(Debug, Clone, Copy)]
pub struct DeviceSpec {
    /// Placement in the room.
    pub pos: Point,
    /// Battery capacity.
    pub battery: Joules,
}

/// One traffic pair: `tx` streams to `rx` (unidirectional, the Fig. 15
/// traffic shape).
#[derive(Debug, Clone, Copy)]
pub struct PairSpec {
    /// Transmitting device (index into the scenario's device list).
    pub tx: usize,
    /// Receiving device.
    pub rx: usize,
    /// Pin the pair to a single mode instead of braiding (comparators).
    pub pinned_mode: Option<Mode>,
    /// Optional mobility: the separation follows this walk (the receiver
    /// is displaced along the pair's axis; the transmitter stays put).
    pub walk: Option<LinearWalk>,
    /// Open-system arrival instant: the session enters Init (paying
    /// detector-only power) at this time instead of associating at the
    /// closed-scenario stagger. `None` for closed scenarios.
    pub arrival: Option<Seconds>,
    /// Open-system dwell end: the session departs gracefully at this time
    /// (if still alive). `None` for closed scenarios.
    pub departure: Option<Seconds>,
}

impl PairSpec {
    /// A plain braided pair.
    pub fn braided(tx: usize, rx: usize) -> Self {
        PairSpec {
            tx,
            rx,
            pinned_mode: None,
            walk: None,
            arrival: None,
            departure: None,
        }
    }

    /// An open-system session: `tx` streams to `rx` from `arrival` until
    /// `departure`.
    pub fn session(tx: usize, rx: usize, arrival: Seconds, departure: Seconds) -> Self {
        PairSpec {
            tx,
            rx,
            pinned_mode: None,
            walk: None,
            arrival: Some(arrival),
            departure: Some(departure),
        }
    }
}

/// Open-system knobs the engine needs at run time. The arrival stream
/// itself is *not* here — it is baked into the pair list at construction
/// ([`FleetScenario::open_system`]); these are the policies that interpret
/// it plus the descriptive parameters the roster was drawn from.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ChurnConfig {
    /// The seed the roster was drawn from (reproducibility handle).
    pub seed: u64,
    /// Lifecycle thresholds and timers.
    pub lifecycle: LifecyclePolicy,
    /// Beacon schedule and detector economics for admission.
    pub discovery: DiscoveryConfig,
    /// Steady-state sliding window: goodput/fairness are reported over the
    /// last `window` seconds of the horizon, not the whole run.
    pub window: Seconds,
    /// Mean session arrival rate the roster was drawn at (sessions/s).
    pub arrival_rate: f64,
    /// Mean dwell time the roster was drawn at.
    pub mean_dwell: Seconds,
}

/// A complete fleet experiment description.
#[derive(Debug, Clone)]
pub struct FleetScenario {
    /// Link characterization shared by every pair (one hardware build).
    pub ch: Characterization,
    /// Table 5 mode-switch costs.
    pub switching: SwitchingOverhead,
    /// The devices.
    pub devices: Vec<DeviceSpec>,
    /// The traffic pairs.
    pub pairs: Vec<PairSpec>,
    /// Who may put a carrier up, when.
    pub arbitration: Arbitration,
    /// Link-layer packet size in bits (matches `mac::sim`'s default).
    pub packet_bits: f64,
    /// Packets per braid quantum (the switch-amortization unit).
    pub quantum_packets: f64,
    /// Re-plan cadence per pair.
    pub replan_interval: Seconds,
    /// Simulation horizon: events past this instant are not delivered.
    pub horizon: Seconds,
    /// Charge association/status/probe control traffic (§4.2 steps 1–2).
    /// Off for cross-validation against `mac::sim`, which charges neither.
    pub control_overhead: bool,
    /// Enable the conservative far-field interference cull
    /// ([`crate::cache::far_field_cutoff`]). Off by default; bitwise-neutral
    /// wherever all pairs sit within the cutoff (every in-room scenario).
    pub far_field_cull: bool,
    /// Open-system churn: present iff this is an
    /// [`open_system`](Self::open_system) scenario. Closed scenarios keep
    /// `None` and take the legacy fast path through the engine.
    pub churn: Option<ChurnConfig>,
}

impl FleetScenario {
    /// A scenario with the `mac::sim` defaults for everything but the
    /// topology.
    pub fn new(devices: Vec<DeviceSpec>, pairs: Vec<PairSpec>, arbitration: Arbitration) -> Self {
        let s = Self::unvalidated(devices, pairs, arbitration);
        s.validate();
        s
    }

    /// The `new` defaults without the validation pass — for constructors
    /// (like [`open_system`](Self::open_system)) that must set `churn`
    /// before the pair list is legal to validate.
    fn unvalidated(
        devices: Vec<DeviceSpec>,
        pairs: Vec<PairSpec>,
        arbitration: Arbitration,
    ) -> Self {
        FleetScenario {
            ch: Characterization::braidio(),
            switching: SwitchingOverhead::table5(),
            devices,
            pairs,
            arbitration,
            packet_bits: 2120.0,
            quantum_packets: 100.0,
            replan_interval: Seconds::new(10.0),
            horizon: Seconds::new(600.0),
            control_overhead: true,
            far_field_cull: false,
            churn: None,
        }
    }

    /// Same scenario with a different horizon.
    pub fn with_horizon(mut self, horizon: Seconds) -> Self {
        self.horizon = horizon;
        self
    }

    /// Same scenario without control-plane energy accounting.
    pub fn without_control_overhead(mut self) -> Self {
        self.control_overhead = false;
        self
    }

    /// Same scenario with the far-field interference cull enabled.
    pub fn with_far_field_cull(mut self) -> Self {
        self.far_field_cull = true;
        self
    }

    /// `m` unrelated transmitter→receiver pairs in a row: pair `i`'s
    /// transmitter at `(i·spacing, 0)`, its receiver `pair_sep` away at
    /// `(i·spacing, pair_sep)`. Every transmitter holds `tx_wh` watt-hours,
    /// every receiver `rx_wh`.
    pub fn independent_pairs(
        m: usize,
        pair_sep: Meters,
        spacing: Meters,
        tx_wh: f64,
        rx_wh: f64,
        arbitration: Arbitration,
    ) -> Self {
        let tx_pos = line(Point::ORIGIN, spacing, m);
        let mut devices = Vec::with_capacity(2 * m);
        let mut pairs = Vec::with_capacity(m);
        for (i, p) in tx_pos.into_iter().enumerate() {
            devices.push(DeviceSpec {
                pos: p,
                battery: Joules::from_watt_hours(tx_wh),
            });
            devices.push(DeviceSpec {
                pos: Point::new(p.x, p.y + pair_sep.meters()),
                battery: Joules::from_watt_hours(rx_wh),
            });
            pairs.push(PairSpec::braided(2 * i, 2 * i + 1));
        }
        FleetScenario::new(devices, pairs, arbitration)
    }

    /// `m` unrelated pairs on a √m × √m room grid — the large-fleet
    /// counterpart of [`independent_pairs`](Self::independent_pairs), which
    /// at hundreds of pairs would degenerate into an implausibly long
    /// corridor. Pair `i` sits at column `i mod side`, row `i / side` with
    /// `spacing` between grid points; its receiver is `pair_sep` away along
    /// the row axis' perpendicular.
    pub fn grid_pairs(
        m: usize,
        pair_sep: Meters,
        spacing: Meters,
        tx_wh: f64,
        rx_wh: f64,
        arbitration: Arbitration,
    ) -> Self {
        let side = (m as f64).sqrt().ceil() as usize;
        let mut devices = Vec::with_capacity(2 * m);
        let mut pairs = Vec::with_capacity(m);
        for i in 0..m {
            let col = (i % side) as f64;
            let row = (i / side) as f64;
            let p = Point::new(col * spacing.meters(), row * spacing.meters());
            devices.push(DeviceSpec {
                pos: p,
                battery: Joules::from_watt_hours(tx_wh),
            });
            devices.push(DeviceSpec {
                pos: Point::new(p.x, p.y + pair_sep.meters()),
                battery: Joules::from_watt_hours(rx_wh),
            });
            pairs.push(PairSpec::braided(2 * i, 2 * i + 1));
        }
        FleetScenario::new(devices, pairs, arbitration)
    }

    /// A city block: `m` traffic pairs tiled as alternating *mesh* and
    /// *star* blocks on a coarse street grid — the 10⁴-pair stress shape
    /// mixing both canonical topologies in one interference field.
    ///
    /// Blocks hold [`Self::CITY_BLOCK_PAIRS`] pairs each and sit on a
    /// `⌈√blocks⌉`-wide grid with 12 m pitch. Even blocks are a 2×2 mesh of
    /// independent 0.5 m pairs (3 m pitch, 1 Wh each side); odd blocks are
    /// a 4-tag star around a mains-class 99.5 Wh hub at the block centre,
    /// tags at 0.5 m holding 1 Wh (large enough that no session dies inside
    /// a short stress horizon — every death dirties the whole interference
    /// field, which is a different benchmark). Construction stops at
    /// exactly `m` pairs, so the last block may be partial.
    pub fn city_block(m: usize, arbitration: Arbitration) -> Self {
        const BLOCK_PITCH: f64 = 12.0;
        const MESH_PITCH: f64 = 3.0;
        const PAIR_SEP: f64 = 0.5;
        let nblocks = m.div_ceil(Self::CITY_BLOCK_PAIRS);
        let side = (nblocks as f64).sqrt().ceil() as usize;
        let mut devices = Vec::with_capacity(2 * m + nblocks);
        let mut pairs = Vec::with_capacity(m);
        'blocks: for b in 0..nblocks {
            let bx = (b % side) as f64 * BLOCK_PITCH;
            let by = (b / side) as f64 * BLOCK_PITCH;
            if b % 2 == 0 {
                // Mesh block: 2×2 independent pairs.
                for k in 0..Self::CITY_BLOCK_PAIRS {
                    if pairs.len() == m {
                        break 'blocks;
                    }
                    let px = bx + (k % 2) as f64 * MESH_PITCH;
                    let py = by + (k / 2) as f64 * MESH_PITCH;
                    let tx = devices.len();
                    devices.push(DeviceSpec {
                        pos: Point::new(px, py),
                        battery: Joules::from_watt_hours(1.0),
                    });
                    devices.push(DeviceSpec {
                        pos: Point::new(px, py + PAIR_SEP),
                        battery: Joules::from_watt_hours(1.0),
                    });
                    pairs.push(PairSpec::braided(tx, tx + 1));
                }
            } else {
                // Star block: hub at the block centre, tags on a ring.
                let want = Self::CITY_BLOCK_PAIRS.min(m - pairs.len());
                if want == 0 {
                    break 'blocks;
                }
                let centre = Point::new(bx + MESH_PITCH / 2.0, by + MESH_PITCH / 2.0);
                let hub = devices.len();
                devices.push(DeviceSpec {
                    pos: centre,
                    battery: Joules::from_watt_hours(99.5),
                });
                for p in ring(centre, Meters::new(PAIR_SEP), want) {
                    let tag = devices.len();
                    devices.push(DeviceSpec {
                        pos: p,
                        battery: Joules::from_watt_hours(1.0),
                    });
                    pairs.push(PairSpec::braided(tag, hub));
                }
            }
        }
        FleetScenario::new(devices, pairs, arbitration)
    }

    /// Traffic pairs per city block (see [`Self::city_block`]).
    pub const CITY_BLOCK_PAIRS: usize = 4;

    /// A star: one hub at the origin with `k` tags on a ring of radius
    /// `radius`, each tag streaming (backscatter-friendly direction) to the
    /// hub. Device 0 is the hub.
    pub fn star(
        k: usize,
        radius: Meters,
        hub_wh: f64,
        tag_wh: f64,
        arbitration: Arbitration,
    ) -> Self {
        let mut devices = vec![DeviceSpec {
            pos: Point::ORIGIN,
            battery: Joules::from_watt_hours(hub_wh),
        }];
        let mut pairs = Vec::with_capacity(k);
        for (i, p) in ring(Point::ORIGIN, radius, k).into_iter().enumerate() {
            devices.push(DeviceSpec {
                pos: p,
                battery: Joules::from_watt_hours(tag_wh),
            });
            pairs.push(PairSpec::braided(i + 1, 0));
        }
        FleetScenario::new(devices, pairs, arbitration)
    }

    /// An open system: a grid of mains-class hubs and a Poisson stream of
    /// tags that arrive, dwell, sometimes roam to a second hub, and leave.
    ///
    /// * `hubs` hubs sit on a `⌈√hubs⌉` grid with 8 m pitch, 99.5 Wh each.
    /// * Sessions arrive as a Poisson process with rate
    ///   `expected_sessions / horizon` (exponential inter-arrivals), so on
    ///   average `expected_sessions` tags show up before the horizon; the
    ///   exact count is a pure function of `seed`.
    /// * Each tag lands uniformly in the room, streams to its nearest hub
    ///   (the backscatter-friendly direction, as in [`Self::star`]), and
    ///   dwells for an exponential time with mean `horizon / 6`.
    /// * With probability 0.1 (and at least two hubs) the session *roams*:
    ///   the dwell splits at a uniform point in its middle and the second
    ///   leg streams to the second-nearest hub — two pair rows over one
    ///   tag device, with disjoint `[arrival, departure)` windows.
    /// * With probability 0.08 the tag is *frail* (a 0.2 mWh residual
    ///   coin cell that browns out mid-session under active-mode
    ///   braiding); otherwise it holds 1 Wh.
    ///
    /// Every draw happens here, from one `StdRng` stream seeded with
    /// `seed`; the returned scenario is pure data and the engine replays
    /// it deterministically (the arrival-stream determinism rule,
    /// DESIGN.md §13). The run reports steady-state metrics over the last
    /// `horizon / 3` ([`ChurnConfig::window`]).
    pub fn open_system(
        hubs: usize,
        expected_sessions: usize,
        horizon: Seconds,
        seed: u64,
        arbitration: Arbitration,
    ) -> Self {
        const HUB_PITCH: f64 = 8.0;
        const ROAM_PROB: f64 = 0.1;
        const FRAIL_PROB: f64 = 0.08;
        assert!(hubs >= 1, "an open system needs at least one hub");
        assert!(expected_sessions >= 1, "an open system needs traffic");
        assert!(horizon.seconds() > 0.0, "horizon must be positive");

        let side = (hubs as f64).sqrt().ceil() as usize;
        let mut devices: Vec<DeviceSpec> = (0..hubs)
            .map(|h| DeviceSpec {
                pos: Point::new((h % side) as f64 * HUB_PITCH, (h / side) as f64 * HUB_PITCH),
                battery: Joules::from_watt_hours(99.5),
            })
            .collect();
        // The room extends half a pitch beyond the hub grid on every side.
        let lo = -HUB_PITCH / 2.0;
        let hi = (side.max(2) - 1) as f64 * HUB_PITCH + HUB_PITCH / 2.0;

        let rate = expected_sessions as f64 / horizon.seconds();
        let mean_dwell = horizon.seconds() / 6.0;
        let mut rng = StdRng::seed_from_u64(seed);
        // Exponential draw with the given mean; `1 - U` keeps the argument
        // in (0, 1] so the log is finite.
        let exp = |rng: &mut StdRng, mean: f64| -> f64 {
            -(1.0 - rng.random_range(0.0..1.0)).ln() * mean
        };

        let mut pairs = Vec::new();
        let mut t = exp(&mut rng, 1.0 / rate);
        while t < horizon.seconds() {
            let pos = Point::new(rng.random_range(lo..hi), rng.random_range(lo..hi));
            let frail = rng.random_bool(FRAIL_PROB);
            let dwell = exp(&mut rng, mean_dwell).max(1e-3);
            let roam = rng.random_bool(ROAM_PROB);
            // Two nearest hubs (ties broken by index: stable under any
            // iteration order because the scan is index-ordered).
            let mut best = (0usize, f64::INFINITY);
            let mut second = (0usize, f64::INFINITY);
            for (h, hub) in devices.iter().enumerate().take(hubs) {
                let d = pos.distance(hub.pos).meters();
                if d < best.1 {
                    second = best;
                    best = (h, d);
                } else if d < second.1 {
                    second = (h, d);
                }
            }
            let tag = devices.len();
            devices.push(DeviceSpec {
                pos,
                battery: Joules::from_watt_hours(if frail { 2e-4 } else { 1.0 }),
            });
            let arrival = Seconds::new(t);
            let departure = Seconds::new(t + dwell);
            if roam && hubs >= 2 {
                let split = t + dwell * rng.random_range(0.3..0.7);
                pairs.push(PairSpec::session(tag, best.0, arrival, Seconds::new(split)));
                pairs.push(PairSpec::session(
                    tag,
                    second.0,
                    Seconds::new(split),
                    departure,
                ));
            } else {
                pairs.push(PairSpec::session(tag, best.0, arrival, departure));
            }
            t += exp(&mut rng, 1.0 / rate);
        }
        assert!(
            !pairs.is_empty(),
            "seed {seed} produced no arrivals before the horizon; raise expected_sessions"
        );

        let mut s = FleetScenario::unvalidated(devices, pairs, arbitration);
        s.horizon = horizon;
        s.replan_interval = Seconds::new(1.0);
        s.churn = Some(ChurnConfig {
            seed,
            lifecycle: LifecyclePolicy::default(),
            discovery: DiscoveryConfig::default(),
            window: Seconds::new(horizon.seconds() / 3.0),
            arrival_rate: rate,
            mean_dwell: Seconds::new(mean_dwell),
        });
        s.validate();
        s
    }

    /// Panics if a pair references a missing device or loops on itself.
    pub fn validate(&self) {
        assert!(!self.devices.is_empty(), "a fleet needs devices");
        assert!(!self.pairs.is_empty(), "a fleet needs traffic");
        assert!(
            self.packet_bits > 0.0 && self.quantum_packets > 0.0,
            "packetization must be positive"
        );
        assert!(
            self.replan_interval.seconds() > 0.0 && self.horizon.seconds() > 0.0,
            "timers must be positive"
        );
        for (i, p) in self.pairs.iter().enumerate() {
            assert!(
                p.tx < self.devices.len() && p.rx < self.devices.len(),
                "pair {i} references a missing device"
            );
            assert!(p.tx != p.rx, "pair {i} loops device {} on itself", p.tx);
            match (self.churn.is_some(), p.arrival, p.departure) {
                (true, Some(a), Some(d)) => {
                    assert!(
                        a.seconds() >= 0.0 && d.seconds() > a.seconds(),
                        "pair {i}: departure must follow arrival"
                    );
                }
                (true, _, _) => panic!("pair {i}: churn scenarios need arrival and departure"),
                (false, None, None) => {}
                (false, _, _) => {
                    panic!("pair {i}: arrival/departure require an open-system scenario")
                }
            }
        }
        if let Some(c) = &self.churn {
            assert!(
                c.window.seconds() > 0.0 && c.window.seconds() <= self.horizon.seconds(),
                "steady-state window must fit the horizon"
            );
            assert!(
                c.discovery.beacon_interval.seconds() > 0.0 && c.lifecycle.cooldown.seconds() > 0.0,
                "churn timers must be positive"
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn independent_pairs_layout() {
        let s = FleetScenario::independent_pairs(
            3,
            Meters::new(0.5),
            Meters::new(10.0),
            1.0,
            1.0,
            Arbitration::Uncoordinated,
        );
        assert_eq!(s.devices.len(), 6);
        assert_eq!(s.pairs.len(), 3);
        // Pair separation is pair_sep; neighbouring pairs sit spacing apart.
        let d01 = s.devices[0].pos.distance(s.devices[1].pos);
        assert!((d01.meters() - 0.5).abs() < 1e-12);
        let d02 = s.devices[0].pos.distance(s.devices[2].pos);
        assert!((d02.meters() - 10.0).abs() < 1e-12);
    }

    #[test]
    fn star_layout_centers_the_hub() {
        let s = FleetScenario::star(
            4,
            Meters::new(0.5),
            99.5,
            0.003,
            Arbitration::TdmaRoundRobin {
                slot: Seconds::new(0.1),
            },
        );
        assert_eq!(s.devices.len(), 5);
        for p in &s.pairs {
            assert_eq!(p.rx, 0, "tags stream to the hub");
            let d = s.devices[p.tx].pos.distance(s.devices[0].pos);
            assert!((d.meters() - 0.5).abs() < 1e-12);
        }
    }

    #[test]
    fn city_block_mixes_meshes_and_stars_and_stops_at_m() {
        let s = FleetScenario::city_block(10, Arbitration::Uncoordinated);
        s.validate();
        assert_eq!(s.pairs.len(), 10);
        // Block 0: full mesh (4 pairs, 8 devices). Block 1: full star (hub
        // + 4 tags). Block 2: partial mesh (2 pairs, 4 devices).
        assert_eq!(s.devices.len(), 8 + 5 + 4);
        // The star block's pairs all stream to its hub (device 8), which
        // carries the big battery.
        for p in &s.pairs[4..8] {
            assert_eq!(p.rx, 8);
        }
        assert!(s.devices[8].battery.joules() > s.devices[0].battery.joules());
        // A partial star block still places its hub before the tags.
        let s5 = FleetScenario::city_block(5, Arbitration::Uncoordinated);
        assert_eq!(s5.pairs.len(), 5);
        assert_eq!(s5.devices.len(), 8 + 2);
        assert_eq!(s5.pairs[4].rx, 8);
    }

    #[test]
    fn open_system_roster_is_a_pure_function_of_the_seed() {
        let mk = |seed| {
            FleetScenario::open_system(4, 40, Seconds::new(60.0), seed, Arbitration::Uncoordinated)
        };
        let (a, b) = (mk(7), mk(7));
        assert_eq!(a.devices.len(), b.devices.len());
        assert_eq!(a.pairs.len(), b.pairs.len());
        for (x, y) in a.pairs.iter().zip(&b.pairs) {
            assert_eq!(x.tx, y.tx);
            assert_eq!(x.rx, y.rx);
            assert_eq!(
                x.arrival.unwrap().seconds().to_bits(),
                y.arrival.unwrap().seconds().to_bits()
            );
            assert_eq!(
                x.departure.unwrap().seconds().to_bits(),
                y.departure.unwrap().seconds().to_bits()
            );
        }
        for (x, y) in a.devices.iter().zip(&b.devices) {
            assert_eq!(x.pos.x.to_bits(), y.pos.x.to_bits());
            assert_eq!(x.battery.joules().to_bits(), y.battery.joules().to_bits());
        }
        // A different seed draws a different roster.
        let c = mk(8);
        let same = a.pairs.len() == c.pairs.len()
            && a.pairs.iter().zip(&c.pairs).all(|(x, y)| {
                x.arrival.unwrap().seconds().to_bits() == y.arrival.unwrap().seconds().to_bits()
            });
        assert!(!same, "seed must matter");
    }

    #[test]
    fn open_system_shape_is_plausible() {
        let s =
            FleetScenario::open_system(4, 60, Seconds::new(60.0), 1, Arbitration::Uncoordinated);
        let c = s.churn.expect("open system carries churn config");
        assert_eq!(c.seed, 1);
        // Arrival count is Poisson(60): comfortably within ±50%.
        let tags = s.devices.len() - 4;
        assert!((30..=90).contains(&tags), "{tags} tags");
        // Pairs >= tags (roaming splits add rows), all stream to a hub.
        assert!(s.pairs.len() >= tags);
        let mut roams = 0;
        for p in &s.pairs {
            assert!(p.rx < 4, "sessions stream tag -> hub");
            assert!(p.tx >= 4);
            assert!(p.arrival.unwrap().seconds() < s.horizon.seconds());
            if s.pairs.iter().filter(|q| q.tx == p.tx).count() == 2 {
                roams += 1;
            }
        }
        assert!(roams > 0, "some sessions should roam at 60 arrivals");
        // Roam legs of one tag tile its dwell: leg 1 ends where leg 2 starts.
        for w in s.pairs.windows(2) {
            if w[0].tx == w[1].tx {
                assert_eq!(
                    w[0].departure.unwrap().seconds().to_bits(),
                    w[1].arrival.unwrap().seconds().to_bits()
                );
                assert_ne!(w[0].rx, w[1].rx, "roam must change hubs");
            }
        }
    }

    #[test]
    #[should_panic(expected = "need arrival and departure")]
    fn validate_catches_closed_pairs_in_churn() {
        let mut s =
            FleetScenario::open_system(2, 20, Seconds::new(30.0), 3, Arbitration::Uncoordinated);
        s.pairs[0].arrival = None;
        s.validate();
    }

    #[test]
    #[should_panic(expected = "missing device")]
    fn validate_catches_dangling_pair() {
        let devices = vec![DeviceSpec {
            pos: Point::ORIGIN,
            battery: Joules::from_watt_hours(1.0),
        }];
        let _ = FleetScenario::new(
            devices,
            vec![PairSpec::braided(0, 3)],
            Arbitration::Uncoordinated,
        );
    }
}
