//! Fleet scenarios: device placement, batteries, traffic pairs, and the
//! knobs of a multi-device run.
//!
//! Two canonical topologies cover the paper's deployment stories:
//!
//! * [`FleetScenario::independent_pairs`] — M unrelated pairs sharing a
//!   room (the §7 coexistence question at fleet scale): each pair sits on
//!   its own line position, transmitter and receiver `pair_sep` apart.
//! * [`FleetScenario::star`] — a hub (reader/phone) with K harvesting tags
//!   on a ring around it: the sensor-deployment shape where one
//!   well-provisioned device carries the carrier burden for a fleet of
//!   coin-cell tags.

use crate::arbitration::Arbitration;
use braidio_mac::mobility::LinearWalk;
use braidio_radio::characterization::Characterization;
use braidio_radio::switching::SwitchingOverhead;
use braidio_radio::Mode;
use braidio_rfsim::geometry::{line, ring, Point};
use braidio_units::{Joules, Meters, Seconds};

/// One device: a position and a battery.
#[derive(Debug, Clone, Copy)]
pub struct DeviceSpec {
    /// Placement in the room.
    pub pos: Point,
    /// Battery capacity.
    pub battery: Joules,
}

/// One traffic pair: `tx` streams to `rx` (unidirectional, the Fig. 15
/// traffic shape).
#[derive(Debug, Clone, Copy)]
pub struct PairSpec {
    /// Transmitting device (index into the scenario's device list).
    pub tx: usize,
    /// Receiving device.
    pub rx: usize,
    /// Pin the pair to a single mode instead of braiding (comparators).
    pub pinned_mode: Option<Mode>,
    /// Optional mobility: the separation follows this walk (the receiver
    /// is displaced along the pair's axis; the transmitter stays put).
    pub walk: Option<LinearWalk>,
}

impl PairSpec {
    /// A plain braided pair.
    pub fn braided(tx: usize, rx: usize) -> Self {
        PairSpec {
            tx,
            rx,
            pinned_mode: None,
            walk: None,
        }
    }
}

/// A complete fleet experiment description.
#[derive(Debug, Clone)]
pub struct FleetScenario {
    /// Link characterization shared by every pair (one hardware build).
    pub ch: Characterization,
    /// Table 5 mode-switch costs.
    pub switching: SwitchingOverhead,
    /// The devices.
    pub devices: Vec<DeviceSpec>,
    /// The traffic pairs.
    pub pairs: Vec<PairSpec>,
    /// Who may put a carrier up, when.
    pub arbitration: Arbitration,
    /// Link-layer packet size in bits (matches `mac::sim`'s default).
    pub packet_bits: f64,
    /// Packets per braid quantum (the switch-amortization unit).
    pub quantum_packets: f64,
    /// Re-plan cadence per pair.
    pub replan_interval: Seconds,
    /// Simulation horizon: events past this instant are not delivered.
    pub horizon: Seconds,
    /// Charge association/status/probe control traffic (§4.2 steps 1–2).
    /// Off for cross-validation against `mac::sim`, which charges neither.
    pub control_overhead: bool,
    /// Enable the conservative far-field interference cull
    /// ([`crate::cache::far_field_cutoff`]). Off by default; bitwise-neutral
    /// wherever all pairs sit within the cutoff (every in-room scenario).
    pub far_field_cull: bool,
}

impl FleetScenario {
    /// A scenario with the `mac::sim` defaults for everything but the
    /// topology.
    pub fn new(devices: Vec<DeviceSpec>, pairs: Vec<PairSpec>, arbitration: Arbitration) -> Self {
        let s = FleetScenario {
            ch: Characterization::braidio(),
            switching: SwitchingOverhead::table5(),
            devices,
            pairs,
            arbitration,
            packet_bits: 2120.0,
            quantum_packets: 100.0,
            replan_interval: Seconds::new(10.0),
            horizon: Seconds::new(600.0),
            control_overhead: true,
            far_field_cull: false,
        };
        s.validate();
        s
    }

    /// Same scenario with a different horizon.
    pub fn with_horizon(mut self, horizon: Seconds) -> Self {
        self.horizon = horizon;
        self
    }

    /// Same scenario without control-plane energy accounting.
    pub fn without_control_overhead(mut self) -> Self {
        self.control_overhead = false;
        self
    }

    /// Same scenario with the far-field interference cull enabled.
    pub fn with_far_field_cull(mut self) -> Self {
        self.far_field_cull = true;
        self
    }

    /// `m` unrelated transmitter→receiver pairs in a row: pair `i`'s
    /// transmitter at `(i·spacing, 0)`, its receiver `pair_sep` away at
    /// `(i·spacing, pair_sep)`. Every transmitter holds `tx_wh` watt-hours,
    /// every receiver `rx_wh`.
    pub fn independent_pairs(
        m: usize,
        pair_sep: Meters,
        spacing: Meters,
        tx_wh: f64,
        rx_wh: f64,
        arbitration: Arbitration,
    ) -> Self {
        let tx_pos = line(Point::ORIGIN, spacing, m);
        let mut devices = Vec::with_capacity(2 * m);
        let mut pairs = Vec::with_capacity(m);
        for (i, p) in tx_pos.into_iter().enumerate() {
            devices.push(DeviceSpec {
                pos: p,
                battery: Joules::from_watt_hours(tx_wh),
            });
            devices.push(DeviceSpec {
                pos: Point::new(p.x, p.y + pair_sep.meters()),
                battery: Joules::from_watt_hours(rx_wh),
            });
            pairs.push(PairSpec::braided(2 * i, 2 * i + 1));
        }
        FleetScenario::new(devices, pairs, arbitration)
    }

    /// `m` unrelated pairs on a √m × √m room grid — the large-fleet
    /// counterpart of [`independent_pairs`](Self::independent_pairs), which
    /// at hundreds of pairs would degenerate into an implausibly long
    /// corridor. Pair `i` sits at column `i mod side`, row `i / side` with
    /// `spacing` between grid points; its receiver is `pair_sep` away along
    /// the row axis' perpendicular.
    pub fn grid_pairs(
        m: usize,
        pair_sep: Meters,
        spacing: Meters,
        tx_wh: f64,
        rx_wh: f64,
        arbitration: Arbitration,
    ) -> Self {
        let side = (m as f64).sqrt().ceil() as usize;
        let mut devices = Vec::with_capacity(2 * m);
        let mut pairs = Vec::with_capacity(m);
        for i in 0..m {
            let col = (i % side) as f64;
            let row = (i / side) as f64;
            let p = Point::new(col * spacing.meters(), row * spacing.meters());
            devices.push(DeviceSpec {
                pos: p,
                battery: Joules::from_watt_hours(tx_wh),
            });
            devices.push(DeviceSpec {
                pos: Point::new(p.x, p.y + pair_sep.meters()),
                battery: Joules::from_watt_hours(rx_wh),
            });
            pairs.push(PairSpec::braided(2 * i, 2 * i + 1));
        }
        FleetScenario::new(devices, pairs, arbitration)
    }

    /// A star: one hub at the origin with `k` tags on a ring of radius
    /// `radius`, each tag streaming (backscatter-friendly direction) to the
    /// hub. Device 0 is the hub.
    pub fn star(
        k: usize,
        radius: Meters,
        hub_wh: f64,
        tag_wh: f64,
        arbitration: Arbitration,
    ) -> Self {
        let mut devices = vec![DeviceSpec {
            pos: Point::ORIGIN,
            battery: Joules::from_watt_hours(hub_wh),
        }];
        let mut pairs = Vec::with_capacity(k);
        for (i, p) in ring(Point::ORIGIN, radius, k).into_iter().enumerate() {
            devices.push(DeviceSpec {
                pos: p,
                battery: Joules::from_watt_hours(tag_wh),
            });
            pairs.push(PairSpec::braided(i + 1, 0));
        }
        FleetScenario::new(devices, pairs, arbitration)
    }

    /// Panics if a pair references a missing device or loops on itself.
    pub fn validate(&self) {
        assert!(!self.devices.is_empty(), "a fleet needs devices");
        assert!(!self.pairs.is_empty(), "a fleet needs traffic");
        assert!(
            self.packet_bits > 0.0 && self.quantum_packets > 0.0,
            "packetization must be positive"
        );
        assert!(
            self.replan_interval.seconds() > 0.0 && self.horizon.seconds() > 0.0,
            "timers must be positive"
        );
        for (i, p) in self.pairs.iter().enumerate() {
            assert!(
                p.tx < self.devices.len() && p.rx < self.devices.len(),
                "pair {i} references a missing device"
            );
            assert!(p.tx != p.rx, "pair {i} loops device {} on itself", p.tx);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn independent_pairs_layout() {
        let s = FleetScenario::independent_pairs(
            3,
            Meters::new(0.5),
            Meters::new(10.0),
            1.0,
            1.0,
            Arbitration::Uncoordinated,
        );
        assert_eq!(s.devices.len(), 6);
        assert_eq!(s.pairs.len(), 3);
        // Pair separation is pair_sep; neighbouring pairs sit spacing apart.
        let d01 = s.devices[0].pos.distance(s.devices[1].pos);
        assert!((d01.meters() - 0.5).abs() < 1e-12);
        let d02 = s.devices[0].pos.distance(s.devices[2].pos);
        assert!((d02.meters() - 10.0).abs() < 1e-12);
    }

    #[test]
    fn star_layout_centers_the_hub() {
        let s = FleetScenario::star(
            4,
            Meters::new(0.5),
            99.5,
            0.003,
            Arbitration::TdmaRoundRobin {
                slot: Seconds::new(0.1),
            },
        );
        assert_eq!(s.devices.len(), 5);
        for p in &s.pairs {
            assert_eq!(p.rx, 0, "tags stream to the hub");
            let d = s.devices[p.tx].pos.distance(s.devices[0].pos);
            assert!((d.meters() - 0.5).abs() < 1e-12);
        }
    }

    #[test]
    #[should_panic(expected = "missing device")]
    fn validate_catches_dangling_pair() {
        let devices = vec![DeviceSpec {
            pos: Point::ORIGIN,
            battery: Joules::from_watt_hours(1.0),
        }];
        let _ = FleetScenario::new(
            devices,
            vec![PairSpec::braided(0, 3)],
            Arbitration::Uncoordinated,
        );
    }
}
