//! Property-based tests for the discrete-event kernel's ordering contract,
//! the incremental interference cache's bitwise contract, and the memoized
//! edge kernel's bitwise equivalence to the direct transcendental path.

use braidio_mac::coexistence::ChannelRelation;
use braidio_net::cache::PairGainCache;
use braidio_net::interference::{carrier_contribution, CarrierSource, EdgeKernel, EDGE_TILE};
use braidio_net::EventQueue;
use braidio_radio::characterization::Characterization;
use braidio_rfsim::geometry::Point;
use braidio_units::{Seconds, Watts};
use proptest::prelude::*;

/// Random event keys: coarse-grained times force plenty of ties so the
/// seq/device tie-break actually gets exercised, and the payload is the
/// original index so duplicates remain distinguishable.
fn arb_keys() -> impl Strategy<Value = Vec<(f64, u64, u32)>> {
    proptest::collection::vec((0u32..50, 0u64..4, 0u32..6), 1..64).prop_map(|v| {
        v.into_iter()
            .map(|(t, s, d)| (t as f64 * 0.125, s, d))
            .collect()
    })
}

fn drain(keys: &[(f64, u64, u32)], order: &[usize]) -> Vec<(u64, u64, u32, usize)> {
    let mut q = EventQueue::new();
    for &i in order {
        let (t, s, d) = keys[i];
        q.schedule(Seconds::new(t), s, d, i);
    }
    let mut out = Vec::new();
    while let Some(e) = q.pop() {
        out.push((e.time.seconds().to_bits(), e.seq, e.device, e.event));
    }
    out
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// The kernel's core contract: for keys that are unique, the delivery
    /// sequence is a pure function of the key set — any insertion order
    /// (here: identity vs an arbitrary shuffle) pops identically.
    #[test]
    fn delivery_order_is_insertion_order_invariant(
        raw in arb_keys(),
        shuffle_seed in any::<u64>(),
    ) {
        // Keep the first occurrence of each key: the invariant is stated
        // over unique keys (duplicates intentionally fall back to
        // insertion order, covered by the unit tests).
        let mut keys: Vec<(f64, u64, u32)> = Vec::new();
        for k in raw {
            if !keys.iter().any(|p| (p.0.to_bits(), p.1, p.2) == (k.0.to_bits(), k.1, k.2)) {
                keys.push(k);
            }
        }
        let forward: Vec<usize> = (0..keys.len()).collect();
        // A cheap deterministic Fisher–Yates driven by the seed.
        let mut shuffled = forward.clone();
        let mut state = shuffle_seed | 1;
        for i in (1..shuffled.len()).rev() {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            let j = (state >> 33) as usize % (i + 1);
            shuffled.swap(i, j);
        }
        let a = drain(&keys, &forward);
        let b = drain(&keys, &shuffled);
        prop_assert_eq!(a, b);
    }

    /// Regardless of duplicates or insertion order, delivery is never
    /// behind the clock: times pop in non-decreasing order, and ties pop
    /// in (seq, device) order.
    #[test]
    fn delivery_respects_the_total_order(keys in arb_keys()) {
        let forward: Vec<usize> = (0..keys.len()).collect();
        let popped = drain(&keys, &forward);
        for w in popped.windows(2) {
            let (ta, sa, da, _) = w[0];
            let (tb, sb, db, _) = w[1];
            prop_assert!(
                (ta, sa, da) <= (tb, sb, db),
                "out of order: {:?} before {:?}", w[0], w[1]
            );
        }
    }
}

/// One fleet event the interference cache must track: a pair's session
/// dies, a pair moves (mobility walk refresh), or a pair's channel
/// relation changes (arbitration rotation).
#[derive(Debug, Clone, Copy)]
enum FleetEvent {
    Death(usize),
    Move(usize, Point),
    Relation(usize, u8),
}

/// Random event sequences over `n` pairs: kind, target pair, and the
/// payload (grid-snapped position / relation class) all drawn uniformly.
fn arb_events(n: usize) -> impl Strategy<Value = Vec<FleetEvent>> {
    proptest::collection::vec((0u8..3, 0..n, 0u16..64, 0u16..64, 0u8..3), 0..24).prop_map(|v| {
        v.into_iter()
            .map(|(kind, q, x, y, r)| match kind {
                0 => FleetEvent::Death(q),
                1 => FleetEvent::Move(q, Point::new(x as f64 * 0.25, y as f64 * 0.25)),
                _ => FleetEvent::Relation(q, r),
            })
            .collect()
    })
}

/// The reference model: brute-force rescan in pair-index order — exactly
/// the computation the cache replaced, over the same mirrored state.
fn brute_sum(victim: usize, eps: &[(Point, Point)], live: &[bool], rel: &[u8]) -> Watts {
    let mut acc = Watts::new(0.0);
    for (q, &alive) in live.iter().enumerate() {
        if q == victim || !alive {
            continue;
        }
        acc += edge_power(victim, q, eps, rel);
    }
    acc
}

/// A distinctive distance-decaying fake physics (scaled per relation
/// class): enough to expose any caching or ordering slip bit-for-bit.
fn edge_power(victim: usize, q: usize, eps: &[(Point, Point)], rel: &[u8]) -> Watts {
    let vp = eps[victim].1;
    let (a, b) = eps[q];
    let d = a.distance(vp).min(b.distance(vp)).meters();
    let coupling = [1.0, 0.1, 1e-3][rel[q] as usize];
    Watts::new(coupling * 1e-9 / (1.0 + d * d))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// The incremental cache's bitwise contract under arbitrary event
    /// sequences: after every death / move / relation-change event, every
    /// victim's cached sum equals the brute-force rescan bit-for-bit.
    #[test]
    fn cached_interference_tracks_brute_force_through_events(
        n in 2usize..8,
        seeds in proptest::collection::vec((0u16..64, 0u16..64), 8..9),
        events_raw in arb_events(8),
    ) {
        let mut eps: Vec<(Point, Point)> = seeds[..n]
            .iter()
            .map(|&(x, y)| {
                let p = Point::new(x as f64 * 0.25, y as f64 * 0.25);
                (p, Point::new(p.x, p.y + 0.5))
            })
            .collect();
        let mut live = vec![true; n];
        let mut rel = vec![0u8; n];
        let mut cache = PairGainCache::new(n);

        let check = |cache: &mut PairGainCache,
                         eps: &[(Point, Point)],
                         live: &[bool],
                         rel: &[u8]|
         -> Result<(), TestCaseError> {
            for v in 0..n {
                let got = cache.interference(v, |q| eps[q], |q| edge_power(v, q, eps, rel));
                let want = brute_sum(v, eps, live, rel);
                prop_assert_eq!(
                    got.watts().to_bits(),
                    want.watts().to_bits(),
                    "victim {} diverged: {:?} vs {:?}", v, got, want
                );
                // And the clean-sum fast path returns the same bits
                // without ever calling back into the physics.
                let again = cache.interference(v, |q| eps[q], |_| panic!("sum was clean"));
                prop_assert_eq!(again.watts().to_bits(), got.watts().to_bits());
            }
            Ok(())
        };

        check(&mut cache, &eps, &live, &rel)?;
        for ev in events_raw {
            match ev {
                FleetEvent::Death(q) => {
                    let q = q % n;
                    live[q] = false;
                    cache.mark_dead(q);
                }
                FleetEvent::Move(q, p) => {
                    let q = q % n;
                    // Dead pairs never move (the engine stops refreshing
                    // their walks), and the cache is allowed to keep their
                    // stale edges forever.
                    if live[q] {
                        eps[q] = (p, Point::new(p.x, p.y + 0.5));
                        cache.invalidate_pair(q);
                    }
                }
                FleetEvent::Relation(q, r) => {
                    let q = q % n;
                    if live[q] && rel[q] != r {
                        rel[q] = r;
                        cache.invalidate_pair(q);
                    }
                }
            }
            check(&mut cache, &eps, &live, &rel)?;
        }
    }
}

/// Uniform positions over a 200 m square — irregular distances, so memo
/// keys are dense and distinct (the opposite of the grid's shared-distance
/// structure).
fn arb_point() -> impl Strategy<Value = Point> {
    (0.0f64..200.0, 0.0f64..200.0).prop_map(|(x, y)| Point::new(x, y))
}

/// Check every pair's kernel edge against the direct transcendental path,
/// bit for bit. The kernel is stateful (its FSPL memo fills as distances
/// are seen), so calling this repeatedly over evolving geometry exercises
/// both the miss path (canonical evaluation) and the hit path (table load).
fn assert_kernel_matches_direct(
    kernel: &EdgeKernel,
    ch: &Characterization,
    victim: Point,
    pairs: &[(Point, Point, ChannelRelation)],
) -> Result<(), TestCaseError> {
    for &(a, b, rel) in pairs {
        let got = kernel.carrier_from_pair(victim, a, b, rel);
        let pos = if a.distance(victim) <= b.distance(victim) {
            a
        } else {
            b
        };
        let want = carrier_contribution(
            ch,
            victim,
            &CarrierSource {
                pos,
                rf: ch.carrier_rf,
                relation: rel,
            },
        );
        prop_assert_eq!(
            got.watts().to_bits(),
            want.watts().to_bits(),
            "kernel diverged at a={:?} b={:?} rel={:?}: {:?} vs {:?}",
            a,
            b,
            rel,
            got,
            want
        );
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The tentpole contract: the memoized edge kernel is bit-for-bit the
    /// direct `carrier_contribution` path across random geometries,
    /// quarter-meter mobility walks (which revisit distances, so later
    /// rounds run almost entirely on memo hits), and relation changes.
    #[test]
    fn edge_kernel_is_bitwise_equal_to_direct_path(
        victim in arb_point(),
        raw in proptest::collection::vec((arb_point(), arb_point(), 0u8..3), 1..40),
        walks in proptest::collection::vec((0usize..40, -4i8..5i8, -4i8..5i8), 0..16),
    ) {
        let ch = Characterization::braidio();
        let kernel = EdgeKernel::new(&ch);
        let mut pairs: Vec<(Point, Point, ChannelRelation)> = raw
            .into_iter()
            .map(|(a, b, r)| (a, b, ChannelRelation::ALL[r as usize]))
            .collect();
        assert_kernel_matches_direct(&kernel, &ch, victim, &pairs)?;
        for (i, dx, dy) in walks {
            let i = i % pairs.len();
            let (a, b, rel) = pairs[i];
            pairs[i] = (
                Point::new(a.x + dx as f64 * 0.25, a.y + dy as f64 * 0.25),
                Point::new(b.x + dy as f64 * 0.25, b.y + dx as f64 * 0.25),
                ChannelRelation::ALL[(rel.index() + 1) % 3],
            );
            assert_kernel_matches_direct(&kernel, &ch, victim, &pairs)?;
        }
    }

    /// Degenerate geometry: every endpoint at the same position (zero
    /// distances everywhere, including victim-coincident sources). The
    /// memo key is a single bit pattern; the kernel must still match the
    /// direct path exactly, on the first (miss) and every later (hit) call.
    #[test]
    fn edge_kernel_survives_all_same_position(
        p in arb_point(),
        n in 1usize..20,
        rounds in 1usize..4,
    ) {
        let ch = Characterization::braidio();
        let kernel = EdgeKernel::new(&ch);
        let pairs: Vec<(Point, Point, ChannelRelation)> = (0..n)
            .map(|i| (p, p, ChannelRelation::ALL[i % 3]))
            .collect();
        for _ in 0..rounds {
            assert_kernel_matches_direct(&kernel, &ch, p, &pairs)?;
        }
    }

    /// The tiled sweep is lane-for-lane the scalar kernel: for any tile of
    /// up to EDGE_TILE edges (duplicate distances included), `carrier_tile`
    /// writes exactly the bits `carrier_from_pair` returns per lane.
    #[test]
    fn edge_tile_is_bitwise_equal_to_scalar_kernel(
        victim in arb_point(),
        raw in proptest::collection::vec((arb_point(), 0u8..3, any::<bool>()), 1..EDGE_TILE + 1),
    ) {
        let ch = Characterization::braidio();
        let kernel = EdgeKernel::new(&ch);
        let n = raw.len();
        // `dup` folds an edge onto the first edge's endpoints, so tiles
        // carry repeated distances and the batch path's in-tile duplicate
        // handling (miss once, hit the rest) is exercised.
        let first = raw[0].0;
        let a: Vec<Point> = raw
            .iter()
            .map(|&(p, _, dup)| if dup { first } else { p })
            .collect();
        let b: Vec<Point> = raw
            .iter()
            .map(|&(p, _, _)| Point::new(p.x + 0.5, p.y))
            .collect();
        let rel: Vec<ChannelRelation> = raw
            .iter()
            .map(|&(_, r, _)| ChannelRelation::ALL[r as usize])
            .collect();
        let mut out = vec![Watts::new(0.0); n];
        kernel.carrier_tile(victim, &a, &b, &rel, &mut out);
        for i in 0..n {
            let want = kernel.carrier_from_pair(victim, a[i], b[i], rel[i]);
            prop_assert_eq!(
                out[i].watts().to_bits(),
                want.watts().to_bits(),
                "lane {} diverged", i
            );
        }
    }
}
