//! Property-based tests for the discrete-event kernel's ordering contract.

use braidio_net::EventQueue;
use braidio_units::Seconds;
use proptest::prelude::*;

/// Random event keys: coarse-grained times force plenty of ties so the
/// seq/device tie-break actually gets exercised, and the payload is the
/// original index so duplicates remain distinguishable.
fn arb_keys() -> impl Strategy<Value = Vec<(f64, u64, u32)>> {
    proptest::collection::vec((0u32..50, 0u64..4, 0u32..6), 1..64).prop_map(|v| {
        v.into_iter()
            .map(|(t, s, d)| (t as f64 * 0.125, s, d))
            .collect()
    })
}

fn drain(keys: &[(f64, u64, u32)], order: &[usize]) -> Vec<(u64, u64, u32, usize)> {
    let mut q = EventQueue::new();
    for &i in order {
        let (t, s, d) = keys[i];
        q.schedule(Seconds::new(t), s, d, i);
    }
    let mut out = Vec::new();
    while let Some(e) = q.pop() {
        out.push((e.time.seconds().to_bits(), e.seq, e.device, e.event));
    }
    out
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// The kernel's core contract: for keys that are unique, the delivery
    /// sequence is a pure function of the key set — any insertion order
    /// (here: identity vs an arbitrary shuffle) pops identically.
    #[test]
    fn delivery_order_is_insertion_order_invariant(
        raw in arb_keys(),
        shuffle_seed in any::<u64>(),
    ) {
        // Keep the first occurrence of each key: the invariant is stated
        // over unique keys (duplicates intentionally fall back to
        // insertion order, covered by the unit tests).
        let mut keys: Vec<(f64, u64, u32)> = Vec::new();
        for k in raw {
            if !keys.iter().any(|p| (p.0.to_bits(), p.1, p.2) == (k.0.to_bits(), k.1, k.2)) {
                keys.push(k);
            }
        }
        let forward: Vec<usize> = (0..keys.len()).collect();
        // A cheap deterministic Fisher–Yates driven by the seed.
        let mut shuffled = forward.clone();
        let mut state = shuffle_seed | 1;
        for i in (1..shuffled.len()).rev() {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            let j = (state >> 33) as usize % (i + 1);
            shuffled.swap(i, j);
        }
        let a = drain(&keys, &forward);
        let b = drain(&keys, &shuffled);
        prop_assert_eq!(a, b);
    }

    /// Regardless of duplicates or insertion order, delivery is never
    /// behind the clock: times pop in non-decreasing order, and ties pop
    /// in (seq, device) order.
    #[test]
    fn delivery_respects_the_total_order(keys in arb_keys()) {
        let forward: Vec<usize> = (0..keys.len()).collect();
        let popped = drain(&keys, &forward);
        for w in popped.windows(2) {
            let (ta, sa, da, _) = w[0];
            let (tb, sb, db, _) = w[1];
            prop_assert!(
                (ta, sa, da) <= (tb, sb, db),
                "out of order: {:?} before {:?}", w[0], w[1]
            );
        }
    }
}
