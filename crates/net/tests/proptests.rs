//! Property-based tests for the discrete-event kernel's ordering contract
//! and the incremental interference cache's bitwise contract.

use braidio_net::cache::PairGainCache;
use braidio_net::EventQueue;
use braidio_rfsim::geometry::Point;
use braidio_units::{Seconds, Watts};
use proptest::prelude::*;

/// Random event keys: coarse-grained times force plenty of ties so the
/// seq/device tie-break actually gets exercised, and the payload is the
/// original index so duplicates remain distinguishable.
fn arb_keys() -> impl Strategy<Value = Vec<(f64, u64, u32)>> {
    proptest::collection::vec((0u32..50, 0u64..4, 0u32..6), 1..64).prop_map(|v| {
        v.into_iter()
            .map(|(t, s, d)| (t as f64 * 0.125, s, d))
            .collect()
    })
}

fn drain(keys: &[(f64, u64, u32)], order: &[usize]) -> Vec<(u64, u64, u32, usize)> {
    let mut q = EventQueue::new();
    for &i in order {
        let (t, s, d) = keys[i];
        q.schedule(Seconds::new(t), s, d, i);
    }
    let mut out = Vec::new();
    while let Some(e) = q.pop() {
        out.push((e.time.seconds().to_bits(), e.seq, e.device, e.event));
    }
    out
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// The kernel's core contract: for keys that are unique, the delivery
    /// sequence is a pure function of the key set — any insertion order
    /// (here: identity vs an arbitrary shuffle) pops identically.
    #[test]
    fn delivery_order_is_insertion_order_invariant(
        raw in arb_keys(),
        shuffle_seed in any::<u64>(),
    ) {
        // Keep the first occurrence of each key: the invariant is stated
        // over unique keys (duplicates intentionally fall back to
        // insertion order, covered by the unit tests).
        let mut keys: Vec<(f64, u64, u32)> = Vec::new();
        for k in raw {
            if !keys.iter().any(|p| (p.0.to_bits(), p.1, p.2) == (k.0.to_bits(), k.1, k.2)) {
                keys.push(k);
            }
        }
        let forward: Vec<usize> = (0..keys.len()).collect();
        // A cheap deterministic Fisher–Yates driven by the seed.
        let mut shuffled = forward.clone();
        let mut state = shuffle_seed | 1;
        for i in (1..shuffled.len()).rev() {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            let j = (state >> 33) as usize % (i + 1);
            shuffled.swap(i, j);
        }
        let a = drain(&keys, &forward);
        let b = drain(&keys, &shuffled);
        prop_assert_eq!(a, b);
    }

    /// Regardless of duplicates or insertion order, delivery is never
    /// behind the clock: times pop in non-decreasing order, and ties pop
    /// in (seq, device) order.
    #[test]
    fn delivery_respects_the_total_order(keys in arb_keys()) {
        let forward: Vec<usize> = (0..keys.len()).collect();
        let popped = drain(&keys, &forward);
        for w in popped.windows(2) {
            let (ta, sa, da, _) = w[0];
            let (tb, sb, db, _) = w[1];
            prop_assert!(
                (ta, sa, da) <= (tb, sb, db),
                "out of order: {:?} before {:?}", w[0], w[1]
            );
        }
    }
}

/// One fleet event the interference cache must track: a pair's session
/// dies, a pair moves (mobility walk refresh), or a pair's channel
/// relation changes (arbitration rotation).
#[derive(Debug, Clone, Copy)]
enum FleetEvent {
    Death(usize),
    Move(usize, Point),
    Relation(usize, u8),
}

/// Random event sequences over `n` pairs: kind, target pair, and the
/// payload (grid-snapped position / relation class) all drawn uniformly.
fn arb_events(n: usize) -> impl Strategy<Value = Vec<FleetEvent>> {
    proptest::collection::vec((0u8..3, 0..n, 0u16..64, 0u16..64, 0u8..3), 0..24).prop_map(|v| {
        v.into_iter()
            .map(|(kind, q, x, y, r)| match kind {
                0 => FleetEvent::Death(q),
                1 => FleetEvent::Move(q, Point::new(x as f64 * 0.25, y as f64 * 0.25)),
                _ => FleetEvent::Relation(q, r),
            })
            .collect()
    })
}

/// The reference model: brute-force rescan in pair-index order — exactly
/// the computation the cache replaced, over the same mirrored state.
fn brute_sum(victim: usize, eps: &[(Point, Point)], live: &[bool], rel: &[u8]) -> Watts {
    let mut acc = Watts::new(0.0);
    for (q, &alive) in live.iter().enumerate() {
        if q == victim || !alive {
            continue;
        }
        acc += edge_power(victim, q, eps, rel);
    }
    acc
}

/// A distinctive distance-decaying fake physics (scaled per relation
/// class): enough to expose any caching or ordering slip bit-for-bit.
fn edge_power(victim: usize, q: usize, eps: &[(Point, Point)], rel: &[u8]) -> Watts {
    let vp = eps[victim].1;
    let (a, b) = eps[q];
    let d = a.distance(vp).min(b.distance(vp)).meters();
    let coupling = [1.0, 0.1, 1e-3][rel[q] as usize];
    Watts::new(coupling * 1e-9 / (1.0 + d * d))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// The incremental cache's bitwise contract under arbitrary event
    /// sequences: after every death / move / relation-change event, every
    /// victim's cached sum equals the brute-force rescan bit-for-bit.
    #[test]
    fn cached_interference_tracks_brute_force_through_events(
        n in 2usize..8,
        seeds in proptest::collection::vec((0u16..64, 0u16..64), 8..9),
        events_raw in arb_events(8),
    ) {
        let mut eps: Vec<(Point, Point)> = seeds[..n]
            .iter()
            .map(|&(x, y)| {
                let p = Point::new(x as f64 * 0.25, y as f64 * 0.25);
                (p, Point::new(p.x, p.y + 0.5))
            })
            .collect();
        let mut live = vec![true; n];
        let mut rel = vec![0u8; n];
        let mut cache = PairGainCache::new(n);

        let check = |cache: &mut PairGainCache,
                         eps: &[(Point, Point)],
                         live: &[bool],
                         rel: &[u8]|
         -> Result<(), TestCaseError> {
            for v in 0..n {
                let got = cache.interference(v, |q| eps[q], |q| edge_power(v, q, eps, rel));
                let want = brute_sum(v, eps, live, rel);
                prop_assert_eq!(
                    got.watts().to_bits(),
                    want.watts().to_bits(),
                    "victim {} diverged: {:?} vs {:?}", v, got, want
                );
                // And the clean-sum fast path returns the same bits
                // without ever calling back into the physics.
                let again = cache.interference(v, |q| eps[q], |_| panic!("sum was clean"));
                prop_assert_eq!(again.watts().to_bits(), got.watts().to_bits());
            }
            Ok(())
        };

        check(&mut cache, &eps, &live, &rel)?;
        for ev in events_raw {
            match ev {
                FleetEvent::Death(q) => {
                    let q = q % n;
                    live[q] = false;
                    cache.mark_dead(q);
                }
                FleetEvent::Move(q, p) => {
                    let q = q % n;
                    // Dead pairs never move (the engine stops refreshing
                    // their walks), and the cache is allowed to keep their
                    // stale edges forever.
                    if live[q] {
                        eps[q] = (p, Point::new(p.x, p.y + 0.5));
                        cache.invalidate_pair(q);
                    }
                }
                FleetEvent::Relation(q, r) => {
                    let q = q % n;
                    if live[q] && rel[q] != r {
                        rel[q] = r;
                        cache.invalidate_pair(q);
                    }
                }
            }
            check(&mut cache, &eps, &live, &rel)?;
        }
    }
}
