//! Parallel-vs-serial planning-wave equivalence, property-tested.
//!
//! PR 7 fans the planning wave's heavy stages (interference-sum rebuilds,
//! options-memo miss evaluation, per-pair key collection) out over the
//! worker pool. The determinism contract (DESIGN.md §12) says the fan-out
//! is pure scheduling: for any scenario, any thread count, and therefore
//! any chunk geometry, everything observable is byte-identical to the
//! 1-thread run. This test states that contract as a property over random
//! scenarios: reports bitwise, JSONL traces stringwise, per-device energy
//! ledgers bitwise.
//!
//! Chunk sizes are not an independent knob at this layer — the wave uses
//! [`braidio_pool::default_chunk`], which is a pure function of the item
//! count and thread count — so sweeping threads {1, 2, 4, 8} over random
//! pair counts sweeps the chunk boundaries too (1 pair per chunk up to
//! everything in one chunk). Raw chunk-size invariance of the pool itself
//! is covered by the pool crate's own tests.
//!
//! Everything runs in ONE test function: the telemetry capture buffer is
//! process-global, and the test harness runs sibling `#[test]` functions
//! concurrently.

use braidio_mac::mobility::LinearWalk;
use braidio_net::{run_fleet, Arbitration, FleetReport, FleetScenario};
use braidio_telemetry as telemetry;
use braidio_units::{Meters, Seconds};
use proptest::prelude::*;

/// The thread counts the acceptance gate cares about. 1 is the serial
/// reference; 8 exceeds the container's core count, so oversubscription is
/// covered too.
const THREADS: [usize; 4] = [1, 2, 4, 8];

/// A random small fleet: grid or star topology, every arbitration policy,
/// optional far-field cull, optional mid-run mobility. Small horizons keep
/// the 4-thread-count sweep affordable per case while still crossing
/// several replan waves. The vendored proptest shim has no `prop_oneof!`,
/// so topology and policy are integer selectors mapped in one `prop_map`.
fn arb_scenario() -> impl Strategy<Value = FleetScenario> {
    (0u32..4, 2usize..=16, 0u32..3, any::<bool>(), 0u32..3).prop_map(
        |(topo, m, arb_sel, cull, mobile)| {
            let arb = match arb_sel {
                0 => Arbitration::Uncoordinated,
                1 => Arbitration::ChannelPlan { channels: 2 },
                _ => Arbitration::TdmaRoundRobin {
                    slot: Seconds::new(0.25),
                },
            };
            if topo == 3 {
                // Stars with coin-cell tags (1 case in 4): uncoordinated
                // runs kill sessions, so the death path (mark_dead, wave
                // re-dirtying) runs under the fan-out too.
                let tags = 3 + m % 6;
                return FleetScenario::star(tags, Meters::new(0.5), 99.5, 0.002, arb)
                    .with_horizon(Seconds::new(8.0));
            }
            let mut sc =
                FleetScenario::grid_pairs(m, Meters::new(0.5), Meters::new(3.0), 1.0, 1.0, arb)
                    .with_horizon(Seconds::new(6.0));
            sc.replan_interval = Seconds::new(1.0);
            if cull {
                sc = sc.with_far_field_cull();
            }
            // A walking pair re-dirties the interference field mid-run,
            // driving the wave's lazy per-pair fallback under the fan-out.
            if mobile > 0 {
                sc.pairs[0].walk = Some(LinearWalk {
                    start: Meters::new(0.5),
                    end: Meters::new(0.5 + mobile as f64),
                    duration: Seconds::new(4.0),
                });
            }
            sc
        },
    )
}

/// Per-device energy ledger: `((run, device), joules-as-bits)`, sorted.
type EnergyLedger = Vec<((u32, u32), u64)>;

/// Run the scenario at `threads` workers with event capture on, returning
/// the report, the rendered JSONL trace, and the folded energy ledger.
fn traced_at(sc: &FleetScenario, threads: usize) -> (FleetReport, String, EnergyLedger) {
    braidio_pool::with_threads(threads, || {
        telemetry::set_enabled(true);
        let _ = telemetry::take_events();
        let report = telemetry::with_run(0, || run_fleet(sc));
        let events = telemetry::take_events();
        telemetry::set_enabled(false);
        let jsonl = telemetry::sink::render_jsonl(&events);
        let mut ledger: EnergyLedger = telemetry::sink::fold_energy(&events)
            .into_iter()
            .filter_map(|((run, track), j)| match track {
                telemetry::Track::Device(d) => Some(((run, d), j.to_bits())),
                _ => None,
            })
            .collect();
        ledger.sort_unstable();
        (report, jsonl, ledger)
    })
}

/// Every field of the two reports, bit-for-bit.
fn assert_reports_bitwise(
    a: &FleetReport,
    b: &FleetReport,
    what: &str,
) -> Result<(), TestCaseError> {
    prop_assert_eq!(a.events, b.events, "{}: event counts", what);
    prop_assert_eq!(a.replans, b.replans, "{}: replan counts", what);
    prop_assert_eq!(
        a.end_time.seconds().to_bits(),
        b.end_time.seconds().to_bits(),
        "{}: end time",
        what
    );
    prop_assert_eq!(a.pair_bits.len(), b.pair_bits.len(), "{}: pair count", what);
    for (p, (x, y)) in a.pair_bits.iter().zip(&b.pair_bits).enumerate() {
        prop_assert_eq!(x.to_bits(), y.to_bits(), "{}: pair {} bits", what, p);
    }
    for (p, (x, y)) in a.pair_mode_bits.iter().zip(&b.pair_mode_bits).enumerate() {
        for ((ma, va), (mb, vb)) in x.iter().zip(y) {
            prop_assert_eq!(ma, mb, "{}: pair {} mode order", what, p);
            prop_assert_eq!(
                va.to_bits(),
                vb.to_bits(),
                "{}: pair {} {:?} bits",
                what,
                p,
                ma
            );
        }
    }
    for (p, (x, y)) in a.pair_dead_at.iter().zip(&b.pair_dead_at).enumerate() {
        prop_assert_eq!(
            x.map(|t| t.seconds().to_bits()),
            y.map(|t| t.seconds().to_bits()),
            "{}: pair {} death time",
            what,
            p
        );
    }
    for (d, (x, y)) in a.device_spent.iter().zip(&b.device_spent).enumerate() {
        prop_assert_eq!(
            x.joules().to_bits(),
            y.joules().to_bits(),
            "{}: device {} energy",
            what,
            d
        );
    }
    for (d, (x, y)) in a.device_dead_at.iter().zip(&b.device_dead_at).enumerate() {
        prop_assert_eq!(
            x.map(|t| t.seconds().to_bits()),
            y.map(|t| t.seconds().to_bits()),
            "{}: device {} death time",
            what,
            d
        );
    }
    for (d, (x, y)) in a
        .device_carrier_time
        .iter()
        .zip(&b.device_carrier_time)
        .enumerate()
    {
        prop_assert_eq!(
            x.seconds().to_bits(),
            y.seconds().to_bits(),
            "{}: device {} carrier time",
            what,
            d
        );
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// The intra-wave parallelism contract: for a random scenario, runs at
    /// 2, 4, and 8 worker threads match the 1-thread run byte-for-byte —
    /// report fields bitwise, JSONL trace stringwise, per-device energy
    /// ledger bitwise.
    #[test]
    fn wave_is_byte_identical_at_any_thread_count(sc in arb_scenario()) {
        let (serial, jsonl_1, ledger_1) = traced_at(&sc, THREADS[0]);
        prop_assert!(!ledger_1.is_empty(), "serial run produced no energy events");
        for &t in &THREADS[1..] {
            let what = format!("{} pairs, j{t}", sc.pairs.len());
            let (par, jsonl_t, ledger_t) = traced_at(&sc, t);
            assert_reports_bitwise(&serial, &par, &what)?;
            prop_assert_eq!(&jsonl_1, &jsonl_t, "{}: JSONL trace diverged", &what);
            prop_assert_eq!(&ledger_1, &ledger_t, "{}: energy ledgers diverged", &what);
        }
    }
}
