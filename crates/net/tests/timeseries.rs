//! Time-series sampler contract: a pure witness, thread-count invariant.
//!
//! PR 9 adds `run_fleet_sampled`, which snapshots fleet gauges on a fixed
//! simulated-time grid from inside the engine's serial event loop. Two
//! properties make it safe to ship alongside the byte-stability gates:
//!
//! 1. **Pure witness** — sampling must not perturb the simulation. The
//!    report returned by `run_fleet_sampled` is compared bitwise against
//!    `run_fleet` on the same scenario, churn fields included.
//! 2. **Thread invariance** — the sampler runs in the serial loop, so the
//!    rendered CSV/JSONL must be byte-identical at 1, 4 and 8 workers.
//!
//! Everything runs in ONE test function: `braidio_pool::with_threads`
//! swaps the process-global worker pool, and the test harness runs
//! sibling `#[test]` functions concurrently.

use braidio_net::{run_fleet, run_fleet_sampled, Arbitration, FleetReport, FleetScenario};
use braidio_telemetry::timeseries::{render_csv, render_jsonl, SAMPLE_PHASES};
use braidio_units::{Meters, Seconds};

/// Every field of the two reports, bit-for-bit (churn block included when
/// present). Sampling may not move a single bit.
fn assert_same_report(a: &FleetReport, b: &FleetReport, what: &str) {
    assert_eq!(a.events, b.events, "{what}: event counts");
    assert_eq!(a.replans, b.replans, "{what}: replan counts");
    for (p, (x, y)) in a.pair_bits.iter().zip(&b.pair_bits).enumerate() {
        assert_eq!(x.to_bits(), y.to_bits(), "{what}: pair {p} bits");
    }
    for (p, (x, y)) in a.pair_dead_at.iter().zip(&b.pair_dead_at).enumerate() {
        assert_eq!(
            x.map(|t| t.seconds().to_bits()),
            y.map(|t| t.seconds().to_bits()),
            "{what}: pair {p} death time"
        );
    }
    for (d, (x, y)) in a.device_spent.iter().zip(&b.device_spent).enumerate() {
        assert_eq!(
            x.joules().to_bits(),
            y.joules().to_bits(),
            "{what}: device {d} energy"
        );
    }
    assert_eq!(
        a.churn.is_some(),
        b.churn.is_some(),
        "{what}: churn presence"
    );
    if let (Some(ca), Some(cb)) = (a.churn.as_ref(), b.churn.as_ref()) {
        assert_eq!(ca.sessions, cb.sessions, "{what}: sessions");
        assert_eq!(ca.admitted, cb.admitted, "{what}: admitted");
        assert_eq!(ca.departed, cb.departed, "{what}: departed");
        assert_eq!(ca.died, cb.died, "{what}: died");
        assert_eq!(ca.roams, cb.roams, "{what}: roams");
        for (i, (x, y)) in ca.phase_time.iter().zip(&cb.phase_time).enumerate() {
            assert_eq!(x.to_bits(), y.to_bits(), "{what}: phase time {i}");
        }
    }
}

#[test]
fn sampling_is_a_pure_witness_and_thread_invariant() {
    let churn = FleetScenario::open_system(
        2,
        12,
        Seconds::new(20.0),
        42,
        Arbitration::TdmaRoundRobin {
            slot: Seconds::new(0.25),
        },
    );
    let closed = FleetScenario::independent_pairs(
        3,
        Meters::new(0.5),
        Meters::new(10.0),
        1.0,
        1.0,
        Arbitration::Uncoordinated,
    )
    .with_horizon(Seconds::new(10.0));

    for (what, sc) in [("churn", &churn), ("closed", &closed)] {
        let dt = sc.horizon.seconds() / 40.0;
        let baseline = run_fleet(sc);
        let (report, series) = run_fleet_sampled(sc, Seconds::new(dt));

        // Pure witness: sampling changed nothing the report can see.
        assert_same_report(&baseline, &report, what);

        // Row grid: t = k*dt for k = 0..=40, first row at t=0, last at the
        // horizon; gauges are internally consistent at every row.
        assert_eq!(series.samples.len(), 41, "{what}: row count");
        assert_eq!(series.samples[0].t, 0.0, "{what}: first row time");
        let last = series.samples.last().unwrap();
        assert!(
            (last.t - sc.horizon.seconds()).abs() < 1e-9,
            "{what}: last row at t={}, horizon {}",
            last.t,
            sc.horizon.seconds()
        );
        let mut prev_bits = -1.0;
        for (k, row) in series.samples.iter().enumerate() {
            assert!(
                row.cum_bits >= prev_bits,
                "{what}: cum_bits decreased at row {k}"
            );
            prev_bits = row.cum_bits;
            let occupied: u32 = row.phase_counts.iter().sum();
            assert!(
                (occupied as usize) <= sc.pairs.len(),
                "{what}: row {k} counts {occupied} sessions in {} slots",
                sc.pairs.len()
            );
            assert_eq!(row.phase_counts.len(), SAMPLE_PHASES);
        }
        // A closed fleet never admits or departs: every pair occupies a
        // phase slot in every row.
        if what == "closed" {
            for row in &series.samples {
                let occupied: u32 = row.phase_counts.iter().sum();
                assert_eq!(occupied as usize, sc.pairs.len(), "{what}: occupancy");
            }
        }

        // Thread invariance: the sampler lives in the serial event loop, so
        // both renderings are byte-identical at any worker count.
        let rendered: Vec<(String, String)> = [1usize, 4, 8]
            .iter()
            .map(|&threads| {
                braidio_pool::with_threads(threads, || {
                    let (_, mut s) = run_fleet_sampled(sc, Seconds::new(dt));
                    s.name = format!("{what}.test");
                    let all = [s];
                    (render_csv(&all), render_jsonl(&all))
                })
            })
            .collect();
        for (t, (csv, jsonl)) in rendered.iter().enumerate().skip(1) {
            assert_eq!(&rendered[0].0, csv, "{what}: CSV diverged at rung {t}");
            assert_eq!(&rendered[0].1, jsonl, "{what}: JSONL diverged at rung {t}");
        }
    }
}
