//! The planning wave is allocation-free in steady state — asserted, not
//! just documented. A counting allocator wraps `System` for this test
//! binary; running the same scenario at horizon T and 2T must cost the
//! same heap traffic, because everything the extra simulated time does
//! (planning waves, quantum scheduling, interference sums, memoized
//! option lookups on warm keys) lives in preallocated or inline storage.
//! Only setup (scenario construction, event-queue/cache sizing, the first
//! wave's memo inserts) may allocate.

use braidio_net::{run_fleet, Arbitration, FleetScenario};
use braidio_units::{Meters, Seconds};
use std::alloc::{GlobalAlloc, Layout, System};
use std::cell::Cell;

thread_local! {
    static ALLOCATIONS: Cell<u64> = const { Cell::new(0) };
}

struct CountingAllocator;

// SAFETY: delegates all allocation to `System`; only bookkeeping added.
unsafe impl GlobalAlloc for CountingAllocator {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.with(|c| c.set(c.get() + 1));
        unsafe { System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.with(|c| c.set(c.get() + 1));
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}

#[global_allocator]
static COUNTING: CountingAllocator = CountingAllocator;

fn allocations() -> u64 {
    ALLOCATIONS.with(|c| c.get())
}

fn scenario(pairs: usize, horizon: Seconds, arb: Arbitration) -> FleetScenario {
    FleetScenario::grid_pairs(pairs, Meters::new(0.5), Meters::new(3.0), 1.0, 1.0, arb)
        .with_horizon(horizon)
}

#[test]
fn planning_wave_is_allocation_free_in_steady_state() {
    for arb in [
        Arbitration::Uncoordinated,
        Arbitration::TdmaRoundRobin {
            slot: Seconds::new(0.25),
        },
    ] {
        // Warm every process-wide cache (characterization, BER surface)
        // so neither run below pays first-touch costs.
        run_fleet(&scenario(8, Seconds::new(10.0), arb));

        let measure = |horizon: Seconds| {
            let sc = scenario(8, horizon, arb);
            let before = allocations();
            let report = run_fleet(&sc);
            (allocations() - before, report)
        };
        let (short, r1) = measure(Seconds::new(30.0));
        let (long, r2) = measure(Seconds::new(60.0));
        assert!(
            r2.total_bits() > r1.total_bits(),
            "{arb:?}: the longer run must actually do more work"
        );
        // Doubling the simulated time adds re-plan waves and thousands of
        // quantum events; none of them may touch the heap. The small slack
        // covers memo inserts for interference values first reached after
        // the 30 s mark (pair deaths change the keys).
        assert!(
            long <= short + 64,
            "{arb:?}: steady state allocates ({short} allocs at 30 s, {long} at 60 s)"
        );
    }
}
