//! Open-system churn determinism, property-tested.
//!
//! PR 8 turns the one-shot fleet scenarios into an open system: sessions
//! are discovered by beacon, ride the `net::lifecycle` phase machine, and
//! leave — by departure, battery death, or giving up after repeated
//! cooldowns. The determinism contract (DESIGN.md §13) extends to all of
//! it: the arrival stream is drawn once at scenario construction, the
//! engine replays pure data, and every observable — including the new
//! churn report — is byte-identical at any thread count.
//!
//! This test states that contract as a property over random open-system
//! scenarios: reports bitwise (churn fields included), JSONL traces
//! stringwise, and the telemetry energy ledger must *reconstruct* each
//! device's measured drain to 1e-9 relative — session rows that are
//! recycled through cooldown and revival must not lose or double-count a
//! single debit.
//!
//! Everything runs in ONE test function: the telemetry capture buffer is
//! process-global, and the test harness runs sibling `#[test]` functions
//! concurrently.

use braidio_net::{run_fleet, Arbitration, FleetReport, FleetScenario};
use braidio_telemetry as telemetry;
use braidio_units::Seconds;
use proptest::prelude::*;

/// Serial reference plus the two parallel rungs the acceptance gate cares
/// about (8 exceeds the container's core count, covering oversubscription).
const THREADS: [usize; 3] = [1, 4, 8];

/// A random small open system: 1–4 beacon hubs, a seeded stream of up to
/// 40 expected sessions, every arbitration policy. The 20 s horizon keeps
/// a case affordable while still spanning several dwells (mean dwell is
/// `horizon / 6`), so arrivals, roams, departures, frail-tag deaths and
/// cooldown recycling all occur across the sweep. The vendored proptest
/// shim has no `prop_oneof!`, so the policy is an integer selector mapped
/// in one `prop_map`.
fn arb_open_system() -> impl Strategy<Value = FleetScenario> {
    (1usize..=4, 4usize..=40, 0u32..3, any::<u64>()).prop_map(|(hubs, sessions, arb_sel, seed)| {
        let arb = match arb_sel {
            0 => Arbitration::Uncoordinated,
            1 => Arbitration::ChannelPlan { channels: 2 },
            _ => Arbitration::TdmaRoundRobin {
                slot: Seconds::new(0.25),
            },
        };
        FleetScenario::open_system(hubs, sessions, Seconds::new(20.0), seed, arb)
    })
}

/// Per-device energy ledger: `((run, device), joules)`, sorted by key.
type EnergyLedger = Vec<((u32, u32), f64)>;

/// Run the scenario at `threads` workers with event capture on, returning
/// the report, the rendered JSONL trace, and the folded energy ledger.
fn traced_at(sc: &FleetScenario, threads: usize) -> (FleetReport, String, EnergyLedger) {
    braidio_pool::with_threads(threads, || {
        telemetry::set_enabled(true);
        let _ = telemetry::take_events();
        let report = telemetry::with_run(0, || run_fleet(sc));
        let events = telemetry::take_events();
        telemetry::set_enabled(false);
        let jsonl = telemetry::sink::render_jsonl(&events);
        let mut ledger: EnergyLedger = telemetry::sink::fold_energy(&events)
            .into_iter()
            .filter_map(|((run, track), j)| match track {
                telemetry::Track::Device(d) => Some(((run, d), j)),
                _ => None,
            })
            .collect();
        ledger.sort_unstable_by_key(|entry| entry.0);
        (report, jsonl, ledger)
    })
}

/// Every field of the two reports — the closed-system columns and the
/// churn report — bit-for-bit.
fn assert_reports_bitwise(
    a: &FleetReport,
    b: &FleetReport,
    what: &str,
) -> Result<(), TestCaseError> {
    prop_assert_eq!(a.events, b.events, "{}: event counts", what);
    prop_assert_eq!(a.replans, b.replans, "{}: replan counts", what);
    for (p, (x, y)) in a.pair_bits.iter().zip(&b.pair_bits).enumerate() {
        prop_assert_eq!(x.to_bits(), y.to_bits(), "{}: pair {} bits", what, p);
    }
    for (p, (x, y)) in a.pair_dead_at.iter().zip(&b.pair_dead_at).enumerate() {
        prop_assert_eq!(
            x.map(|t| t.seconds().to_bits()),
            y.map(|t| t.seconds().to_bits()),
            "{}: pair {} death time",
            what,
            p
        );
    }
    for (d, (x, y)) in a.device_spent.iter().zip(&b.device_spent).enumerate() {
        prop_assert_eq!(
            x.joules().to_bits(),
            y.joules().to_bits(),
            "{}: device {} energy",
            what,
            d
        );
    }
    let (ca, cb) = (
        a.churn.as_ref().expect("open system reports churn"),
        b.churn.as_ref().expect("open system reports churn"),
    );
    prop_assert_eq!(ca.sessions, cb.sessions, "{}: session counts", what);
    prop_assert_eq!(ca.admitted, cb.admitted, "{}: admitted", what);
    prop_assert_eq!(ca.departed, cb.departed, "{}: departed", what);
    prop_assert_eq!(ca.died, cb.died, "{}: died", what);
    prop_assert_eq!(ca.roams, cb.roams, "{}: roams", what);
    prop_assert_eq!(
        ca.admission_latency.len(),
        cb.admission_latency.len(),
        "{}: admission counts",
        what
    );
    for (i, (x, y)) in ca
        .admission_latency
        .iter()
        .zip(&cb.admission_latency)
        .enumerate()
    {
        prop_assert_eq!(
            x.seconds().to_bits(),
            y.seconds().to_bits(),
            "{}: admission latency {}",
            what,
            i
        );
    }
    for (i, (x, y)) in ca.phase_time.iter().zip(&cb.phase_time).enumerate() {
        prop_assert_eq!(x.to_bits(), y.to_bits(), "{}: phase time {}", what, i);
    }
    prop_assert_eq!(
        ca.session_half_life.map(|t| t.seconds().to_bits()),
        cb.session_half_life.map(|t| t.seconds().to_bits()),
        "{}: session half-life",
        what
    );
    for (p, (x, y)) in ca.window_bits.iter().zip(&cb.window_bits).enumerate() {
        prop_assert_eq!(x.to_bits(), y.to_bits(), "{}: pair {} window bits", what, p);
    }
    Ok(())
}

/// The ledger must reconstruct every device's measured drain to 1e-9
/// relative — including devices whose sessions were recycled through
/// cooldown, revived, or killed mid-quantum.
fn assert_ledger_reconstructs(
    report: &FleetReport,
    ledger: &EnergyLedger,
    what: &str,
) -> Result<(), TestCaseError> {
    for (d, spent) in report.device_spent.iter().enumerate() {
        let folded = ledger
            .iter()
            .find(|((_, dev), _)| *dev == d as u32)
            .map(|(_, j)| *j)
            .unwrap_or(0.0);
        let err = (folded - spent.joules()).abs() / spent.joules().abs().max(1e-30);
        prop_assert!(
            err <= 1e-9,
            "{}: device {} ledger {} J vs drained {} J (rel err {:e})",
            what,
            d,
            folded,
            spent.joules(),
            err
        );
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// The open-system determinism contract: for a random churn scenario,
    /// runs at 4 and 8 worker threads match the 1-thread run byte-for-byte
    /// — report fields (churn included) bitwise, JSONL trace stringwise —
    /// and at every thread count the energy ledger reconstructs the
    /// measured drain to 1e-9.
    #[test]
    fn churn_is_byte_identical_at_any_thread_count(sc in arb_open_system()) {
        let (serial, jsonl_1, ledger_1) = traced_at(&sc, THREADS[0]);
        prop_assert!(!ledger_1.is_empty(), "serial run produced no energy events");
        assert_ledger_reconstructs(&serial, &ledger_1, "j1")?;
        for &t in &THREADS[1..] {
            let what = format!("{} sessions, j{t}", sc.pairs.len());
            let (par, jsonl_t, ledger_t) = traced_at(&sc, t);
            assert_reports_bitwise(&serial, &par, &what)?;
            prop_assert_eq!(&jsonl_1, &jsonl_t, "{}: JSONL trace diverged", &what);
            assert_ledger_reconstructs(&par, &ledger_t, &what)?;
        }
    }
}
