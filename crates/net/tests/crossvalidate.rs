//! Cross-validation: the fleet engine against the repo's two established
//! references.
//!
//! * A two-device fleet must reproduce `mac::sim::simulate_transfer` —
//!   same options, same solver, same Table 5 switching charge — despite
//!   pacing the braid by discrete quanta and a time-based re-plan cadence
//!   instead of the pairwise engine's energy-fraction epochs. Documented
//!   tolerance: **2 %** on bits and per-device energy, 5 points on mode
//!   shares (the re-plan grids sample the battery-ratio trajectory at
//!   different instants, so the braid fractions drift slightly apart).
//! * The fleet's suffer-vs-TDMA crossing must bracket the analytical
//!   `Coexistence::tdma_crossover_distance` prediction.

use braidio_mac::coexistence::Coexistence;
use braidio_mac::sim::{simulate_transfer, Policy, TransferSetup};
use braidio_net::{run_fleet, Arbitration, DeviceSpec, FleetScenario, PairSpec};
use braidio_radio::Mode;
use braidio_rfsim::geometry::Point;
use braidio_units::{Joules, Meters, Seconds};

const PAIR_SEP: Meters = Meters::new(0.5);

/// A one-pair fleet shaped exactly like a `TransferSetup`: control-plane
/// accounting off (the pairwise engine charges neither association nor
/// probes) and an unbounded horizon (the pairwise engine runs to battery
/// exhaustion).
fn two_device(e1_wh: f64, e2_wh: f64) -> FleetScenario {
    let tx = DeviceSpec {
        pos: Point::ORIGIN,
        battery: Joules::from_watt_hours(e1_wh),
    };
    let rx = DeviceSpec {
        pos: Point::new(PAIR_SEP.meters(), 0.0),
        battery: Joules::from_watt_hours(e2_wh),
    };
    FleetScenario::new(
        vec![tx, rx],
        vec![PairSpec::braided(0, 1)],
        Arbitration::Uncoordinated,
    )
    .with_horizon(Seconds::new(1e9))
    .without_control_overhead()
}

fn assert_close(label: &str, fleet: f64, pairwise: f64, rel_tol: f64) {
    let err = (fleet - pairwise).abs() / pairwise.abs().max(f64::MIN_POSITIVE);
    assert!(
        err <= rel_tol,
        "{label}: fleet {fleet} vs pairwise {pairwise} ({:.2}% off, tol {:.0}%)",
        100.0 * err,
        100.0 * rel_tol
    );
}

#[test]
fn two_device_fleet_reproduces_the_pairwise_simulator() {
    // The paper's asymmetric shapes (Fig. 15 row/column extremes) plus the
    // symmetric diagonal: small→big leans backscatter, big→small leans
    // passive, equal braids both.
    for (e1, e2) in [(1e-4, 1e-1), (1e-1, 1e-4), (1e-3, 1e-3)] {
        let pairwise = simulate_transfer(&TransferSetup::new(e1, e2, Policy::Braidio));
        let fleet = run_fleet(&two_device(e1, e2));

        assert_close(
            &format!("bits ({e1} Wh -> {e2} Wh)"),
            fleet.pair_bits[0],
            pairwise.bits,
            0.02,
        );
        assert_close(
            &format!("tx energy ({e1} Wh -> {e2} Wh)"),
            fleet.device_spent[0].joules(),
            pairwise.e1_spent.joules(),
            0.02,
        );
        assert_close(
            &format!("rx energy ({e1} Wh -> {e2} Wh)"),
            fleet.device_spent[1].joules(),
            pairwise.e2_spent.joules(),
            0.02,
        );
        for mode in Mode::ALL {
            let delta = (fleet.mode_share(mode) - pairwise.mode_share(mode)).abs();
            assert!(
                delta <= 0.05,
                "{mode:?} share ({e1} Wh -> {e2} Wh): fleet {} vs pairwise {}",
                fleet.mode_share(mode),
                pairwise.mode_share(mode)
            );
        }
    }
}

/// Two pairs pinned to one mode, a fixed spacing apart.
fn pinned_pairs(mode: Mode, spacing: Meters, arb: Arbitration) -> FleetScenario {
    let mut sc = FleetScenario::independent_pairs(2, PAIR_SEP, spacing, 1.0, 1.0, arb)
        .with_horizon(Seconds::new(30.0))
        .without_control_overhead();
    for p in &mut sc.pairs {
        p.pinned_mode = Some(mode);
    }
    sc
}

#[test]
fn tdma_crossover_matches_the_analytical_prediction() {
    // The analytical model: past d*, suffering an adjacent-channel carrier
    // at full rate beats halving the airtime; below d*, the decade-spaced
    // rate ladder drops the victim to a tenth and TDMA wins.
    let d_star = Coexistence::braidio_neighbor(Meters::new(3.0))
        .tdma_crossover_distance(Mode::Passive, PAIR_SEP)
        .expect("passive has a finite protection distance");

    let slot = Seconds::new(0.25);
    let goodput = |arb: Arbitration, spacing: Meters| {
        run_fleet(&pinned_pairs(Mode::Passive, spacing, arb)).pair_goodput(0)
    };
    // Inside the crossover, coordination wins...
    let inside = Meters::new(0.8 * d_star.meters());
    assert!(
        goodput(Arbitration::Uncoordinated, inside)
            < goodput(Arbitration::TdmaRoundRobin { slot }, inside),
        "inside d* = {d_star:?}, suffering must lose to TDMA"
    );
    // ...and beyond it, suffering at full rate beats half the airtime.
    let outside = Meters::new(1.3 * d_star.meters());
    assert!(
        goodput(Arbitration::Uncoordinated, outside)
            > goodput(Arbitration::TdmaRoundRobin { slot }, outside),
        "outside d* = {d_star:?}, suffering must beat TDMA"
    );
}

#[test]
fn backscatter_has_no_crossover_in_either_model() {
    // Analytically there is no protection distance for the two-way d^4
    // link...
    assert!(Coexistence::braidio_neighbor(Meters::new(3.0))
        .tdma_crossover_distance(Mode::Backscatter, PAIR_SEP)
        .is_none());
    // ...and the fleet agrees: even 50 m of separation leaves a pinned
    // backscatter pair with nothing while a foreign carrier stands. The
    // first pair to probe faces the neighbour's carrier and dies on the
    // spot; only then (dead sessions release the band) can the survivor
    // run — contention never resolves in favour of both.
    let r = run_fleet(&pinned_pairs(
        Mode::Backscatter,
        Meters::new(50.0),
        Arbitration::Uncoordinated,
    ));
    assert_eq!(r.pair_bits[0], 0.0);
    assert!(r.pair_dead_at[0].is_some(), "contended pair must die");
}
