//! The SoA-vs-baseline equivalence gate.
//!
//! `braidio_net::baseline` is a frozen copy of the pre-refactor scalar
//! fleet engine (per-entity structs, lazy per-victim interference, no
//! batched planning waves), kept as an executable oracle. These tests run
//! grid, star, death-cascade, and mobility scenarios through both engines
//! and require byte-for-byte equality of everything observable: the
//! [`FleetReport`], the rendered JSONL event trace, and the per-device
//! energy ledgers folded from that trace. Any divergence — a reordered
//! floating-point sum, a memoized value that isn't a pure function of its
//! quantized key, a missed cache invalidation — fails loudly here.

use braidio_net::baseline::run_fleet_baseline;
use braidio_net::{run_fleet, Arbitration, FleetReport, FleetScenario};
use braidio_telemetry as telemetry;
use braidio_units::{Meters, Seconds};

const SLOT: Seconds = Seconds::new(0.25);

fn scenarios() -> Vec<(String, FleetScenario)> {
    let mut out = Vec::new();
    let policies = [
        Arbitration::Uncoordinated,
        Arbitration::ChannelPlan { channels: 2 },
        Arbitration::TdmaRoundRobin { slot: SLOT },
    ];
    // The acceptance grids: 32 and 64 pairs under every policy, cull on
    // (the shipped `--scale` configuration).
    for m in [32usize, 64] {
        for arb in policies {
            out.push((
                format!("grid-{m}-{}", arb.label()),
                FleetScenario::grid_pairs(m, Meters::new(0.5), Meters::new(3.0), 1.0, 1.0, arb)
                    .with_horizon(Seconds::new(15.0))
                    .with_far_field_cull(),
            ));
        }
    }
    // Stars: TDMA coasts, uncoordinated kills sessions — the death path
    // (mark_dead, wave re-dirtying, quantum aborts) in both engines.
    for arb in [
        Arbitration::TdmaRoundRobin { slot: SLOT },
        Arbitration::Uncoordinated,
    ] {
        out.push((
            format!("star-8-{}", arb.label()),
            FleetScenario::star(8, Meters::new(0.5), 99.5, 0.001, arb)
                .with_horizon(Seconds::new(120.0)),
        ));
    }
    // Mobility: a walking pair invalidates the interference field mid-run,
    // exercising the wave sweep's re-dirty / lazy-fallback interplay.
    {
        use braidio_mac::mobility::LinearWalk;
        let mut sc = FleetScenario::independent_pairs(
            4,
            Meters::new(0.5),
            Meters::new(3.0),
            1.0,
            1.0,
            Arbitration::Uncoordinated,
        )
        .with_horizon(Seconds::new(30.0));
        sc.replan_interval = Seconds::new(1.0);
        sc.pairs[1].walk = Some(LinearWalk {
            start: Meters::new(0.5),
            end: Meters::new(4.0),
            duration: Seconds::new(20.0),
        });
        out.push(("mobile-4-uncoordinated".into(), sc));
    }
    out
}

/// Every field of the two reports, bit-for-bit.
fn assert_reports_bitwise(a: &FleetReport, b: &FleetReport, what: &str) {
    assert_eq!(a.events, b.events, "{what}: event counts");
    assert_eq!(a.replans, b.replans, "{what}: replan counts");
    assert_eq!(
        a.end_time.seconds().to_bits(),
        b.end_time.seconds().to_bits(),
        "{what}: end time"
    );
    assert_eq!(a.pair_bits.len(), b.pair_bits.len(), "{what}: pair count");
    for (p, (x, y)) in a.pair_bits.iter().zip(&b.pair_bits).enumerate() {
        assert_eq!(x.to_bits(), y.to_bits(), "{what}: pair {p} bits");
    }
    for (p, (x, y)) in a.pair_mode_bits.iter().zip(&b.pair_mode_bits).enumerate() {
        for ((ma, va), (mb, vb)) in x.iter().zip(y) {
            assert_eq!(ma, mb, "{what}: pair {p} mode order");
            assert_eq!(va.to_bits(), vb.to_bits(), "{what}: pair {p} {ma:?} bits");
        }
    }
    for (p, (x, y)) in a.pair_dead_at.iter().zip(&b.pair_dead_at).enumerate() {
        assert_eq!(
            x.map(|t| t.seconds().to_bits()),
            y.map(|t| t.seconds().to_bits()),
            "{what}: pair {p} death time"
        );
    }
    for (d, (x, y)) in a.device_spent.iter().zip(&b.device_spent).enumerate() {
        assert_eq!(
            x.joules().to_bits(),
            y.joules().to_bits(),
            "{what}: device {d} energy"
        );
    }
    for (d, (x, y)) in a.device_dead_at.iter().zip(&b.device_dead_at).enumerate() {
        assert_eq!(
            x.map(|t| t.seconds().to_bits()),
            y.map(|t| t.seconds().to_bits()),
            "{what}: device {d} death time"
        );
    }
    for (d, (x, y)) in a
        .device_carrier_time
        .iter()
        .zip(&b.device_carrier_time)
        .enumerate()
    {
        assert_eq!(
            x.seconds().to_bits(),
            y.seconds().to_bits(),
            "{what}: device {d} carrier time"
        );
    }
}

/// Per-device energy ledger: `((run, device), joules-as-bits)`, sorted.
type EnergyLedger = Vec<((u32, u32), u64)>;

/// Run one engine with event capture on, returning the report, the
/// rendered JSONL trace, and the folded per-device energy ledger.
fn traced<F: FnOnce(&FleetScenario) -> FleetReport>(
    sc: &FleetScenario,
    engine: F,
) -> (FleetReport, String, EnergyLedger) {
    telemetry::set_enabled(true);
    let _ = telemetry::take_events();
    let report = telemetry::with_run(0, || engine(sc));
    let events = telemetry::take_events();
    telemetry::set_enabled(false);
    let jsonl = telemetry::sink::render_jsonl(&events);
    let mut ledger: Vec<((u32, u32), u64)> = telemetry::sink::fold_energy(&events)
        .into_iter()
        .filter_map(|((run, track), j)| match track {
            telemetry::Track::Device(d) => Some(((run, d), j.to_bits())),
            _ => None,
        })
        .collect();
    ledger.sort_unstable();
    (report, jsonl, ledger)
}

#[test]
fn soa_engine_is_byte_identical_to_the_frozen_baseline() {
    for (what, sc) in scenarios() {
        let (a, jsonl_a, ledger_a) = traced(&sc, run_fleet);
        let (b, jsonl_b, ledger_b) = traced(&sc, run_fleet_baseline);
        assert_reports_bitwise(&a, &b, &what);
        assert_eq!(jsonl_a, jsonl_b, "{what}: JSONL trace diverged");
        assert!(!ledger_a.is_empty(), "{what}: empty energy ledger");
        assert_eq!(ledger_a, ledger_b, "{what}: energy ledgers diverged");
    }
}
