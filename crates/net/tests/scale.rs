//! Large-fleet integration gates: the far-field cull is bitwise-neutral
//! wherever it is enabled in shipped scenarios, it genuinely fires on
//! dispersed geometry (no vacuous machinery), and hundred-pair scenarios
//! complete under every arbitration policy. Dev-profile runs also engage
//! the engine's debug shadow check, so each of these re-validates the
//! cached interference path against the brute-force rescan bit-for-bit.

use braidio_net::cache::far_field_cutoff;
use braidio_net::{run_fleet, Arbitration, FleetReport, FleetScenario};
use braidio_radio::characterization::Characterization;
use braidio_telemetry as telemetry;
use braidio_units::{Meters, Seconds};

const PAIR_SEP: Meters = Meters::new(0.5);
const SPACING: Meters = Meters::new(3.0);

fn policies() -> [Arbitration; 3] {
    [
        Arbitration::Uncoordinated,
        Arbitration::ChannelPlan { channels: 4 },
        Arbitration::TdmaRoundRobin {
            slot: Seconds::new(0.25),
        },
    ]
}

fn grid(m: usize, spacing: Meters, horizon: Seconds, arb: Arbitration) -> FleetScenario {
    FleetScenario::grid_pairs(m, PAIR_SEP, spacing, 1.0, 1.0, arb).with_horizon(horizon)
}

/// Every simulated quantity in the two reports is bit-for-bit equal.
fn assert_reports_bitwise(a: &FleetReport, b: &FleetReport, what: &str) {
    assert_eq!(a.events, b.events, "{what}: event counts");
    assert_eq!(a.replans, b.replans, "{what}: replan counts");
    assert_eq!(
        a.end_time.seconds().to_bits(),
        b.end_time.seconds().to_bits(),
        "{what}: end time"
    );
    assert_eq!(a.pair_bits.len(), b.pair_bits.len(), "{what}: pair count");
    for (p, (x, y)) in a.pair_bits.iter().zip(&b.pair_bits).enumerate() {
        assert_eq!(x.to_bits(), y.to_bits(), "{what}: pair {p} bits");
    }
    for (p, (x, y)) in a.pair_dead_at.iter().zip(&b.pair_dead_at).enumerate() {
        assert_eq!(
            x.map(|t| t.seconds().to_bits()),
            y.map(|t| t.seconds().to_bits()),
            "{what}: pair {p} death time"
        );
    }
    for (d, (x, y)) in a.device_spent.iter().zip(&b.device_spent).enumerate() {
        assert_eq!(
            x.joules().to_bits(),
            y.joules().to_bits(),
            "{what}: device {d} energy"
        );
    }
    for (d, (x, y)) in a
        .device_carrier_time
        .iter()
        .zip(&b.device_carrier_time)
        .enumerate()
    {
        assert_eq!(
            x.seconds().to_bits(),
            y.seconds().to_bits(),
            "{what}: device {d} carrier time"
        );
    }
}

#[test]
fn cull_on_vs_off_is_bitwise_neutral_in_room() {
    // The shipped `--scale` scenarios enable the cull on in-room grids,
    // where the conservative cutoff (hundreds of km) keeps every source —
    // so enabling it must not move a single bit.
    for arb in policies() {
        let base = grid(16, SPACING, Seconds::new(15.0), arb);
        let culled = grid(16, SPACING, Seconds::new(15.0), arb).with_far_field_cull();
        let a = run_fleet(&base);
        let b = run_fleet(&culled);
        assert_reports_bitwise(&a, &b, arb.label());
    }
}

#[test]
fn cull_fires_and_stays_bitwise_on_dispersed_grid() {
    // Pairs scattered 1.5 cutoffs apart: every foreign source is provably
    // below the cull epsilon, so the cull drops all of them — and the
    // dropped power is so far under the detector noise floor that the
    // culled run still matches the uncalled one bit-for-bit.
    let cutoff = far_field_cutoff(&Characterization::braidio());
    let spacing = Meters::new(cutoff.meters() * 1.5);
    let base = grid(9, spacing, Seconds::new(10.0), Arbitration::Uncoordinated);
    let culled =
        grid(9, spacing, Seconds::new(10.0), Arbitration::Uncoordinated).with_far_field_cull();

    let a = run_fleet(&base);
    // Count cull decisions through the telemetry counters (thread-local,
    // so concurrent tests cannot pollute the tally).
    telemetry::set_enabled(true);
    let b = run_fleet(&culled);
    telemetry::set_enabled(false);
    let drops = telemetry::counters_snapshot()
        .into_iter()
        .find(|(name, _)| name == "net.interference.cull_drop")
        .map(|(_, v)| v)
        .unwrap_or(0);
    telemetry::take_events();
    assert!(drops > 0, "dispersed grid culled nothing — vacuous test");
    assert_reports_bitwise(&a, &b, "dispersed");
}

#[test]
fn fspl_memo_hit_rate_exceeds_99_percent_on_a_grid() {
    // The memoized edge kernel's economic premise: a room grid reuses a
    // small set of exact pairwise distances, so after the first planning
    // wave nearly every FSPL evaluation is a table hit. 99% is the
    // acceptance floor; a healthy grid run sits well above it. The
    // counters are diagnostics (tile-dependent totals), so this asserts a
    // ratio, never exact counts.
    let sc =
        grid(100, SPACING, Seconds::new(10.0), Arbitration::Uncoordinated).with_far_field_cull();
    telemetry::set_enabled(true);
    let r = run_fleet(&sc);
    telemetry::set_enabled(false);
    let counters = telemetry::counters_snapshot();
    telemetry::take_events();
    let get = |name: &str| {
        counters
            .iter()
            .find(|(n, _)| n == name)
            .map(|&(_, v)| v)
            .unwrap_or(0)
    };
    let (hits, misses) = (get("net.fspl.hit"), get("net.fspl.miss"));
    assert!(r.total_bits() > 0.0, "no traffic — vacuous run");
    assert!(hits + misses > 0, "kernel never consulted the memo");
    let rate = hits as f64 / (hits + misses) as f64;
    assert!(
        rate > 0.99,
        "fspl memo hit rate {rate:.4} ({hits} hits / {misses} misses) below the 99% floor"
    );
}

#[test]
fn hundred_twenty_eight_pairs_complete_under_every_policy() {
    // The acceptance rung: 128 pairs (256 devices) to the horizon under
    // all three arbitration policies, with the debug shadow check
    // auditing every cached interference sum along the way.
    for arb in policies() {
        let sc = grid(128, SPACING, Seconds::new(10.0), arb).with_far_field_cull();
        let r = run_fleet(&sc);
        assert_eq!(
            r.end_time.seconds().to_bits(),
            sc.horizon.seconds().to_bits(),
            "{}: stopped early",
            arb.label()
        );
        assert_eq!(r.pair_bits.len(), 128);
        assert!(r.total_bits() > 0.0, "{}: no traffic", arb.label());
        let f = r.fairness();
        assert!(
            (0.0..=1.0 + 1e-12).contains(&f),
            "{}: fairness {f} out of range",
            arb.label()
        );
    }
}
