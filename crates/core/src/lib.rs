//! # Braidio — a power-proportional active/passive radio
//!
//! A full-system reproduction of *"Braidio: An Integrated Active-Passive
//! Radio for Mobile Devices with Asymmetric Energy Budgets"* (SIGCOMM
//! 2016), built on a first-principles RF + analog-circuit simulation
//! substrate.
//!
//! Braidio's idea: the dominant cost of communication is *carrier
//! generation*. An active radio generates the carrier at both ends
//! (symmetric power); a backscatter system generates it only at the reader.
//! A radio that can place the carrier at either end — and interleave
//! ("braid") the placements packet by packet — can split the power burden
//! of a link *in proportion to the batteries* of the two devices, buying
//! orders of magnitude more lifetime for the smaller one.
//!
//! ## Quick start
//!
//! ```
//! use braidio::prelude::*;
//!
//! // A fitness band streams sensor data to a laptop half a meter away.
//! let outcome = Transfer::between(devices::NIKE_FUEL_BAND, devices::MACBOOK_PRO_15)
//!     .at_distance(Meters::new(0.5))
//!     .run();
//!
//! // Carrier offload moves the carrier to the laptop, so the band spends
//! // ~nothing per bit and outlives a Bluetooth link by orders of magnitude.
//! assert!(outcome.gain_over_bluetooth() > 100.0);
//! ```
//!
//! ## Layering
//!
//! | crate | contents |
//! |---|---|
//! | [`units`] | typed quantities (dBm, watts, joules, meters, bit/s) |
//! | [`telemetry`] | deterministic event bus, profiling spans, trace sinks |
//! | [`rfsim`] | path loss, fading, phase cancellation, link budgets |
//! | [`circuits`] | charge pump, envelope detector, amplifier, comparator |
//! | [`phy`] | OOK modulation, framing, CRC, BER models |
//! | [`radio`] | modes, power characterization, baselines, devices |
//! | [`mac`] | Eq. 1 offload solver, regimes, braided scheduler, simulator |
//! | [`net`] | deterministic discrete-event kernel, multi-device fleets |
//!
//! This crate re-exports the stack and adds the ergonomic [`Transfer`]
//! builder plus the packet-level [`live::LiveLink`] used by the examples.

#![warn(missing_docs)]

pub use braidio_circuits as circuits;
pub use braidio_mac as mac;
pub use braidio_net as net;
pub use braidio_phy as phy;
pub use braidio_pool as pool;
pub use braidio_radio as radio;
pub use braidio_rfsim as rfsim;
pub use braidio_telemetry as telemetry;
pub use braidio_units as units;

pub mod driver;
pub mod live;
pub mod trace;
pub mod transfer;

pub use transfer::{Outcome, Transfer};

/// The convenience prelude: everything the examples and most downstream
/// users need.
pub mod prelude {
    pub use crate::driver::{Command, Driver, Event};
    pub use crate::live::{LiveConfig, LiveLink, PacketOutcome};
    pub use crate::trace::{LinkTracer, TraceEvent};
    pub use crate::transfer::{Outcome, Transfer};
    pub use braidio_mac::{Policy, Regime, Traffic};
    pub use braidio_radio::characterization::{Characterization, Rate};
    pub use braidio_radio::devices;
    pub use braidio_radio::{Battery, Mode};
    pub use braidio_units::{
        BitsPerSecond, Decibels, Hertz, Joules, JoulesPerBit, Meters, Seconds, Watts,
    };
}
