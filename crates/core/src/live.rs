//! Packet-level live link: the dynamic side of §4.2.
//!
//! [`crate::Transfer`] integrates whole battery lifetimes analytically; this
//! module instead steps one packet at a time through the probe → plan →
//! braid → fallback loop, with log-normal shadowing and smoltcp-style fault
//! injection. It is the engine for interactive examples and for testing the
//! MAC's failure handling ("Braidio simply falls back to the active mode if
//! the current operating mode is performing poorly").

use crate::trace::{LinkTracer, TraceEvent};
use braidio_mac::offload::{solve, OffloadPlan};
use braidio_mac::probe::LinkProber;
use braidio_mac::scheduler::{BraidedScheduler, Decision};
use braidio_phy::ber::packet_error_rate;
use braidio_radio::characterization::{Characterization, Rate};
use braidio_radio::devices::Device;
use braidio_radio::switching::SwitchingOverhead;
use braidio_radio::{Battery, Mode, Role};
use braidio_rfsim::fault::{FaultInjector, Verdict};
use braidio_units::{Joules, Meters, Seconds};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Configuration of a live link.
#[derive(Debug, Clone)]
pub struct LiveConfig {
    /// Device separation.
    pub distance: Meters,
    /// Payload bytes per packet.
    pub payload_bytes: usize,
    /// Shadowing standard deviation applied to probe measurements, dB.
    pub shadowing_sigma_db: f64,
    /// Random drop probability (fault injection).
    pub drop_chance: f64,
    /// Random corrupt probability (fault injection).
    pub corrupt_chance: f64,
    /// Re-plan after this many packets even without failures.
    pub replan_every: usize,
    /// Packets to dwell in one mode before the braid may switch
    /// (amortizes the Table 5 switch energy, §4.2).
    pub braid_quantum: u32,
    /// Master seed.
    pub seed: u64,
}

impl Default for LiveConfig {
    fn default() -> Self {
        LiveConfig {
            distance: Meters::new(0.5),
            payload_bytes: 64,
            shadowing_sigma_db: 0.0,
            drop_chance: 0.0,
            corrupt_chance: 0.0,
            replan_every: 1000,
            braid_quantum: 100,
            seed: 1,
        }
    }
}

/// What happened to one packet.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PacketOutcome {
    /// Delivered and acknowledged.
    Delivered {
        /// Mode used.
        mode: Mode,
        /// Rate used.
        rate: Rate,
    },
    /// Lost (channel error or injected fault).
    Lost {
        /// Mode used.
        mode: Mode,
    },
    /// The link re-probed and re-planned instead of sending.
    Replanned,
    /// No mode closes the link at this distance.
    LinkDown,
    /// An endpoint's battery is exhausted.
    BatteryDead,
}

/// Aggregate statistics of a live run.
#[derive(Debug, Clone, Copy, Default)]
pub struct LiveStats {
    /// Packets delivered.
    pub delivered: u64,
    /// Packets lost.
    pub lost: u64,
    /// Re-plan rounds.
    pub replans: u64,
    /// Bits of payload delivered.
    pub payload_bits: f64,
    /// Link time elapsed.
    pub airtime: Seconds,
}

impl LiveStats {
    /// Delivery ratio over attempted packets.
    pub fn delivery_ratio(&self) -> f64 {
        let attempts = self.delivered + self.lost;
        if attempts == 0 {
            return 0.0;
        }
        self.delivered as f64 / attempts as f64
    }
}

/// A packet-stepped Braidio link between two devices.
///
/// ```
/// use braidio::prelude::*;
///
/// let mut link = LiveLink::open(
///     devices::PEBBLE_WATCH,
///     devices::NEXUS_6P,
///     LiveConfig { drop_chance: 0.05, seed: 7, ..LiveConfig::default() },
/// );
/// let stats = link.run_packets(500);
/// assert!(stats.delivery_ratio() > 0.9);
/// assert!(link.plan().is_some(), "a braid is installed after probing");
/// ```
#[derive(Debug)]
pub struct LiveLink {
    /// Link characterization.
    pub ch: Characterization,
    switching: SwitchingOverhead,
    config: LiveConfig,
    tx_battery: Battery,
    rx_battery: Battery,
    prober: LinkProber,
    scheduler: Option<BraidedScheduler>,
    plan: Option<OffloadPlan>,
    last_mode: Option<Mode>,
    packets_since_plan: usize,
    rng: StdRng,
    fault: FaultInjector,
    stats: LiveStats,
    tracer: Option<LinkTracer>,
}

impl LiveLink {
    /// Open a link from `tx` to `rx`.
    pub fn open(tx: Device, rx: Device, config: LiveConfig) -> Self {
        braidio_telemetry::begin_unit();
        let prober = if config.shadowing_sigma_db > 0.0 {
            LinkProber::with_shadowing(config.shadowing_sigma_db, config.seed ^ 0xBEEF)
        } else {
            LinkProber::ideal()
        };
        LiveLink {
            ch: Characterization::braidio(),
            switching: SwitchingOverhead::table5(),
            fault: FaultInjector::new(
                config.drop_chance,
                config.corrupt_chance,
                config.seed ^ 0xFA17,
            ),
            rng: StdRng::seed_from_u64(config.seed),
            tx_battery: tx.battery(),
            rx_battery: rx.battery(),
            prober,
            scheduler: None,
            plan: None,
            last_mode: None,
            packets_since_plan: 0,
            config,
            stats: LiveStats::default(),
            tracer: None,
        }
    }

    /// Attach an event tracer holding up to `capacity` events (the
    /// simulator's `--pcap`).
    pub fn attach_tracer(&mut self, capacity: usize) {
        self.tracer = Some(LinkTracer::new(capacity));
    }

    /// The attached tracer, if any.
    pub fn tracer(&self) -> Option<&LinkTracer> {
        self.tracer.as_ref()
    }

    fn trace(&mut self, event: TraceEvent) {
        braidio_telemetry::emit(event.to_telemetry());
        if let Some(t) = self.tracer.as_mut() {
            t.record(event);
        }
    }

    /// The current separation.
    pub fn distance(&self) -> Meters {
        self.config.distance
    }

    /// Move the pair (mobility): updates the separation and, if it moved by
    /// more than 10 cm since the last plan, schedules a re-probe so the
    /// braid adapts (the §4.2 "periodically re-computes … depending on
    /// observed dynamics" path — large moves shouldn't wait for failures).
    pub fn set_distance(&mut self, d: Meters) {
        assert!(d.is_physical(), "distance must be non-negative");
        let moved = (d.meters() - self.config.distance.meters()).abs();
        self.config.distance = d;
        if moved > 0.1 {
            self.scheduler = None; // force a re-plan on the next step
        }
    }

    /// Remaining energy at the transmitter.
    pub fn tx_remaining(&self) -> Joules {
        self.tx_battery.remaining()
    }

    /// Remaining energy at the receiver.
    pub fn rx_remaining(&self) -> Joules {
        self.rx_battery.remaining()
    }

    /// The current plan, if one exists.
    pub fn plan(&self) -> Option<&OffloadPlan> {
        self.plan.as_ref()
    }

    /// Statistics so far.
    pub fn stats(&self) -> LiveStats {
        self.stats
    }

    /// The on-air bits of one framed packet.
    fn packet_bits(&self) -> f64 {
        braidio_phy::frame::Frame::new(vec![0u8; self.config.payload_bytes]).air_bits() as f64
    }

    fn replan(&mut self) -> bool {
        let report = self.prober.probe(&self.ch, self.config.distance);
        // Charge the probe exchange to both sides.
        self.tx_battery.draw(report.energy_initiator);
        self.rx_battery.draw(report.energy_responder);
        self.stats.airtime += report.airtime;
        self.stats.replans += 1;
        let options = report.options(&self.ch);
        match solve(
            &options,
            self.tx_battery.remaining(),
            self.rx_battery.remaining(),
        ) {
            Some(plan) => {
                self.scheduler =
                    Some(BraidedScheduler::new(&plan).with_quantum(self.config.braid_quantum));
                self.plan = Some(plan);
                self.packets_since_plan = 0;
                true
            }
            None => {
                self.scheduler = None;
                self.plan = None;
                false
            }
        }
    }

    /// Advance by one packet.
    pub fn step(&mut self) -> PacketOutcome {
        if self.tx_battery.is_dead() || self.rx_battery.is_dead() {
            self.trace(TraceEvent::BatteryDead {
                at: self.stats.airtime,
            });
            return PacketOutcome::BatteryDead;
        }
        if self.scheduler.is_none() || self.packets_since_plan >= self.config.replan_every {
            let planned = self.replan();
            self.trace(TraceEvent::Replan {
                at: self.stats.airtime,
                planned,
            });
            if !planned {
                self.trace(TraceEvent::LinkDown {
                    at: self.stats.airtime,
                });
                return PacketOutcome::LinkDown;
            }
            return PacketOutcome::Replanned;
        }
        let decision = self.scheduler.as_mut().expect("planned").next();
        let option = match decision {
            Decision::Replan => {
                let planned = self.replan();
                self.trace(TraceEvent::Replan {
                    at: self.stats.airtime,
                    planned,
                });
                if !planned {
                    self.trace(TraceEvent::LinkDown {
                        at: self.stats.airtime,
                    });
                    return PacketOutcome::LinkDown;
                }
                return PacketOutcome::Replanned;
            }
            Decision::Send(o) => o,
        };

        // Charge mode-switch energy when the braid changes mode.
        if self.last_mode != Some(option.mode) {
            self.tx_battery
                .draw(self.switching.cost(option.mode, Role::Transmitter));
            self.rx_battery
                .draw(self.switching.cost(option.mode, Role::Receiver));
            self.last_mode = Some(option.mode);
        }

        // Airtime + data energy.
        let bits = self.packet_bits();
        let airtime = option.rate.bps().time_for_bits(bits);
        self.stats.airtime += airtime;
        self.tx_battery
            .draw(Joules::new(option.tx_cost.joules_per_bit() * bits));
        self.rx_battery
            .draw(Joules::new(option.rx_cost.joules_per_bit() * bits));
        self.packets_since_plan += 1;

        // Delivery: channel BER (packet error rate) plus injected faults.
        let ber = self.ch.ber(option.mode, option.rate, self.config.distance);
        let per = packet_error_rate(ber, bits as usize);
        let channel_ok = self.rng.random_bool((1.0 - per).clamp(0.0, 1.0));
        let delivered = channel_ok && self.fault.judge() == Verdict::Deliver;

        self.scheduler.as_mut().expect("planned").report(delivered);
        self.trace(TraceEvent::Packet {
            at: self.stats.airtime,
            mode: option.mode,
            rate: option.rate,
            delivered,
            payload_bytes: self.config.payload_bytes,
        });
        if delivered {
            self.stats.delivered += 1;
            self.stats.payload_bits += (self.config.payload_bytes * 8) as f64;
            PacketOutcome::Delivered {
                mode: option.mode,
                rate: option.rate,
            }
        } else {
            self.stats.lost += 1;
            PacketOutcome::Lost { mode: option.mode }
        }
    }

    /// Step `n` packets (re-plans count toward `n`) and return the stats.
    pub fn run_packets(&mut self, n: usize) -> LiveStats {
        for _ in 0..n {
            match self.step() {
                PacketOutcome::BatteryDead | PacketOutcome::LinkDown => break,
                _ => {}
            }
        }
        self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use braidio_radio::devices;

    #[test]
    fn clean_link_delivers_everything() {
        let mut link = LiveLink::open(
            devices::APPLE_WATCH,
            devices::IPHONE_6S,
            LiveConfig::default(),
        );
        let stats = link.run_packets(500);
        assert!(stats.delivered > 400);
        assert_eq!(stats.lost, 0);
        assert!(stats.delivery_ratio() > 0.999);
    }

    #[test]
    fn fault_injection_loses_packets_but_link_survives() {
        let mut link = LiveLink::open(
            devices::APPLE_WATCH,
            devices::IPHONE_6S,
            LiveConfig {
                drop_chance: 0.15,
                ..LiveConfig::default()
            },
        );
        let stats = link.run_packets(2000);
        assert!(stats.lost > 100, "lost {}", stats.lost);
        assert!(stats.delivered > 1000, "delivered {}", stats.delivered);
        // Fallback churn: failures trigger re-plans beyond the periodic one.
        assert!(stats.replans >= 2, "replans {}", stats.replans);
    }

    #[test]
    fn asymmetric_pair_braids_toward_backscatter() {
        let mut link = LiveLink::open(
            devices::NIKE_FUEL_BAND,
            devices::MACBOOK_PRO_15,
            LiveConfig::default(),
        );
        let _ = link.run_packets(50);
        let plan = link.plan().expect("planned");
        assert!(plan.mode_fraction(Mode::Backscatter) > 0.9);
    }

    #[test]
    fn out_of_range_link_reports_down() {
        let mut link = LiveLink::open(
            devices::APPLE_WATCH,
            devices::IPHONE_6S,
            LiveConfig {
                distance: Meters::new(2000.0),
                ..LiveConfig::default()
            },
        );
        assert_eq!(link.step(), PacketOutcome::LinkDown);
    }

    #[test]
    fn batteries_drain_as_the_link_runs() {
        let mut link = LiveLink::open(
            devices::APPLE_WATCH,
            devices::IPHONE_6S,
            LiveConfig::default(),
        );
        let tx0 = link.tx_remaining();
        let rx0 = link.rx_remaining();
        let _ = link.run_packets(200);
        assert!(link.tx_remaining() < tx0);
        assert!(link.rx_remaining() < rx0);
    }

    #[test]
    fn deterministic_given_seed() {
        let run = |seed| {
            let mut link = LiveLink::open(
                devices::PEBBLE_WATCH,
                devices::NEXUS_6P,
                LiveConfig {
                    drop_chance: 0.1,
                    seed,
                    ..LiveConfig::default()
                },
            );
            let s = link.run_packets(300);
            (s.delivered, s.lost, s.replans)
        };
        assert_eq!(run(7), run(7));
        assert_ne!(run(7), run(8));
    }

    #[test]
    fn tracer_records_the_braid() {
        let mut link = LiveLink::open(
            devices::IPHONE_6S,
            devices::IPHONE_6_PLUS,
            LiveConfig {
                braid_quantum: 5, // short dwells so the braid is visible
                ..LiveConfig::default()
            },
        );
        link.attach_tracer(4096);
        let stats = link.run_packets(500);
        let tracer = link.tracer().expect("attached");
        let packets = tracer
            .events()
            .iter()
            .filter(|e| matches!(e, crate::trace::TraceEvent::Packet { .. }))
            .count() as u64;
        assert_eq!(packets, stats.delivered + stats.lost);
        // Near-symmetric batteries: the braid mixes modes, visible as
        // alternation in the trace.
        assert!(tracer.mode_switches() > 10, "{}", tracer.mode_switches());
        let dump = tracer.dump();
        assert!(dump.contains("Passive"), "{}", &dump[..400.min(dump.len())]);
        assert!(dump.contains("Backscatter"));
        assert!(dump.contains("PLAN  installed"));
    }

    #[test]
    fn mobility_walk_reshapes_the_plan() {
        use braidio_mac::mobility::{LinearWalk, MobilityTrace};
        let mut link = LiveLink::open(
            devices::NIKE_FUEL_BAND,
            devices::MACBOOK_PRO_15,
            LiveConfig::default(),
        );
        // Close in: backscatter-heavy plan.
        let _ = link.run_packets(20);
        assert!(link.plan().unwrap().mode_fraction(Mode::Backscatter) > 0.9);

        // Walk out to 3 m over a simulated stroll; feed the trace in.
        let mut walk = LinearWalk {
            start: Meters::new(0.5),
            end: Meters::new(3.0),
            duration: Seconds::new(10.0),
        };
        for step in 0..=10 {
            let t = Seconds::new(step as f64);
            link.set_distance(walk.distance_at(t));
            let _ = link.run_packets(20);
        }
        // Beyond the 2.4 m backscatter edge, the plan cannot use
        // backscatter at all; a FuelBand transmitter gets no offload.
        let plan = link.plan().expect("replanned during the walk");
        assert_eq!(plan.mode_fraction(Mode::Backscatter), 0.0, "{plan:?}");
        assert!(link.stats().replans >= 2);
        // And the link still delivers.
        let before = link.stats().delivered;
        let _ = link.run_packets(50);
        assert!(link.stats().delivered > before);
    }

    #[test]
    fn small_moves_do_not_thrash_replans() {
        let mut link = LiveLink::open(
            devices::APPLE_WATCH,
            devices::IPHONE_6S,
            LiveConfig::default(),
        );
        let _ = link.run_packets(10);
        let replans = link.stats().replans;
        for i in 0..50 {
            link.set_distance(Meters::new(0.5 + 0.001 * (i % 5) as f64));
            let _ = link.step();
        }
        assert_eq!(
            link.stats().replans,
            replans,
            "centimeter jitter should not re-probe"
        );
    }

    #[test]
    fn shadowed_probes_still_produce_working_plans() {
        let mut link = LiveLink::open(
            devices::APPLE_WATCH,
            devices::IPHONE_6S,
            LiveConfig {
                shadowing_sigma_db: 4.0,
                distance: Meters::new(1.5),
                ..LiveConfig::default()
            },
        );
        let stats = link.run_packets(500);
        assert!(stats.delivery_ratio() > 0.8, "{:?}", stats);
    }
}
