//! The high-level transfer API: describe two devices and a separation, run
//! the carrier-offload link to battery exhaustion, inspect the outcome.

use braidio_mac::sim::{simulate_transfer, Policy, SimReport, Traffic, TransferSetup};
use braidio_radio::characterization::Characterization;
use braidio_radio::devices::Device;
use braidio_radio::Mode;
use braidio_units::{Joules, Meters, Seconds};

/// Builder for a device-to-device transfer experiment.
///
/// ```
/// use braidio::prelude::*;
///
/// // A smartwatch syncs bidirectionally with a phone at arm's length.
/// let outcome = Transfer::between(devices::APPLE_WATCH, devices::IPHONE_6S)
///     .at_distance(Meters::new(0.4))
///     .bidirectional()
///     .run();
///
/// // The watch never runs a carrier: backscatter up, passive receiver down.
/// assert!(outcome.gain_over_bluetooth() > 5.0);
/// assert!(outcome.gain_over_best_single() >= 1.0);
/// ```
#[derive(Debug, Clone)]
pub struct Transfer {
    tx: Device,
    rx: Device,
    distance: Meters,
    traffic: Traffic,
    tx_soc: f64,
    rx_soc: f64,
    ch: Characterization,
}

impl Transfer {
    /// A transfer from `tx` (data source) to `rx` (data sink), both with
    /// full batteries, half a meter apart.
    pub fn between(tx: Device, rx: Device) -> Self {
        Transfer {
            tx,
            rx,
            distance: Meters::new(0.5),
            traffic: Traffic::Unidirectional,
            tx_soc: 1.0,
            rx_soc: 1.0,
            ch: Characterization::braidio(),
        }
    }

    /// Set the device separation.
    pub fn at_distance(mut self, d: Meters) -> Self {
        assert!(d.is_physical(), "distance must be non-negative");
        self.distance = d;
        self
    }

    /// Make the traffic bidirectional (equal data both ways).
    pub fn bidirectional(mut self) -> Self {
        self.traffic = Traffic::Bidirectional;
        self
    }

    /// Start from partial batteries (state of charge in `[0, 1]`).
    pub fn with_charge(mut self, tx_soc: f64, rx_soc: f64) -> Self {
        assert!((0.0..=1.0).contains(&tx_soc) && (0.0..=1.0).contains(&rx_soc));
        self.tx_soc = tx_soc;
        self.rx_soc = rx_soc;
        self
    }

    /// Use a custom characterization (e.g. a modified board).
    pub fn with_characterization(mut self, ch: Characterization) -> Self {
        self.ch = ch;
        self
    }

    fn setup(&self, policy: Policy) -> TransferSetup {
        let mut s = TransferSetup::new(
            self.tx.battery_wh * self.tx_soc,
            self.rx.battery_wh * self.rx_soc,
            policy,
        );
        s.ch = self.ch.clone();
        s.distance = self.distance;
        s.traffic = self.traffic;
        s
    }

    /// Run under a specific policy.
    pub fn run_policy(&self, policy: Policy) -> SimReport {
        simulate_transfer(&self.setup(policy))
    }

    /// Run Braidio and the baselines, returning a combined outcome.
    pub fn run(&self) -> Outcome {
        Outcome {
            braidio: self.run_policy(Policy::Braidio),
            bluetooth: self.run_policy(Policy::Bluetooth),
            best_single: self.run_policy(Policy::BestSingleMode),
        }
    }
}

/// Braidio vs. the two baselines for one transfer.
#[derive(Debug, Clone)]
pub struct Outcome {
    /// The carrier-offload run.
    pub braidio: SimReport,
    /// The symmetric Bluetooth run.
    pub bluetooth: SimReport,
    /// The best single pinned mode.
    pub best_single: SimReport,
}

impl Outcome {
    /// Total-bits gain over Bluetooth (the Fig. 15/17/18 metric).
    pub fn gain_over_bluetooth(&self) -> f64 {
        self.braidio.bits / self.bluetooth.bits
    }

    /// Total-bits gain over the best single mode (the Fig. 16 metric).
    pub fn gain_over_best_single(&self) -> f64 {
        self.braidio.bits / self.best_single.bits
    }

    /// Total bits Braidio moved.
    pub fn bits(&self) -> f64 {
        self.braidio.bits
    }

    /// Braidio link lifetime.
    pub fn lifetime(&self) -> Seconds {
        self.braidio.duration
    }

    /// Energy Braidio left stranded (both sides) — small when the plan is
    /// exactly power-proportional.
    pub fn stranded_energy(&self, tx: Device, rx: Device) -> Joules {
        let e1 = Joules::from_watt_hours(tx.battery_wh) - self.braidio.e1_spent;
        let e2 = Joules::from_watt_hours(rx.battery_wh) - self.braidio.e2_spent;
        e1.clamped_non_negative() + e2.clamped_non_negative()
    }

    /// The dominant Braidio mode by bits carried.
    pub fn dominant_mode(&self) -> Mode {
        self.braidio
            .mode_bits
            .iter()
            .max_by(|a, b| a.1.partial_cmp(&b.1).expect("finite"))
            .map(|&(m, _)| m)
            .expect("three modes present")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use braidio_radio::devices;

    #[test]
    fn builder_round_trip() {
        let outcome = Transfer::between(devices::APPLE_WATCH, devices::IPHONE_6S)
            .at_distance(Meters::new(0.5))
            .run();
        assert!(outcome.gain_over_bluetooth() > 1.0);
        assert!(outcome.bits() > 0.0);
        assert!(outcome.lifetime() > Seconds::ZERO);
    }

    #[test]
    fn watch_to_phone_uses_backscatter() {
        let outcome = Transfer::between(devices::APPLE_WATCH, devices::IPHONE_6S).run();
        assert_eq!(outcome.dominant_mode(), Mode::Backscatter);
    }

    #[test]
    fn phone_to_watch_uses_passive() {
        let outcome = Transfer::between(devices::IPHONE_6S, devices::APPLE_WATCH).run();
        assert_eq!(outcome.dominant_mode(), Mode::Passive);
    }

    #[test]
    fn partial_charge_scales_bits() {
        let full = Transfer::between(devices::PEBBLE_WATCH, devices::NEXUS_6P).run();
        let half = Transfer::between(devices::PEBBLE_WATCH, devices::NEXUS_6P)
            .with_charge(0.5, 0.5)
            .run();
        let ratio = half.bits() / full.bits();
        assert!((ratio - 0.5).abs() < 0.01, "ratio {ratio}");
    }

    #[test]
    fn bidirectional_builder() {
        let outcome = Transfer::between(devices::NIKE_FUEL_BAND, devices::MACBOOK_PRO_15)
            .bidirectional()
            .run();
        assert!(outcome.gain_over_bluetooth() > 100.0);
    }

    #[test]
    fn stranded_energy_small_for_proportional_pair() {
        let (a, b) = (devices::IPHONE_6S, devices::IPHONE_6_PLUS);
        let outcome = Transfer::between(a, b).run();
        let stranded = outcome.stranded_energy(a, b);
        let total = Joules::from_watt_hours(a.battery_wh + b.battery_wh);
        assert!(
            stranded / total < 0.02,
            "stranded {} of {}",
            stranded,
            total
        );
    }

    #[test]
    fn gain_over_best_single_at_least_one() {
        let outcome = Transfer::between(devices::IPHONE_6S, devices::IPHONE_6_PLUS).run();
        assert!(outcome.gain_over_best_single() >= 1.0);
    }
}
