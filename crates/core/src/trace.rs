//! Link event tracing — the simulator's answer to smoltcp's `--pcap`.
//!
//! Every packet, probe and re-plan on a [`crate::live::LiveLink`] can be
//! recorded as a typed event and rendered as a tcpdump-style text log, so
//! braiding behaviour can be inspected (and asserted on) without adding
//! print statements to the MAC.

use braidio_radio::characterization::Rate;
use braidio_radio::Mode;
use braidio_units::Seconds;
use core::fmt;

/// One traced link event.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum TraceEvent {
    /// A data packet was sent.
    Packet {
        /// Link time at transmission.
        at: Seconds,
        /// Mode used.
        mode: Mode,
        /// Rate used.
        rate: Rate,
        /// Whether it was delivered.
        delivered: bool,
        /// Payload bytes carried.
        payload_bytes: usize,
    },
    /// A probe/re-plan round completed.
    Replan {
        /// Link time at the re-plan.
        at: Seconds,
        /// Whether a viable plan was found.
        planned: bool,
    },
    /// The link went down (no viable mode).
    LinkDown {
        /// Link time at the event.
        at: Seconds,
    },
    /// A battery died.
    BatteryDead {
        /// Link time at the event.
        at: Seconds,
    },
}

impl TraceEvent {
    /// The event's timestamp.
    pub fn at(&self) -> Seconds {
        match *self {
            TraceEvent::Packet { at, .. }
            | TraceEvent::Replan { at, .. }
            | TraceEvent::LinkDown { at }
            | TraceEvent::BatteryDead { at } => at,
        }
    }

    /// This event in the unified telemetry vocabulary. `LiveLink` emits the
    /// conversion onto the process telemetry bus alongside local recording,
    /// so pairwise traces and fleet traces share one schema; the track is
    /// always the pairwise session's single pair, `Pair(0)`.
    pub fn to_telemetry(&self) -> braidio_telemetry::Event {
        use braidio_telemetry::{DeathReason, Event, Track};
        let track = Track::Pair(0);
        match *self {
            TraceEvent::Packet {
                at,
                mode,
                rate,
                delivered,
                payload_bytes,
            } => {
                let (mode, rate) = (mode.into(), rate.into());
                let bits = (payload_bytes * 8) as f64;
                if delivered {
                    Event::QuantumDelivered {
                        at,
                        track,
                        mode,
                        rate,
                        bits,
                    }
                } else {
                    Event::QuantumLost {
                        at,
                        track,
                        mode,
                        rate,
                        bits,
                    }
                }
            }
            TraceEvent::Replan { at, planned } => Event::Replan {
                at,
                track,
                planned,
                exact: false,
                primary: None,
            },
            TraceEvent::LinkDown { at } => Event::SessionDead {
                at,
                track,
                reason: DeathReason::NoViableMode,
            },
            TraceEvent::BatteryDead { at } => Event::SessionDead {
                at,
                track,
                reason: DeathReason::BatteryDead,
            },
        }
    }
}

impl fmt::Display for TraceEvent {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        // One renderer for the whole stack: the tcpdump-style line is
        // produced by the telemetry text sink from the unified event, so
        // this Display and `--trace-events` output can never drift apart.
        f.write_str(&braidio_telemetry::sink::render_text_line(
            &self.to_telemetry(),
        ))
    }
}

/// A bounded in-memory event recorder.
#[derive(Debug, Clone)]
pub struct LinkTracer {
    events: Vec<TraceEvent>,
    capacity: usize,
    dropped: u64,
}

impl LinkTracer {
    /// A tracer holding up to `capacity` events (oldest dropped first).
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0);
        LinkTracer {
            events: Vec::new(),
            capacity,
            dropped: 0,
        }
    }

    /// Record an event.
    pub fn record(&mut self, event: TraceEvent) {
        if self.events.len() == self.capacity {
            self.events.remove(0);
            self.dropped += 1;
        }
        self.events.push(event);
    }

    /// The recorded events, oldest first.
    pub fn events(&self) -> &[TraceEvent] {
        &self.events
    }

    /// Events dropped because of the capacity bound.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Count mode transitions among recorded data packets.
    pub fn mode_switches(&self) -> usize {
        self.events
            .iter()
            .filter_map(|e| match e {
                TraceEvent::Packet { mode, .. } => Some(*mode),
                _ => None,
            })
            .collect::<Vec<_>>()
            .windows(2)
            .filter(|w| w[0] != w[1])
            .count()
    }

    /// Render the tcpdump-style text log.
    pub fn dump(&self) -> String {
        let mut out = String::new();
        if self.dropped > 0 {
            out.push_str(&format!(
                "... {} earlier events dropped ...\n",
                self.dropped
            ));
        }
        for e in &self.events {
            out.push_str(&format!("{e}\n"));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pkt(at: f64, mode: Mode, delivered: bool) -> TraceEvent {
        TraceEvent::Packet {
            at: Seconds::new(at),
            mode,
            rate: Rate::Mbps1,
            delivered,
            payload_bytes: 64,
        }
    }

    #[test]
    fn records_in_order() {
        let mut t = LinkTracer::new(10);
        t.record(pkt(0.001, Mode::Backscatter, true));
        t.record(TraceEvent::Replan {
            at: Seconds::new(0.002),
            planned: true,
        });
        assert_eq!(t.events().len(), 2);
        assert!(t.events()[0].at() < t.events()[1].at());
    }

    #[test]
    fn capacity_bound_drops_oldest() {
        let mut t = LinkTracer::new(3);
        for i in 0..5 {
            t.record(pkt(i as f64, Mode::Passive, true));
        }
        assert_eq!(t.events().len(), 3);
        assert_eq!(t.dropped(), 2);
        assert_eq!(t.events()[0].at(), Seconds::new(2.0));
        assert!(t.dump().contains("2 earlier events dropped"));
    }

    #[test]
    fn mode_switch_counting() {
        let mut t = LinkTracer::new(16);
        for (i, mode) in [
            Mode::Passive,
            Mode::Backscatter,
            Mode::Backscatter,
            Mode::Passive,
        ]
        .iter()
        .enumerate()
        {
            t.record(pkt(i as f64, *mode, true));
        }
        assert_eq!(t.mode_switches(), 2);
    }

    #[test]
    fn dump_format() {
        let mut t = LinkTracer::new(4);
        t.record(pkt(0.000123, Mode::Backscatter, false));
        t.record(TraceEvent::LinkDown {
            at: Seconds::new(1.0),
        });
        let dump = t.dump();
        assert!(dump.contains("DATA  Backscatter @1M"), "{dump}");
        assert!(dump.contains("LOST"), "{dump}");
        assert!(dump.contains("DOWN"), "{dump}");
    }
}
