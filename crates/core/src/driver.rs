//! Host-side serial driver: a byte-level command interface to a Braidio
//! module.
//!
//! Table 4's active radio (SPBT2632C2) is described as "providing Bluetooth
//! abstraction over serial interface" — a real Braidio product would expose
//! the whole braided link the same way. This module defines that wire
//! protocol (framed with the same CRC-16 as the air frames) and implements
//! the module side against the simulated [`crate::live::LiveLink`], so a
//! host application can be written — and tested — purely in bytes.
//!
//! Frame format (both directions):
//!
//! ```text
//! [0x7E][len][body: opcode + args][crc16-be over len+body]
//! ```

use crate::live::{LiveConfig, LiveLink, PacketOutcome};
use braidio_phy::crc::crc16_ccitt;
use braidio_radio::devices::Device;
use braidio_radio::Mode;
use braidio_units::Meters;

/// Start-of-frame marker.
pub const SOF: u8 = 0x7E;

/// Host → module commands.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Command {
    /// Reset the session (fresh batteries, no plan).
    Reset,
    /// Set the pair separation, centimeters.
    SetDistance(u16),
    /// Probe and (re)plan now.
    Probe,
    /// Send `count` data packets.
    Send(u16),
    /// Query status.
    Status,
}

impl Command {
    fn opcode(self) -> u8 {
        match self {
            Command::Reset => 0x01,
            Command::SetDistance(_) => 0x02,
            Command::Probe => 0x03,
            Command::Send(_) => 0x04,
            Command::Status => 0x05,
        }
    }

    /// Serialize to a wire frame.
    pub fn encode(self) -> Vec<u8> {
        let mut body = vec![self.opcode()];
        match self {
            Command::SetDistance(cm) => body.extend_from_slice(&cm.to_be_bytes()),
            Command::Send(count) => body.extend_from_slice(&count.to_be_bytes()),
            _ => {}
        }
        frame(&body)
    }

    /// Parse from a wire frame.
    pub fn decode(bytes: &[u8]) -> Result<Command, WireError> {
        let body = deframe(bytes)?;
        let arg16 = |body: &[u8]| -> Result<u16, WireError> {
            if body.len() != 3 {
                return Err(WireError::BadLength);
            }
            Ok(u16::from_be_bytes([body[1], body[2]]))
        };
        match body.first() {
            Some(0x01) => Ok(Command::Reset),
            Some(0x02) => Ok(Command::SetDistance(arg16(&body)?)),
            Some(0x03) => Ok(Command::Probe),
            Some(0x04) => Ok(Command::Send(arg16(&body)?)),
            Some(0x05) => Ok(Command::Status),
            _ => Err(WireError::UnknownOpcode),
        }
    }
}

/// Module → host events.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Event {
    /// Command accepted (echoes the opcode).
    Ack(u8),
    /// Probe finished and a braid was installed: for each mode (in
    /// `Mode::ALL` order) the rate it carries in the braid — 0 when the
    /// mode is unused or unavailable, 1 = 10 kbps, 2 = 100 kbps,
    /// 3 = 1 Mbps.
    ProbeReport([u8; 3]),
    /// A `Send` burst finished.
    SendReport {
        /// Packets delivered.
        delivered: u16,
        /// Packets lost.
        lost: u16,
    },
    /// Status snapshot.
    Status {
        /// Transmitter state of charge, percent.
        tx_soc: u8,
        /// Receiver state of charge, percent.
        rx_soc: u8,
        /// Current mode (0 = none, 1 = active, 2 = passive,
        /// 3 = backscatter).
        mode: u8,
    },
    /// The link has no viable mode.
    LinkDown,
    /// Protocol error (echoes an error code).
    Error(u8),
}

impl Event {
    /// Serialize to a wire frame.
    pub fn encode(&self) -> Vec<u8> {
        let mut body = Vec::new();
        match self {
            Event::Ack(op) => {
                body.push(0x81);
                body.push(*op);
            }
            Event::ProbeReport(rates) => {
                body.push(0x82);
                body.extend_from_slice(rates);
            }
            Event::SendReport { delivered, lost } => {
                body.push(0x83);
                body.extend_from_slice(&delivered.to_be_bytes());
                body.extend_from_slice(&lost.to_be_bytes());
            }
            Event::Status {
                tx_soc,
                rx_soc,
                mode,
            } => {
                body.push(0x84);
                body.extend_from_slice(&[*tx_soc, *rx_soc, *mode]);
            }
            Event::LinkDown => body.push(0x85),
            Event::Error(code) => {
                body.push(0xFF);
                body.push(*code);
            }
        }
        frame(&body)
    }

    /// Parse from a wire frame.
    pub fn decode(bytes: &[u8]) -> Result<Event, WireError> {
        let body = deframe(bytes)?;
        match (body.first(), body.len()) {
            (Some(0x81), 2) => Ok(Event::Ack(body[1])),
            (Some(0x82), 4) => Ok(Event::ProbeReport([body[1], body[2], body[3]])),
            (Some(0x83), 5) => Ok(Event::SendReport {
                delivered: u16::from_be_bytes([body[1], body[2]]),
                lost: u16::from_be_bytes([body[3], body[4]]),
            }),
            (Some(0x84), 4) => Ok(Event::Status {
                tx_soc: body[1],
                rx_soc: body[2],
                mode: body[3],
            }),
            (Some(0x85), 1) => Ok(Event::LinkDown),
            (Some(0xFF), 2) => Ok(Event::Error(body[1])),
            _ => Err(WireError::UnknownOpcode),
        }
    }
}

/// Wire-level failures.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WireError {
    /// Missing start-of-frame or truncated frame.
    Framing,
    /// CRC mismatch.
    BadCrc,
    /// Valid frame, unknown opcode.
    UnknownOpcode,
    /// Opcode/argument length mismatch.
    BadLength,
}

fn frame(body: &[u8]) -> Vec<u8> {
    assert!(body.len() <= 255);
    let mut out = Vec::with_capacity(body.len() + 4);
    out.push(SOF);
    out.push(body.len() as u8);
    out.extend_from_slice(body);
    let crc = crc16_ccitt(&out[1..]);
    out.extend_from_slice(&crc.to_be_bytes());
    out
}

fn deframe(bytes: &[u8]) -> Result<Vec<u8>, WireError> {
    if bytes.len() < 4 || bytes[0] != SOF {
        return Err(WireError::Framing);
    }
    let len = bytes[1] as usize;
    if bytes.len() != len + 4 {
        return Err(WireError::Framing);
    }
    let crc = u16::from_be_bytes([bytes[len + 2], bytes[len + 3]]);
    if crc16_ccitt(&bytes[1..len + 2]) != crc {
        return Err(WireError::BadCrc);
    }
    Ok(bytes[2..len + 2].to_vec())
}

/// The module side: executes command frames against a simulated link.
#[derive(Debug)]
pub struct Driver {
    tx_device: Device,
    rx_device: Device,
    config: LiveConfig,
    link: LiveLink,
}

impl Driver {
    /// Power the module up for a device pair.
    pub fn new(tx: Device, rx: Device, config: LiveConfig) -> Self {
        Driver {
            link: LiveLink::open(tx, rx, config.clone()),
            tx_device: tx,
            rx_device: rx,
            config,
        }
    }

    /// Execute one command frame; returns the response frame.
    pub fn execute(&mut self, command_frame: &[u8]) -> Vec<u8> {
        let command = match Command::decode(command_frame) {
            Ok(c) => c,
            Err(WireError::BadCrc) => return Event::Error(0x02).encode(),
            Err(_) => return Event::Error(0x01).encode(),
        };
        match command {
            Command::Reset => {
                self.link = LiveLink::open(self.tx_device, self.rx_device, self.config.clone());
                Event::Ack(command.opcode()).encode()
            }
            Command::SetDistance(cm) => {
                self.link.set_distance(Meters::from_cm(cm as f64));
                Event::Ack(command.opcode()).encode()
            }
            Command::Probe => {
                // Force a fresh plan and report per-mode rates.
                match self.link.step() {
                    PacketOutcome::LinkDown => return Event::LinkDown.encode(),
                    PacketOutcome::BatteryDead => return Event::Error(0x03).encode(),
                    _ => {}
                }
                let mut rates = [0u8; 3];
                if let Some(plan) = self.link.plan() {
                    for a in &plan.allocations {
                        let idx = Mode::ALL
                            .iter()
                            .position(|&m| m == a.option.mode)
                            .expect("mode in ALL");
                        rates[idx] = match a.option.rate {
                            braidio_radio::characterization::Rate::Kbps10 => 1,
                            braidio_radio::characterization::Rate::Kbps100 => 2,
                            braidio_radio::characterization::Rate::Mbps1 => 3,
                        };
                    }
                }
                Event::ProbeReport(rates).encode()
            }
            Command::Send(count) => {
                let before = self.link.stats();
                let mut attempted = 0u16;
                while attempted < count {
                    match self.link.step() {
                        PacketOutcome::Delivered { .. } | PacketOutcome::Lost { .. } => {
                            attempted += 1;
                        }
                        PacketOutcome::Replanned => {}
                        PacketOutcome::LinkDown => return Event::LinkDown.encode(),
                        PacketOutcome::BatteryDead => break,
                    }
                }
                let after = self.link.stats();
                Event::SendReport {
                    delivered: (after.delivered - before.delivered) as u16,
                    lost: (after.lost - before.lost) as u16,
                }
                .encode()
            }
            Command::Status => {
                let tx_soc = 100.0 * self.link.tx_remaining().joules()
                    / braidio_units::Joules::from_watt_hours(self.tx_device.battery_wh).joules();
                let rx_soc = 100.0 * self.link.rx_remaining().joules()
                    / braidio_units::Joules::from_watt_hours(self.rx_device.battery_wh).joules();
                let mode = match self.link.plan() {
                    None => 0,
                    Some(plan) => {
                        let dominant = Mode::ALL
                            .into_iter()
                            .max_by(|a, b| {
                                plan.mode_fraction(*a)
                                    .partial_cmp(&plan.mode_fraction(*b))
                                    .expect("finite")
                            })
                            .expect("modes");
                        match dominant {
                            Mode::Active => 1,
                            Mode::Passive => 2,
                            Mode::Backscatter => 3,
                        }
                    }
                };
                Event::Status {
                    tx_soc: tx_soc.round() as u8,
                    rx_soc: rx_soc.round() as u8,
                    mode,
                }
                .encode()
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use braidio_radio::devices;

    fn driver() -> Driver {
        Driver::new(
            devices::APPLE_WATCH,
            devices::IPHONE_6S,
            LiveConfig::default(),
        )
    }

    fn exec(d: &mut Driver, c: Command) -> Event {
        Event::decode(&d.execute(&c.encode())).expect("valid event frame")
    }

    #[test]
    fn command_frames_round_trip() {
        for c in [
            Command::Reset,
            Command::SetDistance(123),
            Command::Probe,
            Command::Send(4096),
            Command::Status,
        ] {
            assert_eq!(Command::decode(&c.encode()).unwrap(), c);
        }
    }

    #[test]
    fn event_frames_round_trip() {
        for e in [
            Event::Ack(0x03),
            Event::ProbeReport([3, 3, 2]),
            Event::SendReport {
                delivered: 100,
                lost: 3,
            },
            Event::Status {
                tx_soc: 87,
                rx_soc: 100,
                mode: 3,
            },
            Event::LinkDown,
            Event::Error(0x02),
        ] {
            assert_eq!(Event::decode(&e.encode()).unwrap(), e);
        }
    }

    #[test]
    fn corrupted_command_rejected_with_crc_error() {
        let mut d = driver();
        let mut bytes = Command::Probe.encode();
        bytes[2] ^= 0x40;
        let resp = Event::decode(&d.execute(&bytes)).unwrap();
        assert_eq!(resp, Event::Error(0x02));
    }

    #[test]
    fn full_session_over_the_wire() {
        let mut d = driver();
        // Probe, then send a burst, then check status — all in bytes.
        let probe = exec(&mut d, Command::Probe);
        match probe {
            Event::ProbeReport(rates) => {
                // At the default 0.5 m the braid uses backscatter at 1 Mbps.
                assert_eq!(rates[2], 3, "backscatter@1M expected: {rates:?}");
            }
            other => panic!("expected probe report, got {other:?}"),
        }
        let sent = exec(&mut d, Command::Send(200));
        match sent {
            Event::SendReport { delivered, lost } => {
                assert_eq!(delivered, 200);
                assert_eq!(lost, 0);
            }
            other => panic!("expected send report, got {other:?}"),
        }
        let status = exec(&mut d, Command::Status);
        match status {
            Event::Status {
                tx_soc,
                rx_soc,
                mode,
            } => {
                assert!(tx_soc >= 99 && rx_soc >= 99);
                assert_eq!(mode, 3, "watch->phone should braid backscatter-heavy");
            }
            other => panic!("expected status, got {other:?}"),
        }
    }

    #[test]
    fn distance_command_changes_the_plan() {
        let mut d = driver();
        let _ = exec(&mut d, Command::Probe);
        // Walk out past the backscatter edge.
        assert_eq!(exec(&mut d, Command::SetDistance(300)), Event::Ack(0x02));
        let probe = exec(&mut d, Command::Probe);
        match probe {
            Event::ProbeReport(rates) => {
                assert_eq!(rates[2], 0, "no backscatter at 3 m: {rates:?}");
            }
            other => panic!("expected probe report, got {other:?}"),
        }
    }

    #[test]
    fn far_range_degrades_to_active_only() {
        // 655 m (the u16-cm ceiling) is far beyond every detector mode but
        // still inside the active radio's link budget — the safety net.
        let mut d = driver();
        let _ = exec(&mut d, Command::SetDistance(65535));
        match exec(&mut d, Command::Probe) {
            Event::ProbeReport(rates) => assert_eq!(rates, [3, 0, 0], "active only"),
            other => panic!("{other:?}"),
        }
        // Packets still flow over the active fallback, though this far out
        // the link is lossy (BER ≈ 2.5e-3 → most frames need retries).
        match exec(&mut d, Command::Send(20)) {
            Event::SendReport { delivered, lost } => {
                assert_eq!(delivered + lost, 20);
                assert!(delivered >= 1, "delivered {delivered}, lost {lost}");
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn reset_restores_batteries() {
        let mut d = driver();
        let _ = exec(&mut d, Command::Probe);
        let _ = exec(&mut d, Command::Send(500));
        assert_eq!(exec(&mut d, Command::Reset), Event::Ack(0x01));
        match exec(&mut d, Command::Status) {
            Event::Status {
                tx_soc,
                rx_soc,
                mode,
            } => {
                assert_eq!((tx_soc, rx_soc, mode), (100, 100, 0));
            }
            other => panic!("{other:?}"),
        }
    }
}
