//! Property-based tests for the core crate: wire-protocol robustness and
//! transfer-level invariants.

use braidio::driver::{Command, Event, WireError};
use braidio::prelude::*;
use proptest::prelude::*;

proptest! {
    /// Decoders must never panic on arbitrary byte soup, and must never
    /// "succeed" on a frame whose CRC does not check out.
    #[test]
    fn wire_decoders_are_total(bytes in proptest::collection::vec(any::<u8>(), 0..64)) {
        let _ = Command::decode(&bytes);
        let _ = Event::decode(&bytes);
    }

    /// Any single-byte corruption of a valid command frame is rejected
    /// (framing, CRC, or length check).
    #[test]
    fn corrupted_commands_rejected(pos in 0usize..16, delta in 1u8..=255) {
        for cmd in [Command::Reset, Command::SetDistance(77), Command::Send(12)] {
            let mut bytes = cmd.encode();
            let idx = pos % bytes.len();
            bytes[idx] = bytes[idx].wrapping_add(delta);
            match Command::decode(&bytes) {
                Ok(decoded) => prop_assert_eq!(decoded, cmd), // CRC collision-free for 1 byte? then equal only if unchanged
                Err(e) => prop_assert!(matches!(
                    e,
                    WireError::Framing | WireError::BadCrc | WireError::UnknownOpcode | WireError::BadLength
                )),
            }
        }
    }

    /// Commands round-trip for every argument value.
    #[test]
    fn command_round_trip(cm in any::<u16>(), n in any::<u16>()) {
        for c in [Command::SetDistance(cm), Command::Send(n), Command::Probe, Command::Status] {
            prop_assert_eq!(Command::decode(&c.encode()).unwrap(), c);
        }
    }

    /// Events round-trip for every field value.
    #[test]
    fn event_round_trip(a in any::<u8>(), b in any::<u8>(), c in any::<u8>(),
                        d in any::<u16>(), l in any::<u16>()) {
        for e in [
            Event::Ack(a),
            Event::ProbeReport([a, b, c]),
            Event::SendReport { delivered: d, lost: l },
            Event::Status { tx_soc: a, rx_soc: b, mode: c },
            Event::LinkDown,
            Event::Error(a),
        ] {
            prop_assert_eq!(Event::decode(&e.encode()).unwrap(), e.clone());
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Whatever the battery pair, Braidio's dominant mode points the
    /// carrier at the bigger battery.
    #[test]
    fn carrier_follows_the_energy(i in 0usize..10, j in 0usize..10) {
        prop_assume!(i != j);
        let tx = devices::CATALOG[i];
        let rx = devices::CATALOG[j];
        let outcome = Transfer::between(tx, rx).run();
        let dominant = outcome.dominant_mode();
        if tx.battery_wh > 3.0 * rx.battery_wh {
            prop_assert_eq!(dominant, Mode::Passive, "{} -> {}", tx.name, rx.name);
        } else if rx.battery_wh > 3.0 * tx.battery_wh {
            prop_assert_eq!(dominant, Mode::Backscatter, "{} -> {}", tx.name, rx.name);
        }
    }
}
