//! Deterministic parallel execution for the simulation engine.
//!
//! Every sweep in the Braidio evaluation — the 10×10 device matrices of
//! Figs. 15–17, the distance grid of Fig. 18, Monte-Carlo BER chunks — is
//! embarrassingly parallel at the *index* level: cell `(i)` is a pure
//! function of `i`. This module runs such maps on scoped `std::thread`
//! workers while keeping the result **bit-for-bit identical at any thread
//! count**:
//!
//! * work is chunked by *index*, never by thread: chunk boundaries are a
//!   pure function of the item count, and each index's value is computed
//!   by calling the same pure closure;
//! * results are merged in chunk order, so the output `Vec` is the same
//!   one a serial `map` would produce;
//! * threads only race for *which chunk to grab next* (an atomic
//!   counter), which affects scheduling, not values.
//!
//! Thread count resolution (first match wins):
//! 1. [`set_threads`] (the `experiments --jobs N` flag),
//! 2. the `BRAIDIO_THREADS` environment variable,
//! 3. [`std::thread::available_parallelism`].
//!
//! No dependencies, in the workspace's smoltcp-style spirit (DESIGN.md §5).

#![warn(missing_docs)]

use braidio_telemetry as telemetry;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// Process-wide override installed by [`set_threads`]. Zero means "unset".
static THREAD_OVERRIDE: AtomicUsize = AtomicUsize::new(0);

/// Override the worker count for all subsequent parallel maps.
///
/// `set_threads(0)` clears the override, restoring `BRAIDIO_THREADS` /
/// auto-detection. This is what `experiments --jobs N` calls.
pub fn set_threads(n: usize) {
    THREAD_OVERRIDE.store(n, Ordering::SeqCst);
}

/// The number of worker threads parallel maps will use.
pub fn thread_count() -> usize {
    let forced = THREAD_OVERRIDE.load(Ordering::SeqCst);
    if forced > 0 {
        return forced;
    }
    if env_threads().is_some() {
        return env_threads().unwrap();
    }
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// `BRAIDIO_THREADS`, if set to a usable value.
fn env_threads() -> Option<usize> {
    std::env::var("BRAIDIO_THREADS")
        .ok()
        .and_then(|v| v.trim().parse::<usize>().ok())
        .filter(|&n| n >= 1)
}

/// Which rule of the thread-count resolution chain decided
/// [`thread_count`], so benchmark reports can attribute a wall-clock
/// number to how its core count was chosen.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ThreadSource {
    /// [`set_threads`] — the `experiments --jobs N` flag.
    Flag,
    /// The `BRAIDIO_THREADS` environment variable.
    Env,
    /// [`std::thread::available_parallelism`] auto-detection.
    Auto,
}

impl ThreadSource {
    /// Stable lowercase label for machine-readable reports.
    pub fn label(self) -> &'static str {
        match self {
            ThreadSource::Flag => "jobs-flag",
            ThreadSource::Env => "env",
            ThreadSource::Auto => "auto",
        }
    }
}

/// Where the current [`thread_count`] comes from (same resolution order).
pub fn thread_source() -> ThreadSource {
    if THREAD_OVERRIDE.load(Ordering::SeqCst) > 0 {
        ThreadSource::Flag
    } else if env_threads().is_some() {
        ThreadSource::Env
    } else {
        ThreadSource::Auto
    }
}

/// The chunk size [`par_map_indexed`] uses for an `n`-item map: index-based
/// boundaries from a fixed 4× oversubscription of the current thread count.
/// Public so intra-wave fan-outs (the fleet engine's planning wave) and the
/// benchmark metadata report the exact scheduling granularity in use —
/// chunking only affects scheduling, never values.
pub fn default_chunk(n: usize) -> usize {
    let threads = thread_count().min(n.max(1));
    n.div_ceil(threads * 4).max(1)
}

/// Run `set_threads(n)`, evaluate `f`, then restore the previous override.
///
/// Intended for tests and benches that compare thread counts; not safe
/// against *concurrent* callers mutating the override (the global is
/// process-wide by design — the experiment driver sets it once at startup).
pub fn with_threads<R>(n: usize, f: impl FnOnce() -> R) -> R {
    struct Restore(usize);
    impl Drop for Restore {
        fn drop(&mut self) {
            THREAD_OVERRIDE.store(self.0, Ordering::SeqCst);
        }
    }
    let _restore = Restore(THREAD_OVERRIDE.swap(n, Ordering::SeqCst));
    f()
}

/// Map `f` over `0..n` in parallel, returning results in index order.
///
/// Deterministic: for a pure `f`, the result is identical at any thread
/// count (including 1). Panics in `f` propagate to the caller.
pub fn par_map_indexed<R, F>(n: usize, f: F) -> Vec<R>
where
    R: Send,
    F: Fn(usize) -> R + Sync,
{
    // Index-based chunking: boundaries depend only on `n` and a fixed
    // oversubscription factor, never on which thread runs what.
    par_map_indexed_with_chunk(n, default_chunk(n), f)
}

/// [`par_map_indexed`] with an explicit chunk size.
///
/// The default oversubscription-derived chunking is right for large grids
/// of uniform cells; callers mapping a handful of wildly uneven work items
/// (the fleet runner's scenario grids, where one scenario can cost 100×
/// another) pass `chunk = 1` so every item is its own schedulable unit.
/// Values are identical for any `chunk` and thread count — chunking only
/// decides scheduling granularity and wall-clock span lanes.
pub fn par_map_indexed_with_chunk<R, F>(n: usize, chunk: usize, f: F) -> Vec<R>
where
    R: Send,
    F: Fn(usize) -> R + Sync,
{
    assert!(chunk >= 1, "chunk size must be at least 1");
    let threads = thread_count().min(n.max(1));
    if threads <= 1 || n <= 1 {
        return (0..n).map(f).collect();
    }

    let nchunks = n.div_ceil(chunk);
    let next = AtomicUsize::new(0);
    let done: Mutex<Vec<(usize, Vec<R>, telemetry::Batch)>> =
        Mutex::new(Vec::with_capacity(nchunks));

    std::thread::scope(|s| {
        for _ in 0..threads {
            s.spawn(|| loop {
                let c = next.fetch_add(1, Ordering::Relaxed);
                if c >= nchunks {
                    break;
                }
                let lo = c * chunk;
                let hi = (lo + chunk).min(n);
                let values: Vec<R> = {
                    let _span = telemetry::span("pool.chunk");
                    (lo..hi).map(&f).collect()
                };
                // Drain whatever the chunk buffered on this worker so the
                // caller can re-inject the batches in chunk index order —
                // the merged telemetry stream is then the one a serial run
                // would produce, regardless of which worker ran the chunk.
                let batch = if telemetry::active() {
                    let mut b = telemetry::drain_thread();
                    for sp in &mut b.spans {
                        sp.lane = c as u32;
                    }
                    b
                } else {
                    telemetry::Batch::default()
                };
                done.lock()
                    .expect("worker panicked holding results")
                    .push((c, values, batch));
            });
        }
    });

    let mut parts = done.into_inner().expect("worker panicked holding results");
    parts.sort_unstable_by_key(|&(c, ..)| c);
    debug_assert_eq!(parts.len(), nchunks);
    parts
        .into_iter()
        .flat_map(|(_, v, batch)| {
            telemetry::inject(batch);
            v
        })
        .collect()
}

/// Map `f` over a slice in parallel, returning results in input order.
pub fn par_map<T, R, F>(items: &[T], f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    par_map_indexed(items.len(), |i| f(&items[i]))
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Serializes tests that mutate the process-wide override.
    static TEST_LOCK: Mutex<()> = Mutex::new(());

    fn serialized() -> std::sync::MutexGuard<'static, ()> {
        TEST_LOCK.lock().unwrap_or_else(|e| e.into_inner())
    }

    #[test]
    fn matches_serial_map() {
        let _guard = serialized();
        let serial: Vec<u64> = (0..1000)
            .map(|i| (i as u64).wrapping_mul(2654435761))
            .collect();
        let parallel = with_threads(4, || {
            par_map_indexed(1000, |i| (i as u64).wrapping_mul(2654435761))
        });
        assert_eq!(serial, parallel);
    }

    #[test]
    fn identical_at_any_thread_count() {
        let _guard = serialized();
        let f = |i: usize| (i as f64).sqrt().sin();
        let one = with_threads(1, || par_map_indexed(777, f));
        for threads in [2, 3, 4, 8, 16] {
            let many = with_threads(threads, || par_map_indexed(777, f));
            assert_eq!(one.len(), many.len());
            for (a, b) in one.iter().zip(&many) {
                assert_eq!(a.to_bits(), b.to_bits(), "threads {threads}");
            }
        }
    }

    #[test]
    fn explicit_chunk_sizes_match_serial_bitwise() {
        let _guard = serialized();
        let f = |i: usize| (i as f64).cbrt().cos();
        let serial: Vec<f64> = (0..101).map(f).collect();
        for chunk in [1, 2, 7, 101, 500] {
            let par = with_threads(4, || par_map_indexed_with_chunk(101, chunk, f));
            assert_eq!(serial.len(), par.len());
            for (a, b) in serial.iter().zip(&par) {
                assert_eq!(a.to_bits(), b.to_bits(), "chunk {chunk}");
            }
        }
    }

    #[test]
    fn par_map_over_slice() {
        let _guard = serialized();
        let items: Vec<i32> = (0..57).collect();
        let doubled = with_threads(3, || par_map(&items, |x| x * 2));
        assert_eq!(doubled, (0..57).map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn empty_and_single() {
        assert!(par_map_indexed(0, |i| i).is_empty());
        assert_eq!(par_map_indexed(1, |i| i), vec![0]);
    }

    #[test]
    fn override_beats_env_and_clears() {
        let _guard = serialized();
        set_threads(3);
        assert_eq!(thread_count(), 3);
        assert_eq!(thread_source(), ThreadSource::Flag);
        set_threads(0);
        assert!(thread_count() >= 1);
        assert_ne!(thread_source(), ThreadSource::Flag);
    }

    #[test]
    fn default_chunk_tracks_thread_count() {
        let _guard = serialized();
        with_threads(4, || {
            // 4 threads × 4-way oversubscription → 16 chunks.
            assert_eq!(default_chunk(1600), 100);
            assert_eq!(default_chunk(16), 1);
            // Degenerate sizes never produce a zero chunk.
            assert_eq!(default_chunk(0), 1);
            assert_eq!(default_chunk(1), 1);
        });
        with_threads(1, || assert_eq!(default_chunk(1600), 400));
    }

    #[test]
    fn telemetry_merges_in_index_order_at_any_thread_count() {
        let _guard = serialized();
        let emit_for = |i: usize| {
            telemetry::with_run(i as u32, || {
                telemetry::begin_unit();
                telemetry::emit(telemetry::Event::WakeupDetect {
                    at: telemetry::units::Seconds::new(i as f64),
                    track: telemetry::Track::Device(i as u32),
                });
                i
            })
        };
        telemetry::set_enabled(true);
        let _ = telemetry::take_events();
        let serial = with_threads(1, || par_map_indexed(123, emit_for));
        let serial_events = telemetry::take_events();
        let parallel = with_threads(8, || par_map_indexed(123, emit_for));
        let parallel_events = telemetry::take_events();
        telemetry::set_enabled(false);
        assert_eq!(serial, parallel);
        assert_eq!(serial_events.len(), 123);
        assert_eq!(serial_events, parallel_events);
    }

    #[test]
    fn worker_panic_propagates() {
        let _guard = serialized();
        let result = std::panic::catch_unwind(|| {
            with_threads(4, || {
                par_map_indexed(100, |i| {
                    assert!(i != 57, "intentional");
                    i
                })
            })
        });
        assert!(result.is_err());
    }
}
