//! Property-based tests for the carrier-offload MAC.

use braidio_mac::offload::{options_at, solve, LinkOption};
use braidio_mac::scheduler::{BraidedScheduler, Decision};
use braidio_mac::sim::{simulate_transfer, Policy, TransferSetup};
use braidio_mac::Regime;
use braidio_radio::characterization::{Characterization, Rate};
use braidio_radio::Mode;
use braidio_units::{Joules, JoulesPerBit, Meters};
use proptest::prelude::*;

fn ch() -> Characterization {
    Characterization::braidio()
}

/// Random synthetic option sets: 2–5 options with positive costs.
fn arb_options() -> impl Strategy<Value = Vec<LinkOption>> {
    proptest::collection::vec(
        (1e-12f64..1e-6, 1e-12f64..1e-6).prop_map(|(t, r)| LinkOption {
            mode: Mode::Active,
            rate: Rate::Mbps1,
            tx_cost: JoulesPerBit::new(t),
            rx_cost: JoulesPerBit::new(r),
        }),
        2..5,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// Solver invariants hold on *arbitrary* synthetic option sets, not
    /// just the Braidio characterization: fractions form a distribution,
    /// exact plans meet the ratio exactly, and no exact plan wastes energy
    /// relative to another exact mix (it minimizes the Eq. 1 objective).
    ///
    /// Note: dominance over *every* single mode is deliberately NOT
    /// asserted here — power-proportionality is a hard constraint in
    /// Eq. 1, and adversarial cost tables exist where an unbalanced single
    /// mode moves more raw bits by stranding one battery (see the doc note
    /// in `offload`). That dominance is asserted for the real Braidio cost
    /// structure in `tests/property_based.rs` at the workspace root.
    #[test]
    fn solver_on_synthetic_options(opts in arb_options(),
                                   log_ratio in -4.0f64..4.0) {
        let ratio = 10f64.powf(log_ratio);
        let e1 = Joules::new(ratio);
        let e2 = Joules::new(1.0);
        let plan = solve(&opts, e1, e2).unwrap();

        let total: f64 = plan.allocations.iter().map(|a| a.fraction).sum();
        prop_assert!((total - 1.0).abs() < 1e-9);
        prop_assert!(plan.allocations.len() <= 2);
        if plan.exact {
            prop_assert!((plan.asymmetry() / ratio - 1.0).abs() < 1e-6);
            // Among exact plans, the solver minimizes Σ pᵢ(Tᵢ+Rᵢ); verify
            // against every feasible opposite-sign pair by brute force.
            let k = ratio;
            let a: Vec<f64> = opts.iter()
                .map(|o| o.tx_cost.joules_per_bit() - k * o.rx_cost.joules_per_bit())
                .collect();
            let plan_obj = plan.tx_cost.joules_per_bit() + plan.rx_cost.joules_per_bit();
            for i in 0..opts.len() {
                for j in 0..opts.len() {
                    if a[i] > 0.0 && a[j] < 0.0 {
                        let p = -a[j] / (a[i] - a[j]);
                        let t = p * opts[i].tx_cost.joules_per_bit()
                            + (1.0 - p) * opts[j].tx_cost.joules_per_bit();
                        let r = p * opts[i].rx_cost.joules_per_bit()
                            + (1.0 - p) * opts[j].rx_cost.joules_per_bit();
                        prop_assert!(plan_obj <= t + r + 1e-9 * (t + r),
                            "pair ({i},{j}) beats the plan");
                    }
                }
            }
        }
    }

    /// The blended plan costs are convex combinations of the allocation
    /// costs.
    #[test]
    fn plan_costs_are_convex_combinations(opts in arb_options(), log_ratio in -3.0f64..3.0) {
        let plan = solve(&opts, Joules::new(10f64.powf(log_ratio)), Joules::new(1.0)).unwrap();
        let tx: f64 = plan.allocations.iter()
            .map(|a| a.fraction * a.option.tx_cost.joules_per_bit()).sum();
        let rx: f64 = plan.allocations.iter()
            .map(|a| a.fraction * a.option.rx_cost.joules_per_bit()).sum();
        prop_assert!((tx - plan.tx_cost.joules_per_bit()).abs() < 1e-18 + 1e-9 * tx);
        prop_assert!((rx - plan.rx_cost.joules_per_bit()).abs() < 1e-18 + 1e-9 * rx);
    }

    /// The braided scheduler realizes its fractions to within 1/n and never
    /// emits an option outside the plan.
    #[test]
    fn scheduler_tracks_fractions(p in 0.01f64..0.99, n in 100usize..1000) {
        let opt = |mode: Mode| LinkOption {
            mode,
            rate: Rate::Mbps1,
            tx_cost: JoulesPerBit::from_nanojoules(1.0),
            rx_cost: JoulesPerBit::from_nanojoules(1.0),
        };
        let plan = braidio_mac::OffloadPlan {
            allocations: braidio_mac::offload::Allocations::from_slice(&[
                braidio_mac::offload::Allocation { option: opt(Mode::Passive), fraction: p },
                braidio_mac::offload::Allocation { option: opt(Mode::Backscatter), fraction: 1.0 - p },
            ]),
            tx_cost: JoulesPerBit::from_nanojoules(1.0),
            rx_cost: JoulesPerBit::from_nanojoules(1.0),
            exact: true,
        };
        let mut s = BraidedScheduler::new(&plan);
        let mut passive = 0usize;
        for _ in 0..n {
            match s.next() {
                Decision::Send(o) => {
                    prop_assert!(o.mode == Mode::Passive || o.mode == Mode::Backscatter);
                    if o.mode == Mode::Passive { passive += 1; }
                }
                Decision::Replan => prop_assert!(false, "no failures reported"),
            }
        }
        let realized = passive as f64 / n as f64;
        prop_assert!((realized - p).abs() <= 1.5 / n as f64 + 1e-9,
            "target {p}, realized {realized}");
    }

    /// Regime classification is monotone in distance: once a regime
    /// degrades it never comes back.
    #[test]
    fn regimes_monotone(d1 in 0.1f64..7.0, delta in 0.01f64..3.0) {
        let rank = |r: Regime| match r {
            Regime::A => 0,
            Regime::B => 1,
            Regime::C => 2,
            Regime::OutOfRange => 3,
        };
        let c = ch();
        let r1 = rank(Regime::classify(&c, Meters::new(d1)));
        let r2 = rank(Regime::classify(&c, Meters::new(d1 + delta)));
        prop_assert!(r2 >= r1);
    }

    /// Options at any distance have physical, strictly positive costs and
    /// come at most one per mode.
    #[test]
    fn options_well_formed(d in 0.1f64..8.0) {
        let opts = options_at(&ch(), Meters::new(d));
        for o in &opts {
            prop_assert!(o.tx_cost.joules_per_bit() > 0.0);
            prop_assert!(o.rx_cost.joules_per_bit() > 0.0);
        }
        let mut modes: Vec<Mode> = opts.iter().map(|o| o.mode).collect();
        modes.sort();
        modes.dedup();
        prop_assert_eq!(modes.len(), opts.len(), "duplicate mode option");
    }
}

proptest! {
    // The full-lifetime simulator is the expensive oracle here; keep the
    // case count modest.
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// The simulator never moves more bits than the receiver-side physical
    /// floor allows, however large the transmitter's battery.
    #[test]
    fn sim_bounded_by_rx_floor(log_ratio in 0.0f64..2.5) {
        let ratio = 10f64.powf(log_ratio);
        let braidio = simulate_transfer(&TransferSetup::new(ratio, 1.0, Policy::Braidio));
        // Upper bound: even a zero-cost transmitter cannot beat the
        // receiver-side physical floor (best RX cost in the table).
        let best_rx_cost = 49.10e-6 / 1e6; // passive @1M, J/bit
        let bound = Joules::from_watt_hours(1.0).joules() / best_rx_cost;
        prop_assert!(braidio.bits <= bound * 1.001, "bits {} vs bound {bound}", braidio.bits);
    }
}
