//! Coexistence: two Braidio pairs in one room.
//!
//! Table 3 admits the design's soft spot: the SAW filter "may be interfered
//! by in-band signal" — and the loudest in-band signal around is *another
//! Braidio pair's carrier*. This module quantifies the victim detector's
//! SNR penalty from a foreign carrier, how far apart two pairs must be to
//! keep their backscatter regimes, and when coordinating (TDMA-style
//! carrier alternation) beats suffering the interference.
//!
//! Model: the foreign carrier arrives at the victim's detector with power
//! `I`. What fraction acts as noise depends on where it lands:
//!
//! * **co-channel** — the foreign carrier superposes quasi-statically with
//!   the victim's own self-interference; the high-pass removes its DC part
//!   and only channel-dynamics leakage (~10 %) acts as noise;
//! * **adjacent channel (in ISM band)** — the beat between the two
//!   carriers lands inside the baseband: full power acts as noise;
//! * **out of band** — the SAW's stopband rejection applies first.
//!
//! The analysis lands on a sharp conclusion: *distance cannot save the
//! backscatter regime from an uncoordinated in-band carrier* — a one-way
//! CW always dwarfs a two-way reflection — so multi-pair deployments must
//! coordinate (TDMA or channel planning), the same pressure that produced
//! EPC Gen2's dense-reader mode.

use braidio_radio::characterization::{Characterization, Rate, OPERATIONAL_BER};
use braidio_radio::Mode;
use braidio_rfsim::pathloss::free_space_gain;
use braidio_units::{Decibels, Hertz, Meters, Watts};

/// Where the foreign carrier sits relative to the victim's channel.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ChannelRelation {
    /// Same channel: mostly removed as quasi-DC; ~10 % leaks as noise.
    CoChannel,
    /// Different channel inside the ISM band: the beat is in-band noise.
    AdjacentChannel,
    /// Outside the ISM band: SAW stopband rejection applies.
    OutOfBand,
}

impl ChannelRelation {
    /// Every relation, in `index()` order.
    pub const ALL: [ChannelRelation; 3] = [
        ChannelRelation::CoChannel,
        ChannelRelation::AdjacentChannel,
        ChannelRelation::OutOfBand,
    ];

    /// A dense index (0..3) for table lookups, matching [`Self::ALL`].
    #[inline]
    pub fn index(self) -> usize {
        self as usize
    }

    /// The fraction of the arriving carrier power that acts as detector
    /// noise.
    pub fn noise_coupling(self) -> Decibels {
        match self {
            ChannelRelation::CoChannel => Decibels::new(-10.0),
            ChannelRelation::AdjacentChannel => Decibels::new(0.0),
            ChannelRelation::OutOfBand => Decibels::new(-30.0),
        }
    }

    /// `noise_coupling().linear()`, computed once per process.
    ///
    /// The three coupling figures are compile-time constants, but
    /// `Decibels::linear` is a `powf` — too expensive to pay per
    /// interference edge. The table is initialized by running the exact
    /// same `noise_coupling().linear()` conversions once, so every lookup
    /// returns the identical bits the direct call would produce.
    #[inline]
    pub fn noise_coupling_linear(self) -> f64 {
        use std::sync::OnceLock;
        static TABLE: OnceLock<[f64; 3]> = OnceLock::new();
        TABLE.get_or_init(|| ChannelRelation::ALL.map(|r| r.noise_coupling().linear()))
            [self.index()]
    }
}

/// A coexistence scenario: a victim pair plus one foreign carrier.
#[derive(Debug, Clone)]
pub struct Coexistence {
    /// The victim pair's characterization.
    pub ch: Characterization,
    /// Distance from the foreign carrier to the victim's receive antenna.
    pub interferer_distance: Meters,
    /// The foreign carrier's RF output (another Braidio: 13 dBm).
    pub interferer_rf: Watts,
    /// Channel relationship.
    pub relation: ChannelRelation,
}

impl Coexistence {
    /// Another Braidio pair's carrier at the given distance, adjacent
    /// channel (the worst realistic case).
    pub fn braidio_neighbor(d: Meters) -> Self {
        Coexistence {
            ch: Characterization::braidio(),
            interferer_distance: d,
            interferer_rf: Watts::from_dbm(13.0),
            relation: ChannelRelation::AdjacentChannel,
        }
    }

    /// Foreign-carrier power arriving at the victim detector (after the
    /// victim's antenna and front end).
    pub fn interference_at_detector(&self) -> Watts {
        self.interferer_rf
            .gained(free_space_gain(self.interferer_distance, Hertz::UHF_915M))
            .gained(self.ch.budget.rx_antenna_gain)
            .gained(-self.ch.budget.detector_frontend_loss)
            .gained(self.relation.noise_coupling())
    }

    /// Victim SNR with the interference folded into the noise floor.
    pub fn victim_snr(&self, mode: Mode, rate: Rate, d_pair: Meters) -> Decibels {
        let rx = self.ch.received_power(mode, d_pair);
        let noise = self
            .ch
            .detector_noise(mode, rate)
            .expect("detector-based mode")
            + self.interference_at_detector();
        rx.ratio_db(noise)
    }

    /// SNR penalty relative to the interference-free link.
    pub fn snr_penalty(&self, mode: Mode, rate: Rate, d_pair: Meters) -> Decibels {
        self.ch.snr(mode, rate, d_pair) - self.victim_snr(mode, rate, d_pair)
    }

    /// Is the victim link still operational under interference?
    pub fn victim_available(&self, mode: Mode, rate: Rate, d_pair: Meters) -> bool {
        let gamma = self.victim_snr(mode, rate, d_pair).linear();
        braidio_phy::ber::ber_ook_noncoherent_fast(gamma) <= OPERATIONAL_BER
    }

    /// The fastest operational rate for the victim under interference.
    pub fn victim_max_rate(&self, mode: Mode, d_pair: Meters) -> Option<Rate> {
        Rate::ALL
            .into_iter()
            .rev()
            .find(|&r| self.ch.power(mode, r).is_some() && self.victim_available(mode, r, d_pair))
    }

    /// The minimum interferer distance at which the victim keeps the given
    /// mode/rate, by bisection over `[0.05, 100]` m. `None` if even 100 m
    /// is too close (never happens for realistic parameters).
    pub fn required_interferer_distance(
        &self,
        mode: Mode,
        rate: Rate,
        d_pair: Meters,
    ) -> Option<Meters> {
        let ok = |d: f64| {
            let mut c = self.clone();
            c.interferer_distance = Meters::new(d);
            c.victim_available(mode, rate, d_pair)
        };
        if !self.ch.available(mode, rate, d_pair) {
            return None; // dead even without interference
        }
        if ok(0.05) {
            return Some(Meters::new(0.05));
        }
        if !ok(100.0) {
            return None;
        }
        let (mut lo, mut hi) = (0.05f64, 100.0f64);
        for _ in 0..48 {
            let mid = 0.5 * (lo + hi);
            if ok(mid) {
                hi = mid;
            } else {
                lo = mid;
            }
        }
        Some(Meters::new(0.5 * (lo + hi)))
    }

    /// Throughput comparison: suffer the interference at the best surviving
    /// rate, or TDMA the two carriers (full rate, half airtime). Returns
    /// `(suffer_bps, tdma_bps)` for the victim's mode at `d_pair`.
    pub fn suffer_vs_tdma(&self, mode: Mode, d_pair: Meters) -> (f64, f64) {
        let suffer = self
            .victim_max_rate(mode, d_pair)
            .map(|r| r.bps().bps())
            .unwrap_or(0.0);
        let tdma = self
            .ch
            .max_rate(mode, d_pair)
            .map(|r| r.bps().bps() * 0.5)
            .unwrap_or(0.0);
        (suffer, tdma)
    }

    /// The analytical TDMA crossover: the minimum interferer distance past
    /// which *suffering* the interference out-throughputs two-pair TDMA for
    /// the given mode at `d_pair`.
    ///
    /// Braidio's bitrates are decade-spaced while two-pair TDMA halves the
    /// airtime, so suffering only wins once the victim keeps its *full*
    /// interference-free rate (the next rate down is 10× slower — far less
    /// than half). The crossover therefore equals
    /// [`required_interferer_distance`] at the mode's clean max rate.
    /// `None` means no distance suffices (the backscatter case: an
    /// uncoordinated in-band carrier beats a two-way reflection from any
    /// separation, so coordination is mandatory).
    ///
    /// [`required_interferer_distance`]: Coexistence::required_interferer_distance
    pub fn tdma_crossover_distance(&self, mode: Mode, d_pair: Meters) -> Option<Meters> {
        let full = self.ch.max_rate(mode, d_pair)?;
        self.required_interferer_distance(mode, full, d_pair)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn noise_coupling_linear_matches_direct_bitwise() {
        for (i, r) in ChannelRelation::ALL.into_iter().enumerate() {
            assert_eq!(r.index(), i);
            assert_eq!(
                r.noise_coupling_linear().to_bits(),
                r.noise_coupling().linear().to_bits(),
                "{r:?}"
            );
        }
    }

    #[test]
    fn penalty_shrinks_with_interferer_distance() {
        let mut prev = f64::MAX;
        for d in [1.0, 2.0, 5.0, 10.0, 30.0] {
            let c = Coexistence::braidio_neighbor(Meters::new(d));
            let p = c
                .snr_penalty(Mode::Backscatter, Rate::Kbps100, Meters::new(1.0))
                .db();
            assert!(p < prev, "at {d} m");
            assert!(p >= 0.0);
            prev = p;
        }
    }

    #[test]
    fn close_neighbor_kills_backscatter() {
        // A second pair's carrier 1 m away obliterates the victim's
        // backscatter regime (the backscatter signal is ~90 dB below it).
        let c = Coexistence::braidio_neighbor(Meters::new(1.0));
        assert_eq!(c.victim_max_rate(Mode::Backscatter, Meters::new(0.5)), None);
    }

    #[test]
    fn co_channel_hurts_less_than_adjacent() {
        let mut adj = Coexistence::braidio_neighbor(Meters::new(5.0));
        let mut co = adj.clone();
        co.relation = ChannelRelation::CoChannel;
        adj.relation = ChannelRelation::AdjacentChannel;
        let d = Meters::new(1.0);
        assert!(
            co.snr_penalty(Mode::Backscatter, Rate::Kbps100, d)
                < adj.snr_penalty(Mode::Backscatter, Rate::Kbps100, d)
        );
    }

    #[test]
    fn out_of_band_neighbor_is_nearly_harmless() {
        let mut c = Coexistence::braidio_neighbor(Meters::new(3.0));
        c.relation = ChannelRelation::OutOfBand;
        let p = c
            .snr_penalty(Mode::Passive, Rate::Kbps100, Meters::new(2.0))
            .db();
        assert!(p < 1.0, "penalty {p} dB");
    }

    #[test]
    fn backscatter_needs_coordination_not_distance() {
        // The headline coexistence finding: an uncoordinated adjacent-
        // channel carrier kills the backscatter regime even from 100 m away
        // — a CW carrier over a one-way path is always orders of magnitude
        // above a two-way backscatter reflection. Spatial separation cannot
        // fix it; coordination (TDMA / channel planning) is required. This
        // is exactly why EPC Gen2 defines a dense-reader mode.
        let c = Coexistence::braidio_neighbor(Meters::new(1.0));
        assert_eq!(
            c.required_interferer_distance(Mode::Backscatter, Rate::Kbps100, Meters::new(1.0)),
            None
        );
        // The passive link (one-way signal) *is* recoverable by distance.
        let req_p = c
            .required_interferer_distance(Mode::Passive, Rate::Kbps100, Meters::new(1.0))
            .expect("passive recoverable");
        assert!(
            (1.0..100.0).contains(&req_p.meters()),
            "passive requires {req_p}"
        );
    }

    #[test]
    fn tdma_crossover_is_where_suffer_overtakes_tdma() {
        let c = Coexistence::braidio_neighbor(Meters::new(1.0));
        let pair = Meters::new(1.0);
        // Backscatter: no crossover distance exists.
        assert_eq!(c.tdma_crossover_distance(Mode::Backscatter, pair), None);
        // Passive: a finite crossover exists, and suffer_vs_tdma flips
        // around it.
        let d_star = c
            .tdma_crossover_distance(Mode::Passive, pair)
            .expect("passive recoverable");
        assert!((0.05..100.0).contains(&d_star.meters()), "{d_star}");
        let at = |d: f64| {
            let mut cc = c.clone();
            cc.interferer_distance = Meters::new(d);
            cc.suffer_vs_tdma(Mode::Passive, pair)
        };
        let (suffer, tdma) = at(d_star.meters() * 1.05);
        assert!(suffer > tdma, "just past the crossover: {suffer} vs {tdma}");
        let (suffer, tdma) = at(d_star.meters() * 0.95);
        assert!(
            suffer < tdma,
            "just inside the crossover: {suffer} vs {tdma}"
        );
    }

    #[test]
    fn tdma_wins_for_backscatter_suffering_wins_for_far_passive() {
        // Backscatter near a neighbour: only TDMA moves bits at all.
        let near = Coexistence::braidio_neighbor(Meters::new(2.0));
        let (suffer, tdma) = near.suffer_vs_tdma(Mode::Backscatter, Meters::new(0.5));
        assert_eq!(suffer, 0.0);
        assert!(tdma > 0.0, "tdma {tdma}");
        // Passive with a far neighbour: the interference is below the
        // detector floor, so keeping the whole airtime beats halving it.
        let far = Coexistence::braidio_neighbor(Meters::new(80.0));
        let (suffer, tdma) = far.suffer_vs_tdma(Mode::Passive, Meters::new(0.5));
        assert!(suffer > tdma, "far passive: suffer {suffer} vs tdma {tdma}");
    }
}
