//! Duty-cycled sensor workloads: lifetime when the link is mostly idle.
//!
//! The Fig. 15–18 experiments saturate the link until a battery dies; real
//! wearables move a few megabytes a day and idle the rest. Idle power then
//! dominates, and Braidio's second gift — the ~50 µW passive wake-up
//! receiver instead of duty-cycled active listening (`wakeup`) — matters as
//! much as the per-bit carrier offload. This module combines both into a
//! closed-form daily energy budget.

use crate::offload::OffloadPlan;
use crate::wakeup::{DutyCycledListener, PassiveWakeup};
use braidio_units::{Joules, Seconds, Watts};

/// A daily sensor workload over a Braidio (or baseline) link.
#[derive(Debug, Clone, Copy)]
pub struct DailyWorkload {
    /// Payload bits uploaded per day.
    pub bits_per_day: f64,
    /// Idle draw at the device while waiting (its listening strategy).
    pub idle_power: Watts,
    /// Per-bit transmit-side energy while transferring.
    pub tx_cost_jpb: f64,
    /// Link time per bit (sets how long the radio is non-idle).
    pub time_per_bit: Seconds,
}

impl DailyWorkload {
    /// A wearable under Braidio: plan costs from the offload solver, idle
    /// on the passive wake-up chain.
    pub fn braidio(plan: &OffloadPlan, bits_per_day: f64) -> Self {
        let time_per_bit: f64 = plan
            .allocations
            .iter()
            .map(|a| a.fraction / a.option.rate.bps().bps())
            .sum();
        DailyWorkload {
            bits_per_day,
            idle_power: PassiveWakeup::braidio().chain_power,
            tx_cost_jpb: plan.tx_cost.joules_per_bit(),
            time_per_bit: Seconds::new(time_per_bit),
        }
    }

    /// A wearable on the Bluetooth baseline: symmetric per-bit cost, idle
    /// via 1-second low-power listening.
    pub fn bluetooth(bits_per_day: f64) -> Self {
        let radio = braidio_radio::bluetooth::BluetoothRadio::baseline();
        DailyWorkload {
            bits_per_day,
            idle_power: DutyCycledListener::ble(Seconds::new(1.0)).average_power(),
            tx_cost_jpb: radio.tx_energy_per_bit().joules_per_bit(),
            time_per_bit: Seconds::new(1.0 / radio.rate.bps()),
        }
    }

    /// Seconds per day spent actively transferring.
    pub fn active_seconds(&self) -> Seconds {
        self.time_per_bit * self.bits_per_day
    }

    /// Energy drawn from the device per day.
    pub fn daily_energy(&self) -> Joules {
        let active = self.active_seconds();
        assert!(
            active.seconds() <= 86_400.0,
            "workload exceeds a day of airtime"
        );
        let idle = Seconds::new(86_400.0) - active;
        Joules::new(self.bits_per_day * self.tx_cost_jpb) + self.idle_power * idle
    }

    /// Days a battery of `capacity` sustains this workload.
    pub fn lifetime_days(&self, capacity: Joules) -> f64 {
        capacity.joules() / self.daily_energy().joules()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::offload::solve_at;
    use braidio_radio::characterization::Characterization;
    use braidio_units::Meters;

    const MB_PER_DAY: f64 = 8.0 * 5e6; // 5 MB of sensor data

    fn plan() -> OffloadPlan {
        solve_at(
            &Characterization::braidio(),
            Meters::new(0.5),
            Joules::from_watt_hours(0.26), // fuel band
            Joules::from_watt_hours(6.55), // phone
        )
        .expect("in range")
    }

    #[test]
    fn braidio_wearable_lives_weeks_not_days() {
        let braidio = DailyWorkload::braidio(&plan(), MB_PER_DAY);
        let bt = DailyWorkload::bluetooth(MB_PER_DAY);
        let battery = Joules::from_watt_hours(0.26);
        let life_braidio = braidio.lifetime_days(battery);
        let life_bt = bt.lifetime_days(battery);
        assert!(
            life_braidio / life_bt > 3.0,
            "braidio {life_braidio:.1} d vs bluetooth {life_bt:.1} d"
        );
        assert!(life_braidio > 30.0, "braidio {life_braidio:.1} days");
    }

    #[test]
    fn idle_dominates_light_workloads() {
        let light = DailyWorkload::braidio(&plan(), 8.0 * 1e5); // 100 kB/day
        let idle_energy = light.idle_power * Seconds::new(86_400.0);
        let total = light.daily_energy();
        assert!(
            idle_energy.joules() / total.joules() > 0.9,
            "idle share {}",
            idle_energy.joules() / total.joules()
        );
    }

    #[test]
    fn transfer_dominates_heavy_workloads() {
        // A camera streaming 500 MB/day through a Bluetooth radio: the
        // per-bit cost crushes the idle share.
        let heavy = DailyWorkload::bluetooth(8.0 * 5e8);
        let idle_energy = heavy.idle_power * (Seconds::new(86_400.0) - heavy.active_seconds());
        assert!(idle_energy.joules() / heavy.daily_energy().joules() < 0.1);
    }

    #[test]
    fn daily_energy_monotone_in_bits() {
        let a = DailyWorkload::braidio(&plan(), 8e6);
        let b = DailyWorkload::braidio(&plan(), 8e7);
        assert!(b.daily_energy() > a.daily_energy());
    }

    #[test]
    #[should_panic(expected = "exceeds a day")]
    fn impossible_workload_rejected() {
        // More bits than 1 Mbps can move in 24 h.
        let w = DailyWorkload::bluetooth(1e6 * 86_400.0 * 2.0);
        let _ = w.daily_energy();
    }
}
