//! The Fig. 8 operating regimes.
//!
//! * **Regime A** — all three links viable: the carrier can be moved to
//!   either end (full power-proportionality).
//! * **Regime B** — backscatter has collapsed but the passive receiver
//!   still works: the transmitter must own the carrier, asymmetry can only
//!   favour the receiver.
//! * **Regime C** — only the active link closes: no asymmetry at all.
//! * **OutOfRange** — nothing closes.

use braidio_radio::characterization::Characterization;
use braidio_radio::Mode;
use braidio_units::Meters;

/// Which regime a separation falls into.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Regime {
    /// All modes available (Fig. 8 regime A).
    A,
    /// Active + passive only (regime B).
    B,
    /// Active only (regime C).
    C,
    /// No link at all.
    OutOfRange,
}

impl Regime {
    /// Classify a separation under a characterization.
    pub fn classify(ch: &Characterization, d: Meters) -> Regime {
        let has = |mode: Mode| ch.max_rate(mode, d).is_some();
        if has(Mode::Backscatter) && has(Mode::Passive) {
            Regime::A
        } else if has(Mode::Passive) {
            Regime::B
        } else if has(Mode::Active) {
            Regime::C
        } else {
            Regime::OutOfRange
        }
    }

    /// The modes usable in this regime.
    pub fn modes(self) -> &'static [Mode] {
        match self {
            Regime::A => &[Mode::Active, Mode::Passive, Mode::Backscatter],
            Regime::B => &[Mode::Active, Mode::Passive],
            Regime::C => &[Mode::Active],
            Regime::OutOfRange => &[],
        }
    }

    /// Can the data *transmitter* offload its carrier to the receiver here?
    pub fn supports_carrier_offload(self) -> bool {
        self == Regime::A
    }
}

/// The regime boundaries (upper edge of each regime), found by scanning the
/// characterization: `(a_to_b, b_to_c, c_to_out)` in meters.
pub fn boundaries(ch: &Characterization) -> (Meters, Meters, Meters) {
    let a_to_b = ch
        .range(
            Mode::Backscatter,
            braidio_radio::characterization::Rate::Kbps10,
        )
        .expect("backscatter closes somewhere");
    let b_to_c = ch
        .range(Mode::Passive, braidio_radio::characterization::Rate::Kbps10)
        .expect("passive closes somewhere");
    let c_to_out = ch
        .range(Mode::Active, braidio_radio::characterization::Rate::Mbps1)
        .expect("active closes somewhere");
    (a_to_b, b_to_c, c_to_out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ch() -> Characterization {
        Characterization::braidio()
    }

    #[test]
    fn regimes_in_paper_order() {
        let c = ch();
        assert_eq!(Regime::classify(&c, Meters::new(0.3)), Regime::A);
        assert_eq!(Regime::classify(&c, Meters::new(2.0)), Regime::A);
        assert_eq!(Regime::classify(&c, Meters::new(3.0)), Regime::B);
        assert_eq!(Regime::classify(&c, Meters::new(5.0)), Regime::B);
        assert_eq!(Regime::classify(&c, Meters::new(6.0)), Regime::C);
    }

    #[test]
    fn boundaries_match_fig13_ranges() {
        // A→B at the 10 kbps backscatter range (2.4 m); B→C at the 10 kbps
        // passive range (5.1 m).
        let (a_b, b_c, c_out) = boundaries(&ch());
        assert!((a_b.meters() - 2.4).abs() < 0.05, "A->B at {a_b}");
        assert!((b_c.meters() - 5.1).abs() < 0.05, "B->C at {b_c}");
        assert!(c_out.meters() > 20.0, "active range {c_out}");
    }

    #[test]
    fn only_regime_a_offloads() {
        assert!(Regime::A.supports_carrier_offload());
        assert!(!Regime::B.supports_carrier_offload());
        assert!(!Regime::C.supports_carrier_offload());
    }

    #[test]
    fn mode_lists() {
        assert_eq!(Regime::A.modes().len(), 3);
        assert_eq!(Regime::B.modes().len(), 2);
        assert_eq!(Regime::C.modes(), &[Mode::Active]);
        assert!(Regime::OutOfRange.modes().is_empty());
    }
}
