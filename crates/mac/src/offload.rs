//! The carrier-offload optimizer — Eq. 1 of the paper.
//!
//! Given the operating options the link currently supports (mode × bitrate,
//! each with per-bit costs `Tᵢ` at the transmitter and `Rᵢ` at the
//! receiver) and the energy levels `E₁`, `E₂` at the two ends, find
//! fractions `pᵢ` that
//!
//! ```text
//! minimize   Σ pᵢ (Tᵢ + Rᵢ)
//! subject to Σ pᵢ = 1,
//!            Σ pᵢ Tᵢ / Σ pᵢ Rᵢ = E₁ / E₂.
//! ```
//!
//! Structure: with `k = E₁/E₂` and `aᵢ = Tᵢ − k·Rᵢ`, the proportionality
//! constraint reads `Σ pᵢ aᵢ = 0`. The feasible set is the simplex sliced
//! by one hyperplane, so every vertex — and therefore the optimum of the
//! linear objective — uses at most **two** options, one with `aᵢ ≥ 0` and
//! one with `aᵢ ≤ 0`. We enumerate all pairs exactly; no numeric LP needed.
//! This also proves the paper's observation that the optimal operating
//! points lie on an edge of the efficiency triangle (line BC in Fig. 9).
//!
//! When the battery ratio lies outside the span of achievable asymmetries
//! (`k` above every `Tᵢ/Rᵢ` or below all of them), exact proportionality is
//! impossible; the bit-maximizing choice is then the single option that
//! minimizes the cost on the limiting side, which the solver returns with
//! [`OffloadPlan::exact`] set to `false`.
//!
//! One subtlety, faithful to the paper: power-proportionality is a *hard
//! constraint* ("maximizes the number of bits they can transfer **while
//! operating power-proportionally**", §4.2), not merely a means to more
//! bits. For adversarial cost tables an unbalanced single mode can move
//! more raw bits than the proportional mix by stranding one battery — the
//! proportional plan trades those bits for draining both ends together.
//! With Braidio's actual cost structure (see
//! `tests::plan_beats_every_single_mode`) the proportional plan also
//! maximizes bits, so the distinction never costs anything in practice.

use braidio_radio::characterization::{Characterization, Rate};
use braidio_radio::Mode;
use braidio_units::{Joules, JoulesPerBit, Meters};
use std::collections::HashMap;
use std::sync::Mutex;

/// One operating option: a (mode, bitrate) pair with its per-bit costs.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LinkOption {
    /// Operating mode.
    pub mode: Mode,
    /// Bitrate.
    pub rate: Rate,
    /// Transmitter-side cost per bit (`Tᵢ`).
    pub tx_cost: JoulesPerBit,
    /// Receiver-side cost per bit (`Rᵢ`).
    pub rx_cost: JoulesPerBit,
}

impl LinkOption {
    /// Combined cost per bit (`Tᵢ + Rᵢ`, the Eq. 1 objective weight).
    pub fn total_cost(&self) -> JoulesPerBit {
        self.tx_cost + self.rx_cost
    }

    /// The asymmetry `Tᵢ/Rᵢ` this option supports on its own.
    pub fn asymmetry(&self) -> f64 {
        self.tx_cost / self.rx_cost
    }
}

/// Inline padding for unused [`OptionSet`] / [`Allocations`] slots. Never
/// observable: both types expose only their live prefix through `Deref`.
const FILL_OPTION: LinkOption = LinkOption {
    mode: Mode::Active,
    rate: Rate::Kbps10,
    tx_cost: JoulesPerBit::ZERO,
    rx_cost: JoulesPerBit::ZERO,
};

/// A fixed-capacity, `Copy` option list: at most one option per mode — the
/// shape [`options_at`] (and `braidio-net`'s interference-aware variant)
/// always produces. Keeping the set inline lets planners memoize and pass
/// option sets around without heap traffic; it derefs to `[LinkOption]`,
/// so everything that consumes a slice keeps working.
#[derive(Clone, Copy, PartialEq)]
pub struct OptionSet {
    items: [LinkOption; Mode::ALL.len()],
    len: u8,
}

impl OptionSet {
    /// The empty set.
    pub const EMPTY: OptionSet = OptionSet {
        items: [FILL_OPTION; Mode::ALL.len()],
        len: 0,
    };

    /// Append an option (panics beyond one slot per mode).
    pub fn push(&mut self, o: LinkOption) {
        self.items[self.len as usize] = o;
        self.len += 1;
    }
}

impl std::ops::Deref for OptionSet {
    type Target = [LinkOption];
    fn deref(&self) -> &[LinkOption] {
        &self.items[..self.len as usize]
    }
}

impl<'a> IntoIterator for &'a OptionSet {
    type Item = &'a LinkOption;
    type IntoIter = std::slice::Iter<'a, LinkOption>;
    fn into_iter(self) -> Self::IntoIter {
        self.iter()
    }
}

impl std::fmt::Debug for OptionSet {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_list().entries(self.iter()).finish()
    }
}

/// The options a Braidio pair can use at distance `d` — every mode at its
/// *fastest operational* bitrate (slower rates of the same mode are
/// strictly dominated on both axes and never enter an optimal plan).
pub fn options_at(ch: &Characterization, d: Meters) -> Vec<LinkOption> {
    let mut opts = Vec::new();
    for mode in Mode::ALL {
        if let Some(rate) = ch.max_rate(mode, d) {
            let (tx_cost, rx_cost) = ch
                .energy_per_bit(mode, rate)
                .expect("rate came from the table");
            opts.push(LinkOption {
                mode,
                rate,
                tx_cost,
                rx_cost,
            });
        }
    }
    opts
}

/// A share of traffic assigned to one option.
#[derive(Debug, Clone, Copy)]
pub struct Allocation {
    /// The option.
    pub option: LinkOption,
    /// Fraction of bits carried by it, in `[0, 1]`.
    pub fraction: f64,
}

const FILL_ALLOCATION: Allocation = Allocation {
    option: FILL_OPTION,
    fraction: 0.0,
};

/// A plan's allocation list, stored inline so [`OffloadPlan`] is `Copy`
/// (the fleet engine installs, memoizes and re-reads plans on its hot
/// path). The solver proves at most two options are ever braided; capacity
/// is one slot per mode to also cover hand-built test plans. Derefs to
/// `[Allocation]`, exposing only the live prefix.
#[derive(Clone, Copy)]
pub struct Allocations {
    items: [Allocation; Mode::ALL.len()],
    len: u8,
}

impl Allocations {
    /// An allocation list copied from `items` (at most one per mode).
    pub fn from_slice(items: &[Allocation]) -> Self {
        assert!(
            items.len() <= Mode::ALL.len(),
            "a plan braids at most one option per mode"
        );
        let mut a = Allocations {
            items: [FILL_ALLOCATION; Mode::ALL.len()],
            len: items.len() as u8,
        };
        a.items[..items.len()].copy_from_slice(items);
        a
    }
}

impl std::ops::Deref for Allocations {
    type Target = [Allocation];
    fn deref(&self) -> &[Allocation] {
        &self.items[..self.len as usize]
    }
}

impl<'a> IntoIterator for &'a Allocations {
    type Item = &'a Allocation;
    type IntoIter = std::slice::Iter<'a, Allocation>;
    fn into_iter(self) -> Self::IntoIter {
        self.iter()
    }
}

impl std::fmt::Debug for Allocations {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_list().entries(self.iter()).finish()
    }
}

/// The solver's output: a braid of at most two options.
#[derive(Debug, Clone, Copy)]
pub struct OffloadPlan {
    /// Non-zero allocations (1 or 2 entries, fractions summing to 1).
    pub allocations: Allocations,
    /// Blended transmitter cost per bit.
    pub tx_cost: JoulesPerBit,
    /// Blended receiver cost per bit.
    pub rx_cost: JoulesPerBit,
    /// Whether the plan achieves exact power proportionality.
    pub exact: bool,
}

impl OffloadPlan {
    /// Total bits deliverable before either battery dies.
    pub fn bits_until_death(&self, e1: Joules, e2: Joules) -> f64 {
        let by_tx = e1 / self.tx_cost;
        let by_rx = e2 / self.rx_cost;
        by_tx.min(by_rx)
    }

    /// The blended asymmetry `T/R` of the plan.
    pub fn asymmetry(&self) -> f64 {
        self.tx_cost / self.rx_cost
    }

    /// Fraction assigned to a given mode (summing over rates).
    pub fn mode_fraction(&self, mode: Mode) -> f64 {
        let sum: f64 = self
            .allocations
            .iter()
            .filter(|a| a.option.mode == mode)
            .map(|a| a.fraction)
            .sum();
        sum + 0.0 // normalize -0.0 from degenerate pair fractions
    }

    fn single(option: LinkOption, exact: bool) -> Self {
        OffloadPlan {
            allocations: Allocations::from_slice(&[Allocation {
                option,
                fraction: 1.0,
            }]),
            tx_cost: option.tx_cost,
            rx_cost: option.rx_cost,
            exact,
        }
    }

    fn pair(i: LinkOption, j: LinkOption, p: f64) -> Self {
        let tx = JoulesPerBit::new(
            p * i.tx_cost.joules_per_bit() + (1.0 - p) * j.tx_cost.joules_per_bit(),
        );
        let rx = JoulesPerBit::new(
            p * i.rx_cost.joules_per_bit() + (1.0 - p) * j.rx_cost.joules_per_bit(),
        );
        OffloadPlan {
            allocations: Allocations::from_slice(&[
                Allocation {
                    option: i,
                    fraction: p,
                },
                Allocation {
                    option: j,
                    fraction: 1.0 - p,
                },
            ]),
            tx_cost: tx,
            rx_cost: rx,
            exact: true,
        }
    }
}

/// Solve Eq. 1 for the given options and battery levels. Returns `None`
/// only when `options` is empty (no viable link — "regime out of range").
///
/// ```
/// use braidio_mac::offload::{options_at, solve};
/// use braidio_radio::characterization::Characterization;
/// use braidio_units::{Joules, Meters};
///
/// let ch = Characterization::braidio();
/// let opts = options_at(&ch, Meters::new(0.5));
/// // A 10:1 battery pair gets a plan whose blended TX:RX energy split is
/// // exactly 10:1 — power-proportional operation.
/// let plan = solve(&opts, Joules::from_watt_hours(10.0), Joules::from_watt_hours(1.0))
///     .expect("link in range");
/// assert!(plan.exact);
/// assert!((plan.asymmetry() - 10.0).abs() < 1e-9);
/// ```
pub fn solve(options: &[LinkOption], e1: Joules, e2: Joules) -> Option<OffloadPlan> {
    if options.is_empty() {
        return None;
    }
    assert!(
        e1.joules() > 0.0 && e2.joules() > 0.0,
        "both endpoints need energy"
    );
    let k = e1 / e2;
    // `aᵢ` recomputed on the fly (≤ 3 options, 2 flops each) instead of a
    // collected `Vec`: the solver sits on the fleet engine's planning wave,
    // which must be allocation-free in steady state.
    let a = |o: &LinkOption| o.tx_cost.joules_per_bit() - k * o.rx_cost.joules_per_bit();

    let mut best: Option<OffloadPlan> = None;
    let mut consider = |cand: OffloadPlan| {
        let better = match &best {
            None => true,
            Some(b) => {
                cand.tx_cost.joules_per_bit() + cand.rx_cost.joules_per_bit()
                    < b.tx_cost.joules_per_bit() + b.rx_cost.joules_per_bit() - 1e-18
            }
        };
        if better {
            best = Some(cand);
        }
    };

    // Single options that are already exactly proportional.
    for o in options {
        if a(o).abs() <= 1e-12 * o.total_cost().joules_per_bit().max(1e-30) {
            consider(OffloadPlan::single(*o, true));
        }
    }
    // Opposite-sign pairs.
    for i in 0..options.len() {
        let ai = a(&options[i]);
        if ai <= 0.0 {
            continue;
        }
        for j in 0..options.len() {
            let aj = a(&options[j]);
            if i == j || aj >= 0.0 {
                continue;
            }
            // a_i > 0, a_j < 0: p·a_i + (1−p)·a_j = 0.
            let p = -aj / (ai - aj);
            if (0.0..=1.0).contains(&p) {
                consider(OffloadPlan::pair(options[i], options[j], p));
            }
        }
    }
    if best.is_some() {
        return best;
    }

    // Infeasible: k outside the achievable asymmetry span. The limiting
    // side is fixed, so maximize bits by minimizing its per-bit cost.
    let plan = if options.iter().all(|o| a(o) > 0.0) {
        // Every option drains the transmitter relatively faster than the
        // battery ratio allows: TX-limited. Minimize T.
        let o = options
            .iter()
            .min_by(|x, y| x.tx_cost.partial_cmp(&y.tx_cost).expect("finite"))
            .expect("non-empty");
        OffloadPlan::single(*o, false)
    } else {
        // RX-limited. Minimize R.
        let o = options
            .iter()
            .min_by(|x, y| x.rx_cost.partial_cmp(&y.rx_cost).expect("finite"))
            .expect("non-empty");
        OffloadPlan::single(*o, false)
    };
    Some(plan)
}

/// The memo key of one solver call: the exact option set (mode, rate and
/// cost bits — no hashing of floats that could collide) plus the battery
/// ratio quantized in the log domain. Fixed-size so building a key never
/// allocates; `options_at` yields at most one option per mode.
type MemoKey = ([(u8, u8, u64, u64); 3], usize, i64);

/// Log-domain quantum for the battery ratio `k = E₁/E₂`: steps of
/// 2⁻³² in ln(k), i.e. ~2.3e-10 relative resolution on `k` — far below
/// every physical tolerance in the model, so memoized plans are
/// indistinguishable from cold solves while nearby ratios share entries.
const LN_K_QUANT: f64 = (1u64 << 32) as f64;

/// Bound on the memo cache; reaching it clears the map (plans are pure
/// functions of their key, so eviction never changes results).
const MEMO_CAP: usize = 1024;

fn memo_key(options: &[LinkOption], qk: i64) -> MemoKey {
    let mut opts = [(0u8, 0u8, 0u64, 0u64); 3];
    for (slot, o) in opts.iter_mut().zip(options) {
        *slot = (
            o.mode as u8,
            o.rate as u8,
            o.tx_cost.joules_per_bit().to_bits(),
            o.rx_cost.joules_per_bit().to_bits(),
        );
    }
    (opts, options.len(), qk)
}

/// [`solve`], memoized.
///
/// The plan depends on the batteries only through the ratio `k = E₁/E₂`,
/// so calls are cached under the option set and `k` quantized to the
/// `LN_K_QUANT` log-domain grid; a hit and a miss return bit-identical
/// plans because the canonical solve itself uses the quantized ratio.
/// The cache is process-wide, thread-safe, and bounded at `MEMO_CAP`
/// entries. Simulation loops that re-solve every epoch against
/// slowly-evolving energy levels hit the cache almost every time.
pub fn solve_memo(options: &[LinkOption], e1: Joules, e2: Joules) -> Option<OffloadPlan> {
    static CACHE: Mutex<Option<HashMap<MemoKey, Option<OffloadPlan>>>> = Mutex::new(None);
    if options.is_empty() {
        return None;
    }
    let lk = (e1 / e2).ln();
    if !lk.is_finite() || options.len() > 3 {
        return solve(options, e1, e2);
    }
    let qk = (lk * LN_K_QUANT).round() as i64;
    let key = memo_key(options, qk);
    let mut guard = CACHE.lock().unwrap_or_else(|e| e.into_inner());
    let cache = guard.get_or_insert_with(HashMap::new);
    if let Some(plan) = cache.get(&key) {
        // Counter, not a trace event: which call hits depends on thread
        // interleaving over the process-wide cache, so it must never enter
        // the deterministic event stream.
        braidio_telemetry::count("mac.offload.memo_hit");
        return *plan;
    }
    // Canonical solve on the quantized ratio: the cached value is a pure
    // function of the key, independent of the exact (e1, e2) that missed.
    let kq = (qk as f64 / LN_K_QUANT).exp();
    let plan = solve(options, Joules::new(kq), Joules::new(1.0));
    if cache.len() >= MEMO_CAP {
        cache.clear();
    }
    cache.insert(key, plan);
    braidio_telemetry::count("mac.offload.memo_miss");
    plan
}

/// Convenience: solve directly from a characterization and distance.
pub fn solve_at(ch: &Characterization, d: Meters, e1: Joules, e2: Joules) -> Option<OffloadPlan> {
    solve(&options_at(ch, d), e1, e2)
}

#[cfg(test)]
mod tests {
    use super::*;
    use braidio_units::Joules;

    fn ch() -> Characterization {
        Characterization::braidio()
    }

    fn close() -> Vec<LinkOption> {
        options_at(&ch(), Meters::new(0.3))
    }

    fn wh(x: f64) -> Joules {
        Joules::from_watt_hours(x)
    }

    #[test]
    fn all_three_modes_available_close_in() {
        let opts = close();
        assert_eq!(opts.len(), 3);
        assert!(opts.iter().all(|o| o.rate == Rate::Mbps1));
    }

    #[test]
    fn plan_is_power_proportional() {
        let opts = close();
        for ratio in [1.0, 3.0, 10.0, 100.0, 1000.0, 0.01] {
            let plan = solve(&opts, wh(ratio), wh(1.0)).unwrap();
            assert!(plan.exact, "ratio {ratio} should be achievable");
            assert!(
                (plan.asymmetry() / ratio - 1.0).abs() < 1e-9,
                "ratio {ratio}: asymmetry {}",
                plan.asymmetry()
            );
        }
    }

    #[test]
    fn optimal_points_lie_on_line_bc() {
        // The paper's Fig. 9 claim: for meaningful asymmetry the optimum
        // mixes Passive (B) and Backscatter (C), never Active.
        let opts = close();
        for ratio in [5.0, 100.0, 0.05] {
            let plan = solve(&opts, wh(ratio), wh(1.0)).unwrap();
            assert_eq!(plan.mode_fraction(Mode::Active), 0.0, "ratio {ratio}");
            assert!(plan.mode_fraction(Mode::Passive) > 0.0);
            assert!(plan.mode_fraction(Mode::Backscatter) > 0.0);
        }
    }

    #[test]
    fn plan_uses_at_most_two_options() {
        let opts = close();
        for ratio in [0.001, 0.5, 1.0, 42.0, 2000.0] {
            let plan = solve(&opts, wh(ratio), wh(1.0)).unwrap();
            assert!(plan.allocations.len() <= 2);
            let total: f64 = plan.allocations.iter().map(|a| a.fraction).sum();
            assert!((total - 1.0).abs() < 1e-12);
        }
    }

    #[test]
    fn equal_batteries_blend_evenly() {
        // §4 worked example shape: at 1:1 the B/C mix splits roughly 50/50.
        let plan = solve(&close(), wh(1.0), wh(1.0)).unwrap();
        let p_passive = plan.mode_fraction(Mode::Passive);
        assert!(
            (p_passive - 0.5079).abs() < 0.01,
            "passive fraction {p_passive}"
        );
    }

    #[test]
    fn extreme_ratio_falls_back_to_vertex() {
        // Beyond 2546:1 exact proportionality is impossible; the solver
        // pins to pure passive (the RX-limited cost minimizer).
        let plan = solve(&close(), wh(10_000.0), wh(1.0)).unwrap();
        assert!(!plan.exact);
        assert_eq!(plan.allocations.len(), 1);
        assert_eq!(plan.allocations[0].option.mode, Mode::Passive);
        // And the mirror image pins to pure backscatter.
        let plan = solve(&close(), wh(1.0), wh(10_000.0)).unwrap();
        assert!(!plan.exact);
        assert_eq!(plan.allocations[0].option.mode, Mode::Backscatter);
    }

    #[test]
    fn achievable_span_matches_headline_ratios() {
        // 1:2546 to 3546:1 (in power terms) at full rate — the abstract's
        // headline dynamic range.
        let opts = close();
        let max_asym = opts.iter().map(|o| o.asymmetry()).fold(f64::MIN, f64::max);
        let min_asym = opts.iter().map(|o| o.asymmetry()).fold(f64::MAX, f64::min);
        assert!((max_asym - 2546.0).abs() / 2546.0 < 0.01, "max {max_asym}");
        assert!(
            (1.0 / min_asym - 3546.0).abs() / 3546.0 < 0.01,
            "min {min_asym}"
        );
    }

    #[test]
    fn plan_beats_every_single_mode() {
        // The mixed plan must deliver at least as many bits as any single
        // option, for any battery split.
        let opts = close();
        for ratio in [0.2, 1.0, 7.0, 300.0] {
            let (e1, e2) = (wh(ratio), wh(1.0));
            let plan = solve(&opts, e1, e2).unwrap();
            let plan_bits = plan.bits_until_death(e1, e2);
            for o in &opts {
                let single = OffloadPlan::single(*o, false).bits_until_death(e1, e2);
                assert!(
                    plan_bits >= single * (1.0 - 1e-9),
                    "ratio {ratio}: plan {plan_bits:.3e} vs {} {single:.3e}",
                    o.mode
                );
            }
        }
    }

    #[test]
    fn farther_out_only_passive_and_active() {
        // At 3 m backscatter is gone (regime B): asymmetry only favours the
        // receiver (paper: "the nature of asymmetry supported after 2.6m
        // favors the receiver rather than transmitter").
        let opts = options_at(&ch(), Meters::new(3.0));
        let modes: Vec<Mode> = opts.iter().map(|o| o.mode).collect();
        assert!(modes.contains(&Mode::Active) && modes.contains(&Mode::Passive));
        assert!(!modes.contains(&Mode::Backscatter));
        // TX-heavy battery (large e1) can still be served exactly...
        let plan = solve(&opts, wh(100.0), wh(1.0)).unwrap();
        assert!(plan.exact);
        // ...but the reverse cannot (no backscatter to offload the carrier).
        let plan = solve(&opts, wh(1.0), wh(100.0)).unwrap();
        assert!(!plan.exact);
    }

    #[test]
    fn no_options_no_plan() {
        assert!(solve(&[], wh(1.0), wh(1.0)).is_none());
        assert!(solve_memo(&[], wh(1.0), wh(1.0)).is_none());
    }

    #[test]
    fn memo_matches_cold_solve() {
        let opts = close();
        for ratio in [0.001, 0.05, 0.5, 1.0, 3.0, 42.0, 1000.0, 10_000.0] {
            let cold = solve(&opts, wh(ratio), wh(1.0)).unwrap();
            let memo = solve_memo(&opts, wh(ratio), wh(1.0)).unwrap();
            assert_eq!(cold.exact, memo.exact, "ratio {ratio}");
            assert_eq!(cold.allocations.len(), memo.allocations.len());
            for (a, b) in cold.allocations.iter().zip(&memo.allocations) {
                assert_eq!(a.option, b.option, "ratio {ratio}");
                // The memoized plan is solved on the log-quantized ratio
                // (~2e-10 relative), so fractions agree to far better than
                // any physical tolerance without being bit-equal.
                assert!(
                    (a.fraction - b.fraction).abs() < 1e-8,
                    "ratio {ratio}: {} vs {}",
                    a.fraction,
                    b.fraction
                );
            }
            assert!(
                (cold.tx_cost.joules_per_bit() / memo.tx_cost.joules_per_bit() - 1.0).abs() < 1e-8
            );
            assert!(
                (cold.rx_cost.joules_per_bit() / memo.rx_cost.joules_per_bit() - 1.0).abs() < 1e-8
            );
        }
    }

    #[test]
    fn memo_hit_is_bit_identical_to_its_miss() {
        // Two calls with energies that differ but share a quantized ratio
        // must return the identical cached plan.
        let opts = close();
        let a = solve_memo(&opts, wh(7.0), wh(1.0)).unwrap();
        let b = solve_memo(&opts, wh(70.0), wh(10.0)).unwrap();
        assert_eq!(a.allocations.len(), b.allocations.len());
        for (x, y) in a.allocations.iter().zip(&b.allocations) {
            assert_eq!(x.option, y.option);
            assert_eq!(x.fraction.to_bits(), y.fraction.to_bits());
        }
        assert_eq!(
            a.tx_cost.joules_per_bit().to_bits(),
            b.tx_cost.joules_per_bit().to_bits()
        );
        assert_eq!(
            a.rx_cost.joules_per_bit().to_bits(),
            b.rx_cost.joules_per_bit().to_bits()
        );
    }

    #[test]
    fn bits_until_death_is_balanced_when_exact() {
        let plan = solve(&close(), wh(10.0), wh(1.0)).unwrap();
        let e1 = wh(10.0);
        let e2 = wh(1.0);
        let by_tx = e1 / plan.tx_cost;
        let by_rx = e2 / plan.rx_cost;
        assert!(
            ((by_tx - by_rx) / by_tx).abs() < 1e-9,
            "both sides die together under an exact plan"
        );
    }
}
